//! Criterion micro-benchmarks of the simulator's building blocks and of
//! full-GPU simulation throughput. These measure the *simulator's*
//! performance (cycles simulated per second), complementing the figure
//! binaries that measure the *simulated machine's* performance.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use nuba_core::GpuSimulator;
use nuba_types::{ArchKind, GpuConfig, LineAddr};
use nuba_workloads::{BenchmarkId, ScaleProfile, Workload};

fn bench_cache(c: &mut Criterion) {
    use nuba_cache::{CacheGeometry, MshrFile, TagArray};

    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(1));

    g.bench_function("tag_probe_hit", |b| {
        let geo = CacheGeometry::new(48, 16);
        let mut tags = TagArray::new(geo);
        for i in 0..48 * 16 {
            tags.insert(LineAddr(i * 128), false, false, i);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % (48 * 16);
            black_box(tags.probe_and_touch(LineAddr(i * 128), i))
        });
    });

    g.bench_function("tag_insert_evict", |b| {
        let geo = CacheGeometry::new(48, 16);
        let mut tags = TagArray::new(geo);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(tags.insert(LineAddr(i * 128), false, false, i))
        });
    });

    g.bench_function("mshr_allocate_complete", |b| {
        let mut mshr: MshrFile<u32> = MshrFile::new(64, 16);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let line = LineAddr((i % 64) * 128);
            if mshr.allocate(line, 0).is_err() {
                black_box(mshr.complete(line));
            }
        });
    });
    g.finish();
}

fn bench_dram(c: &mut Criterion) {
    use nuba_dram::{DramRequest, HbmTiming, MemoryController};

    let mut g = c.benchmark_group("dram");
    g.throughput(Throughput::Elements(1));
    g.bench_function("frfcfs_streaming_tick", |b| {
        let mut mc = MemoryController::new(HbmTiming::paper(), 16, 64, 2);
        let mut done = Vec::new();
        let mut t = 0u64;
        let mut id = 0u64;
        b.iter(|| {
            if mc.can_accept() {
                id += 1;
                let _ = mc.try_enqueue(
                    DramRequest {
                        id,
                        bank: (id % 16) as usize,
                        row: id / 64,
                        is_write: false,
                    },
                    t,
                );
            }
            mc.tick(t, &mut done);
            done.clear();
            t += 1;
        });
    });
    g.finish();
}

fn bench_noc(c: &mut Criterion) {
    use nuba_engine::Wire;
    use nuba_noc::CrossbarNoc;

    #[derive(Clone, Copy)]
    struct Pkt;
    impl Wire for Pkt {
        fn wire_bytes(&self) -> u64 {
            136
        }
    }

    let mut g = c.benchmark_group("noc");
    g.throughput(Throughput::Elements(1));
    g.bench_function("crossbar_64x64_saturated_tick", |b| {
        let mut noc: CrossbarNoc<Pkt> = CrossbarNoc::new(64, 64, 15.6, 4, 8);
        let mut t = 0u64;
        let mut out = Vec::new();
        b.iter(|| {
            for p in 0..64 {
                if noc.can_send(p) {
                    let _ = noc.try_send(p, (p + 7) % 64, Pkt, t);
                }
            }
            noc.tick(t);
            for p in 0..64 {
                noc.drain_port(p, &mut out);
            }
            out.clear();
            t += 1;
        });
    });
    g.finish();
}

fn bench_mdr_model(c: &mut Criterion) {
    use nuba_core::mdr::paper_slice_bandwidths;
    use nuba_core::{mdr_evaluate, MdrProfile};

    let bw = paper_slice_bandwidths(15.6);
    c.bench_function("mdr_model_evaluate", |b| {
        let mut x = 0.0f64;
        b.iter(|| {
            x = (x + 0.001) % 1.0;
            black_box(mdr_evaluate(
                bw,
                MdrProfile {
                    frac_local: x,
                    hit_no_rep: 1.0 - x,
                    hit_full_rep: x * 0.5,
                },
            ))
        });
    });
}

fn bench_driver(c: &mut Criterion) {
    use nuba_driver::GpuDriver;
    use nuba_types::addr::PageNum;
    use nuba_types::{PagePolicyKind, PartitionId, SmId};

    let mut g = c.benchmark_group("driver");
    g.throughput(Throughput::Elements(1));
    g.bench_function("lab_fault_allocation", |b| {
        let mut d = GpuDriver::new(PagePolicyKind::lab_default(), 32);
        let mut p = 0u64;
        b.iter(|| {
            p += 1;
            black_box(d.handle_fault(PageNum(p), PartitionId((p % 32) as usize), SmId(0)))
        });
    });
    g.finish();
}

fn bench_gpu_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("gpu_step");
    g.throughput(Throughput::Elements(1));

    // Steady-state cost of a single simulator cycle: the simulator is
    // warmed and pre-run so scratch buffers, MSHR pools and page tables
    // have reached their stable capacities before measurement begins.
    for (name, arch) in [
        ("uba_steady", ArchKind::MemSideUba),
        ("nuba_steady", ArchKind::Nuba),
    ] {
        g.bench_function(name, |b| {
            let cfg = GpuConfig::paper_baseline(arch);
            let wl = Workload::build(BenchmarkId::Sgemm, ScaleProfile::fast(), cfg.num_sms, 42);
            let mut gpu = GpuSimulator::try_new(cfg, &wl).expect("valid config");
            gpu.warm(&wl, 128);
            for _ in 0..4_000 {
                gpu.step();
            }
            b.iter(|| gpu.step());
        });
    }
    g.finish();
}

fn bench_full_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_sim");
    g.sample_size(10);

    for (name, arch) in [
        ("uba_64sm", ArchKind::MemSideUba),
        ("nuba_64sm", ArchKind::Nuba),
    ] {
        g.throughput(Throughput::Elements(1_000));
        g.bench_function(format!("{name}_1k_cycles"), |b| {
            let cfg = GpuConfig::paper_baseline(arch);
            let wl = Workload::build(BenchmarkId::Sgemm, ScaleProfile::fast(), cfg.num_sms, 42);
            let mut gpu = GpuSimulator::try_new(cfg.clone(), &wl).expect("valid config");
            gpu.warm(&wl, 128);
            b.iter(|| {
                for _ in 0..1_000 {
                    gpu.step();
                }
            });
        });
    }
    g.finish();
}

fn bench_sim_skip(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_skip");
    g.sample_size(10);

    // Event-driven time skipping against raw stepping, on the two
    // shapes that bracket its payoff: the paper-baseline 64-SM machine
    // (rarely globally idle, skipping ≈ stepping) and a latency-bound
    // one-SM/one-warp machine whose long idle spans between memory
    // round-trips are where the skipper earns its keep. BENCH_skip.json
    // records the end-to-end `nuba_sim` ratios for the same pair.
    type MakeConfig = fn() -> GpuConfig;
    let configs: [(&str, MakeConfig); 2] = [
        ("baseline_64sm", || {
            GpuConfig::paper_baseline(ArchKind::Nuba)
        }),
        ("idle_1sm", || {
            GpuConfig::paper_baseline(ArchKind::Nuba)
                .scaled(0.015625)
                .with_active_warps(1)
        }),
    ];
    for (shape, make_cfg) in configs {
        for (mode, skip) in [("step", false), ("skip", true)] {
            g.throughput(Throughput::Elements(20_000));
            g.bench_function(format!("{shape}_{mode}_20k_cycles"), |b| {
                let cfg = make_cfg();
                let wl = Workload::build(BenchmarkId::Sgemm, ScaleProfile::fast(), cfg.num_sms, 42);
                let mut gpu = GpuSimulator::try_new(cfg, &wl).expect("valid config");
                gpu.warm(&wl, 128);
                gpu.set_skip(skip);
                b.iter(|| gpu.advance(20_000).expect("forward progress"));
            });
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_dram,
    bench_noc,
    bench_mdr_model,
    bench_driver,
    bench_gpu_step,
    bench_full_sim,
    bench_sim_skip
);
criterion_main!(benches);
