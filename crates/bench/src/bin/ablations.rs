//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Latency insensitivity** — the paper's foundational claim (§1):
//!    "memory bandwidth in GPU systems is (practically) independent of
//!    latency". We sweep LLC pipeline latency and NoC stage latency
//!    (performance should barely move) against local-link *bandwidth*
//!    (performance should move).
//! 2. **MDR epoch length** (20 K cycles in the paper).
//! 3. **MDR sampled sets** (8 in the paper; the 384-byte profiler).
//! 4. **Kernel-boundary flush overhead** (§5.3).

use nuba_bench::runner::{run_matrix, Job};
use nuba_bench::{figure_header, pct, Harness};
use nuba_types::{harmonic_mean_speedup, ArchKind, GpuConfig};
use nuba_workloads::BenchmarkId;

fn hmean_over(h: &Harness, benches: &[BenchmarkId], cfg: &GpuConfig, base: &[f64]) -> f64 {
    let jobs: Vec<Job> = benches
        .iter()
        .map(|&b| Job::new(b.to_string(), b, cfg.clone()))
        .collect();
    let s: Vec<f64> = run_matrix(h, &jobs)
        .iter()
        .enumerate()
        .map(|(i, r)| r.report.perf() / base[i])
        .collect();
    harmonic_mean_speedup(&s)
}

fn main() {
    let h = Harness::from_env();
    let benches = [
        BenchmarkId::Lbm,
        BenchmarkId::Kmeans,
        BenchmarkId::Sgemm,
        BenchmarkId::SqueezeNet,
        BenchmarkId::Mvt,
    ];
    let nuba0 = GpuConfig::paper_baseline(ArchKind::Nuba);
    let base_jobs: Vec<Job> = benches
        .iter()
        .map(|&b| Job::new(b.to_string(), b, nuba0.clone()))
        .collect();
    let base: Vec<f64> = run_matrix(&h, &base_jobs)
        .iter()
        .map(|r| r.report.perf())
        .collect();

    figure_header(
        "Ablation 1",
        "Latency vs bandwidth sensitivity (perf rel. to baseline NUBA)",
    );
    println!("LLC pipeline latency (baseline 40 cycles):");
    for lat in [20u64, 40, 80, 160] {
        let c = nuba0.clone().with_llc_latency(lat);
        println!(
            "  {lat:>4} cycles: {}",
            pct(hmean_over(&h, &benches, &c, &base))
        );
    }
    println!("NoC stage latency (baseline 4 cycles/stage):");
    for lat in [2u64, 4, 8, 16] {
        let c = nuba0.clone().with_noc_stage_latency(lat);
        println!(
            "  {lat:>4} cycles: {}",
            pct(hmean_over(&h, &benches, &c, &base))
        );
    }
    println!("Local link bandwidth (baseline 32 B/cycle ≙ 2.8 TB/s):");
    for bw in [8u64, 16, 32, 64] {
        let c = nuba0.clone().with_local_link_bandwidth(bw);
        println!(
            "  {bw:>4} B/cyc: {}",
            pct(hmean_over(&h, &benches, &c, &base))
        );
    }
    println!(
        "\nExpected: ±few % across an 8x latency range, but strong sensitivity\n\
         to local-link bandwidth — the paper's argument for why non-uniform\n\
         *bandwidth* (not latency, as in CPU NUCA) is the right GPU lever.\n"
    );

    figure_header("Ablation 2", "MDR epoch length (baseline 20 000 cycles)");
    for epoch in [5_000u64, 20_000, 80_000] {
        let c = nuba0.clone().with_mdr_epoch(epoch);
        println!(
            "  {epoch:>6} cycles: {}",
            pct(hmean_over(&h, &benches, &c, &base))
        );
    }

    figure_header("Ablation 3", "MDR sampled sets per slice (baseline 8)");
    for sets in [2usize, 8, 24, 48] {
        let c = nuba0.clone().with_mdr_sample_sets(sets);
        println!(
            "  {sets:>3} sets ({} B of shadow tags): {}",
            sets * 16 * 3,
            pct(hmean_over(&h, &benches, &c, &base))
        );
    }

    figure_header("Ablation 4", "Kernel-boundary flush overhead (§5.3)");
    for k in [None, Some(20_000u64), Some(10_000), Some(5_000)] {
        let c = nuba0.clone().with_kernel_boundaries(k);
        let label = match k {
            None => "no boundaries  ".to_string(),
            Some(v) => format!("every {v:>6} cyc"),
        };
        println!("  {label}: {}", pct(hmean_over(&h, &benches, &c, &base)));
    }
    println!("\nFlushing the LLC at kernel boundaries (so read-only data can become");
    println!("read-write) costs cold misses and write-backs; the paper models the");
    println!("same overhead and finds MDR still profitable.");

    figure_header(
        "Ablation 5",
        "DRAM refresh (off in Table 1; JEDEC REFab here)",
    );
    for refresh in [false, true] {
        let c = nuba0.clone().with_dram_refresh(refresh);
        println!(
            "  refresh {}: {}",
            if refresh { "on " } else { "off" },
            pct(hmean_over(&h, &benches, &c, &base))
        );
    }
    println!("\nREFab steals ~9% of each channel's time (tRFC/tREFI = 120/1365) and");
    println!("closes every row; the throughput cost lands uniformly on all");
    println!("architectures.");

    std::process::exit(nuba_bench::runner::finish());
}
