//! §7.6 "Alternative page allocation": count-based page migration and
//! page-granular replication versus LAB + MDR.

use nuba_bench::runner::{run_matrix, Job};
use nuba_bench::{class_means, figure_header, pct, Harness};
use nuba_types::{ArchKind, GpuConfig, PagePolicyKind, ReplicationKind};
use nuba_workloads::BenchmarkId;

fn main() {
    figure_header(
        "§7.6 alternatives",
        "Page migration / page replication vs LAB+MDR on NUBA (speedup vs UBA)",
    );
    let h = Harness::from_env();
    let uba = GpuConfig::paper_baseline(ArchKind::MemSideUba);
    let mk = |p: PagePolicyKind, r: ReplicationKind| {
        GpuConfig::paper_baseline(ArchKind::Nuba)
            .with_policy(p)
            .with_replication(r)
    };
    let lab_mdr = mk(PagePolicyKind::lab_default(), ReplicationKind::Mdr);
    let mig = mk(PagePolicyKind::Migration, ReplicationKind::None);
    let prep = mk(PagePolicyKind::PageReplication, ReplicationKind::None);

    let jobs: Vec<Job> = BenchmarkId::ALL
        .iter()
        .flat_map(|&b| {
            [&uba, &lab_mdr, &mig, &prep].map(|cfg| Job::new(b.to_string(), b, cfg.clone()))
        })
        .collect();
    let results = run_matrix(&h, &jobs);

    println!(
        "{:<8} {:>9} {:>9} {:>9} {:>7}",
        "bench", "LAB+MDR", "MIGRATE", "PAGEREP", "class"
    );
    let mut lab_rows = Vec::new();
    let mut mig_rows = Vec::new();
    let mut prep_rows = Vec::new();
    for (i, &b) in BenchmarkId::ALL.iter().enumerate() {
        let base = &results[i * 4].report;
        let l = results[i * 4 + 1].report.speedup_over(base);
        let m = results[i * 4 + 2].report.speedup_over(base);
        let p = results[i * 4 + 3].report.speedup_over(base);
        println!(
            "{:<8} {:>9.2} {:>9.2} {:>9.2} {:>7}",
            b.to_string(),
            l,
            m,
            p,
            b.spec().sharing.to_string()
        );
        lab_rows.push((b, l));
        mig_rows.push((b, m));
        prep_rows.push((b, p));
    }
    let l = class_means(&lab_rows);
    let m = class_means(&mig_rows);
    let p = class_means(&prep_rows);
    println!("\nHarmonic means vs UBA:");
    println!(
        "  LAB+MDR:    low={} high={} overall={}",
        pct(l.low),
        pct(l.high),
        pct(l.all)
    );
    println!(
        "  Migration:  low={} high={} overall={}",
        pct(m.low),
        pct(m.high),
        pct(m.all)
    );
    println!(
        "  Page repl.: low={} high={} overall={}",
        pct(p.low),
        pct(p.high),
        pct(p.all)
    );
    println!("\nPaper: migration/replication reach ~+26% on low-sharing but degrade");
    println!("       high-sharing by up to -80.4% (migration ping-pong) and -60.1%");
    println!("       (page-grain cache thrashing); LAB+MDR avoids both.");

    std::process::exit(nuba_bench::runner::finish());
}
