//! `describe`: print the model card of one (or all) Table 2 benchmarks —
//! what the synthetic model represents and how its knobs map to the
//! paper's published characteristics.
//!
//! ```sh
//! cargo run --release -p nuba-bench --bin describe -- SGEMM
//! cargo run --release -p nuba-bench --bin describe          # all 29
//! ```

use nuba_workloads::BenchmarkId;

fn main() {
    let arg = std::env::args().nth(1);
    let benches: Vec<BenchmarkId> = match arg.as_deref() {
        None => BenchmarkId::ALL.to_vec(),
        Some(abbr) => match BenchmarkId::from_abbr(abbr) {
            Some(b) => vec![b],
            None => {
                eprintln!("unknown benchmark `{abbr}`; known abbreviations:");
                for b in BenchmarkId::ALL {
                    eprint!(" {b}");
                }
                eprintln!();
                std::process::exit(2);
            }
        },
    };
    for (i, b) in benches.iter().enumerate() {
        if i > 0 {
            println!();
        }
        println!("{}", b.spec().model_card());
    }
}
