//! Figure 3: memory page sharing degree per benchmark.
//!
//! Buckets: pages accessed by 1 SM, 2–10 SMs, 11–25 SMs, 26–64 SMs.

use nuba_workloads::{sharing_buckets, BenchmarkId, ScaleProfile, Workload};

fn bar(frac: f64) -> String {
    let n = (frac * 24.0).round() as usize;
    "#".repeat(n)
}

fn main() {
    nuba_bench::figure_header("Figure 3", "Memory page sharing degree");
    println!(
        "{:<8} {:>6} {:>6} {:>6} {:>6}   distribution (1 SM | shared)",
        "bench", "1", "2-10", "11-25", "26-64"
    );
    let num_sms = 64;
    for &b in BenchmarkId::ALL {
        let wl = Workload::build(b, ScaleProfile::default(), num_sms, 42);
        let p = sharing_buckets(wl.layout(), num_sms);
        println!(
            "{:<8} {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}%   {}|{}",
            b.to_string(),
            p.buckets[0] * 100.0,
            p.buckets[1] * 100.0,
            p.buckets[2] * 100.0,
            p.buckets[3] * 100.0,
            bar(p.buckets[0]),
            bar(p.shared_fraction()),
        );
    }
    println!("\nClassification check (layout vs Table 2):");
    let mut ok = 0;
    for &b in BenchmarkId::ALL {
        let wl = Workload::build(b, ScaleProfile::default(), num_sms, 42);
        let p = sharing_buckets(wl.layout(), num_sms);
        if p.classify() == b.spec().sharing {
            ok += 1;
        } else {
            println!(
                "  MISMATCH: {b} profiled {:?}, Table 2 says {:?}",
                p.classify(),
                b.spec().sharing
            );
        }
    }
    println!(
        "  {ok}/{} benchmarks match their Table 2 class",
        BenchmarkId::ALL.len()
    );
}
