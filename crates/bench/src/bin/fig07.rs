//! Figure 7: performance improvement of NUBA and NUBA-No-Rep over the
//! memory-side UBA baseline (iso-resource, 1.4 TB/s NoC), with the
//! SM-side UBA for reference.

use nuba_bench::runner::{run_matrix, Job};
use nuba_bench::{class_means, figure_header, main_configs, pct, Harness};
use nuba_workloads::BenchmarkId;

fn main() {
    figure_header(
        "Figure 7",
        "Performance improvement of NUBA over UBA (iso-resource 1.4 TB/s NoC)",
    );
    let h = Harness::from_env();
    let [(_, uba_cfg), (_, sm_cfg), (_, nr_cfg), (_, nuba_cfg)] = main_configs();

    let jobs: Vec<Job> = BenchmarkId::ALL
        .iter()
        .flat_map(|&b| {
            [&uba_cfg, &sm_cfg, &nr_cfg, &nuba_cfg]
                .map(|cfg| Job::new(b.to_string(), b, cfg.clone()))
        })
        .collect();
    let results = run_matrix(&h, &jobs);

    println!(
        "{:<8} {:>10} {:>12} {:>10} {:>10}",
        "bench", "UBA-sm", "NUBA-No-Rep", "NUBA", "class"
    );
    let mut nr_rows = Vec::new();
    let mut nuba_rows = Vec::new();
    let mut sm_rows = Vec::new();
    for (i, &b) in BenchmarkId::ALL.iter().enumerate() {
        let base = &results[i * 4].report;
        let sm = results[i * 4 + 1].report.speedup_over(base);
        let nr = results[i * 4 + 2].report.speedup_over(base);
        let nuba = results[i * 4 + 3].report.speedup_over(base);
        println!(
            "{:<8} {:>10} {:>12} {:>10} {:>10}",
            b.to_string(),
            pct(sm),
            pct(nr),
            pct(nuba),
            b.spec().sharing.to_string()
        );
        sm_rows.push((b, sm));
        nr_rows.push((b, nr));
        nuba_rows.push((b, nuba));
    }

    let nuba_m = class_means(&nuba_rows);
    let nr_m = class_means(&nr_rows);
    let sm_m = class_means(&sm_rows);
    println!("\nHarmonic-mean improvement over memory-side UBA:");
    println!(
        "  NUBA        low={} high={} overall={}",
        pct(nuba_m.low),
        pct(nuba_m.high),
        pct(nuba_m.all)
    );
    println!(
        "  NUBA-No-Rep low={} high={} overall={}",
        pct(nr_m.low),
        pct(nr_m.high),
        pct(nr_m.all)
    );
    println!(
        "  SM-side UBA low={} high={} overall={}",
        pct(sm_m.low),
        pct(sm_m.high),
        pct(sm_m.all)
    );
    let max = nuba_rows.iter().map(|&(_, s)| s).fold(f64::MIN, f64::max);
    println!("  NUBA max improvement: {}", pct(max));

    println!("\nNUBA improvement over UBA (%):");
    let bars: Vec<(String, f64)> = nuba_rows
        .iter()
        .map(|(b, s)| (b.to_string(), (s - 1.0) * 100.0))
        .collect();
    println!("{}", nuba_bench::chart::series(&bars, 40));
    println!("\nPaper: NUBA +30.4% low / +15.1% high / +23.1% overall (max +183.9%);");
    println!("       SM-side UBA ≈ +1.0% over memory-side.");

    std::process::exit(nuba_bench::runner::finish());
}
