//! Figure 8: memory bandwidth perceived by the SMs (read replies per
//! cycle) under UBA, NUBA-No-Rep and NUBA.

use nuba_bench::runner::{run_matrix, Job};
use nuba_bench::{figure_header, main_configs, pct, Harness};
use nuba_types::harmonic_mean_speedup;
use nuba_workloads::{BenchmarkId, SharingClass};

fn main() {
    figure_header("Figure 8", "Perceived memory bandwidth (replies/cycle)");
    let h = Harness::from_env();
    let [(_, uba_cfg), _, (_, nr_cfg), (_, nuba_cfg)] = main_configs();

    let jobs: Vec<Job> = BenchmarkId::ALL
        .iter()
        .flat_map(|&b| {
            [&uba_cfg, &nr_cfg, &nuba_cfg].map(|cfg| Job::new(b.to_string(), b, cfg.clone()))
        })
        .collect();
    let results = run_matrix(&h, &jobs);

    println!(
        "{:<8} {:>8} {:>12} {:>8} {:>9}",
        "bench", "UBA", "NUBA-No-Rep", "NUBA", "NUBA/UBA"
    );
    let mut gains_low = Vec::new();
    let mut gains_high = Vec::new();
    for (i, &b) in BenchmarkId::ALL.iter().enumerate() {
        let base = &results[i * 3].report;
        let nr = &results[i * 3 + 1].report;
        let nuba = &results[i * 3 + 2].report;
        let ratio = nuba.replies_per_cycle() / base.replies_per_cycle().max(1e-9);
        println!(
            "{:<8} {:>8.2} {:>12.2} {:>8.2} {:>9}",
            b.to_string(),
            base.replies_per_cycle(),
            nr.replies_per_cycle(),
            nuba.replies_per_cycle(),
            pct(ratio)
        );
        if b.spec().sharing == SharingClass::Low {
            gains_low.push(ratio);
        } else {
            gains_high.push(ratio);
        }
    }
    println!(
        "\nPerceived-bandwidth gain (hmean): low={} high={} overall={}",
        pct(harmonic_mean_speedup(&gains_low)),
        pct(harmonic_mean_speedup(&gains_high)),
        pct(harmonic_mean_speedup(
            &gains_low
                .iter()
                .chain(&gains_high)
                .copied()
                .collect::<Vec<_>>()
        ))
    );
    println!("Paper: +51.7% low / +24.7% high / +38.9% overall.");

    std::process::exit(nuba_bench::runner::finish());
}
