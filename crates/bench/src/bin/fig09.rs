//! Figure 9: L1 miss breakdown — local vs remote service.
//!
//! Under UBA every L1 miss crosses the NoC (remote); NUBA turns most
//! misses into local point-to-point accesses, and MDR converts remote
//! read-only shared accesses into local replica hits on top.

use nuba_bench::runner::{run_matrix, Job};
use nuba_bench::{figure_header, main_configs, Harness};
use nuba_workloads::BenchmarkId;

fn main() {
    figure_header("Figure 9", "L1 miss breakdown (fraction serviced locally)");
    let h = Harness::from_env();
    let [_, _, (_, nr_cfg), (_, nuba_cfg)] = main_configs();

    let jobs: Vec<Job> = BenchmarkId::ALL
        .iter()
        .flat_map(|&b| [&nr_cfg, &nuba_cfg].map(|cfg| Job::new(b.to_string(), b, cfg.clone())))
        .collect();
    let results = run_matrix(&h, &jobs);

    println!(
        "{:<8} {:>6} {:>12} {:>8} {:>12}",
        "bench", "UBA", "NUBA-No-Rep", "NUBA", "replica fills"
    );
    let mut weighted_local = 0.0;
    let mut total_misses = 0u64;
    for (i, &b) in BenchmarkId::ALL.iter().enumerate() {
        let nr = &results[i * 2].report;
        let nuba = &results[i * 2 + 1].report;
        println!(
            "{:<8} {:>6.2} {:>12.2} {:>8.2} {:>12}",
            b.to_string(),
            0.0, // UBA: all misses are remote by construction
            nr.local_miss_fraction(),
            nuba.local_miss_fraction(),
            nuba.replica_fills
        );
        let misses = nuba.local_misses + nuba.remote_misses;
        weighted_local += nuba.local_miss_fraction() * misses as f64;
        total_misses += misses;
    }
    println!(
        "\nOverall, {:.1}% of L1 misses are serviced locally under NUBA.",
        100.0 * weighted_local / total_misses.max(1) as f64
    );
    println!("Paper: 63.9% of L1 misses turn into local accesses.");

    std::process::exit(nuba_bench::runner::finish());
}
