//! Figure 10: performance versus NoC power across NoC bandwidths.
//!
//! The paper's three headline trade-offs:
//! 1. iso-NoC (1.4 TB/s): NUBA wins on performance;
//! 2. NUBA @ 700 GB/s ≈ UBA @ 5.6 TB/s performance at ~an order of
//!    magnitude lower NoC power;
//! 3. NUBA @ 700 GB/s beats UBA @ 1.4 TB/s on both axes.

use nuba_bench::runner::{run_matrix, Job};
use nuba_bench::{figure_header, pct, sweep_benchmarks, Harness};
use nuba_types::{harmonic_mean_speedup, ArchKind, GpuConfig, ReplicationKind};

fn main() {
    figure_header(
        "Figure 10",
        "Performance vs NoC power across NoC bandwidths",
    );
    let h = Harness::from_env();
    let benches = sweep_benchmarks();

    let base_cfg = GpuConfig::paper_baseline(ArchKind::MemSideUba).with_noc_tbs(1.4);
    println!("(speedups vs memory-side UBA @ 1.4 TB/s; NoC watts averaged over runs)");
    println!(
        "{:<10} {:>8} {:>12} {:>12}",
        "arch", "NoC TB/s", "perf", "NoC watts"
    );

    // One matrix: per-benchmark baselines first, then every
    // (arch, bandwidth) point over the sweep set.
    let archs = [ArchKind::MemSideUba, ArchKind::SmSideUba, ArchKind::Nuba];
    let widths = [0.7, 1.4, 2.8, 5.6];
    let mut jobs: Vec<Job> = benches
        .iter()
        .map(|&b| Job::new(b.to_string(), b, base_cfg.clone()))
        .collect();
    for arch in archs {
        for tbs in widths {
            let cfg = if arch == ArchKind::Nuba {
                GpuConfig::paper_baseline(arch)
                    .with_noc_tbs(tbs)
                    .with_replication(ReplicationKind::Mdr)
            } else {
                GpuConfig::paper_baseline(arch).with_noc_tbs(tbs)
            };
            for &b in &benches {
                jobs.push(Job::new(format!("{b}@{tbs}"), b, cfg.clone()));
            }
        }
    }
    let all = run_matrix(&h, &jobs);
    let (baselines, points) = all.split_at(benches.len());

    let mut results: Vec<(String, f64, f64, f64)> = Vec::new();
    for (k, arch) in archs.iter().enumerate() {
        for (j, &tbs) in widths.iter().enumerate() {
            let chunk = &points[(k * widths.len() + j) * benches.len()..][..benches.len()];
            let mut speedups = Vec::new();
            let mut watts = 0.0;
            for (i, res) in chunk.iter().enumerate() {
                speedups.push(res.report.speedup_over(&baselines[i].report));
                watts += res.report.noc_watts;
            }
            let s = harmonic_mean_speedup(&speedups);
            let w = watts / benches.len() as f64;
            println!(
                "{:<10} {:>8.1} {:>12} {:>12.1}",
                arch.label(),
                tbs,
                pct(s),
                w
            );
            results.push((arch.label().to_string(), tbs, s, w));
        }
    }

    let find = |label: &str, tbs: f64| {
        results
            .iter()
            .find(|(l, t, _, _)| l == label && (*t - tbs).abs() < 1e-9)
            .expect("present")
    };
    let nuba_07 = find("NUBA", 0.7);
    let uba_56 = find("UBA-mem", 5.6);
    let uba_14 = find("UBA-mem", 1.4);
    let smuba_56 = find("UBA-sm", 5.6);
    println!("\nHeadline trade-offs:");
    println!(
        "  NUBA@0.7 vs UBA-mem@5.6: perf {} vs {}, NoC power {:.1}x lower",
        pct(nuba_07.2),
        pct(uba_56.2),
        uba_56.3 / nuba_07.3
    );
    println!(
        "  NUBA@0.7 vs UBA-sm@5.6:  NoC power {:.1}x lower",
        smuba_56.3 / nuba_07.3
    );
    println!(
        "  NUBA@0.7 vs UBA-mem@1.4: {} faster at {:.1}x lower NoC power",
        pct(nuba_07.2 / uba_14.2),
        uba_14.3 / nuba_07.3
    );
    println!("\nPaper: 12.1x / 9.4x power reduction at similar performance;");
    println!("       +12.7% / +11.3% at 2.3x / 1.6x lower power.");

    std::process::exit(nuba_bench::runner::finish());
}
