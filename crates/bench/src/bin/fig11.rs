//! Figure 11: the impact of page allocation on NUBA performance —
//! first-touch (FT) vs round-robin (RR) vs Local-And-Balanced (LAB).

use nuba_bench::runner::{run_matrix, Job};
use nuba_bench::{class_means, figure_header, pct, Harness};
use nuba_types::{ArchKind, GpuConfig, PagePolicyKind, ReplicationKind};
use nuba_workloads::BenchmarkId;

fn main() {
    figure_header(
        "Figure 11",
        "Page allocation policy on NUBA (speedup vs UBA)",
    );
    let h = Harness::from_env();
    let uba = GpuConfig::paper_baseline(ArchKind::MemSideUba);
    let mk = |p: PagePolicyKind| {
        GpuConfig::paper_baseline(ArchKind::Nuba)
            .with_replication(ReplicationKind::None)
            .with_policy(p)
    };
    let ft_cfg = mk(PagePolicyKind::FirstTouch);
    let rr_cfg = mk(PagePolicyKind::RoundRobin);
    let lab_cfg = mk(PagePolicyKind::lab_default());

    let jobs: Vec<Job> = BenchmarkId::ALL
        .iter()
        .flat_map(|&b| {
            [&uba, &ft_cfg, &rr_cfg, &lab_cfg].map(|cfg| Job::new(b.to_string(), b, cfg.clone()))
        })
        .collect();
    let results = run_matrix(&h, &jobs);

    println!(
        "{:<8} {:>8} {:>8} {:>8} {:>9} {:>9} {:>9}",
        "bench", "FT", "RR", "LAB", "LAB/FT", "LAB/RR", "FT imbal"
    );
    let mut lab_rows = Vec::new();
    let mut lab_ft = Vec::new();
    let mut lab_rr = Vec::new();
    for (i, &b) in BenchmarkId::ALL.iter().enumerate() {
        let base = &results[i * 4].report;
        let ft_r = &results[i * 4 + 1].report;
        let ft = ft_r.speedup_over(base);
        let rr = results[i * 4 + 2].report.speedup_over(base);
        let lab = results[i * 4 + 3].report.speedup_over(base);
        println!(
            "{:<8} {:>8.2} {:>8.2} {:>8.2} {:>9} {:>9} {:>8.1}x",
            b.to_string(),
            ft,
            rr,
            lab,
            pct(lab / ft),
            pct(lab / rr),
            ft_r.channel_imbalance
        );
        lab_rows.push((b, lab));
        lab_ft.push((b, lab / ft));
        lab_rr.push((b, lab / rr));
    }
    let m = class_means(&lab_rows);
    let mf = class_means(&lab_ft);
    let mr = class_means(&lab_rr);
    println!(
        "\nLAB vs UBA (hmean): low={} high={} overall={}",
        pct(m.low),
        pct(m.high),
        pct(m.all)
    );
    println!(
        "LAB over FT: low={} high={} overall={}",
        pct(mf.low),
        pct(mf.high),
        pct(mf.all)
    );
    println!(
        "LAB over RR: low={} high={} overall={}",
        pct(mr.low),
        pct(mr.high),
        pct(mr.all)
    );
    println!("\nPaper: LAB +88.9% over FT, +14.3% over RR, +14.8% over UBA overall;");
    println!("       FT collapses on high-sharing, RR wastes low-sharing locality.");

    std::process::exit(nuba_bench::runner::finish());
}
