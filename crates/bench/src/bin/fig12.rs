//! Figure 12: the impact of data replication on NUBA performance —
//! No-Rep vs Full-Rep vs Model-Driven Replication (all under LAB).

use nuba_bench::runner::{run_matrix, Job};
use nuba_bench::{figure_header, pct, Harness};
use nuba_types::{harmonic_mean_speedup, ArchKind, GpuConfig, ReplicationKind};
use nuba_workloads::{BenchmarkId, SharingClass};

fn main() {
    figure_header(
        "Figure 12",
        "Data replication policy on NUBA (speedup vs No-Rep)",
    );
    let h = Harness::from_env();
    let mk = |r: ReplicationKind| GpuConfig::paper_baseline(ArchKind::Nuba).with_replication(r);
    let nr_cfg = mk(ReplicationKind::None);
    let fr_cfg = mk(ReplicationKind::Full);
    let mdr_cfg = mk(ReplicationKind::Mdr);

    let jobs: Vec<Job> = BenchmarkId::ALL
        .iter()
        .flat_map(|&b| {
            [&nr_cfg, &fr_cfg, &mdr_cfg].map(|cfg| Job::new(b.to_string(), b, cfg.clone()))
        })
        .collect();
    let results = run_matrix(&h, &jobs);

    println!(
        "{:<8} {:>9} {:>9} {:>7} {:>8} {:>9}",
        "bench", "Full-Rep", "MDR", "mdr-on", "llc(FR)", "llc(MDR)"
    );
    let mut mdr_gains = Vec::new();
    let mut high_gains = Vec::new();
    for (i, &b) in BenchmarkId::ALL.iter().enumerate() {
        let nr = &results[i * 3].report;
        let fr = &results[i * 3 + 1].report;
        let mdr = &results[i * 3 + 2].report;
        let s_fr = fr.speedup_over(nr);
        let s_mdr = mdr.speedup_over(nr);
        println!(
            "{:<8} {:>9} {:>9} {:>6.0}% {:>8.2} {:>9.2}",
            b.to_string(),
            pct(s_fr),
            pct(s_mdr),
            mdr.mdr_replication_rate * 100.0,
            fr.llc_hit_rate(),
            mdr.llc_hit_rate()
        );
        mdr_gains.push(s_mdr);
        if b.spec().sharing == SharingClass::High {
            high_gains.push(s_mdr);
        }
    }
    println!(
        "\nMDR over No-Rep (hmean): overall={} high-sharing={}",
        pct(harmonic_mean_speedup(&mdr_gains)),
        pct(harmonic_mean_speedup(&high_gains))
    );
    println!("\nPaper: Full-Rep helps 2MM +189.9% / AN +75.1% / SN +72.0% / RN +33.9%");
    println!("       but hurts SC -17.9% / BT -18.6% / GRU -18.3% / BICG -16.5%;");
    println!("       MDR picks the winner per epoch: +15.1% on average, up to +183.9%.");

    std::process::exit(nuba_bench::runner::finish());
}
