//! Figure 13: normalized GPU energy — NoC versus the rest of the GPU.

use nuba_bench::runner::{run_matrix, Job};
use nuba_bench::{figure_header, main_configs, Harness};
use nuba_workloads::BenchmarkId;

fn main() {
    figure_header("Figure 13", "GPU energy: NoC vs rest, normalized to UBA");
    let h = Harness::from_env();
    let [(_, uba_cfg), (_, sm_cfg), _, (_, nuba_cfg)] = main_configs();

    let jobs: Vec<Job> = BenchmarkId::ALL
        .iter()
        .flat_map(|&b| {
            [&uba_cfg, &sm_cfg, &nuba_cfg].map(|cfg| Job::new(b.to_string(), b, cfg.clone()))
        })
        .collect();
    let results = run_matrix(&h, &jobs);

    println!(
        "{:<8} {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
        "bench", "UBA noc", "UBA rest", "SM noc", "SM rest", "NUBA noc", "NUBA rest"
    );
    let mut sums = [0.0f64; 6];
    let mut totals = (0.0f64, 0.0f64, 0.0f64);
    for (i, &b) in BenchmarkId::ALL.iter().enumerate() {
        let base = &results[i * 3].report;
        let sm = &results[i * 3 + 1].report;
        let nuba = &results[i * 3 + 2].report;
        // Energy per completed warp-op, normalized to UBA's total.
        let norm = |r: &nuba_core::SimReport| {
            let per_op = r.warp_ops.max(1) as f64;
            (r.energy.noc_j / per_op, r.energy.rest_j / per_op)
        };
        let (un, ur) = norm(base);
        let scale = un + ur;
        let (sn, sr) = norm(sm);
        let (nn, nr) = norm(nuba);
        let row = [
            un / scale,
            ur / scale,
            sn / scale,
            sr / scale,
            nn / scale,
            nr / scale,
        ];
        println!(
            "{:<8} {:>9.3} {:>9.3} | {:>9.3} {:>9.3} | {:>9.3} {:>9.3}",
            b.to_string(),
            row[0],
            row[1],
            row[2],
            row[3],
            row[4],
            row[5]
        );
        for (s, v) in sums.iter_mut().zip(row) {
            *s += v;
        }
        totals.0 += row[0] + row[1];
        totals.1 += row[2] + row[3];
        totals.2 += row[4] + row[5];
    }
    let n = BenchmarkId::ALL.len() as f64;
    println!("\nAverages (energy per unit work, UBA = 1.0):");
    println!(
        "  UBA    : noc={:.3} rest={:.3} total={:.3}",
        sums[0] / n,
        sums[1] / n,
        totals.0 / n
    );
    println!(
        "  UBA-sm : noc={:.3} rest={:.3} total={:.3}",
        sums[2] / n,
        sums[3] / n,
        totals.1 / n
    );
    println!(
        "  NUBA   : noc={:.3} rest={:.3} total={:.3}",
        sums[4] / n,
        sums[5] / n,
        totals.2 / n
    );
    println!(
        "  NUBA NoC energy reduction: {:.1}%; total GPU energy reduction: {:.1}%",
        100.0 * (1.0 - (sums[4] / sums[0])),
        100.0 * (1.0 - totals.2 / totals.0)
    );
    println!("\nPaper: NUBA cuts NoC energy 54.5% and total GPU energy 16.0% vs UBA;");
    println!("       SM-side UBA cuts NoC energy 25.9% and total energy 2.9%.");

    std::process::exit(nuba_bench::runner::finish());
}
