//! Figure 14: sensitivity analyses — GPU size, partition shape, LLC
//! capacity, page size, address mapping, LAB threshold.
//!
//! Each point reports NUBA's harmonic-mean improvement over the
//! equally-configured memory-side UBA, over the sweep benchmark set
//! (set `NUBA_FULL=1` for all 29 benchmarks).

use nuba_bench::runner::{run_matrix, Job};
use nuba_bench::{figure_header, pct, sweep_benchmarks, Harness};
use nuba_types::{harmonic_mean_speedup, ArchKind, GpuConfig, MappingKind, PagePolicyKind};
use nuba_workloads::{BenchmarkId, ScaleProfile};

fn improvement(
    h: &Harness,
    benches: &[BenchmarkId],
    uba: &GpuConfig,
    nuba: &GpuConfig,
    scale: Option<ScaleProfile>,
) -> f64 {
    let jobs: Vec<Job> = benches
        .iter()
        .flat_map(|&b| {
            [uba, nuba].map(|cfg| {
                let job = Job::new(b.to_string(), b, cfg.clone());
                match scale {
                    Some(s) => job.with_scale(s),
                    None => job,
                }
            })
        })
        .collect();
    let results = run_matrix(h, &jobs);
    let speedups: Vec<f64> = results
        .chunks_exact(2)
        .map(|pair| pair[1].report.speedup_over(&pair[0].report))
        .collect();
    harmonic_mean_speedup(&speedups)
}

fn main() {
    figure_header(
        "Figure 14",
        "Sensitivity analyses (NUBA improvement over iso-configured UBA)",
    );
    let h = Harness::from_env();
    let benches = sweep_benchmarks();
    let uba0 = GpuConfig::paper_baseline(ArchKind::MemSideUba);
    let nuba0 = GpuConfig::paper_baseline(ArchKind::Nuba);

    // --- GPU size ---
    println!("GPU size (2:2:1 ratio preserved):");
    for factor in [0.5, 1.0, 2.0] {
        let uba = uba0.clone().scaled(factor);
        let nuba = nuba0.clone().scaled(factor);
        let s = improvement(&h, &benches, &uba, &nuba, None);
        println!("  {factor:>4}x ({} SMs): {}", uba.num_sms, pct(s));
    }
    println!("  paper: +15.9% / +23.1% / +30.1%");

    // --- Partition shape: LLC slices per partition, total capacity const ---
    println!("\nLLC slices per partition (total LLC capacity constant):");
    for spp in [1usize, 2, 4] {
        let mut uba = uba0.clone();
        let mut nuba = nuba0.clone();
        for c in [&mut uba, &mut nuba] {
            *c = c.clone().with_llc_slices(c.num_channels * spp);
        }
        let s = improvement(&h, &benches, &uba, &nuba, None);
        println!(
            "  {spp} slice(s)/partition ({} slices): {}",
            uba.num_llc_slices,
            pct(s)
        );
    }
    println!("  paper: +15.1% / +23.1% / +41.2%");

    // --- LLC capacity ---
    println!("\nLLC capacity:");
    for factor in [0.5, 1.0, 2.0] {
        let mut uba = uba0.clone();
        let mut nuba = nuba0.clone();
        for c in [&mut uba, &mut nuba] {
            *c = c
                .clone()
                .with_llc_capacity((6.0 * factor) as usize * 1024 * 1024);
        }
        let s = improvement(&h, &benches, &uba, &nuba, None);
        println!(
            "  {factor:>4}x ({} MB): {}",
            uba.llc_total_bytes / (1024 * 1024),
            pct(s)
        );
    }
    println!("  paper: +12.9% / +23.1% / +31.7%");

    // --- Page size ---
    println!("\nPage size:");
    for (name, scale) in [
        ("4 KB", ScaleProfile::default()),
        ("2 MB", ScaleProfile::huge_pages()),
    ] {
        let s = improvement(&h, &benches, &uba0, &nuba0, Some(scale));
        println!("  {name}: {}", pct(s));
    }
    println!("  paper: +23.1% / +21.6%");

    // --- Address mapping: UBA upgraded to PAE ---
    println!("\nUBA address mapping:");
    let uba_pae = uba0.clone().with_mapping(MappingKind::Pae);
    let s_fixed = improvement(&h, &benches, &uba0, &nuba0, None);
    let s_pae = improvement(&h, &benches, &uba_pae, &nuba0, None);
    println!("  vs fixed-channel UBA: {}", pct(s_fixed));
    println!("  vs PAE UBA:           {}", pct(s_pae));
    println!("  paper: +23.1% / +19.7%");

    // --- LAB threshold ---
    println!("\nLAB threshold (NUBA-No-Rep vs UBA):");
    for t in [0.8, 0.9, 0.95] {
        let nuba = nuba0
            .clone()
            .with_replication(nuba_types::ReplicationKind::None)
            .with_policy(PagePolicyKind::Lab { threshold: t });
        let s = improvement(&h, &benches, &uba0, &nuba, None);
        println!("  threshold {t}: {}", pct(s));
    }
    println!("  paper: +14.5% / +14.8% / +13.1%");

    std::process::exit(nuba_bench::runner::finish());
}
