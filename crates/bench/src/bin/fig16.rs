//! Figure 16: NUBA in Multi-Chip-Module GPUs (§7.6).
//!
//! 128 SMs, 128 LLC slices, 64 channels over 4 modules with 720 GB/s
//! bidirectional inter-module links; compared against a monolithic GPU
//! of the same resources.

use nuba_bench::runner::{run_matrix, Job};
use nuba_bench::{class_means, figure_header, pct, Harness};
use nuba_types::{ArchKind, GpuConfig};
use nuba_workloads::BenchmarkId;

fn main() {
    figure_header(
        "Figure 16",
        "NUBA on MCM-GPUs vs monolithic GPUs (same resources)",
    );
    let h = Harness::from_env();

    let mono_uba = GpuConfig::paper_baseline(ArchKind::MemSideUba).scaled(2.0);
    let mono_nuba = GpuConfig::paper_baseline(ArchKind::Nuba).scaled(2.0);
    let mcm_uba = GpuConfig::paper_mcm(ArchKind::McmUba);
    let mcm_nuba = GpuConfig::paper_mcm(ArchKind::McmNuba);

    let jobs: Vec<Job> = BenchmarkId::ALL
        .iter()
        .flat_map(|&b| {
            [&mono_uba, &mono_nuba, &mcm_uba, &mcm_nuba]
                .map(|cfg| Job::new(b.to_string(), b, cfg.clone()))
        })
        .collect();
    let results = run_matrix(&h, &jobs);

    println!(
        "{:<8} {:>14} {:>14}",
        "bench", "mono NUBA/UBA", "MCM NUBA/UBA"
    );
    let mut mono_rows = Vec::new();
    let mut mcm_rows = Vec::new();
    for (i, &b) in BenchmarkId::ALL.iter().enumerate() {
        let mu = &results[i * 4].report;
        let mn = &results[i * 4 + 1].report;
        let cu = &results[i * 4 + 2].report;
        let cn = &results[i * 4 + 3].report;
        let mono = mn.speedup_over(mu);
        let mcm = cn.speedup_over(cu);
        println!("{:<8} {:>14} {:>14}", b.to_string(), pct(mono), pct(mcm));
        mono_rows.push((b, mono));
        mcm_rows.push((b, mcm));
    }
    let mono = class_means(&mono_rows);
    let mcm = class_means(&mcm_rows);
    println!(
        "\nMonolithic 128-SM: low={} high={} overall={}",
        pct(mono.low),
        pct(mono.high),
        pct(mono.all)
    );
    println!(
        "MCM 4x32-SM:       low={} high={} overall={}",
        pct(mcm.low),
        pct(mcm.high),
        pct(mcm.all)
    );
    println!("\nPaper: +30.1% monolithic vs +40.0% MCM — NUBA matters more when the");
    println!("       inter-module links are scarcer than the on-chip NoC.");

    std::process::exit(nuba_bench::runner::finish());
}
