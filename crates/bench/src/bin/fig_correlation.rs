//! Correlation of the tier-0 analytical screen against full simulation
//! (Accel-Sim methodology): for all 29 Table-2 benchmarks, run the
//! static kernel profiler's predictions and the cycle-level NUBA
//! simulator side by side and report per-kernel footprint error,
//! sharing-class agreement, and bottleneck agreement.
//!
//! Writes `BENCH_correlation.json` (override with
//! `NUBA_CORRELATION=<path>`) and exits nonzero if sharing-class
//! agreement drops below 80% — the CI smoke gate.

use nuba_bench::runner::{self, run_matrix, Job};
use nuba_bench::screen::{screen_benchmark, ScreenPrediction};
use nuba_bench::{figure_header, main_configs, Harness};
use nuba_types::{SmId, WarpId};
use nuba_workloads::{sharing_buckets, BenchmarkId, WarpOp, Workload};

struct Row {
    pred: ScreenPrediction,
    touched_pages: u64,
    footprint_error: f64,
    class_agrees: bool,
    dominant: &'static str,
    bottleneck_agrees: bool,
}

/// Distinct pages touched by a deterministic sample of the workload's
/// access streams (the same streams the simulator consumes): the
/// dynamic ground truth the static footprint is correlated against.
/// Returns `(touched, max_page)`.
fn dynamic_footprint(wl: &Workload, warps: usize, ops_per_warp: usize) -> (u64, u64) {
    let pb = wl.layout().page_bytes;
    let mut pages = std::collections::BTreeSet::new();
    for sm in 0..wl.num_sms() {
        for w in 0..warps {
            let mut s = wl.stream(SmId(sm), WarpId(w));
            for _ in 0..ops_per_warp {
                if let WarpOp::Mem(a) = s.next_op() {
                    pages.insert(a.vaddr.0 / pb);
                }
            }
        }
    }
    let max = pages.iter().next_back().copied().unwrap_or(0);
    (pages.len() as u64, max)
}

fn main() {
    figure_header(
        "Correlation",
        "Static profiler (tier-0 screen) vs cycle-level simulation, 29 benchmarks",
    );
    let h = Harness::from_env();
    let (_, nuba_cfg) = main_configs()[3].clone();

    let jobs: Vec<Job> = BenchmarkId::ALL
        .iter()
        .map(|&b| Job::new(b.to_string(), b, nuba_cfg.clone()))
        .collect();
    let results = run_matrix(&h, &jobs);

    println!(
        "{:<8} {:>10} {:>10} {:>8} {:>7} {:>7} {:>9} {:>17} {:>6}",
        "bench",
        "pred-pages",
        "dyn-pages",
        "fp-err",
        "class",
        "agree",
        "pred-bneck",
        "sim-bottleneck",
        "agree"
    );
    let mut rows: Vec<Row> = Vec::new();
    for (i, &b) in BenchmarkId::ALL.iter().enumerate() {
        let pred = screen_benchmark(b, &h.scale, &nuba_cfg);
        let report = &results[i].report;
        // The dynamic side comes from the very workload the job
        // simulated (same builder, same seed): the sharing class from
        // the built layout's histogram, the footprint from a stream
        // sample.
        let wl = Workload::build(b, h.scale, nuba_cfg.num_sms, h.seed);
        let dynamic_class = sharing_buckets(wl.layout(), nuba_cfg.num_sms).classify();
        let (touched, max_page) = dynamic_footprint(&wl, 2, 512);
        let predicted = pred.profile.total_pages();
        // The static footprint is a provable upper bound: every touched
        // page must fall inside the predicted range.
        assert!(
            max_page < predicted,
            "{b}: dynamic page {max_page} outside static prediction {predicted}"
        );
        // Signed relative error of the static footprint against the
        // dynamically-touched page count; ≥ 0 by the superset property,
        // shrinking as the sample covers more of each region.
        let footprint_error = (predicted as f64 - touched as f64) / predicted.max(1) as f64;
        let class_agrees = pred.profile.sharing_class() == dynamic_class;
        let (dominant, _) = report.bottleneck_breakdown().dominant();
        let bottleneck_agrees = pred.bottleneck_agrees(dominant);
        println!(
            "{:<8} {:>10} {:>10} {:>7.1}% {:>7} {:>7} {:>9} {:>17} {:>6}",
            b.to_string(),
            predicted,
            touched,
            footprint_error * 100.0,
            pred.profile.sharing_class().to_string(),
            if class_agrees { "yes" } else { "NO" },
            pred.predicted_bottleneck(),
            dominant,
            if bottleneck_agrees { "yes" } else { "no" }
        );
        rows.push(Row {
            pred,
            touched_pages: touched,
            footprint_error,
            class_agrees,
            dominant,
            bottleneck_agrees,
        });
    }

    let n = rows.len() as f64;
    let class_agreement = rows.iter().filter(|r| r.class_agrees).count() as f64 / n;
    let bottleneck_agreement = rows.iter().filter(|r| r.bottleneck_agrees).count() as f64 / n;
    let mean_abs_fp_err = rows.iter().map(|r| r.footprint_error.abs()).sum::<f64>() / n;
    let racy: Vec<String> = rows
        .iter()
        .filter(|r| !r.pred.profile.racy_params.is_empty())
        .map(|r| r.pred.bench.to_string())
        .collect();

    println!(
        "\nSharing-class agreement:  {:>5.1}%",
        class_agreement * 100.0
    );
    println!(
        "Bottleneck agreement:     {:>5.1}%",
        bottleneck_agreement * 100.0
    );
    println!(
        "Mean |footprint error|:   {:>5.1}%",
        mean_abs_fp_err * 100.0
    );
    println!(
        "Write-shared race kernels: {}/{} ({})",
        racy.len(),
        rows.len(),
        racy.join(",")
    );

    let path =
        std::env::var("NUBA_CORRELATION").unwrap_or_else(|_| "BENCH_correlation.json".to_string());
    let mut json = String::from("{\n  \"benchmarks\": [\n");
    json.push_str(
        &rows
            .iter()
            .map(|r| {
                format!(
                    "    {{\"bench\": \"{}\", \"predicted_pages\": {}, \"touched_pages\": {}, \
                     \"footprint_error\": {:.4}, \"predicted_class\": \"{}\", \
                     \"class_agrees\": {}, \"predicted_bottleneck\": \"{}\", \
                     \"sim_bottleneck\": \"{}\", \"bottleneck_agrees\": {}, \
                     \"replicate\": {}, \"racy_params\": [{}]}}",
                    r.pred.bench,
                    r.pred.profile.total_pages(),
                    r.touched_pages,
                    r.footprint_error,
                    r.pred.profile.sharing_class(),
                    r.class_agrees,
                    r.pred.predicted_bottleneck(),
                    r.dominant,
                    r.bottleneck_agrees,
                    r.pred.verdict.replicate,
                    r.pred
                        .profile
                        .racy_params
                        .iter()
                        .map(|p| format!("\"{p}\""))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    json.push_str(&format!(
        "\n  ],\n  \"sharing_class_agreement\": {class_agreement:.4},\n  \
         \"bottleneck_agreement\": {bottleneck_agreement:.4},\n  \
         \"mean_abs_footprint_error\": {mean_abs_fp_err:.4}\n}}\n"
    ));
    match std::fs::write(&path, json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }

    let code = runner::finish();
    if class_agreement < 0.8 {
        eprintln!(
            "fig_correlation: sharing-class agreement {:.1}% below the 80% gate",
            class_agreement * 100.0
        );
        std::process::exit(1);
    }
    std::process::exit(code);
}
