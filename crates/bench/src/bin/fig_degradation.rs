//! Degradation sweep: IPC retention under uniform interconnect derating.
//!
//! Every SM-side link (NUBA local links and the crossbar injection /
//! ejection ports on all architectures) is derated to a fraction of its
//! nominal bandwidth via a deterministic [`FaultPlan`], and performance
//! is reported relative to the fault-free run of the *same*
//! architecture. This separates the paper's headline claim (NUBA beats
//! UBA at nominal bandwidth) from a robustness question the fault model
//! lets us ask: whose performance degrades more gracefully when the
//! interconnect loses bandwidth uniformly?
//!
//! Each faulted run carries a forward-progress deadline, so a factor
//! harsh enough to starve the machine quarantines that one job instead
//! of hanging the sweep.

use nuba_bench::runner::{run_matrix, Job};
use nuba_bench::{chart, figure_header, Harness};
use nuba_engine::FaultPlan;
use nuba_types::{ArchKind, GpuConfig};
use nuba_workloads::BenchmarkId;

/// Derate factors swept, in nominal-bandwidth fractions.
const FACTORS: [f64; 5] = [1.0, 0.75, 0.5, 0.25, 0.1];

fn archs() -> [(&'static str, GpuConfig); 3] {
    [
        ("UBA-mem", GpuConfig::paper_baseline(ArchKind::MemSideUba)),
        ("UBA-sm", GpuConfig::paper_baseline(ArchKind::SmSideUba)),
        ("NUBA", GpuConfig::paper_baseline(ArchKind::Nuba)),
    ]
}

fn main() {
    figure_header(
        "Degradation",
        "IPC retention under uniform link/port bandwidth derating",
    );
    let h = Harness::from_env();
    let bench = BenchmarkId::Kmeans;

    let jobs: Vec<Job> = archs()
        .iter()
        .flat_map(|(name, cfg)| {
            FACTORS.map(|factor| {
                let plan = FaultPlan::uniform_link_derate(factor, cfg.num_sms, cfg.num_llc_slices);
                Job::new(format!("{name} x{factor}"), bench, cfg.clone()).with_faults(plan)
            })
        })
        .collect();
    let results = run_matrix(&h, &jobs);

    println!(
        "{:<10} {:>8} {:>12} {:>10}  retention",
        "arch", "factor", "ops/cycle", "retained"
    );
    let mut retention_rows: Vec<(String, f64)> = Vec::new();
    for (a, (name, _)) in archs().iter().enumerate() {
        let base = results[a * FACTORS.len()].report.perf();
        for (f, &factor) in FACTORS.iter().enumerate() {
            let r = &results[a * FACTORS.len() + f];
            if let Some(err) = &r.error {
                println!("{name:<10} {factor:>8.2} {:>12} {:>10}  {err}", "-", "-");
                continue;
            }
            let perf = r.report.perf();
            let retained = if base > 0.0 { perf / base } else { 0.0 };
            println!(
                "{name:<10} {factor:>8.2} {perf:>12.3} {:>9.1}%  {}",
                100.0 * retained,
                chart::bar(retained, 1.0, 30)
            );
            if factor < 1.0 {
                retention_rows.push((format!("{name} x{factor}"), 100.0 * retained));
            }
        }
    }

    println!("\nIPC retention vs the same architecture at nominal bandwidth:");
    println!("{}", chart::series(&retention_rows, 40));
    println!("\nRetention is normalized per-architecture, so a flat bar means the");
    println!("architecture was not interconnect-bound at that factor; steep falloff");
    println!("means the derated links were on its critical path.");

    std::process::exit(nuba_bench::runner::finish());
}
