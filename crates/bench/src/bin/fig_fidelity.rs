//! Fidelity-ladder validation (SMARTS methodology): run tier 1
//! (sampled simulation with declared error bounds) and tier 2 (full
//! simulation, the ground truth) side by side across the 11 `simcheck`
//! architecture configurations and all 29 Table-2 benchmarks, and
//! report per-run IPC error, bound coverage, and the detailed-cycle
//! work the ladder saved.
//!
//! Writes `BENCH_fidelity.json` (override with `NUBA_FIDELITY_JSON=
//! <path>`) and exits nonzero if any tier-1 IPC bound fails to cover
//! the tier-2 truth or the mean |IPC error| exceeds 10% — the CI smoke
//! gate.

use nuba_bench::runner::{self, run_matrix, Job, JobResult};
use nuba_bench::{
    figure_header, main_configs, simcheck_configs, FidelityMode, Harness, HarnessOptions,
};
use nuba_types::Fidelity;
use nuba_workloads::BenchmarkId;

struct Row {
    label: String,
    bench: BenchmarkId,
    truth_ipc: f64,
    sampled_ipc: f64,
    half_width: f64,
    abs_rel_error: f64,
    covered: bool,
    bw_covered: bool,
    intervals: u32,
    detailed_sampled: u64,
    detailed_full: u64,
}

/// Relative |error| of the sampled IPC against the full-run truth.
fn rel_error(truth: f64, sampled: f64) -> f64 {
    if truth.abs() < 1e-12 {
        sampled.abs()
    } else {
        (sampled - truth).abs() / truth
    }
}

/// Whether every declared tier-bandwidth bound of the sampled report
/// covers the full run's exact per-cycle value.
fn bandwidths_covered(sampled: &JobResult, truth: &JobResult) -> bool {
    sampled
        .report
        .tier_bandwidth_bounds()
        .iter()
        .zip(truth.report.tier_bandwidth_bounds().iter())
        .all(|((_, bound), (_, exact))| bound.contains(exact.mean))
}

fn main() {
    figure_header(
        "Fidelity",
        "Sampled simulation (tier 1) vs full simulation (tier 2): error bounds and saved work",
    );
    let h = Harness::from_env();
    let (_, nuba_cfg) = main_configs()[3].clone();

    // The validation matrix: every simcheck architecture on the
    // mixed-behaviour Kmeans workload, plus every Table-2 benchmark on
    // the NUBA main configuration.
    let mut specs: Vec<(String, BenchmarkId, nuba_types::GpuConfig)> = simcheck_configs()
        .into_iter()
        .map(|(name, cfg)| (name, BenchmarkId::Kmeans, cfg))
        .collect();
    for &b in BenchmarkId::ALL {
        specs.push((b.to_string(), b, nuba_cfg.clone()));
    }

    // Each spec becomes two pinned jobs: tier 1 then tier 2. A single
    // matrix keeps the warm-state cache shared between the pair. The
    // pins make the figure immune to the process-wide fidelity mode.
    let mut jobs: Vec<Job> = Vec::new();
    for (name, bench, cfg) in &specs {
        jobs.push(
            Job::new(format!("{name}/sampled"), *bench, cfg.clone())
                .with_fidelity(Fidelity::sampled_default()),
        );
        jobs.push(
            Job::new(format!("{name}/full"), *bench, cfg.clone()).with_fidelity(Fidelity::Full),
        );
    }
    let results = run_matrix(&h, &jobs);

    // Under `NUBA_FIDELITY=auto` a third, unpinned arm measures what
    // the escalation ladder actually spends on this matrix — the
    // `all_experiments` economics (tier-0 screens resolving most jobs
    // for zero detailed cycles), validated against the pinned truth.
    let auto_mode = HarnessOptions::get().fidelity == FidelityMode::Auto;
    let auto_results = if auto_mode {
        let auto_jobs: Vec<Job> = specs
            .iter()
            .map(|(name, bench, cfg)| Job::new(format!("{name}/auto"), *bench, cfg.clone()))
            .collect();
        run_matrix(&h, &auto_jobs)
    } else {
        Vec::new()
    };

    println!(
        "{:<26} {:>9} {:>9} {:>8} {:>8} {:>7} {:>6} {:>10}",
        "config/bench", "truth", "sampled", "±bound", "err", "covered", "ivals", "detail-red"
    );
    let mut rows: Vec<Row> = Vec::new();
    for (i, (name, bench, _)) in specs.iter().enumerate() {
        let sampled = &results[2 * i];
        let truth = &results[2 * i + 1];
        if sampled.failed() || truth.failed() || sampled.cancelled() || truth.cancelled() {
            eprintln!("fig_fidelity: skipping {name} — job did not complete");
            continue;
        }
        let bound = sampled.report.ipc_bound();
        let truth_ipc = truth.report.perf();
        let covered = bound.contains(truth_ipc);
        let bw_covered = bandwidths_covered(sampled, truth);
        let abs_rel_error = rel_error(truth_ipc, bound.mean);
        let detailed_sampled = sampled.report.detailed_cycles();
        let detailed_full = truth.report.detailed_cycles();
        println!(
            "{:<26} {:>9.3} {:>9.3} {:>8.3} {:>7.1}% {:>7} {:>6} {:>9.1}x",
            name,
            truth_ipc,
            bound.mean,
            bound.half_width,
            abs_rel_error * 100.0,
            if covered { "yes" } else { "NO" },
            sampled.report.sample_intervals(),
            detailed_full as f64 / detailed_sampled.max(1) as f64,
        );
        rows.push(Row {
            label: name.clone(),
            bench: *bench,
            truth_ipc,
            sampled_ipc: bound.mean,
            half_width: bound.half_width,
            abs_rel_error,
            covered,
            bw_covered,
            intervals: sampled.report.sample_intervals(),
            detailed_sampled,
            detailed_full,
        });
    }

    let n = rows.len() as f64;
    let mean_abs_err = rows.iter().map(|r| r.abs_rel_error).sum::<f64>() / n.max(1.0);
    let coverage = rows.iter().filter(|r| r.covered).count() as f64 / n.max(1.0);
    let bw_coverage = rows.iter().filter(|r| r.bw_covered).count() as f64 / n.max(1.0);
    let detailed_sampled: u64 = rows.iter().map(|r| r.detailed_sampled).sum();
    let detailed_full: u64 = rows.iter().map(|r| r.detailed_full).sum();
    let detail_reduction = detailed_full as f64 / detailed_sampled.max(1) as f64;

    println!("\nMean |IPC error|:        {:>6.2}%", mean_abs_err * 100.0);
    println!("IPC bound coverage:      {:>6.1}%", coverage * 100.0);
    println!("Bandwidth bound coverage:{:>6.1}%", bw_coverage * 100.0);
    println!("Detail-cycle reduction:  {detail_reduction:>6.1}x");

    // Escalation-ladder economics (the `all_experiments` story): how
    // many jobs each rung resolved and the matrix-level detail saving
    // relative to the pinned full arm.
    let mut auto_json = String::new();
    if auto_mode {
        let mut tiers = [0usize; 3];
        let mut escalated = 0usize;
        let mut auto_detailed = 0u64;
        for r in &auto_results {
            tiers[usize::from(r.fidelity.tier())] += 1;
            if r.escalated {
                escalated += 1;
            }
            if r.fidelity.simulates() {
                auto_detailed += r.report.detailed_cycles();
            }
        }
        let auto_reduction = detailed_full as f64 / auto_detailed.max(1) as f64;
        println!(
            "Auto ladder:             {} tier-0, {} tier-1, {} tier-2 \
             ({escalated} escalated) — {auto_reduction:.1}x less detail than full",
            tiers[0], tiers[1], tiers[2]
        );
        auto_json = format!(
            ",\n  \"auto\": {{\"jobs\": {}, \"tier0\": {}, \"tier1\": {}, \
             \"tier2\": {}, \"escalated\": {escalated}, \
             \"detailed_cycles\": {auto_detailed}, \
             \"detail_reduction\": {auto_reduction:.2}}}",
            auto_results.len(),
            tiers[0],
            tiers[1],
            tiers[2],
        );
    }

    let path =
        std::env::var("NUBA_FIDELITY_JSON").unwrap_or_else(|_| "BENCH_fidelity.json".to_string());
    let mut json = String::from("{\n  \"runs\": [\n");
    json.push_str(
        &rows
            .iter()
            .map(|r| {
                format!(
                    "    {{\"label\": \"{}\", \"bench\": \"{}\", \"truth_ipc\": {:.6}, \
                     \"sampled_ipc\": {:.6}, \"half_width\": {:.6}, \
                     \"abs_rel_error\": {:.6}, \"covered\": {}, \"bw_covered\": {}, \
                     \"intervals\": {}, \"detailed_cycles_sampled\": {}, \
                     \"detailed_cycles_full\": {}}}",
                    r.label,
                    r.bench,
                    r.truth_ipc,
                    r.sampled_ipc,
                    r.half_width,
                    r.abs_rel_error,
                    r.covered,
                    r.bw_covered,
                    r.intervals,
                    r.detailed_sampled,
                    r.detailed_full,
                )
            })
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    json.push_str(&format!(
        "\n  ],\n  \"mean_abs_ipc_error\": {mean_abs_err:.6},\n  \
         \"ipc_bound_coverage\": {coverage:.4},\n  \
         \"bandwidth_bound_coverage\": {bw_coverage:.4},\n  \
         \"detailed_cycles_sampled\": {detailed_sampled},\n  \
         \"detailed_cycles_full\": {detailed_full},\n  \
         \"detail_reduction\": {detail_reduction:.2}{auto_json}\n}}\n"
    ));
    match std::fs::write(&path, json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }

    let code = runner::finish();
    if coverage < 1.0 {
        eprintln!(
            "fig_fidelity: IPC bound coverage {:.1}% below the 100% gate",
            coverage * 100.0
        );
        std::process::exit(1);
    }
    if mean_abs_err > 0.10 {
        eprintln!(
            "fig_fidelity: mean |IPC error| {:.1}% above the 10% gate",
            mean_abs_err * 100.0
        );
        std::process::exit(1);
    }
    std::process::exit(code);
}
