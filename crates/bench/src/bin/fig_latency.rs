//! Latency figure: per-tier read-latency CDFs and stage queueing-delay
//! percentiles across the full architecture matrix — both UBA baselines
//! and NUBA under every replication x page-policy combination (the same
//! eleven configurations `simcheck` gates on).
//!
//! Every read reply lands in a deterministic log2-bucketed histogram
//! keyed by the bandwidth tier that served it (partition-local LLC hit,
//! remote LLC hit over the NoC, or DRAM), so the figure shows *where*
//! NUBA's non-uniform bandwidth pays off: local hits complete in a few
//! tens of cycles while UBA routes every hit through the crossbar.
//! Per-stage queueing delays (SM->slice, slice queue, LLC service,
//! DRAM+reply) come from the sampled lifecycle tracer.
//!
//! All numbers are simulated cycles and integer counts — byte-identical
//! across worker counts and skip modes. Export the underlying data with
//! `NUBA_METRICS=<file>` (Prometheus text) alongside the usual
//! telemetry knobs.

use nuba_bench::runner::{self, run_matrix, Job};
use nuba_bench::{chart, figure_header, Harness};
use nuba_types::{
    ArchKind, GpuConfig, LatencySummary, PagePolicyKind, ReplicationKind, TelemetryConfig,
};
use nuba_workloads::BenchmarkId;

/// The same architecture matrix `simcheck` covers: both UBA baselines
/// plus NUBA with each replication / page-allocation policy.
fn configs() -> Vec<(String, GpuConfig)> {
    let mut out = vec![
        (
            "UBA-mem".to_string(),
            GpuConfig::paper_baseline(ArchKind::MemSideUba),
        ),
        (
            "UBA-sm".to_string(),
            GpuConfig::paper_baseline(ArchKind::SmSideUba),
        ),
    ];
    for (rep_name, rep) in [
        ("NoRep", ReplicationKind::None),
        ("FullRep", ReplicationKind::Full),
        ("MDR", ReplicationKind::Mdr),
    ] {
        for (pol_name, pol) in [
            ("FirstTouch", PagePolicyKind::FirstTouch),
            ("RoundRobin", PagePolicyKind::RoundRobin),
            ("LAB", PagePolicyKind::lab_default()),
        ] {
            let cfg = GpuConfig::paper_baseline(ArchKind::Nuba)
                .with_replication(rep)
                .with_policy(pol);
            out.push((format!("NUBA-{rep_name}-{pol_name}"), cfg));
        }
    }
    out
}

fn main() {
    figure_header(
        "Latency",
        "per-tier read-latency CDFs and stage queueing delays across the architecture matrix",
    );
    let h = Harness::from_env();
    let bench = BenchmarkId::Kmeans;

    let jobs: Vec<Job> = configs()
        .into_iter()
        .map(|(name, cfg)| {
            // Lifecycle tracing feeds the per-stage histograms; the
            // windowed sampler carries per-window percentiles too.
            let cfg = cfg.with_telemetry(TelemetryConfig {
                window_cycles: Some((h.cycles / 20).max(100)),
                trace_sample_period: 16,
                window_latency: true,
                ..GpuConfig::paper_baseline(ArchKind::Nuba).telemetry
            });
            Job::new(name, bench, cfg)
        })
        .collect();
    let results = run_matrix(&h, &jobs);
    runner::write_telemetry_outputs(&results);

    println!("{bench} read latency by bandwidth tier (simulated cycles):\n");
    println!(
        "{:<24} {:>7} {:>7} {:>7} {:>7} {:>9}",
        "config / tier", "p50", "p95", "p99", "max", "reads"
    );
    for r in &results {
        if let Some(err) = &r.error {
            println!("{:<24} quarantined: {err}", r.label);
            continue;
        }
        let overall = LatencySummary::of(&r.report.latency.overall());
        println!(
            "{:<24} {:>7} {:>7} {:>7} {:>7} {:>9}",
            r.label, overall.p50, overall.p95, overall.p99, overall.max, overall.count
        );
        for (name, s) in r.report.latency.tier_summaries() {
            if s.count == 0 {
                continue;
            }
            println!(
                "  {:<22} {:>7} {:>7} {:>7} {:>7} {:>9}",
                name, s.p50, s.p95, s.p99, s.max, s.count
            );
        }
    }

    // CDFs for the three headline architectures, one line per occupied
    // log2 bucket: latency upper bound, cumulative share, bar.
    println!("\nPer-tier latency CDFs (log2 buckets, cumulative fraction of reads):");
    for r in results
        .iter()
        .filter(|r| matches!(r.label.as_str(), "UBA-mem" | "UBA-sm" | "NUBA-MDR-LAB"))
    {
        if r.error.is_some() {
            continue;
        }
        println!("\n{}:", r.label);
        for (name, hist) in r
            .report
            .latency
            .tier_summaries()
            .iter()
            .map(|(n, _)| *n)
            .zip(r.report.latency.tiers.iter())
        {
            let points = hist.cdf_points();
            if points.is_empty() {
                continue;
            }
            let total = hist.count().max(1);
            println!("  {name} ({} reads):", hist.count());
            for (ub, cum) in points {
                let frac = cum as f64 / total as f64;
                println!(
                    "    <={ub:>8} {} {:>5.1}%",
                    chart::bar(frac, 1.0, 30),
                    frac * 100.0
                );
            }
        }
    }

    println!("\nStage queueing delays on NUBA-MDR-LAB (sampled lifecycles):");
    if let Some(r) = results.iter().find(|r| r.label == "NUBA-MDR-LAB") {
        for (name, s) in r.report.latency.stage_summaries() {
            println!(
                "  {:<12} p50 {:>6}  p95 {:>6}  p99 {:>6}  max {:>6}  ({} samples)",
                name, s.p50, s.p95, s.p99, s.max, s.count
            );
        }
    }

    std::process::exit(runner::finish());
}
