//! Time-series figure: per-window replies/cycle and bottleneck mix for
//! the three single-module architectures, with a mid-run bandwidth
//! fault so the windows show the machine entering and leaving the
//! degraded regime.
//!
//! This is the windowed-telemetry showcase: each job runs with the
//! sampler enabled (`TelemetryConfig`), and the figure is drawn from
//! the [`JobResult::windows`](nuba_bench::runner::JobResult) the
//! runner brings back — the same data
//! `NUBA_TIMESERIES=<file>` exports as JSONL and `NUBA_TRACE=<file>`
//! complements with Chrome-traceable request lifecycles.

use nuba_bench::runner::{self, run_matrix, Job};
use nuba_bench::{chart, figure_header, Harness};
use nuba_engine::{Fault, FaultPlan, LinkSite};
use nuba_types::{ArchKind, GpuConfig, TelemetryConfig};
use nuba_workloads::BenchmarkId;

/// Bandwidth retained inside the fault window.
const FAULT_FACTOR: f64 = 0.25;

fn archs() -> [(&'static str, GpuConfig); 3] {
    [
        ("UBA-mem", GpuConfig::paper_baseline(ArchKind::MemSideUba)),
        ("UBA-sm", GpuConfig::paper_baseline(ArchKind::SmSideUba)),
        ("NUBA", GpuConfig::paper_baseline(ArchKind::Nuba)),
    ]
}

/// Derate every SM-side link and crossbar port between `start` and
/// `end` — the bounded-outage variant of
/// [`FaultPlan::uniform_link_derate`]. Sites absent on an architecture
/// are ignored at apply time, so one shape is fair across all three.
fn mid_run_derate(cfg: &GpuConfig, start: u64, end: u64) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for sm in 0..cfg.num_sms {
        plan = plan
            .with(
                Fault::LinkDerate {
                    site: LinkSite::LocalReq(sm),
                    factor: FAULT_FACTOR,
                },
                start,
                Some(end),
            )
            .with(
                Fault::LinkDerate {
                    site: LinkSite::LocalReply(sm),
                    factor: FAULT_FACTOR,
                },
                start,
                Some(end),
            );
    }
    for p in 0..cfg.num_llc_slices {
        plan = plan
            .with(
                Fault::LinkDerate {
                    site: LinkSite::NocReqPort(p),
                    factor: FAULT_FACTOR,
                },
                start,
                Some(end),
            )
            .with(
                Fault::LinkDerate {
                    site: LinkSite::NocReplyPort(p),
                    factor: FAULT_FACTOR,
                },
                start,
                Some(end),
            );
    }
    plan
}

fn main() {
    figure_header(
        "Timeseries",
        "windowed replies/cycle and bottleneck mix under a mid-run link fault",
    );
    let h = Harness::from_env();
    let bench = BenchmarkId::Kmeans;

    // ~40 windows per run, all retained; derived from the cycle budget
    // so the figure scales with NUBA_CYCLES / NUBA_FAST deterministically.
    let window = (h.cycles / 40).max(100);
    let ring = (h.cycles / window) as usize + 2;
    let fault_start = h.cycles / 3;
    let fault_end = 2 * h.cycles / 3;

    let jobs: Vec<Job> = archs()
        .iter()
        .map(|(name, cfg)| {
            let cfg = cfg.clone().with_telemetry(TelemetryConfig {
                window_cycles: Some(window),
                ring_windows: ring,
                trace_sample_period: 64,
                trace_capacity: 4096,
                window_latency: true,
            });
            let plan = mid_run_derate(&cfg, fault_start, fault_end);
            Job::new(name.to_string(), bench, cfg).with_faults(plan)
        })
        .collect();
    let results = run_matrix(&h, &jobs);
    runner::write_telemetry_outputs(&results);

    println!(
        "{bench} on each architecture; links derated to x{FAULT_FACTOR} \
         in cycles {fault_start}..{fault_end}.\n"
    );
    for ((_, cfg), r) in archs().iter().zip(&results) {
        if let Some(err) = &r.error {
            println!("{:<8} quarantined: {err}", r.label);
            continue;
        }
        let port_bw = cfg.noc_total_bytes_per_cycle;
        println!(
            "{} — replies/cycle per {window}-cycle window (dominant bottleneck at right):",
            r.label
        );
        let peak = r
            .windows
            .iter()
            .map(|w| w.replies_per_cycle())
            .fold(0.0_f64, f64::max)
            .max(1e-9);
        for w in &r.windows {
            let mix = w.bottleneck_mix(port_bw);
            let (dom, share) = mix.dominant();
            let marker = if w.start_cycle < fault_end && w.end_cycle > fault_start {
                "!"
            } else {
                " "
            };
            println!(
                "  {marker}{:>7}..{:<7} {:>7.3} {} {dom} {:.0}%",
                w.start_cycle,
                w.end_cycle,
                w.replies_per_cycle(),
                chart::bar(w.replies_per_cycle(), peak, 30),
                share * 100.0
            );
        }
        println!(
            "  {} request lifecycles traced to completion\n",
            r.trace.len()
        );
    }
    println!("Windows overlapping the fault are marked `!`. Export the same data");
    println!("with NUBA_TIMESERIES=<file.jsonl> and NUBA_TRACE=<file.json>.");

    std::process::exit(runner::finish());
}
