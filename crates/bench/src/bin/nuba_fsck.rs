//! `nuba-fsck`: scan, verify, and garbage-collect a persistent
//! checkpoint store (see `nuba_bench::store`).
//!
//! ```text
//! nuba_fsck --store /var/tmp/nuba-store            # listing + summary
//! nuba_fsck --store /var/tmp/nuba-store --verify   # exit 1 on corruption
//! nuba_fsck --store /var/tmp/nuba-store --gc --max-bytes 104857600
//! ```

use std::path::PathBuf;

use nuba_bench::store::{CheckpointStore, StoreConfig};

const HELP: &str = "\
nuba-fsck — scan, verify, and GC a persistent checkpoint store

USAGE:
    nuba_fsck [OPTIONS]

OPTIONS:
    --store <DIR>       store root (default: $NUBA_STORE_DIR)
    --verify            fully decode every entry; exit 1 if any fails
    --quarantine        move entries that fail verification to quarantine/
    --gc                sweep orphaned temp files and enforce the size cap
    --max-bytes <N>     size cap for --gc (default: $NUBA_STORE_MAX_BYTES)
    --purge-quarantine  delete everything in quarantine/
    -h, --help          this text

With no action flags, prints the entry listing and a summary.
Opening the store always runs crash recovery (orphaned temp files from
an interrupted writer are quarantined before anything is read).
";

struct Args {
    store: Option<String>,
    verify: bool,
    quarantine: bool,
    gc: bool,
    max_bytes: Option<u64>,
    purge_quarantine: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut a = Args {
        store: None,
        verify: false,
        quarantine: false,
        gc: false,
        max_bytes: None,
        purge_quarantine: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value after {}", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "-h" | "--help" => {
                print!("{HELP}");
                std::process::exit(0);
            }
            "--store" => a.store = Some(value(&mut i)?),
            "--verify" => a.verify = true,
            "--quarantine" => a.quarantine = true,
            "--gc" => a.gc = true,
            "--max-bytes" => {
                a.max_bytes = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("max-bytes: {e}"))?,
                )
            }
            "--purge-quarantine" => a.purge_quarantine = true,
            other => return Err(format!("unknown option `{other}` (try --help)")),
        }
        i += 1;
    }
    Ok(a)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{HELP}");
            std::process::exit(2);
        }
    };
    let env_cfg = StoreConfig::from_env();
    let dir = args
        .store
        .clone()
        .map(PathBuf::from)
        .or(env_cfg.dir)
        .unwrap_or_else(|| {
            eprintln!("error: no store: pass --store <DIR> or set NUBA_STORE_DIR\n\n{HELP}");
            std::process::exit(2);
        });
    let cfg = StoreConfig {
        dir: Some(dir),
        max_bytes: args.max_bytes.unwrap_or(env_cfg.max_bytes),
        // fsck never injects faults, whatever the environment says.
        ..StoreConfig::default()
    };
    let store = match CheckpointStore::open(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot open store: {e}");
            std::process::exit(2);
        }
    };

    println!("store: {}", store.root().display());
    let verdicts = store.verify_all();
    let mut bad = 0usize;
    for v in &verdicts {
        match &v.status {
            Ok(key) => println!("  OK      {:<56} {:>10} B  {key}", v.file, v.bytes),
            Err(reason) => {
                bad += 1;
                println!("  CORRUPT {:<56} {:>10} B  {reason}", v.file, v.bytes);
            }
        }
    }
    println!(
        "summary: {} entr{} ({} B), {} corrupt, {} quarantined file(s)",
        verdicts.len(),
        if verdicts.len() == 1 { "y" } else { "ies" },
        store.total_bytes(),
        bad,
        store.quarantined_files().len()
    );

    if args.quarantine && bad > 0 {
        let moved = store.quarantine_corrupt();
        println!(
            "quarantined {} corrupt entr{}",
            moved.len(),
            if moved.len() == 1 { "y" } else { "ies" }
        );
        for f in &moved {
            println!("  -> quarantine/{f}");
        }
    }
    if args.gc {
        let (tmp, evicted) = store.gc();
        println!("gc: {tmp} orphaned temp file(s) quarantined, {evicted} entr(ies) evicted");
    }
    if args.purge_quarantine {
        let files = store.quarantined_files();
        for f in &files {
            let _ = std::fs::remove_file(store.quarantine_dir().join(f));
        }
        println!("purged {} quarantined file(s)", files.len());
    }

    if args.verify && bad > 0 {
        eprintln!("nuba_fsck: verification FAILED ({bad} corrupt entries)");
        std::process::exit(1);
    }
}
