//! `nuba-sim`: a command-line driver for one-off simulations — the tool
//! a downstream user reaches for before writing any code.
//!
//! ```text
//! nuba_sim --arch nuba --bench SGEMM --cycles 50000 --replication mdr
//! nuba_sim --arch uba-mem --bench all --noc-tbs 0.7 --json
//! nuba_sim --help
//! ```

use nuba_bench::runner::{run_matrix, Job, JobResult};
use nuba_bench::store::{CheckpointStore, StoreKey};
use nuba_bench::{Harness, HarnessOptions};
use nuba_core::{Checkpoint, SimReport, SimSession};
use nuba_types::{ArchKind, GpuConfig, MappingKind, PagePolicyKind, ReplicationKind};
use nuba_workloads::{BenchmarkId, ScaleProfile, Workload};

const HELP: &str = "\
nuba-sim — simulate one benchmark on one GPU configuration

USAGE:
    nuba_sim [OPTIONS]

OPTIONS:
    --arch <A>         uba-mem | uba-sm | nuba | mcm-uba | mcm-nuba   [nuba]
    --bench <B>        Table 2 abbreviation (e.g. SGEMM, LBM) or 'all' [SGEMM]
    --cycles <N>       timed window after warm-up                     [40000]
    --noc-tbs <F>      aggregate NoC bandwidth in TB/s                [1.4]
    --policy <P>       ft | rr | lab[:<threshold>] | migration | pagerep [lab:0.9]
    --replication <R>  none | full | mdr                              [mdr]
    --size <F>         scale SMs/LLC/channels by F (0.5, 1, 2)        [1]
    --warps <N>        active warp contexts per SM (latency-bound
                       occupancy when low)                            [32]
    --pages <S>        4k | 2m                                        [4k]
    --seed <N>         workload/layout seed                           [42]
    --kernel-every <N> flush L1s+LLC every N cycles (kernel boundaries)
    --capture <FILE>   write the benchmark's access trace and exit
    --trace <FILE>     simulate a captured trace instead of a benchmark
    --checkpoint <FILE> run the timed window, then save the machine state
    --resume <FILE>    restore a checkpoint and run to --cycles total
    --json             machine-readable output
    -h, --help         this text
";

struct Args {
    arch: ArchKind,
    bench: Option<BenchmarkId>, // None = all
    cycles: u64,
    noc_tbs: f64,
    policy: PagePolicyKind,
    replication: ReplicationKind,
    size: f64,
    warps: Option<usize>,
    huge_pages: bool,
    seed: u64,
    kernel_every: Option<u64>,
    capture: Option<String>,
    trace: Option<String>,
    checkpoint: Option<String>,
    resume: Option<String>,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut a = Args {
        arch: ArchKind::Nuba,
        bench: Some(BenchmarkId::Sgemm),
        cycles: 40_000,
        noc_tbs: 1.4,
        policy: PagePolicyKind::lab_default(),
        replication: ReplicationKind::Mdr,
        size: 1.0,
        warps: None,
        huge_pages: false,
        seed: 42,
        kernel_every: None,
        capture: None,
        trace: None,
        checkpoint: None,
        resume: None,
        json: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value after {}", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "-h" | "--help" => {
                print!("{HELP}");
                std::process::exit(0);
            }
            "--arch" => {
                a.arch = match value(&mut i)?.as_str() {
                    "uba-mem" => ArchKind::MemSideUba,
                    "uba-sm" => ArchKind::SmSideUba,
                    "nuba" => ArchKind::Nuba,
                    "mcm-uba" => ArchKind::McmUba,
                    "mcm-nuba" => ArchKind::McmNuba,
                    other => return Err(format!("unknown arch `{other}`")),
                };
            }
            "--bench" => {
                let v = value(&mut i)?;
                a.bench = if v.eq_ignore_ascii_case("all") {
                    None
                } else {
                    Some(
                        BenchmarkId::from_abbr(&v)
                            .ok_or_else(|| format!("unknown benchmark `{v}` (see table2)"))?,
                    )
                };
            }
            "--cycles" => a.cycles = value(&mut i)?.parse().map_err(|e| format!("cycles: {e}"))?,
            "--noc-tbs" => {
                a.noc_tbs = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("noc-tbs: {e}"))?
            }
            "--policy" => {
                let v = value(&mut i)?;
                a.policy = match v.split(':').collect::<Vec<_>>().as_slice() {
                    ["ft"] => PagePolicyKind::FirstTouch,
                    ["rr"] => PagePolicyKind::RoundRobin,
                    ["lab"] => PagePolicyKind::lab_default(),
                    ["lab", t] => PagePolicyKind::Lab {
                        threshold: t.parse().map_err(|e| format!("lab threshold: {e}"))?,
                    },
                    ["migration"] => PagePolicyKind::Migration,
                    ["pagerep"] => PagePolicyKind::PageReplication,
                    _ => return Err(format!("unknown policy `{v}`")),
                };
            }
            "--replication" => {
                a.replication = match value(&mut i)?.as_str() {
                    "none" => ReplicationKind::None,
                    "full" => ReplicationKind::Full,
                    "mdr" => ReplicationKind::Mdr,
                    other => return Err(format!("unknown replication `{other}`")),
                };
            }
            "--size" => a.size = value(&mut i)?.parse().map_err(|e| format!("size: {e}"))?,
            "--warps" => {
                let n: usize = value(&mut i)?.parse().map_err(|e| format!("warps: {e}"))?;
                if n == 0 {
                    return Err("warps: must be at least 1".to_string());
                }
                a.warps = Some(n);
            }
            "--pages" => {
                a.huge_pages = match value(&mut i)?.as_str() {
                    "4k" | "4K" => false,
                    "2m" | "2M" => true,
                    other => return Err(format!("unknown page size `{other}`")),
                };
            }
            "--seed" => a.seed = value(&mut i)?.parse().map_err(|e| format!("seed: {e}"))?,
            "--kernel-every" => {
                a.kernel_every = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("kernel-every: {e}"))?,
                )
            }
            "--capture" => a.capture = Some(value(&mut i)?),
            "--trace" => a.trace = Some(value(&mut i)?),
            "--checkpoint" => a.checkpoint = Some(value(&mut i)?),
            "--resume" => a.resume = Some(value(&mut i)?),
            "--json" => a.json = true,
            other => return Err(format!("unknown option `{other}` (try --help)")),
        }
        i += 1;
    }
    Ok(a)
}

fn build_config(a: &Args) -> GpuConfig {
    let mut cfg = if a.arch.is_mcm() {
        GpuConfig::paper_mcm(a.arch)
    } else {
        GpuConfig::paper_baseline(a.arch)
    };
    if (a.size - 1.0).abs() > 1e-9 {
        cfg = cfg.scaled(a.size);
    }
    cfg = cfg
        .with_noc_tbs(a.noc_tbs)
        .with_policy(a.policy)
        .with_replication(a.replication)
        .with_seed(a.seed)
        .with_kernel_boundaries(a.kernel_every);
    if let Some(w) = a.warps {
        cfg = cfg.with_active_warps(w);
    }
    if a.huge_pages {
        cfg = cfg.with_page_bytes(2 << 20);
    }
    if a.arch == ArchKind::SmSideUba || a.arch == ArchKind::MemSideUba {
        // UBA address maps conventionally randomize; keep the paper's
        // fixed-channel default for fairness but allow PAE via env.
        if HarnessOptions::get().pae {
            cfg = cfg.with_mapping(MappingKind::Pae);
        }
    }
    cfg
}

fn scale_of(a: &Args) -> ScaleProfile {
    if a.huge_pages {
        ScaleProfile::huge_pages()
    } else if HarnessOptions::get().fast {
        // `NUBA_FAST=1` quarter-density scaling, exactly like the
        // figure binaries — keeps checkpoint drills cheap in CI.
        ScaleProfile::fast()
    } else {
        ScaleProfile::default()
    }
}

/// Run the selected benchmarks on the `NUBA_JOBS` worker pool,
/// returning per-job reports plus wall-clock / throughput records.
fn run_all(a: &Args, benches: &[BenchmarkId]) -> Vec<JobResult> {
    let h = Harness {
        cycles: a.cycles,
        scale: scale_of(a),
        seed: a.seed,
        // `NUBA_FIDELITY` arrives resolved through the options snapshot;
        // the runner applies the per-job ladder on top of this.
        fidelity: HarnessOptions::get().fidelity.one_off(),
    };
    let jobs: Vec<Job> = benches
        .iter()
        .map(|&b| Job::new(b.to_string(), b, build_config(a)))
        .collect();
    run_matrix(&h, &jobs)
}

/// One job as a single JSON object: the full [`SimReport`] plus the
/// top-down bottleneck breakdown. Deliberately free of wall-clock and
/// throughput fields so the output is byte-identical run to run —
/// timing chatter goes to stderr instead.
fn json_report(b: BenchmarkId, a: &Args, r: &SimReport, quarantined: bool) -> String {
    let bd = r.bottleneck_breakdown();
    format!(
        "{{\"bench\":\"{}\",\"arch\":\"{}\",\"quarantined\":{},\"cycles\":{},\
         \"warp_ops\":{},\"read_replies\":{},\"local_misses\":{},\"remote_misses\":{},\
         \"l1_hits\":{},\"llc_hits\":{},\"llc_accesses\":{},\
         \"perf\":{:.4},\"replies_per_cycle\":{:.4},\"l1_hit_rate\":{:.4},\
         \"llc_hit_rate\":{:.4},\"local_miss_fraction\":{:.4},\"dram_accesses\":{},\
         \"dram_row_hit_rate\":{:.4},\"noc_bytes\":{},\"local_link_bytes\":{},\
         \"replica_fills\":{},\"mdr_replication_rate\":{:.4},\"page_faults\":{},\
         \"npb\":{:.4},\"channel_imbalance\":{:.4},\
         \"avg_read_latency\":{:.1},\"max_read_latency\":{},\
         \"stall_downstream\":{},\"stall_mshr\":{},\"stall_outstanding\":{},\
         \"local_link_busy_cycles\":{},\"noc_serialization_cycles\":{:.1},\
         \"dram_bus_busy_cycles\":{},\
         \"noc_watts\":{:.2},\"noc_energy_j\":{:.6},\"rest_energy_j\":{:.6},\
         \"latency\":{},\
         \"bottleneck\":{{\"compute\":{:.6},\"l1_bound\":{:.6},\
         \"local_link_bound\":{:.6},\"noc_bound\":{:.6},\
         \"llc_queue_bound\":{:.6},\"dram_bound\":{:.6},\"dominant\":\"{}\"}}}}",
        b,
        a.arch.label(),
        quarantined,
        r.cycles,
        r.warp_ops,
        r.read_replies,
        r.local_misses,
        r.remote_misses,
        r.l1_hits,
        r.llc_hits,
        r.llc_accesses,
        r.perf(),
        r.replies_per_cycle(),
        r.l1_hit_rate(),
        r.llc_hit_rate(),
        r.local_miss_fraction(),
        r.dram_accesses,
        r.dram_row_hit_rate,
        r.noc_bytes,
        r.local_link_bytes,
        r.replica_fills,
        r.mdr_replication_rate,
        r.page_faults,
        r.final_npb,
        r.channel_imbalance,
        r.avg_read_latency,
        r.max_read_latency,
        r.stall_downstream,
        r.stall_mshr,
        r.stall_outstanding,
        r.local_link_busy_cycles,
        r.noc_serialization_cycles,
        r.dram_bus_busy_cycles,
        r.noc_watts,
        r.energy.noc_j,
        r.energy.rest_j,
        r.latency.json(),
        bd.compute,
        bd.l1_bound,
        bd.local_link_bound,
        bd.noc_bound,
        bd.llc_queue_bound,
        bd.dram_bound,
        bd.dominant().0,
    )
}

fn print_human(b: BenchmarkId, j: &JobResult) {
    let r = &j.report;
    println!("{:-<66}", format!("-- {} ({}) ", b.spec().name, b));
    println!(
        "  perf            {:>10.2} warp-ops/cycle    replies/cycle {:>7.2}",
        r.perf(),
        r.replies_per_cycle()
    );
    println!(
        "  hit rates       L1 {:>5.1}%   LLC {:>5.1}%   DRAM rows {:>5.1}%",
        r.l1_hit_rate() * 100.0,
        r.llc_hit_rate() * 100.0,
        r.dram_row_hit_rate * 100.0
    );
    println!(
        "  locality        {:>5.1}% of misses local   {} replica fills   NPB {:.2}",
        r.local_miss_fraction() * 100.0,
        r.replica_fills,
        r.final_npb
    );
    println!(
        "  latency         avg {:>6.0} cycles   max {:>6}",
        r.avg_read_latency, r.max_read_latency
    );
    println!(
        "  traffic         NoC {:.1} MB   local links {:.1} MB   DRAM {} lines",
        r.noc_bytes as f64 / 1e6,
        r.local_link_bytes as f64 / 1e6,
        r.dram_accesses
    );
    println!(
        "  power/energy    NoC {:.1} W   energy {:.3} J (NoC {:.1}%)",
        r.noc_watts,
        r.energy.total_j(),
        r.energy.noc_fraction() * 100.0
    );
    let bd = r.bottleneck_breakdown();
    let shares = bd
        .shares()
        .iter()
        .map(|(name, share)| format!("{name} {:.0}%", share * 100.0))
        .collect::<Vec<_>>()
        .join("  ");
    println!("  bottleneck      {shares}");
    // Wall-clock is nondeterministic; keep it off the parseable stream.
    eprintln!(
        "  simulation      {:.2} s wall-clock   {:.0} cycles/s",
        j.wall_seconds, j.cycles_per_sec
    );
}

fn run_trace(a: &Args, path: &str) {
    let file = std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("error: cannot open trace {path}: {e}");
        std::process::exit(2);
    });
    let trace =
        nuba_workloads::Trace::read_from(std::io::BufReader::new(file)).unwrap_or_else(|e| {
            eprintln!("error: bad trace {path}: {e}");
            std::process::exit(2);
        });
    let mut cfg = build_config(a);
    // The machine must match the trace's SM count.
    let factor = trace.num_sms as f64 / cfg.num_sms as f64;
    if (factor - 1.0).abs() > 1e-9 {
        cfg = cfg.scaled(factor);
    }
    let wl = Workload::from_trace(trace);
    let mut sess = SimSession::builder(cfg, wl).build().unwrap_or_else(|e| {
        eprintln!("error: invalid configuration: {e}");
        std::process::exit(2);
    });
    sess.warm();
    let r = sess.run_window(a.cycles).unwrap_or_else(|e| {
        eprintln!("error: simulation aborted: {e}");
        std::process::exit(2);
    });
    println!("trace {path} on {}:", a.arch.label());
    println!(
        "  perf={:.2} warp-ops/cycle  replies/cycle={:.2}  L1 {:.1}%  LLC {:.1}%  local {:.1}%",
        r.perf(),
        r.replies_per_cycle(),
        r.l1_hit_rate() * 100.0,
        r.llc_hit_rate() * 100.0,
        r.local_miss_fraction() * 100.0
    );
}

fn capture_trace(a: &Args, bench: BenchmarkId, path: &str) {
    let cfg = build_config(a);
    let scale = if a.huge_pages {
        ScaleProfile::huge_pages()
    } else {
        ScaleProfile::default()
    };
    let wl = Workload::build(bench, scale, cfg.num_sms, a.seed);
    let warps = cfg.sim_active_warps.min(cfg.warps_per_sm);
    // Record roughly as many ops as the timed window would consume.
    let ops = (a.cycles as usize / 4).clamp(256, 65_536);
    let trace = nuba_workloads::Trace::capture(&wl, warps, ops);
    let file = std::fs::File::create(path).unwrap_or_else(|e| {
        eprintln!("error: cannot create {path}: {e}");
        std::process::exit(2);
    });
    trace
        .write_to(std::io::BufWriter::new(file))
        .unwrap_or_else(|e| {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(2);
        });
    println!(
        "captured {} ops ({} SMs x {} warps x {} ops) of {bench} to {path}",
        trace.len(),
        trace.num_sms,
        trace.warps_per_sm,
        ops
    );
}

/// `--checkpoint`: run the timed window on a [`SimSession`] and save the
/// machine state. Nothing is printed on stdout — the point is the file.
fn checkpoint_run(a: &Args, bench: BenchmarkId, path: &str) {
    let cfg = build_config(a);
    let wl = Workload::build(bench, scale_of(a), cfg.num_sms, a.seed);
    let mut sess = SimSession::builder(cfg, wl).build().unwrap_or_else(|e| {
        eprintln!("error: invalid configuration: {e}");
        std::process::exit(2);
    });
    sess.warm();
    sess.run_window(a.cycles).unwrap_or_else(|e| {
        eprintln!("error: simulation aborted: {e}");
        std::process::exit(2);
    });
    let ckpt = sess.checkpoint();
    // When a persistent store is configured, commit there first — this
    // is the (optionally stalled) write the crash-recovery drill kills
    // mid-flight to prove the store survives torn writes.
    if let Some(store) = CheckpointStore::from_env() {
        let key = StoreKey::run(bench, ckpt.config().state_hash(), ckpt.cycle());
        if let Err(e) = store.put(&key, &ckpt) {
            eprintln!("warning: cannot persist checkpoint to store: {e}");
        }
    }
    // The explicit file is written atomically too: temp + rename, so a
    // crash never leaves a torn file at the requested path.
    let tmp = format!("{path}.tmp.{}", std::process::id());
    std::fs::write(&tmp, ckpt.to_bytes())
        .and_then(|()| std::fs::rename(&tmp, path))
        .unwrap_or_else(|e| {
            let _ = std::fs::remove_file(&tmp);
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(2);
        });
    eprintln!(
        "checkpointed {bench} on {} at cycle {} -> {path}",
        a.arch.label(),
        ckpt.cycle()
    );
}

/// `--resume`: restore a checkpoint and continue to `--cycles` total
/// simulated cycles, then report exactly like an uninterrupted run.
/// The configuration embedded in the checkpoint is authoritative; the
/// benchmark, page size, and architecture flags must match the saving
/// run (the config/workload hashes reject anything else).
fn resume_run(a: &Args, bench: BenchmarkId, path: &str) {
    let bytes = std::fs::read(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let ckpt = Checkpoint::from_bytes(&bytes).unwrap_or_else(|e| {
        eprintln!("error: bad checkpoint {path}: {e}");
        std::process::exit(2);
    });
    let cfg = ckpt.config().clone();
    let wl = Workload::build(bench, scale_of(a), cfg.num_sms, cfg.seed);
    let mut sess = SimSession::resume(&ckpt, wl).unwrap_or_else(|e| {
        eprintln!("error: cannot resume from {path}: {e}");
        std::process::exit(2);
    });
    let remaining = a.cycles.saturating_sub(ckpt.cycle());
    let r = sess.run_window(remaining).unwrap_or_else(|e| {
        eprintln!("error: simulation aborted: {e}");
        std::process::exit(2);
    });
    if a.json {
        println!("[");
        println!("  {}", json_report(bench, a, &r, false));
        println!("]");
    } else {
        println!(
            "resumed {bench} from cycle {} to {}: perf={:.2} warp-ops/cycle  \
             L1 {:.1}%  LLC {:.1}%  local {:.1}%",
            ckpt.cycle(),
            a.cycles,
            r.perf(),
            r.l1_hit_rate() * 100.0,
            r.llc_hit_rate() * 100.0,
            r.local_miss_fraction() * 100.0
        );
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{HELP}");
            std::process::exit(2);
        }
    };
    if let Some(path) = args.resume.clone() {
        let bench = args.bench.unwrap_or(BenchmarkId::Sgemm);
        resume_run(&args, bench, &path);
        return;
    }
    if let Some(path) = args.checkpoint.clone() {
        let bench = args.bench.unwrap_or(BenchmarkId::Sgemm);
        checkpoint_run(&args, bench, &path);
        return;
    }
    if let Some(path) = args.trace.clone() {
        run_trace(&args, &path);
        return;
    }
    if let Some(path) = args.capture.clone() {
        let bench = args.bench.unwrap_or(BenchmarkId::Sgemm);
        capture_trace(&args, bench, &path);
        return;
    }
    let benches: Vec<BenchmarkId> = match args.bench {
        Some(b) => vec![b],
        None => BenchmarkId::ALL.to_vec(),
    };
    let results = run_all(&args, &benches);
    nuba_bench::runner::write_telemetry_outputs(&results);
    if args.json {
        println!("[");
        for (i, (&b, j)) in benches.iter().zip(&results).enumerate() {
            let comma = if i + 1 < benches.len() { "," } else { "" };
            println!(
                "  {}{}",
                json_report(b, &args, &j.report, j.failed()),
                comma
            );
        }
        println!("]");
    } else {
        println!(
            "arch={} noc={:.1}TB/s policy={} replication={} cycles={} seed={}",
            args.arch.label(),
            args.noc_tbs,
            args.policy.label(),
            args.replication.label(),
            args.cycles,
            args.seed
        );
        for (&b, j) in benches.iter().zip(&results) {
            print_human(b, j);
        }
    }

    std::process::exit(nuba_bench::runner::finish());
}
