//! Workspace invariant gate: run every architecture configuration and
//! fail if any named invariant or conservation law is violated.
//!
//! Each configuration simulates a mixed workload with periodic
//! cross-component conservation checks (`GpuSimulator::check_conservation`):
//!
//! - **requests in == replies out**: every SM request is answered or
//!   still outstanding — the memory system drops and duplicates nothing;
//! - **flits injected == ejected**: the request and reply crossbars
//!   conserve packets across both stages;
//! - **energy monotone**: cumulative energy never decreases as the
//!   simulation advances;
//!
//! plus every `invariant!` site embedded in the component code (address
//! math, link/pipe time monotonicity, replica-path access kinds, SM
//! reply routing, ...), which count violations even in release builds.
//!
//! The configurations run concurrently on the `NUBA_JOBS` worker pool.
//! The invariant registry is process-global, so it is reset once up
//! front and violations are attributed by *site* (file:line) rather
//! than by configuration; set `NUBA_JOBS=1` to bisect a failure to a
//! single configuration.
//!
//! Exit status is nonzero on any violation, so CI can gate on
//! `cargo run -p nuba-bench --bin simcheck`.

use nuba_bench::runner::{num_jobs, run_jobs};
use nuba_bench::simcheck_configs;
use nuba_core::GpuSimulator;
use nuba_types::invariant;
use nuba_types::GpuConfig;
use nuba_workloads::{BenchmarkId, ScaleProfile, Workload};

/// Simulate one configuration with conservation checks every
/// `check_every` cycles. Returns (timed cycles, warp-ops).
fn check_config(cfg: GpuConfig, bench: BenchmarkId, cycles: u64) -> (u64, u64) {
    // Run with both telemetry pillars on, so the windowed sampler and
    // the lifecycle tracer are exercised under every architecture too.
    let telemetry = nuba_types::TelemetryConfig {
        window_cycles: Some(512),
        trace_sample_period: 64,
        ..cfg.telemetry
    };
    let cfg = cfg.with_telemetry(telemetry);
    let scale = ScaleProfile::fast();
    let wl = Workload::build(bench, scale, cfg.num_sms, cfg.seed);
    let mut gpu = GpuSimulator::try_new(cfg, &wl).expect("simcheck configs are valid");
    gpu.warm(&wl, 256);
    gpu.check_conservation();

    let check_every = 512u64;
    let mut prev_energy = 0.0f64;
    while gpu.cycle() < cycles {
        // Chunked run() keeps the forward-progress watchdog armed, so
        // simcheck also gates "no healthy configuration trips it".
        invariant!(
            "simcheck_forward_progress",
            gpu.run(check_every).is_ok(),
            "watchdog fired on a healthy configuration"
        );
        gpu.check_conservation();
        let energy = gpu.report().energy.total_j();
        invariant!(
            "energy_monotone",
            energy >= prev_energy,
            "total energy fell from {prev_energy} J to {energy} J"
        );
        prev_energy = energy;
    }

    let report = gpu.report();
    let sum = report.bottleneck_breakdown().sum();
    invariant!(
        "bottleneck_shares_sum_to_one",
        (sum - 1.0).abs() < 1e-9,
        "cycle-accounting shares sum to {sum}"
    );
    (report.cycles, report.warp_ops)
}

fn main() {
    let cycles = nuba_bench::HarnessOptions::get().simcheck_cycles;
    // A benchmark with both read-only shared data (exercises the MDR
    // replica path) and writes (exercises stores/atomics downstream).
    let bench = BenchmarkId::Kmeans;
    let configs = simcheck_configs();

    println!(
        "simcheck: {} configurations x {cycles} cycles of {bench:?} ({} workers)",
        configs.len(),
        num_jobs()
    );
    nuba_types::invariant::reset();
    let runs = run_jobs(configs.len(), num_jobs(), |i| {
        check_config(configs[i].1.clone(), bench, cycles)
    });
    let total = nuba_types::invariant::total_violations();

    let status = if total == 0 { "ok" } else { "FAIL" };
    for ((name, _), (run_cycles, warp_ops)) in configs.iter().zip(&runs) {
        println!("{status:>4}  {name:<24} {run_cycles:>8} cycles  {warp_ops:>8} warp-ops");
    }

    if total > 0 {
        for site in nuba_types::invariant::report() {
            if site.violations > 0 {
                println!(
                    "      {} at {}:{} — {}/{} checks violated",
                    site.name, site.file, site.line, site.violations, site.checks
                );
            }
        }
        eprintln!("simcheck: {total} invariant violations");
        std::process::exit(1);
    }
    println!("simcheck: all invariants held");
}
