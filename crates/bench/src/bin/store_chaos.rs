//! `store-chaos`: the sanctioned disk-fault drill for the persistent
//! checkpoint store. Runs a small matrix twice against the same store —
//! pass 1 populates it (under any `NUBA_STORE_FAULT` injection), pass 2
//! re-reads it with a cold in-memory cache — and asserts the two result
//! sets are byte-identical. Torn writes, bit flips, injected `ENOSPC`,
//! and unreadable entries may degrade the store; they must never change
//! a simulation result or take the matrix down.
//!
//! ```text
//! NUBA_STORE_DIR=/tmp/chaos NUBA_STORE_FAULT="torn@0,enospc@1,flip@2:9" \
//!     store_chaos
//! ```

use nuba_bench::runner::{run_matrix_ctx, Job, JobOutcome, MatrixStats, RunnerCtx};
use nuba_bench::{main_configs, Harness, HarnessOptions};
use nuba_workloads::BenchmarkId;

fn chaos_jobs() -> Vec<Job> {
    let benches = [BenchmarkId::Kmeans, BenchmarkId::Sgemm];
    let mut jobs = Vec::new();
    for (name, cfg) in main_configs() {
        for b in benches {
            jobs.push(Job::new(format!("{b}/{name}"), b, cfg.clone()));
        }
    }
    jobs
}

fn main() {
    let opts = HarnessOptions::get();
    let h = Harness::from_env();
    let jobs = chaos_jobs();
    println!(
        "store-chaos: {} jobs x 2 passes, store={}, faults={}",
        jobs.len(),
        opts.store_dir.as_deref().unwrap_or("<memory only>"),
        opts.store_fault.as_deref().unwrap_or("<none>")
    );

    // Pass 1: cold store — warm-ups run for real and publish entries,
    // with any injected faults tearing/corrupting them along the way.
    let ctx = RunnerCtx::from_env();
    let pass1 = run_matrix_ctx(&ctx, &h, &jobs);

    // Pass 2: same persistent store, cold in-memory cache — warm state
    // now comes from disk wherever an entry survived verification, and
    // is re-derived wherever chaos destroyed one.
    ctx.reset_warm_cache();
    let pass2 = run_matrix_ctx(&ctx, &h, &jobs);

    let mut mismatches = 0usize;
    for (a, b) in pass1.iter().zip(&pass2) {
        if a.report != b.report || a.outcome != b.outcome {
            mismatches += 1;
            eprintln!("store-chaos: MISMATCH on {}", a.label);
        }
    }
    let incomplete = pass1
        .iter()
        .chain(&pass2)
        .filter(|r| r.outcome != JobOutcome::Ok)
        .count();
    let stats = MatrixStats::of(&pass2);
    if let Some(store) = ctx.store() {
        let s = store.stats();
        println!(
            "store-chaos: store hits={} misses={} inserts={} write_errors={} quarantined={} evictions={}",
            s.hits, s.misses, s.inserts, s.write_errors, s.quarantined, s.evictions
        );
    }
    println!(
        "store-chaos: {} jobs/pass, {} mismatches, {} incomplete, {} quarantined sim jobs",
        stats.jobs, mismatches, incomplete, stats.quarantined
    );

    if mismatches > 0 || incomplete > 0 {
        eprintln!("store-chaos: FAILED — disk faults leaked into simulation results");
        std::process::exit(1);
    }
    println!("store-chaos: PASS — results byte-identical under disk-fault injection");
    std::process::exit(ctx.finish());
}
