//! Table 1: the simulated GPU architecture.

use nuba_types::{ArchKind, GpuConfig};

fn main() {
    let cfg = GpuConfig::paper_baseline(ArchKind::Nuba);
    nuba_bench::figure_header("Table 1", "Simulated GPU architecture");
    let rows: Vec<(&str, String)> = vec![
        ("No. SMs", format!("{} SMs", cfg.num_sms)),
        (
            "SM resources",
            format!(
                "1.4 GHz, {} SIMT width, max {} warps/SM ({} actively simulated)",
                cfg.threads_per_warp, cfg.warps_per_sm, cfg.sim_active_warps
            ),
        ),
        ("Scheduler", "2 warp schedulers per SM, GTO-flavoured".into()),
        (
            "L1 data cache",
            format!(
                "{} KB per SM ({}-way, {} sets), 128 B block, {} MSHR entries, write-through, write-no-allocate",
                cfg.l1_bytes / 1024,
                cfg.l1_ways,
                cfg.l1_bytes / (cfg.l1_ways * 128),
                cfg.l1_mshrs
            ),
        ),
        ("L1 TLB", format!("{} entries per SM, LRU", cfg.l1_tlb_entries)),
        (
            "LLC",
            format!(
                "{} MB total ({} slices, {}-way, {} sets), {}-cycle pipeline, write-back, {} B/cycle per slice",
                cfg.llc_total_bytes / (1024 * 1024),
                cfg.num_llc_slices,
                cfg.llc_ways,
                cfg.llc_slice_sets(),
                cfg.llc_latency,
                cfg.llc_bytes_per_cycle
            ),
        ),
        (
            "L2 TLB",
            format!(
                "{} entries, {}-way, {}-cycle latency, 2 ports",
                cfg.l2_tlb_entries, cfg.l2_tlb_ways, cfg.l2_tlb_latency
            ),
        ),
        ("Page table walker", format!("shared, {} concurrent walkers", cfg.page_walkers)),
        (
            "NoC",
            format!(
                "{}x{} crossbar, {:.1} TB/s ({:.1} B/cycle/port), {}-cycle stages",
                cfg.num_llc_slices,
                cfg.num_llc_slices,
                cfg.noc_tbs(),
                cfg.noc_port_bytes_per_cycle(),
                cfg.noc_stage_latency
            ),
        ),
        (
            "NUBA local links",
            format!(
                "{} B/cycle per SM point-to-point ({:.1} TB/s aggregate)",
                cfg.local_link_bytes_per_cycle,
                cfg.local_link_bytes_per_cycle as f64 * cfg.num_sms as f64 * 1.4e9 / 1e12
            ),
        ),
        (
            "Memory",
            format!(
                "{} channels, FR-FCFS, {} entries/queue, {} banks/channel, {} B bursts, 4:1 clock divider (720 GB/s)",
                cfg.num_channels, cfg.mc_queue_entries, cfg.banks_per_channel, cfg.dram_burst_bytes
            ),
        ),
        (
            "HBM timing",
            "tRC=24 tRCD=7 tRP=7 tCL=7 tWL=2 tRAS=17 tRRDl=5 tRRDs=4 tFAW=20 tRTP=7 tCCD=1 tWTRl=4 tWTRs=2".into(),
        ),
        ("Page size", format!("{} KB", cfg.page_bytes / 1024)),
        ("Page policy", format!("{:?}", cfg.page_policy)),
        (
            "MDR",
            format!(
                "{}-cycle epochs, {}-cycle model evaluation, {} sampled sets/slice",
                cfg.mdr_epoch_cycles, cfg.mdr_eval_cycles, cfg.mdr_sample_sets
            ),
        ),
    ];
    for (k, v) in rows {
        println!("{k:<22} {v}");
    }
}
