//! Table 2: the GPU-compute benchmark suite, with the scaled footprints
//! actually simulated (DESIGN.md substitution #2).

use nuba_workloads::{BenchmarkId, ScaleProfile};

fn main() {
    nuba_bench::figure_header("Table 2", "GPU-compute benchmarks");
    let scale = ScaleProfile::default();
    println!(
        "{:<26} {:<8} {:<8} {:>12} {:>12} {:>12} {:>10}",
        "Benchmark", "Abbr.", "Sharing", "Footprint", "RO-shared", "Sim pages", "Sim RO pg"
    );
    for &b in BenchmarkId::ALL {
        let s = b.spec();
        println!(
            "{:<26} {:<8} {:<8} {:>9} MB {:>9} MB {:>12} {:>10}",
            s.name,
            s.abbr,
            s.sharing.to_string(),
            s.footprint_mb,
            s.ro_shared_mb,
            scale.total_pages(s),
            scale.ro_pages(s)
        );
    }
    println!(
        "\n{} low-sharing, {} high-sharing; footprints clipped at {} MB (see DESIGN.md).",
        BenchmarkId::with_sharing(nuba_workloads::SharingClass::Low).len(),
        BenchmarkId::with_sharing(nuba_workloads::SharingClass::High).len(),
        scale.cap_mb
    );
}
