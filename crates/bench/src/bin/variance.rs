//! Seed-variance study: how stable are the headline results across
//! workload-generation seeds? Reports per-benchmark coefficient of
//! variation of the NUBA-over-UBA speedup.

use nuba_bench::{figure_header, pct, Harness};
use nuba_types::{ArchKind, GpuConfig};
use nuba_workloads::{BenchmarkId, ScaleProfile, Workload};

fn run(bench: BenchmarkId, mut cfg: GpuConfig, seed: u64, cycles: u64) -> f64 {
    cfg.seed = seed;
    let wl = Workload::build(bench, ScaleProfile::default(), cfg.num_sms, seed);
    let mut gpu = nuba_core::GpuSimulator::new(cfg, &wl);
    gpu.warm_and_run(&wl, cycles).perf()
}

fn main() {
    figure_header("Variance", "NUBA speedup stability across seeds");
    let h = Harness::from_env();
    let seeds: Vec<u64> = (0..5).map(|i| 41 + i * 13).collect();
    let benches = [
        BenchmarkId::Lbm,
        BenchmarkId::Kmeans,
        BenchmarkId::Sgemm,
        BenchmarkId::SqueezeNet,
        BenchmarkId::StreamCluster,
        BenchmarkId::Mvt,
    ];
    println!(
        "{:<8} {:>9} {:>9} {:>9} {:>7}   per-seed speedups",
        "bench", "mean", "min", "max", "CoV"
    );
    for bench in benches {
        let speedups: Vec<f64> = seeds
            .iter()
            .map(|&s| {
                let uba = run(
                    bench,
                    GpuConfig::paper_baseline(ArchKind::MemSideUba),
                    s,
                    h.cycles,
                );
                let nuba = run(
                    bench,
                    GpuConfig::paper_baseline(ArchKind::Nuba),
                    s,
                    h.cycles,
                );
                nuba / uba
            })
            .collect();
        let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
        let var = speedups.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / speedups.len() as f64;
        let cov = var.sqrt() / mean;
        let min = speedups.iter().copied().fold(f64::INFINITY, f64::min);
        let max = speedups.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let list: Vec<String> = speedups.iter().map(|s| format!("{s:.2}")).collect();
        println!(
            "{:<8} {:>9} {:>9} {:>9} {:>6.1}%   [{}]",
            bench.to_string(),
            pct(mean),
            pct(min),
            pct(max),
            cov * 100.0,
            list.join(", ")
        );
    }
    println!("\nSpeedups should agree in sign and rough magnitude across seeds;");
    println!("a CoV of a few percent is expected from layout/window randomness.");
}
