//! Seed-variance study: how stable are the headline results across
//! workload-generation seeds? Reports per-benchmark coefficient of
//! variation of the NUBA-over-UBA speedup.

use nuba_bench::runner::{run_matrix, Job};
use nuba_bench::{figure_header, pct, Harness};
use nuba_types::{ArchKind, GpuConfig};
use nuba_workloads::{BenchmarkId, ScaleProfile};

fn main() {
    figure_header("Variance", "NUBA speedup stability across seeds");
    let h = Harness::from_env();
    let seeds: Vec<u64> = (0..5).map(|i| 41 + i * 13).collect();
    let benches = [
        BenchmarkId::Lbm,
        BenchmarkId::Kmeans,
        BenchmarkId::Sgemm,
        BenchmarkId::SqueezeNet,
        BenchmarkId::StreamCluster,
        BenchmarkId::Mvt,
    ];
    // Seed sweeps always use the full-density workload model regardless
    // of NUBA_FAST, so the seed overrides pair with a scale override.
    let jobs: Vec<Job> = benches
        .iter()
        .flat_map(|&bench| {
            seeds.iter().flat_map(move |&s| {
                [ArchKind::MemSideUba, ArchKind::Nuba].map(|arch| {
                    Job::new(
                        format!("{bench}@{s}"),
                        bench,
                        GpuConfig::paper_baseline(arch),
                    )
                    .with_seed(s)
                    .with_scale(ScaleProfile::default())
                })
            })
        })
        .collect();
    let results = run_matrix(&h, &jobs);

    println!(
        "{:<8} {:>9} {:>9} {:>9} {:>7}   per-seed speedups",
        "bench", "mean", "min", "max", "CoV"
    );
    for (bi, bench) in benches.iter().enumerate() {
        let speedups: Vec<f64> = (0..seeds.len())
            .map(|si| {
                let at = (bi * seeds.len() + si) * 2;
                results[at + 1].report.perf() / results[at].report.perf()
            })
            .collect();
        let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
        let var = speedups.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / speedups.len() as f64;
        let cov = var.sqrt() / mean;
        let min = speedups.iter().copied().fold(f64::INFINITY, f64::min);
        let max = speedups.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let list: Vec<String> = speedups.iter().map(|s| format!("{s:.2}")).collect();
        println!(
            "{:<8} {:>9} {:>9} {:>9} {:>6.1}%   [{}]",
            bench.to_string(),
            pct(mean),
            pct(min),
            pct(max),
            cov * 100.0,
            list.join(", ")
        );
    }
    println!("\nSpeedups should agree in sign and rough magnitude across seeds;");
    println!("a CoV of a few percent is expected from layout/window randomness.");

    std::process::exit(nuba_bench::runner::finish());
}
