#![warn(missing_docs)]

//! # nuba-bench
//!
//! The experiment harness: one binary per table and figure of the
//! paper's evaluation (see DESIGN.md §4 for the index), plus Criterion
//! micro-benchmarks of the simulator's components.
//!
//! Every figure binary prints the same rows/series the paper reports.
//! Absolute numbers come from a scaled simulator (DESIGN.md §1), so the
//! *shape* — who wins, by roughly what factor — is the reproduction
//! target, not the paper's exact percentages.
//!
//! Runtime knobs come from `NUBA_*` environment variables, all parsed
//! once into [`HarnessOptions`] (see its fields for names and
//! defaults, or the README's "Environment knobs" table). Results are
//! schedule-independent regardless of `NUBA_JOBS` — see [`runner`].

pub mod runner;
pub mod screen;
pub mod store;

use std::sync::OnceLock;

use nuba_core::{SimError, SimReport, SimSession};
use nuba_types::{harmonic_mean_speedup, ArchKind, Fidelity, GpuConfig, ReplicationKind};
use nuba_workloads::{BenchmarkId, ScaleProfile, SharingClass, Workload};

/// How `NUBA_FIDELITY` resolves: one fixed rung for every job, or the
/// runner's per-job escalation ladder (`auto`). Figure binaries never
/// read the variable themselves — they see this resolved mode through
/// [`HarnessOptions`] and the per-job [`Fidelity`] the
/// [`runner`] attaches to each [`runner::JobResult`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FidelityMode {
    /// Every job runs at this fidelity. The default is
    /// `Fixed(Fidelity::Full)` — byte-identical to the pre-ladder
    /// harness.
    Fixed(Fidelity),
    /// Tier-0 screen on every job: an informative screen stands alone
    /// (no simulation), a non-informative one escalates to a tier-1
    /// sampled run, and tier-2 full simulation is reached only where
    /// the tier-1 bounds are too wide to separate paper-scale deltas
    /// (see `runner`).
    Auto,
}

impl FidelityMode {
    /// Parse a `NUBA_FIDELITY` value (`auto`, or any
    /// [`Fidelity`] spelling: `analytical`, `sampled`, `sampled:NxM`,
    /// `full`).
    pub fn parse(s: &str) -> Option<FidelityMode> {
        let t = s.trim();
        if t == "auto" {
            return Some(FidelityMode::Auto);
        }
        t.parse().ok().map(FidelityMode::Fixed)
    }

    /// The fidelity a *one-off* run (outside the runner) executes at:
    /// the fixed rung, or [`Fidelity::Full`] under `auto` — escalation
    /// needs the runner's comparison context.
    pub fn one_off(self) -> Fidelity {
        match self {
            FidelityMode::Fixed(f) => f,
            FidelityMode::Auto => Fidelity::Full,
        }
    }
}

/// Every `NUBA_*` environment knob, parsed once at first use.
///
/// The environment is the harness's only configuration channel, and it
/// used to be read ad hoc all over the crate; this struct is the single
/// place a knob's name, type, and default live. Binaries and the
/// [`runner`] read the process-wide snapshot via [`HarnessOptions::get`]
/// — the variable names are stable API, documented in the README's
/// "Environment knobs" table.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// `NUBA_JOBS`: worker threads for experiment matrices (default:
    /// available parallelism; `1` forces serial execution).
    pub jobs: usize,
    /// `NUBA_CYCLES`: timed cycles per run (default 60 000).
    pub cycles: u64,
    /// `NUBA_FAST=1`: quarter-density workload scaling for quick looks.
    pub fast: bool,
    /// `NUBA_FULL=1`: sweep all 29 benchmarks instead of the
    /// representative subset.
    pub full: bool,
    /// `NUBA_JOB_RETRIES`: retries per failed matrix job (default 0).
    pub job_retries: u32,
    /// `NUBA_STRICT_FAULTS=1`: quarantined jobs fail the process.
    pub strict_faults: bool,
    /// `NUBA_TIMESERIES=<path>`: write windowed telemetry JSONL here.
    pub timeseries: Option<String>,
    /// `NUBA_TRACE=<path>`: write the Chrome lifecycle trace here.
    pub trace: Option<String>,
    /// `NUBA_CHAOS=1`: run the sanctioned chaos drill in
    /// `all_experiments` (injected panic + deadlock jobs).
    pub chaos: bool,
    /// `NUBA_PAE=1`: `nuba_sim` maps UBA addresses with PAE.
    pub pae: bool,
    /// `NUBA_SIMCHECK_CYCLES`: cycles per simcheck configuration
    /// (default 8192).
    pub simcheck_cycles: u64,
    /// `NUBA_WARM_REUSE`: the runner's warm-state checkpoint cache
    /// (default on; `0` disables).
    pub warm_reuse: bool,
    /// `NUBA_SCREEN=1`: print the tier-0 analytical screen (static
    /// kernel profiler predictions) for each matrix's benchmarks before
    /// the runner executes it. Inert — and byte-identical output — when
    /// off.
    pub screen: bool,
    /// `NUBA_CHECKPOINT_EVERY`: cycles between mid-run checkpoints for
    /// resumable retries (default: 20 000 under `NUBA_FULL`, else off;
    /// `0` forces off).
    pub checkpoint_every: Option<u64>,
    /// `NUBA_NO_SKIP=1`: force the cycle-by-cycle stepping loop instead
    /// of event-driven time skipping. Results are byte-identical either
    /// way; this is a perf escape hatch / A-B knob. The simulator core
    /// reads the variable itself — this field just snapshots it for
    /// display and run manifests.
    pub no_skip: bool,
    /// `NUBA_STORE_DIR=<path>`: root of the persistent checkpoint
    /// store (see [`store`]). Unset disables it — the runner then uses
    /// its in-memory warm cache, byte-identically.
    pub store_dir: Option<String>,
    /// `NUBA_STORE_MAX_BYTES`: LRU size cap for the checkpoint store
    /// (default 256 MiB; `0` = unlimited).
    pub store_max_bytes: u64,
    /// `NUBA_STORE_FAULT=<spec>`: deterministic disk-fault schedule for
    /// chaos drills, e.g. `torn@0,flip@1:7,enospc@2,unreadable@0`
    /// (see [`store::StoreFaultPlan::parse`]).
    pub store_fault: Option<String>,
    /// `NUBA_STORE_WRITE_STALL_MS`: stall injected mid-store-write, for
    /// crash-recovery tests that `kill -9` the writer (default 0).
    pub store_write_stall_ms: u64,
    /// `NUBA_MATRIX_DEADLINE_SECS`: wall-clock budget for a whole
    /// matrix; when exceeded, in-flight jobs checkpoint-and-stop and
    /// pending jobs report `Cancelled`.
    pub matrix_deadline_secs: Option<f64>,
    /// `NUBA_JOB_DEADLINE_SECS`: default per-job wall-clock deadline
    /// (jobs can override via `Job::with_wall_deadline`).
    pub job_deadline_secs: Option<f64>,
    /// `NUBA_RETRY_BACKOFF_MS`: base of the deterministic exponential
    /// backoff between job retry attempts (default 100; `0` disables
    /// the sleep, attempts still count).
    pub retry_backoff_ms: u64,
    /// `NUBA_METRICS=<path>`: write the matrix-end Prometheus
    /// text-exposition dump here (outcome counts, cycle totals, store
    /// counters, merged per-tier latency histograms — deterministic;
    /// no wall-clock values).
    pub metrics: Option<String>,
    /// `NUBA_EVENTS=<path>`: write the structured harness event log
    /// (JSONL, one lifecycle event per line, monotonic `seq`) here.
    /// Rendered post-run in submission order, so the content is
    /// deterministic — no wall-clock fields at all.
    pub events: Option<String>,
    /// `NUBA_MATRIX_TRACE=<path>`: write the matrix-level Chrome trace
    /// (jobs as spans, retry attempts as nested spans) here. The only
    /// artifact that carries wall-clock timestamps — explicitly exempt
    /// from the byte-determinism contract (DESIGN.md §16).
    pub matrix_trace: Option<String>,
    /// `NUBA_FIDELITY`: the execution-fidelity ladder (DESIGN.md §17).
    /// `full` (default), `analytical`, `sampled[:NxM]`, or `auto` for
    /// per-job escalation. Unrecognized values fall back to `full`.
    pub fidelity: FidelityMode,
}

impl HarnessOptions {
    /// Parse every knob from the environment.
    pub fn from_env() -> HarnessOptions {
        fn num<T: std::str::FromStr>(name: &str) -> Option<T> {
            std::env::var(name).ok().and_then(|v| v.parse().ok())
        }
        let flag = |name: &str| std::env::var(name).is_ok_and(|v| v == "1");
        let path = |name: &str| std::env::var(name).ok().filter(|p| !p.is_empty());
        let full = flag("NUBA_FULL");
        let checkpoint_every = match num::<u64>("NUBA_CHECKPOINT_EVERY") {
            Some(0) => None,
            Some(n) => Some(n),
            None if full => Some(20_000),
            None => None,
        };
        HarnessOptions {
            jobs: num("NUBA_JOBS")
                .filter(|&n: &usize| n > 0)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(std::num::NonZeroUsize::get)
                        .unwrap_or(1)
                }),
            cycles: num("NUBA_CYCLES").unwrap_or(60_000),
            fast: flag("NUBA_FAST"),
            full,
            job_retries: num("NUBA_JOB_RETRIES").unwrap_or(0),
            strict_faults: flag("NUBA_STRICT_FAULTS"),
            timeseries: path("NUBA_TIMESERIES"),
            trace: path("NUBA_TRACE"),
            chaos: flag("NUBA_CHAOS"),
            pae: flag("NUBA_PAE"),
            simcheck_cycles: num("NUBA_SIMCHECK_CYCLES").unwrap_or(8192),
            warm_reuse: std::env::var("NUBA_WARM_REUSE").map_or(true, |v| v != "0"),
            screen: flag("NUBA_SCREEN"),
            checkpoint_every,
            no_skip: flag("NUBA_NO_SKIP"),
            store_dir: path("NUBA_STORE_DIR"),
            store_max_bytes: num("NUBA_STORE_MAX_BYTES").unwrap_or(256 * 1024 * 1024),
            store_fault: path("NUBA_STORE_FAULT"),
            store_write_stall_ms: num("NUBA_STORE_WRITE_STALL_MS").unwrap_or(0),
            matrix_deadline_secs: num("NUBA_MATRIX_DEADLINE_SECS"),
            job_deadline_secs: num("NUBA_JOB_DEADLINE_SECS"),
            retry_backoff_ms: num("NUBA_RETRY_BACKOFF_MS").unwrap_or(100),
            metrics: path("NUBA_METRICS"),
            events: path("NUBA_EVENTS"),
            matrix_trace: path("NUBA_MATRIX_TRACE"),
            fidelity: path("NUBA_FIDELITY")
                .and_then(|v| FidelityMode::parse(&v))
                .unwrap_or(FidelityMode::Fixed(Fidelity::Full)),
        }
    }

    /// The process-wide snapshot, parsed on first call.
    pub fn get() -> &'static HarnessOptions {
        static OPTIONS: OnceLock<HarnessOptions> = OnceLock::new();
        OPTIONS.get_or_init(HarnessOptions::from_env)
    }
}

/// Harness-wide run parameters.
#[derive(Debug, Clone, Copy)]
pub struct Harness {
    /// Timed cycles per run.
    pub cycles: u64,
    /// Workload scaling.
    pub scale: ScaleProfile,
    /// Seed for layouts and streams.
    pub seed: u64,
    /// Execution fidelity for one-off runs ([`FidelityMode::one_off`]
    /// of the `NUBA_FIDELITY` mode). The runner's escalation ladder
    /// overrides this per job.
    pub fidelity: Fidelity,
}

impl Harness {
    /// Read the environment knobs ([`HarnessOptions::get`]).
    pub fn from_env() -> Harness {
        let opts = HarnessOptions::get();
        Harness {
            cycles: opts.cycles,
            scale: if opts.fast {
                ScaleProfile::fast()
            } else {
                ScaleProfile::default()
            },
            seed: 42,
            fidelity: opts.fidelity.one_off(),
        }
    }

    /// Whether sweeps should cover the full suite (`NUBA_FULL=1`).
    pub fn full_sweeps() -> bool {
        HarnessOptions::get().full
    }

    /// Pin the harness seed and scale page size onto a configuration.
    fn prepare(&self, mut cfg: GpuConfig, scale: ScaleProfile) -> GpuConfig {
        cfg.seed = self.seed;
        if cfg.page_bytes != scale.page_bytes {
            cfg.page_bytes = scale.page_bytes;
        }
        cfg
    }

    /// Run one (benchmark, configuration) pair: build the workload and
    /// a [`SimSession`], warm it, simulate the timed window.
    ///
    /// # Errors
    /// [`SimError::InvalidConfig`] on a bad configuration,
    /// [`SimError::NoForwardProgress`] if the watchdog fires.
    pub fn try_run(&self, bench: BenchmarkId, cfg: GpuConfig) -> Result<SimReport, SimError> {
        self.try_run_scaled(bench, cfg, self.scale)
    }

    /// [`try_run`](Harness::try_run) with a scale override (page-size
    /// sensitivity).
    ///
    /// # Errors
    /// Same contract as [`try_run`](Harness::try_run).
    pub fn try_run_scaled(
        &self,
        bench: BenchmarkId,
        cfg: GpuConfig,
        scale: ScaleProfile,
    ) -> Result<SimReport, SimError> {
        let cfg = self.prepare(cfg, scale);
        let wl = Workload::build(bench, scale, cfg.num_sms, self.seed);
        let mut session = SimSession::builder(cfg, wl)
            .fidelity(self.fidelity)
            .build()?;
        session.warm();
        session.run_window(self.cycles)
    }

    /// Run one (benchmark, configuration) pair, panicking on failure.
    ///
    /// # Panics
    /// Panics if the configuration is invalid or the watchdog detects a
    /// deadlock — one-off harness runs want the loud failure; matrix
    /// sweeps go through [`runner`], which quarantines instead, and
    /// fallible callers use [`try_run`](Harness::try_run).
    pub fn run(&self, bench: BenchmarkId, cfg: GpuConfig) -> SimReport {
        self.try_run(bench, cfg).expect("forward progress")
    }

    /// Run with a scale override (page-size sensitivity).
    ///
    /// # Panics
    /// Panics on invalid configuration or watchdog deadlock, like
    /// [`run`](Harness::run).
    pub fn run_scaled(&self, bench: BenchmarkId, cfg: GpuConfig, scale: ScaleProfile) -> SimReport {
        self.try_run_scaled(bench, cfg, scale)
            .expect("forward progress")
    }
}

/// The paper's three main architectures at iso-resources.
pub fn main_configs() -> [(&'static str, GpuConfig); 4] {
    [
        ("UBA-mem", GpuConfig::paper_baseline(ArchKind::MemSideUba)),
        ("UBA-sm", GpuConfig::paper_baseline(ArchKind::SmSideUba)),
        (
            "NUBA-No-Rep",
            GpuConfig::paper_baseline(ArchKind::Nuba).with_replication(ReplicationKind::None),
        ),
        ("NUBA", GpuConfig::paper_baseline(ArchKind::Nuba)),
    ]
}

/// The `simcheck` architecture matrix: both UBA baselines and NUBA
/// with each replication / page-allocation policy the paper evaluates
/// (11 configurations). Shared by the invariant gate (`simcheck`), the
/// fidelity-ladder validation (`fig_fidelity`), and the bound-coverage
/// integration tests, so they all exercise the same machine space.
pub fn simcheck_configs() -> Vec<(String, GpuConfig)> {
    let mut out = vec![
        (
            "UBA-mem".to_string(),
            GpuConfig::paper_baseline(ArchKind::MemSideUba),
        ),
        (
            "UBA-sm".to_string(),
            GpuConfig::paper_baseline(ArchKind::SmSideUba),
        ),
    ];
    for (rep_name, rep) in [
        ("NoRep", ReplicationKind::None),
        ("FullRep", ReplicationKind::Full),
        ("MDR", ReplicationKind::Mdr),
    ] {
        for (pol_name, pol) in [
            ("FirstTouch", nuba_types::PagePolicyKind::FirstTouch),
            ("RoundRobin", nuba_types::PagePolicyKind::RoundRobin),
            ("LAB", nuba_types::PagePolicyKind::lab_default()),
        ] {
            let cfg = GpuConfig::paper_baseline(ArchKind::Nuba)
                .with_replication(rep)
                .with_policy(pol);
            out.push((format!("NUBA-{rep_name}-{pol_name}"), cfg));
        }
    }
    out
}

/// Representative sweep subset: 5 low-sharing + 5 high-sharing
/// benchmarks spanning the behaviour classes.
pub fn sweep_benchmarks() -> Vec<BenchmarkId> {
    if Harness::full_sweeps() {
        BenchmarkId::ALL.to_vec()
    } else {
        vec![
            BenchmarkId::Lbm,
            BenchmarkId::Kmeans,
            BenchmarkId::Conv2d,
            BenchmarkId::Mvt,
            BenchmarkId::ConvSeparable,
            BenchmarkId::Sgemm,
            BenchmarkId::AlexNet,
            BenchmarkId::SqueezeNet,
            BenchmarkId::Gru,
            BenchmarkId::StreamCluster,
        ]
    }
}

/// Harmonic-mean speedups split by sharing class plus overall, as the
/// paper reports them.
pub struct ClassMeans {
    /// Low-sharing harmonic mean.
    pub low: f64,
    /// High-sharing harmonic mean.
    pub high: f64,
    /// Overall harmonic mean.
    pub all: f64,
}

/// Aggregate per-benchmark speedups the paper's way.
pub fn class_means(rows: &[(BenchmarkId, f64)]) -> ClassMeans {
    let pick = |class: SharingClass| {
        let v: Vec<f64> = rows
            .iter()
            .filter(|(b, _)| b.spec().sharing == class)
            .map(|&(_, s)| s)
            .collect();
        harmonic_mean_speedup(&v)
    };
    let all: Vec<f64> = rows.iter().map(|&(_, s)| s).collect();
    ClassMeans {
        low: pick(SharingClass::Low),
        high: pick(SharingClass::High),
        all: harmonic_mean_speedup(&all),
    }
}

/// `1.234` → `+23.4%`.
pub fn pct(speedup: f64) -> String {
    format!("{:+.1}%", (speedup - 1.0) * 100.0)
}

/// Print a standard figure header.
pub fn figure_header(id: &str, caption: &str) {
    println!("==================================================================");
    println!("{id}: {caption}");
    println!("==================================================================");
}

/// ASCII chart rendering for the figure binaries.
pub mod chart {
    /// A horizontal bar of `value` against `max`, `width` cells wide.
    /// Negative values render to the left of a `|` origin for
    /// improvement charts that can dip below the baseline.
    pub fn bar(value: f64, max: f64, width: usize) -> String {
        if max <= 0.0 || width == 0 {
            return String::new();
        }
        let cells = ((value.abs() / max) * width as f64).round() as usize;
        let cells = cells.min(width);
        if value >= 0.0 {
            format!("|{}", "#".repeat(cells))
        } else {
            format!("{}|", "-".repeat(cells))
        }
    }

    /// Render labelled rows as a right-aligned bar chart, scaled to the
    /// largest magnitude.
    pub fn series(rows: &[(String, f64)], width: usize) -> String {
        let max = rows.iter().map(|(_, v)| v.abs()).fold(0.0f64, f64::max);
        let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        rows.iter()
            .map(|(l, v)| format!("{l:<label_w$} {:>8.2} {}", v, bar(*v, max, width)))
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bar_scales_and_clamps() {
            assert_eq!(bar(1.0, 2.0, 10), "|#####");
            assert_eq!(bar(2.0, 2.0, 10), "|##########");
            assert_eq!(bar(4.0, 2.0, 10), "|##########");
            assert_eq!(bar(0.0, 2.0, 10), "|");
        }

        #[test]
        fn negative_values_point_left() {
            assert_eq!(bar(-1.0, 2.0, 10), "-----|");
        }

        #[test]
        fn degenerate_inputs_are_safe() {
            assert_eq!(bar(1.0, 0.0, 10), "");
            assert_eq!(bar(1.0, 2.0, 0), "");
            assert_eq!(series(&[], 10), "");
        }

        #[test]
        fn series_aligns_labels() {
            let rows = vec![("A".to_string(), 1.0), ("LONGNAME".to_string(), 2.0)];
            let out = series(&rows, 8);
            let lines: Vec<&str> = out.lines().collect();
            assert_eq!(lines.len(), 2);
            assert!(lines[0].starts_with("A        "));
            assert!(lines[1].ends_with("|########"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_means_split() {
        let rows = vec![
            (BenchmarkId::Lbm, 1.5),     // low
            (BenchmarkId::Mvt, 1.3),     // low
            (BenchmarkId::Sgemm, 1.2),   // high
            (BenchmarkId::AlexNet, 1.4), // high
        ];
        let m = class_means(&rows);
        assert!((m.low - harmonic_mean_speedup(&[1.5, 1.3])).abs() < 1e-12);
        assert!((m.high - harmonic_mean_speedup(&[1.2, 1.4])).abs() < 1e-12);
        assert!(m.all > 1.0);
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(1.231), "+23.1%");
        assert_eq!(pct(0.9), "-10.0%");
    }

    #[test]
    fn sweep_subset_is_balanced() {
        let sw = sweep_benchmarks();
        let low = sw
            .iter()
            .filter(|b| b.spec().sharing == SharingClass::Low)
            .count();
        let high = sw
            .iter()
            .filter(|b| b.spec().sharing == SharingClass::High)
            .count();
        assert_eq!(low, 5);
        assert_eq!(high, 5);
    }

    #[test]
    fn main_configs_cover_paper_proposals() {
        let cfgs = main_configs();
        assert_eq!(cfgs[0].1.arch, ArchKind::MemSideUba);
        assert_eq!(cfgs[2].1.replication, ReplicationKind::None);
        assert_eq!(cfgs[3].1.replication, ReplicationKind::Mdr);
    }
}
