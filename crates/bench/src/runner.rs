//! Deterministic parallel execution of experiment matrices.
//!
//! Every figure binary replays an independent list of
//! (benchmark × configuration) simulations. This module expands such a
//! list into [`Job`]s and executes them on a [`std::thread::scope`]
//! work-stealing pool sized by the `NUBA_JOBS` environment knob
//! (default: available parallelism). Results come back in submission
//! order, so callers print byte-identical output to a serial loop.
//!
//! Determinism: each job builds its own [`Workload`] and
//! [`GpuSimulator`] from the job's seed — no state is shared between
//! jobs, so the schedule cannot leak into the simulation. The only
//! process-global state the simulator touches is the invariant counter
//! registry (`nuba_types::invariant`), which uses relaxed atomics and
//! only ever *counts* under the pool.
//!
//! Shared runner state — the warm-state cache, the quarantine
//! registry, the optional persistent [checkpoint store](crate::store),
//! and the cancellation token — lives in an injectable [`RunnerCtx`].
//! Binaries keep calling the module-level [`run_matrix`]/[`finish`]
//! wrappers, which delegate to a process-wide environment-configured
//! context; servers and tests construct their own via
//! [`RunnerCtx::new`]/[`RunnerCtx::with_store`] and use
//! [`run_matrix_ctx`].
//!
//! Fault isolation and lifecycle: each job executes under
//! [`std::panic::catch_unwind`] with an optional per-job
//! forward-progress deadline, an optional *wall-clock* deadline
//! ([`Job::with_wall_deadline`] / `NUBA_JOB_DEADLINE_SECS`), and
//! `NUBA_JOB_RETRIES` retries separated by deterministic exponential
//! backoff (`NUBA_RETRY_BACKOFF_MS`). The timed window runs in chunks
//! (`run(a); run(b)` ≡ `run(a+b)`, proven by the session tests), so
//! cancellation is cooperative: between chunks a job checks the
//! context's [`CancelToken`] (tripped by Ctrl-C or
//! `NUBA_MATRIX_DEADLINE_SECS`) and its deadlines, salvages its last
//! good checkpoint into the store, and stops. Every [`JobResult`]
//! carries a [`JobOutcome`]: quarantined failures and timeouts are
//! distinct from graceful cancellation, which is *not* a fault.
//! Binaries call [`finish`] last to print the quarantine summary; the
//! exit code is nonzero only under `NUBA_STRICT_FAULTS=1`, so chaos
//! drills don't fail CI unless explicitly asked to.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use nuba_core::telemetry::escape_json;
use nuba_core::{
    default_warm_accesses, run_sampled, Checkpoint, GpuSimulator, SimError, SimReport,
    TelemetryWindow, TraceRecord, NUM_STAGES, NUM_TIERS, STAGE_NAMES, TIER_NAMES,
};
use nuba_engine::FaultPlan;
use nuba_types::{Fidelity, GpuConfig, Histogram, MetricsRegistry};
use nuba_workloads::{BenchmarkId, ScaleProfile, Workload};

use crate::store::{CheckpointStore, StoreKey, StoreStats};
use crate::{FidelityMode, Harness, HarnessOptions};

/// One simulation in an experiment matrix.
#[derive(Debug, Clone)]
pub struct Job {
    /// Display label (carried into the [`JobResult`]).
    pub label: String,
    /// The workload.
    pub bench: BenchmarkId,
    /// The architecture configuration.
    pub cfg: GpuConfig,
    /// Scale override (page-size sensitivity, variance runs); `None`
    /// uses the harness scale.
    pub scale: Option<ScaleProfile>,
    /// Seed override (variance runs); `None` uses the harness seed.
    pub seed: Option<u64>,
    /// Deterministic fault schedule applied before the run; `None` runs
    /// fault-free.
    pub faults: Option<FaultPlan>,
    /// Forward-progress deadline override (cycles without a retire
    /// before the watchdog quarantines the job); `None` keeps the
    /// configuration's `watchdog_cycles`.
    pub deadline: Option<u64>,
    /// Wall-clock budget in seconds; past it the job checkpoints into
    /// the store (if enabled) and reports [`JobOutcome::TimedOut`].
    /// `None` falls back to `NUBA_JOB_DEADLINE_SECS` (itself usually
    /// unset — no wall deadline).
    pub wall_deadline_secs: Option<f64>,
    /// Sanctioned chaos knob: panic instead of simulating, to prove the
    /// matrix survives a dying job. Never set outside chaos drills.
    pub inject_panic: bool,
    /// Execution-fidelity override for this job. `None` defers to the
    /// process-wide `NUBA_FIDELITY` mode (fixed rung or the `auto`
    /// escalation ladder); `Some` pins this job to one rung regardless
    /// of the mode.
    pub fidelity: Option<Fidelity>,
}

impl Job {
    /// A job running `bench` on `cfg` with the harness defaults.
    pub fn new(label: impl Into<String>, bench: BenchmarkId, cfg: GpuConfig) -> Job {
        Job {
            label: label.into(),
            bench,
            cfg,
            scale: None,
            seed: None,
            faults: None,
            deadline: None,
            wall_deadline_secs: None,
            inject_panic: false,
            fidelity: None,
        }
    }

    /// Override the workload scale (mirrors [`Harness::run_scaled`]).
    #[must_use]
    pub fn with_scale(mut self, scale: ScaleProfile) -> Job {
        self.scale = Some(scale);
        self
    }

    /// Override the layout/stream seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Job {
        self.seed = Some(seed);
        self
    }

    /// Attach a deterministic fault schedule.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Job {
        self.faults = Some(plan);
        self
    }

    /// Override the forward-progress deadline for this job.
    #[must_use]
    pub fn with_deadline(mut self, cycles: u64) -> Job {
        self.deadline = Some(cycles);
        self
    }

    /// Give the job a wall-clock budget: once `secs` elapse, the job
    /// stops at the next chunk boundary, salvages its last good
    /// checkpoint into the store, and reports
    /// [`JobOutcome::TimedOut`] — a slow-but-live job can no longer
    /// burn wall-clock forever (the cycles-based watchdog only catches
    /// jobs that stop *retiring*).
    #[must_use]
    pub fn with_wall_deadline(mut self, secs: f64) -> Job {
        self.wall_deadline_secs = Some(secs);
        self
    }

    /// Make the job panic on entry (chaos drills only).
    #[must_use]
    pub fn with_injected_panic(mut self) -> Job {
        self.inject_panic = true;
        self
    }

    /// Pin this job to one fidelity rung, overriding the process-wide
    /// `NUBA_FIDELITY` mode (figure binaries that *are* the ladder —
    /// `fig_fidelity` — use this to run the same job at tier 1 and
    /// tier 2).
    #[must_use]
    pub fn with_fidelity(mut self, fidelity: Fidelity) -> Job {
        self.fidelity = Some(fidelity);
        self
    }
}

/// How a job ended. `Cancelled` is a graceful drain, not a fault: it
/// is never quarantined and never fails the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOutcome {
    /// The timed window completed and the report is valid.
    Ok,
    /// The job failed (panic, validation, watchdog) after all retries
    /// and was quarantined.
    Failed,
    /// The matrix was cancelled (Ctrl-C, `NUBA_MATRIX_DEADLINE_SECS`)
    /// before or during this job; the report is empty but the job is
    /// *not* a fault.
    Cancelled,
    /// The job's wall-clock deadline elapsed; quarantined, with the
    /// last good checkpoint salvaged into the store when one is
    /// configured.
    TimedOut,
}

impl JobOutcome {
    /// Short stable string for summaries and `BENCH_runner.json`.
    pub fn as_str(self) -> &'static str {
        match self {
            JobOutcome::Ok => "ok",
            JobOutcome::Failed => "failed",
            JobOutcome::Cancelled => "cancelled",
            JobOutcome::TimedOut => "timed_out",
        }
    }
}

/// One deterministic lifecycle event of a job, captured while it runs
/// and rendered post-run into the `NUBA_EVENTS` JSONL log. No
/// wall-clock content: every payload is a logical quantity (attempt
/// number, simulated cycle), so the rendered log is byte-identical
/// across worker counts and skip modes. `queued` and the outcome event
/// are synthesized at render time from the [`JobResult`] itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobEvent {
    /// An attempt began (`attempt` is 1-based).
    Started {
        /// 1-based attempt number.
        attempt: u32,
    },
    /// A failed attempt is being retried (`attempt` is the upcoming
    /// attempt's number).
    Retried {
        /// 1-based number of the attempt about to start.
        attempt: u32,
    },
    /// The job salvaged its machine state into the checkpoint store at
    /// this simulated cycle (cancellation, deadline).
    Salvaged {
        /// Simulated cycle of the salvaged checkpoint.
        cycle: u64,
    },
}

/// A completed job with its throughput record.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job's label.
    pub label: String,
    /// The simulation report ([`SimReport::empty`] unless the outcome
    /// is [`JobOutcome::Ok`]).
    pub report: SimReport,
    /// Wall-clock seconds this job took (build + warm + timed window,
    /// including failed attempts).
    pub wall_seconds: f64,
    /// Simulated cycles per wall-clock second (0 if quarantined).
    pub cycles_per_sec: f64,
    /// How the job ended.
    pub outcome: JobOutcome,
    /// Why the job was quarantined; `None` on success or cancellation.
    pub error: Option<String>,
    /// Attempts consumed (1 + retries actually taken; 0 when cancelled
    /// before starting).
    pub attempts: u32,
    /// Windowed telemetry retained by the job's sampler (empty unless
    /// the job's config — or `NUBA_TIMESERIES` — enabled windowing, or
    /// the job was quarantined).
    pub windows: Vec<TelemetryWindow>,
    /// Completed request-lifecycle trace records (empty unless the
    /// job's config — or `NUBA_TRACE` — enabled tracing, or the job
    /// was quarantined).
    pub trace: Vec<TraceRecord>,
    /// Deterministic lifecycle events, in occurrence order (see
    /// [`JobEvent`]; `queued` and the outcome are synthesized at
    /// render time).
    pub events: Vec<JobEvent>,
    /// Wall-clock offset of the job's first attempt relative to the
    /// matrix start, in seconds. Feeds only the matrix Chrome trace —
    /// the one wall-clock-exempt artifact (DESIGN.md §16).
    pub start_offset_secs: f64,
    /// Wall-clock offset of each attempt's start relative to the
    /// matrix start (one entry per attempt; matrix-trace only).
    pub attempt_offsets_secs: Vec<f64>,
    /// The fidelity rung the report was actually produced at (after
    /// any `auto` escalation). [`Fidelity::Full`] for jobs that never
    /// produced a report.
    pub fidelity: Fidelity,
    /// Whether the `auto` ladder escalated this job from a sampled run
    /// to full simulation because the declared bounds were too wide.
    pub escalated: bool,
}

impl JobResult {
    /// Whether this job was quarantined instead of completing
    /// (failure or wall-clock timeout; a graceful cancellation is not
    /// a fault).
    pub fn failed(&self) -> bool {
        matches!(self.outcome, JobOutcome::Failed | JobOutcome::TimedOut)
    }

    /// Whether the matrix drained this job without running it to
    /// completion.
    pub fn cancelled(&self) -> bool {
        self.outcome == JobOutcome::Cancelled
    }
}

/// One quarantined job in the quarantine registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// The job's label.
    pub label: String,
    /// The panic message or [`SimError`] rendering that killed it.
    pub error: String,
    /// Attempts consumed before giving up.
    pub attempts: u32,
}

/// Cooperative cancellation flag shared by every job of a matrix.
/// Cloning shares the flag. [`is_cancelled`](CancelToken::is_cancelled)
/// also observes the process-wide Ctrl-C flag, so an interactive
/// interrupt drains *every* in-flight matrix gracefully (a second
/// Ctrl-C falls back to the default handler and kills the process).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-tripped token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Trip the token. Returns `true` on the tripping call (callers
    /// use this to log the drain exactly once).
    pub fn cancel(&self) -> bool {
        !self.flag.swap(true, Ordering::SeqCst)
    }

    /// Whether this token — or the process-wide Ctrl-C flag — has been
    /// tripped.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst) || sigint_received()
    }
}

#[cfg(unix)]
mod sigint {
    //! Minimal SIGINT hook with no external dependencies: the handler
    //! sets an atomic flag (async-signal-safe) and restores the default
    //! disposition so a second Ctrl-C terminates immediately.
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Once;

    pub(super) static RECEIVED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;

    extern "C" {
        fn signal(signum: i32, handler: Option<extern "C" fn(i32)>) -> usize;
    }

    extern "C" fn on_sigint(_sig: i32) {
        RECEIVED.store(true, Ordering::SeqCst);
        // `None` is the NULL handler, i.e. SIG_DFL.
        unsafe {
            signal(SIGINT, None);
        }
    }

    pub(super) fn install() {
        static ONCE: Once = Once::new();
        ONCE.call_once(|| unsafe {
            signal(SIGINT, Some(on_sigint));
        });
    }
}

#[cfg(not(unix))]
mod sigint {
    use std::sync::atomic::AtomicBool;

    pub(super) static RECEIVED: AtomicBool = AtomicBool::new(false);

    pub(super) fn install() {}
}

/// Whether the process has received a Ctrl-C since the matrix started.
fn sigint_received() -> bool {
    sigint::RECEIVED.load(Ordering::SeqCst)
}

/// Warm-state cache key: `(benchmark, configuration identity hash,
/// warm-up depth)`. The configuration hash covers the seed, page size,
/// and telemetry knobs, so two jobs share an entry only when their
/// warm-up is bit-for-bit the same.
type WarmKey = (BenchmarkId, u64, usize);

/// Everything the runner shares across the jobs of a matrix, made
/// injectable so servers and tests don't fight over process-globals
/// (ROADMAP item 3): the warm-state cache, the quarantine registry,
/// the optional persistent [checkpoint store](crate::store), and the
/// cancellation token.
///
/// The module-level wrappers ([`run_matrix`], [`finish`],
/// [`quarantined_jobs`], …) delegate to the process-wide
/// environment-configured instance ([`global_ctx`]), so existing
/// binaries don't churn.
pub struct RunnerCtx {
    /// Post-warm-up checkpoints. `all_experiments` replays many
    /// (benchmark, configuration) pairs across its figures; the first
    /// job of each pair warms once and every later job forks from the
    /// checkpoint — byte-identical to re-warming, because warm-up is
    /// untimed and restore is exact. `NUBA_WARM_REUSE=0` disables it.
    warm: Mutex<HashMap<WarmKey, Arc<Checkpoint>>>,
    /// Jobs appended as they fail (worker order); readers sort by
    /// label for deterministic output.
    quarantine: Mutex<Vec<JobFailure>>,
    /// Persistent warm/salvage checkpoint store; `None` falls back
    /// byte-identically to the in-memory cache alone.
    store: Option<CheckpointStore>,
    /// Shared cancellation flag (Ctrl-C, matrix deadline).
    cancel: CancelToken,
}

impl RunnerCtx {
    /// A fresh context with no persistent store.
    pub fn new() -> RunnerCtx {
        RunnerCtx {
            warm: Mutex::new(HashMap::new()),
            quarantine: Mutex::new(Vec::new()),
            store: None,
            cancel: CancelToken::new(),
        }
    }

    /// The environment-configured context: a persistent store iff
    /// `NUBA_STORE_DIR` is set (an unopenable store warns and falls
    /// back to memory — robustness knobs must not take the matrix
    /// down).
    pub fn from_env() -> RunnerCtx {
        RunnerCtx {
            store: CheckpointStore::from_env(),
            ..RunnerCtx::new()
        }
    }

    /// A fresh context backed by `store`.
    pub fn with_store(store: CheckpointStore) -> RunnerCtx {
        RunnerCtx {
            store: Some(store),
            ..RunnerCtx::new()
        }
    }

    /// The context's persistent store, if one is configured.
    pub fn store(&self) -> Option<&CheckpointStore> {
        self.store.as_ref()
    }

    /// The context's cancellation token (clone it into signal handlers
    /// or deadline watchers; cancelling drains the matrix gracefully).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Snapshot of the quarantine registry, sorted by job label.
    pub fn quarantined_jobs(&self) -> Vec<JobFailure> {
        let mut q = self
            .quarantine
            .lock()
            .expect("quarantine registry poisoned")
            .clone();
        q.sort_by(|a, b| a.label.cmp(&b.label));
        q
    }

    /// Clear the quarantine registry (test isolation / multi-phase
    /// tools).
    pub fn reset_quarantine(&self) {
        self.quarantine
            .lock()
            .expect("quarantine registry poisoned")
            .clear();
    }

    /// Drop every cached warm checkpoint (test isolation, memory
    /// pressure between phases of a long sweep). The persistent store
    /// is untouched — it has its own LRU cap.
    pub fn reset_warm_cache(&self) {
        *self.warm.lock().expect("warm cache poisoned") = HashMap::new();
    }

    /// Print the quarantine summary (if any) and return the process
    /// exit code: nonzero only when jobs were quarantined *and*
    /// `NUBA_STRICT_FAULTS=1`. Graceful cancellations are reported but
    /// never gate.
    pub fn finish(&self) -> i32 {
        let q = self.quarantined_jobs();
        if q.is_empty() {
            return 0;
        }
        eprintln!("runner: {} job(s) quarantined:", q.len());
        for f in &q {
            eprintln!(
                "  QUARANTINED {:<28} after {} attempt(s): {}",
                f.label, f.attempts, f.error
            );
        }
        let strict = HarnessOptions::get().strict_faults;
        if strict {
            eprintln!("runner: NUBA_STRICT_FAULTS=1 — exiting nonzero");
            1
        } else {
            eprintln!(
                "runner: matrix completed despite failures (set NUBA_STRICT_FAULTS=1 to gate)"
            );
            0
        }
    }

    fn quarantine(&self, failure: JobFailure) {
        self.quarantine
            .lock()
            .expect("quarantine registry poisoned")
            .push(failure);
    }

    fn warm_lookup(&self, key: &WarmKey) -> Option<Arc<Checkpoint>> {
        self.warm
            .lock()
            .expect("warm cache poisoned")
            .get(key)
            .cloned()
    }

    fn warm_insert(&self, key: WarmKey, ckpt: Arc<Checkpoint>) {
        self.warm
            .lock()
            .expect("warm cache poisoned")
            .insert(key, ckpt);
    }
}

impl Default for RunnerCtx {
    fn default() -> RunnerCtx {
        RunnerCtx::new()
    }
}

/// The process-wide environment-configured [`RunnerCtx`] the
/// module-level wrappers delegate to, built on first use.
pub fn global_ctx() -> &'static RunnerCtx {
    static CTX: OnceLock<RunnerCtx> = OnceLock::new();
    CTX.get_or_init(RunnerCtx::from_env)
}

/// Snapshot of the global context's quarantine registry, sorted by job
/// label.
pub fn quarantined_jobs() -> Vec<JobFailure> {
    global_ctx().quarantined_jobs()
}

/// Clear the global context's quarantine registry (test isolation /
/// multi-phase tools).
pub fn reset_quarantine() {
    global_ctx().reset_quarantine()
}

/// Drop the global context's cached warm checkpoints.
pub fn reset_warm_cache() {
    global_ctx().reset_warm_cache()
}

/// Retries per job after a failure: `NUBA_JOB_RETRIES`, default 0.
pub fn job_retries() -> u32 {
    HarnessOptions::get().job_retries
}

/// Print the global context's quarantine summary (if any) and return
/// the process exit code. Call last in every matrix binary:
///
/// ```ignore
/// std::process::exit(runner::finish());
/// ```
pub fn finish() -> i32 {
    global_ctx().finish()
}

/// Worker count: `NUBA_JOBS` if set and positive, else the machine's
/// available parallelism.
pub fn num_jobs() -> usize {
    HarnessOptions::get().jobs
}

/// Run `n` independent tasks on up to `threads` scoped workers; task
/// `i` computes `f(i)`. Results return in index order. Workers steal
/// the next unclaimed index from a shared counter, so long tasks do not
/// convoy short ones. With `threads <= 1` the tasks run inline on the
/// caller's thread in order.
pub fn run_jobs<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker completed every claimed job")
        })
        .collect()
}

/// Sampling defaults when telemetry is switched on from the
/// environment rather than the job's own config: 1000-cycle windows
/// and 1-in-64 request tracing. Fixed constants (not wall-clock or
/// machine dependent) so the exported artifacts stay byte-identical
/// across worker counts.
const ENV_WINDOW_CYCLES: u64 = 1000;
const ENV_TRACE_PERIOD: u64 = 64;

/// Cycles between cooperative cancellation/deadline checks when
/// mid-run checkpointing has not set a chunk size already.
/// `run(a); run(b)` ≡ `run(a+b)` (session tests), so chunking never
/// changes results — it only bounds how stale a cancellation check can
/// get.
const CANCEL_CHUNK: u64 = 8192;

/// Build a warmed simulator for `cfg`/`wl`, forking from the warm-state
/// cache when possible — in-memory first, then the persistent store
/// (verified read; corrupt entries quarantine and miss), then a real
/// warm-up whose checkpoint is published to both. Fault-plan jobs skip
/// the cache: their schedule is armed before warm-up, and keeping them
/// on the slow path makes the cache trivially inert for chaos drills.
fn warmed_simulator(
    ctx: &RunnerCtx,
    bench: BenchmarkId,
    cfg: &GpuConfig,
    wl: &Workload,
    cacheable: bool,
) -> Result<GpuSimulator, SimError> {
    let per_warp = default_warm_accesses(cfg, wl);
    let key = (bench, cfg.state_hash(), per_warp);
    if cacheable && HarnessOptions::get().warm_reuse {
        if let Some(ckpt) = ctx.warm_lookup(&key) {
            return GpuSimulator::restore(cfg.clone(), wl, &ckpt);
        }
        let store_key = StoreKey::warm(bench, cfg.state_hash(), per_warp as u64);
        if let Some(store) = ctx.store() {
            if let Some(ckpt) = store.get(&store_key) {
                let ckpt = Arc::new(ckpt);
                ctx.warm_insert(key, Arc::clone(&ckpt));
                return GpuSimulator::restore(cfg.clone(), wl, &ckpt);
            }
        }
        let mut gpu = GpuSimulator::try_new(cfg.clone(), wl)?;
        gpu.warm(wl, per_warp);
        let ckpt = Arc::new(gpu.checkpoint(wl));
        ctx.warm_insert(key, Arc::clone(&ckpt));
        if let Some(store) = ctx.store() {
            if let Err(e) = store.put(&store_key, &ckpt) {
                // Persistence is an optimization; its failures warn.
                eprintln!("runner: cannot persist warm state {store_key}: {e}");
            }
        }
        Ok(gpu)
    } else {
        let mut gpu = GpuSimulator::try_new(cfg.clone(), wl)?;
        gpu.warm(wl, per_warp);
        Ok(gpu)
    }
}

/// Salvage the job's current machine state into the store under the
/// `run/` namespace (keyed by cycle) so an operator can resume or
/// post-mortem a drained job. Best-effort: failures warn. Returns the
/// salvaged cycle so the caller can log a [`JobEvent::Salvaged`].
fn salvage_to_store(
    ctx: &RunnerCtx,
    job: &Job,
    cfg: &GpuConfig,
    wl: &Workload,
    gpu: &mut GpuSimulator,
) -> Option<u64> {
    let store = ctx.store()?;
    if gpu.cycle() == 0 {
        return None;
    }
    let key = StoreKey::run(job.bench, cfg.state_hash(), gpu.cycle());
    let ckpt = gpu.checkpoint(wl);
    match store.put(&key, &ckpt) {
        Ok(()) => {
            eprintln!(
                "runner: salvaged {} at cycle {} to store",
                job.label,
                gpu.cycle()
            );
            Some(gpu.cycle())
        }
        Err(e) => {
            eprintln!("runner: cannot salvage {}: {e}", job.label);
            None
        }
    }
}

/// Why a job attempt stopped short of a report.
enum JobAbort {
    /// The simulation failed (validation, watchdog); retryable.
    Sim(SimError),
    /// The matrix is draining; not a fault, never retried.
    Cancelled,
    /// The job's wall-clock deadline elapsed; quarantined, never
    /// retried (the budget is already spent).
    TimedOut,
}

/// When the `auto` ladder sees a sampled report whose IPC bound has a
/// relative half-width above this, the bounds are too wide to separate
/// paper-scale config deltas (§6 speedups run 5–40%) and the job is
/// escalated to full simulation. The value is twice the bound's 12%
/// calibration floor, so only jobs whose *variance* term is large —
/// genuinely unstable interval rates — pay for tier 2.
const ESCALATE_REL_HALF_WIDTH: f64 = 0.24;

/// Everything a detailed (tier-2) chunked window needs to cooperate
/// with cancellation, deadlines, and mid-run checkpointing — factored
/// out of [`execute_job`] so the `auto` ladder can run it both as the
/// default path and as the escalation target.
struct DetailedWindow<'a> {
    ctx: &'a RunnerCtx,
    job: &'a Job,
    cfg: &'a GpuConfig,
    wl: &'a Workload,
    /// Absolute cycle the timed window ends at (`Harness::cycles`).
    end_cycle: u64,
    chunk_cycles: u64,
    checkpointing: bool,
    job_deadline: Option<Instant>,
    matrix_deadline: Option<Instant>,
}

impl DetailedWindow<'_> {
    /// Cooperative gate between chunks: cancellation, matrix deadline,
    /// job wall deadline. On any trip the current machine state is
    /// salvaged into the store before aborting.
    fn gate(&self, gpu: &mut GpuSimulator, events: &mut Vec<JobEvent>) -> Result<(), JobAbort> {
        if self.ctx.cancel.is_cancelled() {
            if let Some(cycle) = salvage_to_store(self.ctx, self.job, self.cfg, self.wl, gpu) {
                events.push(JobEvent::Salvaged { cycle });
            }
            return Err(JobAbort::Cancelled);
        }
        if self.matrix_deadline.is_some_and(|d| Instant::now() >= d) {
            if self.ctx.cancel.cancel() {
                eprintln!("runner: NUBA_MATRIX_DEADLINE_SECS exceeded — draining matrix");
            }
            if let Some(cycle) = salvage_to_store(self.ctx, self.job, self.cfg, self.wl, gpu) {
                events.push(JobEvent::Salvaged { cycle });
            }
            return Err(JobAbort::Cancelled);
        }
        if self.job_deadline.is_some_and(|d| Instant::now() >= d) {
            if let Some(cycle) = salvage_to_store(self.ctx, self.job, self.cfg, self.wl, gpu) {
                events.push(JobEvent::Salvaged { cycle });
            }
            return Err(JobAbort::TimedOut);
        }
        Ok(())
    }

    /// Run the window to `end_cycle` in chunks. The window always ends
    /// at the same absolute cycle (warm-up and restore never advance
    /// the clock mid-chunk), so chunked and straight-through runs
    /// retire byte-identical reports; chunking only makes cancellation
    /// and wall deadlines cooperative.
    fn run(
        &self,
        gpu: &mut GpuSimulator,
        resume: &mut Option<Checkpoint>,
        events: &mut Vec<JobEvent>,
    ) -> Result<SimReport, JobAbort> {
        loop {
            self.gate(gpu, events)?;
            let remaining = self.end_cycle.saturating_sub(gpu.cycle());
            if remaining == 0 {
                return Ok(gpu.report());
            }
            let chunk = remaining.min(self.chunk_cycles);
            let r = gpu.run(chunk).map_err(JobAbort::Sim)?;
            if remaining <= chunk {
                return Ok(r);
            }
            if self.checkpointing {
                *resume = Some(gpu.checkpoint(self.wl));
            }
        }
    }
}

/// One attempt at a job: build, arm faults/watchdog, warm, run. Every
/// failure mode surfaces as `Err` (validation, watchdog, cancellation,
/// wall deadline) or a panic (workload/config mismatch, internal bug)
/// — the caller catches both. On success, the job's retained telemetry
/// rides along with the report.
///
/// `resume` carries the job's latest mid-run checkpoint between
/// attempts: when `NUBA_CHECKPOINT_EVERY` is active (on by default
/// under `NUBA_FULL`), a retry restores the last good chunk instead of
/// starting over.
struct JobOutput {
    report: SimReport,
    windows: Vec<TelemetryWindow>,
    trace: Vec<TraceRecord>,
    /// The rung the report was produced at (after any escalation).
    fidelity: Fidelity,
    /// Whether the `auto` ladder escalated tier 1 → tier 2.
    escalated: bool,
}

fn execute_job(
    ctx: &RunnerCtx,
    h: &Harness,
    job: &Job,
    resume: &mut Option<Checkpoint>,
    job_deadline: Option<Instant>,
    matrix_deadline: Option<Instant>,
    events: &mut Vec<JobEvent>,
) -> Result<JobOutput, JobAbort> {
    let opts = HarnessOptions::get();
    let scale = job.scale.unwrap_or(h.scale);
    let seed = job.seed.unwrap_or(h.seed);
    let mut cfg = job.cfg.clone();
    cfg.seed = seed;
    if cfg.page_bytes != scale.page_bytes {
        cfg.page_bytes = scale.page_bytes;
    }
    // `NUBA_TIMESERIES` / `NUBA_TRACE` switch telemetry on for every
    // job in the matrix without touching the binaries; jobs whose
    // config already enables a pillar keep their own knobs.
    if opts.timeseries.is_some() {
        cfg.telemetry.window_cycles.get_or_insert(ENV_WINDOW_CYCLES);
    }
    if opts.trace.is_some() && cfg.telemetry.trace_sample_period == 0 {
        cfg.telemetry.trace_sample_period = ENV_TRACE_PERIOD;
    }
    // Resolve the job's rung on the fidelity ladder: a per-job pin
    // wins; otherwise the process-wide mode picks one fixed rung, or —
    // under `auto` — the tier-0 screen runs on every job and decides
    // the escalation. An informative screen (one story consistent with
    // the model: clearly compute-bound, or one tier clearly the choke
    // point) stands alone at tier 0; a non-informative screen
    // escalates to tier-1 sampling, and tier 2 is reached only when
    // the tier-1 bounds are still too wide to separate paper-scale
    // deltas (checked below).
    let auto = job.fidelity.is_none() && opts.fidelity == FidelityMode::Auto;
    let mut fidelity = job.fidelity.unwrap_or(match opts.fidelity {
        FidelityMode::Fixed(f) => f,
        FidelityMode::Auto => Fidelity::sampled_default(),
    });
    if auto {
        let screen = crate::screen::screen_benchmark(job.bench, &scale, &cfg);
        if screen.informative() {
            fidelity = Fidelity::Analytical;
        }
    }
    if fidelity == Fidelity::Analytical {
        if job.inject_panic {
            panic!("injected chaos panic (Job::with_injected_panic)");
        }
        // Tier 0 stands alone: no simulator is built. The screen's
        // predictions (roofline throughput, saturation-curve
        // bandwidths) are cast into the report shape so an analytical
        // matrix still renders — marked as tier 0 by the result's
        // `fidelity` field.
        let screen = crate::screen::screen_benchmark(job.bench, &scale, &cfg);
        let report = screen.synthetic_report(&cfg, h.cycles);
        return Ok(JobOutput {
            report,
            windows: Vec::new(),
            trace: Vec::new(),
            fidelity,
            escalated: false,
        });
    }
    let wl = Workload::build(job.bench, scale, cfg.num_sms, seed);
    let build_gpu = |resume: &mut Option<Checkpoint>| -> Result<GpuSimulator, JobAbort> {
        match resume.take() {
            // Retry of a partially completed window: the checkpoint
            // already carries the armed fault schedule and watchdog
            // budget.
            Some(ckpt) => GpuSimulator::restore(cfg.clone(), &wl, &ckpt).map_err(JobAbort::Sim),
            None => {
                let mut gpu = warmed_simulator(ctx, job.bench, &cfg, &wl, job.faults.is_none())
                    .map_err(JobAbort::Sim)?;
                if let Some(plan) = &job.faults {
                    gpu.set_fault_plan(plan);
                }
                if let Some(deadline) = job.deadline {
                    gpu.set_watchdog(Some(deadline));
                }
                Ok(gpu)
            }
        }
    };
    let mut gpu = build_gpu(resume)?;
    if job.inject_panic {
        panic!("injected chaos panic (Job::with_injected_panic)");
    }
    let checkpointing = opts.checkpoint_every.filter(|_| job_retries() > 0);
    let win = DetailedWindow {
        ctx,
        job,
        cfg: &cfg,
        wl: &wl,
        // The window ends at absolute cycle `h.cycles`: warm-up leaves
        // the clock at 0 and a resume restores it mid-way.
        end_cycle: h.cycles,
        chunk_cycles: checkpointing.unwrap_or(CANCEL_CHUNK).max(1),
        checkpointing: checkpointing.is_some(),
        job_deadline,
        matrix_deadline,
    };
    let (report, fidelity, escalated) = match fidelity {
        Fidelity::Sampled {
            intervals,
            detail_cycles,
        } => {
            // A sampled window must stay whole — chunking it would
            // destroy the interval structure — so the cooperative gate
            // runs once up front. Sampled windows are short by design;
            // deadlines are re-checked before any escalation.
            win.gate(&mut gpu, events)?;
            let remaining = h.cycles.saturating_sub(gpu.cycle());
            let sampled = if remaining == 0 {
                gpu.report()
            } else {
                run_sampled(&mut gpu, remaining, intervals, detail_cycles).map_err(JobAbort::Sim)?
            };
            if auto && sampled.ipc_bound().relative() > ESCALATE_REL_HALF_WIDTH {
                // Tier 1 → tier 2: the bounds cannot separate
                // paper-scale deltas. Rebuild from the warm state and
                // run the full window — byte-identical to a job that
                // ran at `Fidelity::Full` from the start.
                let mut full = build_gpu(&mut None)?;
                let r = win.run(&mut full, resume, events)?;
                gpu = full;
                (r, Fidelity::Full, true)
            } else {
                (sampled, fidelity, false)
            }
        }
        Fidelity::Analytical | Fidelity::Full => {
            (win.run(&mut gpu, resume, events)?, Fidelity::Full, false)
        }
    };
    let windows = gpu.telemetry().windows_vec();
    let trace = gpu.telemetry().trace_records().to_vec();
    Ok(JobOutput {
        report,
        windows,
        trace,
        fidelity,
        escalated,
    })
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Deterministic exponential backoff before retry `attempt + 1`:
/// `base << (attempt - 1)` milliseconds, capped at 5 s. Depends only
/// on the attempt number, never on a clock or RNG. `base == 0`
/// disables the sleep (attempts still count).
fn backoff_sleep(base_ms: u64, attempt: u32) {
    if base_ms == 0 {
        return;
    }
    let shift = attempt.saturating_sub(1).min(16);
    let ms = base_ms.saturating_mul(1u64 << shift).min(5_000);
    std::thread::sleep(Duration::from_millis(ms));
}

/// Lifecycle observations accumulated while a job ran: the
/// deterministic events for the log plus the wall-clock offsets that
/// feed only the matrix trace.
struct Lifecycle {
    events: Vec<JobEvent>,
    start_offset_secs: f64,
    attempt_offsets_secs: Vec<f64>,
}

/// A [`JobResult`] for a job that never produced a report.
fn empty_result(
    job: &Job,
    outcome: JobOutcome,
    error: Option<String>,
    attempts: u32,
    start: Instant,
    lifecycle: Lifecycle,
) -> JobResult {
    JobResult {
        label: job.label.clone(),
        report: SimReport::empty(),
        wall_seconds: start.elapsed().as_secs_f64(),
        cycles_per_sec: 0.0,
        outcome,
        error,
        attempts,
        windows: Vec::new(),
        trace: Vec::new(),
        events: lifecycle.events,
        start_offset_secs: lifecycle.start_offset_secs,
        attempt_offsets_secs: lifecycle.attempt_offsets_secs,
        fidelity: job.fidelity.unwrap_or(Fidelity::Full),
        escalated: false,
    }
}

/// Execute one job exactly as [`Harness::run`] / [`Harness::run_scaled`]
/// would, timing it. Panics and [`SimError`]s are caught; after
/// `NUBA_JOB_RETRIES` retries (with deterministic backoff between
/// attempts) the job is quarantined instead of taking the matrix down.
/// Cancellation and wall-clock timeouts break out immediately — a
/// drained or budget-exhausted job is never retried.
fn run_job(
    ctx: &RunnerCtx,
    h: &Harness,
    job: &Job,
    matrix_deadline: Option<Instant>,
    matrix_start: Instant,
) -> JobResult {
    let opts = HarnessOptions::get();
    let retries = job_retries();
    let start = Instant::now();
    let start_offset_secs = start.duration_since(matrix_start).as_secs_f64();
    // Claimed after the matrix started draining: report the job as
    // cancelled without touching the simulator.
    if ctx.cancel.is_cancelled() || matrix_deadline.is_some_and(|d| Instant::now() >= d) {
        ctx.cancel.cancel();
        return empty_result(
            job,
            JobOutcome::Cancelled,
            None,
            0,
            start,
            Lifecycle {
                events: Vec::new(),
                start_offset_secs,
                attempt_offsets_secs: Vec::new(),
            },
        );
    }
    let deadline_secs = job.wall_deadline_secs.or(opts.job_deadline_secs);
    let job_deadline = deadline_secs.map(|s| start + Duration::from_secs_f64(s.max(0.0)));
    let mut attempts = 0u32;
    let mut events: Vec<JobEvent> = Vec::new();
    let mut attempt_offsets: Vec<f64> = Vec::new();
    // Latest mid-run checkpoint, carried across retry attempts so a
    // late failure resumes from the last good chunk.
    let mut resume: Option<Checkpoint> = None;
    let (outcome, error) = loop {
        attempts += 1;
        events.push(if attempts == 1 {
            JobEvent::Started { attempt: attempts }
        } else {
            JobEvent::Retried { attempt: attempts }
        });
        attempt_offsets.push(Instant::now().duration_since(matrix_start).as_secs_f64());
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut ev = Vec::new();
            let out = execute_job(
                ctx,
                h,
                job,
                &mut resume,
                job_deadline,
                matrix_deadline,
                &mut ev,
            );
            (out, ev)
        }));
        match attempt {
            Ok((Ok(out), ev)) => {
                events.extend(ev);
                let wall_seconds = start.elapsed().as_secs_f64();
                let cycles_per_sec = out.report.cycles as f64 / wall_seconds.max(1e-9);
                return JobResult {
                    label: job.label.clone(),
                    report: out.report,
                    wall_seconds,
                    cycles_per_sec,
                    outcome: JobOutcome::Ok,
                    error: None,
                    attempts,
                    windows: out.windows,
                    trace: out.trace,
                    events,
                    start_offset_secs,
                    attempt_offsets_secs: attempt_offsets,
                    fidelity: out.fidelity,
                    escalated: out.escalated,
                };
            }
            Ok((Err(JobAbort::Cancelled), ev)) => {
                events.extend(ev);
                break (JobOutcome::Cancelled, None);
            }
            Ok((Err(JobAbort::TimedOut), ev)) => {
                events.extend(ev);
                break (
                    JobOutcome::TimedOut,
                    Some(format!(
                        "wall-clock deadline exceeded (budget {:.1}s)",
                        deadline_secs.unwrap_or(0.0)
                    )),
                );
            }
            Ok((Err(JobAbort::Sim(e)), ev)) => {
                events.extend(ev);
                if attempts <= retries {
                    backoff_sleep(opts.retry_backoff_ms, attempts);
                    continue;
                }
                break (JobOutcome::Failed, Some(e.to_string()));
            }
            Err(payload) => {
                if attempts <= retries {
                    backoff_sleep(opts.retry_backoff_ms, attempts);
                    continue;
                }
                break (
                    JobOutcome::Failed,
                    Some(format!("panic: {}", panic_message(payload.as_ref()))),
                );
            }
        }
    };
    if matches!(outcome, JobOutcome::Failed | JobOutcome::TimedOut) {
        ctx.quarantine(JobFailure {
            label: job.label.clone(),
            error: error.clone().unwrap_or_default(),
            attempts,
        });
    }
    empty_result(
        job,
        outcome,
        error,
        attempts,
        start,
        Lifecycle {
            events,
            start_offset_secs,
            attempt_offsets_secs: attempt_offsets,
        },
    )
}

/// Run an experiment matrix on the `NUBA_JOBS` pool under the global
/// context. Results are returned in submission order regardless of the
/// execution schedule.
pub fn run_matrix(h: &Harness, jobs: &[Job]) -> Vec<JobResult> {
    run_matrix_with(h, jobs, num_jobs())
}

/// [`run_matrix`] with an explicit worker count (determinism tests).
pub fn run_matrix_with(h: &Harness, jobs: &[Job], threads: usize) -> Vec<JobResult> {
    run_matrix_ctx_with(global_ctx(), h, jobs, threads)
}

/// Run an experiment matrix under an explicit [`RunnerCtx`].
pub fn run_matrix_ctx(ctx: &RunnerCtx, h: &Harness, jobs: &[Job]) -> Vec<JobResult> {
    run_matrix_ctx_with(ctx, h, jobs, num_jobs())
}

/// [`run_matrix_ctx`] with an explicit worker count.
pub fn run_matrix_ctx_with(
    ctx: &RunnerCtx,
    h: &Harness,
    jobs: &[Job],
    threads: usize,
) -> Vec<JobResult> {
    // Tier-0 stage: the static analytical screen, opt-in via
    // `NUBA_SCREEN=1` and guaranteed inert (not a byte of output, no
    // simulation effect) otherwise.
    crate::screen::print_screen_if_enabled(h, jobs);
    // First Ctrl-C drains the matrix (jobs checkpoint-and-stop), a
    // second one kills the process via the restored default handler.
    sigint::install();
    let matrix_start = Instant::now();
    let matrix_deadline = HarnessOptions::get()
        .matrix_deadline_secs
        .map(|s| matrix_start + Duration::from_secs_f64(s.max(0.0)));
    let results = run_jobs(jobs.len(), threads, |i| {
        run_job(ctx, h, &jobs[i], matrix_deadline, matrix_start)
    });
    let drained = results.iter().filter(|r| r.cancelled()).count();
    if drained > 0 {
        eprintln!(
            "runner: matrix drained — {drained} of {} job(s) cancelled gracefully",
            results.len()
        );
    }
    results
}

/// Render every job's retained telemetry windows as JSONL, one line
/// per window, jobs in submission order. Deterministic: the content
/// depends only on the simulations, never on the schedule or clock.
pub fn render_timeseries(results: &[JobResult]) -> String {
    let mut out = String::new();
    for (job_idx, r) in results.iter().enumerate() {
        for (w_idx, w) in r.windows.iter().enumerate() {
            out.push_str(&w.jsonl_line(&r.label, job_idx, w_idx));
            out.push('\n');
        }
    }
    out
}

/// Render every job's completed lifecycle records as one Chrome
/// `trace_event` JSON object (load it at `chrome://tracing` or in
/// Perfetto). `pid` is the job's submission index, `tid` the SM, and
/// timestamps are simulated cycles presented as microseconds.
/// Deterministic for the same reason as [`render_timeseries`].
pub fn render_trace(results: &[JobResult]) -> String {
    let mut events: Vec<String> = Vec::new();
    for (job_idx, r) in results.iter().enumerate() {
        for rec in &r.trace {
            events.extend(rec.trace_events(job_idx, &r.label));
        }
    }
    if events.is_empty() {
        return "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}\n".to_string();
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Render the matrix's structured event log as JSONL: one lifecycle
/// event per line, jobs in submission order, with a synthesized
/// monotonic `seq`. For each job: `queued`, then the captured
/// [`JobEvent`]s (started / retried / salvaged), then the outcome
/// (`ok` / `failed` / `cancelled` / `timed_out`, with `quarantined`
/// set on faults); finally one matrix-level `store` summary event when
/// store counters were observed. No wall-clock fields anywhere, so the
/// log is byte-identical across worker counts and skip modes (store
/// counters can race under a *shared* persistent store — DESIGN.md
/// §16 documents that caveat).
pub fn render_event_log(results: &[JobResult], store: Option<StoreStats>) -> String {
    let mut out = String::new();
    let mut seq = 0u64;
    let line = |out: &mut String, seq: &mut u64, body: String| {
        out.push_str(&format!("{{\"seq\":{},{body}}}\n", *seq));
        *seq += 1;
    };
    for (job_idx, r) in results.iter().enumerate() {
        let ident = format!(
            "\"job\":\"{}\",\"job_index\":{job_idx}",
            escape_json(&r.label)
        );
        line(&mut out, &mut seq, format!("\"event\":\"queued\",{ident}"));
        for ev in &r.events {
            let body = match ev {
                JobEvent::Started { attempt } => {
                    format!("\"event\":\"started\",{ident},\"attempt\":{attempt}")
                }
                JobEvent::Retried { attempt } => {
                    format!("\"event\":\"retried\",{ident},\"attempt\":{attempt}")
                }
                JobEvent::Salvaged { cycle } => {
                    format!("\"event\":\"salvaged\",{ident},\"cycle\":{cycle}")
                }
            };
            line(&mut out, &mut seq, body);
        }
        let mut body = format!(
            "\"event\":\"{}\",{ident},\"attempts\":{},\"cycles\":{}",
            r.outcome.as_str(),
            r.attempts,
            r.report.cycles
        );
        if r.failed() {
            body.push_str(",\"quarantined\":true");
        }
        if let Some(e) = &r.error {
            body.push_str(&format!(",\"error\":\"{}\"", escape_json(e)));
        }
        line(&mut out, &mut seq, body);
    }
    if let Some(s) = store {
        line(
            &mut out,
            &mut seq,
            format!(
                "\"event\":\"store\",\"hits\":{},\"misses\":{},\"inserts\":{},\
                 \"write_errors\":{},\"quarantined\":{},\"evictions\":{}",
                s.hits, s.misses, s.inserts, s.write_errors, s.quarantined, s.evictions
            ),
        );
    }
    out
}

/// Render the matrix-level Chrome trace: one span per job (pid 0,
/// tid = submission index) and one nested span per retry attempt.
/// This is the single artifact that carries wall-clock timestamps —
/// explicitly exempt from the byte-determinism contract, because its
/// whole point is to show the real schedule (who ran when, where the
/// retries went). Load at `chrome://tracing` or in Perfetto.
pub fn render_matrix_trace(results: &[JobResult]) -> String {
    let mut events: Vec<String> = Vec::new();
    let us = |secs: f64| (secs * 1e6).round().max(0.0) as u64;
    for (job_idx, r) in results.iter().enumerate() {
        events.push(format!(
            concat!(
                "{{\"name\":\"{}\",\"cat\":\"job\",\"ph\":\"X\",",
                "\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},",
                "\"args\":{{\"outcome\":\"{}\",\"attempts\":{},\"cycles\":{}}}}}"
            ),
            escape_json(&r.label),
            us(r.start_offset_secs),
            us(r.wall_seconds),
            job_idx,
            r.outcome.as_str(),
            r.attempts,
            r.report.cycles,
        ));
        let end = r.start_offset_secs + r.wall_seconds;
        for (i, &at) in r.attempt_offsets_secs.iter().enumerate() {
            let next = r.attempt_offsets_secs.get(i + 1).copied().unwrap_or(end);
            events.push(format!(
                concat!(
                    "{{\"name\":\"attempt {}\",\"cat\":\"attempt\",\"ph\":\"X\",",
                    "\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{}}}"
                ),
                i + 1,
                us(at),
                us((next - at).max(0.0)),
                job_idx,
            ));
        }
    }
    if events.is_empty() {
        return "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}\n".to_string();
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Fold a matrix's results (and the store's counters, when a store is
/// configured) into a [`MetricsRegistry`] for the `NUBA_METRICS`
/// Prometheus dump: job outcome counts, attempt and cycle totals,
/// store counters, and the per-tier / per-stage latency histograms
/// merged across jobs. Deliberately no wall-clock values — the dump is
/// part of the deterministic artifact set.
pub fn build_matrix_registry(results: &[JobResult], store: Option<StoreStats>) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    let stats = MatrixStats::of(results);
    reg.counter_add("nuba_jobs_total", stats.jobs as u64);
    reg.counter_add("nuba_jobs_quarantined_total", stats.quarantined as u64);
    reg.counter_add("nuba_jobs_cancelled_total", stats.cancelled as u64);
    reg.counter_add("nuba_jobs_timed_out_total", stats.timed_out as u64);
    reg.counter_add(
        "nuba_jobs_ok_total",
        results
            .iter()
            .filter(|r| r.outcome == JobOutcome::Ok)
            .count() as u64,
    );
    reg.counter_add(
        "nuba_job_attempts_total",
        results.iter().map(|r| u64::from(r.attempts)).sum(),
    );
    reg.counter_add("nuba_cycles_total", stats.total_cycles);
    reg.counter_add(
        "nuba_warp_ops_total",
        results.iter().map(|r| r.report.warp_ops).sum(),
    );
    if let Some(s) = store {
        reg.counter_add("nuba_store_hits_total", s.hits);
        reg.counter_add("nuba_store_misses_total", s.misses);
        reg.counter_add("nuba_store_inserts_total", s.inserts);
        reg.counter_add("nuba_store_write_errors_total", s.write_errors);
        reg.counter_add("nuba_store_quarantined_total", s.quarantined);
        reg.counter_add("nuba_store_evictions_total", s.evictions);
    }
    let mut tiers = [Histogram::new(); NUM_TIERS];
    let mut stages = [Histogram::new(); NUM_STAGES];
    for r in results {
        for (acc, h) in tiers.iter_mut().zip(r.report.latency.tiers.iter()) {
            acc.merge(h);
        }
        for (acc, h) in stages.iter_mut().zip(r.report.latency.stages.iter()) {
            acc.merge(h);
        }
    }
    for (i, h) in tiers.iter().enumerate() {
        if !h.is_empty() {
            *reg.histogram_mut(&format!("nuba_read_latency_cycles_{}", TIER_NAMES[i])) = *h;
        }
    }
    for (i, h) in stages.iter().enumerate() {
        if !h.is_empty() {
            *reg.histogram_mut(&format!("nuba_stage_delay_cycles_{}", STAGE_NAMES[i])) = *h;
        }
    }
    reg
}

/// Write the matrix's telemetry artifacts to the paths named by
/// `NUBA_TIMESERIES` (windowed JSONL), `NUBA_TRACE` (Chrome lifecycle
/// trace), `NUBA_EVENTS` (harness event log JSONL), `NUBA_MATRIX_TRACE`
/// (matrix-level Chrome trace), and `NUBA_METRICS` (Prometheus text
/// dump). No-op when none are set. Write failures warn on stderr
/// rather than failing the run — observability must never take an
/// otherwise-healthy matrix down.
pub fn write_telemetry_outputs(results: &[JobResult]) {
    let opts = HarnessOptions::get();
    let write = |path: &str, what: &str, content: String| match std::fs::write(path, content) {
        Ok(()) => eprintln!("runner: wrote {what} to {path}"),
        Err(e) => eprintln!("runner: cannot write {what} {path}: {e}"),
    };
    if let Some(path) = &opts.timeseries {
        write(path, "windowed telemetry", render_timeseries(results));
    }
    if let Some(path) = &opts.trace {
        write(path, "lifecycle trace", render_trace(results));
    }
    let store_stats = global_ctx().store().map(|s| s.stats());
    if let Some(path) = &opts.events {
        write(path, "event log", render_event_log(results, store_stats));
    }
    if let Some(path) = &opts.matrix_trace {
        write(path, "matrix trace", render_matrix_trace(results));
    }
    if let Some(path) = &opts.metrics {
        write(
            path,
            "metrics dump",
            build_matrix_registry(results, store_stats).render_prometheus(),
        );
    }
}

/// Aggregate throughput of one `run_matrix` call.
#[derive(Debug, Clone, Copy, Default)]
pub struct MatrixStats {
    /// Jobs executed.
    pub jobs: usize,
    /// Sum of per-job wall-clock seconds (CPU-seconds of simulation).
    pub cpu_seconds: f64,
    /// Total simulated cycles across the matrix.
    pub total_cycles: u64,
    /// Cycles simulated *in detail* across the matrix
    /// ([`SimReport::detailed_cycles`]): equals `total_cycles` when
    /// every job ran at full fidelity, less when the sampling ladder
    /// skipped work. `total_cycles / detailed_cycles` is the ladder's
    /// detail-reduction factor.
    pub detailed_cycles: u64,
    /// Jobs the `auto` ladder escalated from tier 1 to tier 2.
    pub escalated: usize,
    /// Jobs that were quarantined instead of completing (failures and
    /// wall-clock timeouts).
    pub quarantined: usize,
    /// Jobs drained gracefully by cancellation (not faults).
    pub cancelled: usize,
    /// Jobs that exceeded their wall-clock deadline (subset of
    /// `quarantined`).
    pub timed_out: usize,
}

impl MatrixStats {
    /// Summarize a result set.
    pub fn of(results: &[JobResult]) -> MatrixStats {
        MatrixStats {
            jobs: results.len(),
            cpu_seconds: results.iter().map(|r| r.wall_seconds).sum(),
            total_cycles: results.iter().map(|r| r.report.cycles).sum(),
            // Tier-0 jobs synthesize a report without simulating: they
            // contribute window cycles but zero detailed cycles.
            detailed_cycles: results
                .iter()
                .map(|r| {
                    if r.fidelity.simulates() {
                        r.report.detailed_cycles()
                    } else {
                        0
                    }
                })
                .sum(),
            escalated: results.iter().filter(|r| r.escalated).count(),
            quarantined: results.iter().filter(|r| r.failed()).count(),
            cancelled: results.iter().filter(|r| r.cancelled()).count(),
            timed_out: results
                .iter()
                .filter(|r| r.outcome == JobOutcome::TimedOut)
                .count(),
        }
    }

    /// Fold another matrix into this aggregate.
    pub fn absorb(&mut self, other: MatrixStats) {
        self.jobs += other.jobs;
        self.cpu_seconds += other.cpu_seconds;
        self.total_cycles += other.total_cycles;
        self.detailed_cycles += other.detailed_cycles;
        self.escalated += other.escalated;
        self.quarantined += other.quarantined;
        self.cancelled += other.cancelled;
        self.timed_out += other.timed_out;
    }
}

/// One run's record in `BENCH_runner.json`.
#[derive(Debug, Clone, Copy)]
pub struct RunnerRecord {
    /// Worker count the run used.
    pub nuba_jobs: usize,
    /// End-to-end wall-clock seconds of the whole report.
    pub wall_seconds: f64,
    /// Matrix aggregate.
    pub stats: MatrixStats,
    /// Checkpoint-store counters at run end (all zero when no store
    /// was configured). Surfaced here so the store's effectiveness is
    /// inspectable from the artifact, not just stderr chatter.
    pub store: StoreStats,
}

impl RunnerRecord {
    /// The global context's store counters, for building a record at
    /// the end of a run (zeros when `NUBA_STORE_DIR` is unset).
    pub fn current_store_stats() -> StoreStats {
        global_ctx().store().map(|s| s.stats()).unwrap_or_default()
    }

    fn to_json_line(self) -> String {
        let cps = self.stats.total_cycles as f64 / self.wall_seconds.max(1e-9);
        format!(
            "    {{\"nuba_jobs\": {}, \"jobs\": {}, \"quarantined\": {}, \
             \"cancelled\": {}, \"timed_out\": {}, \
             \"wall_seconds\": {:.3}, \"cpu_seconds\": {:.3}, \
             \"total_cycles\": {}, \"detailed_cycles\": {}, \"escalated\": {}, \
             \"cycles_per_sec\": {:.0}, \
             \"store_hits\": {}, \"store_misses\": {}, \"store_inserts\": {}, \
             \"store_write_errors\": {}, \"store_quarantined\": {}, \
             \"store_evictions\": {}}}",
            self.nuba_jobs,
            self.stats.jobs,
            self.stats.quarantined,
            self.stats.cancelled,
            self.stats.timed_out,
            self.wall_seconds,
            self.stats.cpu_seconds,
            self.stats.total_cycles,
            self.stats.detailed_cycles,
            self.stats.escalated,
            cps,
            self.store.hits,
            self.store.misses,
            self.store.inserts,
            self.store.write_errors,
            self.store.quarantined,
            self.store.evictions,
        )
    }

    fn parse_json_line(line: &str) -> Option<RunnerRecord> {
        let field = |name: &str| -> Option<f64> {
            let key = format!("\"{name}\": ");
            let at = line.find(&key)? + key.len();
            let rest = &line[at..];
            let end = rest
                .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..end].parse().ok()
        };
        let total_cycles = field("total_cycles")? as u64;
        Some(RunnerRecord {
            nuba_jobs: field("nuba_jobs")? as usize,
            wall_seconds: field("wall_seconds")?,
            stats: MatrixStats {
                jobs: field("jobs")? as usize,
                cpu_seconds: field("cpu_seconds")?,
                total_cycles,
                // Records written before the fidelity ladder simulated
                // every cycle in detail.
                detailed_cycles: field("detailed_cycles")
                    .map(|v| v as u64)
                    .unwrap_or(total_cycles),
                escalated: field("escalated").map(|v| v as usize).unwrap_or(0),
                // Absent in records written before fault quarantine /
                // lifecycle outcomes landed.
                quarantined: field("quarantined").map(|v| v as usize).unwrap_or(0),
                cancelled: field("cancelled").map(|v| v as usize).unwrap_or(0),
                timed_out: field("timed_out").map(|v| v as usize).unwrap_or(0),
            },
            // Absent in records written before store counters surfaced
            // through the registry.
            store: StoreStats {
                hits: field("store_hits").map(|v| v as u64).unwrap_or(0),
                misses: field("store_misses").map(|v| v as u64).unwrap_or(0),
                inserts: field("store_inserts").map(|v| v as u64).unwrap_or(0),
                write_errors: field("store_write_errors").map(|v| v as u64).unwrap_or(0),
                quarantined: field("store_quarantined").map(|v| v as u64).unwrap_or(0),
                evictions: field("store_evictions").map(|v| v as u64).unwrap_or(0),
            },
        })
    }
}

/// Write (or merge into) `path` the throughput record of this run.
///
/// The file keeps one record per distinct `nuba_jobs` value, so running
/// `all_experiments` at `NUBA_JOBS=1` and again at `NUBA_JOBS=4` leaves
/// both records side by side plus the parallel speedup versus the
/// serial record — the perf-trajectory evidence the roadmap asks for.
pub fn write_runner_json(path: &str, record: RunnerRecord) -> std::io::Result<()> {
    let mut records: Vec<RunnerRecord> = std::fs::read_to_string(path)
        .map(|old| {
            old.lines()
                .filter_map(RunnerRecord::parse_json_line)
                .filter(|r| r.nuba_jobs != record.nuba_jobs)
                .collect()
        })
        .unwrap_or_default();
    records.push(record);
    records.sort_by_key(|r| r.nuba_jobs);
    let serial = records
        .iter()
        .find(|r| r.nuba_jobs == 1)
        .map(|r| r.wall_seconds);
    let mut out = String::from("{\n  \"runs\": [\n");
    out.push_str(
        &records
            .iter()
            .map(|r| r.to_json_line())
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    out.push_str("\n  ]");
    if let Some(serial_wall) = serial {
        if let Some(fastest) = records
            .iter()
            .filter(|r| r.nuba_jobs > 1)
            .min_by(|a, b| a.wall_seconds.total_cmp(&b.wall_seconds))
        {
            out.push_str(&format!(
                ",\n  \"parallel_speedup_vs_serial\": {:.2},\n  \"parallel_nuba_jobs\": {}",
                serial_wall / fastest.wall_seconds.max(1e-9),
                fastest.nuba_jobs
            ));
        }
    }
    out.push_str("\n}\n");
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_jobs_returns_submission_order() {
        // Uneven task costs: late indices finish first under any
        // schedule, but results must come back in index order.
        let got = run_jobs(16, 4, |i| {
            std::thread::sleep(std::time::Duration::from_millis((16 - i) as u64));
            i * 10
        });
        assert_eq!(got, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn run_jobs_serial_path_matches() {
        let par = run_jobs(8, 4, |i| i + 1);
        let ser = run_jobs(8, 1, |i| i + 1);
        assert_eq!(par, ser);
    }

    #[test]
    fn run_jobs_handles_empty_and_single() {
        assert_eq!(run_jobs(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_jobs(1, 4, |i| i), vec![0]);
    }

    fn tiny_harness() -> Harness {
        Harness {
            cycles: 400,
            scale: ScaleProfile::fast(),
            seed: 42,
            fidelity: Fidelity::Full,
        }
    }

    #[test]
    fn panicking_job_is_quarantined_not_fatal() {
        let h = tiny_harness();
        let cfg = GpuConfig::paper_baseline(nuba_types::ArchKind::Nuba);
        let jobs = vec![
            Job::new("healthy", BenchmarkId::Kmeans, cfg.clone()),
            Job::new("chaos-panic", BenchmarkId::Kmeans, cfg).with_injected_panic(),
        ];
        let results = run_matrix_with(&h, &jobs, 2);
        assert_eq!(results.len(), 2, "matrix completes despite the panic");
        assert!(!results[0].failed());
        assert_eq!(results[0].outcome, JobOutcome::Ok);
        assert!(results[0].report.cycles > 0);
        assert!(results[1].failed());
        assert_eq!(results[1].outcome, JobOutcome::Failed);
        assert_eq!(results[1].report, SimReport::empty());
        assert!(
            results[1]
                .error
                .as_deref()
                .unwrap()
                .contains("injected chaos panic"),
            "{:?}",
            results[1].error
        );
        assert!(quarantined_jobs().iter().any(|f| f.label == "chaos-panic"));
        assert_eq!(MatrixStats::of(&results).quarantined, 1);
    }

    #[test]
    fn deadlocked_job_is_quarantined_by_deadline() {
        // Deadline must exceed the cold-start latency to the first
        // reply (~500 cycles on the paper baseline), or a healthy
        // config would fire too during its initial translation storm.
        let h = Harness {
            cycles: 1600,
            scale: ScaleProfile::fast(),
            seed: 42,
            fidelity: Fidelity::Full,
        };
        let cfg = GpuConfig::paper_baseline(nuba_types::ArchKind::Nuba);
        let dead = FaultPlan::uniform_link_derate(0.0, cfg.num_sms, cfg.num_llc_slices);
        let job = Job::new("chaos-deadlock", BenchmarkId::Kmeans, cfg)
            .with_faults(dead)
            .with_deadline(800);
        let results = run_matrix_with(&h, &[job], 1);
        assert!(
            results[0].failed(),
            "zero-bandwidth links must trip the watchdog"
        );
        let msg = results[0].error.as_deref().unwrap();
        assert!(msg.contains("no forward progress"), "{msg}");
        assert!(
            quarantined_jobs()
                .iter()
                .any(|f| f.label == "chaos-deadlock"),
            "deadlock recorded in the registry"
        );
    }

    #[test]
    fn wall_deadline_times_out_and_quarantines() {
        let h = tiny_harness();
        let cfg = GpuConfig::paper_baseline(nuba_types::ArchKind::Nuba);
        let job = Job::new("chaos-slow", BenchmarkId::Kmeans, cfg).with_wall_deadline(0.0);
        let ctx = RunnerCtx::new();
        let results = run_matrix_ctx_with(&ctx, &h, &[job], 1);
        assert_eq!(results[0].outcome, JobOutcome::TimedOut);
        assert!(results[0].failed(), "timeouts count as faults");
        assert!(
            results[0]
                .error
                .as_deref()
                .unwrap()
                .contains("wall-clock deadline"),
            "{:?}",
            results[0].error
        );
        assert_eq!(results[0].attempts, 1, "budget spent — never retried");
        assert!(ctx
            .quarantined_jobs()
            .iter()
            .any(|f| f.label == "chaos-slow"));
        let stats = MatrixStats::of(&results);
        assert_eq!((stats.quarantined, stats.timed_out), (1, 1));
    }

    #[test]
    fn cancelled_matrix_drains_without_faults() {
        let h = tiny_harness();
        let cfg = GpuConfig::paper_baseline(nuba_types::ArchKind::Nuba);
        let jobs = vec![
            Job::new("drain-a", BenchmarkId::Kmeans, cfg.clone()),
            Job::new("drain-b", BenchmarkId::Kmeans, cfg),
        ];
        let ctx = RunnerCtx::new();
        ctx.cancel_token().cancel();
        let results = run_matrix_ctx_with(&ctx, &h, &jobs, 2);
        assert_eq!(results.len(), 2, "pending jobs still report");
        for r in &results {
            assert_eq!(r.outcome, JobOutcome::Cancelled);
            assert!(r.cancelled());
            assert!(!r.failed(), "cancellation is not a fault");
            assert!(r.error.is_none());
            assert_eq!(r.attempts, 0);
        }
        assert!(
            ctx.quarantined_jobs().is_empty(),
            "drained jobs never quarantine"
        );
        assert_eq!(ctx.finish(), 0, "graceful drain exits clean");
        let stats = MatrixStats::of(&results);
        assert_eq!((stats.cancelled, stats.quarantined), (2, 0));
    }

    #[test]
    fn cancel_token_trips_once() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.cancel(), "first cancel trips");
        assert!(!t.cancel(), "second cancel is a no-op");
        assert!(t.is_cancelled());
        assert!(t.clone().is_cancelled(), "clones share the flag");
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        // Pure function of (base, attempt): probe the schedule via the
        // same arithmetic backoff_sleep uses, without sleeping.
        let ms = |base: u64, attempt: u32| -> u64 {
            let shift = attempt.saturating_sub(1).min(16);
            base.saturating_mul(1u64 << shift).min(5_000)
        };
        assert_eq!(ms(100, 1), 100);
        assert_eq!(ms(100, 2), 200);
        assert_eq!(ms(100, 3), 400);
        assert_eq!(ms(100, 7), 5_000, "capped at 5s");
        assert_eq!(ms(100, 60), 5_000, "shift saturates");
    }

    #[test]
    fn event_log_has_monotonic_seq_and_outcomes() {
        let h = tiny_harness();
        let cfg = GpuConfig::paper_baseline(nuba_types::ArchKind::Nuba);
        let jobs = vec![
            Job::new("ev-ok", BenchmarkId::Kmeans, cfg.clone()),
            Job::new("ev-panic", BenchmarkId::Kmeans, cfg).with_injected_panic(),
        ];
        let ctx = RunnerCtx::new();
        let results = run_matrix_ctx_with(&ctx, &h, &jobs, 2);
        let log = render_event_log(
            &results,
            Some(StoreStats {
                hits: 1,
                ..StoreStats::default()
            }),
        );
        let lines: Vec<&str> = log.lines().collect();
        // queued + started + outcome per job, plus the store summary.
        assert_eq!(lines.len(), 7, "{log}");
        for (i, l) in lines.iter().enumerate() {
            assert!(l.starts_with(&format!("{{\"seq\":{i},")), "{l}");
            assert!(l.ends_with('}'), "{l}");
        }
        assert!(lines[0].contains("\"event\":\"queued\"") && lines[0].contains("\"ev-ok\""));
        assert!(lines[1].contains("\"event\":\"started\"") && lines[1].contains("\"attempt\":1"));
        assert!(lines[2].contains("\"event\":\"ok\"") && lines[2].contains("\"attempts\":1"));
        assert!(
            lines[5].contains("\"event\":\"failed\"")
                && lines[5].contains("\"quarantined\":true")
                && lines[5].contains("injected chaos panic"),
            "{}",
            lines[5]
        );
        assert!(lines[6].contains("\"event\":\"store\"") && lines[6].contains("\"hits\":1"));
        // The deterministic content is schedule-independent: rendering
        // the serial run of the healthy job matches itself re-rendered.
        ctx.reset_quarantine();
        let again = render_event_log(&results, None);
        assert!(again.lines().count() == 6, "no store event without stats");
    }

    #[test]
    fn matrix_trace_nests_attempts_under_jobs() {
        let h = tiny_harness();
        let cfg = GpuConfig::paper_baseline(nuba_types::ArchKind::Nuba);
        let ctx = RunnerCtx::new();
        let results = run_matrix_ctx_with(
            &ctx,
            &h,
            &[Job::new("trace-job", BenchmarkId::Kmeans, cfg)],
            1,
        );
        let trace = render_matrix_trace(&results);
        assert!(trace.contains("\"name\":\"trace-job\""), "{trace}");
        assert!(trace.contains("\"cat\":\"job\""));
        assert!(trace.contains("\"name\":\"attempt 1\""));
        assert!(trace.contains("\"cat\":\"attempt\""));
        assert!(trace.ends_with("],\"displayTimeUnit\":\"ms\"}\n"));
        assert_eq!(
            render_matrix_trace(&[]),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}\n"
        );
    }

    #[test]
    fn matrix_registry_counts_outcomes_and_latency() {
        let h = tiny_harness();
        let cfg = GpuConfig::paper_baseline(nuba_types::ArchKind::Nuba);
        let ctx = RunnerCtx::new();
        let results = run_matrix_ctx_with(
            &ctx,
            &h,
            &[Job::new("reg-job", BenchmarkId::Kmeans, cfg)],
            1,
        );
        let reg = build_matrix_registry(&results, None);
        assert_eq!(reg.counter("nuba_jobs_total"), 1);
        assert_eq!(reg.counter("nuba_jobs_ok_total"), 1);
        assert_eq!(reg.counter("nuba_cycles_total"), results[0].report.cycles);
        // The run delivered read replies, so at least one tier
        // histogram must be populated and folded into the dump.
        let replies: u64 = results[0]
            .report
            .latency
            .tiers
            .iter()
            .map(|h| h.count())
            .sum();
        assert!(replies > 0, "tier histograms populated");
        let text = reg.render_prometheus();
        assert!(text.contains("nuba_read_latency_cycles_"), "{text}");
        assert!(
            !text.contains("wall"),
            "no wall-clock values in the deterministic dump"
        );
        // With store counters, they surface as counters.
        let reg = build_matrix_registry(
            &results,
            Some(StoreStats {
                hits: 2,
                evictions: 1,
                ..StoreStats::default()
            }),
        );
        assert_eq!(reg.counter("nuba_store_hits_total"), 2);
        assert_eq!(reg.counter("nuba_store_evictions_total"), 1);
    }

    #[test]
    fn runner_record_roundtrips_through_json() {
        let rec = RunnerRecord {
            nuba_jobs: 4,
            wall_seconds: 12.345,
            stats: MatrixStats {
                jobs: 7,
                cpu_seconds: 40.5,
                total_cycles: 420_000,
                detailed_cycles: 60_000,
                escalated: 1,
                quarantined: 2,
                cancelled: 1,
                timed_out: 1,
            },
            store: StoreStats {
                hits: 5,
                misses: 2,
                inserts: 2,
                write_errors: 0,
                quarantined: 1,
                evictions: 3,
            },
        };
        let line = rec.to_json_line();
        let back = RunnerRecord::parse_json_line(&line).expect("parses");
        assert_eq!(back.nuba_jobs, 4);
        assert_eq!(back.stats.jobs, 7);
        assert_eq!(back.stats.total_cycles, 420_000);
        assert_eq!(back.stats.detailed_cycles, 60_000);
        assert_eq!(back.stats.escalated, 1);
        assert_eq!(back.stats.cancelled, 1);
        assert_eq!(back.stats.timed_out, 1);
        assert_eq!(back.store.hits, 5);
        assert_eq!(back.store.evictions, 3);
        assert!((back.wall_seconds - 12.345).abs() < 1e-9);

        // Records written before lifecycle outcomes parse with zeros;
        // pre-ladder records count every cycle as detailed.
        let legacy = "    {\"nuba_jobs\": 2, \"jobs\": 3, \"quarantined\": 0, \
                      \"wall_seconds\": 1.000, \"cpu_seconds\": 2.000, \
                      \"total_cycles\": 100, \"cycles_per_sec\": 100}";
        let old = RunnerRecord::parse_json_line(legacy).expect("legacy parses");
        assert_eq!((old.stats.cancelled, old.stats.timed_out), (0, 0));
        assert_eq!(old.stats.detailed_cycles, 100);
        assert_eq!(old.stats.escalated, 0);
        assert_eq!(old.store, StoreStats::default());
    }

    #[test]
    fn runner_json_merges_by_job_count() {
        let dir = std::env::temp_dir().join(format!("nuba_runner_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_runner.json");
        let path = path.to_str().unwrap();
        let mk = |jobs: usize, wall: f64| RunnerRecord {
            nuba_jobs: jobs,
            wall_seconds: wall,
            stats: MatrixStats {
                jobs: 3,
                cpu_seconds: wall,
                total_cycles: 1000,
                detailed_cycles: 1000,
                escalated: 0,
                quarantined: 0,
                cancelled: 0,
                timed_out: 0,
            },
            store: StoreStats::default(),
        };
        write_runner_json(path, mk(1, 10.0)).unwrap();
        write_runner_json(path, mk(4, 4.0)).unwrap();
        // Re-running at the same width replaces, not duplicates.
        write_runner_json(path, mk(4, 3.0)).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert_eq!(text.matches("\"nuba_jobs\": 4").count(), 1, "{text}");
        assert!(
            text.contains("\"parallel_speedup_vs_serial\": 3.33"),
            "{text}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
