//! Deterministic parallel execution of experiment matrices.
//!
//! Every figure binary replays an independent list of
//! (benchmark × configuration) simulations. This module expands such a
//! list into [`Job`]s and executes them on a [`std::thread::scope`]
//! work-stealing pool sized by the `NUBA_JOBS` environment knob
//! (default: available parallelism). Results come back in submission
//! order, so callers print byte-identical output to a serial loop.
//!
//! Determinism: each job builds its own [`Workload`] and
//! [`GpuSimulator`] from the job's seed — no state is shared between
//! jobs, so the schedule cannot leak into the simulation. The only
//! process-global state the simulator touches is the invariant counter
//! registry (`nuba_types::invariant`), which uses relaxed atomics and
//! only ever *counts* under the pool.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use nuba_core::{GpuSimulator, SimReport};
use nuba_types::GpuConfig;
use nuba_workloads::{BenchmarkId, ScaleProfile, Workload};

use crate::Harness;

/// One simulation in an experiment matrix.
#[derive(Debug, Clone)]
pub struct Job {
    /// Display label (carried into the [`JobResult`]).
    pub label: String,
    /// The workload.
    pub bench: BenchmarkId,
    /// The architecture configuration.
    pub cfg: GpuConfig,
    /// Scale override (page-size sensitivity, variance runs); `None`
    /// uses the harness scale.
    pub scale: Option<ScaleProfile>,
    /// Seed override (variance runs); `None` uses the harness seed.
    pub seed: Option<u64>,
}

impl Job {
    /// A job running `bench` on `cfg` with the harness defaults.
    pub fn new(label: impl Into<String>, bench: BenchmarkId, cfg: GpuConfig) -> Job {
        Job {
            label: label.into(),
            bench,
            cfg,
            scale: None,
            seed: None,
        }
    }

    /// Override the workload scale (mirrors [`Harness::run_scaled`]).
    #[must_use]
    pub fn with_scale(mut self, scale: ScaleProfile) -> Job {
        self.scale = Some(scale);
        self
    }

    /// Override the layout/stream seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Job {
        self.seed = Some(seed);
        self
    }
}

/// A completed job with its throughput record.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job's label.
    pub label: String,
    /// The simulation report.
    pub report: SimReport,
    /// Wall-clock seconds this job took (build + warm + timed window).
    pub wall_seconds: f64,
    /// Simulated cycles per wall-clock second.
    pub cycles_per_sec: f64,
}

/// Worker count: `NUBA_JOBS` if set and positive, else the machine's
/// available parallelism.
pub fn num_jobs() -> usize {
    std::env::var("NUBA_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Run `n` independent tasks on up to `threads` scoped workers; task
/// `i` computes `f(i)`. Results return in index order. Workers steal
/// the next unclaimed index from a shared counter, so long tasks do not
/// convoy short ones. With `threads <= 1` the tasks run inline on the
/// caller's thread in order.
pub fn run_jobs<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker completed every claimed job")
        })
        .collect()
}

/// Execute one job exactly as [`Harness::run`] / [`Harness::run_scaled`]
/// would, timing it.
fn run_job(h: &Harness, job: &Job) -> JobResult {
    let start = Instant::now();
    let scale = job.scale.unwrap_or(h.scale);
    let seed = job.seed.unwrap_or(h.seed);
    let mut cfg = job.cfg.clone();
    cfg.seed = seed;
    if cfg.page_bytes != scale.page_bytes {
        cfg.page_bytes = scale.page_bytes;
    }
    let wl = Workload::build(job.bench, scale, cfg.num_sms, seed);
    let mut gpu = GpuSimulator::new(cfg, &wl);
    let report = gpu.warm_and_run(&wl, h.cycles);
    let wall_seconds = start.elapsed().as_secs_f64();
    let cycles_per_sec = report.cycles as f64 / wall_seconds.max(1e-9);
    JobResult {
        label: job.label.clone(),
        report,
        wall_seconds,
        cycles_per_sec,
    }
}

/// Run an experiment matrix on the `NUBA_JOBS` pool. Results are
/// returned in submission order regardless of the execution schedule.
pub fn run_matrix(h: &Harness, jobs: &[Job]) -> Vec<JobResult> {
    run_matrix_with(h, jobs, num_jobs())
}

/// [`run_matrix`] with an explicit worker count (determinism tests).
pub fn run_matrix_with(h: &Harness, jobs: &[Job], threads: usize) -> Vec<JobResult> {
    run_jobs(jobs.len(), threads, |i| run_job(h, &jobs[i]))
}

/// Aggregate throughput of one `run_matrix` call.
#[derive(Debug, Clone, Copy, Default)]
pub struct MatrixStats {
    /// Jobs executed.
    pub jobs: usize,
    /// Sum of per-job wall-clock seconds (CPU-seconds of simulation).
    pub cpu_seconds: f64,
    /// Total simulated cycles across the matrix.
    pub total_cycles: u64,
}

impl MatrixStats {
    /// Summarize a result set.
    pub fn of(results: &[JobResult]) -> MatrixStats {
        MatrixStats {
            jobs: results.len(),
            cpu_seconds: results.iter().map(|r| r.wall_seconds).sum(),
            total_cycles: results.iter().map(|r| r.report.cycles).sum(),
        }
    }

    /// Fold another matrix into this aggregate.
    pub fn absorb(&mut self, other: MatrixStats) {
        self.jobs += other.jobs;
        self.cpu_seconds += other.cpu_seconds;
        self.total_cycles += other.total_cycles;
    }
}

/// One run's record in `BENCH_runner.json`.
#[derive(Debug, Clone, Copy)]
pub struct RunnerRecord {
    /// Worker count the run used.
    pub nuba_jobs: usize,
    /// End-to-end wall-clock seconds of the whole report.
    pub wall_seconds: f64,
    /// Matrix aggregate.
    pub stats: MatrixStats,
}

impl RunnerRecord {
    fn to_json_line(self) -> String {
        let cps = self.stats.total_cycles as f64 / self.wall_seconds.max(1e-9);
        format!(
            "    {{\"nuba_jobs\": {}, \"jobs\": {}, \"wall_seconds\": {:.3}, \
             \"cpu_seconds\": {:.3}, \"total_cycles\": {}, \"cycles_per_sec\": {:.0}}}",
            self.nuba_jobs,
            self.stats.jobs,
            self.wall_seconds,
            self.stats.cpu_seconds,
            self.stats.total_cycles,
            cps
        )
    }

    fn parse_json_line(line: &str) -> Option<RunnerRecord> {
        let field = |name: &str| -> Option<f64> {
            let key = format!("\"{name}\": ");
            let at = line.find(&key)? + key.len();
            let rest = &line[at..];
            let end = rest
                .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..end].parse().ok()
        };
        Some(RunnerRecord {
            nuba_jobs: field("nuba_jobs")? as usize,
            wall_seconds: field("wall_seconds")?,
            stats: MatrixStats {
                jobs: field("jobs")? as usize,
                cpu_seconds: field("cpu_seconds")?,
                total_cycles: field("total_cycles")? as u64,
            },
        })
    }
}

/// Write (or merge into) `path` the throughput record of this run.
///
/// The file keeps one record per distinct `nuba_jobs` value, so running
/// `all_experiments` at `NUBA_JOBS=1` and again at `NUBA_JOBS=4` leaves
/// both records side by side plus the parallel speedup versus the
/// serial record — the perf-trajectory evidence the roadmap asks for.
pub fn write_runner_json(path: &str, record: RunnerRecord) -> std::io::Result<()> {
    let mut records: Vec<RunnerRecord> = std::fs::read_to_string(path)
        .map(|old| {
            old.lines()
                .filter_map(RunnerRecord::parse_json_line)
                .filter(|r| r.nuba_jobs != record.nuba_jobs)
                .collect()
        })
        .unwrap_or_default();
    records.push(record);
    records.sort_by_key(|r| r.nuba_jobs);
    let serial = records
        .iter()
        .find(|r| r.nuba_jobs == 1)
        .map(|r| r.wall_seconds);
    let mut out = String::from("{\n  \"runs\": [\n");
    out.push_str(
        &records
            .iter()
            .map(|r| r.to_json_line())
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    out.push_str("\n  ]");
    if let Some(serial_wall) = serial {
        if let Some(fastest) = records
            .iter()
            .filter(|r| r.nuba_jobs > 1)
            .min_by(|a, b| a.wall_seconds.total_cmp(&b.wall_seconds))
        {
            out.push_str(&format!(
                ",\n  \"parallel_speedup_vs_serial\": {:.2},\n  \"parallel_nuba_jobs\": {}",
                serial_wall / fastest.wall_seconds.max(1e-9),
                fastest.nuba_jobs
            ));
        }
    }
    out.push_str("\n}\n");
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_jobs_returns_submission_order() {
        // Uneven task costs: late indices finish first under any
        // schedule, but results must come back in index order.
        let got = run_jobs(16, 4, |i| {
            std::thread::sleep(std::time::Duration::from_millis((16 - i) as u64));
            i * 10
        });
        assert_eq!(got, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn run_jobs_serial_path_matches() {
        let par = run_jobs(8, 4, |i| i + 1);
        let ser = run_jobs(8, 1, |i| i + 1);
        assert_eq!(par, ser);
    }

    #[test]
    fn run_jobs_handles_empty_and_single() {
        assert_eq!(run_jobs(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_jobs(1, 4, |i| i), vec![0]);
    }

    #[test]
    fn runner_record_roundtrips_through_json() {
        let rec = RunnerRecord {
            nuba_jobs: 4,
            wall_seconds: 12.345,
            stats: MatrixStats {
                jobs: 7,
                cpu_seconds: 40.5,
                total_cycles: 420_000,
            },
        };
        let line = rec.to_json_line();
        let back = RunnerRecord::parse_json_line(&line).expect("parses");
        assert_eq!(back.nuba_jobs, 4);
        assert_eq!(back.stats.jobs, 7);
        assert_eq!(back.stats.total_cycles, 420_000);
        assert!((back.wall_seconds - 12.345).abs() < 1e-9);
    }

    #[test]
    fn runner_json_merges_by_job_count() {
        let dir = std::env::temp_dir().join(format!("nuba_runner_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_runner.json");
        let path = path.to_str().unwrap();
        let mk = |jobs: usize, wall: f64| RunnerRecord {
            nuba_jobs: jobs,
            wall_seconds: wall,
            stats: MatrixStats {
                jobs: 3,
                cpu_seconds: wall,
                total_cycles: 1000,
            },
        };
        write_runner_json(path, mk(1, 10.0)).unwrap();
        write_runner_json(path, mk(4, 4.0)).unwrap();
        // Re-running at the same width replaces, not duplicates.
        write_runner_json(path, mk(4, 3.0)).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert_eq!(text.matches("\"nuba_jobs\": 4").count(), 1, "{text}");
        assert!(
            text.contains("\"parallel_speedup_vs_serial\": 3.33"),
            "{text}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
