//! Tier-0 analytical screen: the static kernel profiler's predictions
//! for a benchmark, evaluated through the MDR §5.1 bandwidth equations
//! — the first rung of the ROADMAP-2 fidelity ladder.
//!
//! The screen simulates nothing. It binds the compiler's
//! [`KernelStaticProfile`](nuba_compiler::KernelStaticProfile) to the
//! benchmark's scaled region layout (`nuba_workloads::static_profile`),
//! feeds the resulting fractions to
//! [`nuba_core::mdr_static_screen`], and predicts, per benchmark:
//! total page footprint, sharing class, write-shared race parameters,
//! the MDR replicate/don't verdict, and the coarse resource bottleneck.
//!
//! Two consumers:
//!
//! - the [`runner`](crate::runner) prints one screen line per distinct
//!   benchmark before executing a matrix when `NUBA_SCREEN=1` — inert
//!   (and byte-identical output) otherwise;
//! - `fig_correlation` runs screen-vs-simulator over all 29 benchmarks
//!   and reports footprint error, sharing-class agreement, and
//!   bottleneck agreement, Accel-Sim style.

use nuba_core::mdr::paper_slice_bandwidths;
use nuba_core::{mdr_static_screen, MdrProfile, ScreenVerdict};
use nuba_types::{ErrorBound, GpuConfig};
use nuba_workloads::{static_workload_profile, BenchmarkId, ScaleProfile, StaticWorkloadProfile};

use crate::runner::Job;
use crate::{Harness, HarnessOptions};

/// One bandwidth tier's predicted operating point on its saturation
/// curve: static demand against the link's supply. The curve is the
/// standard single-server saturating form — delivered throughput
/// `demand / (1 + demand/supply)` approaches `supply` asymptotically —
/// so "how far up the curve" a link sits is a dimensionless utilization
/// that stays meaningful past 1.0 (over-subscription depth).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSaturation {
    /// Stable tier name (`local_link` / `noc` / `dram`).
    pub name: &'static str,
    /// Demanded bytes per cycle on this tier.
    pub demand_bpc: f64,
    /// The tier's supply in bytes per cycle.
    pub supply_bpc: f64,
}

impl LinkSaturation {
    /// Demand over supply (1.0 = the knee of the curve).
    pub fn utilization(&self) -> f64 {
        self.demand_bpc / self.supply_bpc.max(1e-9)
    }

    /// Delivered bytes per cycle on the saturating curve.
    pub fn delivered_bpc(&self) -> f64 {
        self.demand_bpc / (1.0 + self.utilization())
    }

    /// Whether the tier is past the knee (demand ≥ supply).
    pub fn saturated(&self) -> bool {
        self.utilization() >= 1.0
    }
}

/// Everything the tier-0 screen predicts for one benchmark.
#[derive(Debug, Clone)]
pub struct ScreenPrediction {
    /// The benchmark.
    pub bench: BenchmarkId,
    /// The bound static profile (regions, races, kernel modes).
    pub profile: StaticWorkloadProfile,
    /// The §5.1 verdict on the static fractions.
    pub verdict: ScreenVerdict,
    /// Predicted memory-system utilization: demanded bytes per slice
    /// cycle over the winning §5.1 supply estimate. Below 1.0 the
    /// machine keeps up and the kernel is predicted compute-bound.
    pub utilization: f64,
    /// Per-tier saturation operating points (local link, NoC, DRAM),
    /// in fixed order.
    pub links: [LinkSaturation; 3],
    /// Roofline band on machine IPC (warp ops per cycle): the binding
    /// roof — latency roof vs bandwidth roof — evaluated at both §5.1
    /// supply corners (no replication / full replication); mean is the
    /// midpoint, half-width half the spread. An upper-bound model: the
    /// simulator should land at or below the band, never far above it.
    pub roofline: ErrorBound,
}

impl ScreenPrediction {
    /// The predicted dominant bottleneck: `compute` when the demand
    /// model says the memory system keeps up, else the §5.1 verdict's
    /// resource (`LLC` / `DRAM` / `NoC`).
    pub fn predicted_bottleneck(&self) -> &'static str {
        if self.utilization < 1.0 {
            "compute"
        } else {
            self.verdict.bottleneck.label()
        }
    }

    /// One deterministic, alignment-stable report line.
    pub fn line(&self) -> String {
        let races: Vec<&str> = self
            .profile
            .racy_params
            .iter()
            .map(|s| s.as_str())
            .collect();
        format!(
            "screen: {:<8} pages={:<6} class={:<4} replicate={:<3} bottleneck={:<7} races=[{}]",
            self.bench.to_string(),
            self.profile.total_pages(),
            self.profile.sharing_class().to_string(),
            if self.verdict.replicate { "yes" } else { "no" },
            self.predicted_bottleneck(),
            races.join(",")
        )
    }

    /// Whether the screen alone is decisive enough to skip simulation
    /// on: exactly one story must be consistent with the model.
    /// Informative means either the memory system clearly keeps up
    /// (utilization under 0.75 — compute-bound, no contested resource)
    /// or one tier is clearly the choke point (the most-utilized tier
    /// at least 25% above the runner-up *and* past the knee). A
    /// non-informative screen makes the ladder spend more measurement
    /// intervals at tier 1.
    pub fn informative(&self) -> bool {
        if self.utilization < 0.75 {
            return true;
        }
        let mut utils: Vec<f64> = self.links.iter().map(LinkSaturation::utilization).collect();
        utils.sort_by(|a, b| b.partial_cmp(a).expect("finite utilizations"));
        utils[0] >= 1.0 && utils[0] >= 1.25 * utils[1]
    }

    /// Cast the screen's predictions into the [`nuba_core::SimReport`] shape so a
    /// tier-0 job can flow through the same figure arithmetic as a
    /// simulated one. Only what the screen actually models is
    /// populated — throughput (roofline midpoint), reply rate, and
    /// per-tier delivered bytes off the saturation curves; counters
    /// the screen has no model for stay zero. Rates are floored at one
    /// count so downstream ratio math (harmonic means of reply-rate
    /// gains) never divides by an exact zero.
    pub fn synthetic_report(&self, cfg: &GpuConfig, cycles: u64) -> nuba_core::SimReport {
        let mut r = nuba_core::SimReport::empty();
        let c = cycles as f64;
        let sms = cfg.num_sms as f64;
        let slices = cfg.num_llc_slices.max(1) as f64;
        let line = nuba_types::LINE_BYTES as f64;
        r.cycles = cycles;
        r.warp_ops = (self.roofline.mean * c).max(1.0) as u64;
        let local_bpc = self.links[0].delivered_bpc() * sms;
        let noc_bpc = self.links[1].delivered_bpc() * slices;
        let dram_bpc = self.links[2].delivered_bpc() * slices;
        r.local_link_bytes = (local_bpc * c) as u64;
        r.noc_bytes = (noc_bpc * c) as u64;
        r.dram_accesses = (dram_bpc * c / line) as u64;
        let wf = self.bench.spec().write_fraction.clamp(0.0, 1.0);
        r.read_replies = (local_bpc * (1.0 - wf) * c / line).max(1.0) as u64;
        r
    }

    /// Whether the screen's bottleneck agrees with the simulator's
    /// dominant [`BottleneckBreakdown`](nuba_core::BottleneckBreakdown)
    /// category. The mapping is many-to-one because the screen's model
    /// is coarser than issue-slot accounting: a memory-bound prediction
    /// of any flavour agrees with `L1-bound` (MSHR exhaustion *is*
    /// memory-system backpressure, observed one level up), and the NUBA
    /// local links sit on both the NoC-replacement and DRAM paths.
    pub fn bottleneck_agrees(&self, dominant: &str) -> bool {
        use nuba_core::ScreenBottleneck;
        if self.utilization < 1.0 {
            return dominant == "compute";
        }
        if dominant == "L1-bound" {
            return true;
        }
        match self.verdict.bottleneck {
            ScreenBottleneck::Noc => matches!(dominant, "NoC-bound" | "local-link-bound"),
            ScreenBottleneck::Dram => matches!(dominant, "DRAM-bound" | "local-link-bound"),
            ScreenBottleneck::Llc => dominant == "LLC-queue-bound",
        }
    }
}

/// Screen one benchmark under `cfg`'s machine shape and `scale`.
pub fn screen_benchmark(
    bench: BenchmarkId,
    scale: &ScaleProfile,
    cfg: &GpuConfig,
) -> ScreenPrediction {
    let profile = static_workload_profile(bench, scale, cfg.num_sms);
    let m = profile.mdr_inputs();
    let verdict = mdr_static_screen(
        paper_slice_bandwidths(cfg.noc_port_bytes_per_cycle()),
        MdrProfile {
            frac_local: m.frac_local,
            hit_no_rep: m.hit_no_rep,
            hit_full_rep: m.hit_full_rep,
        },
    );
    // Demand model: a warp cycles through one memory op, a
    // `compute_gap` compute block, and — for load misses — a
    // round-trip latency it blocks on (stores are fire-and-forget, so
    // they add traffic without occupancy). `warps_per_sm` such warps
    // overlap against the SM's single issue port; the surviving
    // line-sized misses plus store traffic spread over the LLC slices.
    // Supply is the winning §5.1 estimate.
    const LOAD_LATENCY: f64 = 400.0;
    let spec = bench.spec();
    let miss_rate = (1.0 - spec.l1_reuse).clamp(0.0, 1.0);
    let wf = spec.write_fraction.clamp(0.0, 1.0);
    let cycles_per_op = 1.0 + spec.compute_gap as f64 + LOAD_LATENCY * miss_rate * (1.0 - wf);
    let sm_op_rate = (cfg.warps_per_sm as f64 / cycles_per_op).min(1.0);
    let bytes_per_op = nuba_types::LINE_BYTES as f64 * ((1.0 - wf) * miss_rate + wf);
    let slices = cfg.num_llc_slices.max(1) as f64;
    let demand_per_slice = sm_op_rate * bytes_per_op * cfg.num_sms as f64 / slices;
    let supply = verdict.estimate.bw_no_rep.max(verdict.estimate.bw_full_rep);
    let utilization = demand_per_slice / supply.max(1e-9);

    // Per-tier saturation operating points, all per slice so they are
    // commensurable with the §5.1 supplies: the local links see every
    // L1 miss, the NoC only the remote fraction, DRAM only what misses
    // the LLC (under the better of the two replication hit rates).
    let bw = paper_slice_bandwidths(cfg.noc_port_bytes_per_cycle());
    let per_sm_demand = sm_op_rate * bytes_per_op;
    let hit_est = m.hit_no_rep.max(m.hit_full_rep);
    let links = [
        LinkSaturation {
            name: "local_link",
            demand_bpc: per_sm_demand,
            supply_bpc: cfg.local_link_bytes_per_cycle as f64,
        },
        LinkSaturation {
            name: "noc",
            demand_bpc: demand_per_slice * (1.0 - m.frac_local),
            supply_bpc: bw.bw_noc,
        },
        LinkSaturation {
            name: "dram",
            demand_bpc: demand_per_slice * (1.0 - hit_est),
            supply_bpc: bw.bw_mem,
        },
    ];

    // Roofline band on machine IPC: the binding roof is the lower of
    // the latency roof (how fast the warps can cycle) and the
    // bandwidth roof (how many ops the memory system can feed), the
    // latter evaluated at both §5.1 supply corners. The band spans the
    // two corners; a replication-insensitive kernel collapses it.
    let roof_latency = cfg.num_sms as f64 * sm_op_rate;
    let roof_bw = |supply_per_slice: f64| supply_per_slice * slices / bytes_per_op.max(1e-9);
    let corner_a = roof_latency.min(roof_bw(verdict.estimate.bw_no_rep));
    let corner_b = roof_latency.min(roof_bw(verdict.estimate.bw_full_rep));
    let (lo, hi) = (corner_a.min(corner_b), corner_a.max(corner_b));
    let roofline = ErrorBound::new((lo + hi) / 2.0, (hi - lo) / 2.0);

    ScreenPrediction {
        bench,
        profile,
        verdict,
        utilization,
        links,
        roofline,
    }
}

/// Screen a job matrix: one prediction per *distinct* benchmark, in
/// first-submission order, each under the first job's configuration and
/// scale (matrices vary the architecture, not the machine shape).
pub fn screen_matrix(h: &Harness, jobs: &[Job]) -> Vec<ScreenPrediction> {
    let mut seen = Vec::new();
    let mut out = Vec::new();
    for job in jobs {
        if seen.contains(&job.bench) {
            continue;
        }
        seen.push(job.bench);
        let scale = job.scale.unwrap_or(h.scale);
        out.push(screen_benchmark(job.bench, &scale, &job.cfg));
    }
    out
}

/// The runner's tier-0 stage: print the screen for a matrix when
/// `NUBA_SCREEN=1`. A no-op — not a byte of output — otherwise.
pub fn print_screen_if_enabled(h: &Harness, jobs: &[Job]) {
    if !HarnessOptions::get().screen {
        return;
    }
    for p in screen_matrix(h, jobs) {
        println!("{}", p.line());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuba_types::{ArchKind, Fidelity};

    fn nuba_cfg() -> GpuConfig {
        GpuConfig::paper_baseline(ArchKind::Nuba)
    }

    #[test]
    fn screen_is_deterministic() {
        let a = screen_benchmark(BenchmarkId::Sgemm, &ScaleProfile::fast(), &nuba_cfg());
        let b = screen_benchmark(BenchmarkId::Sgemm, &ScaleProfile::fast(), &nuba_cfg());
        assert_eq!(a.line(), b.line());
        assert_eq!(a.verdict, b.verdict);
    }

    #[test]
    fn screen_matrix_dedupes_benchmarks() {
        let h = Harness {
            cycles: 100,
            scale: ScaleProfile::fast(),
            seed: 42,
            fidelity: Fidelity::Full,
        };
        let jobs = vec![
            Job::new("a", BenchmarkId::Sgemm, nuba_cfg()),
            Job::new("b", BenchmarkId::Sgemm, nuba_cfg()),
            Job::new("c", BenchmarkId::Lbm, nuba_cfg()),
        ];
        let preds = screen_matrix(&h, &jobs);
        assert_eq!(preds.len(), 2);
        assert_eq!(preds[0].bench, BenchmarkId::Sgemm);
        assert_eq!(preds[1].bench, BenchmarkId::Lbm);
    }

    #[test]
    fn screen_classes_match_table2() {
        // The screen's sharing-class prediction reproduces the layout
        // arithmetic exactly, so it must agree with the spec for every
        // benchmark — the fig_correlation ≥80% gate with headroom.
        for &b in BenchmarkId::ALL {
            let p = screen_benchmark(b, &ScaleProfile::default(), &nuba_cfg());
            assert_eq!(p.profile.sharing_class(), b.spec().sharing, "{b}");
        }
    }

    #[test]
    fn saturation_and_roofline_are_sane() {
        for &b in BenchmarkId::ALL {
            let p = screen_benchmark(b, &ScaleProfile::default(), &nuba_cfg());
            for l in &p.links {
                assert!(l.demand_bpc >= 0.0, "{b}: negative demand on {}", l.name);
                assert!(l.supply_bpc > 0.0, "{b}: zero supply on {}", l.name);
                // The saturating curve never delivers more than supply
                // or more than demand.
                assert!(l.delivered_bpc() <= l.supply_bpc + 1e-9);
                assert!(l.delivered_bpc() <= l.demand_bpc + 1e-9);
            }
            // The roofline is an upper-bound band: positive, and never
            // above the machine's issue roof.
            assert!(p.roofline.hi() > 0.0, "{b}: empty roofline");
            assert!(p.roofline.hi() <= nuba_cfg().num_sms as f64 + 1e-9);
            // informative() must be total (no NaN panics) on all 29.
            let _ = p.informative();
        }
    }

    #[test]
    fn underutilized_screen_is_informative() {
        // A compute-heavy benchmark with high L1 reuse keeps the memory
        // system idle; the screen should be decisively compute-bound.
        let p = screen_benchmark(BenchmarkId::Sgemm, &ScaleProfile::default(), &nuba_cfg());
        if p.utilization < 0.75 {
            assert!(p.informative());
        }
    }

    #[test]
    fn bottleneck_mapping_is_total() {
        let p = screen_benchmark(BenchmarkId::Sgemm, &ScaleProfile::fast(), &nuba_cfg());
        // Every dominant label maps to agree-or-disagree, never a panic.
        for label in [
            "compute",
            "L1-bound",
            "local-link-bound",
            "NoC-bound",
            "LLC-queue-bound",
            "DRAM-bound",
        ] {
            let _ = p.bottleneck_agrees(label);
        }
    }
}
