//! Persistent content-addressed checkpoint store with crash-safe
//! writes, corruption quarantine, LRU size capping, and deterministic
//! disk-fault injection.
//!
//! The store turns the runner's in-process warm-state cache into
//! something that survives the process: each entry is one file holding
//! a serialized [`Checkpoint`] wrapped in a store envelope (magic,
//! format version, key echo, payload, trailing
//! [`fnv1a`] checksum over everything before it). Entries are keyed by
//! [`StoreKey`] — `(kind, benchmark, config state hash, depth)` — so
//! two processes that warm the same (benchmark, configuration) pair to
//! the same depth share one entry, and a salvaged mid-run checkpoint
//! can never be mistaken for a warm-up image.
//!
//! Durability contract (DESIGN.md §15):
//!
//! - **Atomicity** — entries are written to a same-directory temp file
//!   and published with [`std::fs::rename`]; a reader can never observe
//!   a half-written entry, and a crash mid-write leaves only a
//!   `*.tmp` orphan that [`CheckpointStore::open`] sweeps into the
//!   quarantine sidecar on the next start.
//! - **End-to-end verification** — every read re-checks the envelope
//!   magic, version, key echo, and checksum, then decodes via
//!   [`Checkpoint::from_bytes`] (which has its own trailing checksum).
//!   Any failure quarantines the entry — it is *never* `panic!`ed on
//!   and *never* silently reused — and reports a cache miss so the
//!   caller re-derives the state from scratch, byte-identically.
//! - **Quarantine** — damaged entries move (never delete in place) to
//!   the `quarantine/` sidecar directory for post-mortem inspection by
//!   [`nuba_fsck`](../../nuba_fsck/index.html).
//! - **Bounded size** — after each insert the store evicts
//!   least-recently-used entries (mtime order, bumped on hit) until
//!   total size fits `NUBA_STORE_MAX_BYTES`.
//!
//! Fault injection mirrors the PR 3 `FaultPlan` design: a
//! [`StoreFaultPlan`] is plain data — faults scheduled against the
//! store's monotonic write/read operation counters — compiled from the
//! `NUBA_STORE_FAULT` spec and drained deterministically as operations
//! happen. Faults degrade the store, never the simulation: a torn or
//! unreadable entry is detected and quarantined on read, an injected
//! `ENOSPC` skips persistence with a warning, and matrix results stay
//! byte-identical throughout.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::SystemTime;

use nuba_core::Checkpoint;
use nuba_types::state::{fnv1a, StateError, StateReader, StateWriter, STATE_FORMAT_VERSION};
use nuba_workloads::BenchmarkId;

use crate::HarnessOptions;

/// Magic number prefixing store entry envelopes (`"NUST"`).
const STORE_MAGIC: u32 = 0x4E55_5354;

/// File extension of committed entries.
const ENTRY_EXT: &str = "ckpt";

/// File extension of in-flight temp files (orphans are quarantined on
/// open).
const TMP_EXT: &str = "tmp";

/// What a stored checkpoint snapshots, part of the key so the two
/// namespaces can never collide: a warm-up image at depth
/// `accesses-per-warp` and a mid-run salvage at depth `cycle` would
/// otherwise be indistinguishable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreKind {
    /// Post-warm-up image (the runner's warm-state cache); `depth` is
    /// the per-warp warm access count.
    Warm,
    /// Mid-run machine state (deadline/cancellation salvage, `nuba_sim
    /// --checkpoint`); `depth` is the simulated cycle.
    Run,
}

impl StoreKind {
    fn tag(self) -> &'static str {
        match self {
            StoreKind::Warm => "warm",
            StoreKind::Run => "run",
        }
    }

    fn from_tag(tag: &str) -> Option<StoreKind> {
        match tag {
            "warm" => Some(StoreKind::Warm),
            "run" => Some(StoreKind::Run),
            _ => None,
        }
    }
}

/// Content address of one stored checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StoreKey {
    /// Warm-up image or mid-run salvage.
    pub kind: StoreKind,
    /// The benchmark the checkpoint was taken on.
    pub bench: BenchmarkId,
    /// [`GpuConfig::state_hash`](nuba_types::GpuConfig::state_hash) of
    /// the configuration (covers seed, page size, telemetry knobs —
    /// everything that shapes the machine state).
    pub config_hash: u64,
    /// Warm depth (accesses per warp) or salvage cycle, per `kind`.
    pub depth: u64,
}

impl StoreKey {
    /// A warm-image key (the runner's warm-state cache namespace).
    pub fn warm(bench: BenchmarkId, config_hash: u64, depth: u64) -> StoreKey {
        StoreKey {
            kind: StoreKind::Warm,
            bench,
            config_hash,
            depth,
        }
    }

    /// A mid-run salvage key.
    pub fn run(bench: BenchmarkId, config_hash: u64, cycle: u64) -> StoreKey {
        StoreKey {
            kind: StoreKind::Run,
            bench,
            config_hash,
            depth: cycle,
        }
    }

    /// The entry's file name: `<kind>-<bench>-<confighash>-<depth>.ckpt`
    /// with the benchmark abbreviation sanitized to `[A-Za-z0-9_]`.
    pub fn file_name(&self) -> String {
        let bench: String = self
            .bench
            .to_string()
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        format!(
            "{}-{}-{:016x}-{}.{ENTRY_EXT}",
            self.tag_str(),
            bench,
            self.config_hash,
            self.depth
        )
    }

    fn tag_str(&self) -> &'static str {
        self.kind.tag()
    }
}

impl fmt::Display for StoreKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/{:016x}/{}",
            self.tag_str(),
            self.bench,
            self.config_hash,
            self.depth
        )
    }
}

/// One injectable disk fault, mirroring the simulator's
/// [`Fault`](nuba_engine::Fault) taxonomy for storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreFault {
    /// Simulate a non-atomic torn write: only the first `keep_bytes`
    /// bytes of the entry land **directly at the final path** (no temp
    /// file, no rename) — the pre-atomic failure mode the store's
    /// verification must catch on the next read.
    TornWrite {
        /// Bytes of the entry that survive the tear.
        keep_bytes: usize,
    },
    /// Flip one bit of the entry as it is written (media corruption
    /// that atomic rename cannot prevent).
    BitFlip {
        /// Byte offset whose lowest bit is flipped (wrapped into the
        /// entry length).
        offset: usize,
    },
    /// The write fails like a full disk; persistence is skipped with a
    /// warning and the run carries on from memory.
    Enospc,
    /// The next read of an entry fails like an I/O error; the entry is
    /// quarantined as unreadable.
    Unreadable,
}

/// A deterministic schedule of [`StoreFault`]s keyed on the store's
/// monotonic operation counters (writes for `torn`/`flip`/`enospc`,
/// reads for `unreadable`) — plain data, drained as operations happen,
/// exactly like the simulator's `FaultPlan` drains cycle edges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreFaultPlan {
    /// `(write-op index, fault)` for write-side faults.
    writes: Vec<(u64, StoreFault)>,
    /// Read-op indices that fail as unreadable.
    reads: Vec<u64>,
}

impl StoreFaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> StoreFaultPlan {
        StoreFaultPlan::default()
    }

    /// Schedule a fault: write-side faults (`TornWrite`, `BitFlip`,
    /// `Enospc`) fire on the `op`-th write, `Unreadable` on the
    /// `op`-th read.
    #[must_use]
    pub fn with(mut self, op: u64, fault: StoreFault) -> StoreFaultPlan {
        match fault {
            StoreFault::Unreadable => self.reads.push(op),
            f => self.writes.push((op, f)),
        }
        self
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty() && self.reads.is_empty()
    }

    /// Parse the `NUBA_STORE_FAULT` spec: comma-separated
    /// `torn@<op>[:<keep_bytes>]`, `flip@<op>[:<offset>]`,
    /// `enospc@<op>`, `unreadable@<op>`.
    ///
    /// # Errors
    /// A description of the first malformed element.
    pub fn parse(spec: &str) -> Result<StoreFaultPlan, String> {
        let mut plan = StoreFaultPlan::new();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let part = part.trim();
            let (kind, rest) = part
                .split_once('@')
                .ok_or_else(|| format!("store fault `{part}`: expected <kind>@<op>"))?;
            let (op, param) = match rest.split_once(':') {
                Some((op, param)) => (op, Some(param)),
                None => (rest, None),
            };
            let op: u64 = op
                .parse()
                .map_err(|e| format!("store fault `{part}`: bad op index: {e}"))?;
            let param_usize = |default: usize| -> Result<usize, String> {
                match param {
                    Some(p) => p
                        .parse()
                        .map_err(|e| format!("store fault `{part}`: bad parameter: {e}")),
                    None => Ok(default),
                }
            };
            let fault = match kind {
                "torn" => StoreFault::TornWrite {
                    keep_bytes: param_usize(64)?,
                },
                "flip" => StoreFault::BitFlip {
                    offset: param_usize(97)?,
                },
                "enospc" => StoreFault::Enospc,
                "unreadable" => StoreFault::Unreadable,
                other => return Err(format!("store fault `{part}`: unknown kind `{other}`")),
            };
            plan = plan.with(op, fault);
        }
        Ok(plan)
    }
}

/// Why a store operation failed (reported, never panicked on).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The underlying filesystem operation failed (includes injected
    /// `ENOSPC`).
    Io(String),
    /// The entry's bytes failed verification.
    Corrupt(StateError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt(e) => write!(f, "store entry corrupt: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e.to_string())
    }
}

/// Store construction parameters. `dir: None` means "disabled" — the
/// runner then falls back byte-identically to its in-memory cache.
#[derive(Debug, Clone, Default)]
pub struct StoreConfig {
    /// Root directory; `None` disables the store.
    pub dir: Option<PathBuf>,
    /// Total committed-entry budget in bytes (`0` = unlimited).
    pub max_bytes: u64,
    /// Deterministic fault schedule (chaos drills only).
    pub faults: StoreFaultPlan,
    /// Stall injected mid-write, in milliseconds (crash-recovery tests
    /// park here so a parent process can `kill -9` the writer).
    pub write_stall_ms: u64,
}

impl StoreConfig {
    /// Read `NUBA_STORE_DIR`, `NUBA_STORE_MAX_BYTES`,
    /// `NUBA_STORE_FAULT`, and `NUBA_STORE_WRITE_STALL_MS` from the
    /// process-wide [`HarnessOptions`] snapshot.
    pub fn from_env() -> StoreConfig {
        let opts = HarnessOptions::get();
        let faults = match &opts.store_fault {
            Some(spec) => StoreFaultPlan::parse(spec).unwrap_or_else(|e| {
                eprintln!("store: ignoring NUBA_STORE_FAULT: {e}");
                StoreFaultPlan::new()
            }),
            None => StoreFaultPlan::new(),
        };
        StoreConfig {
            dir: opts.store_dir.as_ref().map(PathBuf::from),
            max_bytes: opts.store_max_bytes,
            faults,
            write_stall_ms: opts.store_write_stall_ms,
        }
    }
}

/// Counters of everything the store has done (diagnostics/tests; the
/// simulation results never depend on them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Reads that returned a verified checkpoint.
    pub hits: u64,
    /// Reads that found no entry.
    pub misses: u64,
    /// Entries committed.
    pub inserts: u64,
    /// Writes skipped or lost to I/O errors (includes injected
    /// `ENOSPC`).
    pub write_errors: u64,
    /// Entries moved to the quarantine sidecar (corrupt, truncated,
    /// stale-version, unreadable, or orphaned temp files).
    pub quarantined: u64,
    /// Entries evicted by the LRU size cap.
    pub evictions: u64,
}

struct StoreInner {
    faults: StoreFaultPlan,
    write_ops: u64,
    read_ops: u64,
    stats: StoreStats,
}

impl StoreInner {
    /// Take the fault (if any) scheduled for the current write op.
    fn next_write_fault(&mut self) -> Option<StoreFault> {
        let op = self.write_ops;
        self.write_ops += 1;
        self.faults
            .writes
            .iter()
            .find(|(at, _)| *at == op)
            .map(|&(_, f)| f)
    }

    /// Whether the current read op is scheduled to fail.
    fn next_read_unreadable(&mut self) -> bool {
        let op = self.read_ops;
        self.read_ops += 1;
        self.faults.reads.contains(&op)
    }
}

/// The persistent checkpoint store. All methods take `&self`; internal
/// counters live behind a mutex so one store can back a parallel
/// matrix.
pub struct CheckpointStore {
    root: PathBuf,
    quarantine_dir: PathBuf,
    max_bytes: u64,
    write_stall_ms: u64,
    inner: Mutex<StoreInner>,
}

/// What [`CheckpointStore::open`] found and cleaned up.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Orphaned temp files (crash mid-write) moved to quarantine.
    pub orphaned_tmp: Vec<String>,
}

/// One entry's verdict from [`CheckpointStore::verify_all`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryVerdict {
    /// Entry file name.
    pub file: String,
    /// Entry size in bytes.
    pub bytes: u64,
    /// `Ok(key)` when the entry verified, `Err(reason)` otherwise.
    pub status: Result<StoreKey, String>,
}

impl CheckpointStore {
    /// Open (creating directories as needed) and run crash recovery:
    /// orphaned temp files from a previous crashed writer are swept
    /// into quarantine before any entry can be read.
    ///
    /// # Errors
    /// [`StoreError::Io`] if the directories cannot be created.
    pub fn open(cfg: StoreConfig) -> Result<CheckpointStore, StoreError> {
        let root = cfg
            .dir
            .ok_or_else(|| StoreError::Io("store disabled: no directory configured".into()))?;
        let quarantine_dir = root.join("quarantine");
        fs::create_dir_all(&root)?;
        fs::create_dir_all(&quarantine_dir)?;
        let store = CheckpointStore {
            root,
            quarantine_dir,
            max_bytes: cfg.max_bytes,
            write_stall_ms: cfg.write_stall_ms,
            inner: Mutex::new(StoreInner {
                faults: cfg.faults,
                write_ops: 0,
                read_ops: 0,
                stats: StoreStats::default(),
            }),
        };
        let recovery = store.recover();
        if !recovery.orphaned_tmp.is_empty() {
            eprintln!(
                "store: recovered from interrupted write(s): quarantined {} torn temp file(s)",
                recovery.orphaned_tmp.len()
            );
        }
        Ok(store)
    }

    /// Convenience: open the environment-configured store, or `None`
    /// when `NUBA_STORE_DIR` is unset or opening fails (with a
    /// warning) — the caller falls back to in-memory behaviour.
    pub fn from_env() -> Option<CheckpointStore> {
        let cfg = StoreConfig::from_env();
        cfg.dir.as_ref()?;
        match CheckpointStore::open(cfg) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("store: cannot open NUBA_STORE_DIR ({e}); falling back to memory");
                None
            }
        }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The quarantine sidecar directory.
    pub fn quarantine_dir(&self) -> &Path {
        &self.quarantine_dir
    }

    /// Snapshot of the operation counters.
    pub fn stats(&self) -> StoreStats {
        self.inner.lock().expect("store lock poisoned").stats
    }

    /// Sweep orphaned temp files (crash mid-write) into quarantine.
    /// Idempotent; called by [`open`](CheckpointStore::open).
    pub fn recover(&self) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        for path in self.list_files(TMP_EXT) {
            let name = file_name_of(&path);
            if self.quarantine_file(&path, "torn write (orphaned temp file)") {
                report.orphaned_tmp.push(name);
            }
        }
        report
    }

    /// Look up a checkpoint. Returns `None` on a miss *or* when the
    /// entry fails verification — in the latter case the damaged file
    /// is quarantined first, so the caller transparently re-derives the
    /// state and the store heals.
    pub fn get(&self, key: &StoreKey) -> Option<Checkpoint> {
        let path = self.root.join(key.file_name());
        if !path.is_file() {
            self.with_inner(|i| i.stats.misses += 1);
            return None;
        }
        let unreadable = self.with_inner(StoreInner::next_read_unreadable);
        let bytes = if unreadable {
            Err(StoreError::Io("injected unreadable entry".into()))
        } else {
            fs::read(&path).map_err(StoreError::from)
        };
        let verdict = bytes.and_then(|b| verify_entry(&b, Some(key)));
        match verdict {
            Ok(ckpt) => {
                // LRU bookkeeping: a hit makes the entry young again.
                touch(&path);
                self.with_inner(|i| i.stats.hits += 1);
                Some(ckpt)
            }
            Err(e) => {
                eprintln!("store: entry {key} failed verification ({e}); quarantining");
                self.quarantine_file(&path, &e.to_string());
                self.with_inner(|i| i.stats.misses += 1);
                None
            }
        }
    }

    /// Commit a checkpoint under `key`: envelope, temp-file write,
    /// atomic rename, LRU eviction. Injected faults apply here.
    ///
    /// # Errors
    /// [`StoreError::Io`] when the write fails (real or injected
    /// `ENOSPC`); the store directory is left without a (visible)
    /// partial entry unless a *torn-write fault* deliberately
    /// simulates the non-atomic failure mode.
    pub fn put(&self, key: &StoreKey, ckpt: &Checkpoint) -> Result<(), StoreError> {
        let bytes = encode_entry(key, ckpt);
        let fault = self.with_inner(StoreInner::next_write_fault);
        let final_path = self.root.join(key.file_name());
        match fault {
            Some(StoreFault::Enospc) => {
                self.with_inner(|i| i.stats.write_errors += 1);
                return Err(StoreError::Io(
                    "No space left on device (injected ENOSPC)".into(),
                ));
            }
            Some(StoreFault::TornWrite { keep_bytes }) => {
                // Deliberately bypass the temp-file + rename protocol:
                // this is the torn write the verification layer exists
                // to catch.
                let keep = keep_bytes.min(bytes.len().saturating_sub(1)).max(1);
                fs::write(&final_path, &bytes[..keep])?;
                self.with_inner(|i| i.stats.inserts += 1);
                return Ok(());
            }
            Some(StoreFault::BitFlip { offset }) => {
                let mut bytes = bytes;
                let at = offset % bytes.len();
                bytes[at] ^= 1;
                self.write_atomic(&final_path, &bytes)?;
                self.with_inner(|i| i.stats.inserts += 1);
                self.evict_to_cap();
                return Ok(());
            }
            Some(StoreFault::Unreadable) | None => {}
        }
        self.write_atomic(&final_path, &bytes)?;
        self.with_inner(|i| i.stats.inserts += 1);
        self.evict_to_cap();
        Ok(())
    }

    /// Verify every committed entry (envelope + full checkpoint
    /// decode), sorted by file name. Does not modify the store.
    pub fn verify_all(&self) -> Vec<EntryVerdict> {
        let mut out: Vec<EntryVerdict> = self
            .list_files(ENTRY_EXT)
            .into_iter()
            .map(|path| {
                let bytes = fs::read(&path);
                let len = bytes.as_ref().map(|b| b.len() as u64).unwrap_or(0);
                let status = match bytes {
                    Ok(b) => decode_entry_key(&b).map_err(|e| e.to_string()),
                    Err(e) => Err(format!("unreadable: {e}")),
                };
                EntryVerdict {
                    file: file_name_of(&path),
                    bytes: len,
                    status,
                }
            })
            .collect();
        out.sort_by(|a, b| a.file.cmp(&b.file));
        out
    }

    /// Quarantine every entry that fails verification. Returns the
    /// quarantined file names.
    pub fn quarantine_corrupt(&self) -> Vec<String> {
        let mut moved = Vec::new();
        for v in self.verify_all() {
            if let Err(reason) = &v.status {
                let path = self.root.join(&v.file);
                if self.quarantine_file(&path, reason) {
                    moved.push(v.file);
                }
            }
        }
        moved
    }

    /// Garbage collection: sweep orphaned temp files and enforce the
    /// size cap. Returns `(quarantined tmp files, evicted entries)`.
    pub fn gc(&self) -> (usize, usize) {
        let tmp = self.recover().orphaned_tmp.len();
        let before = self.stats().evictions;
        self.evict_to_cap();
        let evicted = (self.stats().evictions - before) as usize;
        (tmp, evicted)
    }

    /// Number of committed entries.
    pub fn len(&self) -> usize {
        self.list_files(ENTRY_EXT).len()
    }

    /// Whether the store holds no committed entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes across committed entries.
    pub fn total_bytes(&self) -> u64 {
        self.list_files(ENTRY_EXT)
            .iter()
            .filter_map(|p| fs::metadata(p).ok())
            .map(|m| m.len())
            .sum()
    }

    /// Files currently in quarantine.
    pub fn quarantined_files(&self) -> Vec<String> {
        let mut names: Vec<String> = fs::read_dir(&self.quarantine_dir)
            .into_iter()
            .flatten()
            .flatten()
            .filter(|e| e.path().is_file())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        names
    }

    fn with_inner<T>(&self, f: impl FnOnce(&mut StoreInner) -> T) -> T {
        f(&mut self.inner.lock().expect("store lock poisoned"))
    }

    fn list_files(&self, ext: &str) -> Vec<PathBuf> {
        let mut files: Vec<PathBuf> = fs::read_dir(&self.root)
            .into_iter()
            .flatten()
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_file() && p.extension().is_some_and(|e| e == ext))
            .collect();
        files.sort();
        files
    }

    /// Write `bytes` to a same-directory temp file, fsync, and rename
    /// into place. The optional mid-write stall gives crash tests a
    /// window to `kill -9` this process with the temp file half
    /// written — which must never corrupt the visible store.
    fn write_atomic(&self, final_path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        let tmp_name = format!(
            ".{}.{}.{TMP_EXT}",
            file_name_of(final_path),
            std::process::id()
        );
        let tmp_path = self.root.join(tmp_name);
        let result = (|| -> Result<(), StoreError> {
            let mut f = fs::File::create(&tmp_path)?;
            if self.write_stall_ms > 0 {
                let half = bytes.len() / 2;
                f.write_all(&bytes[..half])?;
                f.sync_all()?;
                std::thread::sleep(std::time::Duration::from_millis(self.write_stall_ms));
                f.write_all(&bytes[half..])?;
            } else {
                f.write_all(bytes)?;
            }
            f.sync_all()?;
            drop(f);
            fs::rename(&tmp_path, final_path)?;
            Ok(())
        })();
        if result.is_err() {
            // Never leave a temp file behind on a failed write.
            let _ = fs::remove_file(&tmp_path);
            self.with_inner(|i| i.stats.write_errors += 1);
        }
        result
    }

    /// Move a damaged file into the quarantine sidecar (suffixing on
    /// name collisions). Returns whether the move happened.
    fn quarantine_file(&self, path: &Path, reason: &str) -> bool {
        let name = file_name_of(path);
        let mut dest = self.quarantine_dir.join(&name);
        let mut n = 0;
        while dest.exists() {
            n += 1;
            dest = self.quarantine_dir.join(format!("{name}.{n}"));
        }
        match fs::rename(path, &dest) {
            Ok(()) => {
                self.with_inner(|i| i.stats.quarantined += 1);
                let _ = fs::write(
                    dest.with_extension("reason"),
                    format!("{reason}\n").as_bytes(),
                );
                true
            }
            Err(e) => {
                eprintln!("store: cannot quarantine {name}: {e}");
                false
            }
        }
    }

    /// Evict least-recently-used entries until the total committed
    /// size fits the cap. Eviction order uses file mtimes (bumped on
    /// hit); simulation results never depend on what is evicted — a
    /// miss just re-derives the state.
    fn evict_to_cap(&self) {
        if self.max_bytes == 0 {
            return;
        }
        let mut entries: Vec<(PathBuf, u64, SystemTime)> = self
            .list_files(ENTRY_EXT)
            .into_iter()
            .filter_map(|p| {
                let m = fs::metadata(&p).ok()?;
                let mtime = m.modified().ok()?;
                Some((p, m.len(), mtime))
            })
            .collect();
        let mut total: u64 = entries.iter().map(|(_, len, _)| len).sum();
        if total <= self.max_bytes {
            return;
        }
        entries.sort_by_key(|&(_, _, mtime)| mtime);
        for (path, len, _) in entries {
            if total <= self.max_bytes {
                break;
            }
            if fs::remove_file(&path).is_ok() {
                total = total.saturating_sub(len);
                self.with_inner(|i| i.stats.evictions += 1);
            }
        }
    }
}

fn file_name_of(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default()
}

/// Best-effort mtime bump for LRU bookkeeping.
fn touch(path: &Path) {
    if let Ok(f) = fs::OpenOptions::new().write(true).open(path) {
        let _ = f.set_modified(SystemTime::now());
    }
}

/// Serialize one store entry: envelope header, key echo, checkpoint
/// payload, trailing checksum over everything before it.
fn encode_entry(key: &StoreKey, ckpt: &Checkpoint) -> Vec<u8> {
    let payload = ckpt.to_bytes();
    let mut w = StateWriter::new();
    w.put_u32(STORE_MAGIC);
    w.put_u32(STATE_FORMAT_VERSION);
    let tag = key.tag_str();
    w.put_u64(tag.len() as u64);
    w.put_bytes(tag.as_bytes());
    let bench = key.bench.to_string();
    w.put_u64(bench.len() as u64);
    w.put_bytes(bench.as_bytes());
    w.put_u64(key.config_hash);
    w.put_u64(key.depth);
    w.put_u64(payload.len() as u64);
    w.put_bytes(&payload);
    let checksum = fnv1a(w.bytes());
    w.put_u64(checksum);
    w.into_bytes()
}

/// Verify an entry's envelope and decode the checkpoint. `expect_key`
/// additionally cross-checks the key echo (a renamed/misfiled entry is
/// corruption too).
fn verify_entry(bytes: &[u8], expect_key: Option<&StoreKey>) -> Result<Checkpoint, StoreError> {
    let (key, payload) = decode_envelope(bytes).map_err(StoreError::Corrupt)?;
    if let Some(expect) = expect_key {
        if key.kind != expect.kind
            || key.config_hash != expect.config_hash
            || key.depth != expect.depth
            || key.bench != expect.bench
        {
            return Err(StoreError::Corrupt(StateError::Corrupt(
                "entry key echo does not match its address",
            )));
        }
    }
    Checkpoint::from_bytes(payload).map_err(StoreError::Corrupt)
}

/// Envelope-only verification for fsck: checks framing, version, and
/// the end-to-end checksum, then fully decodes the checkpoint.
fn decode_entry_key(bytes: &[u8]) -> Result<StoreKey, StoreError> {
    let (key, payload) = decode_envelope(bytes).map_err(StoreError::Corrupt)?;
    Checkpoint::from_bytes(payload).map_err(StoreError::Corrupt)?;
    Ok(key)
}

/// Decode the envelope, returning the key echo and the checkpoint
/// payload slice. Every exit is a typed [`StateError`].
fn decode_envelope(bytes: &[u8]) -> Result<(StoreKey, &[u8]), StateError> {
    let mut r = StateReader::new(bytes);
    if r.get_u32()? != STORE_MAGIC {
        return Err(StateError::Corrupt("not a NUBA store entry"));
    }
    let version = r.get_u32()?;
    if version != STATE_FORMAT_VERSION {
        return Err(StateError::VersionMismatch {
            found: version,
            expected: STATE_FORMAT_VERSION,
        });
    }
    // End-to-end checksum before trusting any length field.
    if bytes.len() < 16 {
        return Err(StateError::UnexpectedEof {
            needed: 16,
            remaining: bytes.len(),
        });
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let expected = u64::from_le_bytes(tail.try_into().expect("8-byte checksum tail"));
    let found = fnv1a(body);
    if expected != found {
        return Err(StateError::ChecksumMismatch { expected, found });
    }
    let mut r = StateReader::new(body);
    let _magic = r.get_u32()?;
    let _version = r.get_u32()?;
    let take_str = |r: &mut StateReader<'_>| -> Result<String, StateError> {
        let n = r.get_u64()? as usize;
        let b = r.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| StateError::Corrupt("non-utf8 key echo"))
    };
    let tag = take_str(&mut r)?;
    let kind =
        StoreKind::from_tag(&tag).ok_or(StateError::Corrupt("unknown entry kind in key echo"))?;
    let bench_str = take_str(&mut r)?;
    let bench = BenchmarkId::from_abbr(&bench_str)
        .ok_or(StateError::Corrupt("unknown benchmark in key echo"))?;
    let config_hash = r.get_u64()?;
    let depth = r.get_u64()?;
    let payload_len = r.get_u64()? as usize;
    let payload_start = body.len() - r.remaining();
    let payload = r.take(payload_len)?;
    if !r.is_done() {
        return Err(StateError::Corrupt("trailing bytes in store entry"));
    }
    let _ = payload_start;
    Ok((
        StoreKey {
            kind,
            bench,
            config_hash,
            depth,
        },
        payload,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuba_types::{ArchKind, GpuConfig};
    use nuba_workloads::{ScaleProfile, Workload};

    fn tmp_store(tag: &str, cfg_tweak: impl FnOnce(StoreConfig) -> StoreConfig) -> CheckpointStore {
        let dir =
            std::env::temp_dir().join(format!("nuba_store_unit_{}_{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cfg = cfg_tweak(StoreConfig {
            dir: Some(dir),
            ..StoreConfig::default()
        });
        CheckpointStore::open(cfg).expect("store opens")
    }

    fn tiny_checkpoint() -> (StoreKey, Checkpoint) {
        let cfg = GpuConfig::paper_baseline(ArchKind::Nuba)
            .with_geometry(8, 8, 4, 8)
            .with_page_fault_latency(200);
        let wl = Workload::build(BenchmarkId::Kmeans, ScaleProfile::fast(), 8, cfg.seed);
        let mut gpu = nuba_core::GpuSimulator::try_new(cfg.clone(), &wl).expect("valid");
        gpu.warm(&wl, 64);
        let key = StoreKey::warm(BenchmarkId::Kmeans, cfg.state_hash(), 64);
        (key, gpu.checkpoint(&wl))
    }

    #[test]
    fn roundtrip_hit_and_miss() {
        let store = tmp_store("roundtrip", |c| c);
        let (key, ckpt) = tiny_checkpoint();
        assert!(store.get(&key).is_none(), "empty store misses");
        store.put(&key, &ckpt).expect("put succeeds");
        let back = store.get(&key).expect("hit after put");
        assert_eq!(back.to_bytes(), ckpt.to_bytes(), "byte-identical roundtrip");
        let other = StoreKey::warm(key.bench, key.config_hash, key.depth + 1);
        assert!(store.get(&other).is_none(), "depth is part of the key");
        let runk = StoreKey::run(key.bench, key.config_hash, key.depth);
        assert!(store.get(&runk).is_none(), "kind namespaces never collide");
        let s = store.stats();
        assert_eq!((s.hits, s.inserts), (1, 1));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupt_entries_quarantine_not_panic() {
        let store = tmp_store("corrupt", |c| c);
        let (key, ckpt) = tiny_checkpoint();
        store.put(&key, &ckpt).expect("put succeeds");
        let path = store.root().join(key.file_name());

        // Bit flip in the middle.
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(
            store.get(&key).is_none(),
            "flipped entry must not be reused"
        );
        assert!(!path.exists(), "damaged entry removed from the hot path");
        assert_eq!(store.quarantined_files().len(), 2, "entry + reason sidecar");

        // Truncation.
        store.put(&key, &ckpt).expect("re-put succeeds");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        assert!(store.get(&key).is_none(), "torn entry must not be reused");

        // Stale version (bytes 4..8 of the envelope).
        store.put(&key, &ckpt).expect("re-put succeeds");
        let mut bytes = fs::read(&path).unwrap();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert!(
            store.get(&key).is_none(),
            "stale version must not be reused"
        );

        assert_eq!(store.stats().quarantined, 3);
        // The store heals: a fresh put works and verifies again.
        store.put(&key, &ckpt).expect("put after quarantine");
        assert_eq!(store.get(&key).expect("healed").to_bytes(), ckpt.to_bytes());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn injected_faults_are_survivable() {
        let plan = StoreFaultPlan::new()
            .with(0, StoreFault::TornWrite { keep_bytes: 100 })
            .with(1, StoreFault::Enospc)
            .with(2, StoreFault::BitFlip { offset: 120 })
            .with(0, StoreFault::Unreadable);
        let store = tmp_store("faults", |c| StoreConfig { faults: plan, ..c });
        let (key, ckpt) = tiny_checkpoint();

        // Write op 0: torn — a visible truncated entry appears.
        store.put(&key, &ckpt).expect("torn write 'succeeds'");
        // Read op 0 is injected unreadable; either way it must not be
        // reused and must be quarantined.
        assert!(store.get(&key).is_none(), "torn entry never reused");
        // Write op 1: ENOSPC — surfaces as Err, no partial entry.
        let e = store.put(&key, &ckpt).expect_err("injected ENOSPC");
        assert!(matches!(e, StoreError::Io(_)));
        assert!(!store.root().join(key.file_name()).exists());
        // Write op 2: bit flip — atomic but corrupt; read quarantines.
        store.put(&key, &ckpt).expect("flipped write succeeds");
        assert!(store.get(&key).is_none(), "flipped entry never reused");
        // Plan exhausted: the store works normally again.
        store.put(&key, &ckpt).expect("clean write");
        assert_eq!(
            store.get(&key).expect("clean read").to_bytes(),
            ckpt.to_bytes()
        );
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn lru_cap_evicts_oldest() {
        let (key, ckpt) = tiny_checkpoint();
        let entry_len = encode_entry(&key, &ckpt).len() as u64;
        // Budget for two entries, not three.
        let store = tmp_store("lru", |c| StoreConfig {
            max_bytes: entry_len * 2 + entry_len / 2,
            ..c
        });
        let k1 = StoreKey::warm(key.bench, key.config_hash, 1);
        let k2 = StoreKey::warm(key.bench, key.config_hash, 2);
        let k3 = StoreKey::warm(key.bench, key.config_hash, 3);
        store.put(&k1, &ckpt).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        store.put(&k2, &ckpt).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        // Touch k1 so k2 becomes the LRU victim.
        assert!(store.get(&k1).is_some());
        std::thread::sleep(std::time::Duration::from_millis(20));
        store.put(&k3, &ckpt).unwrap();
        assert!(store.total_bytes() <= entry_len * 2 + entry_len / 2);
        assert!(store.get(&k2).is_none(), "LRU entry evicted");
        assert!(store.get(&k1).is_some(), "recently-used entry kept");
        assert!(store.get(&k3).is_some(), "new entry kept");
        assert_eq!(store.stats().evictions, 1);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn recover_quarantines_orphaned_tmp() {
        let store = tmp_store("recover", |c| c);
        let orphan = store.root().join(format!(".torn.{TMP_EXT}"));
        fs::write(&orphan, b"half a checkpoint").unwrap();
        let report = store.recover();
        assert_eq!(report.orphaned_tmp.len(), 1);
        assert!(!orphan.exists());
        assert!(
            store.quarantined_files().iter().any(|f| f.contains("torn")),
            "{:?}",
            store.quarantined_files()
        );
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn fault_plan_parses_and_rejects() {
        let plan = StoreFaultPlan::parse("torn@0:128, enospc@2,flip@1:7,unreadable@3").unwrap();
        assert_eq!(
            plan,
            StoreFaultPlan::new()
                .with(0, StoreFault::TornWrite { keep_bytes: 128 })
                .with(2, StoreFault::Enospc)
                .with(1, StoreFault::BitFlip { offset: 7 })
                .with(3, StoreFault::Unreadable)
        );
        assert!(StoreFaultPlan::parse("bogus@1").is_err());
        assert!(StoreFaultPlan::parse("torn").is_err());
        assert!(StoreFaultPlan::parse("torn@x").is_err());
        assert!(StoreFaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn verify_all_reports_sorted_verdicts() {
        let store = tmp_store("verify", |c| c);
        let (key, ckpt) = tiny_checkpoint();
        store.put(&key, &ckpt).unwrap();
        let k2 = StoreKey::run(key.bench, key.config_hash, 777);
        store.put(&k2, &ckpt).unwrap();
        // Corrupt the second entry on disk.
        let p2 = store.root().join(k2.file_name());
        let mut b = fs::read(&p2).unwrap();
        let mid = b.len() / 2;
        b[mid] ^= 1;
        fs::write(&p2, &b).unwrap();
        let verdicts = store.verify_all();
        assert_eq!(verdicts.len(), 2);
        assert_eq!(verdicts.iter().filter(|v| v.status.is_ok()).count(), 1);
        assert_eq!(verdicts.iter().filter(|v| v.status.is_err()).count(), 1);
        let moved = store.quarantine_corrupt();
        assert_eq!(moved.len(), 1);
        assert_eq!(store.len(), 1);
        let _ = fs::remove_dir_all(store.root());
    }
}
