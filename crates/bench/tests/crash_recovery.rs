//! Crash-recovery drill: `kill -9` a child `nuba_sim --checkpoint`
//! *mid-store-write* and prove the durability contract — the visible
//! store is never corrupted (only a temp-file orphan is left, which
//! recovery quarantines), verification stays clean, and a re-run
//! produces a byte-identical checkpoint to an uninterrupted run.
//!
//! The kill window is opened deterministically with
//! `NUBA_STORE_WRITE_STALL_MS`: the child writes half the entry,
//! fsyncs, and sleeps — exactly the moment a real crash would tear a
//! non-atomic write.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

use nuba_bench::store::{CheckpointStore, StoreConfig};
use nuba_core::SimSession;
use nuba_workloads::{BenchmarkId, ScaleProfile, Workload};

const CYCLES: &str = "1200";

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nuba_crash_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

/// `nuba_sim --checkpoint` against `store_dir`, with an optional
/// mid-write stall (milliseconds).
fn sim_command(store_dir: &Path, ckpt_file: &Path, stall_ms: u64) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_nuba_sim"));
    cmd.args([
        "--bench",
        "KMEANS",
        "--cycles",
        CYCLES,
        "--checkpoint",
        ckpt_file.to_str().unwrap(),
    ]);
    cmd.env("NUBA_FAST", "1");
    cmd.env("NUBA_STORE_DIR", store_dir);
    cmd.env("NUBA_STORE_WRITE_STALL_MS", stall_ms.to_string());
    cmd
}

fn open_store(dir: &Path) -> CheckpointStore {
    CheckpointStore::open(StoreConfig {
        dir: Some(dir.to_path_buf()),
        ..StoreConfig::default()
    })
    .expect("store opens")
}

fn files_with_ext(dir: &Path, ext: &str) -> Vec<PathBuf> {
    std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_file() && p.extension().is_some_and(|e| e == ext))
        .collect()
}

#[test]
fn kill_nine_mid_write_never_corrupts_the_store() {
    let root = tmp_root("kill");
    let store_dir = root.join("store");
    let ckpt_file = root.join("state.ckpt");

    // Reference: an uninterrupted run into its own clean store.
    let ref_dir = root.join("ref_store");
    let ref_file = root.join("ref.ckpt");
    let status = sim_command(&ref_dir, &ref_file, 0)
        .status()
        .expect("reference nuba_sim runs");
    assert!(status.success(), "reference run must succeed");
    let reference_bytes = std::fs::read(&ref_file).expect("reference checkpoint exists");

    // Victim: stall 30 s inside the store write, then SIGKILL it the
    // moment the temp file appears (i.e. mid-write, pre-rename).
    let mut child = sim_command(&store_dir, &ckpt_file, 30_000)
        .spawn()
        .expect("victim nuba_sim spawns");
    let deadline = Instant::now() + Duration::from_secs(120);
    let tmp_orphan = loop {
        let tmps = files_with_ext(&store_dir, "tmp");
        if let Some(t) = tmps.first() {
            break t.clone();
        }
        assert!(
            Instant::now() < deadline,
            "victim never started its store write"
        );
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("victim exited ({status}) before it could be killed mid-write");
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    child.kill().expect("SIGKILL the victim"); // kill(2) = SIGKILL on unix
    let _ = child.wait();

    // The tear is real: a half-written temp file survived the kill,
    // and nothing was ever published at the final path.
    assert!(tmp_orphan.exists(), "orphaned temp file left by the crash");
    assert!(
        files_with_ext(&store_dir, "ckpt").is_empty(),
        "no committed entry may exist — the rename never happened"
    );
    assert!(
        !ckpt_file.exists(),
        "requested checkpoint file is atomic too"
    );

    // Recovery: opening the store sweeps the orphan into quarantine
    // and verification of the (empty) committed set is clean.
    let store = open_store(&store_dir);
    assert!(!tmp_orphan.exists(), "recovery must remove the orphan");
    assert!(
        !store.quarantined_files().is_empty(),
        "the torn write is preserved in quarantine for post-mortem"
    );
    assert!(
        store.verify_all().iter().all(|v| v.status.is_ok()),
        "no committed entry may fail verification after the crash"
    );
    drop(store);

    // Re-derive: the same run without the stall must now commit a
    // verified entry and write a checkpoint byte-identical to the
    // uninterrupted reference.
    let status = sim_command(&store_dir, &ckpt_file, 0)
        .status()
        .expect("re-run nuba_sim");
    assert!(status.success(), "re-run must succeed");
    let rerun_bytes = std::fs::read(&ckpt_file).expect("re-run checkpoint exists");
    assert_eq!(
        rerun_bytes, reference_bytes,
        "post-crash re-run must be byte-identical to an uninterrupted run"
    );
    let store = open_store(&store_dir);
    let verdicts = store.verify_all();
    assert_eq!(verdicts.len(), 1, "exactly one committed entry");
    assert!(verdicts[0].status.is_ok(), "{:?}", verdicts[0].status);

    // And the recovered bytes are resumable: restoring the checkpoint
    // into a fresh session continues the simulation.
    let ckpt = nuba_core::Checkpoint::from_bytes(&rerun_bytes).expect("decodes");
    let wl = Workload::build(
        BenchmarkId::Kmeans,
        ScaleProfile::fast(),
        ckpt.config().num_sms,
        ckpt.config().seed,
    );
    let mut sess = SimSession::resume_from_bytes(&rerun_bytes, wl).expect("resumes");
    sess.run_window(200).expect("forward progress after resume");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn fsck_gates_a_corrupted_store() {
    let root = tmp_root("fsck");
    let store_dir = root.join("store");
    let ckpt_file = root.join("state.ckpt");
    let status = sim_command(&store_dir, &ckpt_file, 0)
        .status()
        .expect("nuba_sim runs");
    assert!(status.success());

    let fsck = |args: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_nuba_fsck"))
            .arg("--store")
            .arg(&store_dir)
            .args(args)
            .status()
            .expect("nuba_fsck runs")
    };

    // Healthy store: --verify exits 0.
    assert!(fsck(&["--verify"]).success(), "healthy store must verify");

    // Corrupt the committed entry: --verify exits nonzero, and
    // --quarantine heals the store so a later --verify passes again.
    let entry = files_with_ext(&store_dir, "ckpt")
        .first()
        .cloned()
        .expect("one committed entry");
    let mut bytes = std::fs::read(&entry).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x08;
    std::fs::write(&entry, &bytes).unwrap();
    let status = fsck(&["--verify"]);
    assert_eq!(status.code(), Some(1), "corruption must gate --verify");
    assert!(fsck(&["--quarantine"]).success());
    assert!(
        fsck(&["--verify"]).success(),
        "quarantining heals the store"
    );

    let _ = std::fs::remove_dir_all(&root);
}
