//! Serial-vs-parallel determinism regression test for the experiment
//! matrix runner: the same job list must produce field-for-field
//! identical `SimReport`s at any worker count, in submission order.

use nuba_bench::runner::{run_matrix_with, Job};
use nuba_bench::Harness;
use nuba_engine::FaultPlan;
use nuba_types::{ArchKind, Fidelity, GpuConfig, PagePolicyKind, ReplicationKind};
use nuba_workloads::{BenchmarkId, ScaleProfile};

fn harness() -> Harness {
    Harness {
        cycles: 1500,
        scale: ScaleProfile::fast(),
        seed: 42,
        fidelity: Fidelity::Full,
    }
}

/// A small matrix covering the harness paths the figure binaries use:
/// plain jobs, per-job seed overrides (variance runs), scale overrides
/// (page-size sensitivity), and the history-dependent page-management
/// policies (migration / page replication order their maintenance
/// passes explicitly — this test is the regression gate for that).
fn matrix() -> Vec<Job> {
    let uba = GpuConfig::paper_baseline(ArchKind::MemSideUba);
    let nuba = GpuConfig::paper_baseline(ArchKind::Nuba);
    let mig = GpuConfig::paper_baseline(ArchKind::Nuba)
        .with_policy(PagePolicyKind::Migration)
        .with_replication(ReplicationKind::None);
    let prep = mig.clone().with_policy(PagePolicyKind::PageReplication);

    let mut jobs = Vec::new();
    for &b in &[BenchmarkId::Kmeans, BenchmarkId::Sgemm] {
        jobs.push(Job::new(format!("{b}/uba"), b, uba.clone()));
        jobs.push(Job::new(format!("{b}/nuba"), b, nuba.clone()));
        jobs.push(Job::new(format!("{b}/mig"), b, mig.clone()));
        jobs.push(Job::new(format!("{b}/prep"), b, prep.clone()));
        jobs.push(
            Job::new(format!("{b}/seeded"), b, nuba.clone())
                .with_seed(54)
                .with_scale(ScaleProfile::fast()),
        );
    }
    jobs
}

#[test]
fn parallel_matrix_matches_serial_field_for_field() {
    let h = harness();
    let jobs = matrix();
    let serial = run_matrix_with(&h, &jobs, 1);
    let parallel = run_matrix_with(&h, &jobs, 4);

    assert_eq!(serial.len(), jobs.len());
    assert_eq!(parallel.len(), jobs.len());
    for ((s, p), job) in serial.iter().zip(&parallel).zip(&jobs) {
        assert_eq!(s.label, job.label, "results must keep submission order");
        assert_eq!(p.label, job.label, "results must keep submission order");
        // SimReport derives PartialEq: every counter, histogram and
        // energy figure must agree bit-for-bit.
        assert_eq!(
            s.report, p.report,
            "job `{}` diverged between serial and parallel execution",
            job.label
        );
    }
}

#[test]
fn parallel_matrix_is_stable_across_repeat_runs() {
    let h = harness();
    let jobs = matrix();
    let first = run_matrix_with(&h, &jobs, 4);
    let second = run_matrix_with(&h, &jobs, 4);
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.report, b.report, "job `{}` not reproducible", a.label);
    }
}

/// Fault injection preserves byte-determinism: a matrix of faulted
/// jobs — seeded random plans, a mid-run outage window, a DRAM timing
/// stretch — produces identical reports at 1 and 4 workers, and a
/// faulted run differs from its fault-free twin (the faults really
/// were applied).
#[test]
fn faulted_matrix_is_deterministic_across_worker_counts() {
    let h = harness();
    let nuba = GpuConfig::paper_baseline(ArchKind::Nuba);
    let uba = GpuConfig::paper_baseline(ArchKind::MemSideUba);

    let seeded = FaultPlan::random(
        7,
        h.cycles,
        6,
        nuba.num_sms,
        nuba.num_llc_slices,
        nuba.num_channels,
    );
    let mut outage = FaultPlan::new();
    for e in FaultPlan::uniform_link_derate(0.5, nuba.num_sms, nuba.num_llc_slices).events() {
        outage = outage.with(e.fault, 200, Some(900));
    }
    let stretch = FaultPlan::new().with(
        nuba_engine::Fault::DramStretch {
            channel: 0,
            extra_cycles: 8,
        },
        0,
        None,
    );

    let jobs = vec![
        Job::new("clean", BenchmarkId::Kmeans, nuba.clone()),
        Job::new("seeded-faults", BenchmarkId::Kmeans, nuba.clone()).with_faults(seeded),
        Job::new("outage-window", BenchmarkId::Kmeans, nuba).with_faults(outage),
        Job::new("dram-stretch", BenchmarkId::Sgemm, uba).with_faults(stretch),
    ];
    let serial = run_matrix_with(&h, &jobs, 1);
    let parallel = run_matrix_with(&h, &jobs, 4);
    for ((s, p), job) in serial.iter().zip(&parallel).zip(&jobs) {
        assert!(!s.failed(), "`{}` quarantined: {:?}", job.label, s.error);
        assert_eq!(
            s.report, p.report,
            "faulted job `{}` diverged between serial and parallel execution",
            job.label
        );
    }
    assert_ne!(
        serial[0].report, serial[1].report,
        "the seeded fault plan must actually perturb the run"
    );
}

/// The telemetry exports are part of the determinism contract: the
/// per-window JSONL and the Chrome trace JSON rendered from a faulted
/// matrix must be byte-identical at 1 and 4 workers. Telemetry is
/// enabled through the job configs (not the env knobs) so this test
/// cannot race with sibling tests over process-global state.
#[test]
fn telemetry_exports_are_byte_identical_across_worker_counts() {
    let h = harness();
    let nuba = GpuConfig::paper_baseline(ArchKind::Nuba);
    let uba = GpuConfig::paper_baseline(ArchKind::MemSideUba);

    let mut outage = FaultPlan::new();
    for e in FaultPlan::uniform_link_derate(0.5, nuba.num_sms, nuba.num_llc_slices).events() {
        outage = outage.with(e.fault, 200, Some(900));
    }
    let with_telemetry = |mut cfg: GpuConfig| {
        cfg.telemetry.window_cycles = Some(250);
        cfg.telemetry.ring_windows = 16;
        cfg.telemetry.trace_sample_period = 32;
        cfg.telemetry.trace_capacity = 4096;
        cfg
    };
    let jobs = vec![
        Job::new("clean", BenchmarkId::Kmeans, with_telemetry(nuba.clone())),
        Job::new("faulted", BenchmarkId::Kmeans, with_telemetry(nuba)).with_faults(outage),
        Job::new("uba", BenchmarkId::Sgemm, with_telemetry(uba)),
    ];

    let serial = run_matrix_with(&h, &jobs, 1);
    let parallel = run_matrix_with(&h, &jobs, 4);
    for (r, job) in serial.iter().zip(&jobs) {
        assert!(!r.failed(), "`{}` quarantined: {:?}", job.label, r.error);
        assert!(!r.windows.is_empty(), "`{}` recorded no windows", job.label);
        assert!(!r.trace.is_empty(), "`{}` traced no requests", job.label);
    }

    let jsonl = nuba_bench::runner::render_timeseries(&serial);
    assert_eq!(
        jsonl,
        nuba_bench::runner::render_timeseries(&parallel),
        "windowed JSONL diverged between serial and parallel execution"
    );
    let trace = nuba_bench::runner::render_trace(&serial);
    assert_eq!(
        trace,
        nuba_bench::runner::render_trace(&parallel),
        "trace JSON diverged between serial and parallel execution"
    );
    // Sanity on the rendered shapes: one JSON object per line, and a
    // trace body that names the Chrome trace_event container.
    assert!(jsonl
        .lines()
        .all(|l| l.starts_with('{') && l.ends_with('}')));
    assert!(trace.starts_with("{\"traceEvents\":["));
}

/// The harness-level observability artifacts join the determinism
/// contract: the structured event log and the Prometheus metrics dump
/// rendered from the same matrix must be byte-identical at 1 and 4
/// workers. (The matrix Chrome trace is the one wall-clock-exempt
/// artifact and is deliberately NOT compared here — DESIGN.md §16.)
#[test]
fn event_log_and_metrics_are_byte_identical_across_worker_counts() {
    let h = harness();
    let nuba = GpuConfig::paper_baseline(ArchKind::Nuba);
    let with_telemetry = |mut cfg: GpuConfig| {
        cfg.telemetry.window_cycles = Some(250);
        cfg.telemetry.trace_sample_period = 32;
        cfg.telemetry.window_latency = true;
        cfg
    };
    let jobs = vec![
        Job::new("a", BenchmarkId::Kmeans, with_telemetry(nuba.clone())),
        Job::new("b", BenchmarkId::Sgemm, with_telemetry(nuba.clone())),
        Job::new("c", BenchmarkId::Kmeans, with_telemetry(nuba).with_seed(7)),
    ];
    let serial = run_matrix_with(&h, &jobs, 1);
    let parallel = run_matrix_with(&h, &jobs, 4);

    let events = nuba_bench::runner::render_event_log(&serial, None);
    assert_eq!(
        events,
        nuba_bench::runner::render_event_log(&parallel, None),
        "event log diverged between serial and parallel execution"
    );
    // One JSON object per line, sequence numbers strictly monotonic
    // from zero, and no wall-clock fields anywhere.
    for (i, line) in events.lines().enumerate() {
        assert!(line.starts_with(&format!("{{\"seq\":{i},")), "{line}");
        assert!(line.ends_with('}'), "{line}");
        assert!(!line.contains("secs"), "wall clock leaked: {line}");
    }

    let prom = nuba_bench::runner::build_matrix_registry(&serial, None).render_prometheus();
    assert_eq!(
        prom,
        nuba_bench::runner::build_matrix_registry(&parallel, None).render_prometheus(),
        "Prometheus dump diverged between serial and parallel execution"
    );
    assert!(prom.contains("# TYPE nuba_read_latency_cycles_local histogram"));
    assert!(prom.contains("nuba_jobs_total 3"));
}

/// Latency histograms are fed only at reply delivery, so the
/// event-driven time-skipping loop must reproduce the stepped run's
/// per-tier and per-stage distributions exactly.
#[test]
fn latency_histograms_identical_skip_vs_step() {
    use nuba_core::GpuSimulator;
    use nuba_workloads::Workload;

    let mut cfg = GpuConfig::paper_baseline(ArchKind::Nuba);
    cfg.telemetry.window_cycles = Some(250);
    cfg.telemetry.trace_sample_period = 32;
    cfg.telemetry.window_latency = true;
    let wl = Workload::build(BenchmarkId::Kmeans, ScaleProfile::fast(), cfg.num_sms, 42);

    let run = |skip: bool| {
        let mut gpu = GpuSimulator::try_new(cfg.clone(), &wl).expect("valid config");
        gpu.warm(&wl, 256);
        gpu.set_skip(skip);
        gpu.advance(1500).expect("forward progress");
        gpu.report().latency
    };
    let stepped = run(false);
    let skipped = run(true);
    assert_eq!(
        stepped, skipped,
        "latency histograms diverged between stepping and skipping"
    );
    assert!(
        stepped.overall().count() > 0,
        "no read latencies were recorded"
    );
}

#[test]
fn matrix_reports_throughput_per_job() {
    let h = harness();
    let jobs = matrix();
    for r in run_matrix_with(&h, &jobs, 2) {
        assert!(r.wall_seconds > 0.0, "{}: wall-clock not recorded", r.label);
        assert!(
            r.cycles_per_sec > 0.0,
            "{}: throughput not recorded",
            r.label
        );
        assert_eq!(r.report.cycles, h.cycles);
    }
}
