//! Fidelity-ladder contracts, enforced through the public runner API:
//!
//! 1. tier-1 (sampled) IPC lands inside its own declared [`ErrorBound`]
//!    of the tier-2 (full) truth for every simcheck config;
//! 2. `Fidelity::Full` through the runner is byte-identical to a raw
//!    simulator run that never touches the ladder (the pre-ladder
//!    execution recipe);
//! 3. sampled runs are byte-deterministic across worker counts.

use nuba_bench::runner::{run_matrix_with, Job};
use nuba_bench::{simcheck_configs, Harness};
use nuba_core::{default_warm_accesses, GpuSimulator};
use nuba_types::Fidelity;
use nuba_workloads::{BenchmarkId, ScaleProfile, Workload};

const CYCLES: u64 = 20_000;
const SEED: u64 = 42;

fn harness() -> Harness {
    Harness {
        cycles: CYCLES,
        scale: ScaleProfile::fast(),
        seed: SEED,
        fidelity: Fidelity::Full,
    }
}

/// Tier-1 contract: for every simcheck config, the sampled run's IPC
/// bound contains the full run's truth, while spending a fraction of
/// the detailed cycles. This is the same pairing `fig_fidelity` gates
/// in CI, pinned here at the fast scale so `cargo test` covers it.
#[test]
fn sampled_bound_covers_full_truth_on_every_simcheck_config() {
    let h = harness();
    let configs = simcheck_configs();
    assert_eq!(configs.len(), 11, "simcheck config roster changed");

    let sampled_jobs: Vec<Job> = configs
        .iter()
        .map(|(name, cfg)| {
            Job::new(format!("{name}/sampled"), BenchmarkId::Kmeans, cfg.clone())
                .with_fidelity(Fidelity::sampled_default())
        })
        .collect();
    let full_jobs: Vec<Job> = configs
        .iter()
        .map(|(name, cfg)| {
            Job::new(format!("{name}/full"), BenchmarkId::Kmeans, cfg.clone())
                .with_fidelity(Fidelity::Full)
        })
        .collect();

    let sampled = run_matrix_with(&h, &sampled_jobs, 4);
    let full = run_matrix_with(&h, &full_jobs, 4);

    for (s, f) in sampled.iter().zip(&full) {
        assert_eq!(s.fidelity.tier(), 1, "{}: not a tier-1 report", s.label);
        assert_eq!(f.fidelity.tier(), 2, "{}: not a tier-2 report", f.label);
        let truth = f.report.perf();
        let bound = s.report.ipc_bound();
        assert!(
            bound.contains(truth),
            "{}: tier-2 truth {:.4} outside tier-1 bound [{:.4}, {:.4}]",
            s.label,
            truth,
            bound.lo(),
            bound.hi()
        );
        let detail = s.report.detailed_cycles();
        assert!(
            detail < CYCLES,
            "{}: sampled run spent {detail} detailed cycles on a {CYCLES}-cycle window",
            s.label
        );
    }
}

/// Tier-2 contract: a `Fidelity::Full` job through the matrix runner
/// produces field-for-field the same report as the raw pre-ladder
/// recipe (build, warm, run) — the ladder must be invisible when off.
#[test]
fn full_fidelity_matches_ladder_free_simulation() {
    let h = harness();
    let (name, cfg) = &simcheck_configs()[4]; // a NUBA config
    let job =
        Job::new(name.clone(), BenchmarkId::Kmeans, cfg.clone()).with_fidelity(Fidelity::Full);
    let results = run_matrix_with(&h, std::slice::from_ref(&job), 1);

    // The ladder-free recipe, exactly as the harness ran before the
    // fidelity API existed: fresh simulator, default warm-up, one
    // detailed window.
    let mut cfg = cfg.clone();
    cfg.seed = SEED;
    cfg.page_bytes = h.scale.page_bytes;
    let wl = Workload::build(BenchmarkId::Kmeans, h.scale, cfg.num_sms, SEED);
    let mut gpu = GpuSimulator::try_new(cfg.clone(), &wl).expect("valid config");
    gpu.warm(&wl, default_warm_accesses(&cfg, &wl));
    let truth = gpu.run(CYCLES).expect("full run");

    assert_eq!(results[0].fidelity, Fidelity::Full);
    assert!(!results[0].escalated);
    assert_eq!(
        results[0].report, truth,
        "Fidelity::Full diverged from the ladder-free simulation path"
    );
}

/// Tier-1 determinism: sampled extrapolation is integer ratio-of-sums,
/// so a sampled matrix must be byte-identical at any worker count.
#[test]
fn sampled_matrix_is_deterministic_across_worker_counts() {
    let h = Harness {
        cycles: 8_000,
        ..harness()
    };
    let configs = simcheck_configs();
    let mut jobs = Vec::new();
    for &b in &[BenchmarkId::Kmeans, BenchmarkId::Mvt] {
        for (name, cfg) in configs.iter().take(4) {
            jobs.push(
                Job::new(format!("{b}/{name}"), b, cfg.clone())
                    .with_fidelity(Fidelity::sampled_default()),
            );
        }
    }
    let serial = run_matrix_with(&h, &jobs, 1);
    let parallel = run_matrix_with(&h, &jobs, 4);
    for ((s, p), job) in serial.iter().zip(&parallel).zip(&jobs) {
        assert_eq!(s.label, job.label);
        assert_eq!(
            s.report, p.report,
            "sampled job `{}` diverged between serial and parallel execution",
            job.label
        );
        assert!(s.report.sampled_meta().is_some(), "{}: no meta", s.label);
    }
}
