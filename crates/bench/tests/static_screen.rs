//! Integration tests tying the static kernel profiler to dynamic ground
//! truth across all 29 Table-2 benchmarks:
//!
//! - the static footprint covers every page the driver's page table
//!   would first-touch-map for sampled access streams (the ISSUE's
//!   superset acceptance criterion, at the driver-table level);
//! - the statically-proven read-only prefix of the address space is
//!   never written dynamically (stores and atomics land strictly above
//!   it);
//! - the tier-0 screen is inert unless `NUBA_SCREEN=1`.

use nuba_bench::screen::{print_screen_if_enabled, screen_benchmark};
use nuba_bench::{Harness, HarnessOptions};
use nuba_driver::PageTable;
use nuba_types::addr::PageNum;
use nuba_types::Fidelity;
use nuba_types::{AccessKind, ArchKind, ChannelId, GpuConfig, PartitionId, SmId, WarpId};
use nuba_workloads::{BenchmarkId, ScaleProfile, WarpOp, Workload};

const WARPS: usize = 2;
const OPS_PER_WARP: usize = 384;

fn nuba_cfg() -> GpuConfig {
    GpuConfig::paper_baseline(ArchKind::Nuba)
}

/// Drive a fresh driver page table with sampled warp streams exactly as
/// the simulator would: first touch maps the page, later touches record
/// accesses. Returns the table.
fn first_touch_table(wl: &Workload) -> PageTable {
    let cfg = nuba_cfg();
    let pb = wl.layout().page_bytes;
    let mut table = PageTable::new(cfg.num_channels);
    for sm in 0..wl.num_sms() {
        for w in 0..WARPS {
            let mut s = wl.stream(SmId(sm), WarpId(w));
            for _ in 0..OPS_PER_WARP {
                if let WarpOp::Mem(a) = s.next_op() {
                    let vpage = PageNum(a.vaddr.0 / pb);
                    if !table.is_mapped(vpage) {
                        table.map(
                            vpage,
                            ChannelId(vpage.0 as usize % cfg.num_channels),
                            SmId(sm),
                        );
                    }
                    table.record_access(vpage, SmId(sm), PartitionId(0), cfg.num_channels);
                }
            }
        }
    }
    table
}

/// The static footprint is a superset of the pages the driver table
/// first-touch-maps: every mapped virtual page index falls below the
/// profiler's predicted page count.
#[test]
fn static_footprint_covers_first_touched_pages() {
    let scale = ScaleProfile::fast();
    let cfg = nuba_cfg();
    for &b in BenchmarkId::ALL {
        let pred = screen_benchmark(b, &scale, &cfg);
        let predicted = pred.profile.total_pages();
        let wl = Workload::build(b, scale, cfg.num_sms, 42);
        let table = first_touch_table(&wl);
        assert!(!table.is_empty(), "{b}: sample touched no pages");
        for (vpage, _) in table.iter() {
            assert!(
                vpage.0 < predicted,
                "{b}: first-touched page {} outside the static footprint of {predicted} pages",
                vpage.0
            );
        }
        // The footprint stays a bounded over-approximation, not a
        // blanket "everything": it never exceeds the layout's own size.
        assert_eq!(
            predicted,
            wl.layout().total_pages,
            "{b}: static page count drifted from the layout"
        );
    }
}

/// The statically-proven read-only page prefix is never written: every
/// dynamically-sampled store or atomic lands at or above
/// `read_only_page_limit()`. This is the "static read-only set contains
/// every never-written page" criterion run in reverse — writes must
/// avoid the proven-read-only region.
#[test]
fn readonly_region_is_never_written() {
    let scale = ScaleProfile::fast();
    let cfg = nuba_cfg();
    let mut proven = 0u32;
    for &b in BenchmarkId::ALL {
        let pred = screen_benchmark(b, &scale, &cfg);
        let limit = pred.profile.read_only_page_limit();
        if limit == 0 {
            continue;
        }
        proven += 1;
        let wl = Workload::build(b, scale, cfg.num_sms, 42);
        let pb = wl.layout().page_bytes;
        for sm in 0..wl.num_sms() {
            for w in 0..WARPS {
                let mut s = wl.stream(SmId(sm), WarpId(w));
                for _ in 0..OPS_PER_WARP {
                    let WarpOp::Mem(a) = s.next_op() else {
                        continue;
                    };
                    if matches!(a.kind, AccessKind::Store | AccessKind::Atomic) {
                        assert!(
                            a.vaddr.0 / pb >= limit,
                            "{b}: write to page {} inside the proven read-only \
                             prefix [0, {limit})",
                            a.vaddr.0 / pb
                        );
                    }
                }
            }
        }
    }
    assert!(
        proven >= 20,
        "only {proven}/29 benchmarks have a proven read-only region"
    );
}

/// With `NUBA_SCREEN` unset the screen stage is inert: the options flag
/// is off and the runner hook prints nothing (it returns before
/// touching the jobs).
#[test]
fn screen_is_off_by_default() {
    assert!(
        std::env::var("NUBA_SCREEN").is_err(),
        "test environment must not pre-set NUBA_SCREEN"
    );
    assert!(!HarnessOptions::get().screen);
    let h = Harness {
        cycles: 100,
        scale: ScaleProfile::fast(),
        seed: 42,
        fidelity: Fidelity::Full,
    };
    // Inert even on an empty matrix — must not panic or print.
    print_screen_if_enabled(&h, &[]);
}
