//! Warm-state reuse contract: the matrix runner may fork jobs from a
//! cached post-warm checkpoint, and that must not change a single byte
//! of any result — not across worker counts, not between a cold and a
//! hot cache, and not against a fresh `SimSession` that never touched
//! the cache at all.

use nuba_bench::runner::{reset_warm_cache, run_matrix_with, Job};
use nuba_bench::Harness;
use nuba_types::{ArchKind, GpuConfig, PagePolicyKind, ReplicationKind};
use nuba_workloads::{BenchmarkId, ScaleProfile};

fn harness() -> Harness {
    Harness {
        cycles: 1200,
        scale: ScaleProfile::fast(),
        seed: 42,
    }
}

/// A matrix with deliberate (bench, config, warm-depth) duplicates so
/// the warm cache is actually exercised, plus distinct configurations
/// to prove keys do not collide.
fn matrix() -> Vec<Job> {
    let nuba = GpuConfig::paper_baseline(ArchKind::Nuba);
    let uba = GpuConfig::paper_baseline(ArchKind::MemSideUba);
    let mig = GpuConfig::paper_baseline(ArchKind::Nuba)
        .with_policy(PagePolicyKind::Migration)
        .with_replication(ReplicationKind::None);
    vec![
        Job::new("nuba/0", BenchmarkId::Kmeans, nuba.clone()),
        Job::new("nuba/1", BenchmarkId::Kmeans, nuba.clone()),
        Job::new("nuba/sgemm", BenchmarkId::Sgemm, nuba.clone()),
        Job::new("uba/0", BenchmarkId::Kmeans, uba.clone()),
        Job::new("uba/1", BenchmarkId::Kmeans, uba),
        Job::new("mig/0", BenchmarkId::Kmeans, mig.clone()),
        Job::new("mig/1", BenchmarkId::Kmeans, mig),
        Job::new("nuba/seeded", BenchmarkId::Kmeans, nuba).with_seed(54),
    ]
}

#[test]
fn warm_reuse_is_byte_identical_across_worker_counts_and_cache_state() {
    let h = harness();
    let jobs = matrix();

    reset_warm_cache();
    let serial = run_matrix_with(&h, &jobs, 1);
    reset_warm_cache();
    let parallel = run_matrix_with(&h, &jobs, 4);
    // Third pass with the cache already hot: every cacheable job now
    // restores from a checkpoint instead of warming from scratch.
    let hot = run_matrix_with(&h, &jobs, 4);

    for ((s, p), job) in serial.iter().zip(&parallel).zip(&jobs) {
        assert!(!s.failed(), "`{}` quarantined: {:?}", job.label, s.error);
        assert_eq!(
            s.report, p.report,
            "job `{}` diverged between 1 and 4 workers under warm reuse",
            job.label
        );
    }
    for (p, hot) in parallel.iter().zip(&hot) {
        assert_eq!(
            p.report, hot.report,
            "job `{}` diverged between a cold and a hot warm cache",
            p.label
        );
    }
}

#[test]
fn cached_warm_state_matches_a_fresh_session() {
    let h = harness();
    let jobs = matrix();

    // Populate the cache, then run once more entirely from it.
    reset_warm_cache();
    run_matrix_with(&h, &jobs, 2);
    let cached = run_matrix_with(&h, &jobs, 2);

    // A fresh `SimSession` per job — builds its own simulator and warms
    // from scratch, never consulting the runner's cache.
    for (r, job) in cached.iter().zip(&jobs) {
        let h = Harness {
            seed: job.seed.unwrap_or(h.seed),
            ..h
        };
        let fresh = h
            .try_run_scaled(job.bench, job.cfg.clone(), job.scale.unwrap_or(h.scale))
            .expect("forward progress");
        assert_eq!(
            r.report, fresh,
            "job `{}`: cache-restored run diverged from a fresh session",
            job.label
        );
    }
}
