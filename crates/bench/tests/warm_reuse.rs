//! Warm-state reuse contract: the matrix runner may fork jobs from a
//! cached post-warm checkpoint, and that must not change a single byte
//! of any result — not across worker counts, not between a cold and a
//! hot cache, and not against a fresh `SimSession` that never touched
//! the cache at all.

use nuba_bench::runner::{reset_warm_cache, run_matrix_ctx_with, run_matrix_with, Job, RunnerCtx};
use nuba_bench::store::{CheckpointStore, StoreConfig};
use nuba_bench::Harness;
use nuba_types::{ArchKind, Fidelity, GpuConfig, PagePolicyKind, ReplicationKind};
use nuba_workloads::{BenchmarkId, ScaleProfile};

fn harness() -> Harness {
    Harness {
        cycles: 1200,
        scale: ScaleProfile::fast(),
        seed: 42,
        fidelity: Fidelity::Full,
    }
}

/// A matrix with deliberate (bench, config, warm-depth) duplicates so
/// the warm cache is actually exercised, plus distinct configurations
/// to prove keys do not collide.
fn matrix() -> Vec<Job> {
    let nuba = GpuConfig::paper_baseline(ArchKind::Nuba);
    let uba = GpuConfig::paper_baseline(ArchKind::MemSideUba);
    let mig = GpuConfig::paper_baseline(ArchKind::Nuba)
        .with_policy(PagePolicyKind::Migration)
        .with_replication(ReplicationKind::None);
    vec![
        Job::new("nuba/0", BenchmarkId::Kmeans, nuba.clone()),
        Job::new("nuba/1", BenchmarkId::Kmeans, nuba.clone()),
        Job::new("nuba/sgemm", BenchmarkId::Sgemm, nuba.clone()),
        Job::new("uba/0", BenchmarkId::Kmeans, uba.clone()),
        Job::new("uba/1", BenchmarkId::Kmeans, uba),
        Job::new("mig/0", BenchmarkId::Kmeans, mig.clone()),
        Job::new("mig/1", BenchmarkId::Kmeans, mig),
        Job::new("nuba/seeded", BenchmarkId::Kmeans, nuba).with_seed(54),
    ]
}

#[test]
fn warm_reuse_is_byte_identical_across_worker_counts_and_cache_state() {
    let h = harness();
    let jobs = matrix();

    reset_warm_cache();
    let serial = run_matrix_with(&h, &jobs, 1);
    reset_warm_cache();
    let parallel = run_matrix_with(&h, &jobs, 4);
    // Third pass with the cache already hot: every cacheable job now
    // restores from a checkpoint instead of warming from scratch.
    let hot = run_matrix_with(&h, &jobs, 4);

    for ((s, p), job) in serial.iter().zip(&parallel).zip(&jobs) {
        assert!(!s.failed(), "`{}` quarantined: {:?}", job.label, s.error);
        assert_eq!(
            s.report, p.report,
            "job `{}` diverged between 1 and 4 workers under warm reuse",
            job.label
        );
    }
    for (p, hot) in parallel.iter().zip(&hot) {
        assert_eq!(
            p.report, hot.report,
            "job `{}` diverged between a cold and a hot warm cache",
            p.label
        );
    }
}

#[test]
fn cached_warm_state_matches_a_fresh_session() {
    let h = harness();
    let jobs = matrix();

    // Populate the cache, then run once more entirely from it.
    reset_warm_cache();
    run_matrix_with(&h, &jobs, 2);
    let cached = run_matrix_with(&h, &jobs, 2);

    // A fresh `SimSession` per job — builds its own simulator and warms
    // from scratch, never consulting the runner's cache.
    for (r, job) in cached.iter().zip(&jobs) {
        let h = Harness {
            seed: job.seed.unwrap_or(h.seed),
            ..h
        };
        let fresh = h
            .try_run_scaled(job.bench, job.cfg.clone(), job.scale.unwrap_or(h.scale))
            .expect("forward progress");
        assert_eq!(
            r.report, fresh,
            "job `{}`: cache-restored run diverged from a fresh session",
            job.label
        );
    }
}

/// Acceptance criterion for the persistent store: matrix results are
/// byte-identical with the store off, cold, hot, and pre-corrupted —
/// disk state is an optimization, never an input to the simulation.
#[test]
fn store_backed_reuse_is_byte_identical_even_when_corrupted() {
    let h = harness();
    let jobs = matrix();
    let dir = std::env::temp_dir().join(format!("nuba_warm_store_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let open_store = || {
        CheckpointStore::open(StoreConfig {
            dir: Some(dir.clone()),
            ..StoreConfig::default()
        })
        .expect("store opens")
    };

    // Store off: plain in-memory context, the pre-existing behaviour.
    let off_ctx = RunnerCtx::new();
    let off = run_matrix_ctx_with(&off_ctx, &h, &jobs, 2);

    // Store on, cold: warm-ups run for real and publish entries.
    let cold_ctx = RunnerCtx::with_store(open_store());
    let cold = run_matrix_ctx_with(&cold_ctx, &h, &jobs, 2);
    assert!(
        cold_ctx.store().unwrap().stats().inserts > 0,
        "cold pass must publish warm entries"
    );

    // Store on, hot, fresh process state (new ctx = empty in-memory
    // cache): warm state restores from disk.
    let hot_ctx = RunnerCtx::with_store(open_store());
    let hot = run_matrix_ctx_with(&hot_ctx, &h, &jobs, 2);
    assert!(
        hot_ctx.store().unwrap().stats().hits > 0,
        "hot pass must actually read the store"
    );

    // Pre-corrupted: flip one byte in the middle of every committed
    // entry. Every read must detect it, quarantine, and re-derive.
    let mut flipped = 0;
    for f in std::fs::read_dir(&dir).unwrap().flatten() {
        let p = f.path();
        if p.extension().is_some_and(|e| e == "ckpt") {
            let mut b = std::fs::read(&p).unwrap();
            let mid = b.len() / 2;
            b[mid] ^= 0x20;
            std::fs::write(&p, &b).unwrap();
            flipped += 1;
        }
    }
    assert!(flipped > 0, "corruption pass needs entries to corrupt");
    let corrupt_ctx = RunnerCtx::with_store(open_store());
    let corrupt = run_matrix_ctx_with(&corrupt_ctx, &h, &jobs, 2);
    let s = corrupt_ctx.store().unwrap().stats();
    assert_eq!(
        s.quarantined as usize, flipped,
        "every corrupted entry must be quarantined, none silently reused"
    );

    for (((o, c), ht), co) in off.iter().zip(&cold).zip(&hot).zip(&corrupt) {
        assert!(!o.failed() && !c.failed() && !ht.failed() && !co.failed());
        assert_eq!(o.report, c.report, "`{}`: off vs cold store", o.label);
        assert_eq!(o.report, ht.report, "`{}`: off vs hot store", o.label);
        assert_eq!(o.report, co.report, "`{}`: off vs corrupted store", o.label);
    }

    // No quarantined *jobs* anywhere: store damage is invisible above.
    assert!(off_ctx.quarantined_jobs().is_empty());
    assert!(corrupt_ctx.quarantined_jobs().is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}
