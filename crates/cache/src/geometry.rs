//! Cache geometry: set/way shape and set-index extraction.

use nuba_types::{LineAddr, LINE_BYTES};

/// The shape of a set-associative cache (line size fixed at 128 B,
/// Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    sets: usize,
    ways: usize,
}

impl CacheGeometry {
    /// A cache with `sets` sets of `ways` ways.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(sets: usize, ways: usize) -> CacheGeometry {
        assert!(sets > 0 && ways > 0, "cache must have sets and ways");
        CacheGeometry { sets, ways }
    }

    /// Geometry from a capacity in bytes and associativity.
    ///
    /// # Panics
    /// Panics if the capacity is not an exact multiple of
    /// `ways × LINE_BYTES`.
    pub fn from_capacity(bytes: usize, ways: usize) -> CacheGeometry {
        let set_bytes = ways * LINE_BYTES as usize;
        assert!(
            bytes.is_multiple_of(set_bytes),
            "capacity {bytes} not divisible by set size {set_bytes}"
        );
        CacheGeometry::new(bytes / set_bytes, ways)
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * LINE_BYTES as usize
    }

    /// The set a line maps to. Works for any set count (modulo indexing),
    /// matching GPGPU-sim's behaviour for non-power-of-two set counts
    /// such as the 48-set LLC slices.
    pub fn set_of(&self, line: LineAddr) -> usize {
        (line.index() % self.sets as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llc_slice_geometry() {
        let g = CacheGeometry::from_capacity(96 * 1024, 16);
        assert_eq!(g.sets(), 48);
        assert_eq!(g.capacity_bytes(), 96 * 1024);
    }

    #[test]
    fn l1_geometry() {
        let g = CacheGeometry::from_capacity(48 * 1024, 6);
        assert_eq!(g.sets(), 64);
    }

    #[test]
    fn set_mapping_covers_all_sets() {
        let g = CacheGeometry::new(48, 16);
        let mut seen = [false; 48];
        for i in 0..48u64 {
            seen[g.set_of(LineAddr(i * 128))] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn consecutive_lines_hit_distinct_sets() {
        let g = CacheGeometry::new(64, 6);
        let a = g.set_of(LineAddr(0));
        let b = g.set_of(LineAddr(128));
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn misaligned_capacity_panics() {
        let _ = CacheGeometry::from_capacity(1000, 3);
    }
}
