//! Cache geometry: set/way shape and set-index extraction.

use core::fmt;

use nuba_types::{LineAddr, LINE_BYTES};

/// Error returned by the fallible [`CacheGeometry`] constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeometryError(pub String);

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid cache geometry: {}", self.0)
    }
}

impl std::error::Error for GeometryError {}

/// The shape of a set-associative cache (line size fixed at 128 B,
/// Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    sets: usize,
    ways: usize,
}

impl CacheGeometry {
    /// A cache with `sets` sets of `ways` ways.
    ///
    /// # Panics
    /// Panics if either dimension is zero; use
    /// [`try_new`](CacheGeometry::try_new) on untrusted input.
    pub fn new(sets: usize, ways: usize) -> CacheGeometry {
        CacheGeometry::try_new(sets, ways).expect("cache must have sets and ways")
    }

    /// Fallible form of [`new`](CacheGeometry::new).
    ///
    /// # Errors
    /// Returns [`GeometryError`] if either dimension is zero.
    pub fn try_new(sets: usize, ways: usize) -> Result<CacheGeometry, GeometryError> {
        if sets == 0 || ways == 0 {
            return Err(GeometryError(format!(
                "cache must have sets and ways (got {sets} x {ways})"
            )));
        }
        Ok(CacheGeometry { sets, ways })
    }

    /// Geometry from a capacity in bytes and associativity.
    ///
    /// # Panics
    /// Panics if the capacity is not an exact multiple of
    /// `ways × LINE_BYTES`; use
    /// [`try_from_capacity`](CacheGeometry::try_from_capacity) on
    /// untrusted input.
    pub fn from_capacity(bytes: usize, ways: usize) -> CacheGeometry {
        match CacheGeometry::try_from_capacity(bytes, ways) {
            Ok(g) => g,
            Err(e) => panic!("{}", e.0),
        }
    }

    /// Fallible form of [`from_capacity`](CacheGeometry::from_capacity).
    ///
    /// # Errors
    /// Returns [`GeometryError`] if `ways` is zero or the capacity is
    /// not an exact multiple of `ways × LINE_BYTES`.
    pub fn try_from_capacity(bytes: usize, ways: usize) -> Result<CacheGeometry, GeometryError> {
        let set_bytes = ways * LINE_BYTES as usize;
        if set_bytes == 0 {
            return Err(GeometryError("cache must have ways".to_string()));
        }
        if !bytes.is_multiple_of(set_bytes) {
            return Err(GeometryError(format!(
                "capacity {bytes} not divisible by set size {set_bytes}"
            )));
        }
        CacheGeometry::try_new(bytes / set_bytes, ways)
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * LINE_BYTES as usize
    }

    /// The set a line maps to. Works for any set count (modulo indexing),
    /// matching GPGPU-sim's behaviour for non-power-of-two set counts
    /// such as the 48-set LLC slices.
    pub fn set_of(&self, line: LineAddr) -> usize {
        (line.index() % self.sets as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llc_slice_geometry() {
        let g = CacheGeometry::from_capacity(96 * 1024, 16);
        assert_eq!(g.sets(), 48);
        assert_eq!(g.capacity_bytes(), 96 * 1024);
    }

    #[test]
    fn l1_geometry() {
        let g = CacheGeometry::from_capacity(48 * 1024, 6);
        assert_eq!(g.sets(), 64);
    }

    #[test]
    fn set_mapping_covers_all_sets() {
        let g = CacheGeometry::new(48, 16);
        let mut seen = [false; 48];
        for i in 0..48u64 {
            seen[g.set_of(LineAddr(i * 128))] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn consecutive_lines_hit_distinct_sets() {
        let g = CacheGeometry::new(64, 6);
        let a = g.set_of(LineAddr(0));
        let b = g.set_of(LineAddr(128));
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn misaligned_capacity_panics() {
        let _ = CacheGeometry::from_capacity(1000, 3);
    }

    #[test]
    fn try_constructors_reject_without_panicking() {
        assert!(CacheGeometry::try_new(0, 16).is_err());
        assert!(CacheGeometry::try_new(48, 0).is_err());
        assert!(CacheGeometry::try_from_capacity(1000, 3).is_err());
        assert!(CacheGeometry::try_from_capacity(96 * 1024, 0).is_err());
        let g = CacheGeometry::try_from_capacity(96 * 1024, 16).unwrap();
        assert_eq!(g.sets(), 48);
        let e = CacheGeometry::try_new(0, 0).unwrap_err();
        assert!(e.to_string().contains("invalid cache geometry"));
    }
}
