#![warn(missing_docs)]

//! # nuba-cache
//!
//! Set-associative cache building blocks for the NUBA GPU simulator: a
//! tag array with pluggable replacement, an MSHR file with primary /
//! secondary miss merging, write-policy glue, and the dynamic set sampler
//! MDR uses for profiling (paper §5.1, after Qureshi et al. \[75\]).
//!
//! These primitives are assembled into the SM's L1 (write-through,
//! write-no-allocate) and the LLC slice (write-back, Fig. 5) in
//! `nuba-core`.
//!
//! ## Example
//!
//! ```
//! use nuba_cache::{CacheGeometry, TagArray};
//! use nuba_types::LineAddr;
//!
//! // One 96 KB LLC slice: 48 sets × 16 ways × 128 B.
//! let geo = CacheGeometry::new(48, 16);
//! let mut tags = TagArray::new(geo);
//! let line = LineAddr::containing(0x8000);
//! assert!(!tags.probe_and_touch(line, 0));
//! tags.insert(line, false, false, 0);
//! assert!(tags.probe_and_touch(line, 1));
//! ```

pub mod geometry;
pub mod mshr;
pub mod sampler;
pub mod tag;

pub use geometry::{CacheGeometry, GeometryError};
pub use mshr::{MshrFile, MshrOutcome};
pub use sampler::{SamplerEstimate, SetSampler};
pub use tag::{Eviction, ReplacementKind, TagArray};
