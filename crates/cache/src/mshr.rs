//! Miss Status Holding Registers with primary/secondary miss merging.

use std::collections::HashMap;

use nuba_types::LineAddr;

/// Outcome of trying to allocate an MSHR for a missing line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// First miss on this line: the caller must send a fill request
    /// downstream.
    Primary,
    /// The line is already being fetched: the waiter was merged, no new
    /// downstream request is needed.
    Secondary,
    /// No MSHR entry available — the requester must stall.
    NoEntry,
    /// The entry exists but its merge list is full — stall.
    MergeFull,
}

/// An MSHR file tracking outstanding line fills.
///
/// `W` is the waiter payload returned when the fill completes (typically
/// the original request so the reply can be routed).
#[derive(Debug, Clone)]
pub struct MshrFile<W> {
    entries: HashMap<LineAddr, Vec<W>>,
    max_entries: usize,
    max_merges: usize,
    peak_occupancy: usize,
    /// Recycled waiter vectors (see [`MshrFile::recycle`]): keeps the
    /// allocate/complete churn on the per-cycle path allocation-free
    /// once warmed up.
    free: Vec<Vec<W>>,
}

impl<W> MshrFile<W> {
    /// An MSHR file with `max_entries` outstanding lines and up to
    /// `max_merges` waiters per line.
    ///
    /// # Panics
    /// Panics if either limit is zero.
    pub fn new(max_entries: usize, max_merges: usize) -> MshrFile<W> {
        assert!(
            max_entries > 0 && max_merges > 0,
            "mshr limits must be non-zero"
        );
        MshrFile {
            entries: HashMap::with_capacity(max_entries),
            max_entries,
            max_merges,
            peak_occupancy: 0,
            // Pre-size every pooled waiter list for a full merge chain so
            // allocate()/recycle() never grow a vector on the hot path.
            free: (0..max_entries)
                .map(|_| Vec::with_capacity(max_merges))
                .collect(),
        }
    }

    /// Try to record a miss on `line` with `waiter` to wake on fill.
    ///
    /// On [`MshrOutcome::NoEntry`] / [`MshrOutcome::MergeFull`] the waiter
    /// is handed back through the `Err` side so callers keep ownership.
    pub fn allocate(&mut self, line: LineAddr, waiter: W) -> Result<MshrOutcome, (MshrOutcome, W)> {
        if let Some(waiters) = self.entries.get_mut(&line) {
            if waiters.len() >= self.max_merges {
                return Err((MshrOutcome::MergeFull, waiter));
            }
            waiters.push(waiter);
            return Ok(MshrOutcome::Secondary);
        }
        if self.entries.len() >= self.max_entries {
            return Err((MshrOutcome::NoEntry, waiter));
        }
        let mut waiters = self.free.pop().unwrap_or_default();
        waiters.push(waiter);
        self.entries.insert(line, waiters);
        self.peak_occupancy = self.peak_occupancy.max(self.entries.len());
        Ok(MshrOutcome::Primary)
    }

    /// Whether a fill for `line` is outstanding.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.entries.contains_key(&line)
    }

    /// Whether a secondary miss on `line` can merge (entry exists and its
    /// merge list has room).
    pub fn can_merge(&self, line: LineAddr) -> bool {
        self.entries
            .get(&line)
            .is_some_and(|w| w.len() < self.max_merges)
    }

    /// Complete the fill for `line`, returning all merged waiters
    /// (empty if no entry existed).
    pub fn complete(&mut self, line: LineAddr) -> Vec<W> {
        self.entries.remove(&line).unwrap_or_default()
    }

    /// Hand a drained waiter vector (from [`MshrFile::complete`]) back
    /// for reuse by a later primary miss. The pool is bounded by the
    /// entry limit, matching the file's steady-state needs.
    pub fn recycle(&mut self, mut waiters: Vec<W>) {
        if self.free.len() < self.max_entries {
            waiters.clear();
            if waiters.capacity() < self.max_merges {
                waiters.reserve(self.max_merges);
            }
            self.free.push(waiters);
        }
    }

    /// Outstanding line count.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Whether a new primary miss can be accepted.
    pub fn has_free_entry(&self) -> bool {
        self.entries.len() < self.max_entries
    }

    /// Highest occupancy observed (for reports).
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Read the high-water mark and re-arm it at the current occupancy,
    /// so the next read reports the peak *since this call* (telemetry
    /// windows sample MSHR pressure per interval, not per run).
    pub fn take_peak(&mut self) -> usize {
        let peak = self.peak_occupancy;
        self.peak_occupancy = self.entries.len();
        peak
    }

    /// Total waiters across all entries.
    pub fn total_waiters(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }
}

impl<W: StateValue> SaveState for MshrFile<W> {
    fn save(&self, w: &mut StateWriter) {
        save_map(w, &self.entries);
        self.peak_occupancy.put(w);
        // The free pool is rebuilt on restore (its contents are recycled
        // empties); only the outstanding entries and the peak travel.
    }

    fn restore(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        restore_map(r, &mut self.entries)?;
        if self.entries.len() > self.max_entries {
            return Err(StateError::LengthMismatch {
                what: "MSHR entries exceed file size",
                expected: self.max_entries,
                found: self.entries.len(),
            });
        }
        self.peak_occupancy = usize::get(r)?;
        // Re-balance the recycled-vector pool so pool + live entries
        // again cover the whole file, as in steady state.
        let want_free = self.max_entries - self.entries.len();
        self.free.truncate(want_free);
        while self.free.len() < want_free {
            self.free.push(Vec::with_capacity(self.max_merges));
        }
        Ok(())
    }
}

use nuba_types::state::{
    restore_map, save_map, SaveState, StateError, StateReader, StateValue, StateWriter,
};

#[cfg(test)]
mod tests {
    use super::*;

    fn line(i: u64) -> LineAddr {
        LineAddr(i * 128)
    }

    #[test]
    fn primary_then_secondary() {
        let mut m = MshrFile::new(4, 4);
        assert_eq!(m.allocate(line(0), "a"), Ok(MshrOutcome::Primary));
        assert_eq!(m.allocate(line(0), "b"), Ok(MshrOutcome::Secondary));
        assert!(m.contains(line(0)));
        let waiters = m.complete(line(0));
        assert_eq!(waiters, vec!["a", "b"]);
        assert!(!m.contains(line(0)));
    }

    #[test]
    fn entry_exhaustion_stalls() {
        let mut m = MshrFile::new(2, 4);
        m.allocate(line(0), 0).unwrap();
        m.allocate(line(1), 1).unwrap();
        assert!(!m.has_free_entry());
        let (outcome, waiter) = m.allocate(line(2), 2).unwrap_err();
        assert_eq!(outcome, MshrOutcome::NoEntry);
        assert_eq!(waiter, 2);
        // Secondary merges still work when entries are exhausted.
        assert_eq!(m.allocate(line(0), 3), Ok(MshrOutcome::Secondary));
    }

    #[test]
    fn merge_list_exhaustion() {
        let mut m = MshrFile::new(4, 2);
        m.allocate(line(0), 0).unwrap();
        m.allocate(line(0), 1).unwrap();
        let (outcome, _) = m.allocate(line(0), 2).unwrap_err();
        assert_eq!(outcome, MshrOutcome::MergeFull);
        assert_eq!(m.total_waiters(), 2);
    }

    #[test]
    fn complete_unknown_line_is_empty() {
        let mut m: MshrFile<u8> = MshrFile::new(2, 2);
        assert!(m.complete(line(9)).is_empty());
    }

    #[test]
    fn peak_occupancy_tracks_high_water() {
        let mut m = MshrFile::new(8, 2);
        for i in 0..5 {
            m.allocate(line(i), i).unwrap();
        }
        for i in 0..5 {
            m.complete(line(i));
        }
        assert_eq!(m.occupancy(), 0);
        assert_eq!(m.peak_occupancy(), 5);
    }

    #[test]
    fn take_peak_rearms_at_current_occupancy() {
        let mut m = MshrFile::new(8, 2);
        for i in 0..5 {
            m.allocate(line(i), i).unwrap();
        }
        for i in 0..4 {
            m.complete(line(i));
        }
        assert_eq!(m.take_peak(), 5);
        // Re-armed at the single outstanding entry, not zero.
        assert_eq!(m.peak_occupancy(), 1);
        m.allocate(line(9), 9).unwrap();
        assert_eq!(m.take_peak(), 2);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_limits_panic() {
        let _: MshrFile<u8> = MshrFile::new(0, 1);
    }
}
