//! Dynamic set sampling for the MDR profiler (paper §5.1, \[75\]).
//!
//! MDR must know, each epoch, the LLC hit rate *with* and *without*
//! replication while the slice only runs one of the two policies. The
//! hardware keeps two shadow tag directories over a small sample of sets
//! (8 sets × 16 ways × 24-bit tags = 384 B in the paper):
//!
//! - the **no-replication shadow** sees only accesses to lines homed at
//!   this slice (what the slice would cache under no replication), and
//! - the **full-replication shadow** additionally sees the local SMs'
//!   read-only accesses to *remote* lines (what the slice would cache if
//!   every read-only shared line were replicated locally).
//!
//! Hit/miss counts on the shadows estimate both policies' hit rates.

use nuba_types::LineAddr;

use crate::geometry::CacheGeometry;
use crate::tag::TagArray;

/// Hit-rate estimates produced by the sampler for one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplerEstimate {
    /// Estimated LLC hit rate under no replication.
    pub hit_rate_no_rep: f64,
    /// Estimated LLC hit rate under full replication.
    pub hit_rate_full_rep: f64,
    /// Sampled accesses feeding the no-replication estimate.
    pub samples_no_rep: u64,
    /// Sampled accesses feeding the full-replication estimate.
    pub samples_full_rep: u64,
}

/// A two-policy shadow-directory set sampler for one LLC slice.
#[derive(Debug, Clone)]
pub struct SetSampler {
    geo: CacheGeometry,
    stride: usize,
    sample_sets: usize,
    shadow_no_rep: TagArray,
    shadow_full_rep: TagArray,
    hits_no_rep: u64,
    accesses_no_rep: u64,
    hits_full_rep: u64,
    accesses_full_rep: u64,
    now: u64,
}

impl SetSampler {
    /// A sampler over `sample_sets` of the slice's sets.
    ///
    /// # Panics
    /// Panics if `sample_sets` is zero or exceeds the set count.
    pub fn new(geo: CacheGeometry, sample_sets: usize) -> SetSampler {
        assert!(
            sample_sets > 0 && sample_sets <= geo.sets(),
            "sample_sets must be in 1..=sets"
        );
        SetSampler {
            geo,
            stride: (geo.sets() / sample_sets).max(1),
            sample_sets,
            shadow_no_rep: TagArray::new(geo),
            shadow_full_rep: TagArray::new(geo),
            hits_no_rep: 0,
            accesses_no_rep: 0,
            hits_full_rep: 0,
            accesses_full_rep: 0,
            now: 0,
        }
    }

    /// Whether `line` falls in a sampled set.
    ///
    /// Exactly `sample_sets` sets are sampled: multiples of the stride,
    /// capped so a non-dividing `sample_sets` (where `sets / sample_sets`
    /// rounds down and extra multiples fit) never over-samples.
    pub fn sampled(&self, line: LineAddr) -> bool {
        let set = self.geo.set_of(line);
        set.is_multiple_of(self.stride) && set / self.stride < self.sample_sets
    }

    /// Observe one access that reached (or would reach) this slice.
    ///
    /// * `is_home`: the line is homed at this slice (reaches the slice
    ///   under both policies).
    /// * `is_replica_candidate`: a local SM's read-only access to a
    ///   *remote* line (reaches this slice only under full replication).
    ///
    /// Exactly one of the two should normally be true; an access that is
    /// neither (e.g. a local SM's read-write remote access) never touches
    /// this slice under either policy and is ignored.
    pub fn observe(&mut self, line: LineAddr, is_home: bool, is_replica_candidate: bool) {
        if !self.sampled(line) {
            return;
        }
        self.now += 1;
        let now = self.now;
        if is_home {
            self.accesses_no_rep += 1;
            if self.shadow_no_rep.probe_and_touch(line, now) {
                self.hits_no_rep += 1;
            } else {
                self.shadow_no_rep.insert(line, false, false, now);
            }
        }
        if is_home || is_replica_candidate {
            self.accesses_full_rep += 1;
            if self.shadow_full_rep.probe_and_touch(line, now) {
                self.hits_full_rep += 1;
            } else {
                self.shadow_full_rep
                    .insert(line, false, is_replica_candidate, now);
            }
        }
    }

    /// Produce the epoch's estimates. Sparse samples fall back to a
    /// neutral 50% hit rate (cold epoch).
    pub fn estimate(&self) -> SamplerEstimate {
        let rate = |hits: u64, total: u64| {
            if total < 8 {
                0.5
            } else {
                hits as f64 / total as f64
            }
        };
        SamplerEstimate {
            hit_rate_no_rep: rate(self.hits_no_rep, self.accesses_no_rep),
            hit_rate_full_rep: rate(self.hits_full_rep, self.accesses_full_rep),
            samples_no_rep: self.accesses_no_rep,
            samples_full_rep: self.accesses_full_rep,
        }
    }

    /// Clear the epoch counters (shadow directories persist so estimates
    /// stay warm across epochs, as set-sampling hardware would).
    pub fn roll_epoch(&mut self) {
        self.hits_no_rep = 0;
        self.accesses_no_rep = 0;
        self.hits_full_rep = 0;
        self.accesses_full_rep = 0;
    }
}

impl SaveState for SetSampler {
    fn save(&self, w: &mut StateWriter) {
        self.shadow_no_rep.save(w);
        self.shadow_full_rep.save(w);
        self.hits_no_rep.put(w);
        self.accesses_no_rep.put(w);
        self.hits_full_rep.put(w);
        self.accesses_full_rep.put(w);
        self.now.put(w);
    }

    fn restore(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.shadow_no_rep.restore(r)?;
        self.shadow_full_rep.restore(r)?;
        self.hits_no_rep = u64::get(r)?;
        self.accesses_no_rep = u64::get(r)?;
        self.hits_full_rep = u64::get(r)?;
        self.accesses_full_rep = u64::get(r)?;
        self.now = u64::get(r)?;
        Ok(())
    }
}

use nuba_types::state::{SaveState, StateError, StateReader, StateValue, StateWriter};

#[cfg(test)]
mod tests {
    use super::*;

    fn sampler() -> SetSampler {
        SetSampler::new(CacheGeometry::new(48, 16), 8)
    }

    /// A line that maps to sampled set 0.
    fn sampled_line(i: u64) -> LineAddr {
        LineAddr(i * 48 * 128) // every 48 lines wraps to set 0
    }

    #[test]
    fn only_sampled_sets_counted() {
        let mut s = sampler();
        // Set 1 is not sampled (stride 6).
        s.observe(LineAddr(128), true, false);
        assert_eq!(s.estimate().samples_no_rep, 0);
        s.observe(sampled_line(0), true, false);
        assert_eq!(s.estimate().samples_no_rep, 1);
    }

    #[test]
    fn rehitting_home_lines_raises_both_estimates() {
        let mut s = sampler();
        for _ in 0..4 {
            for i in 0..4 {
                s.observe(sampled_line(i), true, false);
            }
        }
        let e = s.estimate();
        // 4 cold misses, 12 hits on both shadows.
        assert!((e.hit_rate_no_rep - 0.75).abs() < 1e-12);
        assert!((e.hit_rate_full_rep - 0.75).abs() < 1e-12);
    }

    #[test]
    fn replica_traffic_thrashes_full_rep_shadow() {
        let mut s = sampler();
        // Working set of home lines that fits: 8 lines in a 16-way set.
        // Plus a huge replica stream: under full replication the set
        // thrashes; under no replication it stays hot.
        for round in 0..6 {
            for i in 0..8 {
                s.observe(sampled_line(i), true, false);
            }
            for j in 0..32 {
                s.observe(sampled_line(100 + round * 32 + j), false, true);
            }
        }
        let e = s.estimate();
        assert!(
            e.hit_rate_no_rep > e.hit_rate_full_rep + 0.2,
            "no-rep {} vs full-rep {}",
            e.hit_rate_no_rep,
            e.hit_rate_full_rep
        );
    }

    #[test]
    fn small_replica_set_raises_full_rep_hit_rate() {
        let mut s = sampler();
        // A small, hot read-only remote set: full replication hits, the
        // no-rep shadow never even sees the traffic.
        for _ in 0..10 {
            for i in 0..4 {
                s.observe(sampled_line(200 + i), false, true);
            }
        }
        let e = s.estimate();
        assert!(e.hit_rate_full_rep > 0.8);
        assert_eq!(e.samples_no_rep, 0);
        assert_eq!(e.hit_rate_no_rep, 0.5); // cold fallback
    }

    #[test]
    fn roll_epoch_resets_counts_keeps_warmth() {
        let mut s = sampler();
        for i in 0..4 {
            s.observe(sampled_line(i), true, false);
        }
        s.roll_epoch();
        assert_eq!(s.estimate().samples_no_rep, 0);
        // Shadow stays warm: immediate hits in the new epoch.
        for i in 0..4 {
            s.observe(sampled_line(i), true, false);
        }
        let e = s.estimate();
        assert_eq!(e.samples_no_rep, 4);
        assert_eq!(s.estimate().hit_rate_no_rep, 0.5); // <8 samples fallback
        for i in 0..4 {
            s.observe(sampled_line(i), true, false);
        }
        assert_eq!(s.estimate().hit_rate_no_rep, 1.0);
    }

    #[test]
    #[should_panic(expected = "sample_sets")]
    fn zero_samples_panics() {
        let _ = SetSampler::new(CacheGeometry::new(48, 16), 0);
    }

    #[test]
    fn non_dividing_sample_count_covers_exactly() {
        // 48 sets / 7 samples → stride 6; multiples of 6 in 0..48 are
        // eight sets, but only the first seven may be sampled.
        let geo = CacheGeometry::new(48, 16);
        let s = SetSampler::new(geo, 7);
        let sampled: Vec<usize> = (0..geo.sets())
            .filter(|&set| s.sampled(LineAddr(set as u64 * 128)))
            .collect();
        assert_eq!(sampled, vec![0, 6, 12, 18, 24, 30, 36]);
    }

    #[test]
    fn oversized_sample_count_covers_every_set() {
        // sample_sets == sets → stride 1, every set sampled, none more.
        let geo = CacheGeometry::new(48, 16);
        let s = SetSampler::new(geo, 48);
        let count = (0..geo.sets())
            .filter(|&set| s.sampled(LineAddr(set as u64 * 128)))
            .count();
        assert_eq!(count, 48);
    }
}
