//! Tag array with LRU (default) or random replacement.

use nuba_types::LineAddr;

use crate::geometry::CacheGeometry;

/// Replacement policy for a [`TagArray`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplacementKind {
    /// Least-recently-used (Table 1 default for all caches/TLBs).
    #[default]
    Lru,
    /// Pseudo-random victim selection (ablation).
    Random,
}

/// A line evicted by an insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// The evicted line address.
    pub line: LineAddr,
    /// Whether it was dirty (needs a write-back under write-back policy).
    pub dirty: bool,
    /// Whether it was a replicated read-only line (MDR accounting).
    pub replica: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    valid: bool,
    line: LineAddr,
    dirty: bool,
    /// Marks replicated read-only lines cached away from their home slice.
    replica: bool,
    last_use: u64,
}

/// A set-associative tag array.
///
/// Pure bookkeeping — latency, MSHRs and bandwidth live in the component
/// that owns the array.
#[derive(Debug, Clone)]
pub struct TagArray {
    geo: CacheGeometry,
    ways: Vec<Way>,
    replacement: ReplacementKind,
    stamp: u64,
    rng_state: u64,
}

impl TagArray {
    /// A tag array with LRU replacement.
    pub fn new(geo: CacheGeometry) -> TagArray {
        TagArray::with_replacement(geo, ReplacementKind::Lru)
    }

    /// A tag array with an explicit replacement policy.
    pub fn with_replacement(geo: CacheGeometry, replacement: ReplacementKind) -> TagArray {
        TagArray {
            geo,
            ways: vec![Way::default(); geo.sets() * geo.ways()],
            replacement,
            stamp: 0,
            rng_state: 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// The geometry of this array.
    pub fn geometry(&self) -> CacheGeometry {
        self.geo
    }

    fn set_slice(&mut self, set: usize) -> &mut [Way] {
        let w = self.geo.ways();
        &mut self.ways[set * w..(set + 1) * w]
    }

    /// Probe for `line`; on a hit, update recency and return `true`.
    pub fn probe_and_touch(&mut self, line: LineAddr, _now: u64) -> bool {
        self.stamp += 1;
        let stamp = self.stamp;
        let set = self.geo.set_of(line);
        for way in self.set_slice(set) {
            if way.valid && way.line == line {
                way.last_use = stamp;
                return true;
            }
        }
        false
    }

    /// Probe without updating recency (used by profilers).
    pub fn probe(&self, line: LineAddr) -> bool {
        let set = self.geo.set_of(line);
        let w = self.geo.ways();
        self.ways[set * w..(set + 1) * w]
            .iter()
            .any(|way| way.valid && way.line == line)
    }

    /// Mark a resident line dirty (write hit under write-back policy).
    /// Returns `false` if the line is not resident.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        let set = self.geo.set_of(line);
        for way in self.set_slice(set) {
            if way.valid && way.line == line {
                way.dirty = true;
                return true;
            }
        }
        false
    }

    /// Insert `line`, evicting the replacement victim if the set is full.
    ///
    /// Inserting a line that is already resident just refreshes its
    /// recency/flags and returns `None`.
    pub fn insert(
        &mut self,
        line: LineAddr,
        dirty: bool,
        replica: bool,
        _now: u64,
    ) -> Option<Eviction> {
        self.stamp += 1;
        let stamp = self.stamp;
        let set = self.geo.set_of(line);
        let replacement = self.replacement;
        // Already resident?
        for way in self.set_slice(set) {
            if way.valid && way.line == line {
                way.last_use = stamp;
                way.dirty |= dirty;
                way.replica &= replica;
                return None;
            }
        }
        // Free way?
        for way in self.set_slice(set) {
            if !way.valid {
                *way = Way {
                    valid: true,
                    line,
                    dirty,
                    replica,
                    last_use: stamp,
                };
                return None;
            }
        }
        // Evict a victim.
        let victim_idx = match replacement {
            ReplacementKind::Lru => {
                let set_ways = self.set_slice(set);
                let mut best = 0;
                for (i, way) in set_ways.iter().enumerate() {
                    if way.last_use < set_ways[best].last_use {
                        best = i;
                    }
                }
                best
            }
            ReplacementKind::Random => {
                self.rng_state ^= self.rng_state << 13;
                self.rng_state ^= self.rng_state >> 7;
                self.rng_state ^= self.rng_state << 17;
                (self.rng_state % self.geo.ways() as u64) as usize
            }
        };
        let set_ways = self.set_slice(set);
        let victim = set_ways[victim_idx];
        set_ways[victim_idx] = Way {
            valid: true,
            line,
            dirty,
            replica,
            last_use: stamp,
        };
        Some(Eviction {
            line: victim.line,
            dirty: victim.dirty,
            replica: victim.replica,
        })
    }

    /// Invalidate `line` if resident; returns its dirty state.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let set = self.geo.set_of(line);
        for way in self.set_slice(set) {
            if way.valid && way.line == line {
                way.valid = false;
                return Some(way.dirty);
            }
        }
        None
    }

    /// Invalidate everything, returning the dirty lines (kernel-boundary
    /// LLC flush, §5.3).
    pub fn flush(&mut self) -> Vec<LineAddr> {
        let mut dirty = Vec::new();
        for way in &mut self.ways {
            if way.valid {
                if way.dirty {
                    dirty.push(way.line);
                }
                way.valid = false;
            }
        }
        dirty
    }

    /// Number of valid lines.
    pub fn occupancy(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }

    /// Number of valid replica lines (MDR accounting).
    pub fn replica_count(&self) -> usize {
        self.ways.iter().filter(|w| w.valid && w.replica).count()
    }
}

impl StateValue for Way {
    fn put(&self, w: &mut StateWriter) {
        self.valid.put(w);
        self.line.put(w);
        self.dirty.put(w);
        self.replica.put(w);
        self.last_use.put(w);
    }

    fn get(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        Ok(Way {
            valid: bool::get(r)?,
            line: LineAddr::get(r)?,
            dirty: bool::get(r)?,
            replica: bool::get(r)?,
            last_use: u64::get(r)?,
        })
    }
}

impl SaveState for TagArray {
    fn save(&self, w: &mut StateWriter) {
        // Geometry and policy are configuration; ways, the recency stamp
        // and the random-replacement state are the dynamic contents.
        save_items(w, &self.ways);
        self.stamp.put(w);
        self.rng_state.put(w);
    }

    fn restore(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        restore_items(r, "TagArray ways", &mut self.ways)?;
        self.stamp = u64::get(r)?;
        self.rng_state = u64::get(r)?;
        Ok(())
    }
}

use nuba_types::state::{
    restore_items, save_items, SaveState, StateError, StateReader, StateValue, StateWriter,
};

#[cfg(test)]
mod tests {
    use super::*;

    fn line(i: u64) -> LineAddr {
        LineAddr(i * 128)
    }

    #[test]
    fn miss_then_hit() {
        let mut t = TagArray::new(CacheGeometry::new(4, 2));
        assert!(!t.probe_and_touch(line(0), 0));
        assert_eq!(t.insert(line(0), false, false, 0), None);
        assert!(t.probe_and_touch(line(0), 1));
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 1 set × 2 ways; lines 0, 4, 8 collide (4-set geometry? use 1 set).
        let mut t = TagArray::new(CacheGeometry::new(1, 2));
        t.insert(line(0), false, false, 0);
        t.insert(line(1), false, false, 1);
        t.probe_and_touch(line(0), 2); // 0 is now MRU
        let ev = t.insert(line(2), false, false, 3).unwrap();
        assert_eq!(ev.line, line(1));
        assert!(t.probe(line(0)) && t.probe(line(2)) && !t.probe(line(1)));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut t = TagArray::new(CacheGeometry::new(1, 1));
        t.insert(line(0), true, false, 0);
        let ev = t.insert(line(1), false, false, 1).unwrap();
        assert!(ev.dirty);
    }

    #[test]
    fn mark_dirty_on_hit() {
        let mut t = TagArray::new(CacheGeometry::new(2, 2));
        t.insert(line(0), false, false, 0);
        assert!(t.mark_dirty(line(0)));
        assert!(!t.mark_dirty(line(5)));
        let dirty = t.flush();
        assert_eq!(dirty, vec![line(0)]);
    }

    #[test]
    fn reinsert_refreshes_instead_of_evicting() {
        let mut t = TagArray::new(CacheGeometry::new(1, 2));
        t.insert(line(0), false, false, 0);
        t.insert(line(1), false, false, 1);
        assert_eq!(t.insert(line(0), false, false, 2), None);
        assert_eq!(t.occupancy(), 2);
    }

    #[test]
    fn flush_empties_and_reports_dirty_only() {
        let mut t = TagArray::new(CacheGeometry::new(2, 2));
        t.insert(line(0), true, false, 0);
        t.insert(line(1), false, false, 0);
        let dirty = t.flush();
        assert_eq!(dirty, vec![line(0)]);
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn invalidate_returns_dirty_state() {
        let mut t = TagArray::new(CacheGeometry::new(2, 2));
        t.insert(line(0), true, false, 0);
        assert_eq!(t.invalidate(line(0)), Some(true));
        assert_eq!(t.invalidate(line(0)), None);
    }

    #[test]
    fn replica_tracking() {
        let mut t = TagArray::new(CacheGeometry::new(1, 2));
        t.insert(line(0), false, true, 0);
        assert_eq!(t.replica_count(), 1);
        let ev = t.insert(line(1), false, false, 1);
        assert!(ev.is_none());
        let ev = t.insert(line(2), false, false, 2).unwrap();
        // LRU victim is the replica line 0.
        assert!(ev.replica);
        assert_eq!(t.replica_count(), 0);
    }

    #[test]
    fn random_replacement_stays_within_set() {
        let mut t = TagArray::with_replacement(CacheGeometry::new(2, 2), ReplacementKind::Random);
        for i in 0..100 {
            t.insert(line(i * 2), false, false, i); // all even lines → set 0
        }
        // Set 1 must remain empty.
        assert!(t.occupancy() <= 2);
    }
}
