//! Property tests: the tag array against a reference model, and MSHR
//! waiter conservation.

use std::collections::HashMap;

use proptest::prelude::*;

use nuba_cache::{CacheGeometry, MshrFile, TagArray};
use nuba_types::LineAddr;

proptest! {
    /// The tag array must agree with an infinite-capacity reference on
    /// "never seen" lines, and occupancy may never exceed capacity.
    #[test]
    fn tag_array_against_reference(
        accesses in proptest::collection::vec((0u64..64, any::<bool>()), 1..300),
        sets in 1usize..8,
        ways in 1usize..8,
    ) {
        let geo = CacheGeometry::new(sets, ways);
        let mut tags = TagArray::new(geo);
        let mut ever_inserted: HashMap<u64, bool> = HashMap::new();
        for (now, (line_idx, dirty)) in accesses.iter().enumerate() {
            let line = LineAddr(line_idx * 128);
            let hit = tags.probe_and_touch(line, now as u64);
            if !ever_inserted.contains_key(line_idx) {
                prop_assert!(!hit, "hit on a never-inserted line");
            }
            if !hit {
                tags.insert(line, *dirty, false, now as u64);
                ever_inserted.insert(*line_idx, *dirty);
            }
            prop_assert!(tags.occupancy() <= sets * ways);
        }
        // Everything the cache still holds was inserted at some point.
        let dirty_lines = {
            let mut t = tags.clone();
            t.flush()
        };
        for l in dirty_lines {
            prop_assert!(ever_inserted.contains_key(&(l.0 / 128)));
        }
    }

    /// MRU line of each set survives a subsequent single insert.
    #[test]
    fn lru_protects_most_recent(ways in 2usize..8, churn in 1u64..32) {
        let geo = CacheGeometry::new(1, ways);
        let mut tags = TagArray::new(geo);
        let mut now = 0u64;
        // Fill the set.
        for i in 0..ways as u64 {
            tags.insert(LineAddr(i * 128), false, false, { now += 1; now });
        }
        // Touch line 0 making it MRU, then insert a new line.
        tags.probe_and_touch(LineAddr(0), { now += 1; now });
        tags.insert(LineAddr((ways as u64 + churn) * 128), false, false, { now += 1; now });
        prop_assert!(tags.probe(LineAddr(0)), "MRU line must survive one eviction");
    }

    /// Waiters in = waiters out, across arbitrary allocate/complete
    /// interleavings.
    #[test]
    fn mshr_conserves_waiters(
        ops in proptest::collection::vec((0u64..8, any::<bool>()), 1..200),
        entries in 1usize..8,
        merges in 1usize..8,
    ) {
        let mut mshr: MshrFile<u32> = MshrFile::new(entries, merges);
        let mut accepted = 0u64;
        let mut returned = 0u64;
        let mut token = 0u32;
        for (line_idx, complete) in ops {
            let line = LineAddr(line_idx * 128);
            if complete {
                returned += mshr.complete(line).len() as u64;
            } else {
                token += 1;
                if mshr.allocate(line, token).is_ok() {
                    accepted += 1;
                }
            }
            prop_assert!(mshr.occupancy() <= entries);
            prop_assert_eq!(
                mshr.total_waiters() as u64,
                accepted - returned,
                "waiters must be conserved"
            );
        }
        // Drain.
        for line_idx in 0u64..8 {
            returned += mshr.complete(LineAddr(line_idx * 128)).len() as u64;
        }
        prop_assert_eq!(accepted, returned);
        prop_assert_eq!(mshr.occupancy(), 0);
    }
}
