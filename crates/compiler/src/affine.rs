//! Symbolic affine address expressions for global-memory accesses.
//!
//! Every `ld/st/atom.global` address is abstracted as
//!
//! ```text
//! Σ cᵖ·param(p)  +  c_t·tid  +  Σ c_h·iter(h)  +  konst
//! ```
//!
//! where `iter(h)` is the iteration counter of the natural loop headed
//! at block `h` (value range `[0, trip)` when the trip count is known).
//! Addresses that escape this form — pointer chases, data-dependent
//! gathers, anything defined by a global load — degrade to *unknown*
//! and downstream consumers ([`crate::profile`]) clamp them to the
//! whole parameter region.
//!
//! The evaluation is a single reverse-post-order pass over the CFG with
//! back edges removed. Loop-carried state is handled by *pre-binding*:
//! at a loop header, every register defined in the loop body is killed,
//! then each basic induction variable `r` with an affine pre-header
//! value `V` is re-bound to `V + step·iter(h)`. Replaying the body then
//! yields iteration-generic forms (an access after the increment reads
//! `V + step·iter + step`, still covered by `iter ∈ [0, trip)`-style
//! range evaluation since the one-past value equals the next
//! iteration's pre-increment value). Joins intersect environments:
//! a register bound to different forms on two forward edges — or bound
//! on only one — becomes unknown. Irreducible CFGs make every access
//! unknown.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{Instr, Kernel, MemBase, Operand};
use crate::cfg::Cfg;
use crate::induction::{analyze_induction, InductionSummary};

/// A symbolic affine address (see module docs). All coefficient
/// arithmetic is checked; overflow degrades to unknown.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AffineForm {
    /// Parameter-base coefficients (`param name → coefficient`).
    /// An address is *anchored* when exactly one param has coefficient 1.
    pub params: BTreeMap<String, i64>,
    /// Coefficient of the thread id.
    pub tid: i64,
    /// Coefficients of loop iteration counters, keyed by header block.
    pub iters: BTreeMap<usize, i64>,
    /// Constant byte offset.
    pub konst: i64,
}

impl AffineForm {
    /// The constant `k`.
    pub fn konst(k: i64) -> AffineForm {
        AffineForm {
            konst: k,
            ..AffineForm::default()
        }
    }

    /// The base address of parameter `p`.
    pub fn param(p: &str) -> AffineForm {
        AffineForm {
            params: BTreeMap::from([(p.to_string(), 1)]),
            ..AffineForm::default()
        }
    }

    /// The thread id.
    pub fn tid() -> AffineForm {
        AffineForm {
            tid: 1,
            ..AffineForm::default()
        }
    }

    /// The single anchoring parameter: exactly one param term, with
    /// coefficient 1.
    pub fn anchor(&self) -> Option<&str> {
        let mut it = self.params.iter();
        match (it.next(), it.next()) {
            (Some((p, 1)), None) => Some(p.as_str()),
            _ => None,
        }
    }

    fn merge<F: Fn(i64, i64) -> Option<i64>>(
        a: &BTreeMap<String, i64>,
        b: &BTreeMap<String, i64>,
        f: &F,
    ) -> Option<BTreeMap<String, i64>> {
        let mut out = a.clone();
        for (k, &v) in b {
            let cur = out.entry(k.clone()).or_insert(0);
            *cur = f(*cur, v)?;
        }
        out.retain(|_, &mut v| v != 0);
        Some(out)
    }

    fn merge_iters<F: Fn(i64, i64) -> Option<i64>>(
        a: &BTreeMap<usize, i64>,
        b: &BTreeMap<usize, i64>,
        f: &F,
    ) -> Option<BTreeMap<usize, i64>> {
        let mut out = a.clone();
        for (&k, &v) in b {
            let cur = out.entry(k).or_insert(0);
            *cur = f(*cur, v)?;
        }
        out.retain(|_, &mut v| v != 0);
        Some(out)
    }

    /// `self + other`, `None` on coefficient overflow.
    pub fn add(&self, other: &AffineForm) -> Option<AffineForm> {
        Some(AffineForm {
            params: Self::merge(&self.params, &other.params, &i64::checked_add)?,
            tid: self.tid.checked_add(other.tid)?,
            iters: Self::merge_iters(&self.iters, &other.iters, &i64::checked_add)?,
            konst: self.konst.checked_add(other.konst)?,
        })
    }

    /// `self - other`, `None` on coefficient overflow.
    pub fn sub(&self, other: &AffineForm) -> Option<AffineForm> {
        Some(AffineForm {
            params: Self::merge(&self.params, &other.params, &i64::checked_sub)?,
            tid: self.tid.checked_sub(other.tid)?,
            iters: Self::merge_iters(&self.iters, &other.iters, &i64::checked_sub)?,
            konst: self.konst.checked_sub(other.konst)?,
        })
    }

    /// `self · k`, `None` on coefficient overflow.
    pub fn scale(&self, k: i64) -> Option<AffineForm> {
        let mut params = BTreeMap::new();
        for (p, &c) in &self.params {
            let c = c.checked_mul(k)?;
            if c != 0 {
                params.insert(p.clone(), c);
            }
        }
        let mut iters = BTreeMap::new();
        for (&h, &c) in &self.iters {
            let c = c.checked_mul(k)?;
            if c != 0 {
                iters.insert(h, c);
            }
        }
        Some(AffineForm {
            params,
            tid: self.tid.checked_mul(k)?,
            iters,
            konst: self.konst.checked_mul(k)?,
        })
    }

    /// `self + k`.
    pub fn add_konst(&self, k: i64) -> Option<AffineForm> {
        Some(AffineForm {
            konst: self.konst.checked_add(k)?,
            ..self.clone()
        })
    }

    /// The constant this form reduces to, if it has no symbolic terms.
    pub fn as_const(&self) -> Option<i64> {
        (self.params.is_empty() && self.tid == 0 && self.iters.is_empty()).then_some(self.konst)
    }
}

/// What a global access does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlobalAccessKind {
    /// `ld.global*` (including `.ro`).
    Load,
    /// `st.global*`.
    Store,
    /// `atom.global*` / `red.global*`.
    Atomic,
}

/// One global access with its symbolic address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessExpr {
    /// Body index of the instruction.
    pub idx: usize,
    /// Load / store / atomic.
    pub kind: GlobalAccessKind,
    /// Access width in bytes (from the opcode type suffix; default 4).
    pub width: u32,
    /// Affine address, `None` when it escapes the affine form.
    pub addr: Option<AffineForm>,
    /// Whether the access is guarded by a predicate (may not execute).
    pub predicated: bool,
}

/// All reachable global accesses of a kernel with affine addresses,
/// plus the loop analysis they were computed against.
#[derive(Debug, Clone)]
pub struct AffineAccesses {
    /// Accesses in body order (reachable blocks only — an access in
    /// dead code cannot execute and is omitted).
    pub accesses: Vec<AccessExpr>,
    /// Loop structure, IVs, and trip counts.
    pub induction: InductionSummary,
}

/// Access width in bytes from the opcode's trailing type suffix
/// (`f32` → 4, `u64` → 8, `u8` → 1); 4 when absent or unparsable.
pub fn access_width(opcode: &[String]) -> u32 {
    let Some(last) = opcode.last() else { return 4 };
    let digits: String = last.chars().filter(|c| c.is_ascii_digit()).collect();
    match digits.parse::<u32>() {
        Ok(bits) if bits % 8 == 0 && bits <= 128 => bits / 8,
        _ => 4,
    }
}

fn access_kind(instr: &Instr) -> Option<GlobalAccessKind> {
    if instr.is_global_load() {
        Some(GlobalAccessKind::Load)
    } else if instr.is_global_store() {
        Some(GlobalAccessKind::Store)
    } else if instr.is_global_atomic() {
        Some(GlobalAccessKind::Atomic)
    } else {
        None
    }
}

/// Register environment: bindings to affine forms. Absence means ⊤.
type Env = BTreeMap<String, AffineForm>;

fn operand_form(op: &Operand, env: &Env) -> Option<AffineForm> {
    match op {
        Operand::Imm(k) => Some(AffineForm::konst(*k)),
        Operand::Reg(r) if r == "tid_x" => Some(AffineForm::tid()),
        Operand::Reg(r) => env.get(r).cloned(),
        _ => None,
    }
}

/// The form a value-producing instruction computes, `None` for ⊤.
fn computed_form(instr: &Instr, env: &Env) -> Option<AffineForm> {
    let Instr::Op {
        opcode, operands, ..
    } = instr
    else {
        return None;
    };
    let head = opcode.first().map(String::as_str).unwrap_or("");
    match (head, operands.as_slice()) {
        // `ld.param %r, [P]`: the parameter's base address.
        (
            "ld",
            [_, Operand::Mem {
                base: MemBase::Param(p),
                offset: 0,
            }],
        ) if opcode.get(1).map(String::as_str) == Some("param") => Some(AffineForm::param(p)),
        ("mov" | "cvta" | "cvt", [_, src]) => operand_form(src, env),
        ("add", [_, a, b]) => operand_form(a, env)?.add(&operand_form(b, env)?),
        ("sub", [_, a, b]) => operand_form(a, env)?.sub(&operand_form(b, env)?),
        ("mul", [_, a, b]) if matches!(opcode.get(1).map(String::as_str), Some("wide" | "lo")) => {
            // One side must reduce to a constant. 32-bit wraparound of
            // `mul.lo` is ignored — a documented imprecision.
            let (fa, fb) = (operand_form(a, env)?, operand_form(b, env)?);
            match (fa.as_const(), fb.as_const()) {
                (_, Some(k)) => fa.scale(k),
                (Some(k), _) => fb.scale(k),
                _ => None,
            }
        }
        ("shl", [_, a, Operand::Imm(k)]) if (0..63).contains(k) => {
            operand_form(a, env)?.scale(1i64 << k)
        }
        _ => None,
    }
}

/// Apply one instruction to the environment.
fn transfer(instr: &Instr, env: &mut Env) {
    let Some(dst) = instr.def_register() else {
        return;
    };
    let computed = computed_form(instr, env);
    let predicated = matches!(instr, Instr::Op { pred: Some(_), .. });
    if predicated {
        // May not execute: the binding survives only if unchanged.
        if env.get(dst) != computed.as_ref() {
            env.remove(dst);
        }
        return;
    }
    match computed {
        Some(f) => {
            env.insert(dst.to_string(), f);
        }
        None => {
            env.remove(dst);
        }
    }
}

/// Join `acc ← acc ⊓ other`: keep only bindings present and equal in
/// both (a one-sided or conflicting binding is ⊤).
fn join_env(acc: &mut Env, other: &Env) {
    acc.retain(|r, f| other.get(r) == Some(f));
}

/// Reverse post-order over forward edges (back edges skipped).
fn forward_rpo(cfg: &Cfg, back: &BTreeSet<(usize, usize)>) -> Vec<usize> {
    fn post(
        cfg: &Cfg,
        back: &BTreeSet<(usize, usize)>,
        b: usize,
        seen: &mut [bool],
        out: &mut Vec<usize>,
    ) {
        seen[b] = true;
        for &s in &cfg.blocks[b].successors {
            if !back.contains(&(b, s)) && !seen[s] {
                post(cfg, back, s, seen, out);
            }
        }
        out.push(b);
    }
    let mut out = Vec::new();
    let mut seen = vec![false; cfg.blocks.len()];
    if !cfg.blocks.is_empty() {
        post(cfg, back, 0, &mut seen, &mut out);
    }
    out.reverse();
    out
}

/// Compute affine address expressions for every reachable global access.
pub fn affine_accesses(kernel: &Kernel, cfg: &Cfg) -> AffineAccesses {
    let induction = analyze_induction(kernel, cfg);

    let unknown_all = |induction: InductionSummary| {
        let reachable = cfg.reachable_instrs();
        let accesses = reachable
            .iter()
            .filter_map(|&i| {
                let instr = &kernel.body[i];
                access_kind(instr).map(|kind| AccessExpr {
                    idx: i,
                    kind,
                    width: match instr {
                        Instr::Op { opcode, .. } => access_width(opcode),
                        Instr::Label(_) => 4,
                    },
                    addr: None,
                    predicated: matches!(instr, Instr::Op { pred: Some(_), .. }),
                })
            })
            .collect();
        AffineAccesses {
            accesses,
            induction,
        }
    };
    if induction.irreducible {
        return unknown_all(induction);
    }

    let back: BTreeSet<(usize, usize)> = induction
        .loops
        .iter()
        .flat_map(|l| l.back_edges.iter().copied())
        .collect();
    let order = forward_rpo(cfg, &back);
    let preds = cfg.predecessors();

    // Per-loop-header: registers defined anywhere in the body, and the
    // header's basic IVs.
    let mut body_defs: BTreeMap<usize, BTreeSet<&str>> = BTreeMap::new();
    for l in &induction.loops {
        let defs = body_defs.entry(l.header).or_default();
        for &b in &l.body {
            for &i in &cfg.blocks[b].instrs {
                if let Some(d) = kernel.body[i].def_register() {
                    defs.insert(d);
                }
            }
        }
    }

    let mut exits: Vec<Option<Env>> = vec![None; cfg.blocks.len()];
    let mut accesses = Vec::new();
    for &b in &order {
        let mut env: Option<Env> = None;
        for &p in &preds[b] {
            if back.contains(&(p, b)) {
                continue;
            }
            let Some(pe) = &exits[p] else { continue };
            match &mut env {
                None => env = Some(pe.clone()),
                Some(e) => join_env(e, pe),
            }
        }
        let mut env = env.unwrap_or_default();
        if let Some(defs) = body_defs.get(&b) {
            // Loop header: pre-bind IVs from their pre-header values,
            // kill everything else the body writes.
            let pre = env.clone();
            for &d in defs {
                env.remove(d);
            }
            for iv in induction.ivs.values().filter(|iv| iv.header == b) {
                let Some(init) = pre.get(&iv.reg) else {
                    continue;
                };
                let step = AffineForm {
                    iters: BTreeMap::from([(b, iv.step)]),
                    ..AffineForm::default()
                };
                if let Some(f) = init.add(&step) {
                    env.insert(iv.reg.clone(), f);
                }
            }
        }
        for &i in &cfg.blocks[b].instrs {
            let instr = &kernel.body[i];
            if let Some(kind) = access_kind(instr) {
                let Instr::Op {
                    opcode,
                    operands,
                    pred,
                } = instr
                else {
                    unreachable!("labels are not accesses");
                };
                let addr = operands.iter().find_map(|op| match op {
                    Operand::Mem {
                        base: MemBase::Reg(r),
                        offset,
                    } => Some(env.get(r).and_then(|f| f.add_konst(*offset))),
                    Operand::Mem { .. } => Some(None),
                    _ => None,
                });
                accesses.push(AccessExpr {
                    idx: i,
                    kind,
                    width: access_width(opcode),
                    addr: addr.flatten(),
                    predicated: pred.is_some(),
                });
            }
            transfer(instr, &mut env);
        }
        exits[b] = Some(env);
    }
    accesses.sort_by_key(|a| a.idx);
    AffineAccesses {
        accesses,
        induction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_module;

    fn kernel(src: &str) -> Kernel {
        parse_module(src).unwrap().kernels.remove(0)
    }

    fn accesses(src: &str) -> AffineAccesses {
        let k = kernel(src);
        let cfg = Cfg::build(&k);
        affine_accesses(&k, &cfg)
    }

    const STREAMY: &str = r#"
.visible .entry k(.param .u64 S, .param .u64 P)
{
    ld.param.u64 %rds, [S];
    ld.param.u64 %rdp, [P];
    cvta.to.global.u64 %rds, %rds;
    cvta.to.global.u64 %rdp, %rdp;
    mov.u32 %r1, %tid_x;
    mul.wide.u32 %rd4, %r1, 4;
    add.s64 %rd5, %rds, %rd4;
    add.s64 %rd6, %rdp, %rd4;
    ld.global.f32 %f1, [%rd5+8];
    st.global.f32 [%rd6], %f1;
    ret;
}
"#;

    #[test]
    fn straight_line_addresses_are_affine() {
        let a = accesses(STREAMY);
        assert_eq!(a.accesses.len(), 2);
        let ld = &a.accesses[0];
        assert_eq!(ld.kind, GlobalAccessKind::Load);
        assert_eq!(ld.width, 4);
        let f = ld.addr.as_ref().expect("affine");
        assert_eq!(f.anchor(), Some("S"));
        assert_eq!(f.tid, 4);
        assert_eq!(f.konst, 8);
        assert!(f.iters.is_empty());
        let st = &a.accesses[1];
        assert_eq!(st.kind, GlobalAccessKind::Store);
        let f = st.addr.as_ref().unwrap();
        assert_eq!(f.anchor(), Some("P"));
        assert_eq!(f.tid, 4);
        assert_eq!(f.konst, 0);
    }

    #[test]
    fn loop_iv_address_carries_iter_term() {
        // The GEMM shape: a pointer bumped by 4 each iteration.
        let a = accesses(
            r#"
.visible .entry k(.param .u64 S, .param .u64 P)
{
    ld.param.u64 %rds, [S];
    ld.param.u64 %rdp, [P];
    cvta.to.global.u64 %rds, %rds;
    mov.u32 %r1, %tid_x;
    mul.wide.u32 %rd4, %r1, 4;
    add.s64 %rd5, %rds, %rd4;
LOOP:
    ld.global.f32 %f1, [%rd5];
    add.s64 %rd5, %rd5, 4;
    add.u32 %r2, %r2, 1;
    setp.lt.u32 %p1, %r2, %r3;
    @%p1 bra LOOP;
    add.s64 %rd7, %rdp, %rd4;
    st.global.f32 [%rd7], %f1;
    ret;
}
"#,
        );
        assert_eq!(a.accesses.len(), 2);
        let ld = a.accesses[0].addr.as_ref().expect("loop load is affine");
        assert_eq!(ld.anchor(), Some("S"));
        assert_eq!(ld.tid, 4);
        let header = a.induction.loops[0].header;
        assert_eq!(ld.iters.get(&header), Some(&4));
        assert_eq!(ld.konst, 0);
        // The post-loop store does not depend on the loop.
        let st = a.accesses[1].addr.as_ref().unwrap();
        assert_eq!(st.anchor(), Some("P"));
        assert!(st.iters.is_empty());
    }

    #[test]
    fn pointer_chase_is_unknown() {
        // The TREE shape: the index register is reloaded from memory.
        let a = accesses(
            r#"
.visible .entry k(.param .u64 S)
{
    ld.param.u64 %rdt, [S];
    cvta.to.global.u64 %rdt, %rdt;
    mov.u32 %r2, 0;
LOOP:
    mul.wide.u32 %rd4, %r2, 64;
    add.s64 %rd5, %rdt, %rd4;
    ld.global.u32 %r2, [%rd5];
    add.u32 %r3, %r3, 1;
    setp.lt.u32 %p1, %r3, %r4;
    @%p1 bra LOOP;
    ret;
}
"#,
        );
        assert_eq!(a.accesses.len(), 1);
        assert!(a.accesses[0].addr.is_none(), "{:?}", a.accesses[0]);
    }

    #[test]
    fn scaled_gather_stays_affine() {
        // The IRREGULAR shape: a large constant stride is still affine.
        let a = accesses(
            r#"
.visible .entry k(.param .u64 S)
{
    ld.param.u64 %rdt, [S];
    cvta.to.global.u64 %rdt, %rdt;
    mov.u32 %r1, %tid_x;
    mul.lo.u32 %r2, %r1, 40503;
    mul.wide.u32 %rd6, %r2, 4;
    add.s64 %rd7, %rdt, %rd6;
    ld.global.f32 %f1, [%rd7];
    ret;
}
"#,
        );
        let f = a.accesses[0].addr.as_ref().unwrap();
        assert_eq!(f.anchor(), Some("S"));
        assert_eq!(f.tid, 4 * 40503);
    }

    #[test]
    fn atomic_access_kind_and_width() {
        let a = accesses(
            r#"
.visible .entry k(.param .u64 W)
{
    ld.param.u64 %rdb, [W];
    cvta.to.global.u64 %rdb, %rdb;
    mov.u32 %r1, %tid_x;
    mul.wide.u32 %rd4, %r1, 8;
    add.s64 %rd8, %rdb, %rd4;
    atom.global.add.u64 %rd9, [%rd8], 1;
    ret;
}
"#,
        );
        let at = &a.accesses[0];
        assert_eq!(at.kind, GlobalAccessKind::Atomic);
        assert_eq!(at.width, 8);
        assert_eq!(at.addr.as_ref().unwrap().tid, 8);
    }

    #[test]
    fn diamond_with_conflicting_bases_is_unknown() {
        let a = accesses(
            r#"
.visible .entry k(.param .u64 S, .param .u64 P)
{
    ld.param.u64 %rds, [S];
    ld.param.u64 %rdp, [P];
    setp.lt.s32 %p1, %r9, %r8;
    @%p1 bra THEN;
    mov.u64 %rd5, %rds;
    bra JOIN;
THEN:
    mov.u64 %rd5, %rdp;
JOIN:
    ld.global.f32 %f1, [%rd5];
    ret;
}
"#,
        );
        assert!(a.accesses[0].addr.is_none());
    }

    #[test]
    fn diamond_with_agreeing_bases_stays_affine() {
        let a = accesses(
            r#"
.visible .entry k(.param .u64 S)
{
    ld.param.u64 %rds, [S];
    setp.lt.s32 %p1, %r9, %r8;
    @%p1 bra THEN;
    mov.u64 %rd5, %rds;
    bra JOIN;
THEN:
    mov.u64 %rd5, %rds;
JOIN:
    ld.global.f32 %f1, [%rd5];
    ret;
}
"#,
        );
        assert_eq!(a.accesses[0].addr.as_ref().unwrap().anchor(), Some("S"));
    }

    #[test]
    fn predicated_redefinition_degrades() {
        let a = accesses(
            r#"
.visible .entry k(.param .u64 S)
{
    ld.param.u64 %rds, [S];
    cvta.to.global.u64 %rds, %rds;
    @%p1 add.s64 %rds, %rds, 4;
    ld.global.f32 %f1, [%rds];
    ret;
}
"#,
        );
        assert!(a.accesses[0].addr.is_none());
    }

    #[test]
    fn dead_code_access_is_omitted() {
        let a = accesses(
            r#"
.visible .entry k(.param .u64 S)
{
    bra END;
    st.global.f32 [%rd1], %f1;
END:
    ret;
}
"#,
        );
        assert!(a.accesses.is_empty());
    }

    #[test]
    fn width_parsing() {
        let w = |s: &str| access_width(&s.split('.').map(str::to_string).collect::<Vec<_>>());
        assert_eq!(w("ld.global.f32"), 4);
        assert_eq!(w("ld.global.u64"), 8);
        assert_eq!(w("st.global.u8"), 1);
        assert_eq!(w("st.global.u16"), 2);
        assert_eq!(w("atom.global.add.u32"), 4);
        assert_eq!(w("ld.global.ro.f64"), 8);
        assert_eq!(w("bra"), 4);
    }

    #[test]
    fn form_algebra() {
        let s = AffineForm::param("S");
        let t = AffineForm::tid().scale(4).unwrap();
        let f = s.add(&t).unwrap().add_konst(8).unwrap();
        assert_eq!(f.anchor(), Some("S"));
        assert_eq!(f.tid, 4);
        assert_eq!(f.konst, 8);
        // Subtraction cancels the anchor.
        let g = f.sub(&AffineForm::param("S")).unwrap();
        assert_eq!(g.anchor(), None);
        assert!(g.params.is_empty());
        // Two anchors is no anchor.
        let two = AffineForm::param("S").add(&AffineForm::param("P")).unwrap();
        assert_eq!(two.anchor(), None);
        assert_eq!(AffineForm::konst(12).as_const(), Some(12));
        assert_eq!(f.as_const(), None);
    }
}
