//! Flow-insensitive dataflow analysis identifying read-only kernel
//! parameters (paper §5.2).

use std::collections::{BTreeSet, HashMap};

use crate::ast::{Instr, Kernel, MemBase, Operand};
use crate::cfg::Cfg;

/// The result of analyzing one kernel.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KernelAccessSummary {
    /// Params whose arrays are loaded from via `ld.global`.
    pub loaded: BTreeSet<String>,
    /// Params whose arrays are stored to (st/atom/red) — read-write.
    pub stored: BTreeSet<String>,
    /// A store went through a register of unknown provenance; nothing
    /// can be proven read-only.
    pub unknown_store: bool,
    /// Params proven read-only within this kernel: loaded, never stored.
    pub read_only: BTreeSet<String>,
}

/// Register → params its value may derive from (flow-insensitive).
pub(crate) type Provenance = HashMap<String, BTreeSet<String>>;

pub(crate) fn reg_sources(operands: &[Operand]) -> impl Iterator<Item = &str> {
    operands.iter().filter_map(|op| match op {
        Operand::Reg(r) => Some(r.as_str()),
        Operand::Mem {
            base: MemBase::Reg(r),
            ..
        } => Some(r.as_str()),
        _ => None,
    })
}

/// Which params may an address operand point into?
fn mem_provenance(op: &Operand, prov: &Provenance) -> Option<BTreeSet<String>> {
    match op {
        Operand::Mem {
            base: MemBase::Reg(r),
            ..
        } => Some(prov.get(r).cloned().unwrap_or_default()),
        Operand::Mem {
            base: MemBase::Param(p),
            ..
        } => {
            let mut s = BTreeSet::new();
            s.insert(p.clone());
            Some(s)
        }
        _ => None,
    }
}

/// Analyze a kernel: propagate parameter provenance through registers to
/// a fixpoint (flow-insensitive, so loops and branches are handled
/// conservatively), then classify every `ld.global` / `st.global` /
/// `atom.global` / `red.global` by the provenance of its address.
pub fn analyze_kernel(kernel: &Kernel) -> KernelAccessSummary {
    analyze_instrs(kernel, None)
}

/// Like [`analyze_kernel`], but ignores instructions the control-flow
/// graph proves unreachable — a store in dead code cannot make an array
/// read-write.
pub fn analyze_kernel_reachable(kernel: &Kernel) -> KernelAccessSummary {
    let cfg = Cfg::build(kernel);
    let reachable = cfg.reachable_instrs();
    analyze_instrs(kernel, Some(&reachable))
}

fn analyze_instrs(kernel: &Kernel, only: Option<&[usize]>) -> KernelAccessSummary {
    let included = |i: usize| only.is_none_or(|set| set.binary_search(&i).is_ok());
    analyze_impl(kernel, &included)
}

/// Propagate parameter provenance through registers to a fixpoint over
/// the instructions `included` selects. Shared by this module, the
/// rewriter, and the flow-sensitive pass (as its ⊥-fallback).
pub(crate) fn provenance_fixpoint(kernel: &Kernel, included: &dyn Fn(usize) -> bool) -> Provenance {
    let mut prov: Provenance = HashMap::new();
    loop {
        let mut changed = false;
        for (idx, instr) in kernel.body.iter().enumerate() {
            if !included(idx) {
                continue;
            }
            let Instr::Op {
                opcode, operands, ..
            } = instr
            else {
                continue;
            };
            let head = opcode.first().map(String::as_str).unwrap_or("");
            // Control flow and stores define no registers.
            if matches!(head, "st" | "bra" | "ret" | "bar" | "red" | "exit") {
                continue;
            }
            let Some(Operand::Reg(dst)) = operands.first() else {
                continue;
            };

            let mut incoming: BTreeSet<String> = BTreeSet::new();
            if head == "ld" && opcode.get(1).map(String::as_str) == Some("param") {
                // `ld.param.u64 %rd1, [A]`: rd1 derives from param A.
                if let Some(Operand::Mem {
                    base: MemBase::Param(p),
                    ..
                }) = operands.get(1)
                {
                    incoming.insert(p.clone());
                }
            } else {
                // Any value-producing op: dst derives from all source
                // registers (including loads' address registers — a
                // conservative stance on pointer chasing).
                for src in reg_sources(&operands[1..]) {
                    if let Some(set) = prov.get(src) {
                        incoming.extend(set.iter().cloned());
                    }
                }
            }
            if incoming.is_empty() {
                continue;
            }
            let entry = prov.entry(dst.clone()).or_default();
            let before = entry.len();
            entry.extend(incoming);
            changed |= entry.len() != before;
        }
        if !changed {
            return prov;
        }
    }
}

fn analyze_impl(kernel: &Kernel, included: &dyn Fn(usize) -> bool) -> KernelAccessSummary {
    // 1. Provenance fixpoint.
    let prov = provenance_fixpoint(kernel, included);

    // 2. Classify global accesses.
    let mut summary = KernelAccessSummary::default();
    for (idx, instr) in kernel.body.iter().enumerate() {
        if !included(idx) {
            continue;
        }
        let Instr::Op { operands, .. } = instr else {
            continue;
        };
        if instr.is_global_load() {
            // `ld.global %dst, [addr]` — address is operand 1.
            if let Some(set) = operands.get(1).and_then(|a| mem_provenance(a, &prov)) {
                summary.loaded.extend(set);
            }
        } else if instr.is_global_store() || instr.is_global_atomic() {
            // `st.global [addr], %src` / `atom.global %dst, [addr], ...`:
            // find the memory operand wherever it sits.
            let mem = operands.iter().find_map(|a| mem_provenance(a, &prov));
            match mem {
                Some(set) if !set.is_empty() => summary.stored.extend(set),
                // Store through a pointer we cannot attribute: taint all.
                _ => summary.unknown_store = true,
            }
        }
    }

    if summary.unknown_store {
        summary.stored.extend(kernel.params.iter().cloned());
    }
    summary.read_only = summary
        .loaded
        .difference(&summary.stored)
        .cloned()
        .collect();
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_module;

    fn analyze(src: &str) -> KernelAccessSummary {
        let m = parse_module(src).unwrap();
        analyze_kernel(&m.kernels[0])
    }

    #[test]
    fn vecadd_inputs_are_read_only() {
        let s = analyze(
            r#"
.visible .entry vecadd(.param .u64 A, .param .u64 B, .param .u64 C)
{
    ld.param.u64 %rd1, [A];
    ld.param.u64 %rd2, [B];
    ld.param.u64 %rd3, [C];
    cvta.to.global.u64 %rd1, %rd1;
    cvta.to.global.u64 %rd2, %rd2;
    cvta.to.global.u64 %rd3, %rd3;
    ld.global.f32 %f1, [%rd1];
    ld.global.f32 %f2, [%rd2];
    add.f32 %f3, %f1, %f2;
    st.global.f32 [%rd3], %f3;
    ret;
}
"#,
        );
        assert_eq!(
            s.read_only,
            ["A", "B"].iter().map(|s| s.to_string()).collect()
        );
        assert!(s.stored.contains("C"));
        assert!(!s.unknown_store);
    }

    #[test]
    fn address_arithmetic_is_tracked() {
        // Pointer flows through add/mad/mov chains before the store.
        let s = analyze(
            r#"
.visible .entry k(.param .u64 IN, .param .u64 OUT)
{
    ld.param.u64 %rd1, [IN];
    ld.param.u64 %rd2, [OUT];
    mov.u64 %rd3, %rd2;
    mul.wide.u32 %rd4, %r1, 4;
    add.s64 %rd5, %rd3, %rd4;
    add.s64 %rd6, %rd1, %rd4;
    ld.global.f32 %f1, [%rd6];
    st.global.f32 [%rd5], %f1;
    ret;
}
"#,
        );
        assert!(s.read_only.contains("IN"));
        assert!(!s.read_only.contains("OUT"));
    }

    #[test]
    fn in_out_param_is_read_write() {
        let s = analyze(
            r#"
.visible .entry scale(.param .u64 X)
{
    ld.param.u64 %rd1, [X];
    cvta.to.global.u64 %rd1, %rd1;
    ld.global.f32 %f1, [%rd1];
    mul.f32 %f1, %f1, %f1;
    st.global.f32 [%rd1], %f1;
    ret;
}
"#,
        );
        assert!(s.read_only.is_empty());
        assert!(s.loaded.contains("X") && s.stored.contains("X"));
    }

    #[test]
    fn atomics_count_as_writes() {
        let s = analyze(
            r#"
.visible .entry hist(.param .u64 DATA, .param .u64 BINS)
{
    ld.param.u64 %rd1, [DATA];
    ld.param.u64 %rd2, [BINS];
    ld.global.u32 %r1, [%rd1];
    add.s64 %rd3, %rd2, %rd4;
    atom.global.add.u32 %r2, [%rd3], 1;
    ret;
}
"#,
        );
        assert!(s.read_only.contains("DATA"));
        assert!(s.stored.contains("BINS"));
    }

    #[test]
    fn unknown_store_taints_everything() {
        // %rd9 has no provenance: the store could hit any array.
        let s = analyze(
            r#"
.visible .entry k(.param .u64 A)
{
    ld.param.u64 %rd1, [A];
    ld.global.f32 %f1, [%rd1];
    st.global.f32 [%rd9], %f1;
    ret;
}
"#,
        );
        assert!(s.unknown_store);
        assert!(s.read_only.is_empty());
        assert!(s.stored.contains("A"));
    }

    #[test]
    fn loop_back_edges_converge() {
        // Pointer updated in a loop: provenance must reach fixpoint, and
        // the stored-through pointer (derived from OUT) stays read-write
        // even though the store appears before the increment textually.
        let s = analyze(
            r#"
.visible .entry k(.param .u64 IN, .param .u64 OUT)
{
    ld.param.u64 %rd1, [IN];
    ld.param.u64 %rd2, [OUT];
    mov.u64 %rd3, %rd2;
LOOP:
    st.global.f32 [%rd4], %f1;
    ld.global.f32 %f1, [%rd1];
    mov.u64 %rd4, %rd3;
    add.s64 %rd3, %rd3, 4;
    @%p1 bra LOOP;
    ret;
}
"#,
        );
        assert!(s.stored.contains("OUT"));
        assert!(s.read_only.contains("IN"));
        assert!(!s.unknown_store, "rd4 gains provenance via the back edge");
    }

    #[test]
    fn pointer_chase_is_conservative() {
        // A pointer loaded from array A then stored through: both A (the
        // source of the chased pointer) is tainted as stored.
        let s = analyze(
            r#"
.visible .entry chase(.param .u64 A)
{
    ld.param.u64 %rd1, [A];
    ld.global.u64 %rd2, [%rd1];
    st.global.f32 [%rd2], %f0;
    ret;
}
"#,
        );
        assert!(s.stored.contains("A"));
        assert!(s.read_only.is_empty());
    }

    #[test]
    fn unreachable_store_does_not_taint_with_cfg() {
        let src = r#"
.visible .entry k(.param .u64 A)
{
    ld.param.u64 %rd1, [A];
    cvta.to.global.u64 %rd1, %rd1;
    ld.global.f32 %f1, [%rd1];
    bra END;
    st.global.f32 [%rd1], %f1;
END:
    ret;
}
"#;
        let m = parse_module(src).unwrap();
        // Flow-insensitive: the dead store taints A.
        let plain = analyze_kernel(&m.kernels[0]);
        assert!(!plain.read_only.contains("A"));
        // CFG-aware: the store is unreachable, A stays read-only.
        let precise = crate::analysis::analyze_kernel_reachable(&m.kernels[0]);
        assert!(precise.read_only.contains("A"), "{precise:?}");
    }

    #[test]
    fn scalar_only_kernel_has_empty_summary() {
        let s = analyze(
            ".visible .entry k(.param .u64 N)\n{\n mov.u32 %r1, 4;\n add.u32 %r1, %r1, 1;\n ret;\n}\n",
        );
        assert!(s.loaded.is_empty() && s.stored.is_empty() && s.read_only.is_empty());
    }
}
