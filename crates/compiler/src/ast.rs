//! PTX abstract syntax (the subset the analysis needs).

use std::borrow::Cow;
use std::fmt;

/// A memory-operand base: a register or a named kernel parameter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MemBase {
    /// `[%rd4]` / `[%rd4+16]`.
    Reg(String),
    /// `[A]` — direct parameter reference (used by `ld.param`).
    Param(String),
}

/// An instruction operand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    /// A register such as `%rd1`, `%r3`, `%f2`, `%p1`.
    Reg(String),
    /// An integer immediate.
    Imm(i64),
    /// A memory reference `[base+offset]`.
    Mem {
        /// Base register or parameter.
        base: MemBase,
        /// Constant byte offset.
        offset: i64,
    },
    /// A branch-target label.
    Label(String),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "%{r}"),
            Operand::Imm(i) => write!(f, "{i}"),
            Operand::Mem {
                base: MemBase::Reg(r),
                offset: 0,
            } => write!(f, "[%{r}]"),
            Operand::Mem {
                base: MemBase::Reg(r),
                offset,
            } => write!(f, "[%{r}+{offset}]"),
            Operand::Mem {
                base: MemBase::Param(p),
                offset: 0,
            } => write!(f, "[{p}]"),
            Operand::Mem {
                base: MemBase::Param(p),
                offset,
            } => write!(f, "[{p}+{offset}]"),
            Operand::Label(l) => write!(f, "{l}"),
        }
    }
}

/// One PTX statement: either an instruction or a label definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// `LABEL:`.
    Label(String),
    /// An operation, e.g. `ld.global.f32 %f1, [%rd1];` with an optional
    /// guard predicate (`@%p1`).
    Op {
        /// Dot-separated opcode parts, e.g. `["ld", "global", "f32"]`.
        opcode: Vec<String>,
        /// Operands in source order (destination first for value ops).
        operands: Vec<Operand>,
        /// Guard predicate register, if any.
        pred: Option<String>,
    },
}

impl Instr {
    /// The joined opcode string (`ld.global.f32`), empty for labels.
    /// Single-part opcodes (`ret`, `bra`, `mov`) borrow; only genuinely
    /// dotted opcodes allocate for the join.
    pub fn opcode_str(&self) -> Cow<'_, str> {
        match self {
            Instr::Label(_) => Cow::Borrowed(""),
            Instr::Op { opcode, .. } => match opcode.as_slice() {
                [] => Cow::Borrowed(""),
                [only] => Cow::Borrowed(only.as_str()),
                parts => Cow::Owned(parts.join(".")),
            },
        }
    }

    /// Whether this is a global-memory load (`ld.global...`, including
    /// the `.ro` form and vector/`nc` variants).
    pub fn is_global_load(&self) -> bool {
        matches!(self, Instr::Op { opcode, .. }
            if opcode.first().map(String::as_str) == Some("ld")
               && opcode.get(1).map(String::as_str) == Some("global"))
    }

    /// Whether this is a global-memory store.
    pub fn is_global_store(&self) -> bool {
        matches!(self, Instr::Op { opcode, .. }
            if opcode.first().map(String::as_str) == Some("st")
               && opcode.get(1).map(String::as_str) == Some("global"))
    }

    /// Whether this is a global atomic or reduction (a write for the
    /// read-only analysis).
    pub fn is_global_atomic(&self) -> bool {
        matches!(self, Instr::Op { opcode, .. }
            if matches!(opcode.first().map(String::as_str), Some("atom") | Some("red"))
               && opcode.get(1).map(String::as_str) == Some("global"))
    }

    /// The register this instruction writes, if any: the first operand of
    /// a value-producing op. Stores, branches, barriers, reductions, and
    /// `ret`/`exit` define nothing.
    pub fn def_register(&self) -> Option<&str> {
        let Instr::Op {
            opcode, operands, ..
        } = self
        else {
            return None;
        };
        let head = opcode.first().map(String::as_str).unwrap_or("");
        if matches!(head, "st" | "bra" | "ret" | "bar" | "red" | "exit") {
            return None;
        }
        match operands.first() {
            Some(Operand::Reg(r)) => Some(r.as_str()),
            _ => None,
        }
    }

    /// Registers this instruction reads: the guard predicate, every
    /// memory base register, and every register operand outside the
    /// destination slot (stores and branches have no destination, so all
    /// their register operands are uses). Sorted and deduplicated.
    pub fn use_registers(&self) -> Vec<&str> {
        let Instr::Op { operands, pred, .. } = self else {
            return Vec::new();
        };
        let mut uses: Vec<&str> = Vec::new();
        if let Some(p) = pred {
            uses.push(p.as_str());
        }
        let has_def = self.def_register().is_some();
        for (i, op) in operands.iter().enumerate() {
            match op {
                Operand::Reg(r) if !(has_def && i == 0) => uses.push(r.as_str()),
                Operand::Mem {
                    base: MemBase::Reg(r),
                    ..
                } => uses.push(r.as_str()),
                _ => {}
            }
        }
        uses.sort_unstable();
        uses.dedup();
        uses
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Label(l) => write!(f, "{l}:"),
            Instr::Op {
                opcode,
                operands,
                pred,
            } => {
                if let Some(p) = pred {
                    write!(f, "@%{p} ")?;
                }
                write!(f, "{}", opcode.join("."))?;
                for (i, op) in operands.iter().enumerate() {
                    if i == 0 {
                        write!(f, " {op}")?;
                    } else {
                        write!(f, ", {op}")?;
                    }
                }
                write!(f, ";")
            }
        }
    }
}

/// A kernel: name, ordered parameter names, and its body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kernel {
    /// Kernel (entry) name.
    pub name: String,
    /// Parameter names in declaration order (all treated as `.u64`
    /// global-array pointers or scalars; only pointers matter to the
    /// analysis).
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Instr>,
}

impl Kernel {
    /// Render the kernel back to PTX text.
    pub fn to_ptx(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(".visible .entry {}(", self.name));
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(".param .u64 {p}"));
        }
        s.push_str(")\n{\n");
        for instr in &self.body {
            match instr {
                Instr::Label(_) => s.push_str(&format!("{instr}\n")),
                _ => s.push_str(&format!("    {instr}\n")),
            }
        }
        s.push_str("}\n");
        s
    }
}

/// A translation unit: one or more kernels.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Module {
    /// The kernels in source order.
    pub kernels: Vec<Kernel>,
}

impl Module {
    /// Find a kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&Kernel> {
        self.kernels.iter().find(|k| k.name == name)
    }

    /// Render the whole module to PTX text.
    pub fn to_ptx(&self) -> String {
        self.kernels
            .iter()
            .map(Kernel::to_ptx)
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(opcode: &str, operands: Vec<Operand>) -> Instr {
        Instr::Op {
            opcode: opcode.split('.').map(str::to_string).collect(),
            operands,
            pred: None,
        }
    }

    #[test]
    fn opcode_str_borrows_when_it_can() {
        assert!(matches!(
            Instr::Label("L".into()).opcode_str(),
            Cow::Borrowed("")
        ));
        let ret = op("ret", vec![]);
        assert!(matches!(ret.opcode_str(), Cow::Borrowed("ret")));
        let ld = op("ld.global.f32", vec![]);
        assert_eq!(ld.opcode_str(), "ld.global.f32");
        assert!(matches!(ld.opcode_str(), Cow::Owned(_)));
    }

    #[test]
    fn opcode_predicates() {
        let ld = op("ld.global.f32", vec![]);
        assert!(ld.is_global_load());
        assert!(!ld.is_global_store());
        let ldro = op("ld.global.ro.f32", vec![]);
        assert!(ldro.is_global_load());
        let st = op("st.global.f32", vec![]);
        assert!(st.is_global_store());
        let atom = op("atom.global.add.u32", vec![]);
        assert!(atom.is_global_atomic());
        let shared = op("ld.shared.f32", vec![]);
        assert!(!shared.is_global_load());
        assert!(!Instr::Label("L1".into()).is_global_load());
    }

    #[test]
    fn def_and_use_registers() {
        let ld = Instr::Op {
            opcode: vec!["ld".into(), "global".into(), "f32".into()],
            operands: vec![
                Operand::Reg("f1".into()),
                Operand::Mem {
                    base: MemBase::Reg("rd1".into()),
                    offset: 0,
                },
            ],
            pred: Some("p2".into()),
        };
        assert_eq!(ld.def_register(), Some("f1"));
        assert_eq!(ld.use_registers(), vec!["p2", "rd1"]);

        let st = Instr::Op {
            opcode: vec!["st".into(), "global".into(), "f32".into()],
            operands: vec![
                Operand::Mem {
                    base: MemBase::Reg("rd2".into()),
                    offset: 8,
                },
                Operand::Reg("f3".into()),
            ],
            pred: None,
        };
        assert_eq!(st.def_register(), None);
        assert_eq!(st.use_registers(), vec!["f3", "rd2"]);

        let add = Instr::Op {
            opcode: vec!["add".into(), "s64".into()],
            operands: vec![
                Operand::Reg("rd5".into()),
                Operand::Reg("rd3".into()),
                Operand::Reg("rd4".into()),
            ],
            pred: None,
        };
        assert_eq!(add.def_register(), Some("rd5"));
        assert_eq!(add.use_registers(), vec!["rd3", "rd4"]);

        assert_eq!(Instr::Label("L".into()).def_register(), None);
        assert!(Instr::Label("L".into()).use_registers().is_empty());
    }

    #[test]
    fn display_roundtrip_forms() {
        let i = Instr::Op {
            opcode: vec!["ld".into(), "global".into(), "f32".into()],
            operands: vec![
                Operand::Reg("f1".into()),
                Operand::Mem {
                    base: MemBase::Reg("rd4".into()),
                    offset: 16,
                },
            ],
            pred: Some("p1".into()),
        };
        assert_eq!(i.to_string(), "@%p1 ld.global.f32 %f1, [%rd4+16];");
        assert_eq!(Instr::Label("BB0".into()).to_string(), "BB0:");
    }

    #[test]
    fn kernel_to_ptx_contains_signature() {
        let k = Kernel {
            name: "k".into(),
            params: vec!["A".into(), "B".into()],
            body: vec![Instr::Label("L".into()), op("ret", vec![])],
        };
        let ptx = k.to_ptx();
        assert!(ptx.contains(".visible .entry k(.param .u64 A, .param .u64 B)"));
        assert!(ptx.contains("L:\n"));
        assert!(ptx.contains("    ret;"));
    }
}
