//! Control-flow graph construction over a kernel body.
//!
//! The read-only analysis is flow-insensitive (a store anywhere in the
//! kernel makes an array read-write, per the paper's rule), but the CFG
//! still buys precision: instructions in *unreachable* blocks cannot
//! execute, so their stores must not taint (`analyze_kernel_reachable`
//! in [`crate::analysis`] uses this), and downstream passes get a
//! foundation for proper dataflow.

use std::collections::HashMap;

use crate::ast::{Instr, Kernel, Operand};

/// A basic block: a maximal straight-line instruction range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Block index.
    pub id: usize,
    /// Label naming this block, if any.
    pub label: Option<String>,
    /// Indices into the kernel body (labels excluded).
    pub instrs: Vec<usize>,
    /// Successor block ids.
    pub successors: Vec<usize>,
}

/// A kernel's control-flow graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    /// Blocks in source order; block 0 is the entry.
    pub blocks: Vec<BasicBlock>,
}

/// Whether the instruction ends a basic block.
fn is_terminator(instr: &Instr) -> bool {
    matches!(instr, Instr::Op { opcode, .. }
        if matches!(opcode.first().map(String::as_str), Some("bra") | Some("ret") | Some("exit")))
}

/// Whether control can fall through past the instruction (predicated
/// branches fall through when the predicate is false).
fn falls_through(instr: &Instr) -> bool {
    match instr {
        Instr::Op { opcode, pred, .. } => match opcode.first().map(String::as_str) {
            Some("ret") | Some("exit") => pred.is_some(),
            Some("bra") => pred.is_some(),
            _ => true,
        },
        Instr::Label(_) => true,
    }
}

fn branch_target(instr: &Instr) -> Option<&str> {
    match instr {
        Instr::Op {
            opcode, operands, ..
        } if opcode.first().map(String::as_str) == Some("bra") => {
            operands.iter().find_map(|op| match op {
                Operand::Label(l) => Some(l.as_str()),
                _ => None,
            })
        }
        _ => None,
    }
}

impl Cfg {
    /// Build the CFG of `kernel`.
    pub fn build(kernel: &Kernel) -> Cfg {
        // 1. Find block leaders: index 0, every label, every instruction
        //    following a terminator.
        let body = &kernel.body;
        let mut leaders = vec![false; body.len() + 1];
        if !body.is_empty() {
            leaders[0] = true;
        }
        for (i, instr) in body.iter().enumerate() {
            match instr {
                Instr::Label(_) => leaders[i] = true,
                _ if is_terminator(instr) && i + 1 < body.len() => leaders[i + 1] = true,
                _ => {}
            }
        }

        // 2. Carve blocks.
        let mut blocks: Vec<BasicBlock> = Vec::new();
        let mut label_to_block: HashMap<String, usize> = HashMap::new();
        let mut current: Option<BasicBlock> = None;
        for (i, instr) in body.iter().enumerate() {
            if leaders[i] {
                if let Some(b) = current.take() {
                    blocks.push(b);
                }
                current = Some(BasicBlock {
                    id: blocks.len(),
                    label: None,
                    instrs: Vec::new(),
                    successors: Vec::new(),
                });
            }
            let b = current.as_mut().expect("leader created a block");
            match instr {
                Instr::Label(l) => {
                    // A label inside a block splits it implicitly via the
                    // leader marking above, so here it names the block.
                    if b.label.is_none() && b.instrs.is_empty() {
                        b.label = Some(l.clone());
                        label_to_block.insert(l.clone(), b.id);
                    } else {
                        // Consecutive labels: alias to the same block.
                        label_to_block.insert(l.clone(), b.id);
                    }
                }
                _ => b.instrs.push(i),
            }
        }
        if let Some(b) = current.take() {
            blocks.push(b);
        }

        // 3. Edges: compute every block's successors first, then assign
        //    (the computation reads neighbouring blocks via `body`).
        let n = blocks.len();
        let all_succs: Vec<Vec<usize>> = blocks
            .iter()
            .map(|b| {
                let mut succs = Vec::new();
                match b.instrs.last() {
                    Some(&last) => {
                        if let Some(target) = branch_target(&body[last]) {
                            if let Some(&tb) = label_to_block.get(target) {
                                succs.push(tb);
                            }
                        }
                        if falls_through(&body[last]) && b.id + 1 < n {
                            succs.push(b.id + 1);
                        }
                    }
                    // Label-only block falls through.
                    None if b.id + 1 < n => succs.push(b.id + 1),
                    None => {}
                }
                succs.dedup();
                succs
            })
            .collect();
        for (b, succs) in blocks.iter_mut().zip(all_succs) {
            b.successors = succs;
        }

        Cfg { blocks }
    }

    /// Blocks reachable from the entry.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = Vec::new();
        if !self.blocks.is_empty() {
            seen[0] = true;
            stack.push(0);
        }
        while let Some(b) = stack.pop() {
            for &s in &self.blocks[b].successors {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }

    /// Predecessor block ids for every block (the inverse of
    /// `successors`), in ascending order per block.
    pub fn predecessors(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for b in &self.blocks {
            for &s in &b.successors {
                preds[s].push(b.id);
            }
        }
        preds
    }

    /// Instruction indices (into the kernel body) of reachable blocks,
    /// in source order.
    pub fn reachable_instrs(&self) -> Vec<usize> {
        let seen = self.reachable();
        let mut out = Vec::new();
        for b in &self.blocks {
            if seen[b.id] {
                out.extend(&b.instrs);
            }
        }
        out.sort_unstable();
        out
    }

    /// Whether the CFG contains a cycle (a loop).
    pub fn has_loop(&self) -> bool {
        // Back edge detection via DFS colors.
        #[derive(Clone, Copy, PartialEq)]
        enum C {
            White,
            Gray,
            Black,
        }
        fn dfs(cfg: &Cfg, b: usize, color: &mut [C]) -> bool {
            color[b] = C::Gray;
            for &s in &cfg.blocks[b].successors {
                match color[s] {
                    C::Gray => return true,
                    C::White => {
                        if dfs(cfg, s, color) {
                            return true;
                        }
                    }
                    C::Black => {}
                }
            }
            color[b] = C::Black;
            false
        }
        let mut color = vec![C::White; self.blocks.len()];
        !self.blocks.is_empty() && dfs(self, 0, &mut color)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_module;

    fn cfg_of(src: &str) -> Cfg {
        let m = parse_module(src).unwrap();
        Cfg::build(&m.kernels[0])
    }

    #[test]
    fn straight_line_is_one_block() {
        let cfg = cfg_of(
            ".visible .entry k(.param .u64 A)\n{\n mov.u32 %r1, 1;\n add.u32 %r1, %r1, 1;\n ret;\n}\n",
        );
        assert_eq!(cfg.blocks.len(), 1);
        assert!(cfg.blocks[0].successors.is_empty());
        assert!(!cfg.has_loop());
    }

    #[test]
    fn diamond_shape() {
        let cfg = cfg_of(
            r#"
.visible .entry k(.param .u64 A)
{
    setp.lt.s32 %p1, %r1, %r2;
    @%p1 bra THEN;
    mov.u32 %r3, 0;
    bra JOIN;
THEN:
    mov.u32 %r3, 1;
JOIN:
    ret;
}
"#,
        );
        // entry, else, then, join.
        assert_eq!(cfg.blocks.len(), 4);
        let entry = &cfg.blocks[0];
        assert_eq!(entry.successors.len(), 2, "{entry:?}");
        // Join has no successors; both arms reach it.
        let join = cfg
            .blocks
            .iter()
            .find(|b| b.label.as_deref() == Some("JOIN"))
            .unwrap();
        assert!(join.successors.is_empty());
        let preds: usize = cfg
            .blocks
            .iter()
            .filter(|b| b.successors.contains(&join.id))
            .count();
        assert_eq!(preds, 2);
        assert!(!cfg.has_loop());
        assert!(cfg.reachable().iter().all(|&r| r));
        // predecessors() agrees with the successor lists.
        let pred_lists = cfg.predecessors();
        assert!(pred_lists[0].is_empty());
        assert_eq!(pred_lists[join.id].len(), 2);
        for (b, preds) in pred_lists.iter().enumerate() {
            for &p in preds {
                assert!(cfg.blocks[p].successors.contains(&b));
            }
        }
    }

    #[test]
    fn loop_detected() {
        let cfg = cfg_of(
            r#"
.visible .entry k(.param .u64 A)
{
    mov.u32 %r1, 0;
LOOP:
    add.u32 %r1, %r1, 1;
    setp.lt.u32 %p1, %r1, %r2;
    @%p1 bra LOOP;
    ret;
}
"#,
        );
        assert!(cfg.has_loop());
        assert!(cfg.reachable().iter().all(|&r| r));
    }

    #[test]
    fn code_after_unconditional_branch_is_unreachable() {
        let cfg = cfg_of(
            r#"
.visible .entry k(.param .u64 A)
{
    bra END;
    st.global.f32 [%rd1], %f1;
END:
    ret;
}
"#,
        );
        let reach = cfg.reachable();
        assert_eq!(reach.iter().filter(|&&r| !r).count(), 1, "{cfg:?}");
        // The store's instruction index must not appear among reachable.
        let m = parse_module(
            ".visible .entry k(.param .u64 A)\n{\n bra END;\n st.global.f32 [%rd1], %f1;\nEND:\n ret;\n}\n",
        )
        .unwrap();
        let store_idx = m.kernels[0]
            .body
            .iter()
            .position(|i| i.is_global_store())
            .unwrap();
        assert!(!cfg.reachable_instrs().contains(&store_idx));
    }

    #[test]
    fn ret_ends_reachability() {
        let cfg = cfg_of(".visible .entry k(.param .u64 A)\n{\n ret;\n mov.u32 %r1, 1;\n}\n");
        assert_eq!(cfg.blocks.len(), 2);
        let reach = cfg.reachable();
        assert!(reach[0] && !reach[1]);
    }

    #[test]
    fn predicated_ret_falls_through() {
        let cfg =
            cfg_of(".visible .entry k(.param .u64 A)\n{\n @%p1 ret;\n mov.u32 %r1, 1;\n ret;\n}\n");
        assert!(cfg.reachable().iter().all(|&r| r));
    }

    #[test]
    fn empty_body() {
        let cfg = cfg_of(".visible .entry k(.param .u64 A)\n{\n}\n");
        assert!(cfg.blocks.is_empty());
        assert!(!cfg.has_loop());
        assert!(cfg.reachable_instrs().is_empty());
    }
}
