//! Generic worklist dataflow over a [`Cfg`], with reaching-definitions
//! and liveness instances.
//!
//! A [`DataflowProblem`] supplies the lattice (`Fact`, `join_into`,
//! `init_fact` as ⊥) and a per-instruction transfer function; [`solve`]
//! iterates a worklist to a fixpoint. Facts are reported at block
//! boundaries **in program order** for both directions: `entry[b]` holds
//! at the top of block `b`, `exit[b]` past its last instruction. Backward
//! problems apply transfers against program order internally.
//!
//! Termination requires the usual conditions: `Fact` must form a
//! finite-height lattice under `join_into` and `transfer` must be
//! monotone. All instances in this crate use powerset lattices over
//! registers, params, or instruction indices, which satisfy both.

use std::collections::{BTreeSet, HashMap, VecDeque};

use crate::ast::{Instr, Kernel};
use crate::cfg::{BasicBlock, Cfg};

/// Direction a dataflow problem propagates facts in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from the entry along CFG edges.
    Forward,
    /// Facts flow from the exits against CFG edges.
    Backward,
}

/// A dataflow problem over the instructions of one kernel.
pub trait DataflowProblem {
    /// The lattice element tracked at each program point.
    type Fact: Clone + PartialEq;

    /// Which way facts propagate.
    fn direction(&self) -> Direction;

    /// The fact at the boundary: the entry of block 0 for forward
    /// problems, the exit of every exiting block for backward ones.
    fn boundary_fact(&self) -> Self::Fact;

    /// The lattice bottom ⊥ — the identity of
    /// [`join_into`](DataflowProblem::join_into) and the
    /// optimistic initial fact at all interior points.
    fn init_fact(&self) -> Self::Fact;

    /// `acc ← acc ⊔ from`.
    fn join_into(&self, acc: &mut Self::Fact, from: &Self::Fact);

    /// Apply the instruction at body index `idx` to `fact`. Forward
    /// problems receive the fact holding *before* the instruction and
    /// must leave the fact holding *after* it; backward problems the
    /// reverse.
    fn transfer(&self, idx: usize, instr: &Instr, fact: &mut Self::Fact);
}

/// Fixpoint facts at every block boundary, in program order for both
/// directions (see module docs).
#[derive(Debug, Clone)]
pub struct BlockFacts<F> {
    /// Fact at each block's entry (top of the block).
    pub entry: Vec<F>,
    /// Fact at each block's exit (past its last instruction).
    pub exit: Vec<F>,
}

/// Whether control may leave the kernel from this block: it either has
/// no successors or ends in a (possibly predicated) `ret`/`exit`.
fn may_exit(kernel: &Kernel, block: &BasicBlock) -> bool {
    if block.successors.is_empty() {
        return true;
    }
    block.instrs.last().is_some_and(|&i| {
        matches!(&kernel.body[i], Instr::Op { opcode, .. }
            if matches!(opcode.first().map(String::as_str), Some("ret") | Some("exit")))
    })
}

/// Run `problem` over `cfg` to a fixpoint with a worklist.
pub fn solve<P: DataflowProblem>(problem: &P, kernel: &Kernel, cfg: &Cfg) -> BlockFacts<P::Fact> {
    let n = cfg.blocks.len();
    let mut facts = BlockFacts {
        entry: vec![problem.init_fact(); n],
        exit: vec![problem.init_fact(); n],
    };
    if n == 0 {
        return facts;
    }
    let preds = cfg.predecessors();
    let mut queued = vec![true; n];
    let mut worklist: VecDeque<usize> = match problem.direction() {
        Direction::Forward => (0..n).collect(),
        Direction::Backward => (0..n).rev().collect(),
    };
    while let Some(b) = worklist.pop_front() {
        queued[b] = false;
        let block = &cfg.blocks[b];
        match problem.direction() {
            Direction::Forward => {
                let mut inb = if b == 0 {
                    problem.boundary_fact()
                } else {
                    problem.init_fact()
                };
                for &p in &preds[b] {
                    problem.join_into(&mut inb, &facts.exit[p]);
                }
                let mut out = inb.clone();
                for &i in &block.instrs {
                    problem.transfer(i, &kernel.body[i], &mut out);
                }
                facts.entry[b] = inb;
                if out != facts.exit[b] {
                    facts.exit[b] = out;
                    for &s in &block.successors {
                        if !queued[s] {
                            queued[s] = true;
                            worklist.push_back(s);
                        }
                    }
                }
            }
            Direction::Backward => {
                let mut out = if may_exit(kernel, block) {
                    problem.boundary_fact()
                } else {
                    problem.init_fact()
                };
                for &s in &block.successors {
                    problem.join_into(&mut out, &facts.entry[s]);
                }
                let mut inb = out.clone();
                for &i in block.instrs.iter().rev() {
                    problem.transfer(i, &kernel.body[i], &mut inb);
                }
                facts.exit[b] = out;
                if inb != facts.entry[b] {
                    facts.entry[b] = inb;
                    for &p in &preds[b] {
                        if !queued[p] {
                            queued[p] = true;
                            worklist.push_back(p);
                        }
                    }
                }
            }
        }
    }
    facts
}

/// Replay a forward problem through one block: the fact holding
/// immediately *before* each instruction, given the block-entry fact.
pub fn forward_instr_facts<P: DataflowProblem>(
    problem: &P,
    kernel: &Kernel,
    block: &BasicBlock,
    entry: &P::Fact,
) -> Vec<(usize, P::Fact)> {
    let mut fact = entry.clone();
    let mut out = Vec::with_capacity(block.instrs.len());
    for &i in &block.instrs {
        out.push((i, fact.clone()));
        problem.transfer(i, &kernel.body[i], &mut fact);
    }
    out
}

/// Replay a backward problem through one block: the fact holding
/// immediately *after* each instruction (program order), given the
/// block-exit fact.
pub fn backward_instr_facts<P: DataflowProblem>(
    problem: &P,
    kernel: &Kernel,
    block: &BasicBlock,
    exit: &P::Fact,
) -> Vec<(usize, P::Fact)> {
    let mut fact = exit.clone();
    let mut out = Vec::with_capacity(block.instrs.len());
    for &i in block.instrs.iter().rev() {
        out.push((i, fact.clone()));
        problem.transfer(i, &kernel.body[i], &mut fact);
    }
    out.reverse();
    out
}

/// Reaching definitions: the set of body indices whose register writes
/// may reach a program point un-killed.
pub struct ReachingDefs {
    defs_by_reg: HashMap<String, BTreeSet<usize>>,
}

impl ReachingDefs {
    /// Precompute the definition sites of `kernel`.
    pub fn new(kernel: &Kernel) -> Self {
        let mut defs_by_reg: HashMap<String, BTreeSet<usize>> = HashMap::new();
        for (i, instr) in kernel.body.iter().enumerate() {
            if let Some(d) = instr.def_register() {
                defs_by_reg.entry(d.to_string()).or_default().insert(i);
            }
        }
        ReachingDefs { defs_by_reg }
    }

    /// All definition sites of `reg` in the kernel.
    pub fn defs_of(&self, reg: &str) -> Option<&BTreeSet<usize>> {
        self.defs_by_reg.get(reg)
    }
}

impl DataflowProblem for ReachingDefs {
    type Fact = BTreeSet<usize>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary_fact(&self) -> Self::Fact {
        BTreeSet::new()
    }

    fn init_fact(&self) -> Self::Fact {
        BTreeSet::new()
    }

    fn join_into(&self, acc: &mut Self::Fact, from: &Self::Fact) {
        acc.extend(from.iter().copied());
    }

    fn transfer(&self, idx: usize, instr: &Instr, fact: &mut Self::Fact) {
        let Some(dst) = instr.def_register() else {
            return;
        };
        // A predicated def may not execute: it generates without killing.
        if !matches!(instr, Instr::Op { pred: Some(_), .. }) {
            if let Some(kills) = self.defs_by_reg.get(dst) {
                for k in kills {
                    fact.remove(k);
                }
            }
        }
        fact.insert(idx);
    }
}

/// Liveness: registers that may be read before their next write.
pub struct Liveness;

impl DataflowProblem for Liveness {
    type Fact = BTreeSet<String>;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary_fact(&self) -> Self::Fact {
        BTreeSet::new()
    }

    fn init_fact(&self) -> Self::Fact {
        BTreeSet::new()
    }

    fn join_into(&self, acc: &mut Self::Fact, from: &Self::Fact) {
        acc.extend(from.iter().cloned());
    }

    fn transfer(&self, _idx: usize, instr: &Instr, fact: &mut Self::Fact) {
        if let Some(d) = instr.def_register() {
            // A predicated def may leave the old value live.
            if !matches!(instr, Instr::Op { pred: Some(_), .. }) {
                fact.remove(d);
            }
        }
        for u in instr.use_registers() {
            fact.insert(u.to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_module;

    fn kernel(src: &str) -> Kernel {
        parse_module(src).unwrap().kernels.remove(0)
    }

    const DIAMOND: &str = r#"
.visible .entry k(.param .u64 A)
{
    mov.u32 %r1, 1;
    setp.lt.s32 %p1, %r1, %r9;
    @%p1 bra THEN;
    mov.u32 %r2, 0;
    bra JOIN;
THEN:
    mov.u32 %r2, 1;
JOIN:
    add.u32 %r3, %r2, %r1;
    ret;
}
"#;

    #[test]
    fn reaching_defs_join_at_merge() {
        let k = kernel(DIAMOND);
        let cfg = Cfg::build(&k);
        let rd = ReachingDefs::new(&k);
        let facts = solve(&rd, &k, &cfg);
        let join = cfg
            .blocks
            .iter()
            .find(|b| b.label.as_deref() == Some("JOIN"))
            .unwrap();
        // Both definitions of %r2 (one per arm) reach the join.
        let r2_defs = rd.defs_of("r2").unwrap();
        assert_eq!(r2_defs.len(), 2);
        for d in r2_defs {
            assert!(facts.entry[join.id].contains(d), "{facts:?}");
        }
    }

    #[test]
    fn reaching_defs_kill_in_straight_line() {
        let k = kernel(
            ".visible .entry k(.param .u64 A)\n{\n mov.u32 %r1, 1;\n mov.u32 %r1, 2;\n ret;\n}\n",
        );
        let cfg = Cfg::build(&k);
        let rd = ReachingDefs::new(&k);
        let facts = solve(&rd, &k, &cfg);
        // Only the second def survives to the block exit.
        assert!(!facts.exit[0].contains(&0));
        assert!(facts.exit[0].contains(&1));
    }

    #[test]
    fn predicated_def_does_not_kill() {
        let k = kernel(
            ".visible .entry k(.param .u64 A)\n{\n mov.u32 %r1, 1;\n @%p1 mov.u32 %r1, 2;\n ret;\n}\n",
        );
        let cfg = Cfg::build(&k);
        let rd = ReachingDefs::new(&k);
        let facts = solve(&rd, &k, &cfg);
        assert!(facts.exit[0].contains(&0), "unpredicated def still reaches");
        assert!(facts.exit[0].contains(&1));
    }

    #[test]
    fn liveness_across_diamond() {
        let k = kernel(DIAMOND);
        let cfg = Cfg::build(&k);
        let facts = solve(&Liveness, &k, &cfg);
        // %r1 is read at the final add, so it is live out of the entry
        // block; %r9 is only read by the setp inside the entry block.
        assert!(facts.exit[0].contains("r1"));
        assert!(!facts.exit[0].contains("r9"));
        assert!(facts.entry[0].contains("r9"), "r9 never defined: live-in");
        // Nothing is live out of the exit block.
        let join = cfg
            .blocks
            .iter()
            .find(|b| b.label.as_deref() == Some("JOIN"))
            .unwrap();
        assert!(facts.exit[join.id].is_empty());
    }

    #[test]
    fn liveness_loop_keeps_counter_live() {
        let k = kernel(
            r#"
.visible .entry k(.param .u64 A)
{
    mov.u32 %r1, 0;
LOOP:
    add.u32 %r1, %r1, 1;
    setp.lt.u32 %p1, %r1, %r2;
    @%p1 bra LOOP;
    ret;
}
"#,
        );
        let cfg = Cfg::build(&k);
        let facts = solve(&Liveness, &k, &cfg);
        let body = cfg
            .blocks
            .iter()
            .find(|b| b.label.as_deref() == Some("LOOP"))
            .unwrap();
        // The counter is live around the back edge.
        assert!(facts.exit[body.id].contains("r1"));
        assert!(facts.entry[body.id].contains("r1"));
    }

    #[test]
    fn instr_fact_replay_matches_block_exit() {
        let k = kernel(DIAMOND);
        let cfg = Cfg::build(&k);
        let rd = ReachingDefs::new(&k);
        let facts = solve(&rd, &k, &cfg);
        for b in &cfg.blocks {
            let per_instr = forward_instr_facts(&rd, &k, b, &facts.entry[b.id]);
            assert_eq!(per_instr.len(), b.instrs.len());
            if let Some((i, fact)) = per_instr.first() {
                assert_eq!(*i, b.instrs[0]);
                assert_eq!(fact, &facts.entry[b.id]);
            }
        }
        let lv = solve(&Liveness, &k, &cfg);
        for b in &cfg.blocks {
            let per_instr = backward_instr_facts(&Liveness, &k, b, &lv.exit[b.id]);
            if let Some((i, fact)) = per_instr.last() {
                assert_eq!(*i, *b.instrs.last().unwrap());
                assert_eq!(fact, &lv.exit[b.id]);
            }
        }
    }

    #[test]
    fn empty_kernel_solves() {
        let k = kernel(".visible .entry k(.param .u64 A)\n{\n}\n");
        let cfg = Cfg::build(&k);
        let facts = solve(&Liveness, &k, &cfg);
        assert!(facts.entry.is_empty() && facts.exit.is_empty());
    }
}
