//! Dominators and post-dominators over a [`Cfg`].
//!
//! Iterative set-intersection formulation over word-packed bitsets —
//! kernels have tens of blocks, so the O(n²) worst case is irrelevant,
//! and the sets make `dominates` queries O(1).
//!
//! Post-dominance uses an implicit *virtual exit*: every block that may
//! leave the kernel (no successors, or a possibly-predicated
//! `ret`/`exit` terminator) is treated as an edge into it, so a block
//! with a predicated `ret` post-dominates nothing but itself. Blocks
//! that cannot reach any exit (infinite loops) have undefined
//! post-dominators and report `false` from [`Dominance::dominates`].

use crate::ast::{Instr, Kernel};
use crate::cfg::Cfg;

/// A fixed-capacity bitset over block ids.
#[derive(Clone, PartialEq, Eq)]
struct Bits {
    words: Vec<u64>,
}

impl Bits {
    fn empty(n: usize) -> Bits {
        Bits {
            words: vec![0; n.div_ceil(64)],
        }
    }

    fn full(n: usize) -> Bits {
        let mut b = Bits {
            words: vec![!0u64; n.div_ceil(64)],
        };
        // Clear the padding bits so equality comparisons stay exact.
        if !n.is_multiple_of(64) {
            if let Some(last) = b.words.last_mut() {
                *last = (1u64 << (n % 64)) - 1;
            }
        }
        b
    }

    fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    fn intersect_with(&mut self, other: &Bits) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
    }

    fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// A dominance relation (forward dominators or post-dominators).
pub struct Dominance {
    /// `sets[b]` = blocks dominating `b`; `None` when dominance is
    /// undefined for `b` (unreachable from the root(s)).
    sets: Vec<Option<Bits>>,
    /// Immediate dominator of each block (`None` for roots and blocks
    /// with undefined dominance).
    pub idom: Vec<Option<usize>>,
}

impl Dominance {
    /// Whether `a` dominates `b` (reflexively). `false` when `b`'s
    /// dominance is undefined.
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        self.sets
            .get(b)
            .and_then(Option::as_ref)
            .is_some_and(|s| s.contains(a))
    }

    /// Whether `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: usize, b: usize) -> bool {
        a != b && self.dominates(a, b)
    }

    /// Whether dominance is defined for `b` (it is reachable from the
    /// relation's root(s)).
    pub fn defined(&self, b: usize) -> bool {
        self.sets.get(b).is_some_and(Option::is_some)
    }
}

/// Generic iterative solver: `preds[b]` are the edges facts flow along
/// (CFG predecessors for dominators, successors for post-dominators) and
/// `roots` start with `dom(r) = {r}`.
fn solve(n: usize, preds: &[Vec<usize>], roots: &[usize]) -> Dominance {
    let mut is_root = vec![false; n];
    for &r in roots {
        is_root[r] = true;
    }
    // Blocks reachable from the roots along the flow direction.
    let mut reach = vec![false; n];
    {
        let mut succs_of: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (b, ps) in preds.iter().enumerate() {
            for &p in ps {
                succs_of[p].push(b);
            }
        }
        let mut stack: Vec<usize> = roots.to_vec();
        for &r in roots {
            reach[r] = true;
        }
        while let Some(b) = stack.pop() {
            for &s in &succs_of[b] {
                if !reach[s] {
                    reach[s] = true;
                    stack.push(s);
                }
            }
        }
    }

    let mut sets: Vec<Bits> = (0..n)
        .map(|b| {
            if is_root[b] {
                let mut s = Bits::empty(n);
                s.insert(b);
                s
            } else {
                Bits::full(n)
            }
        })
        .collect();
    loop {
        let mut changed = false;
        for b in 0..n {
            if is_root[b] || !reach[b] {
                continue;
            }
            let mut acc = Bits::full(n);
            for &p in &preds[b] {
                if reach[p] {
                    acc.intersect_with(&sets[p]);
                }
            }
            acc.insert(b);
            if acc != sets[b] {
                sets[b] = acc;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // idom(b): the strict dominator whose own set is one smaller.
    let counts: Vec<usize> = sets.iter().map(Bits::count).collect();
    let idom: Vec<Option<usize>> = (0..n)
        .map(|b| {
            if !reach[b] || is_root[b] {
                return None;
            }
            (0..n).find(|&a| a != b && sets[b].contains(a) && counts[a] == counts[b] - 1)
        })
        .collect();

    Dominance {
        sets: sets
            .into_iter()
            .zip(&reach)
            .map(|(s, &r)| if r { Some(s) } else { None })
            .collect(),
        idom,
    }
}

/// Forward dominators rooted at the entry block.
pub fn dominators(cfg: &Cfg) -> Dominance {
    let n = cfg.blocks.len();
    if n == 0 {
        return Dominance {
            sets: Vec::new(),
            idom: Vec::new(),
        };
    }
    solve(n, &cfg.predecessors(), &[0])
}

/// Post-dominators rooted at the virtual exit (see module docs). The
/// kernel is needed to recognise predicated `ret`/`exit` terminators,
/// whose blocks both fall through *and* may leave the kernel.
pub fn post_dominators(kernel: &Kernel, cfg: &Cfg) -> Dominance {
    let n = cfg.blocks.len();
    if n == 0 {
        return Dominance {
            sets: Vec::new(),
            idom: Vec::new(),
        };
    }
    // Facts flow against CFG edges: "preds" are the successors.
    let preds: Vec<Vec<usize>> = cfg.blocks.iter().map(|b| b.successors.clone()).collect();
    let roots: Vec<usize> = cfg
        .blocks
        .iter()
        .filter(|b| b.successors.is_empty() || ends_in_exit(kernel, b))
        .map(|b| b.id)
        .collect();
    if roots.is_empty() {
        // No block can leave the kernel: post-dominance is undefined
        // everywhere.
        return Dominance {
            sets: vec![None; n],
            idom: vec![None; n],
        };
    }
    solve(n, &preds, &roots)
}

/// Whether the block's last instruction is a (possibly predicated)
/// `ret`/`exit`.
fn ends_in_exit(kernel: &Kernel, block: &crate::cfg::BasicBlock) -> bool {
    block.instrs.last().is_some_and(|&i| {
        matches!(&kernel.body[i], Instr::Op { opcode, .. }
            if matches!(opcode.first().map(String::as_str), Some("ret") | Some("exit")))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_module;

    fn kernel(src: &str) -> Kernel {
        parse_module(src).unwrap().kernels.remove(0)
    }

    const DIAMOND: &str = r#"
.visible .entry k(.param .u64 A)
{
    setp.lt.s32 %p1, %r1, %r2;
    @%p1 bra THEN;
    mov.u32 %r3, 0;
    bra JOIN;
THEN:
    mov.u32 %r3, 1;
JOIN:
    ret;
}
"#;

    fn block_named(cfg: &Cfg, l: &str) -> usize {
        cfg.blocks
            .iter()
            .find(|b| b.label.as_deref() == Some(l))
            .unwrap()
            .id
    }

    #[test]
    fn diamond_dominators() {
        let k = kernel(DIAMOND);
        let cfg = Cfg::build(&k);
        let dom = dominators(&cfg);
        let then = block_named(&cfg, "THEN");
        let join = block_named(&cfg, "JOIN");
        // Entry dominates everything; neither arm dominates the join.
        for b in 0..cfg.blocks.len() {
            assert!(dom.dominates(0, b));
            assert!(dom.dominates(b, b), "reflexive");
        }
        assert!(!dom.dominates(then, join));
        assert_eq!(dom.idom[join], Some(0));
        assert_eq!(dom.idom[then], Some(0));
        assert_eq!(dom.idom[0], None);
    }

    #[test]
    fn diamond_post_dominators() {
        let k = kernel(DIAMOND);
        let cfg = Cfg::build(&k);
        let pdom = post_dominators(&k, &cfg);
        let then = block_named(&cfg, "THEN");
        let join = block_named(&cfg, "JOIN");
        // The join post-dominates every block; the arms post-dominate
        // only themselves.
        for b in 0..cfg.blocks.len() {
            assert!(pdom.dominates(join, b), "join pdoms {b}");
        }
        assert!(!pdom.dominates(then, 0));
        assert!(pdom.strictly_dominates(join, 0));
        assert!(!pdom.strictly_dominates(join, join));
    }

    #[test]
    fn predicated_ret_blocks_later_post_dominators() {
        let k =
            kernel(".visible .entry k(.param .u64 A)\n{\n @%p1 ret;\n mov.u32 %r1, 1;\n ret;\n}\n");
        let cfg = Cfg::build(&k);
        let pdom = post_dominators(&k, &cfg);
        assert_eq!(cfg.blocks.len(), 2);
        // Block 1 does NOT post-dominate block 0: the predicated ret can
        // leave the kernel first.
        assert!(!pdom.dominates(1, 0));
        assert!(pdom.dominates(0, 0) && pdom.dominates(1, 1));
    }

    #[test]
    fn unreachable_block_has_undefined_dominance() {
        let k = kernel(
            ".visible .entry k(.param .u64 A)\n{\n bra END;\n mov.u32 %r1, 1;\nEND:\n ret;\n}\n",
        );
        let cfg = Cfg::build(&k);
        let dom = dominators(&cfg);
        let dead = cfg.reachable().iter().position(|&r| !r).unwrap();
        assert!(!dom.defined(dead));
        assert!(!dom.dominates(0, dead));
    }

    #[test]
    fn infinite_loop_has_undefined_post_dominance() {
        let k = kernel(
            ".visible .entry k(.param .u64 A)\n{\nLOOP:\n add.u32 %r1, %r1, 1;\n bra LOOP;\n}\n",
        );
        let cfg = Cfg::build(&k);
        let pdom = post_dominators(&k, &cfg);
        for b in 0..cfg.blocks.len() {
            assert!(!pdom.defined(b));
        }
    }

    #[test]
    fn loop_body_post_dominates_entry() {
        let k = kernel(
            r#"
.visible .entry k(.param .u64 A)
{
    mov.u32 %r1, 0;
LOOP:
    add.u32 %r1, %r1, 1;
    setp.lt.u32 %p1, %r1, %r2;
    @%p1 bra LOOP;
    ret;
}
"#,
        );
        let cfg = Cfg::build(&k);
        let dom = dominators(&cfg);
        let pdom = post_dominators(&k, &cfg);
        let body = block_named(&cfg, "LOOP");
        // The loop body is on every path: it dominates the exit block
        // and post-dominates the entry.
        let exit = cfg.blocks.len() - 1;
        assert!(dom.dominates(body, exit));
        assert!(pdom.dominates(body, 0));
        assert!(pdom.dominates(exit, 0));
    }

    #[test]
    fn empty_cfg() {
        let k = kernel(".visible .entry k(.param .u64 A)\n{\n}\n");
        let cfg = Cfg::build(&k);
        assert!(dominators(&cfg).idom.is_empty());
        assert!(post_dominators(&k, &cfg).idom.is_empty());
    }
}
