//! Loop structure, induction variables, and value ranges.
//!
//! Three pieces feed the static profiler ([`crate::profile`]):
//!
//! - **Natural loops** over the [`Cfg`]: back edges `b → h` where the
//!   header `h` dominates `b`, each with its body block set. Back edges
//!   whose target does not dominate the source mark the CFG
//!   *irreducible* and every downstream analysis degrades to ⊤.
//! - **Basic induction variables**: registers whose only definitions
//!   inside a loop are self-increments `add/sub r, r, imm`. Their
//!   per-iteration step is the sum of the increments on the single
//!   in-loop def (multiple defs disqualify the register — a join of
//!   differently-advanced copies is not affine).
//! - **Value ranges**: a forward interval analysis on the generic
//!   worklist solver ([`crate::dataflow`]). The lattice per register is
//!   `⊥ < [lo, hi] < ⊤` with *widening at joins* — when a bound grows
//!   it jumps straight to unbounded, so the lattice height is finite
//!   and loops converge in one round trip at the cost of precision
//!   (an `i = 0..n` counter reads as `[0, +∞)`). Trip counts recover
//!   the lost bound where the exit guard compares a basic IV against a
//!   constant-range register.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{Instr, Kernel, Operand};
use crate::cfg::Cfg;
use crate::dataflow::{forward_instr_facts, solve, DataflowProblem, Direction};
use crate::dominators::dominators;

/// A closed-ish integer interval; `None` bounds are ±∞.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueRange {
    /// Lower bound (`None` = −∞).
    pub lo: Option<i64>,
    /// Upper bound (`None` = +∞).
    pub hi: Option<i64>,
}

impl ValueRange {
    /// The full range ⊤.
    pub fn top() -> ValueRange {
        ValueRange { lo: None, hi: None }
    }

    /// A single value.
    pub fn exact(v: i64) -> ValueRange {
        ValueRange {
            lo: Some(v),
            hi: Some(v),
        }
    }

    /// `[lo, +∞)`.
    pub fn at_least(lo: i64) -> ValueRange {
        ValueRange {
            lo: Some(lo),
            hi: None,
        }
    }

    /// The constant this range pins down, if both bounds agree.
    pub fn as_const(&self) -> Option<i64> {
        match (self.lo, self.hi) {
            (Some(a), Some(b)) if a == b => Some(a),
            _ => None,
        }
    }

    /// Widening join: a bound that differs between the operands goes
    /// straight to unbounded, so chains of joins terminate.
    fn widen_join(&self, other: &ValueRange) -> ValueRange {
        ValueRange {
            lo: match (self.lo, other.lo) {
                (Some(a), Some(b)) if a == b => Some(a),
                _ => None,
            },
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) if a == b => Some(a),
                _ => None,
            },
        }
    }

    fn add(&self, other: &ValueRange) -> ValueRange {
        let add = |a: Option<i64>, b: Option<i64>| a.zip(b).and_then(|(a, b)| a.checked_add(b));
        ValueRange {
            lo: add(self.lo, other.lo),
            hi: add(self.hi, other.hi),
        }
    }

    fn sub(&self, other: &ValueRange) -> ValueRange {
        let sub = |a: Option<i64>, b: Option<i64>| a.zip(b).and_then(|(a, b)| a.checked_sub(b));
        ValueRange {
            lo: sub(self.lo, other.hi),
            hi: sub(self.hi, other.lo),
        }
    }

    fn mul_const(&self, k: i64) -> ValueRange {
        let mul = |a: Option<i64>| a.and_then(|a| a.checked_mul(k));
        let (lo, hi) = if k >= 0 {
            (mul(self.lo), mul(self.hi))
        } else {
            (mul(self.hi), mul(self.lo))
        };
        ValueRange { lo, hi }
    }
}

/// One natural loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// Header block id (the back edges' target).
    pub header: usize,
    /// Back edges `(source, header)` forming this loop.
    pub back_edges: Vec<(usize, usize)>,
    /// Block ids in the loop body, header included.
    pub body: BTreeSet<usize>,
}

impl NaturalLoop {
    /// Whether body index `idx` (an instruction) sits inside the loop.
    pub fn contains_instr(&self, cfg: &Cfg, idx: usize) -> bool {
        self.body
            .iter()
            .any(|&b| cfg.blocks[b].instrs.contains(&idx))
    }
}

/// A basic induction variable of one loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InductionVar {
    /// Register name.
    pub reg: String,
    /// Loop header block id.
    pub header: usize,
    /// Per-iteration step (signed).
    pub step: i64,
    /// Body index of the self-increment instruction.
    pub def_idx: usize,
}

/// Loop structure + induction variables + trip counts for one kernel.
#[derive(Debug, Clone, Default)]
pub struct InductionSummary {
    /// Natural loops, one per distinct header, headers ascending.
    pub loops: Vec<NaturalLoop>,
    /// Basic IVs by register name.
    pub ivs: BTreeMap<String, InductionVar>,
    /// Proven iteration counts per loop header (absent = unknown).
    pub trips: BTreeMap<usize, u64>,
    /// The CFG has a back edge whose target does not dominate its
    /// source (or a cycle with no back edge at all): loop-based
    /// reasoning is unsound, callers must degrade to ⊤.
    pub irreducible: bool,
}

impl InductionSummary {
    /// The loop (by header) whose body contains instruction `idx`.
    pub fn loop_of_instr(&self, cfg: &Cfg, idx: usize) -> Option<&NaturalLoop> {
        self.loops.iter().find(|l| l.contains_instr(cfg, idx))
    }
}

/// Find the natural loops of `cfg`. Returns `(loops, irreducible)`.
pub fn natural_loops(cfg: &Cfg) -> (Vec<NaturalLoop>, bool) {
    let dom = dominators(cfg);
    let mut by_header: BTreeMap<usize, NaturalLoop> = BTreeMap::new();
    for b in &cfg.blocks {
        for &s in &b.successors {
            if dom.dominates(s, b.id) {
                // Back edge b → s with the header dominating the source.
                let l = by_header.entry(s).or_insert_with(|| NaturalLoop {
                    header: s,
                    back_edges: Vec::new(),
                    body: BTreeSet::from([s]),
                });
                l.back_edges.push((b.id, s));
                // Body: header plus every block reaching the back-edge
                // source without passing through the header.
                let preds = cfg.predecessors();
                let mut stack = vec![b.id];
                while let Some(x) = stack.pop() {
                    if l.body.insert(x) {
                        for &p in &preds[x] {
                            if !l.body.contains(&p) {
                                stack.push(p);
                            }
                        }
                    }
                }
            }
        }
    }
    // Any remaining cycle not accounted for by natural back edges means
    // the graph is irreducible: removing the natural back edges must
    // leave an acyclic graph.
    let loops: Vec<NaturalLoop> = by_header.into_values().collect();
    let back: BTreeSet<(usize, usize)> = loops
        .iter()
        .flat_map(|l| l.back_edges.iter().copied())
        .collect();
    let irreducible = has_cycle_without(cfg, &back);
    (loops, irreducible)
}

/// DFS cycle check ignoring the given edges.
fn has_cycle_without(cfg: &Cfg, skip: &BTreeSet<(usize, usize)>) -> bool {
    #[derive(Clone, Copy, PartialEq)]
    enum C {
        White,
        Gray,
        Black,
    }
    fn dfs(cfg: &Cfg, skip: &BTreeSet<(usize, usize)>, b: usize, color: &mut [C]) -> bool {
        color[b] = C::Gray;
        for &s in &cfg.blocks[b].successors {
            if skip.contains(&(b, s)) {
                continue;
            }
            match color[s] {
                C::Gray => return true,
                C::White => {
                    if dfs(cfg, skip, s, color) {
                        return true;
                    }
                }
                C::Black => {}
            }
        }
        color[b] = C::Black;
        false
    }
    let n = cfg.blocks.len();
    let mut color = vec![C::White; n];
    (0..n).any(|b| color[b] == C::White && dfs(cfg, skip, b, &mut color))
}

/// Whether `instr` is a self-increment `add/sub r, r, imm`, returning
/// the signed step.
fn self_increment(instr: &Instr) -> Option<(&str, i64)> {
    let Instr::Op {
        opcode,
        operands,
        pred: None,
    } = instr
    else {
        return None;
    };
    let sign = match opcode.first().map(String::as_str) {
        Some("add") => 1,
        Some("sub") => -1,
        _ => return None,
    };
    match operands.as_slice() {
        [Operand::Reg(d), Operand::Reg(a), Operand::Imm(k)] if d == a => Some((d, sign * k)),
        _ => None,
    }
}

/// Basic IVs of each loop: registers whose *only* in-loop definition is
/// an unpredicated self-increment.
pub fn induction_variables(
    kernel: &Kernel,
    cfg: &Cfg,
    loops: &[NaturalLoop],
) -> BTreeMap<String, InductionVar> {
    let mut ivs = BTreeMap::new();
    for l in loops {
        // Count every in-loop def per register.
        let mut defs: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for &b in &l.body {
            for &i in &cfg.blocks[b].instrs {
                if let Some(d) = kernel.body[i].def_register() {
                    defs.entry(d).or_default().push(i);
                }
            }
        }
        for (reg, sites) in defs {
            let [site] = sites.as_slice() else { continue };
            if let Some((r, step)) = self_increment(&kernel.body[*site]) {
                debug_assert_eq!(r, reg);
                // Step 0 (`add r, r, 0`) still qualifies: the register
                // is loop-invariant in disguise, and an iter
                // coefficient of 0 keeps its addresses affine instead
                // of tainting them unbounded.
                ivs.insert(
                    reg.to_string(),
                    InductionVar {
                        reg: reg.to_string(),
                        header: l.header,
                        step,
                        def_idx: *site,
                    },
                );
            }
        }
    }
    ivs
}

/// Interval analysis over registers (see module docs for the widening
/// discipline). Absent map entries are ⊥ (never written / unreachable).
pub struct RangeAnalysis;

/// The per-point fact: register → interval.
pub type RangeFact = BTreeMap<String, ValueRange>;

/// Evaluate an operand's range under `fact`. Registers named `tid_x` /
/// `ctaid_x` (the special-register movs) are non-negative.
fn operand_range(op: &Operand, fact: &RangeFact) -> ValueRange {
    match op {
        Operand::Imm(k) => ValueRange::exact(*k),
        Operand::Reg(r) if r.starts_with("tid") || r.starts_with("ctaid") => {
            ValueRange::at_least(0)
        }
        Operand::Reg(r) => fact.get(r).copied().unwrap_or_else(ValueRange::top),
        _ => ValueRange::top(),
    }
}

impl DataflowProblem for RangeAnalysis {
    type Fact = RangeFact;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary_fact(&self) -> Self::Fact {
        BTreeMap::new()
    }

    fn init_fact(&self) -> Self::Fact {
        BTreeMap::new()
    }

    fn join_into(&self, acc: &mut Self::Fact, from: &Self::Fact) {
        for (reg, r) in from {
            match acc.get_mut(reg) {
                // ⊥ ⊔ r = r.
                None => {
                    acc.insert(reg.clone(), *r);
                }
                Some(a) => *a = a.widen_join(r),
            }
        }
    }

    fn transfer(&self, _idx: usize, instr: &Instr, fact: &mut Self::Fact) {
        let Instr::Op {
            opcode,
            operands,
            pred,
        } = instr
        else {
            return;
        };
        let Some(dst) = instr.def_register() else {
            return;
        };
        let head = opcode.first().map(String::as_str).unwrap_or("");
        let computed = match (head, operands.as_slice()) {
            ("mov" | "cvta" | "cvt", [_, src, ..]) => operand_range(src, fact),
            ("add", [_, a, b]) => operand_range(a, fact).add(&operand_range(b, fact)),
            ("sub", [_, a, b]) => operand_range(a, fact).sub(&operand_range(b, fact)),
            ("mul" | "mad" | "shl", [_, a, b]) => {
                // Only constant scaling stays precise; `mad` and
                // variable shifts degrade to ⊤ below.
                match (head, operand_range(b, fact).as_const()) {
                    ("mul", Some(k)) => operand_range(a, fact).mul_const(k),
                    ("shl", Some(k)) if (0..63).contains(&k) => {
                        operand_range(a, fact).mul_const(1i64 << k)
                    }
                    _ => ValueRange::top(),
                }
            }
            _ => ValueRange::top(),
        };
        // A predicated def may not execute: widen with the incoming
        // value for monotonicity (mirrors ReachingDefs' gen-no-kill).
        let out = if pred.is_some() {
            fact.get(dst)
                .copied()
                .map(|old| old.widen_join(&computed))
                .unwrap_or(computed)
        } else {
            computed
        };
        fact.insert(dst.to_string(), out);
    }
}

/// Trip counts: for each loop, find the guard `setp.lt/le.* %p, iv, B`
/// whose predicate controls the back-edge branch, with `iv` a basic IV
/// of that loop with positive step and a known init, and `B` of
/// constant range at the guard. `trip = ceil((B - init) / step)`
/// (`+1` for `le`), clamped at 1.
fn trip_counts(
    kernel: &Kernel,
    cfg: &Cfg,
    loops: &[NaturalLoop],
    ivs: &BTreeMap<String, InductionVar>,
) -> BTreeMap<usize, u64> {
    let ranges = solve(&RangeAnalysis, kernel, cfg);
    let mut trips = BTreeMap::new();
    for l in loops {
        let Some(trip) = trip_of_loop(kernel, cfg, l, ivs, &ranges.entry) else {
            continue;
        };
        trips.insert(l.header, trip);
    }
    trips
}

fn trip_of_loop(
    kernel: &Kernel,
    cfg: &Cfg,
    l: &NaturalLoop,
    ivs: &BTreeMap<String, InductionVar>,
    entry_facts: &[RangeFact],
) -> Option<u64> {
    // The back-edge branch: `@%p bra HEADER` at the end of a source
    // block. One back edge only — multi-latch loops stay unknown.
    let [(src, _)] = l.back_edges.as_slice() else {
        return None;
    };
    let &branch_idx = cfg.blocks[*src].instrs.last()?;
    let Instr::Op {
        opcode,
        pred: Some(p),
        ..
    } = &kernel.body[branch_idx]
    else {
        return None;
    };
    if opcode.first().map(String::as_str) != Some("bra") {
        return None;
    }
    // The setp defining the predicate, in the same block, before the
    // branch (the common codegen shape).
    let setp_idx = cfg.blocks[*src]
        .instrs
        .iter()
        .rev()
        .copied()
        .find(|&i| kernel.body[i].def_register() == Some(p.as_str()))?;
    let Instr::Op {
        opcode: setp_op,
        operands,
        ..
    } = &kernel.body[setp_idx]
    else {
        return None;
    };
    if setp_op.first().map(String::as_str) != Some("setp") {
        return None;
    }
    let cmp = setp_op.get(1).map(String::as_str)?;
    let inclusive = match cmp {
        "lt" => false,
        "le" => true,
        _ => return None,
    };
    let [Operand::Reg(_), Operand::Reg(iv_reg), bound] = operands.as_slice() else {
        return None;
    };
    let iv = ivs.get(iv_reg)?;
    if iv.header != l.header || iv.step <= 0 {
        return None;
    }
    // Bound range at the guard (replayed within the block).
    let per_instr = forward_instr_facts(&RangeAnalysis, kernel, &cfg.blocks[*src], {
        &entry_facts[*src]
    });
    let fact = per_instr
        .iter()
        .find(|(i, _)| *i == setp_idx)
        .map(|(_, f)| f)?;
    let bound = operand_range(bound, fact).as_const()?;
    // IV init: the interval entering the header from outside must pin
    // the register exactly. The header's entry fact joins the back edge
    // (widened), so look at the init along the preheader path instead:
    // the last unpredicated `mov iv, imm` before the header's first
    // instruction, with no other outside-loop def after it.
    let init = iv_init(kernel, cfg, l, iv_reg)?;
    let distance = bound - init + i64::from(inclusive);
    if distance <= 0 {
        return Some(1); // guard false after the mandatory first iteration
    }
    let trip = (distance as u64).div_ceil(iv.step as u64);
    Some(trip.max(1))
}

/// The constant initial value of `reg` on loop entry: the unique
/// outside-loop definition, which must be an unpredicated `mov reg, imm`.
/// No outside-loop def at all means the register starts at an
/// undefined value — callers treat it as unknown.
fn iv_init(kernel: &Kernel, cfg: &Cfg, l: &NaturalLoop, reg: &str) -> Option<i64> {
    let mut init = None;
    for b in &cfg.blocks {
        if l.body.contains(&b.id) {
            continue;
        }
        for &i in &b.instrs {
            if kernel.body[i].def_register() == Some(reg) {
                if init.is_some() {
                    return None; // multiple outside defs: ambiguous
                }
                let Instr::Op {
                    opcode,
                    operands,
                    pred: None,
                } = &kernel.body[i]
                else {
                    return None;
                };
                if opcode.first().map(String::as_str) != Some("mov") {
                    return None;
                }
                match operands.as_slice() {
                    [_, Operand::Imm(k)] => init = Some(*k),
                    _ => return None,
                }
            }
        }
    }
    init
}

/// Run the whole loop analysis for one kernel.
pub fn analyze_induction(kernel: &Kernel, cfg: &Cfg) -> InductionSummary {
    let (loops, irreducible) = natural_loops(cfg);
    if irreducible {
        return InductionSummary {
            loops,
            irreducible,
            ..InductionSummary::default()
        };
    }
    let ivs = induction_variables(kernel, cfg, &loops);
    let trips = trip_counts(kernel, cfg, &loops, &ivs);
    InductionSummary {
        loops,
        ivs,
        trips,
        irreducible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_module;

    fn kernel(src: &str) -> Kernel {
        parse_module(src).unwrap().kernels.remove(0)
    }

    const COUNTED: &str = r#"
.visible .entry k(.param .u64 A)
{
    mov.u32 %r1, 0;
LOOP:
    add.u32 %r1, %r1, 1;
    setp.lt.u32 %p1, %r1, %r2;
    @%p1 bra LOOP;
    ret;
}
"#;

    #[test]
    fn finds_the_loop_and_iv() {
        let k = kernel(COUNTED);
        let cfg = Cfg::build(&k);
        let s = analyze_induction(&k, &cfg);
        assert!(!s.irreducible);
        assert_eq!(s.loops.len(), 1);
        let iv = s.ivs.get("r1").expect("r1 is a basic IV");
        assert_eq!(iv.step, 1);
        assert_eq!(iv.header, s.loops[0].header);
        // Bound %r2 is unknown: no trip count.
        assert!(s.trips.is_empty());
    }

    #[test]
    fn constant_bound_gives_trip_count() {
        let k = kernel(
            r#"
.visible .entry k(.param .u64 A)
{
    mov.u32 %r1, 0;
    mov.u32 %r2, 12;
LOOP:
    add.u32 %r1, %r1, 2;
    setp.lt.u32 %p1, %r1, %r2;
    @%p1 bra LOOP;
    ret;
}
"#,
        );
        let cfg = Cfg::build(&k);
        let s = analyze_induction(&k, &cfg);
        let header = s.loops[0].header;
        // r1: 0,2,4,...; loop repeats while r1 < 12 → 6 iterations.
        assert_eq!(s.trips.get(&header), Some(&6));
    }

    #[test]
    fn le_bound_is_inclusive() {
        let k = kernel(
            r#"
.visible .entry k(.param .u64 A)
{
    mov.u32 %r1, 0;
    mov.u32 %r2, 3;
LOOP:
    add.u32 %r1, %r1, 1;
    setp.le.u32 %p1, %r1, %r2;
    @%p1 bra LOOP;
    ret;
}
"#,
        );
        let cfg = Cfg::build(&k);
        let s = analyze_induction(&k, &cfg);
        // r1 = 1..=3 pass the guard, the r1=4 check fails → 4 iterations.
        assert_eq!(s.trips.get(&s.loops[0].header), Some(&4));
    }

    #[test]
    fn multiple_in_loop_defs_disqualify_iv() {
        let k = kernel(
            r#"
.visible .entry k(.param .u64 A)
{
    mov.u32 %r1, 0;
LOOP:
    add.u32 %r1, %r1, 1;
    add.u32 %r1, %r1, 1;
    setp.lt.u32 %p1, %r1, %r2;
    @%p1 bra LOOP;
    ret;
}
"#,
        );
        let cfg = Cfg::build(&k);
        let s = analyze_induction(&k, &cfg);
        assert!(s.ivs.is_empty(), "{:?}", s.ivs);
    }

    #[test]
    fn non_self_increment_is_not_iv() {
        let k = kernel(
            r#"
.visible .entry k(.param .u64 A)
{
    mov.u32 %r1, 0;
LOOP:
    mul.lo.u32 %r1, %r1, 3;
    setp.lt.u32 %p1, %r1, %r2;
    @%p1 bra LOOP;
    ret;
}
"#,
        );
        let cfg = Cfg::build(&k);
        let s = analyze_induction(&k, &cfg);
        assert!(s.ivs.is_empty());
    }

    #[test]
    fn straight_line_has_no_loops() {
        let k = kernel(".visible .entry k(.param .u64 A)\n{\n mov.u32 %r1, 1;\n ret;\n}\n");
        let cfg = Cfg::build(&k);
        let s = analyze_induction(&k, &cfg);
        assert!(s.loops.is_empty() && s.ivs.is_empty() && !s.irreducible);
    }

    #[test]
    fn ranges_track_constants_and_widen_in_loops() {
        let k = kernel(COUNTED);
        let cfg = Cfg::build(&k);
        let facts = solve(&RangeAnalysis, &k, &cfg);
        // In the exit block, r1 is widened (known ≥ nothing after the
        // loop join drops the bound).
        let exit = cfg.blocks.len() - 1;
        let r1 = facts.entry[exit].get("r1").copied().unwrap();
        assert_eq!(r1, ValueRange::top());
        // But the constant init is exact at the header's first visit —
        // check the straight-line prefix block.
        let r1_entry = facts.exit[0].get("r1").copied().unwrap();
        assert_eq!(r1_entry, ValueRange::exact(0));
    }

    #[test]
    fn range_arithmetic() {
        let a = ValueRange::exact(4);
        let b = ValueRange {
            lo: Some(0),
            hi: Some(10),
        };
        assert_eq!(a.add(&b).lo, Some(4));
        assert_eq!(a.add(&b).hi, Some(14));
        assert_eq!(b.mul_const(-2).lo, Some(-20));
        assert_eq!(b.mul_const(-2).hi, Some(0));
        assert_eq!(a.sub(&b).lo, Some(-6));
        assert_eq!(a.sub(&b).hi, Some(4));
        assert_eq!(ValueRange::top().add(&a), ValueRange::top());
    }

    #[test]
    fn nested_loops_found() {
        let k = kernel(
            r#"
.visible .entry k(.param .u64 A)
{
    mov.u32 %r1, 0;
OUTER:
    mov.u32 %r2, 0;
INNER:
    add.u32 %r2, %r2, 1;
    setp.lt.u32 %p1, %r2, %r8;
    @%p1 bra INNER;
    add.u32 %r1, %r1, 1;
    setp.lt.u32 %p2, %r1, %r9;
    @%p2 bra OUTER;
    ret;
}
"#,
        );
        let cfg = Cfg::build(&k);
        let s = analyze_induction(&k, &cfg);
        assert_eq!(s.loops.len(), 2);
        assert!(!s.irreducible);
        assert!(s.ivs.contains_key("r1") && s.ivs.contains_key("r2"));
        // The inner loop's body is a subset of the outer's.
        let (outer, inner) = {
            let a = &s.loops[0];
            let b = &s.loops[1];
            if a.body.len() > b.body.len() {
                (a, b)
            } else {
                (b, a)
            }
        };
        assert!(inner.body.is_subset(&outer.body));
    }
}
