//! A concrete mini-PTX interpreter: the dynamic oracle the static
//! profiler is validated against.
//!
//! Executes one thread of a kernel with concrete parameter base
//! addresses and a concrete `tid`, recording every global access
//! (address + width). Tests compare the recorded footprint against the
//! page set predicted by [`crate::profile`] — the static set must be a
//! superset (see the proptests in `nuba-bench`).
//!
//! Semantics are deliberately simple and match the static side's
//! assumptions: all registers hold `i64`, arithmetic does not wrap
//! (no 32-bit truncation on `mul.lo` — the same documented imprecision
//! the affine pass has), global loads return 0, uninitialized registers
//! read 0. Execution stops at `ret`/`exit`, at `max_steps`, or on a
//! branch to an unknown label.

use std::collections::{BTreeMap, HashMap};

use crate::affine::GlobalAccessKind;
use crate::affine::{access_width, AccessExpr};
use crate::ast::{Instr, Kernel, MemBase, Operand};

/// Inputs for one interpreted thread.
#[derive(Debug, Clone, Default)]
pub struct InterpConfig {
    /// Concrete base address per kernel parameter.
    pub params: BTreeMap<String, i64>,
    /// The thread id (`%tid_x`).
    pub tid: i64,
    /// Step budget; 0 means the default (65536).
    pub max_steps: usize,
}

/// One recorded global access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordedAccess {
    /// Body index of the instruction.
    pub idx: usize,
    /// Load / store / atomic.
    pub kind: GlobalAccessKind,
    /// Concrete byte address.
    pub addr: i64,
    /// Access width in bytes.
    pub width: u32,
}

/// The result of interpreting one thread.
#[derive(Debug, Clone, Default)]
pub struct InterpResult {
    /// Global accesses in execution order.
    pub accesses: Vec<RecordedAccess>,
    /// Instructions executed.
    pub steps: usize,
    /// Whether the thread reached `ret`/`exit` within the budget.
    pub completed: bool,
}

fn value(op: &Operand, regs: &HashMap<String, i64>, tid: i64) -> i64 {
    match op {
        Operand::Imm(k) => *k,
        Operand::Reg(r) if r == "tid_x" => tid,
        Operand::Reg(r) => regs.get(r).copied().unwrap_or(0),
        _ => 0,
    }
}

fn compare(cmp: &str, a: i64, b: i64) -> i64 {
    let t = match cmp {
        "lt" => a < b,
        "le" => a <= b,
        "gt" => a > b,
        "ge" => a >= b,
        "eq" => a == b,
        "ne" => a != b,
        _ => false,
    };
    i64::from(t)
}

/// Interpret one thread of `kernel` under `config`.
pub fn interpret(kernel: &Kernel, config: &InterpConfig) -> InterpResult {
    let max_steps = if config.max_steps == 0 {
        65_536
    } else {
        config.max_steps
    };
    let labels: HashMap<&str, usize> = kernel
        .body
        .iter()
        .enumerate()
        .filter_map(|(i, instr)| match instr {
            Instr::Label(l) => Some((l.as_str(), i)),
            _ => None,
        })
        .collect();

    let mut regs: HashMap<String, i64> = HashMap::new();
    let mut result = InterpResult::default();
    let mut pc = 0usize;
    while pc < kernel.body.len() && result.steps < max_steps {
        let instr = &kernel.body[pc];
        let Instr::Op {
            opcode,
            operands,
            pred,
        } = instr
        else {
            pc += 1;
            continue;
        };
        result.steps += 1;
        if let Some(p) = pred {
            if regs.get(p.as_str()).copied().unwrap_or(0) == 0 {
                pc += 1;
                continue;
            }
        }
        let head = opcode.first().map(String::as_str).unwrap_or("");
        // Global accesses record their address before the value effect.
        if instr.is_global_load() || instr.is_global_store() || instr.is_global_atomic() {
            let kind = if instr.is_global_load() {
                GlobalAccessKind::Load
            } else if instr.is_global_store() {
                GlobalAccessKind::Store
            } else {
                GlobalAccessKind::Atomic
            };
            if let Some(Operand::Mem {
                base: MemBase::Reg(r),
                offset,
            }) = operands.iter().find(|o| matches!(o, Operand::Mem { .. }))
            {
                result.accesses.push(RecordedAccess {
                    idx: pc,
                    kind,
                    addr: regs
                        .get(r.as_str())
                        .copied()
                        .unwrap_or(0)
                        .wrapping_add(*offset),
                    width: access_width(opcode),
                });
            }
        }
        match head {
            "ret" | "exit" => {
                result.completed = true;
                return result;
            }
            "bra" => {
                let target = operands.iter().find_map(|o| match o {
                    Operand::Label(l) => labels.get(l.as_str()).copied(),
                    _ => None,
                });
                match target {
                    Some(t) => {
                        pc = t;
                        continue;
                    }
                    None => return result, // unknown label: halt
                }
            }
            "bar" => {}
            _ => {
                if let Some(dst) = instr.def_register() {
                    let v = |i: usize| operands.get(i).map_or(0, |o| value(o, &regs, config.tid));
                    let out = match (head, operands.len()) {
                        ("ld", _) => match operands.get(1) {
                            Some(Operand::Mem {
                                base: MemBase::Param(p),
                                ..
                            }) => config.params.get(p).copied().unwrap_or(0),
                            _ => 0, // global/other loads read 0
                        },
                        ("mov" | "cvta" | "cvt", _) => v(1),
                        ("add", 3) => v(1).wrapping_add(v(2)),
                        ("sub", 3) => v(1).wrapping_sub(v(2)),
                        ("mul", _) => v(1).wrapping_mul(v(2)),
                        ("mad" | "fma", 4) => v(1).wrapping_mul(v(2)).wrapping_add(v(3)),
                        ("shl", 3) => v(1).wrapping_shl(v(2).clamp(0, 63) as u32),
                        ("max", 3) => v(1).max(v(2)),
                        ("min", 3) => v(1).min(v(2)),
                        ("setp", _) => {
                            compare(opcode.get(1).map(String::as_str).unwrap_or(""), v(1), v(2))
                        }
                        ("atom", _) => 0, // returns the (zero) old value
                        _ => 0,
                    };
                    regs.insert(dst.to_string(), out);
                }
            }
        }
        pc += 1;
    }
    result.completed = pc >= kernel.body.len();
    result
}

/// Evaluate an affine [`AccessExpr`] address concretely: the same
/// parameter bases and tid as the interpreter, a concrete iteration
/// number per loop. Returns `None` for unknown addresses. Test helper
/// tying the static and dynamic views together.
pub fn concrete_addr(
    expr: &AccessExpr,
    params: &BTreeMap<String, i64>,
    tid: i64,
    iters: &BTreeMap<usize, i64>,
) -> Option<i64> {
    let form = expr.addr.as_ref()?;
    let mut addr = form.konst;
    addr = addr.wrapping_add(form.tid.wrapping_mul(tid));
    for (p, c) in &form.params {
        addr = addr.wrapping_add(c.wrapping_mul(params.get(p).copied().unwrap_or(0)));
    }
    for (h, c) in &form.iters {
        addr = addr.wrapping_add(c.wrapping_mul(iters.get(h).copied().unwrap_or(0)));
    }
    Some(addr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_module;

    fn kernel(src: &str) -> Kernel {
        parse_module(src).unwrap().kernels.remove(0)
    }

    fn run(src: &str, tid: i64, params: &[(&str, i64)]) -> InterpResult {
        let k = kernel(src);
        let cfg = InterpConfig {
            params: params.iter().map(|(n, a)| (n.to_string(), *a)).collect(),
            tid,
            max_steps: 0,
        };
        interpret(&k, &cfg)
    }

    #[test]
    fn straight_line_records_addresses() {
        let r = run(
            r#"
.visible .entry k(.param .u64 S, .param .u64 P)
{
    ld.param.u64 %rds, [S];
    ld.param.u64 %rdp, [P];
    cvta.to.global.u64 %rds, %rds;
    mov.u32 %r1, %tid_x;
    mul.wide.u32 %rd4, %r1, 4;
    add.s64 %rd5, %rds, %rd4;
    add.s64 %rd6, %rdp, %rd4;
    ld.global.f32 %f1, [%rd5+8];
    st.global.f32 [%rd6], %f1;
    ret;
}
"#,
            7,
            &[("S", 0x1000), ("P", 0x8000)],
        );
        assert!(r.completed);
        assert_eq!(r.accesses.len(), 2);
        assert_eq!(r.accesses[0].addr, 0x1000 + 4 * 7 + 8);
        assert_eq!(r.accesses[0].kind, GlobalAccessKind::Load);
        assert_eq!(r.accesses[1].addr, 0x8000 + 4 * 7);
        assert_eq!(r.accesses[1].kind, GlobalAccessKind::Store);
    }

    #[test]
    fn loop_executes_trip_times() {
        let r = run(
            r#"
.visible .entry k(.param .u64 S)
{
    ld.param.u64 %rds, [S];
    cvta.to.global.u64 %rds, %rds;
    mov.u32 %r2, 0;
    mov.u32 %r3, 5;
    mov.u64 %rd5, %rds;
LOOP:
    ld.global.f32 %f1, [%rd5];
    add.s64 %rd5, %rd5, 4;
    add.u32 %r2, %r2, 1;
    setp.lt.u32 %p1, %r2, %r3;
    @%p1 bra LOOP;
    ret;
}
"#,
            0,
            &[("S", 4096)],
        );
        assert!(r.completed);
        let addrs: Vec<i64> = r.accesses.iter().map(|a| a.addr).collect();
        assert_eq!(addrs, vec![4096, 4100, 4104, 4108, 4112]);
    }

    #[test]
    fn runaway_loop_hits_step_budget() {
        let k = kernel(
            r#"
.visible .entry k(.param .u64 S)
{
LOOP:
    bra LOOP;
}
"#,
        );
        let r = interpret(
            &k,
            &InterpConfig {
                max_steps: 100,
                ..InterpConfig::default()
            },
        );
        assert!(!r.completed);
        assert_eq!(r.steps, 100);
    }

    #[test]
    fn predicated_store_skipped_when_false() {
        let r = run(
            r#"
.visible .entry k(.param .u64 P)
{
    ld.param.u64 %rdp, [P];
    mov.u32 %r1, %tid_x;
    setp.lt.u32 %p1, %r1, 4;
    @%p1 st.global.f32 [%rdp], %f1;
    ret;
}
"#,
            9,
            &[("P", 64)],
        );
        assert!(r.completed);
        assert!(r.accesses.is_empty(), "tid 9 fails the guard");
        let r = run(
            r#"
.visible .entry k(.param .u64 P)
{
    ld.param.u64 %rdp, [P];
    mov.u32 %r1, %tid_x;
    setp.lt.u32 %p1, %r1, 4;
    @%p1 st.global.f32 [%rdp], %f1;
    ret;
}
"#,
            2,
            &[("P", 64)],
        );
        assert_eq!(r.accesses.len(), 1);
    }

    #[test]
    fn atomic_records_and_returns_zero() {
        let r = run(
            r#"
.visible .entry k(.param .u64 W)
{
    ld.param.u64 %rdb, [W];
    mov.u32 %r1, %tid_x;
    mul.wide.u32 %rd4, %r1, 4;
    add.s64 %rd8, %rdb, %rd4;
    atom.global.add.u32 %r4, [%rd8], 1;
    st.global.u32 [%rd8], %r4;
    ret;
}
"#,
            3,
            &[("W", 256)],
        );
        assert_eq!(r.accesses.len(), 2);
        assert_eq!(r.accesses[0].kind, GlobalAccessKind::Atomic);
        assert_eq!(r.accesses[0].addr, 256 + 12);
        assert_eq!(r.accesses[1].addr, 256 + 12);
    }

    #[test]
    fn concrete_addr_matches_interp_on_affine_kernel() {
        use crate::affine::affine_accesses;
        use crate::cfg::Cfg;
        let src = r#"
.visible .entry k(.param .u64 S)
{
    ld.param.u64 %rds, [S];
    cvta.to.global.u64 %rds, %rds;
    mov.u32 %r1, %tid_x;
    mul.wide.u32 %rd4, %r1, 4;
    add.s64 %rd5, %rds, %rd4;
    ld.global.f32 %f1, [%rd5+16];
    ret;
}
"#;
        let k = kernel(src);
        let cfg = Cfg::build(&k);
        let aff = affine_accesses(&k, &cfg);
        let params: BTreeMap<String, i64> = BTreeMap::from([("S".to_string(), 10_000)]);
        for tid in [0, 1, 13] {
            let dynamic = run(src, tid, &[("S", 10_000)]);
            let stat = concrete_addr(&aff.accesses[0], &params, tid, &BTreeMap::new()).unwrap();
            assert_eq!(stat, dynamic.accesses[0].addr);
        }
    }
}
