#![warn(missing_docs)]

//! # nuba-compiler
//!
//! The compile-time half of Model-Driven Replication (paper §5.2): a
//! parser for a practical subset of NVIDIA PTX \[62\], an intra-kernel
//! dataflow analysis that classifies each kernel parameter (global-memory
//! array) as **read-only** or **read-write**, and a rewriter that turns
//! `ld.global` instructions whose addresses provably derive from
//! read-only arrays into the new `ld.global.ro` form the hardware uses to
//! identify replication candidates.
//!
//! Two analyses are provided:
//!
//! - [`analyze_kernel`] is flow-insensitive and conservative: register
//!   provenance (which params a register's value may derive from) is
//!   propagated to a fixpoint, any store through a register with
//!   unknown provenance taints *all* params, and a param stored through
//!   on **any** path is read-write for the whole kernel, matching the
//!   paper's "if a data structure is never written to within a kernel,
//!   it is marked read-only".
//! - [`analyze_kernel_flow`] is flow-sensitive, built on a generic
//!   worklist dataflow framework ([`dataflow`], [`mod@dominators`]): CFG
//!   edges whose guard predicate is provably constant-false are pruned,
//!   pointer provenance is tracked per program point with strong
//!   updates, and surviving stores are classified as guarded or
//!   unconditional via post-dominance. Its `read_only` set is always a
//!   superset of the flow-insensitive one, so it only ever *adds*
//!   replication candidates.
//!
//! ## Example
//!
//! ```
//! use nuba_compiler::{analyze_kernel, parse_module, rewrite_readonly_loads};
//!
//! let src = r#"
//! .visible .entry saxpy(.param .u64 X, .param .u64 Y)
//! {
//!     ld.param.u64 %rdx, [X];
//!     ld.param.u64 %rdy, [Y];
//!     cvta.to.global.u64 %rdx, %rdx;
//!     cvta.to.global.u64 %rdy, %rdy;
//!     ld.global.f32 %f1, [%rdx];
//!     ld.global.f32 %f2, [%rdy];
//!     fma.rn.f32 %f3, %f1, %f0, %f2;
//!     st.global.f32 [%rdy], %f3;
//!     ret;
//! }
//! "#;
//! let module = parse_module(src)?;
//! let summary = analyze_kernel(&module.kernels[0]);
//! assert!(summary.read_only.contains("X"));
//! assert!(!summary.read_only.contains("Y")); // stored through
//! let rewritten = rewrite_readonly_loads(&module.kernels[0]);
//! assert_eq!(rewritten.to_ptx().matches("ld.global.ro").count(), 1);
//! # Ok::<(), nuba_compiler::PtxError>(())
//! ```

pub mod affine;
pub mod analysis;
pub mod ast;
pub mod cfg;
pub mod dataflow;
pub mod dominators;
pub mod induction;
pub mod interp;
pub mod parse;
pub mod profile;
pub mod race;
pub mod replication_safety;
pub mod rewrite;

pub use affine::{affine_accesses, AccessExpr, AffineAccesses, AffineForm, GlobalAccessKind};
pub use analysis::{analyze_kernel, analyze_kernel_reachable, KernelAccessSummary};
pub use ast::{Instr, Kernel, MemBase, Module, Operand};
pub use cfg::{BasicBlock, Cfg};
pub use dataflow::{
    solve as solve_dataflow, BlockFacts, DataflowProblem, Direction, Liveness, ReachingDefs,
};
pub use dominators::{dominators, post_dominators, Dominance};
pub use induction::{analyze_induction, InductionSummary, InductionVar, NaturalLoop, ValueRange};
pub use interp::{interpret, InterpConfig, InterpResult, RecordedAccess};
pub use parse::{parse_module, PtxError};
pub use profile::{
    profile_kernel, Footprint, KernelStaticProfile, ParamMode, ParamProfile, ProfileAssumptions,
    TierDemand,
};
pub use race::{detect_races, ParamWriteSummary, RaceReport};
pub use replication_safety::{analyze_kernel_flow, ReplicationSafety};
pub use rewrite::{rewrite_readonly_loads, rewrite_readonly_loads_precise};
