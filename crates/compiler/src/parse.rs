//! A line-oriented parser for the PTX subset.

use std::fmt;

use crate::ast::{Instr, Kernel, MemBase, Module, Operand};

/// A parse error with the offending (1-based) line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PtxError {
    /// 1-based source line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for PtxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ptx parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PtxError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, PtxError> {
    Err(PtxError {
        line,
        message: message.into(),
    })
}

/// Parse a module containing zero or more `.visible .entry` kernels.
///
/// Supported syntax: `//` comments, kernel headers with `.param`
/// declarations (possibly spanning lines), labels (`NAME:`), optionally
/// predicated instructions (`@%p bra L;`), register / immediate / memory
/// (`[%r+off]`, `[param]`) / label operands.
///
/// # Errors
/// Returns [`PtxError`] on malformed input, with the source line number.
pub fn parse_module(src: &str) -> Result<Module, PtxError> {
    let mut kernels = Vec::new();
    let mut state = State::TopLevel;
    // Accumulates header text between `.entry` and the opening `{`.
    let mut header = String::new();
    let mut header_line = 0usize;

    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        match &mut state {
            State::TopLevel => {
                if line.starts_with(".visible") || line.starts_with(".entry") {
                    header.clear();
                    header.push_str(&line);
                    header_line = line_no;
                    if line.contains('{') || header_complete(&header) {
                        // Header may complete on one line.
                    }
                    state = State::Header;
                    // Fall through to completeness check below.
                    if let Some(k) = try_finish_header(&mut header, header_line)? {
                        kernels.push(k);
                        state = State::Body;
                    }
                } else {
                    return err(
                        line_no,
                        format!("expected kernel declaration, got `{line}`"),
                    );
                }
            }
            State::Header => {
                header.push(' ');
                header.push_str(&line);
                if let Some(k) = try_finish_header(&mut header, header_line)? {
                    kernels.push(k);
                    state = State::Body;
                }
            }
            State::Body => {
                if line == "}" {
                    state = State::TopLevel;
                    continue;
                }
                if line == "{" {
                    continue;
                }
                let kernel = kernels.last_mut().expect("in body implies a kernel");
                for stmt in line.split(';') {
                    let stmt = stmt.trim();
                    if stmt.is_empty() {
                        continue;
                    }
                    kernel.body.push(parse_statement(stmt, line_no)?);
                }
            }
        }
    }
    if !matches!(state, State::TopLevel) {
        return err(src.lines().count(), "unterminated kernel (missing `}`)");
    }
    Ok(Module { kernels })
}

enum State {
    TopLevel,
    Header,
    Body,
}

fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// A header is complete once the parameter list's `)` has appeared.
fn header_complete(header: &str) -> bool {
    header.contains('(') && header.contains(')')
}

/// If `header` is complete, parse it into an empty-bodied kernel.
fn try_finish_header(header: &mut String, line: usize) -> Result<Option<Kernel>, PtxError> {
    if !header_complete(header) {
        return Ok(None);
    }
    let text = header.clone();
    header.clear();

    let open = text.find('(').expect("checked");
    let close = text.rfind(')').expect("checked");
    if close < open {
        return err(line, "mismatched parentheses in kernel header");
    }
    let before = &text[..open];
    let name = before
        .split_whitespace()
        .last()
        .filter(|n| !n.starts_with('.'))
        .map(str::to_string);
    let Some(name) = name else {
        return err(line, "kernel header missing a name");
    };

    let mut params = Vec::new();
    for piece in text[open + 1..close].split(',') {
        let piece = piece.trim();
        if piece.is_empty() {
            continue;
        }
        // `.param .u64 A` (alignment/type variations tolerated).
        let pname = piece.split_whitespace().last().unwrap_or_default();
        if pname.is_empty() || pname.starts_with('.') {
            return err(line, format!("malformed parameter `{piece}`"));
        }
        params.push(pname.to_string());
    }
    Ok(Some(Kernel {
        name,
        params,
        body: Vec::new(),
    }))
}

fn parse_statement(stmt: &str, line: usize) -> Result<Instr, PtxError> {
    // Label?
    if let Some(label) = stmt.strip_suffix(':') {
        if label
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$')
        {
            return Ok(Instr::Label(label.to_string()));
        }
    }

    // Optional predicate `@%p1` or `@!%p1`.
    let (pred, rest) = if let Some(r) = stmt.strip_prefix('@') {
        let r = r.trim_start();
        let r = r.strip_prefix('!').unwrap_or(r);
        let r = r.strip_prefix('%').unwrap_or(r);
        let end = r.find(char::is_whitespace).unwrap_or(r.len());
        (Some(r[..end].to_string()), r[end..].trim_start())
    } else {
        (None, stmt)
    };

    let (op_text, args_text) = match rest.find(char::is_whitespace) {
        Some(i) => (&rest[..i], rest[i..].trim()),
        None => (rest, ""),
    };
    if op_text.is_empty() {
        return err(line, "empty instruction");
    }
    let opcode: Vec<String> = op_text
        .split('.')
        .filter(|p| !p.is_empty())
        .map(str::to_string)
        .collect();
    if opcode.is_empty() {
        return err(line, format!("bad opcode `{op_text}`"));
    }

    let mut operands = Vec::new();
    if !args_text.is_empty() {
        for arg in split_operands(args_text) {
            operands.push(parse_operand(arg.trim(), line)?);
        }
    }
    Ok(Instr::Op {
        opcode,
        operands,
        pred,
    })
}

/// Split on commas that are not inside brackets or braces (vector
/// operands `{%f1, %f2}` are kept whole).
fn split_operands(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '[' | '{' => depth += 1,
            ']' | '}' => depth -= 1,
            ',' if depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

fn parse_operand(s: &str, line: usize) -> Result<Operand, PtxError> {
    if s.is_empty() {
        return err(line, "empty operand");
    }
    if let Some(reg) = s.strip_prefix('%') {
        return Ok(Operand::Reg(reg.to_string()));
    }
    if s.starts_with('[') && s.ends_with(']') {
        let inner = &s[1..s.len() - 1];
        let (base_text, offset) = match inner.find('+') {
            Some(i) => {
                let off: i64 = inner[i + 1..].trim().parse().map_err(|_| PtxError {
                    line,
                    message: format!("bad offset `{inner}`"),
                })?;
                (inner[..i].trim(), off)
            }
            None => (inner.trim(), 0),
        };
        let base = match base_text.strip_prefix('%') {
            Some(r) => MemBase::Reg(r.to_string()),
            None => MemBase::Param(base_text.to_string()),
        };
        return Ok(Operand::Mem { base, offset });
    }
    if let Ok(imm) = s.parse::<i64>() {
        return Ok(Operand::Imm(imm));
    }
    // Hex immediates.
    if let Some(hex) = s.strip_prefix("0x") {
        if let Ok(imm) = i64::from_str_radix(hex, 16) {
            return Ok(Operand::Imm(imm));
        }
    }
    // Float immediates appear in real PTX; store truncated (analysis
    // never uses them).
    if let Ok(fimm) = s.parse::<f64>() {
        return Ok(Operand::Imm(fimm as i64));
    }
    // Vector operand `{%f1, %f2}` — treat as its first register.
    if s.starts_with('{') && s.ends_with('}') {
        let first = s[1..s.len() - 1].split(',').next().unwrap_or("").trim();
        return parse_operand(first, line);
    }
    // Otherwise: a label / symbol.
    if s.chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$')
    {
        return Ok(Operand::Label(s.to_string()));
    }
    err(line, format!("unrecognized operand `{s}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const VECADD: &str = r#"
// simple vector add: C[i] = A[i] + B[i]
.visible .entry vecadd(
    .param .u64 A,
    .param .u64 B,
    .param .u64 C
)
{
    ld.param.u64 %rd1, [A];
    ld.param.u64 %rd2, [B];
    ld.param.u64 %rd3, [C];
    cvta.to.global.u64 %rd1, %rd1;
    cvta.to.global.u64 %rd2, %rd2;
    cvta.to.global.u64 %rd3, %rd3;
    mov.u32 %r1, %tid_x;
    mul.wide.u32 %rd4, %r1, 4;
    add.s64 %rd5, %rd1, %rd4;
    add.s64 %rd6, %rd2, %rd4;
    add.s64 %rd7, %rd3, %rd4;
    ld.global.f32 %f1, [%rd5];
    ld.global.f32 %f2, [%rd6];
    add.f32 %f3, %f1, %f2;
    st.global.f32 [%rd7], %f3;
    ret;
}
"#;

    #[test]
    fn parses_vecadd() {
        let m = parse_module(VECADD).unwrap();
        assert_eq!(m.kernels.len(), 1);
        let k = &m.kernels[0];
        assert_eq!(k.name, "vecadd");
        assert_eq!(k.params, vec!["A", "B", "C"]);
        assert_eq!(k.body.len(), 16);
        assert!(k.body.iter().filter(|i| i.is_global_load()).count() == 2);
        assert!(k.body.iter().filter(|i| i.is_global_store()).count() == 1);
    }

    #[test]
    fn parses_single_line_header() {
        let m = parse_module(".visible .entry k(.param .u64 A)\n{\n ret;\n}\n").unwrap();
        assert_eq!(m.kernels[0].params, vec!["A"]);
    }

    #[test]
    fn parses_labels_and_predicates() {
        let src = r#"
.visible .entry k(.param .u64 A)
{
    setp.lt.s32 %p1, %r1, %r2;
BB1:
    @%p1 bra BB1;
    ret;
}
"#;
        let m = parse_module(src).unwrap();
        let k = &m.kernels[0];
        assert!(k
            .body
            .iter()
            .any(|i| matches!(i, Instr::Label(l) if l == "BB1")));
        let bra = k
            .body
            .iter()
            .find(|i| i.opcode_str() == "bra")
            .expect("bra parsed");
        match bra {
            Instr::Op { pred, operands, .. } => {
                assert_eq!(pred.as_deref(), Some("p1"));
                assert_eq!(operands[0], Operand::Label("BB1".into()));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn memory_operand_offsets() {
        let m = parse_module(
            ".visible .entry k(.param .u64 A)\n{\nld.global.f32 %f1, [%rd1+256];\n}\n",
        )
        .unwrap();
        match &m.kernels[0].body[0] {
            Instr::Op { operands, .. } => {
                assert_eq!(
                    operands[1],
                    Operand::Mem {
                        base: MemBase::Reg("rd1".into()),
                        offset: 256
                    }
                );
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn multiple_kernels() {
        let src = "\
.visible .entry a(.param .u64 X)\n{\n ret;\n}\n\
.visible .entry b(.param .u64 Y, .param .u64 Z)\n{\n ret;\n}\n";
        let m = parse_module(src).unwrap();
        assert_eq!(m.kernels.len(), 2);
        assert!(m.kernel("b").is_some());
        assert!(m.kernel("missing").is_none());
    }

    #[test]
    fn roundtrip_through_to_ptx() {
        let m = parse_module(VECADD).unwrap();
        let re = parse_module(&m.to_ptx()).unwrap();
        assert_eq!(m, re);
    }

    #[test]
    fn error_has_line_number() {
        let e = parse_module("garbage here\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("line 1"));
    }

    #[test]
    fn unterminated_kernel_errors() {
        let e = parse_module(".visible .entry k(.param .u64 A)\n{\n ret;\n").unwrap_err();
        assert!(e.message.contains("unterminated"));
    }
}
