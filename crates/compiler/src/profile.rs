//! The static kernel profiler: per-parameter footprint, access mode,
//! and bandwidth-tier demand, computed from the affine access analysis
//! ([`crate::affine`]) without executing the kernel.
//!
//! For every parameter the profiler reports:
//!
//! - **mode** — `ReadOnly` / `AtomicOnly` / `Written` / `Unused`, the
//!   static analogue of the NUBA placement decision (read-only data is
//!   MDR-replication-eligible, written shared data is not);
//! - **footprint** — the byte extent reachable by the parameter's
//!   affine accesses with `tid ∈ [0, threads)` and every loop counter
//!   ranging over its (proven or assumed) trip count. Accesses whose
//!   address escapes the affine form clamp the parameter to an
//!   *unbounded* footprint, which callers resolve to the whole region.
//!   The extent is an interval hull, so it is a **superset** of the
//!   dynamically-touched bytes whenever the assumptions cover the
//!   dynamic thread/trip counts — the property the bench proptests pin;
//! - **thread-disjoint writes** — every store lands at
//!   `|tid-coefficient| ≥ width` with no loop term, so two threads of
//!   one SM never collide (the warp-race half of [`crate::race`]).
//!
//! The per-kernel [`TierDemand`] weights each access by the product of
//! enclosing loop trip counts and reports bytes-per-instruction split
//! by destination mode — the demand vector the `nuba-core` MDR
//! bandwidth equations consume.

use std::collections::{BTreeMap, BTreeSet};

use crate::affine::{affine_accesses, AccessExpr, AffineForm, GlobalAccessKind};
use crate::analysis::provenance_fixpoint;
use crate::ast::{Instr, Kernel, MemBase, Operand};
use crate::cfg::Cfg;

/// Knobs the static profile is computed under.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileAssumptions {
    /// Distinct thread ids per SM (`tid ∈ [0, threads)`).
    pub threads: u64,
    /// Assumed trip count for loops whose bound is not provable.
    pub default_trip: u64,
    /// Page size used to convert byte extents to page counts.
    pub page_bytes: u64,
}

impl Default for ProfileAssumptions {
    fn default() -> Self {
        ProfileAssumptions {
            threads: 1024,
            default_trip: 64,
            page_bytes: 4096,
        }
    }
}

/// How a kernel treats one parameter's array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamMode {
    /// Never accessed.
    Unused,
    /// Loads only — replication-eligible.
    ReadOnly,
    /// Atomics (and possibly loads), no plain stores.
    AtomicOnly,
    /// At least one non-atomic store reaches it.
    Written,
}

/// Byte extent of a parameter's accesses relative to its base.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Footprint {
    /// No attributed access.
    Empty,
    /// Accesses span `[lo, hi)` bytes from the parameter base.
    Span {
        /// Lowest touched offset.
        lo: i64,
        /// One past the highest touched offset.
        hi: i64,
    },
    /// Some attributed access has an unknown address: the whole region
    /// must be assumed.
    Unbounded,
}

impl Footprint {
    fn widen(&mut self, lo: i64, hi: i64) {
        *self = match *self {
            Footprint::Empty => Footprint::Span { lo, hi },
            Footprint::Span { lo: a, hi: b } => Footprint::Span {
                lo: a.min(lo),
                hi: b.max(hi),
            },
            Footprint::Unbounded => Footprint::Unbounded,
        };
    }

    /// Pages touched, assuming the parameter base is page-aligned.
    /// `None` for unbounded footprints.
    pub fn pages(&self, page_bytes: u64) -> Option<u64> {
        let pb = page_bytes.max(1) as i64;
        match *self {
            Footprint::Empty => Some(0),
            Footprint::Span { lo, hi } if hi > lo => {
                Some((((hi - 1).div_euclid(pb)) - lo.div_euclid(pb) + 1) as u64)
            }
            Footprint::Span { .. } => Some(0),
            Footprint::Unbounded => None,
        }
    }

    /// Byte length of the span (`None` when unbounded).
    pub fn bytes(&self) -> Option<u64> {
        match *self {
            Footprint::Empty => Some(0),
            Footprint::Span { lo, hi } => Some((hi - lo).max(0) as u64),
            Footprint::Unbounded => None,
        }
    }
}

/// Static profile of one kernel parameter.
#[derive(Debug, Clone)]
pub struct ParamProfile {
    /// Parameter name.
    pub name: String,
    /// Static count of load instructions attributed here.
    pub loads: u32,
    /// Static count of non-atomic store instructions attributed here.
    pub stores: u32,
    /// Static count of atomic/reduction instructions attributed here.
    pub atomics: u32,
    /// Accesses attributed only via provenance (address unknown).
    pub unknown_addr: u32,
    /// Access mode (placement / replication eligibility).
    pub mode: ParamMode,
    /// Predicted byte extent.
    pub footprint: Footprint,
    /// Every non-atomic store is provably disjoint across threads of
    /// one SM (`|tid coeff| ≥ width`, no loop term, known address).
    /// Vacuously true when there are no stores.
    pub thread_disjoint_writes: bool,
}

/// Loop-weighted bytes-per-instruction demand, split by the mode of the
/// parameter each access lands in. Feeds the MDR bandwidth equations.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TierDemand {
    /// Trip-weighted dynamic instruction estimate.
    pub weighted_instrs: f64,
    /// Weighted bytes loaded from `ReadOnly`-mode parameters.
    pub readonly_load_bytes: f64,
    /// Weighted bytes loaded from all other parameters.
    pub other_load_bytes: f64,
    /// Weighted bytes written by plain stores.
    pub store_bytes: f64,
    /// Weighted bytes touched by atomics.
    pub atomic_bytes: f64,
}

impl TierDemand {
    /// Total global bytes per estimated instruction.
    pub fn bytes_per_instr(&self) -> f64 {
        if self.weighted_instrs <= 0.0 {
            return 0.0;
        }
        (self.readonly_load_bytes + self.other_load_bytes + self.store_bytes + self.atomic_bytes)
            / self.weighted_instrs
    }

    /// Fraction of global traffic that targets read-only (replicable)
    /// data — the demand MDR can serve from local slices.
    pub fn readonly_fraction(&self) -> f64 {
        let total =
            self.readonly_load_bytes + self.other_load_bytes + self.store_bytes + self.atomic_bytes;
        if total <= 0.0 {
            return 0.0;
        }
        self.readonly_load_bytes / total
    }

    /// Fraction of global traffic that writes (stores + atomics).
    pub fn write_fraction(&self) -> f64 {
        let total =
            self.readonly_load_bytes + self.other_load_bytes + self.store_bytes + self.atomic_bytes;
        if total <= 0.0 {
            return 0.0;
        }
        (self.store_bytes + self.atomic_bytes) / total
    }
}

/// The static profile of one kernel.
#[derive(Debug, Clone)]
pub struct KernelStaticProfile {
    /// Kernel name.
    pub kernel: String,
    /// One profile per declared parameter, in declaration order.
    pub params: Vec<ParamProfile>,
    /// Bandwidth-tier demand estimate.
    pub demand: TierDemand,
    /// A store/atomic could not be attributed to any parameter: every
    /// parameter is conservatively `Written` and unbounded.
    pub unknown_store: bool,
    /// The assumptions the profile was computed under.
    pub assumptions: ProfileAssumptions,
}

impl KernelStaticProfile {
    /// The profile of parameter `name`.
    pub fn param(&self, name: &str) -> Option<&ParamProfile> {
        self.params.iter().find(|p| p.name == name)
    }

    /// Parameters proven read-only (mode `ReadOnly`).
    pub fn read_only_params(&self) -> BTreeSet<&str> {
        self.params
            .iter()
            .filter(|p| p.mode == ParamMode::ReadOnly)
            .map(|p| p.name.as_str())
            .collect()
    }

    /// Parameters reached by a non-atomic store (mode `Written`).
    pub fn written_params(&self) -> BTreeSet<&str> {
        self.params
            .iter()
            .filter(|p| p.mode == ParamMode::Written)
            .map(|p| p.name.as_str())
            .collect()
    }
}

/// Contribution `[lo, hi]` of `coeff·x` with `x ∈ [0, range)`.
fn coeff_extent(coeff: i64, range: u64) -> (i64, i64) {
    let top = range.saturating_sub(1).min(i64::MAX as u64) as i64;
    let edge = coeff.saturating_mul(top);
    if coeff >= 0 {
        (0, edge)
    } else {
        (edge, 0)
    }
}

/// The `[lo, hi)` byte extent of one affine access relative to its
/// anchor parameter, under the given tid/trip ranges.
fn access_extent(
    form: &AffineForm,
    width: u32,
    assume: &ProfileAssumptions,
    trips: &BTreeMap<usize, u64>,
) -> (i64, i64) {
    let (mut lo, mut hi) = (form.konst, form.konst);
    let (l, h) = coeff_extent(form.tid, assume.threads);
    lo = lo.saturating_add(l);
    hi = hi.saturating_add(h);
    for (header, &coeff) in &form.iters {
        let range = trips.get(header).copied().unwrap_or(assume.default_trip);
        let (l, h) = coeff_extent(coeff, range);
        lo = lo.saturating_add(l);
        hi = hi.saturating_add(h);
    }
    (lo, hi.saturating_add(width as i64))
}

/// Whether stores at this address never collide across the threads of
/// one SM: exact affine form, no loop term, stride at least the width.
fn store_thread_disjoint(access: &AccessExpr) -> bool {
    match &access.addr {
        Some(form) => form.iters.is_empty() && form.tid.unsigned_abs() >= access.width as u64,
        None => false,
    }
}

/// Compute the static profile of `kernel`.
pub fn profile_kernel(kernel: &Kernel, assumptions: ProfileAssumptions) -> KernelStaticProfile {
    let cfg = Cfg::build(kernel);
    let aff = affine_accesses(kernel, &cfg);
    let reachable = cfg.reachable_instrs();
    let prov = provenance_fixpoint(kernel, &|i| reachable.binary_search(&i).is_ok());

    let mut params: Vec<ParamProfile> = kernel
        .params
        .iter()
        .map(|name| ParamProfile {
            name: name.clone(),
            loads: 0,
            stores: 0,
            atomics: 0,
            unknown_addr: 0,
            mode: ParamMode::Unused,
            footprint: Footprint::Empty,
            thread_disjoint_writes: true,
        })
        .collect();
    let index_of: BTreeMap<&str, usize> = kernel
        .params
        .iter()
        .enumerate()
        .map(|(i, p)| (p.as_str(), i))
        .collect();

    // Attribution: (param index, known extent?) per access target.
    let mut unknown_store = false;
    let mut attributions: Vec<(usize, Vec<(usize, bool)>)> = Vec::new();
    for (a_idx, access) in aff.accesses.iter().enumerate() {
        let mut targets: Vec<(usize, bool)> = Vec::new();
        match &access.addr {
            Some(form) => {
                if let Some(anchor) = form.anchor() {
                    if let Some(&pi) = index_of.get(anchor) {
                        targets.push((pi, true));
                    }
                } else {
                    // Affine but multi-anchored: attribute to every
                    // involved param without a usable extent.
                    for p in form.params.keys() {
                        if let Some(&pi) = index_of.get(p.as_str()) {
                            targets.push((pi, false));
                        }
                    }
                }
            }
            None => {
                // Unknown address: fall back to flow-insensitive
                // provenance of the base register.
                let base = instr_mem_base(&kernel.body[access.idx]);
                if let Some(set) = base.and_then(|r| prov.get(r)) {
                    for p in set {
                        if let Some(&pi) = index_of.get(p.as_str()) {
                            targets.push((pi, false));
                        }
                    }
                }
            }
        }
        if targets.is_empty() && access.kind != GlobalAccessKind::Load {
            unknown_store = true;
        }
        attributions.push((a_idx, targets));
    }

    // Counts, footprints, modes.
    for (a_idx, targets) in &attributions {
        let access = &aff.accesses[*a_idx];
        for &(pi, known_extent) in targets {
            let p = &mut params[pi];
            match access.kind {
                GlobalAccessKind::Load => p.loads += 1,
                GlobalAccessKind::Store => {
                    p.stores += 1;
                    if !store_thread_disjoint(access) {
                        p.thread_disjoint_writes = false;
                    }
                }
                GlobalAccessKind::Atomic => p.atomics += 1,
            }
            if known_extent {
                let form = access.addr.as_ref().expect("anchored access is affine");
                let (lo, hi) =
                    access_extent(form, access.width, &assumptions, &aff.induction.trips);
                p.footprint.widen(lo, hi);
            } else {
                p.unknown_addr += 1;
                p.footprint = Footprint::Unbounded;
            }
        }
    }
    for p in &mut params {
        p.mode = if unknown_store || p.stores > 0 {
            ParamMode::Written
        } else if p.atomics > 0 {
            ParamMode::AtomicOnly
        } else if p.loads > 0 {
            ParamMode::ReadOnly
        } else {
            ParamMode::Unused
        };
        if unknown_store {
            p.footprint = Footprint::Unbounded;
            p.thread_disjoint_writes = false;
        }
    }

    // Loop-trip-weighted demand.
    let weight_of = |idx: usize| -> f64 {
        aff.induction
            .loops
            .iter()
            .filter(|l| l.contains_instr(&cfg, idx))
            .map(|l| {
                aff.induction
                    .trips
                    .get(&l.header)
                    .copied()
                    .unwrap_or(assumptions.default_trip) as f64
            })
            .product()
    };
    let mut demand = TierDemand::default();
    for &idx in &reachable {
        if matches!(kernel.body[idx], Instr::Op { .. }) {
            demand.weighted_instrs += weight_of(idx);
        }
    }
    for (a_idx, targets) in &attributions {
        let access = &aff.accesses[*a_idx];
        let bytes = weight_of(access.idx) * access.width as f64;
        let readonly = targets
            .iter()
            .all(|&(pi, _)| params[pi].mode == ParamMode::ReadOnly)
            && !targets.is_empty();
        match access.kind {
            GlobalAccessKind::Load if readonly => demand.readonly_load_bytes += bytes,
            GlobalAccessKind::Load => demand.other_load_bytes += bytes,
            GlobalAccessKind::Store => demand.store_bytes += bytes,
            GlobalAccessKind::Atomic => demand.atomic_bytes += bytes,
        }
    }

    KernelStaticProfile {
        kernel: kernel.name.clone(),
        params,
        demand,
        unknown_store,
        assumptions,
    }
}

/// The base register of an instruction's memory operand, if any.
fn instr_mem_base(instr: &Instr) -> Option<&str> {
    let Instr::Op { operands, .. } = instr else {
        return None;
    };
    operands.iter().find_map(|op| match op {
        Operand::Mem {
            base: MemBase::Reg(r),
            ..
        } => Some(r.as_str()),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_module;

    fn profile(src: &str) -> KernelStaticProfile {
        let m = parse_module(src).unwrap();
        profile_kernel(&m.kernels[0], ProfileAssumptions::default())
    }

    const STREAM_LIKE: &str = r#"
.visible .entry k(.param .u64 S, .param .u64 W, .param .u64 P)
{
    ld.param.u64 %rds, [S];
    ld.param.u64 %rdw, [W];
    ld.param.u64 %rdp, [P];
    cvta.to.global.u64 %rds, %rds;
    cvta.to.global.u64 %rdw, %rdw;
    cvta.to.global.u64 %rdp, %rdp;
    mov.u32 %r1, %tid_x;
    mul.wide.u32 %rd4, %r1, 4;
    add.s64 %rd5, %rds, %rd4;
    add.s64 %rd6, %rdp, %rd4;
    add.s64 %rd8, %rdw, %rd4;
    ld.global.f32 %f1, [%rd5];
    ld.global.f32 %f2, [%rd6];
    ld.global.f32 %f4, [%rd8];
    fma.rn.f32 %f3, %f1, %f2, %f4;
    st.global.f32 [%rd6], %f3;
    st.global.f32 [%rd8], %f3;
    ret;
}
"#;

    #[test]
    fn stream_modes_and_footprints() {
        let p = profile(STREAM_LIKE);
        assert!(!p.unknown_store);
        let s = p.param("S").unwrap();
        assert_eq!(s.mode, ParamMode::ReadOnly);
        assert_eq!(s.loads, 1);
        // 1024 threads × stride 4 → 4096 bytes → exactly one 4K page.
        assert_eq!(s.footprint.bytes(), Some(4096));
        assert_eq!(s.footprint.pages(4096), Some(1));
        let w = p.param("W").unwrap();
        assert_eq!(w.mode, ParamMode::Written);
        assert!(w.thread_disjoint_writes, "stride-4 f32 stores are disjoint");
        assert_eq!(p.read_only_params(), BTreeSet::from(["S"]));
        assert_eq!(p.written_params(), BTreeSet::from(["P", "W"]));
    }

    #[test]
    fn loop_footprint_uses_trip_assumption() {
        // GEMM-like: S walked by a stride-4 IV with unknown bound.
        let p = profile(
            r#"
.visible .entry k(.param .u64 S, .param .u64 P)
{
    ld.param.u64 %rds, [S];
    ld.param.u64 %rdp, [P];
    cvta.to.global.u64 %rds, %rds;
    mov.u32 %r1, %tid_x;
    mul.wide.u32 %rd4, %r1, 4;
    add.s64 %rd5, %rds, %rd4;
LOOP:
    ld.global.f32 %f1, [%rd5];
    add.s64 %rd5, %rd5, 4;
    add.u32 %r2, %r2, 1;
    setp.lt.u32 %p1, %r2, %r3;
    @%p1 bra LOOP;
    add.s64 %rd7, %rdp, %rd4;
    st.global.f32 [%rd7], %f3;
    ret;
}
"#,
        );
        let s = p.param("S").unwrap();
        // tid ∈ [0,1024): 4·1023; iter ∈ [0,64): 4·63; +4 width.
        assert_eq!(s.footprint.bytes(), Some(4 * 1023 + 4 * 63 + 4));
        assert_eq!(s.mode, ParamMode::ReadOnly);
        // Demand: the loop load is weighted 64×, the store once.
        assert!(p.demand.readonly_load_bytes >= 64.0 * 4.0);
        assert_eq!(p.demand.store_bytes, 4.0);
        assert!(p.demand.readonly_fraction() > 0.9);
    }

    #[test]
    fn proven_trip_overrides_assumption() {
        let p = profile(
            r#"
.visible .entry k(.param .u64 S)
{
    ld.param.u64 %rds, [S];
    cvta.to.global.u64 %rds, %rds;
    mov.u64 %rd5, %rds;
    mov.u32 %r2, 0;
    mov.u32 %r3, 8;
LOOP:
    ld.global.f32 %f1, [%rd5];
    add.s64 %rd5, %rd5, 4;
    add.u32 %r2, %r2, 1;
    setp.lt.u32 %p1, %r2, %r3;
    @%p1 bra LOOP;
    ret;
}
"#,
        );
        let s = p.param("S").unwrap();
        // No tid term; 8 iterations × stride 4 + width.
        assert_eq!(s.footprint.bytes(), Some(8 * 4));
    }

    #[test]
    fn pointer_chase_is_unbounded_but_attributed() {
        let p = profile(
            r#"
.visible .entry k(.param .u64 S, .param .u64 P)
{
    ld.param.u64 %rdt, [S];
    ld.param.u64 %rdp, [P];
    cvta.to.global.u64 %rdt, %rdt;
    mov.u32 %r2, 0;
LOOP:
    mul.wide.u32 %rd4, %r2, 64;
    add.s64 %rd5, %rdt, %rd4;
    ld.global.u32 %r2, [%rd5];
    add.u32 %r3, %r3, 1;
    setp.lt.u32 %p1, %r3, %r4;
    @%p1 bra LOOP;
    mov.u32 %r1, %tid_x;
    mul.wide.u32 %rd6, %r1, 4;
    add.s64 %rd7, %rdp, %rd6;
    st.global.u32 [%rd7], %r2;
    ret;
}
"#,
        );
        let s = p.param("S").unwrap();
        assert_eq!(s.mode, ParamMode::ReadOnly);
        assert_eq!(s.footprint, Footprint::Unbounded);
        assert_eq!(s.footprint.pages(4096), None);
        assert_eq!(s.unknown_addr, 1);
        assert!(!p.unknown_store);
        let pp = p.param("P").unwrap();
        assert_eq!(pp.mode, ParamMode::Written);
        assert_ne!(pp.footprint, Footprint::Unbounded);
    }

    #[test]
    fn atomic_only_param() {
        let p = profile(
            r#"
.visible .entry k(.param .u64 W)
{
    ld.param.u64 %rdb, [W];
    cvta.to.global.u64 %rdb, %rdb;
    mov.u32 %r1, %tid_x;
    mul.wide.u32 %rd4, %r1, 4;
    add.s64 %rd8, %rdb, %rd4;
    atom.global.add.u32 %r4, [%rd8], 1;
    ret;
}
"#,
        );
        let w = p.param("W").unwrap();
        assert_eq!(w.mode, ParamMode::AtomicOnly);
        assert_eq!(w.atomics, 1);
        assert!(w.thread_disjoint_writes, "no plain stores");
        assert!(p.demand.atomic_bytes > 0.0);
    }

    #[test]
    fn unattributable_store_taints_everything() {
        let p = profile(
            r#"
.visible .entry k(.param .u64 A, .param .u64 B)
{
    ld.param.u64 %rd1, [A];
    cvta.to.global.u64 %rd1, %rd1;
    ld.global.f32 %f1, [%rd1];
    st.global.f32 [%rd9], %f1;
    ret;
}
"#,
        );
        assert!(p.unknown_store);
        for param in &p.params {
            assert_eq!(param.mode, ParamMode::Written, "{}", param.name);
            assert_eq!(param.footprint, Footprint::Unbounded);
        }
    }

    #[test]
    fn broadcast_store_is_not_thread_disjoint() {
        // Every thread stores to the same element: tid coeff 0.
        let p = profile(
            r#"
.visible .entry k(.param .u64 P)
{
    ld.param.u64 %rdp, [P];
    cvta.to.global.u64 %rdp, %rdp;
    st.global.f32 [%rdp+8], %f1;
    ret;
}
"#,
        );
        let pp = p.param("P").unwrap();
        assert_eq!(pp.mode, ParamMode::Written);
        assert!(!pp.thread_disjoint_writes);
        assert_eq!(pp.footprint.bytes(), Some(4));
    }

    #[test]
    fn unused_param() {
        let p = profile(
            r#"
.visible .entry k(.param .u64 A, .param .u64 N)
{
    ld.param.u64 %rd1, [A];
    cvta.to.global.u64 %rd1, %rd1;
    ld.global.f32 %f1, [%rd1];
    ret;
}
"#,
        );
        assert_eq!(p.param("N").unwrap().mode, ParamMode::Unused);
        assert_eq!(p.param("N").unwrap().footprint, Footprint::Empty);
        assert_eq!(p.param("N").unwrap().footprint.pages(4096), Some(0));
    }

    #[test]
    fn modes_agree_with_flow_analysis() {
        use crate::replication_safety::analyze_kernel_flow;
        for src in [
            STREAM_LIKE,
            r#"
.visible .entry k(.param .u64 S, .param .u64 W)
{
    ld.param.u64 %rds, [S];
    ld.param.u64 %rdw, [W];
    cvta.to.global.u64 %rds, %rds;
    cvta.to.global.u64 %rdw, %rdw;
    mov.u32 %r1, %tid_x;
    mul.wide.u32 %rd4, %r1, 4;
    add.s64 %rd5, %rds, %rd4;
    add.s64 %rd8, %rdw, %rd4;
    ld.global.f32 %f1, [%rd5];
    atom.global.add.u32 %r4, [%rd8], 1;
    ret;
}
"#,
        ] {
            let m = parse_module(src).unwrap();
            let prof = profile_kernel(&m.kernels[0], ProfileAssumptions::default());
            let flow = analyze_kernel_flow(&m.kernels[0]);
            // Static-profile ReadOnly params are exactly the loaded,
            // never-written ones the flow pass proves.
            for p in &prof.params {
                if p.mode == ParamMode::ReadOnly {
                    assert!(
                        flow.summary.read_only.contains(&p.name),
                        "{}: profiler says ReadOnly, flow pass disagrees",
                        p.name
                    );
                }
            }
        }
    }

    #[test]
    fn demand_zero_for_empty_kernel() {
        let p = profile(".visible .entry k(.param .u64 A)\n{\n ret;\n}\n");
        assert_eq!(p.demand.bytes_per_instr(), 0.0);
        assert_eq!(p.demand.readonly_fraction(), 0.0);
        assert_eq!(p.demand.write_fraction(), 0.0);
    }
}
