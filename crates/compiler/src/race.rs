//! Static race detection over kernel parameters.
//!
//! Two findings, both derived from [`crate::profile`]:
//!
//! - **Write-shared races** (cross-SM): a parameter reached by a
//!   non-atomic store *and* bound to a cross-SM-shared region is a
//!   placement hazard — NUBA cannot replicate it (MDR requires
//!   read-only data) and concurrent SMs writing the same page race.
//!   Thread-disjointness within one SM does not help: distinct SMs run
//!   the same tid range, so `base + 4·tid` collides across SMs.
//!   Atomic-only parameters (MapReduce's bins) are *not* flagged.
//! - **Warp races** (intra-SM): a non-atomic store whose address is
//!   not provably thread-disjoint (unknown address, loop-carried term,
//!   or `|tid coeff| < width`) may collide between threads regardless
//!   of placement.
//!
//! The detector is a proven-stronger companion to the read-only
//! analysis: a flagged parameter is *never* replication-eligible
//! (`race ∩ analyze_kernel_flow(..).read_only = ∅`), the same
//! relationship `analyze_kernel_flow` holds to `analyze_kernel`.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::Kernel;
use crate::profile::{profile_kernel, KernelStaticProfile, ProfileAssumptions};

/// How one parameter is written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamWriteSummary {
    /// Static count of non-atomic stores attributed to the parameter.
    pub non_atomic_stores: u32,
    /// Static count of atomics attributed to the parameter.
    pub atomics: u32,
    /// Every non-atomic store is provably disjoint across one SM's
    /// threads (vacuously true with no stores).
    pub thread_disjoint: bool,
}

/// The race findings for one kernel.
#[derive(Debug, Clone)]
pub struct RaceReport {
    /// Kernel name.
    pub kernel: String,
    /// Write summaries per parameter (declaration order preserved in
    /// iteration by name is irrelevant; keyed for lookup).
    pub params: BTreeMap<String, ParamWriteSummary>,
    /// A store escaped attribution: every parameter must be treated as
    /// potentially written.
    pub unknown_store: bool,
}

impl RaceReport {
    /// Derive the report from an existing static profile.
    pub fn from_profile(profile: &KernelStaticProfile) -> RaceReport {
        RaceReport {
            kernel: profile.kernel.clone(),
            params: profile
                .params
                .iter()
                .map(|p| {
                    (
                        p.name.clone(),
                        ParamWriteSummary {
                            non_atomic_stores: p.stores,
                            atomics: p.atomics,
                            thread_disjoint: p.thread_disjoint_writes,
                        },
                    )
                })
                .collect(),
            unknown_store: profile.unknown_store,
        }
    }

    /// Parameters with at least one non-atomic store (the raw hazard
    /// set; placement decides whether it is an actual cross-SM race).
    pub fn non_atomic_written(&self) -> BTreeSet<String> {
        self.params
            .iter()
            .filter(|(_, s)| s.non_atomic_stores > 0 || self.unknown_store)
            .map(|(p, _)| p.clone())
            .collect()
    }

    /// Cross-SM write-shared races: non-atomically-written parameters
    /// among those bound to shared regions. Atomic-only parameters are
    /// exempt — atomics serialize at the LLC slice.
    pub fn write_shared_races(&self, shared_params: &BTreeSet<String>) -> BTreeSet<String> {
        self.non_atomic_written()
            .into_iter()
            .filter(|p| shared_params.contains(p))
            .collect()
    }

    /// Intra-SM warp races: parameters with a non-atomic store that is
    /// not provably thread-disjoint.
    pub fn warp_races(&self) -> BTreeSet<String> {
        self.params
            .iter()
            .filter(|(_, s)| (s.non_atomic_stores > 0 && !s.thread_disjoint) || self.unknown_store)
            .map(|(p, _)| p.clone())
            .collect()
    }
}

/// Run race detection on `kernel` under default profile assumptions.
pub fn detect_races(kernel: &Kernel) -> RaceReport {
    RaceReport::from_profile(&profile_kernel(kernel, ProfileAssumptions::default()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_module;
    use crate::replication_safety::analyze_kernel_flow;

    fn report(src: &str) -> RaceReport {
        let m = parse_module(src).unwrap();
        detect_races(&m.kernels[0])
    }

    fn shared(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    const STORE_TO_SHARED: &str = r#"
.visible .entry k(.param .u64 S, .param .u64 W)
{
    ld.param.u64 %rds, [S];
    ld.param.u64 %rdw, [W];
    cvta.to.global.u64 %rds, %rds;
    cvta.to.global.u64 %rdw, %rdw;
    mov.u32 %r1, %tid_x;
    mul.wide.u32 %rd4, %r1, 4;
    add.s64 %rd5, %rds, %rd4;
    add.s64 %rd8, %rdw, %rd4;
    ld.global.f32 %f1, [%rd5];
    st.global.f32 [%rd8], %f1;
    ret;
}
"#;

    #[test]
    fn non_atomic_store_to_shared_region_is_flagged() {
        let r = report(STORE_TO_SHARED);
        assert_eq!(r.write_shared_races(&shared(&["S", "W"])), shared(&["W"]));
        // Same kernel, W bound privately: no cross-SM race.
        assert!(r.write_shared_races(&shared(&["S"])).is_empty());
        // Disjoint stride-4 stores: no warp race either.
        assert!(r.warp_races().is_empty());
    }

    #[test]
    fn atomic_only_bins_are_exempt() {
        let r = report(
            r#"
.visible .entry k(.param .u64 W)
{
    ld.param.u64 %rdb, [W];
    cvta.to.global.u64 %rdb, %rdb;
    mov.u32 %r1, %tid_x;
    mul.wide.u32 %rd4, %r1, 4;
    add.s64 %rd8, %rdb, %rd4;
    atom.global.add.u32 %r4, [%rd8], 1;
    ret;
}
"#,
        );
        assert!(r.write_shared_races(&shared(&["W"])).is_empty());
        assert!(r.warp_races().is_empty());
        assert_eq!(r.params["W"].atomics, 1);
    }

    #[test]
    fn broadcast_store_is_a_warp_race() {
        let r = report(
            r#"
.visible .entry k(.param .u64 P)
{
    ld.param.u64 %rdp, [P];
    cvta.to.global.u64 %rdp, %rdp;
    st.global.f32 [%rdp], %f1;
    ret;
}
"#,
        );
        assert_eq!(r.warp_races(), shared(&["P"]));
        // Private placement: warp race but no cross-SM flag.
        assert!(r.write_shared_races(&shared(&[])).is_empty());
    }

    #[test]
    fn unknown_store_flags_everything() {
        let r = report(
            r#"
.visible .entry k(.param .u64 A, .param .u64 B)
{
    ld.param.u64 %rd1, [A];
    cvta.to.global.u64 %rd1, %rd1;
    ld.global.f32 %f1, [%rd1];
    st.global.f32 [%rd9], %f1;
    ret;
}
"#,
        );
        assert!(r.unknown_store);
        assert_eq!(
            r.write_shared_races(&shared(&["A", "B"])),
            shared(&["A", "B"])
        );
        assert_eq!(r.warp_races(), shared(&["A", "B"]));
    }

    #[test]
    fn flagged_params_are_never_replication_eligible() {
        // The proven-stronger companion property: for any kernel, the
        // race set is disjoint from the flow pass's read-only set.
        for src in [
            STORE_TO_SHARED,
            r#"
.visible .entry k(.param .u64 S, .param .u64 W, .param .u64 P)
{
    ld.param.u64 %rds, [S];
    ld.param.u64 %rdw, [W];
    ld.param.u64 %rdp, [P];
    cvta.to.global.u64 %rds, %rds;
    cvta.to.global.u64 %rdw, %rdw;
    cvta.to.global.u64 %rdp, %rdp;
    mov.u32 %r1, %tid_x;
    mul.wide.u32 %rd4, %r1, 4;
    add.s64 %rd5, %rds, %rd4;
    add.s64 %rd6, %rdp, %rd4;
    add.s64 %rd8, %rdw, %rd4;
    ld.global.f32 %f1, [%rd5];
    st.global.f32 [%rd6], %f1;
    st.global.f32 [%rd8], %f1;
    ret;
}
"#,
        ] {
            let m = parse_module(src).unwrap();
            let r = detect_races(&m.kernels[0]);
            let ro = analyze_kernel_flow(&m.kernels[0]).summary.read_only;
            let all: BTreeSet<String> = m.kernels[0].params.iter().cloned().collect();
            let flagged = r.write_shared_races(&all);
            assert!(
                flagged.is_disjoint(&ro),
                "raced {flagged:?} overlaps read-only {ro:?}"
            );
        }
    }
}
