//! Flow-sensitive replication safety: a per-program-point sharpening of
//! the paper's §5.2 read-only classification.
//!
//! [`crate::analysis::analyze_kernel`] is flow-insensitive: one store
//! through a register anywhere in the kernel taints every param that
//! register may ever alias, even if the store sits behind a guard that
//! can never fire. This pass runs three cooperating analyses on the
//! [`crate::dataflow`] framework instead:
//!
//! 1. **Constant predicates** — a small constant propagation over `mov`
//!    immediates, `add`/`sub`/bitwise folds, and `setp` comparisons.
//!    Branch edges whose guard is provably false (and fall-throughs
//!    whose guard is provably true) are pruned from the CFG, so stores
//!    in statically never-taken paths become unreachable.
//! 2. **Flow-sensitive pointer provenance** — which params each
//!    register may point into *at each point*. Unpredicated definitions
//!    update strongly (the old binding dies), so a register reused for a
//!    different array no longer smears both taints over the whole
//!    kernel.
//! 3. **Post-dominance** — the surviving stores are classified as
//!    *guarded* (their block does not post-dominate the entry) or
//!    unconditional, which downstream replication heuristics can weigh.
//!
//! The resulting `read_only` set is **always a superset** of the
//! flow-insensitive one: each store's taint falls back to the
//! flow-insensitive provenance whenever the flow-sensitive fact is ⊥,
//! and the load universe is the flow-insensitive `loaded` set, so
//! switching MDR to this pass can only *add* replication candidates.
//! The property is proptested in `tests/dataflow_props.rs`.

use std::collections::{BTreeMap, BTreeSet};

use crate::analysis::{self, KernelAccessSummary};
use crate::ast::{Instr, Kernel, MemBase, Operand};
use crate::cfg::Cfg;
use crate::dataflow::{self, DataflowProblem, Direction};
use crate::dominators;

// ---------------------------------------------------------------------
// Constant-predicate propagation and edge pruning.
// ---------------------------------------------------------------------

/// Constant lattice value; an absent map key is ⊥ (never assigned).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConstVal {
    /// Provably this value on every path seen so far.
    Const(i64),
    /// Not a constant.
    Nac,
}

type ConstFact = BTreeMap<String, ConstVal>;

fn join_const(a: ConstVal, b: ConstVal) -> ConstVal {
    match (a, b) {
        (ConstVal::Const(x), ConstVal::Const(y)) if x == y => ConstVal::Const(x),
        _ => ConstVal::Nac,
    }
}

struct ConstPreds;

/// Evaluate a `setp.<cmp>.<ty>` comparison on two constants.
fn eval_cmp(cmp: &str, ty: &str, a: i64, b: i64) -> Option<bool> {
    let unsigned = ty.starts_with('u') || ty.starts_with('b');
    let (ua, ub) = (a as u64, b as u64);
    Some(match cmp {
        "eq" => a == b,
        "ne" => a != b,
        "lt" => {
            if unsigned {
                ua < ub
            } else {
                a < b
            }
        }
        "le" => {
            if unsigned {
                ua <= ub
            } else {
                a <= b
            }
        }
        "gt" => {
            if unsigned {
                ua > ub
            } else {
                a > b
            }
        }
        "ge" => {
            if unsigned {
                ua >= ub
            } else {
                a >= b
            }
        }
        _ => return None,
    })
}

impl DataflowProblem for ConstPreds {
    type Fact = ConstFact;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary_fact(&self) -> Self::Fact {
        ConstFact::new()
    }

    fn init_fact(&self) -> Self::Fact {
        ConstFact::new()
    }

    fn join_into(&self, acc: &mut Self::Fact, from: &Self::Fact) {
        for (k, &v) in from {
            match acc.get(k) {
                Some(&old) => {
                    acc.insert(k.clone(), join_const(old, v));
                }
                None => {
                    acc.insert(k.clone(), v);
                }
            }
        }
    }

    fn transfer(&self, _idx: usize, instr: &Instr, fact: &mut Self::Fact) {
        let Instr::Op {
            opcode,
            operands,
            pred,
        } = instr
        else {
            return;
        };
        let Some(dst) = instr.def_register().map(str::to_string) else {
            return;
        };
        let head = opcode.first().map(String::as_str).unwrap_or("");

        // Resolve an operand to its lattice value (None = ⊥/undefined).
        let resolve = |op: &Operand, fact: &ConstFact| -> Option<ConstVal> {
            match op {
                Operand::Imm(i) => Some(ConstVal::Const(*i)),
                Operand::Reg(r) => fact.get(r).copied(),
                _ => Some(ConstVal::Nac),
            }
        };
        let bin = |f: fn(i64, i64) -> i64, fact: &ConstFact| -> Option<ConstVal> {
            match (
                operands.get(1).and_then(|o| resolve(o, fact)),
                operands.get(2).and_then(|o| resolve(o, fact)),
            ) {
                (Some(ConstVal::Const(a)), Some(ConstVal::Const(b))) => {
                    Some(ConstVal::Const(f(a, b)))
                }
                (None, _) | (_, None) => None,
                _ => Some(ConstVal::Nac),
            }
        };

        let val: Option<ConstVal> = match head {
            "mov" if operands.len() == 2 => operands.get(1).and_then(|o| resolve(o, fact)),
            "add" => bin(i64::wrapping_add, fact),
            "sub" => bin(i64::wrapping_sub, fact),
            "and" => bin(|a, b| a & b, fact),
            "or" => bin(|a, b| a | b, fact),
            "xor" => bin(|a, b| a ^ b, fact),
            "setp" => {
                let cmp = opcode.get(1).map(String::as_str).unwrap_or("");
                let ty = opcode.get(2).map(String::as_str).unwrap_or("");
                match (
                    operands.get(1).and_then(|o| resolve(o, fact)),
                    operands.get(2).and_then(|o| resolve(o, fact)),
                ) {
                    (Some(ConstVal::Const(a)), Some(ConstVal::Const(b))) => {
                        match eval_cmp(cmp, ty, a, b) {
                            Some(r) => Some(ConstVal::Const(r as i64)),
                            None => Some(ConstVal::Nac),
                        }
                    }
                    (None, _) | (_, None) => None,
                    _ => Some(ConstVal::Nac),
                }
            }
            // Loads, conversions, everything else: unknown value.
            _ => Some(ConstVal::Nac),
        };

        if pred.is_some() {
            // Guarded def: the write may or may not happen, and the
            // untaken path may leave an undefined value. Anything finer
            // than Nac here would make the transfer non-monotone (an
            // absent old value must not map higher than a Const one).
            fact.insert(dst, ConstVal::Nac);
        } else {
            match val {
                Some(v) => {
                    fact.insert(dst, v);
                }
                None => {
                    fact.remove(&dst);
                }
            }
        }
    }
}

/// One constant-propagation + pruning round: drop successor edges the
/// terminator's guard proves never taken. Returns the edges removed.
fn prune_once(kernel: &Kernel, cfg: &mut Cfg) -> usize {
    let facts = dataflow::solve(&ConstPreds, kernel, cfg);
    let mut removals: Vec<(usize, usize)> = Vec::new();
    for block in &cfg.blocks {
        let Some(&last) = block.instrs.last() else {
            continue;
        };
        let Instr::Op {
            opcode,
            operands,
            pred: Some(p),
        } = &kernel.body[last]
        else {
            continue;
        };
        // Fact holding just before the terminator.
        let per_instr =
            dataflow::forward_instr_facts(&ConstPreds, kernel, block, &facts.entry[block.id]);
        let Some((_, pre)) = per_instr.last() else {
            continue;
        };
        let Some(&ConstVal::Const(c)) = pre.get(p) else {
            continue;
        };
        let taken = c != 0;
        let head = opcode.first().map(String::as_str).unwrap_or("");
        match head {
            "bra" => {
                let target = operands.iter().find_map(|o| match o {
                    Operand::Label(l) => Some(l.as_str()),
                    _ => None,
                });
                let target_block = cfg
                    .blocks
                    .iter()
                    .find(|b| b.label.as_deref() == target)
                    .map(|b| b.id);
                let fallthrough = block.id + 1;
                for &s in &block.successors {
                    let is_target = Some(s) == target_block;
                    let is_fall = s == fallthrough;
                    // Only prune unambiguous edges: a branch to the next
                    // line is both target and fall-through.
                    if taken && is_fall && !is_target {
                        removals.push((block.id, s));
                    }
                    if !taken && is_target && !is_fall {
                        removals.push((block.id, s));
                    }
                }
            }
            "ret" | "exit" if taken => {
                // The predicated exit always fires: the fall-through
                // edge is dead.
                for &s in &block.successors {
                    if s == block.id + 1 {
                        removals.push((block.id, s));
                    }
                }
            }
            _ => {}
        }
    }
    let removed = removals.len();
    for (b, s) in removals {
        cfg.blocks[b].successors.retain(|&x| x != s);
    }
    removed
}

/// Prune never-taken edges to a fixpoint (each round's constant facts
/// can sharpen once infeasible joins disappear). Returns the pruned CFG
/// and the total number of edges removed.
pub fn prune_never_taken_edges(kernel: &Kernel, cfg: &Cfg) -> (Cfg, usize) {
    let mut cfg = cfg.clone();
    let mut total = 0;
    loop {
        let removed = prune_once(kernel, &mut cfg);
        total += removed;
        if removed == 0 {
            return (cfg, total);
        }
    }
}

// ---------------------------------------------------------------------
// Flow-sensitive pointer provenance.
// ---------------------------------------------------------------------

/// Register → params its value may derive from at one program point.
/// Absent key = ⊥ (no binding on any path yet); empty sets are never
/// stored.
type ProvFact = BTreeMap<String, BTreeSet<String>>;

struct FlowProv;

impl DataflowProblem for FlowProv {
    type Fact = ProvFact;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary_fact(&self) -> Self::Fact {
        ProvFact::new()
    }

    fn init_fact(&self) -> Self::Fact {
        ProvFact::new()
    }

    fn join_into(&self, acc: &mut Self::Fact, from: &Self::Fact) {
        for (k, v) in from {
            acc.entry(k.clone()).or_default().extend(v.iter().cloned());
        }
    }

    fn transfer(&self, _idx: usize, instr: &Instr, fact: &mut Self::Fact) {
        let Instr::Op {
            opcode,
            operands,
            pred,
        } = instr
        else {
            return;
        };
        let Some(dst) = instr.def_register().map(str::to_string) else {
            return;
        };
        let head = opcode.first().map(String::as_str).unwrap_or("");

        let mut incoming: BTreeSet<String> = BTreeSet::new();
        if head == "ld" && opcode.get(1).map(String::as_str) == Some("param") {
            if let Some(Operand::Mem {
                base: MemBase::Param(p),
                ..
            }) = operands.get(1)
            {
                incoming.insert(p.clone());
            }
        } else {
            for src in analysis::reg_sources(&operands[1..]) {
                if let Some(set) = fact.get(src) {
                    incoming.extend(set.iter().cloned());
                }
            }
        }

        if pred.is_some() {
            // Guarded def: the old binding may survive — weak update.
            if !incoming.is_empty() {
                fact.entry(dst).or_default().extend(incoming);
            }
        } else if incoming.is_empty() {
            // Strong update to ⊥: the old binding dies here.
            fact.remove(&dst);
        } else {
            fact.insert(dst, incoming);
        }
    }
}

// ---------------------------------------------------------------------
// The combined pass.
// ---------------------------------------------------------------------

/// Result of the flow-sensitive replication-safety pass.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReplicationSafety {
    /// Sharper access summary; `read_only` ⊇ the one
    /// [`crate::analysis::analyze_kernel`] computes.
    pub summary: KernelAccessSummary,
    /// Body indices of global stores/atomics proven unexecutable (their
    /// block is unreachable once never-taken edges are pruned).
    pub dead_stores: Vec<usize>,
    /// Body indices of reachable stores whose block does not
    /// post-dominate the entry: they execute only on some paths.
    pub guarded_stores: Vec<usize>,
    /// CFG edges removed by constant-predicate pruning.
    pub pruned_edges: usize,
    /// Per reachable `ld.global`: the params its address may derive
    /// from at that point (flow-sensitive, with flow-insensitive
    /// fallback at ⊥). Drives [`crate::rewrite::rewrite_readonly_loads_precise`].
    pub load_provenance: BTreeMap<usize, BTreeSet<String>>,
}

/// Address provenance of one global access at one program point: the
/// flow-sensitive binding of the base register if present, else the
/// flow-insensitive fallback. The fallback keeps every per-store taint
/// a subset of the flow-insensitive taint, which is what makes the
/// final `read_only` a superset (see module docs).
fn addr_provenance(
    instr: &Instr,
    fact: &ProvFact,
    insens: &analysis::Provenance,
) -> Option<BTreeSet<String>> {
    let Instr::Op { operands, .. } = instr else {
        return None;
    };
    let base = operands.iter().find_map(|op| match op {
        Operand::Mem { base, .. } => Some(base),
        _ => None,
    })?;
    match base {
        MemBase::Param(p) => Some([p.clone()].into_iter().collect()),
        MemBase::Reg(r) => match fact.get(r) {
            Some(s) if !s.is_empty() => Some(s.clone()),
            _ => Some(insens.get(r).cloned().unwrap_or_default()),
        },
    }
}

/// Run the flow-sensitive replication-safety pass on one kernel.
pub fn analyze_kernel_flow(kernel: &Kernel) -> ReplicationSafety {
    let cfg = Cfg::build(kernel);
    let (cfg, pruned_edges) = prune_never_taken_edges(kernel, &cfg);
    let reachable_blocks = cfg.reachable();
    let reachable_instrs = cfg.reachable_instrs();

    // Flow-insensitive baselines: the load universe and the ⊥-fallback
    // provenance (both over the *full* body, so pruning can only shrink
    // the stored set, never the loaded one).
    let base = analysis::analyze_kernel(kernel);
    let insens = analysis::provenance_fixpoint(kernel, &|_| true);

    let prov = dataflow::solve(&FlowProv, kernel, &cfg);
    let pdom = dominators::post_dominators(kernel, &cfg);

    let mut result = ReplicationSafety {
        summary: KernelAccessSummary {
            loaded: base.loaded.clone(),
            ..Default::default()
        },
        pruned_edges,
        ..Default::default()
    };

    for block in &cfg.blocks {
        if !reachable_blocks[block.id] {
            continue;
        }
        let facts = dataflow::forward_instr_facts(&FlowProv, kernel, block, &prov.entry[block.id]);
        for (idx, fact) in facts {
            let instr = &kernel.body[idx];
            if instr.is_global_load() {
                let p = addr_provenance(instr, &fact, &insens).unwrap_or_default();
                result.load_provenance.insert(idx, p);
            } else if instr.is_global_store() || instr.is_global_atomic() {
                match addr_provenance(instr, &fact, &insens) {
                    Some(set) if !set.is_empty() => result.summary.stored.extend(set),
                    _ => result.summary.unknown_store = true,
                }
                if !pdom.dominates(block.id, 0) {
                    result.guarded_stores.push(idx);
                }
            }
        }
    }

    for (idx, instr) in kernel.body.iter().enumerate() {
        if (instr.is_global_store() || instr.is_global_atomic())
            && reachable_instrs.binary_search(&idx).is_err()
        {
            result.dead_stores.push(idx);
        }
    }

    if result.summary.unknown_store {
        result.summary.stored.extend(kernel.params.iter().cloned());
    }
    result.summary.read_only = result
        .summary
        .loaded
        .difference(&result.summary.stored)
        .cloned()
        .collect();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_kernel;
    use crate::parse::parse_module;

    fn kernel(src: &str) -> Kernel {
        parse_module(src).unwrap().kernels.remove(0)
    }

    /// The acceptance kernel: the only store sits behind a guard that a
    /// constant comparison proves never taken. The raw CFG still has an
    /// edge into the store block, so even `analyze_kernel_reachable`
    /// cannot prune it — only constant-predicate pruning can.
    const DEAD_GUARD: &str = r#"
.visible .entry k(.param .u64 A, .param .u64 OUT)
{
    ld.param.u64 %rd1, [A];
    ld.param.u64 %rd2, [OUT];
    cvta.to.global.u64 %rd1, %rd1;
    cvta.to.global.u64 %rd2, %rd2;
    ld.global.f32 %f1, [%rd1];
    mov.u32 %r9, 0;
    setp.eq.u32 %p1, %r9, 1;
    @%p1 bra DO_STORE;
    bra END;
DO_STORE:
    st.global.f32 [%rd1], %f1;
END:
    ret;
}
"#;

    #[test]
    fn never_taken_guard_store_is_dead() {
        let k = kernel(DEAD_GUARD);
        // Flow-insensitive (even CFG-reachability-aware): A is tainted.
        assert!(!analyze_kernel(&k).read_only.contains("A"));
        assert!(!crate::analysis::analyze_kernel_reachable(&k)
            .read_only
            .contains("A"));
        // Flow-sensitive: the guard is provably false, the store dead.
        let rs = analyze_kernel_flow(&k);
        assert!(rs.summary.read_only.contains("A"), "{rs:?}");
        assert!(rs.pruned_edges >= 1);
        assert_eq!(rs.dead_stores.len(), 1);
        assert!(!rs.summary.unknown_store);
        let store_idx = k.body.iter().position(|i| i.is_global_store()).unwrap();
        assert_eq!(rs.dead_stores, vec![store_idx]);
    }

    #[test]
    fn always_taken_guard_skips_store() {
        // Inverse polarity: the guard is provably TRUE and jumps over
        // the store.
        let k = kernel(
            r#"
.visible .entry k(.param .u64 A)
{
    ld.param.u64 %rd1, [A];
    ld.global.f32 %f1, [%rd1];
    mov.u32 %r9, 1;
    setp.eq.u32 %p1, %r9, 1;
    @%p1 bra END;
    st.global.f32 [%rd1], %f1;
END:
    ret;
}
"#,
        );
        assert!(!analyze_kernel(&k).read_only.contains("A"));
        let rs = analyze_kernel_flow(&k);
        assert!(rs.summary.read_only.contains("A"), "{rs:?}");
        assert_eq!(rs.dead_stores.len(), 1);
    }

    #[test]
    fn taken_guard_store_still_taints() {
        // Same shape but the guard CAN fire: the store must taint.
        let k = kernel(
            r#"
.visible .entry k(.param .u64 A)
{
    ld.param.u64 %rd1, [A];
    ld.global.f32 %f1, [%rd1];
    setp.eq.u32 %p1, %r8, 1;
    @%p1 bra DO_STORE;
    bra END;
DO_STORE:
    st.global.f32 [%rd1], %f1;
END:
    ret;
}
"#,
        );
        let rs = analyze_kernel_flow(&k);
        assert!(!rs.summary.read_only.contains("A"));
        assert!(rs.summary.stored.contains("A"));
        // The store is reachable but only on one path: guarded.
        assert_eq!(rs.guarded_stores.len(), 1);
        assert_eq!(rs.pruned_edges, 0);
    }

    #[test]
    fn strong_update_untaints_reused_register() {
        // %rd5 points at OUT for the store, then is reassigned to A for
        // the load. Flow-insensitive smears {A, OUT} over %rd5 and
        // refuses to mark the load; flow-sensitive separates the two
        // lifetimes.
        let k = kernel(
            r#"
.visible .entry k(.param .u64 A, .param .u64 OUT)
{
    ld.param.u64 %rd1, [A];
    ld.param.u64 %rd2, [OUT];
    mov.u64 %rd5, %rd2;
    st.global.f32 [%rd5], %f0;
    mov.u64 %rd5, %rd1;
    ld.global.f32 %f1, [%rd5];
    ret;
}
"#,
        );
        let rs = analyze_kernel_flow(&k);
        // A is loaded, never stored: read-only under both analyses
        // (the flow-insensitive store taint {A, OUT} is what differs).
        assert!(rs.summary.read_only.contains("A"), "{rs:?}");
        assert!(!analyze_kernel(&k).read_only.contains("A"));
        // The load's provenance is exactly {A}, not {A, OUT}.
        let load_idx = k.body.iter().position(|i| i.is_global_load()).unwrap();
        assert_eq!(
            rs.load_provenance
                .get(&load_idx)
                .unwrap()
                .iter()
                .collect::<Vec<_>>(),
            vec!["A"]
        );
    }

    #[test]
    fn predicated_store_is_guarded_not_dead() {
        let k = kernel(
            r#"
.visible .entry k(.param .u64 A, .param .u64 OUT)
{
    ld.param.u64 %rd1, [A];
    ld.param.u64 %rd2, [OUT];
    ld.global.f32 %f1, [%rd1];
    setp.gt.f32 %p1, %f1, %f2;
    @%p1 st.global.f32 [%rd2], %f1;
    ret;
}
"#,
        );
        let rs = analyze_kernel_flow(&k);
        assert!(rs.summary.stored.contains("OUT"));
        assert!(rs.summary.read_only.contains("A"));
        assert!(rs.dead_stores.is_empty());
        // Note: a predicated (non-branch) store executes in its block on
        // every path through the block, so post-dominance alone does not
        // flag it; the block post-dominates entry here.
        assert!(rs.guarded_stores.is_empty());
    }

    #[test]
    fn loop_counter_is_not_pruned() {
        // The induction variable joins 0 (entry) with i+1 (back edge):
        // Nac, so the loop-exit test must NOT be pruned.
        let k = kernel(
            r#"
.visible .entry k(.param .u64 IN, .param .u64 OUT)
{
    ld.param.u64 %rd1, [IN];
    ld.param.u64 %rd2, [OUT];
    mov.u32 %r1, 0;
LOOP:
    ld.global.f32 %f1, [%rd1];
    st.global.f32 [%rd2], %f1;
    add.u32 %r1, %r1, 1;
    setp.lt.u32 %p1, %r1, %r7;
    @%p1 bra LOOP;
    ret;
}
"#,
        );
        let rs = analyze_kernel_flow(&k);
        assert_eq!(rs.pruned_edges, 0);
        assert!(rs.summary.read_only.contains("IN"));
        assert!(rs.summary.stored.contains("OUT"));
        assert!(rs.dead_stores.is_empty());
    }

    #[test]
    fn unknown_store_still_taints_everything() {
        let k = kernel(
            r#"
.visible .entry k(.param .u64 A)
{
    ld.param.u64 %rd1, [A];
    ld.global.f32 %f1, [%rd1];
    st.global.f32 [%rd9], %f1;
    ret;
}
"#,
        );
        let rs = analyze_kernel_flow(&k);
        assert!(rs.summary.unknown_store);
        assert!(rs.summary.read_only.is_empty());
    }

    #[test]
    fn flow_result_is_superset_on_seed_kernels() {
        // The invariant on a few hand-written kernels (the proptest in
        // tests/dataflow_props.rs covers random ones).
        for src in [
            DEAD_GUARD,
            ".visible .entry k(.param .u64 X)\n{\n ld.param.u64 %rd1, [X];\n ld.global.f32 %f1, [%rd1];\n st.global.f32 [%rd1], %f1;\n ret;\n}\n",
        ] {
            let k = kernel(src);
            let fi = analyze_kernel(&k);
            let fs = analyze_kernel_flow(&k);
            assert!(
                fs.summary.read_only.is_superset(&fi.read_only),
                "flow-sensitive must never lose read-only params: {src}"
            );
        }
    }
}
