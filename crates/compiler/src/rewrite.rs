//! Rewrite `ld.global` → `ld.global.ro` for proven read-only accesses
//! (paper §5.2: "Load operations accessing read-only data structures
//! using the ld.global instruction are then replaced by a newly
//! introduced ld.global.ro instruction").

use std::collections::{BTreeSet, HashMap};

use crate::analysis::analyze_kernel;
use crate::ast::{Instr, Kernel, MemBase, Operand};

/// Return a copy of `kernel` in which every `ld.global` whose address
/// provably derives **only** from read-only parameters carries the `.ro`
/// marker. Loads with mixed or unknown provenance are left untouched
/// (conservative: never mark a potentially-written array).
pub fn rewrite_readonly_loads(kernel: &Kernel) -> Kernel {
    let summary = analyze_kernel(kernel);
    let ro: &BTreeSet<String> = &summary.read_only;

    // Recompute provenance the same way the analysis does so we can
    // attribute each load. (Cheap: kernels are small.)
    let prov = provenance(kernel);

    let mut out = kernel.clone();
    for instr in &mut out.body {
        if !instr.is_global_load() {
            continue;
        }
        let Instr::Op { opcode, operands, .. } = instr else { continue };
        if opcode.iter().any(|p| p == "ro") {
            continue; // already marked
        }
        let sources: Option<BTreeSet<String>> = match operands.get(1) {
            Some(Operand::Mem { base: MemBase::Reg(r), .. }) => prov.get(r).cloned(),
            Some(Operand::Mem { base: MemBase::Param(p), .. }) => {
                Some([p.clone()].into_iter().collect())
            }
            _ => None,
        };
        let Some(sources) = sources else { continue };
        if !sources.is_empty() && sources.iter().all(|s| ro.contains(s)) {
            // `ld.global.f32` → `ld.global.ro.f32`.
            opcode.insert(2, "ro".to_string());
        }
    }
    out
}

/// Flow-insensitive provenance fixpoint (mirrors `analysis`).
fn provenance(kernel: &Kernel) -> HashMap<String, BTreeSet<String>> {
    let mut prov: HashMap<String, BTreeSet<String>> = HashMap::new();
    loop {
        let mut changed = false;
        for instr in &kernel.body {
            let Instr::Op { opcode, operands, .. } = instr else { continue };
            let head = opcode.first().map(String::as_str).unwrap_or("");
            if matches!(head, "st" | "bra" | "ret" | "bar" | "red" | "exit") {
                continue;
            }
            let Some(Operand::Reg(dst)) = operands.first() else { continue };
            let mut incoming: BTreeSet<String> = BTreeSet::new();
            if head == "ld" && opcode.get(1).map(String::as_str) == Some("param") {
                if let Some(Operand::Mem { base: MemBase::Param(p), .. }) = operands.get(1) {
                    incoming.insert(p.clone());
                }
            } else {
                for op in &operands[1..] {
                    let r = match op {
                        Operand::Reg(r) => Some(r),
                        Operand::Mem { base: MemBase::Reg(r), .. } => Some(r),
                        _ => None,
                    };
                    if let Some(set) = r.and_then(|r| prov.get(r)) {
                        incoming.extend(set.iter().cloned());
                    }
                }
            }
            if incoming.is_empty() {
                continue;
            }
            let entry = prov.entry(dst.clone()).or_default();
            let before = entry.len();
            entry.extend(incoming);
            changed |= entry.len() != before;
        }
        if !changed {
            return prov;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_module;

    fn rewrite(src: &str) -> Kernel {
        let m = parse_module(src).unwrap();
        rewrite_readonly_loads(&m.kernels[0])
    }

    const VECADD: &str = r#"
.visible .entry vecadd(.param .u64 A, .param .u64 B, .param .u64 C)
{
    ld.param.u64 %rd1, [A];
    ld.param.u64 %rd2, [B];
    ld.param.u64 %rd3, [C];
    cvta.to.global.u64 %rd1, %rd1;
    cvta.to.global.u64 %rd2, %rd2;
    cvta.to.global.u64 %rd3, %rd3;
    ld.global.f32 %f1, [%rd1];
    ld.global.f32 %f2, [%rd2];
    add.f32 %f3, %f1, %f2;
    st.global.f32 [%rd3], %f3;
    ret;
}
"#;

    #[test]
    fn marks_only_readonly_loads() {
        let k = rewrite(VECADD);
        let ptx = k.to_ptx();
        assert_eq!(ptx.matches("ld.global.ro.f32").count(), 2);
        assert_eq!(ptx.matches("st.global.f32").count(), 1);
        assert!(!ptx.contains("st.global.ro"));
    }

    #[test]
    fn read_write_array_loads_untouched() {
        let k = rewrite(
            r#"
.visible .entry inc(.param .u64 X)
{
    ld.param.u64 %rd1, [X];
    ld.global.f32 %f1, [%rd1];
    add.f32 %f1, %f1, 1;
    st.global.f32 [%rd1], %f1;
    ret;
}
"#,
        );
        assert!(!k.to_ptx().contains(".ro"));
    }

    #[test]
    fn rewrite_is_idempotent() {
        let once = rewrite(VECADD);
        let twice = rewrite_readonly_loads(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn rewritten_kernel_reparses() {
        let k = rewrite(VECADD);
        let m = parse_module(&k.to_ptx()).unwrap();
        assert_eq!(m.kernels[0], k);
        // The .ro form is still recognized as a global load.
        assert_eq!(m.kernels[0].body.iter().filter(|i| i.is_global_load()).count(), 2);
    }

    #[test]
    fn mixed_provenance_not_marked() {
        // %rd5 selects between A (RO) and C (RW): must stay unmarked.
        let k = rewrite(
            r#"
.visible .entry sel(.param .u64 A, .param .u64 C)
{
    ld.param.u64 %rd1, [A];
    ld.param.u64 %rd3, [C];
    selp.b64 %rd5, %rd1, %rd3, %p1;
    ld.global.f32 %f1, [%rd5];
    ld.global.f32 %f2, [%rd1];
    st.global.f32 [%rd3], %f2;
    ret;
}
"#,
        );
        let ptx = k.to_ptx();
        // Only the pure-A load is marked.
        assert_eq!(ptx.matches("ld.global.ro").count(), 1);
        assert!(ptx.contains("ld.global.ro.f32 %f2"));
    }
}
