//! Rewrite `ld.global` → `ld.global.ro` for proven read-only accesses
//! (paper §5.2: "Load operations accessing read-only data structures
//! using the ld.global instruction are then replaced by a newly
//! introduced ld.global.ro instruction").

use std::collections::BTreeSet;

use crate::analysis::{analyze_kernel, provenance_fixpoint};
use crate::ast::{Instr, Kernel, MemBase, Operand};
use crate::replication_safety::analyze_kernel_flow;

/// Return a copy of `kernel` in which every `ld.global` whose address
/// provably derives **only** from read-only parameters carries the `.ro`
/// marker. Loads with mixed or unknown provenance are left untouched
/// (conservative: never mark a potentially-written array).
pub fn rewrite_readonly_loads(kernel: &Kernel) -> Kernel {
    let summary = analyze_kernel(kernel);
    let ro: &BTreeSet<String> = &summary.read_only;

    // Recompute provenance the same way the analysis does so we can
    // attribute each load. (Cheap: kernels are small.)
    let prov = provenance_fixpoint(kernel, &|_| true);

    let mut out = kernel.clone();
    for instr in &mut out.body {
        if !instr.is_global_load() {
            continue;
        }
        let Instr::Op {
            opcode, operands, ..
        } = instr
        else {
            continue;
        };
        if opcode.iter().any(|p| p == "ro") {
            continue; // already marked
        }
        let sources: Option<BTreeSet<String>> = match operands.get(1) {
            Some(Operand::Mem {
                base: MemBase::Reg(r),
                ..
            }) => prov.get(r).cloned(),
            Some(Operand::Mem {
                base: MemBase::Param(p),
                ..
            }) => Some([p.clone()].into_iter().collect()),
            _ => None,
        };
        let Some(sources) = sources else { continue };
        if !sources.is_empty() && sources.iter().all(|s| ro.contains(s)) {
            // `ld.global.f32` → `ld.global.ro.f32`.
            opcode.insert(2, "ro".to_string());
        }
    }
    out
}

/// Like [`rewrite_readonly_loads`], but driven by the flow-sensitive
/// [`analyze_kernel_flow`] pass: loads are attributed with
/// per-program-point provenance, so a pointer register later reused for
/// a read-write array no longer blocks marking, stores behind provably
/// never-taken guards no longer taint, and loads in dead code are never
/// marked.
///
/// The marks are a superset of [`rewrite_readonly_loads`]'s on any
/// kernel where both attribute a load identically, and the result
/// reparses and is idempotent in the same way.
pub fn rewrite_readonly_loads_precise(kernel: &Kernel) -> Kernel {
    let rs = analyze_kernel_flow(kernel);
    let ro = &rs.summary.read_only;
    let mut out = kernel.clone();
    for (idx, instr) in out.body.iter_mut().enumerate() {
        if !instr.is_global_load() {
            continue;
        }
        let Instr::Op { opcode, .. } = instr else {
            continue;
        };
        if opcode.iter().any(|p| p == "ro") {
            continue; // already marked
        }
        // Loads pruned as unreachable have no provenance entry and stay
        // unmarked.
        let Some(sources) = rs.load_provenance.get(&idx) else {
            continue;
        };
        if !sources.is_empty() && sources.iter().all(|s| ro.contains(s)) {
            opcode.insert(2, "ro".to_string());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_module;

    fn rewrite(src: &str) -> Kernel {
        let m = parse_module(src).unwrap();
        rewrite_readonly_loads(&m.kernels[0])
    }

    const VECADD: &str = r#"
.visible .entry vecadd(.param .u64 A, .param .u64 B, .param .u64 C)
{
    ld.param.u64 %rd1, [A];
    ld.param.u64 %rd2, [B];
    ld.param.u64 %rd3, [C];
    cvta.to.global.u64 %rd1, %rd1;
    cvta.to.global.u64 %rd2, %rd2;
    cvta.to.global.u64 %rd3, %rd3;
    ld.global.f32 %f1, [%rd1];
    ld.global.f32 %f2, [%rd2];
    add.f32 %f3, %f1, %f2;
    st.global.f32 [%rd3], %f3;
    ret;
}
"#;

    #[test]
    fn marks_only_readonly_loads() {
        let k = rewrite(VECADD);
        let ptx = k.to_ptx();
        assert_eq!(ptx.matches("ld.global.ro.f32").count(), 2);
        assert_eq!(ptx.matches("st.global.f32").count(), 1);
        assert!(!ptx.contains("st.global.ro"));
    }

    #[test]
    fn read_write_array_loads_untouched() {
        let k = rewrite(
            r#"
.visible .entry inc(.param .u64 X)
{
    ld.param.u64 %rd1, [X];
    ld.global.f32 %f1, [%rd1];
    add.f32 %f1, %f1, 1;
    st.global.f32 [%rd1], %f1;
    ret;
}
"#,
        );
        assert!(!k.to_ptx().contains(".ro"));
    }

    #[test]
    fn rewrite_is_idempotent() {
        let once = rewrite(VECADD);
        let twice = rewrite_readonly_loads(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn rewritten_kernel_reparses() {
        let k = rewrite(VECADD);
        let m = parse_module(&k.to_ptx()).unwrap();
        assert_eq!(m.kernels[0], k);
        // The .ro form is still recognized as a global load.
        assert_eq!(
            m.kernels[0]
                .body
                .iter()
                .filter(|i| i.is_global_load())
                .count(),
            2
        );
    }

    #[test]
    fn precise_rewrite_matches_plain_on_straight_line() {
        let once = rewrite_readonly_loads(&parse_module(VECADD).unwrap().kernels[0]);
        let precise = rewrite_readonly_loads_precise(&parse_module(VECADD).unwrap().kernels[0]);
        assert_eq!(once, precise);
    }

    #[test]
    fn precise_rewrite_marks_past_dead_guarded_store() {
        // The store never executes (guard provably false), so the load
        // from A gets the .ro mark only under the precise rewriter.
        let src = r#"
.visible .entry k(.param .u64 A)
{
    ld.param.u64 %rd1, [A];
    ld.global.f32 %f1, [%rd1];
    mov.u32 %r9, 0;
    setp.eq.u32 %p1, %r9, 1;
    @%p1 bra DO_STORE;
    bra END;
DO_STORE:
    st.global.f32 [%rd1], %f1;
END:
    ret;
}
"#;
        let k = &parse_module(src).unwrap().kernels[0];
        assert!(!rewrite_readonly_loads(k).to_ptx().contains("ld.global.ro"));
        let precise = rewrite_readonly_loads_precise(k);
        assert_eq!(precise.to_ptx().matches("ld.global.ro").count(), 1);
        // Idempotent and reparseable, like the plain rewriter.
        assert_eq!(rewrite_readonly_loads_precise(&precise), precise);
        assert_eq!(parse_module(&precise.to_ptx()).unwrap().kernels[0], precise);
    }

    #[test]
    fn precise_rewrite_separates_register_lifetimes() {
        // %rd5 holds OUT for the store, then A for the load: only the
        // precise rewriter may mark the load.
        let src = r#"
.visible .entry k(.param .u64 A, .param .u64 OUT)
{
    ld.param.u64 %rd1, [A];
    ld.param.u64 %rd2, [OUT];
    mov.u64 %rd5, %rd2;
    st.global.f32 [%rd5], %f0;
    mov.u64 %rd5, %rd1;
    ld.global.f32 %f1, [%rd5];
    ret;
}
"#;
        let k = &parse_module(src).unwrap().kernels[0];
        assert!(!rewrite_readonly_loads(k).to_ptx().contains(".ro"));
        assert_eq!(
            rewrite_readonly_loads_precise(k)
                .to_ptx()
                .matches("ld.global.ro")
                .count(),
            1
        );
    }

    #[test]
    fn mixed_provenance_not_marked() {
        // %rd5 selects between A (RO) and C (RW): must stay unmarked.
        let k = rewrite(
            r#"
.visible .entry sel(.param .u64 A, .param .u64 C)
{
    ld.param.u64 %rd1, [A];
    ld.param.u64 %rd3, [C];
    selp.b64 %rd5, %rd1, %rd3, %p1;
    ld.global.f32 %f1, [%rd5];
    ld.global.f32 %f2, [%rd1];
    st.global.f32 [%rd3], %f2;
    ret;
}
"#,
        );
        let ptx = k.to_ptx();
        // Only the pure-A load is marked.
        assert_eq!(ptx.matches("ld.global.ro").count(), 1);
        assert!(ptx.contains("ld.global.ro.f32 %f2"));
    }
}
