//! Property tests for the dataflow layer: the worklist solver and the
//! dominance machinery agree with naive path-enumeration references on
//! random graphs, and the flow-sensitive replication-safety pass never
//! loses a read-only param the flow-insensitive baseline finds.

use proptest::prelude::*;
use std::collections::BTreeSet;

use nuba_compiler::{
    analyze_kernel, analyze_kernel_flow, dominators, parse_module, post_dominators, solve_dataflow,
    BasicBlock, Cfg, Instr, Kernel, Liveness,
};

// ---------------------------------------------------------------------
// Random guarded kernels: segments of loads/stores, each optionally
// wrapped in a branch whose guard is constant-false (dead), constant-
// true, or data-dependent.

/// Guard wrapped around one segment of accesses.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Guard {
    /// Accesses execute unconditionally.
    None,
    /// `setp` on constants that is provably false: the segment is dead.
    DeadConst,
    /// `setp` on constants that is provably true: the segment executes.
    TrueConst,
    /// Guard on registers the analysis cannot evaluate.
    Unknown,
}

#[derive(Debug, Clone)]
struct Segment {
    guard: Guard,
    /// (param index, is_store) accesses inside the segment.
    accesses: Vec<(usize, bool)>,
}

fn kernel_strategy() -> impl Strategy<Value = (String, usize, Vec<Segment>)> {
    let seg = (
        0usize..4,
        proptest::collection::vec((0usize..4, any::<bool>()), 1..6),
    )
        .prop_map(|(g, accesses)| Segment {
            guard: match g {
                0 => Guard::None,
                1 => Guard::DeadConst,
                2 => Guard::TrueConst,
                _ => Guard::Unknown,
            },
            accesses,
        });
    (
        2usize..=4,
        proptest::collection::vec(seg, 1..5),
        any::<bool>(),
    )
        .prop_map(|(nparams, mut segments, tail_loop)| {
            for s in &mut segments {
                for a in &mut s.accesses {
                    a.0 %= nparams;
                }
            }
            let mut src = String::new();
            src.push_str(".visible .entry gen(");
            for p in 0..nparams {
                if p > 0 {
                    src.push_str(", ");
                }
                src.push_str(&format!(".param .u64 P{p}"));
            }
            src.push_str(")\n{\n");
            for p in 0..nparams {
                src.push_str(&format!("    ld.param.u64 %rd{p}, [P{p}];\n"));
                src.push_str(&format!("    cvta.to.global.u64 %rd{p}, %rd{p};\n"));
            }
            let mut f = 0usize;
            for (j, s) in segments.iter().enumerate() {
                match s.guard {
                    Guard::None => {}
                    Guard::DeadConst => {
                        src.push_str("    mov.u32 %r9, 0;\n");
                        src.push_str(&format!("    setp.eq.u32 %p{j}, %r9, 1;\n"));
                        src.push_str(&format!(
                            "    @%p{j} bra DO{j};\n    bra SKIP{j};\nDO{j}:\n"
                        ));
                    }
                    Guard::TrueConst => {
                        src.push_str("    mov.u32 %r9, 1;\n");
                        src.push_str(&format!("    setp.eq.u32 %p{j}, %r9, 1;\n"));
                        src.push_str(&format!(
                            "    @%p{j} bra DO{j};\n    bra SKIP{j};\nDO{j}:\n"
                        ));
                    }
                    Guard::Unknown => {
                        src.push_str(&format!(
                            "    setp.lt.u32 %p{j}, %r{}, %r{};\n",
                            20 + j,
                            30 + j
                        ));
                        src.push_str(&format!(
                            "    @%p{j} bra DO{j};\n    bra SKIP{j};\nDO{j}:\n"
                        ));
                    }
                }
                for &(p, store) in &s.accesses {
                    if store {
                        src.push_str(&format!("    st.global.f32 [%rd{p}], %f{f};\n"));
                    } else {
                        src.push_str(&format!("    ld.global.f32 %f{f}, [%rd{p}];\n"));
                    }
                    f += 1;
                }
                if s.guard != Guard::None {
                    src.push_str(&format!("SKIP{j}:\n"));
                }
            }
            if tail_loop {
                src.push_str("    mov.u32 %r40, 0;\nLOOPTOP:\n");
                src.push_str("    add.u32 %r40, %r40, 1;\n");
                src.push_str("    setp.lt.u32 %p9, %r40, %r41;\n");
                src.push_str("    @%p9 bra LOOPTOP;\n");
            }
            src.push_str("    ret;\n}\n");
            (src, nparams, segments)
        })
}

fn parse_kernel(src: &str) -> Kernel {
    parse_module(src)
        .expect("generated kernel parses")
        .kernels
        .remove(0)
}

// ---------------------------------------------------------------------
// Naive references.

/// Blocks reachable from `from` without entering `avoid`.
fn reachable_avoiding(cfg: &Cfg, from: usize, avoid: Option<usize>) -> Vec<bool> {
    let mut seen = vec![false; cfg.blocks.len()];
    if Some(from) == avoid {
        return seen;
    }
    let mut stack = vec![from];
    seen[from] = true;
    while let Some(b) = stack.pop() {
        for &s in &cfg.blocks[b].successors {
            if !seen[s] && Some(s) != avoid {
                seen[s] = true;
                stack.push(s);
            }
        }
    }
    seen
}

/// Whether any block in `targets` is reachable from `from` avoiding `avoid`.
fn reaches_any_avoiding(cfg: &Cfg, from: usize, targets: &[usize], avoid: Option<usize>) -> bool {
    let seen = reachable_avoiding(cfg, from, avoid);
    targets.iter().any(|&t| seen[t])
}

fn is_predicated(instr: &Instr) -> bool {
    matches!(instr, Instr::Op { pred: Some(_), .. })
}

/// Path-enumeration liveness: `reg` is live at the entry of `start` iff
/// some path reaches a use of `reg` before an unpredicated def.
fn naive_live_at_entry(kernel: &Kernel, cfg: &Cfg, start: usize, reg: &str) -> bool {
    let mut visited = vec![false; cfg.blocks.len()];
    let mut stack = vec![start];
    while let Some(b) = stack.pop() {
        if visited[b] {
            continue;
        }
        visited[b] = true;
        let mut killed = false;
        for &i in &cfg.blocks[b].instrs {
            let instr = &kernel.body[i];
            if instr.use_registers().contains(&reg) {
                return true;
            }
            if instr.def_register() == Some(reg) && !is_predicated(instr) {
                killed = true;
                break;
            }
        }
        if !killed {
            stack.extend(cfg.blocks[b].successors.iter().copied());
        }
    }
    false
}

/// The virtual-exit roots of the post-dominance relation: blocks with no
/// successors or a (possibly predicated) `ret`/`exit` terminator.
fn exit_roots(kernel: &Kernel, cfg: &Cfg) -> Vec<usize> {
    cfg.blocks
        .iter()
        .filter(|b| {
            b.successors.is_empty()
                || b.instrs.last().is_some_and(|&i| {
                    matches!(&kernel.body[i], Instr::Op { opcode, .. }
                        if matches!(opcode.first().map(String::as_str), Some("ret") | Some("exit")))
                })
        })
        .map(|b| b.id)
        .collect()
}

/// An arbitrary graph shaped as a `Cfg` (instruction lists stay empty:
/// dominators only read the edges).
fn graph_strategy() -> impl Strategy<Value = Cfg> {
    (1usize..=10).prop_flat_map(|n| {
        proptest::collection::vec(proptest::collection::vec(0usize..n, 0..3), n).prop_map(
            move |succs| Cfg {
                blocks: succs
                    .into_iter()
                    .enumerate()
                    .map(|(id, mut successors)| {
                        successors.sort_unstable();
                        successors.dedup();
                        BasicBlock {
                            id,
                            label: None,
                            instrs: Vec::new(),
                            successors,
                        }
                    })
                    .collect(),
            },
        )
    })
}

// ---------------------------------------------------------------------
// Properties.

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// The flow-sensitive pass never loses a read-only param the
    /// flow-insensitive baseline proves, and dead-guarded stores never
    /// taint.
    #[test]
    fn flow_read_only_is_superset_and_prunes_dead_stores(spec in kernel_strategy()) {
        let (src, nparams, segments) = spec;
        let k = parse_kernel(&src);
        let flow = analyze_kernel_flow(&k);
        let insens = analyze_kernel(&k);
        prop_assert!(
            flow.summary.read_only.is_superset(&insens.read_only),
            "flow {:?} vs insens {:?}\n{src}",
            flow.summary.read_only,
            insens.read_only
        );
        // Ground truth: a param is flow-read-only iff it is loaded
        // somewhere and every store to it sits in a dead-guarded segment.
        for p in 0..nparams {
            let name = format!("P{p}");
            let loaded = segments.iter().any(|s| s.accesses.iter().any(|&(q, st)| q == p && !st));
            let live_store = segments.iter().any(|s| {
                s.guard != Guard::DeadConst
                    && s.accesses.iter().any(|&(q, st)| q == p && st)
            });
            prop_assert_eq!(
                flow.summary.read_only.contains(&name),
                loaded && !live_store,
                "param {} loaded={} live_store={}\n{}",
                name, loaded, live_store, src
            );
        }
    }

    /// The bitset dominator solver matches the path definition: `a`
    /// dominates `b` iff removing `a` cuts `b` off from the entry.
    #[test]
    fn dominators_match_naive_reference(cfg in graph_strategy()) {
        let dom = dominators(&cfg);
        let n = cfg.blocks.len();
        let reach = reachable_avoiding(&cfg, 0, None);
        for (b, &reach_b) in reach.iter().enumerate() {
            prop_assert_eq!(dom.defined(b), reach_b, "block {}", b);
            if !reach_b {
                prop_assert!(!dom.dominates(0, b));
                continue;
            }
            for a in 0..n {
                let expected = a == b || !reachable_avoiding(&cfg, 0, Some(a))[b];
                prop_assert_eq!(
                    dom.dominates(a, b), expected,
                    "dominates({}, {}) in {:?}", a, b, cfg
                );
            }
            // idom sanity: the unique closest strict dominator.
            if b == 0 {
                prop_assert_eq!(dom.idom[b], None);
            } else if let Some(d) = dom.idom[b] {
                prop_assert!(dom.strictly_dominates(d, b));
                for a in 0..n {
                    if dom.strictly_dominates(a, b) {
                        prop_assert!(
                            dom.dominates(a, d),
                            "strict dominator {} of {} must dominate idom {}", a, b, d
                        );
                    }
                }
            }
        }
    }

    /// Post-dominance over generated kernels matches the virtual-exit
    /// path definition.
    #[test]
    fn post_dominators_match_naive_reference(spec in kernel_strategy()) {
        let (src, _, _) = spec;
        let k = parse_kernel(&src);
        let cfg = Cfg::build(&k);
        let pdom = post_dominators(&k, &cfg);
        let roots = exit_roots(&k, &cfg);
        for b in 0..cfg.blocks.len() {
            let can_exit = reaches_any_avoiding(&cfg, b, &roots, None);
            prop_assert_eq!(pdom.defined(b), can_exit, "block {}\n{}", b, src);
            if !can_exit {
                continue;
            }
            for a in 0..cfg.blocks.len() {
                let expected = a == b || !reaches_any_avoiding(&cfg, b, &roots, Some(a));
                prop_assert_eq!(
                    pdom.dominates(a, b), expected,
                    "post-dominates({}, {})\n{}", a, b, src
                );
            }
        }
    }

    /// The backward worklist liveness solution matches path enumeration
    /// at every block entry, for every register the kernel mentions.
    #[test]
    fn liveness_matches_naive_reference(spec in kernel_strategy()) {
        let (src, _, _) = spec;
        let k = parse_kernel(&src);
        let cfg = Cfg::build(&k);
        let facts = solve_dataflow(&Liveness, &k, &cfg);
        let mut regs: BTreeSet<String> = BTreeSet::new();
        for instr in &k.body {
            regs.extend(instr.use_registers().iter().map(|r| r.to_string()));
            if let Some(d) = instr.def_register() {
                regs.insert(d.to_string());
            }
        }
        for b in 0..cfg.blocks.len() {
            for r in &regs {
                prop_assert_eq!(
                    facts.entry[b].contains(r),
                    naive_live_at_entry(&k, &cfg, b, r),
                    "reg {} at block {}\n{}", r, b, src
                );
            }
        }
    }
}
