//! Property tests: the PTX parser never panics, round-trips its own
//! output, and the analysis/rewrite stay consistent under generated
//! kernels.

use proptest::prelude::*;

use nuba_compiler::{analyze_kernel, parse_module, rewrite_readonly_loads};

/// Generate a syntactically valid kernel: param pointers loaded into
/// registers, a random mix of loads/stores through them.
fn kernel_strategy() -> impl Strategy<Value = (String, Vec<(usize, bool)>)> {
    // (param index, is_store) per access, over up to 4 params.
    (
        2usize..=4,
        proptest::collection::vec((0usize..4, any::<bool>()), 1..20),
    )
        .prop_map(|(nparams, accesses)| {
            let accesses: Vec<(usize, bool)> = accesses
                .into_iter()
                .map(|(p, s)| (p % nparams, s))
                .collect();
            let names: Vec<String> = (0..nparams).map(|i| format!("P{i}")).collect();
            let mut src = String::new();
            src.push_str(".visible .entry gen(");
            for (i, n) in names.iter().enumerate() {
                if i > 0 {
                    src.push_str(", ");
                }
                src.push_str(&format!(".param .u64 {n}"));
            }
            src.push_str(")\n{\n");
            for (i, n) in names.iter().enumerate() {
                src.push_str(&format!("    ld.param.u64 %rd{i}, [{n}];\n"));
                src.push_str(&format!("    cvta.to.global.u64 %rd{i}, %rd{i};\n"));
            }
            for (k, &(p, store)) in accesses.iter().enumerate() {
                if store {
                    src.push_str(&format!("    st.global.f32 [%rd{p}], %f{k};\n"));
                } else {
                    src.push_str(&format!("    ld.global.f32 %f{k}, [%rd{p}];\n"));
                }
            }
            src.push_str("    ret;\n}\n");
            (src, accesses)
        })
}

proptest! {
    #[test]
    fn parser_never_panics_on_arbitrary_text(s in "[ -~\n]{0,400}") {
        let _ = parse_module(&s); // must not panic; errors are fine
    }

    #[test]
    fn generated_kernels_roundtrip(spec in kernel_strategy()) {
        let (src, _) = spec;
        let m = parse_module(&src).expect("generated kernel parses");
        let re = parse_module(&m.to_ptx()).expect("emitted kernel reparses");
        prop_assert_eq!(m, re);
    }

    #[test]
    fn analysis_matches_access_ground_truth(spec in kernel_strategy()) {
        let (src, accesses) = spec;
        let m = parse_module(&src).unwrap();
        let summary = analyze_kernel(&m.kernels[0]);
        // Ground truth per param.
        for p in 0..4 {
            let name = format!("P{p}");
            let loaded = accesses.iter().any(|&(q, s)| q == p && !s);
            let stored = accesses.iter().any(|&(q, s)| q == p && s);
            prop_assert_eq!(summary.loaded.contains(&name), loaded, "{} loaded", name);
            prop_assert_eq!(summary.stored.contains(&name), stored, "{} stored", name);
            prop_assert_eq!(
                summary.read_only.contains(&name),
                loaded && !stored,
                "{} read-only",
                name
            );
        }
        prop_assert!(!summary.unknown_store, "all stores have provenance");
    }

    #[test]
    fn rewrite_marks_exactly_readonly_loads(spec in kernel_strategy()) {
        let (src, accesses) = spec;
        let m = parse_module(&src).unwrap();
        let rewritten = rewrite_readonly_loads(&m.kernels[0]);
        let ptx = rewritten.to_ptx();
        let ro_loads = accesses
            .iter()
            .filter(|&&(p, s)| {
                !s && !accesses.iter().any(|&(q, st)| q == p && st)
            })
            .count();
        prop_assert_eq!(ptx.matches("ld.global.ro").count(), ro_loads);
        // Rewriting is idempotent and stays parseable.
        let again = rewrite_readonly_loads(&rewritten);
        prop_assert_eq!(&again, &rewritten);
        prop_assert!(parse_module(&ptx).is_ok());
    }
}
