//! Property tests: the PTX parser never panics, round-trips its own
//! output, and the analysis/rewrite stay consistent under generated
//! kernels.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use proptest::prelude::*;

use nuba_compiler::{
    analyze_kernel, interpret, parse_module, profile_kernel, rewrite_readonly_loads, Footprint,
    InterpConfig, InterpResult, ProfileAssumptions,
};

/// Generate a syntactically valid kernel: param pointers loaded into
/// registers, a random mix of loads/stores through them.
fn kernel_strategy() -> impl Strategy<Value = (String, Vec<(usize, bool)>)> {
    // (param index, is_store) per access, over up to 4 params.
    (
        2usize..=4,
        proptest::collection::vec((0usize..4, any::<bool>()), 1..20),
    )
        .prop_map(|(nparams, accesses)| {
            let accesses: Vec<(usize, bool)> = accesses
                .into_iter()
                .map(|(p, s)| (p % nparams, s))
                .collect();
            let names: Vec<String> = (0..nparams).map(|i| format!("P{i}")).collect();
            let mut src = String::new();
            src.push_str(".visible .entry gen(");
            for (i, n) in names.iter().enumerate() {
                if i > 0 {
                    src.push_str(", ");
                }
                src.push_str(&format!(".param .u64 {n}"));
            }
            src.push_str(")\n{\n");
            for (i, n) in names.iter().enumerate() {
                src.push_str(&format!("    ld.param.u64 %rd{i}, [{n}];\n"));
                src.push_str(&format!("    cvta.to.global.u64 %rd{i}, %rd{i};\n"));
            }
            for (k, &(p, store)) in accesses.iter().enumerate() {
                if store {
                    src.push_str(&format!("    st.global.f32 [%rd{p}], %f{k};\n"));
                } else {
                    src.push_str(&format!("    ld.global.f32 %f{k}, [%rd{p}];\n"));
                }
            }
            src.push_str("    ret;\n}\n");
            (src, accesses)
        })
}

/// One generated counted-loop kernel plus the knobs that shaped it.
#[derive(Debug, Clone)]
struct LoopKernel {
    src: String,
    /// Loop trip count (a literal bound in the source).
    trip: u64,
    /// Per-param `(tid_stride, loop_stride, offset, is_store)`.
    params: Vec<(i64, i64, i64, bool)>,
}

/// Generate a kernel where every param is walked by a counted loop:
/// `base + tid·tid_stride + iv·loop_stride + offset`, with a literal
/// trip count — the shape the affine pass and trip prover target.
fn loop_kernel_strategy() -> impl Strategy<Value = LoopKernel> {
    let param = (
        prop_oneof![Just(0i64), Just(4), Just(8), Just(64)],
        prop_oneof![Just(0i64), Just(4), Just(16), Just(128)],
        (0i64..16).prop_map(|k| k * 4),
        any::<bool>(),
    );
    (proptest::collection::vec(param, 1..=3), 1u64..=32).prop_map(|(params, trip)| {
        let mut src = String::new();
        src.push_str(".visible .entry gen(");
        for i in 0..params.len() {
            if i > 0 {
                src.push_str(", ");
            }
            src.push_str(&format!(".param .u64 P{i}"));
        }
        src.push_str(")\n{\n");
        for (i, &(tid_stride, _, _, _)) in params.iter().enumerate() {
            src.push_str(&format!("    ld.param.u64 %rdb{i}, [P{i}];\n"));
            src.push_str(&format!("    cvta.to.global.u64 %rdb{i}, %rdb{i};\n"));
            src.push_str("    mov.u32 %r1, %tid_x;\n");
            src.push_str(&format!("    mul.wide.u32 %rdt{i}, %r1, {tid_stride};\n"));
            src.push_str(&format!("    add.s64 %rda{i}, %rdb{i}, %rdt{i};\n"));
        }
        src.push_str("    mov.u32 %r2, 0;\n");
        src.push_str(&format!("    mov.u32 %r3, {trip};\n"));
        src.push_str("LOOP:\n");
        for (i, &(_, loop_stride, offset, store)) in params.iter().enumerate() {
            if store {
                src.push_str(&format!("    st.global.f32 [%rda{i}+{offset}], %f1;\n"));
            } else {
                src.push_str(&format!("    ld.global.f32 %f1, [%rda{i}+{offset}];\n"));
            }
            src.push_str(&format!("    add.s64 %rda{i}, %rda{i}, {loop_stride};\n"));
        }
        src.push_str("    add.u32 %r2, %r2, 1;\n");
        src.push_str("    setp.lt.u32 %p1, %r2, %r3;\n");
        src.push_str("    @%p1 bra LOOP;\n");
        src.push_str("    ret;\n}\n");
        LoopKernel { src, trip, params }
    })
}

/// Interpret every thread `tid ∈ [0, threads)` of a loop kernel with
/// param `i` based at `BASE_STEP · (i+1)` and collect the touched page
/// set per param (pages relative to the param's own base).
fn dynamic_pages(
    kernel: &nuba_compiler::Kernel,
    nparams: usize,
    threads: u64,
    page_bytes: u64,
) -> Vec<BTreeSet<i64>> {
    const BASE_STEP: i64 = 1 << 24; // far larger than any generated footprint
    let params: BTreeMap<String, i64> = (0..nparams)
        .map(|i| (format!("P{i}"), BASE_STEP * (i as i64 + 1)))
        .collect();
    let mut pages = vec![BTreeSet::new(); nparams];
    for tid in 0..threads {
        let r: InterpResult = interpret(
            kernel,
            &InterpConfig {
                params: params.clone(),
                tid: tid as i64,
                max_steps: 0,
            },
        );
        assert!(r.completed, "generated kernel must terminate");
        for a in &r.accesses {
            let pi = (a.addr / BASE_STEP - 1) as usize;
            let rel = a.addr - BASE_STEP * (pi as i64 + 1);
            for p in rel / page_bytes as i64..=(rel + a.width as i64 - 1) / page_bytes as i64 {
                pages[pi].insert(p);
            }
        }
    }
    pages
}

proptest! {
    #[test]
    fn loop_kernels_roundtrip(lk in loop_kernel_strategy()) {
        let m = parse_module(&lk.src).expect("generated loop kernel parses");
        let re = parse_module(&m.to_ptx()).expect("emitted loop kernel reparses");
        prop_assert_eq!(m, re);
    }

    /// The static footprint is a superset of the dynamically-touched
    /// page set, and bounded: under assumptions matching the dynamic
    /// run exactly (same thread count, trip fallback equal to the real
    /// trip), the interval hull predicts no more pages than the hull of
    /// what one thread sweep actually touches.
    #[test]
    fn static_footprint_covers_dynamic_pages(lk in loop_kernel_strategy()) {
        let threads = 4u64;
        let page_bytes = 4096u64;
        let m = parse_module(&lk.src).unwrap();
        let profile = profile_kernel(&m.kernels[0], ProfileAssumptions {
            threads,
            default_trip: lk.trip,
            page_bytes,
        });
        let dynamic = dynamic_pages(&m.kernels[0], lk.params.len(), threads, page_bytes);
        for (i, touched) in dynamic.iter().enumerate() {
            let p = profile.param(&format!("P{i}")).unwrap();
            let Footprint::Span { lo, hi } = p.footprint else {
                return Err(TestCaseError::fail(format!(
                    "P{i}: affine loop kernel produced {:?}",
                    p.footprint
                )));
            };
            let lo_page = lo.div_euclid(page_bytes as i64);
            let hi_page = (hi - 1).div_euclid(page_bytes as i64);
            // Superset: every touched page inside the predicted hull.
            for &pg in touched {
                prop_assert!(
                    (lo_page..=hi_page).contains(&pg),
                    "P{}: touched page {} outside predicted [{}, {}]",
                    i, pg, lo_page, hi_page
                );
            }
            // Bounded: the hull is exact at page granularity, because
            // the assumptions match the dynamic run.
            let dyn_lo = *touched.iter().next().expect("loop body touches the param");
            let dyn_hi = *touched.iter().next_back().unwrap();
            prop_assert_eq!(
                (lo_page, hi_page),
                (dyn_lo, dyn_hi),
                "P{}: predicted hull wider than the dynamic hull", i
            );
        }
    }
}

proptest! {
    #[test]
    fn parser_never_panics_on_arbitrary_text(s in "[ -~\n]{0,400}") {
        let _ = parse_module(&s); // must not panic; errors are fine
    }

    #[test]
    fn generated_kernels_roundtrip(spec in kernel_strategy()) {
        let (src, _) = spec;
        let m = parse_module(&src).expect("generated kernel parses");
        let re = parse_module(&m.to_ptx()).expect("emitted kernel reparses");
        prop_assert_eq!(m, re);
    }

    #[test]
    fn analysis_matches_access_ground_truth(spec in kernel_strategy()) {
        let (src, accesses) = spec;
        let m = parse_module(&src).unwrap();
        let summary = analyze_kernel(&m.kernels[0]);
        // Ground truth per param.
        for p in 0..4 {
            let name = format!("P{p}");
            let loaded = accesses.iter().any(|&(q, s)| q == p && !s);
            let stored = accesses.iter().any(|&(q, s)| q == p && s);
            prop_assert_eq!(summary.loaded.contains(&name), loaded, "{} loaded", name);
            prop_assert_eq!(summary.stored.contains(&name), stored, "{} stored", name);
            prop_assert_eq!(
                summary.read_only.contains(&name),
                loaded && !stored,
                "{} read-only",
                name
            );
        }
        prop_assert!(!summary.unknown_store, "all stores have provenance");
    }

    #[test]
    fn rewrite_marks_exactly_readonly_loads(spec in kernel_strategy()) {
        let (src, accesses) = spec;
        let m = parse_module(&src).unwrap();
        let rewritten = rewrite_readonly_loads(&m.kernels[0]);
        let ptx = rewritten.to_ptx();
        let ro_loads = accesses
            .iter()
            .filter(|&&(p, s)| {
                !s && !accesses.iter().any(|&(q, st)| q == p && st)
            })
            .count();
        prop_assert_eq!(ptx.matches("ld.global.ro").count(), ro_loads);
        // Rewriting is idempotent and stays parseable.
        let again = rewrite_readonly_loads(&rewritten);
        prop_assert_eq!(&again, &rewritten);
        prop_assert!(parse_module(&ptx).is_ok());
    }
}
