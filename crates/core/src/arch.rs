//! Topology and routing rules for each architecture (paper Figs. 1 & 15).

use nuba_types::mapping::DecodedAddr;
use nuba_types::{ArchKind, ChannelId, GpuConfig, ModuleId, PartitionId, SliceId, SmId};

/// Static routing helper derived from a [`GpuConfig`].
#[derive(Debug, Clone)]
pub struct Topology {
    arch: ArchKind,
    num_sms: usize,
    num_slices: usize,
    num_channels: usize,
    sms_per_partition: usize,
    slices_per_partition: usize,
    slices_per_channel: usize,
    num_modules: usize,
    partitions_per_module: usize,
}

impl Topology {
    /// Build the topology for `cfg`.
    pub fn new(cfg: &GpuConfig) -> Topology {
        let num_modules = if cfg.arch.is_mcm() {
            cfg.mcm.num_modules
        } else {
            1
        };
        Topology {
            arch: cfg.arch,
            num_sms: cfg.num_sms,
            num_slices: cfg.num_llc_slices,
            num_channels: cfg.num_channels,
            sms_per_partition: cfg.sms_per_partition(),
            slices_per_partition: cfg.slices_per_partition(),
            slices_per_channel: cfg.slices_per_channel(),
            num_modules,
            partitions_per_module: cfg.num_partitions().div_ceil(num_modules),
        }
    }

    /// The architecture being simulated.
    pub fn arch(&self) -> ArchKind {
        self.arch
    }

    /// Partition owning `sm`.
    pub fn partition_of_sm(&self, sm: SmId) -> PartitionId {
        PartitionId(sm.0 / self.sms_per_partition)
    }

    /// Partition owning `slice`.
    pub fn partition_of_slice(&self, slice: SliceId) -> PartitionId {
        PartitionId(slice.0 / self.slices_per_partition)
    }

    /// The memory channel co-located with `slice` (its point-to-point
    /// memory-controller link in every architecture).
    pub fn channel_of_slice(&self, slice: SliceId) -> ChannelId {
        ChannelId(slice.0 / self.slices_per_channel)
    }

    /// Module owning a partition (MCM only; module 0 otherwise).
    pub fn module_of_partition(&self, p: PartitionId) -> ModuleId {
        ModuleId(p.0 / self.partitions_per_module)
    }

    /// Module owning an SM.
    pub fn module_of_sm(&self, sm: SmId) -> ModuleId {
        self.module_of_partition(self.partition_of_sm(sm))
    }

    /// Module owning a slice.
    pub fn module_of_slice(&self, s: SliceId) -> ModuleId {
        self.module_of_partition(self.partition_of_slice(s))
    }

    /// Number of modules (1 for monolithic GPUs).
    pub fn num_modules(&self) -> usize {
        self.num_modules
    }

    /// Whether `d`'s home memory is in `sm`'s partition (the NUBA
    /// local/remote distinction).
    pub fn is_local(&self, sm: SmId, d: &DecodedAddr) -> bool {
        d.home_partition == self.partition_of_sm(sm)
    }

    /// The slice an L1 miss from `sm` is *sent to* first.
    ///
    /// - Memory-side UBA / MCM-UBA: the address-homed slice, over the
    ///   crossbar.
    /// - SM-side UBA: a slice in the SM's LLC partition, selected by the
    ///   address (slices cache any channel's data).
    /// - NUBA / MCM-NUBA: a slice in the SM's own partition, over the
    ///   local point-to-point link (the slice forwards remote requests,
    ///   Fig. 5 ②).
    pub fn first_hop_slice(&self, sm: SmId, d: &DecodedAddr) -> SliceId {
        match self.arch {
            ArchKind::MemSideUba | ArchKind::McmUba => d.home_slice,
            ArchKind::SmSideUba => {
                let half_slices = self.num_slices / 2;
                let half = sm.0 / (self.num_sms / 2);
                SliceId(half * half_slices + d.home_slice.0 % half_slices)
            }
            ArchKind::Nuba | ArchKind::McmNuba => {
                let part = self.partition_of_sm(sm);
                SliceId(
                    part.0 * self.slices_per_partition + d.home_slice.0 % self.slices_per_partition,
                )
            }
        }
    }

    /// For NUBA: the slice in `sm`'s partition that holds replicas of
    /// (and forwards requests for) `d`'s line — identical to the first
    /// hop by construction.
    pub fn local_slice(&self, sm: SmId, d: &DecodedAddr) -> SliceId {
        nuba_types::invariant!("arch_local_slice_nuba_only", self.arch.is_nuba());
        self.first_hop_slice(sm, d)
    }

    /// SM-side UBA: whether channel `ch` sits in the other LLC half than
    /// `slice` (the access must cross the inter-partition link).
    pub fn crosses_half(&self, slice: SliceId, ch: ChannelId) -> bool {
        nuba_types::invariant!(
            "arch_crosses_half_smside_only",
            self.arch == ArchKind::SmSideUba,
            "{:?}",
            self.arch
        );
        let slice_half = slice.0 / (self.num_slices / 2);
        let ch_half = ch.0 / (self.num_channels / 2);
        slice_half != ch_half
    }

    /// Resource counts: (SMs, slices, channels).
    pub fn counts(&self) -> (usize, usize, usize) {
        (self.num_sms, self.num_slices, self.num_channels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuba_types::mapping::AddressMapping;
    use nuba_types::{ChannelId, GpuConfig};

    fn topo(arch: ArchKind) -> (Topology, AddressMapping) {
        let cfg = if arch.is_mcm() {
            GpuConfig::paper_mcm(arch)
        } else {
            GpuConfig::paper_baseline(arch)
        };
        (Topology::new(&cfg), AddressMapping::new(&cfg))
    }

    #[test]
    fn memside_routes_to_home_slice() {
        let (t, m) = topo(ArchKind::MemSideUba);
        let pa = m.compose(ChannelId(9), 3, 0);
        let d = m.decode(pa);
        assert_eq!(t.first_hop_slice(SmId(0), &d), d.home_slice);
        assert_eq!(t.first_hop_slice(SmId(63), &d), d.home_slice);
    }

    #[test]
    fn smside_routes_within_own_half() {
        let (t, m) = topo(ArchKind::SmSideUba);
        let pa = m.compose(ChannelId(31), 3, 0); // homed in the top half
        let d = m.decode(pa);
        let s_low = t.first_hop_slice(SmId(0), &d);
        let s_high = t.first_hop_slice(SmId(63), &d);
        assert!(s_low.0 < 32, "SM0 must use half 0, got {s_low}");
        assert!(s_high.0 >= 32, "SM63 must use half 1, got {s_high}");
        // Cross-half detection: channel 31 is in half 1.
        assert!(t.crosses_half(s_low, d.channel));
        assert!(!t.crosses_half(s_high, d.channel));
    }

    #[test]
    fn nuba_first_hop_is_own_partition() {
        let (t, m) = topo(ArchKind::Nuba);
        for sm in [0usize, 1, 17, 63] {
            let pa = m.compose(ChannelId(5), 3, 0);
            let d = m.decode(pa);
            let s = t.first_hop_slice(SmId(sm), &d);
            assert_eq!(t.partition_of_slice(s), t.partition_of_sm(SmId(sm)));
        }
    }

    #[test]
    fn nuba_locality_matches_channel() {
        let (t, m) = topo(ArchKind::Nuba);
        // SM 10 is in partition 5 = channel 5.
        let local = m.decode(m.compose(ChannelId(5), 0, 0));
        let remote = m.decode(m.compose(ChannelId(6), 0, 0));
        assert!(t.is_local(SmId(10), &local));
        assert!(!t.is_local(SmId(10), &remote));
    }

    #[test]
    fn slice_channel_colocation() {
        let (t, _) = topo(ArchKind::Nuba);
        assert_eq!(t.channel_of_slice(SliceId(0)), ChannelId(0));
        assert_eq!(t.channel_of_slice(SliceId(1)), ChannelId(0));
        assert_eq!(t.channel_of_slice(SliceId(63)), ChannelId(31));
    }

    #[test]
    fn mcm_module_assignment() {
        let (t, _) = topo(ArchKind::McmNuba);
        assert_eq!(t.num_modules(), 4);
        assert_eq!(t.module_of_sm(SmId(0)), ModuleId(0));
        assert_eq!(t.module_of_sm(SmId(127)), ModuleId(3));
        assert_eq!(t.module_of_slice(SliceId(0)), ModuleId(0));
        assert_eq!(t.module_of_slice(SliceId(127)), ModuleId(3));
    }

    #[test]
    fn monolithic_has_one_module() {
        let (t, _) = topo(ArchKind::Nuba);
        assert_eq!(t.num_modules(), 1);
        assert_eq!(t.module_of_sm(SmId(63)), ModuleId(0));
    }
}
