//! GPU energy accounting (GPUWattch substitute, see DESIGN.md).
//!
//! Per-event dynamic energies plus static power, with the NoC modelled
//! separately by [`nuba_noc::NocPowerModel`] so Fig. 10 and Fig. 13 can
//! contrast NoC power against rest-of-GPU power. Absolute joules are
//! calibration constants; experiments use ratios.

use nuba_noc::NocPowerModel;

/// Per-event energies in picojoules and static power in watts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Energy per executed warp instruction (compute + pipeline).
    pub pj_per_warp_op: f64,
    /// Energy per L1 access.
    pub pj_per_l1_access: f64,
    /// Energy per LLC tag+data access.
    pub pj_per_llc_access: f64,
    /// Energy per DRAM line (128 B) transfer.
    pub pj_per_dram_access: f64,
    /// Energy per byte over a NUBA local point-to-point link.
    pub pj_per_local_link_byte: f64,
    /// Static power of everything except the NoC, in watts.
    pub static_watts: f64,
    /// SM clock in Hz (converts cycles to seconds).
    pub clock_hz: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            pj_per_warp_op: 120.0,
            pj_per_l1_access: 30.0,
            pj_per_llc_access: 70.0,
            pj_per_dram_access: 2600.0,
            pj_per_local_link_byte: 1.2,
            static_watts: 55.0,
            clock_hz: 1.4e9,
        }
    }
}

/// Dynamic-event counters accumulated during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnergyCounters {
    /// Warp instructions completed.
    pub warp_ops: u64,
    /// L1 accesses.
    pub l1_accesses: u64,
    /// LLC accesses (tag pipeline grants).
    pub llc_accesses: u64,
    /// DRAM line transfers.
    pub dram_accesses: u64,
    /// Bytes over NUBA local links.
    pub local_link_bytes: u64,
    /// Bytes over the NoC (from the crossbar stats).
    pub noc_bytes: u64,
}

/// Energy breakdown of one run, in joules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// NoC energy (dynamic + static), joules.
    pub noc_j: f64,
    /// Everything else (SMs, caches, DRAM, local links), joules.
    pub rest_j: f64,
}

impl EnergyReport {
    /// Total GPU energy.
    pub fn total_j(&self) -> f64 {
        self.noc_j + self.rest_j
    }

    /// NoC share of total energy.
    pub fn noc_fraction(&self) -> f64 {
        if self.total_j() == 0.0 {
            0.0
        } else {
            self.noc_j / self.total_j()
        }
    }
}

/// Compute the energy report for a run.
pub fn energy_report(
    params: &EnergyParams,
    counters: &EnergyCounters,
    noc_model: &NocPowerModel,
    cycles: u64,
) -> EnergyReport {
    let pj = counters.warp_ops as f64 * params.pj_per_warp_op
        + counters.l1_accesses as f64 * params.pj_per_l1_access
        + counters.llc_accesses as f64 * params.pj_per_llc_access
        + counters.dram_accesses as f64 * params.pj_per_dram_access
        + counters.local_link_bytes as f64 * params.pj_per_local_link_byte;
    let seconds = cycles as f64 / params.clock_hz;
    let rest_j = pj * 1e-12 + params.static_watts * seconds;
    let noc_j = noc_model.total_joules(counters.noc_bytes, cycles);
    EnergyReport { noc_j, rest_j }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuba_types::NocPowerParams;

    fn noc() -> NocPowerModel {
        NocPowerModel::from_aggregate(NocPowerParams::default(), 64, 1000.0, 2, 1.4e9)
    }

    #[test]
    fn zero_run_has_only_static() {
        let r = energy_report(
            &EnergyParams::default(),
            &EnergyCounters::default(),
            &noc(),
            0,
        );
        assert_eq!(r.total_j(), 0.0);
    }

    #[test]
    fn static_energy_scales_with_time() {
        let p = EnergyParams::default();
        let c = EnergyCounters::default();
        let one = energy_report(&p, &c, &noc(), 1_400_000); // 1 ms
        let two = energy_report(&p, &c, &noc(), 2_800_000);
        assert!((two.total_j() / one.total_j() - 2.0).abs() < 1e-9);
        // 1 ms at 55 W rest-static = 55 mJ.
        assert!((one.rest_j - 0.055).abs() < 1e-6);
    }

    #[test]
    fn dynamic_events_add_energy() {
        let p = EnergyParams::default();
        let mut c = EnergyCounters::default();
        let base = energy_report(&p, &c, &noc(), 1000);
        c.dram_accesses = 1_000_000;
        let more = energy_report(&p, &c, &noc(), 1000);
        assert!((more.rest_j - base.rest_j - 2600.0 * 1e6 * 1e-12).abs() < 1e-12);
        assert_eq!(more.noc_j, base.noc_j);
    }

    #[test]
    fn noc_bytes_go_to_noc_bucket() {
        let p = EnergyParams::default();
        let mut c = EnergyCounters::default();
        let base = energy_report(&p, &c, &noc(), 1000);
        c.noc_bytes = 10_000_000;
        let more = energy_report(&p, &c, &noc(), 1000);
        assert!(more.noc_j > base.noc_j);
        assert_eq!(more.rest_j, base.rest_j);
        assert!(more.noc_fraction() > base.noc_fraction());
    }
}
