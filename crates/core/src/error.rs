//! Simulation error taxonomy: configuration rejection and the
//! forward-progress watchdog's deadlock report.
//!
//! The simulator distinguishes two failure classes. *Invalid
//! configurations* are rejected up front by
//! [`GpuConfig::validate`](nuba_types::GpuConfig::validate) before any
//! component is built. *No forward progress* is detected at runtime by
//! the watchdog inside [`GpuSimulator::run`](crate::GpuSimulator::run):
//! if no memory request retires for a configured number of consecutive
//! cycles while work is still outstanding, the run aborts with a
//! [`DeadlockReport`] snapshotting where every in-flight request is
//! stuck. Everything else — workload/config mismatches, internal
//! invariant violations — stays a panic, because it indicates a bug in
//! the simulator rather than a property of the simulated machine.

use core::fmt;

use nuba_types::state::StateError;
use nuba_types::ConfigError;

use crate::telemetry::TelemetryWindow;

/// Why a simulation run could not complete.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The watchdog saw no request retire for its whole cycle budget
    /// while requests (or page-table walks) were still outstanding.
    NoForwardProgress(Box<DeadlockReport>),
    /// The configuration failed [`nuba_types::GpuConfig::validate`].
    InvalidConfig(ConfigError),
    /// A checkpoint could not be decoded or did not match the
    /// simulator it was being restored into.
    Checkpoint(StateError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoForwardProgress(r) => write!(f, "no forward progress: {r}"),
            SimError::InvalidConfig(e) => write!(f, "{e}"),
            SimError::Checkpoint(e) => write!(f, "checkpoint rejected: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> SimError {
        SimError::InvalidConfig(e)
    }
}

impl From<StateError> for SimError {
    fn from(e: StateError) -> SimError {
        SimError::Checkpoint(e)
    }
}

/// Snapshot of where the memory system was stuck when the watchdog
/// fired, built from the simulator's conservation counters and queue
/// occupancies. All counts are taken at the firing cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockReport {
    /// Cycle at which the watchdog fired.
    pub cycle: u64,
    /// The budget that elapsed without a retire.
    pub budget: u64,
    /// Requests issued by SMs since the start of the run.
    pub issued: u64,
    /// Replies delivered back to SMs.
    pub replied: u64,
    /// Requests issued but not yet replied (stuck somewhere below).
    pub outstanding: u64,
    /// Page-table walks / translations still in flight in the MMU.
    pub translations_outstanding: u64,
    /// Work items queued across all LLC slices (queues, pipes, MSHRs).
    pub slice_pending: u64,
    /// Requests resident in LLC MSHR files (subset of `slice_pending`).
    pub mshr_residents: u64,
    /// Requests queued or in flight in the memory controllers.
    pub mc_pending: u64,
    /// Packets in flight in the request crossbar.
    pub noc_req_in_flight: u64,
    /// Packets in flight in the reply crossbar.
    pub noc_reply_in_flight: u64,
    /// Items queued on NUBA local links (both directions).
    pub local_link_pending: u64,
    /// Free-form occupancy line (`GpuSimulator::debug_state`) for the
    /// counters not individually broken out above.
    pub detail: String,
    /// Flight recorder: the last `ring_windows` telemetry windows
    /// leading up to the fire, oldest first. Empty when windowed
    /// telemetry is disabled; bounded by the ring capacity regardless
    /// of run length (`TelemetryWindow` is all-integral, preserving
    /// this report's `Eq`).
    pub windows: Vec<TelemetryWindow>,
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no retire for {} cycles at cycle {} \
             (issued={} replied={} outstanding={} walks={} \
             slice_pending={} mshr_residents={} mc_pending={} \
             noc_inflight={}/{} local_pending={} flight_windows={}; {})",
            self.budget,
            self.cycle,
            self.issued,
            self.replied,
            self.outstanding,
            self.translations_outstanding,
            self.slice_pending,
            self.mshr_residents,
            self.mc_pending,
            self.noc_req_in_flight,
            self.noc_reply_in_flight,
            self.local_link_pending,
            self.windows.len(),
            self.detail,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> DeadlockReport {
        DeadlockReport {
            cycle: 30_000,
            budget: 20_000,
            issued: 100,
            replied: 90,
            outstanding: 10,
            translations_outstanding: 0,
            slice_pending: 4,
            mshr_residents: 3,
            mc_pending: 2,
            noc_req_in_flight: 1,
            noc_reply_in_flight: 0,
            local_link_pending: 6,
            detail: "outstanding=10".to_string(),
            windows: vec![TelemetryWindow {
                start_cycle: 29_000,
                end_cycle: 29_500,
                stall_downstream: 7,
                ..TelemetryWindow::default()
            }],
        }
    }

    #[test]
    fn display_carries_the_key_counters() {
        let e = SimError::NoForwardProgress(Box::new(report()));
        let s = e.to_string();
        assert!(s.contains("no forward progress"));
        assert!(s.contains("no retire for 20000 cycles"));
        assert!(s.contains("outstanding=10"));
        assert!(s.contains("mshr_residents=3"));
        assert!(s.contains("flight_windows=1"));
    }

    #[test]
    fn config_errors_convert() {
        let e: SimError = nuba_types::ConfigError("bad".into()).into();
        assert!(e.to_string().contains("invalid gpu configuration: bad"));
    }
}
