//! The full-GPU simulator: SMs, MMU, driver, LLC slices, NoC(s), local
//! links and memory controllers assembled per architecture (paper
//! Figs. 1, 4, 5, 15), stepped cycle by cycle.

use std::collections::HashMap;

use nuba_cache::CacheGeometry;
use nuba_dram::{DramRequest, HbmTiming, MemoryController};
use nuba_driver::{GpuDriver, MigrationConfig, PageAccessTracker};
use nuba_engine::{BandwidthLink, Fault, FaultPlan, FaultSchedule, LinkSite};
use nuba_noc::{CrossbarNoc, NocPowerModel};
use nuba_tlb::{TlbParams, TranslationEngine, TranslationOutcome};
use nuba_types::addr::PageNum;
use nuba_types::mapping::AddressMapping;
use nuba_types::{
    AccessKind, ArchKind, GpuConfig, LineAddr, MemReply, MemRequest, PagePolicyKind,
    ReplicationKind, ReqId, SliceId, SmId, Wire,
};
use nuba_workloads::Workload;

use crate::arch::Topology;
use crate::energy::{energy_report, EnergyCounters, EnergyParams};
use crate::error::{DeadlockReport, SimError};
use crate::llc::{LlcSlice, MemTask, Role, SliceParams};
use crate::mdr::paper_slice_bandwidths;
use crate::metrics::SimReport;
use crate::sm::{Sm, SmParams, StallReason};
use crate::telemetry::{Telemetry, WindowGauges, WindowTotals};

/// A packet crossing an MCM inter-module gateway.
#[derive(Debug, Clone, Copy)]
struct GwPkt<T> {
    src: usize,
    dest: usize,
    item: T,
}

impl<T: Wire> Wire for GwPkt<T> {
    fn wire_bytes(&self) -> u64 {
        self.item.wire_bytes()
    }
}

/// SM-side UBA cross-half memory traffic.
#[derive(Debug, Clone, Copy)]
enum HalfPkt {
    Task(SliceId, MemTask),
    Fill(SliceId, LineAddr),
}

impl Wire for HalfPkt {
    fn wire_bytes(&self) -> u64 {
        match self {
            HalfPkt::Task(_, MemTask::Fetch(_)) => 8,
            HalfPkt::Task(_, MemTask::Writeback(_)) => 136,
            HalfPkt::Fill(_, _) => 136,
        }
    }
}

struct McState {
    mc: MemoryController,
    pending_fills: HashMap<u64, (SliceId, LineAddr)>,
    next_id: u64,
}

/// Whether new simulators use event-driven time skipping. On by
/// default; `NUBA_NO_SKIP=1` restores unconditional per-cycle stepping
/// (the escape hatch for A/B-ing the two paths). Read once — the
/// environment is sampled at first simulator construction.
fn skip_by_default() -> bool {
    static NO_SKIP: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    !*NO_SKIP.get_or_init(|| std::env::var("NUBA_NO_SKIP").is_ok_and(|v| v == "1"))
}

/// The assembled GPU.
pub struct GpuSimulator {
    cfg: GpuConfig,
    topo: Topology,
    mapping: AddressMapping,
    driver: GpuDriver,
    mmu: TranslationEngine,
    sms: Vec<Sm>,
    slices: Vec<LlcSlice>,
    mcs: Vec<McState>,
    // NUBA point-to-point links (None for UBA).
    local_req: Option<Vec<BandwidthLink<MemRequest>>>,
    local_reply: Option<Vec<BandwidthLink<MemReply>>>,
    /// Per-slice hold for NoC replies waiting on a busy local link.
    inbound_reply_hold: Vec<std::collections::VecDeque<MemReply>>,
    req_noc: CrossbarNoc<MemRequest>,
    reply_noc: CrossbarNoc<MemReply>,
    // SM-side UBA cross-half memory path (to-half-0, to-half-1).
    half_links: Option<[BandwidthLink<HalfPkt>; 2]>,
    half_hold: Vec<HalfPkt>,
    // MCM gateways, one per module and direction.
    gw_req: Vec<BandwidthLink<GwPkt<MemRequest>>>,
    gw_reply: Vec<BandwidthLink<GwPkt<MemReply>>>,
    gw_req_hold: Vec<std::collections::VecDeque<GwPkt<MemRequest>>>,
    gw_reply_hold: Vec<std::collections::VecDeque<GwPkt<MemReply>>>,
    // Alternative page policies (§7.6).
    tracker: Option<PageAccessTracker>,
    // Fault injection: compiled schedule drained at the top of step().
    faults: Option<FaultSchedule>,
    // Event-driven time skipping (config, not saved state): `run`
    // jumps over provably-idle spans instead of stepping them.
    skip: bool,
    // Sampled-fidelity quiesce (config, not saved state): while paused
    // the SMs issue nothing, so in-flight work drains and the skip
    // engine can jump the idle remainder of a fast-forward gap.
    issue_paused: bool,
    // Cycles actually executed by `step()` (bookkeeping, not saved
    // state and not part of any report equality): the "detailed work"
    // measure behind the fidelity ladder's cost accounting.
    detail_steps: u64,
    // Forward-progress watchdog (None disables it).
    watchdog_budget: Option<u64>,
    last_progress_cycle: u64,
    last_progress_signal: u64,
    cycle: u64,
    next_req_id: u64,
    dram_accesses: u64,
    migration_bytes: u64,
    // Windowed sampler + lifecycle tracer (inert unless configured).
    telemetry: Telemetry,
    noc_power: NocPowerModel,
    energy_params: EnergyParams,
    // Scratch buffers (reused across cycles so the steady-state step
    // path performs no heap allocation).
    tl_done: Vec<nuba_tlb::CompletedTranslation>,
    req_scratch: Vec<MemRequest>,
    reply_scratch: Vec<MemReply>,
    mc_done: Vec<(u64, bool)>,
    gw_req_out: Vec<GwPkt<MemRequest>>,
    gw_reply_out: Vec<GwPkt<MemReply>>,
    half_out: Vec<HalfPkt>,
}

impl GpuSimulator {
    /// Assemble a GPU for `cfg` running `workload`. Configuration
    /// problems come back as [`SimError::InvalidConfig`] instead of a
    /// panic, so sweep runners can quarantine a bad matrix point.
    /// [`SimSession`](crate::SimSession) is the documented entry point;
    /// this is the constructor underneath it.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`] when
    /// [`GpuConfig::validate`] rejects the configuration.
    ///
    /// # Panics
    /// Still panics when the workload is inconsistent with the
    /// configuration (wrong SM count or page size) — that is a caller
    /// bug, not a property of the configuration under test.
    pub fn try_new(cfg: GpuConfig, workload: &Workload) -> Result<GpuSimulator, SimError> {
        cfg.validate()?;
        assert_eq!(
            workload.num_sms(),
            cfg.num_sms,
            "workload built for wrong SM count"
        );
        assert_eq!(
            workload.layout().page_bytes,
            cfg.page_bytes,
            "workload page size must match the configuration"
        );

        let topo = Topology::new(&cfg);
        let mapping = AddressMapping::new(&cfg);
        let driver = GpuDriver::new(cfg.page_policy, cfg.num_channels);
        let mmu = TranslationEngine::new(
            TlbParams {
                l1_entries: cfg.l1_tlb_entries,
                l1_ways: 8,
                l2_entries: cfg.l2_tlb_entries,
                l2_ways: cfg.l2_tlb_ways,
                l2_latency: cfg.l2_tlb_latency,
                l2_ports: 2,
                walkers: cfg.page_walkers,
                walk_latency: cfg.walk_latency,
                fault_latency: cfg.page_fault_latency,
            },
            cfg.num_sms,
        );

        let active_warps = cfg.sim_active_warps.min(cfg.warps_per_sm).max(1);
        let sm_params = SmParams {
            warps: active_warps,
            warp_mlp: 8,
            max_outstanding: cfg.sm_max_outstanding,
            l1_geometry: CacheGeometry::from_capacity(cfg.l1_bytes, cfg.l1_ways),
            l1_mshrs: cfg.l1_mshrs,
            issue_width: 2,
        };
        let sms: Vec<Sm> = (0..cfg.num_sms)
            .map(|i| {
                let streams = (0..active_warps)
                    .map(|w| workload.stream(SmId(i), nuba_types::WarpId(w)))
                    .collect();
                Sm::new(SmId(i), sm_params, streams)
            })
            .collect();

        let slice_geo = CacheGeometry::new(cfg.llc_slice_sets(), cfg.llc_ways);
        let slice_params = SliceParams {
            geometry: slice_geo,
            mshrs: cfg.llc_mshrs,
            latency: cfg.llc_latency,
            out_bytes_per_cycle: cfg.llc_bytes_per_cycle,
            queue_capacity: 16,
            sample_sets: cfg.mdr_sample_sets,
        };
        let mdr_bw = paper_slice_bandwidths(cfg.noc_port_bytes_per_cycle());
        let slices: Vec<LlcSlice> = (0..cfg.num_llc_slices)
            .map(|i| {
                let s = SliceId(i);
                let mdr = if cfg.arch.is_nuba() && cfg.replication == ReplicationKind::Mdr {
                    Some((mdr_bw, cfg.mdr_epoch_cycles, cfg.mdr_eval_cycles))
                } else {
                    None
                };
                let full = cfg.arch.is_nuba() && cfg.replication == ReplicationKind::Full;
                LlcSlice::new(s, topo.partition_of_slice(s), slice_params, mdr, full)
            })
            .collect();

        let mem_burst_cycles = 128 / cfg.dram_burst_bytes.max(1);
        let hbm = if cfg.dram_refresh {
            HbmTiming::with_refresh()
        } else {
            HbmTiming::paper()
        };
        let mcs: Vec<McState> = (0..cfg.num_channels)
            .map(|_| McState {
                mc: MemoryController::new(
                    hbm,
                    cfg.banks_per_channel,
                    cfg.mc_queue_entries,
                    mem_burst_cycles.max(1),
                ),
                pending_fills: HashMap::new(),
                next_id: 0,
            })
            .collect();

        let is_nuba = cfg.arch.is_nuba();
        let (req_in, req_out, rep_in, rep_out) = if is_nuba {
            (
                cfg.num_llc_slices,
                cfg.num_llc_slices,
                cfg.num_llc_slices,
                cfg.num_llc_slices,
            )
        } else {
            (
                cfg.num_sms,
                cfg.num_llc_slices,
                cfg.num_llc_slices,
                cfg.num_sms,
            )
        };
        let port_bw = cfg.noc_port_bytes_per_cycle();
        let req_noc = CrossbarNoc::new(req_in, req_out, port_bw, cfg.noc_stage_latency, 8);
        let reply_noc = CrossbarNoc::new(rep_in, rep_out, port_bw, cfg.noc_stage_latency, 8);

        let (local_req, local_reply) = if is_nuba {
            let lb = cfg.local_link_bytes_per_cycle as f64;
            (
                Some(
                    (0..cfg.num_sms)
                        .map(|_| BandwidthLink::new(lb, 2, 8))
                        .collect(),
                ),
                Some(
                    (0..cfg.num_sms)
                        .map(|_| BandwidthLink::new(lb, 2, 8))
                        .collect(),
                ),
            )
        } else {
            (None, None)
        };

        let half_links = if cfg.arch == ArchKind::SmSideUba {
            // The A100-style halves share a wide internal fabric: give
            // the cross-half memory path memory-class bandwidth and a
            // short hop so SM-side UBA tracks the memory-side baseline
            // (the paper reports them within ~1%).
            Some([
                BandwidthLink::new(1024.0, 10, 64),
                BandwidthLink::new(1024.0, 10, 64),
            ])
        } else {
            None
        };

        let modules = topo.num_modules();
        let gw_bw = cfg.mcm.inter_module_bytes_per_cycle;
        let (gw_req, gw_reply) = if modules > 1 {
            (
                (0..modules)
                    .map(|_| BandwidthLink::new(gw_bw, 32, 32))
                    .collect(),
                (0..modules)
                    .map(|_| BandwidthLink::new(gw_bw, 32, 32))
                    .collect(),
            )
        } else {
            (Vec::new(), Vec::new())
        };

        let tracker = match cfg.page_policy {
            PagePolicyKind::Migration | PagePolicyKind::PageReplication => {
                Some(PageAccessTracker::new(MigrationConfig::default()))
            }
            _ => None,
        };

        let noc_power = NocPowerModel::from_aggregate(
            cfg.noc_power,
            cfg.num_llc_slices,
            cfg.noc_total_bytes_per_cycle,
            2,
            1.4e9,
        );

        Ok(GpuSimulator {
            topo,
            mapping,
            driver,
            mmu,
            sms,
            // Holds at most one back-pressured reply per drain attempt;
            // pre-sized so the push never allocates mid-simulation.
            inbound_reply_hold: (0..cfg.num_llc_slices)
                .map(|_| std::collections::VecDeque::with_capacity(8))
                .collect(),
            slices,
            mcs,
            local_req,
            local_reply,
            req_noc,
            reply_noc,
            half_links,
            half_hold: Vec::new(),
            gw_req,
            gw_reply,
            gw_req_hold: (0..modules)
                .map(|_| std::collections::VecDeque::new())
                .collect(),
            gw_reply_hold: (0..modules)
                .map(|_| std::collections::VecDeque::new())
                .collect(),
            tracker,
            faults: None,
            skip: skip_by_default(),
            issue_paused: false,
            detail_steps: 0,
            watchdog_budget: cfg.watchdog_cycles,
            last_progress_cycle: 0,
            last_progress_signal: 0,
            cycle: 0,
            next_req_id: 0,
            dram_accesses: 0,
            migration_bytes: 0,
            telemetry: Telemetry::new(&cfg.telemetry),
            noc_power,
            energy_params: EnergyParams::default(),
            tl_done: Vec::new(),
            req_scratch: Vec::new(),
            reply_scratch: Vec::new(),
            mc_done: Vec::new(),
            gw_req_out: Vec::new(),
            gw_reply_out: Vec::new(),
            half_out: Vec::new(),
            cfg,
        })
    }

    /// The simulated configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// The GPU driver (page table, placement statistics).
    pub fn driver(&self) -> &GpuDriver {
        &self.driver
    }

    /// Current simulated cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Install a fault plan: its events fire at their scheduled cycles
    /// (absolute simulation cycles) as the run proceeds. Replaces any
    /// previously installed plan; edges already in the past fire on the
    /// next step. Compilation allocates here, once — draining the
    /// schedule during stepping does not.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        self.faults = if plan.is_empty() {
            None
        } else {
            Some(plan.compile())
        };
    }

    /// Override the watchdog budget from
    /// [`GpuConfig::watchdog_cycles`]: the run aborts with
    /// [`SimError::NoForwardProgress`] if no request retires for
    /// `budget` consecutive cycles while work is outstanding. `None`
    /// disables the watchdog.
    pub fn set_watchdog(&mut self, budget: Option<u64>) {
        self.watchdog_budget = budget;
    }

    /// Override the event-driven time-skipping default (on unless
    /// `NUBA_NO_SKIP=1`): with skipping enabled, [`run`](Self::run)
    /// jumps over provably-idle spans in O(1) instead of stepping them
    /// cycle by cycle. Results are byte-identical either way; this is
    /// an A/B switch, not a fidelity knob.
    pub fn set_skip(&mut self, skip: bool) {
        self.skip = skip;
    }

    /// Quiesce (or resume) SM instruction issue. While paused the
    /// machine still ticks — in-flight requests, translations and DRAM
    /// traffic drain normally — but no new work enters the pipeline, so
    /// the machine becomes provably idle and the skip engine can jump
    /// the remainder of a fast-forward gap in O(1). The sampled-fidelity
    /// engine ([`crate::sampled`]) drives this; it is not saved state
    /// and has no effect on a run that never pauses.
    pub fn set_issue_paused(&mut self, paused: bool) {
        self.issue_paused = paused;
    }

    /// Whether SM instruction issue is currently quiesced.
    pub fn issue_paused(&self) -> bool {
        self.issue_paused
    }

    /// Cycles actually executed by [`step`](Self::step) so far — the
    /// "detailed work" the fidelity ladder accounts. On a full run with
    /// time skipping this undercounts wall cycles (skipped spans are
    /// exact, not approximated, so they are still *full-fidelity*
    /// cycles); the ladder therefore charges full runs `report.cycles`
    /// and sampled runs the delta of this counter. Not saved state and
    /// not part of any report equality.
    pub fn detail_steps(&self) -> u64 {
        self.detail_steps
    }

    /// Run for `cycles` cycles and report.
    ///
    /// Uses event-driven time skipping unless disabled via
    /// [`set_skip`](Self::set_skip) or `NUBA_NO_SKIP=1`; both paths
    /// produce byte-identical results.
    ///
    /// # Errors
    /// Returns [`SimError::NoForwardProgress`] if the watchdog fires —
    /// no request retired for the configured budget while requests or
    /// translations were still in flight. The simulator is left at the
    /// firing cycle, so `debug_state` and the queues can be inspected.
    pub fn run(&mut self, cycles: u64) -> Result<SimReport, SimError> {
        self.advance(cycles)?;
        Ok(self.report())
    }

    /// Run for `cycles` cycles with unconditional per-cycle stepping,
    /// regardless of the skip setting.
    ///
    /// # Errors
    /// Same as [`run`](Self::run).
    pub fn run_stepping(&mut self, cycles: u64) -> Result<SimReport, SimError> {
        self.advance_stepping(cycles)?;
        Ok(self.report())
    }

    /// Run for `cycles` cycles with event-driven time skipping,
    /// regardless of the skip setting.
    ///
    /// # Errors
    /// Same as [`run`](Self::run).
    pub fn run_skipping(&mut self, cycles: u64) -> Result<SimReport, SimError> {
        self.advance_skipping(cycles)?;
        Ok(self.report())
    }

    /// Advance `cycles` cycles without building a report (the
    /// allocation-free core of [`run`](Self::run)); honors the skip
    /// setting.
    ///
    /// # Errors
    /// Same as [`run`](Self::run).
    pub fn advance(&mut self, cycles: u64) -> Result<(), SimError> {
        if self.skip {
            self.advance_skipping(cycles)
        } else {
            self.advance_stepping(cycles)
        }
    }

    fn advance_stepping(&mut self, cycles: u64) -> Result<(), SimError> {
        for _ in 0..cycles {
            self.step();
            self.check_forward_progress()?;
        }
        Ok(())
    }

    /// The time-skipping run loop: step through busy cycles, jump over
    /// idle spans. A cycle is *busy* when any component reports an
    /// event due now ([`next_component_event`](Self::next_component_event)),
    /// a fault edge is due, or a kernel-boundary flush lands on it;
    /// otherwise every tick in the span up to the earliest future
    /// obligation is a byte-exact no-op (the [`nuba_engine::NextEvent`]
    /// contract), so the clock can move there directly. Virtual-time
    /// side effects that per-cycle stepping would have produced inside
    /// the span — telemetry window flushes, watchdog checks, round-robin
    /// pointer rotation, warp-scan bookkeeping — are replayed exactly
    /// before or at the landing cycle.
    fn advance_skipping(&mut self, cycles: u64) -> Result<(), SimError> {
        // Poll backoff: on a busy machine the jump-decision scan below
        // costs a few percent per cycle and never finds a jump. After a
        // busy cycle, step without polling for a geometrically growing
        // streak (capped); a successful jump resets it. Stepping is
        // always exact, so this trades at most `POLL_CAP` late cycles
        // per idle-span entry — noise against multi-hundred-cycle
        // memory round-trips — for near-zero overhead while busy.
        const POLL_CAP: u64 = 32;
        let mut poll_in: u64 = 0;
        let mut streak: u64 = 1;
        let end = self.cycle + cycles;
        while self.cycle < end {
            if poll_in > 0 {
                poll_in -= 1;
                self.step();
                self.check_forward_progress()?;
                continue;
            }
            let now = self.cycle;
            let component = self.next_component_event(now);
            let fault_edge = self.faults.as_ref().and_then(|s| s.next_edge_cycle());
            let kernel_flush_due = self
                .cfg
                .kernel_boundary_cycles
                .is_some_and(|k| now > 0 && now.is_multiple_of(k));
            if component == Some(now) || fault_edge.is_some_and(|t| t <= now) || kernel_flush_due {
                self.step();
                self.check_forward_progress()?;
                poll_in = streak;
                streak = (streak * 2).min(POLL_CAP);
                continue;
            }
            streak = 1;

            // Idle at `now`: jump to the earliest future obligation.
            let mut target = end;
            if let Some(e) = component {
                target = target.min(e);
            }
            if let Some(t) = fault_edge {
                target = target.min(t);
            }
            if let Some(k) = self.cfg.kernel_boundary_cycles {
                target = target.min((now / k + 1) * k);
            }
            let mut stalled = false;
            if let Some(budget) = self.watchdog_budget {
                // Reproduce the per-cycle watchdog across the jump. The
                // stepped loop checks after every step; nothing retires
                // during a skipped span, so those checks are pure —
                // except the first one, which would latch a signal
                // change from the step we are not taking (at cycle
                // now + 1), and the firing one at `lpc + budget`.
                let signal = self.progress_signal();
                if signal != self.last_progress_signal {
                    self.last_progress_signal = signal;
                    self.last_progress_cycle = now + 1;
                }
                let (_, _, outstanding) = self.request_balance();
                stalled = outstanding > 0 || self.mmu.outstanding() > 0;
                if stalled {
                    // Stalled, not idle: cap the jump where the stepped
                    // loop would have fired, and raise the identical
                    // report there. (Truly idle spans re-arm the
                    // watchdog every check, which collapses to one
                    // re-arm at the landing cycle.)
                    target = target.min(self.last_progress_cycle + budget);
                }
            }
            if target <= now {
                // Degenerate (e.g. the watchdog budget is already
                // exhausted when skipping starts): take a real step so
                // errors fire exactly as under stepping.
                self.step();
                self.check_forward_progress()?;
                continue;
            }

            // Flush every telemetry window boundary the jump crosses,
            // ascending — the stepped loop flushes the window ending at
            // `c + 1` after cycle `c`, i.e. boundaries in (now, target].
            if let Some(w) = self.telemetry.window_stride() {
                let mut b = (now / w + 1) * w;
                while b <= target {
                    self.flush_telemetry_window(b);
                    b += w;
                }
            }

            // Catch up per-cycle bookkeeping that advances even on idle
            // cycles, then move the clock.
            let delta = target - now;
            self.req_noc.skip_idle(delta);
            self.reply_noc.skip_idle(delta);
            for sm in &mut self.sms {
                sm.skip_idle();
            }
            self.cycle = target;
            // The watchdog checks the stepped loop would have run over
            // the span, collapsed (nothing retires mid-jump, so the
            // signal and outstanding counts computed above still hold
            // at `target`).
            match self.watchdog_budget {
                Some(budget) if stalled && target - self.last_progress_cycle >= budget => {
                    return Err(SimError::NoForwardProgress(Box::new(
                        self.deadlock_report(budget),
                    )));
                }
                Some(_) if !stalled => self.last_progress_cycle = target,
                _ => {}
            }
        }
        Ok(())
    }

    /// Earliest cycle ≥ `now` at which any component needs a real tick
    /// (the [`nuba_engine::NextEvent`] contract aggregated over the
    /// whole machine). `None` means every queue, pipe, link, walker and
    /// bank is drained.
    fn next_component_event(&self, now: u64) -> Option<u64> {
        use nuba_engine::{earliest, NextEvent};
        // Held packets are retried every cycle until they drain.
        if !self.half_hold.is_empty()
            || self.inbound_reply_hold.iter().any(|q| !q.is_empty())
            || self.gw_req_hold.iter().any(|q| !q.is_empty())
            || self.gw_reply_hold.iter().any(|q| !q.is_empty())
        {
            return Some(now);
        }
        let mut next = self.mmu.next_event_cycle(now);
        if next == Some(now) {
            return next;
        }
        // With issue quiesced, a Ready or compute-complete warp is not
        // an event — it cannot issue — so the SM scan would pin the
        // machine "busy" forever and defeat fast-forward jumps. Warp
        // wake-ups are replayed when issue resumes.
        if !self.issue_paused {
            for sm in &self.sms {
                next = earliest(next, sm.next_event_cycle(now));
                if next == Some(now) {
                    return next;
                }
            }
        }
        for s in &self.slices {
            next = earliest(next, s.next_event_cycle(now));
            if next == Some(now) {
                return next;
            }
        }
        next = earliest(next, self.req_noc.next_event_cycle(now));
        if next == Some(now) {
            return next;
        }
        next = earliest(next, self.reply_noc.next_event_cycle(now));
        if next == Some(now) {
            return next;
        }
        if let Some(links) = &self.local_req {
            for l in links {
                next = earliest(next, l.next_event_cycle(now));
            }
        }
        if let Some(links) = &self.local_reply {
            for l in links {
                next = earliest(next, l.next_event_cycle(now));
            }
        }
        if let Some(links) = &self.half_links {
            for l in links {
                next = earliest(next, l.next_event_cycle(now));
            }
        }
        for l in self.gw_req.iter() {
            next = earliest(next, l.next_event_cycle(now));
        }
        for l in self.gw_reply.iter() {
            next = earliest(next, l.next_event_cycle(now));
        }
        if next == Some(now) {
            return next;
        }
        // Memory controllers run on the divided clock: their events are
        // in memory cycles, and a controller ticks at GPU cycle `c` when
        // `c % divider == 0`. The first eligible memory cycle at or
        // after `now` is `ceil(now / divider)`.
        let div = self.cfg.dram_clock_divider;
        let mem_now = now.div_ceil(div);
        for m in &self.mcs {
            if let Some(e) = m.mc.next_event_cycle(mem_now) {
                next = earliest(next, Some((e * div).max(now)));
                if next == Some(now) {
                    return next;
                }
            }
        }
        next
    }

    /// Retires observed so far: replies delivered to SMs. Deliberately
    /// *excludes* TLB activity — a machine whose memory pipeline is dead
    /// can keep completing page walks forever (warps advance on compute
    /// and L1 hits, touching fresh pages past the L2 TLB's reach), and
    /// that must not mask the deadlock. Translation-only phases with no
    /// memory request in flight are instead exempted by the idle check
    /// in `check_forward_progress`.
    fn progress_signal(&self) -> u64 {
        self.sms
            .iter()
            .map(|s| s.stats.local_replies + s.stats.remote_replies)
            .sum()
    }

    fn check_forward_progress(&mut self) -> Result<(), SimError> {
        let Some(budget) = self.watchdog_budget else {
            return Ok(());
        };
        let signal = self.progress_signal();
        if signal != self.last_progress_signal {
            self.last_progress_signal = signal;
            self.last_progress_cycle = self.cycle;
            return Ok(());
        }
        // Stalled or idle? Only outstanding work makes it a deadlock.
        let (_, _, outstanding) = self.request_balance();
        if outstanding == 0 && self.mmu.outstanding() == 0 {
            self.last_progress_cycle = self.cycle;
            return Ok(());
        }
        if self.cycle - self.last_progress_cycle >= budget {
            return Err(SimError::NoForwardProgress(Box::new(
                self.deadlock_report(budget),
            )));
        }
        Ok(())
    }

    /// Snapshot the stuck machine for [`SimError::NoForwardProgress`].
    /// Only called on the error path, where allocation is fine.
    fn deadlock_report(&self, budget: u64) -> DeadlockReport {
        let (issued, replied, outstanding) = self.request_balance();
        let mut local_link_pending = 0u64;
        if let Some(links) = &self.local_req {
            local_link_pending += links.iter().map(|l| l.pending() as u64).sum::<u64>();
        }
        if let Some(links) = &self.local_reply {
            local_link_pending += links.iter().map(|l| l.pending() as u64).sum::<u64>();
        }
        DeadlockReport {
            cycle: self.cycle,
            budget,
            issued,
            replied,
            outstanding,
            translations_outstanding: self.mmu.outstanding() as u64,
            slice_pending: self
                .slices
                .iter()
                .map(|s| s.pending_work() as u64)
                .sum::<u64>(),
            mshr_residents: self
                .slices
                .iter()
                .map(|s| s.mshr_residents() as u64)
                .sum::<u64>(),
            mc_pending: self.mcs.iter().map(|m| m.mc.pending() as u64).sum::<u64>(),
            noc_req_in_flight: self.req_noc.in_flight() as u64,
            noc_reply_in_flight: self.reply_noc.in_flight() as u64,
            local_link_pending,
            detail: self.debug_state(),
            windows: self.telemetry.windows_vec(),
        }
    }

    /// Functional warm-up: replay `accesses_per_warp` memory accesses
    /// per warp (round-robin across SMs, approximating concurrent
    /// execution) so first-touch page faults — and the driver's
    /// placement decisions — happen before the timed window, as they
    /// would have in the paper's billion-instruction runs. No timing
    /// state is touched; only the page table and allocation counters
    /// warm up.
    pub fn warm(&mut self, workload: &Workload, accesses_per_warp: usize) {
        let active_warps = self.cfg.sim_active_warps.min(self.cfg.warps_per_sm).max(1);
        // Warp-major order: consecutive faults come from *different* SMs,
        // as they would under concurrent execution — burst-faulting one
        // SM's warps back-to-back would make LAB's least-first fallback
        // spray pages that are really private.
        let mut streams: Vec<nuba_workloads::WarpStream> = Vec::new();
        for w in 0..active_warps {
            for sm in 0..self.cfg.num_sms {
                streams.push(workload.stream(SmId(sm), nuba_types::WarpId(w)));
            }
        }
        let page_bytes = self.cfg.page_bytes;
        let num_sms = self.cfg.num_sms;
        for round in 0..accesses_per_warp {
            for (k, stream) in streams.iter_mut().enumerate() {
                let sm = SmId(k % num_sms);
                // CTAs launch in waves: low-numbered SMs start a little
                // earlier. This is what lets first-touch concentrate hot
                // shared pages on the earliest sharer's channel - the
                // pathology LAB exists to fix (paper Fig. 6d/e).
                if round < sm.0 / 2 {
                    continue;
                }
                // Skip compute blocks; take the next memory access.
                let access = loop {
                    match stream.next_op() {
                        nuba_workloads::WarpOp::Mem(a) => break a,
                        nuba_workloads::WarpOp::Compute(_) => continue,
                    }
                };
                let vpage = access.vaddr.page(page_bytes);
                if !self.driver.table().is_mapped(vpage) {
                    let part = self.topo.partition_of_sm(sm);
                    self.driver.handle_fault(vpage, part, sm);
                }
            }
        }
    }

    /// SMARTS-style functional fast-forward: consume `ops` warp
    /// operations across the machine with zero timing, touching the
    /// architectural state a detailed run would have warmed — the page
    /// table (first-touch faults and driver placement), the page access
    /// counters behind the LAB / migration / replication policies, L1
    /// and LLC tag arrays, replica installs, and the MDR profiler.
    /// Queues, MSHRs, links, statistics, and the clock are untouched:
    /// no cycles pass and nothing is counted. The sampled runner calls
    /// this through fast-forwarded gaps so measurement bursts observe
    /// steady-state cache and placement behaviour instead of
    /// re-measuring the cold-start ramp.
    pub fn advance_functional(&mut self, ops: u64) {
        let page_bytes = self.cfg.page_bytes;
        let n_parts = self.cfg.num_partitions();
        let n_sms = self.sms.len();
        let active_warps = self.cfg.sim_active_warps.min(self.cfg.warps_per_sm).max(1);
        let now = self.cycle;
        let slots = (active_warps * n_sms) as u64;
        let mut left = ops;
        let mut round: u64 = 0;
        while left > 0 {
            // Warp-major round-robin, matching `warm`'s interleaving of
            // concurrent execution — except that each slot advances at
            // a slightly different rate (between 1 and 2 ops per round,
            // Bresenham-spread). Real detailed execution desynchronizes
            // warp phases through reply-latency jitter, and overlapping
            // phases is worth ~2x throughput on streaming benchmarks;
            // a uniform walk would freeze the warps in lockstep and the
            // next measurement burst would re-measure the convoy ramp.
            for w in 0..active_warps {
                for i in 0..n_sms {
                    if left == 0 {
                        return;
                    }
                    // Fibonacci-hash the slot index so *neighbouring*
                    // warps (same link, same slice) get maximally
                    // different rates and decorrelate fastest.
                    let k =
                        ((w * n_sms + i) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % slots + 1;
                    let take = 1 + ((round + 1) * k / slots - round * k / slots);
                    for _ in 0..take.min(left) {
                        left -= 1;
                        let Some(access) = self.sms[i].warm_pop(w) else {
                            continue; // a compute block: nothing to touch
                        };
                        self.touch_functional(SmId(i), access, now, page_bytes, n_parts);
                    }
                }
            }
            round += 1;
        }
    }

    /// Touch the memory hierarchy for one functionally-executed access
    /// (see [`advance_functional`](GpuSimulator::advance_functional)),
    /// mirroring the detailed routing: L1 for non-bypass reads, then
    /// the slice-side address inspector (local home, replica, or the
    /// line's home slice).
    fn touch_functional(
        &mut self,
        sm: SmId,
        access: nuba_workloads::Access,
        now: u64,
        page_bytes: u64,
        n_parts: usize,
    ) {
        let vpage = access.vaddr.page(page_bytes);
        let part = self.topo.partition_of_sm(sm);
        if !self.driver.table().is_mapped(vpage) {
            self.driver.handle_fault(vpage, part, sm);
        }
        let Some(t) = self.driver.translate(vpage, part) else {
            return;
        };
        let paddr = self
            .mapping
            .compose(t.channel, t.frame, access.vaddr.page_offset(page_bytes));
        let d = self.mapping.decode(paddr);
        let line = paddr.line();
        let dirty = matches!(access.kind, AccessKind::Store | AccessKind::Atomic);
        if !dirty && !access.bypass_l1 && self.sms[sm.0].warm_l1_touch(line, now) {
            return; // L1 hit: nothing below the SM sees it.
        }
        let home = d.home_slice;
        if self.local_req.is_some() {
            // NUBA: the partition-local inspector sees every request.
            let slice = self.topo.local_slice(sm, &d);
            let local_home = self.topo.is_local(sm, &d);
            self.slices[slice.0].note_local_sm_request(
                line,
                local_home,
                access.kind.is_read_only(),
            );
            if local_home {
                self.slices[slice.0].warm_touch(line, dirty, false, now);
                self.note_access(vpage, sm, n_parts);
                return;
            }
            if access.kind.is_read_only() && self.slices[slice.0].replicating() {
                // Replica probe; a miss installs both the local replica
                // and the home copy, as the detailed round trip would.
                if !self.slices[slice.0].warm_touch(line, false, true, now) {
                    self.slices[home.0].warm_touch(line, false, false, now);
                }
                self.note_access(vpage, sm, n_parts);
                return;
            }
        }
        self.slices[home.0].warm_touch(line, dirty, false, now);
        self.note_access(vpage, sm, n_parts);
    }

    /// Convenience: warm up, then run the timed window.
    ///
    /// # Errors
    /// Returns [`SimError::NoForwardProgress`] if the watchdog fires
    /// during the timed window (see [`run`](GpuSimulator::run)).
    pub fn warm_and_run(
        &mut self,
        workload: &Workload,
        cycles: u64,
    ) -> Result<SimReport, SimError> {
        let per_warp = crate::session::default_warm_accesses(&self.cfg, workload);
        self.warm(workload, per_warp);
        self.run(cycles)
    }

    /// Advance one cycle.
    ///
    /// Single-stepping bypasses the watchdog (it lives in
    /// [`run`](GpuSimulator::run)); installed fault-plan edges still
    /// fire at their scheduled cycles.
    pub fn step(&mut self) {
        let c = self.cycle;

        // Fire due fault edges before any component ticks, so a fault
        // scheduled for cycle N affects cycle N. Peek before moving the
        // schedule out: the common case (no plan, or next edge in the
        // future) must not pay the take/put-back dance every cycle.
        if self
            .faults
            .as_ref()
            .is_some_and(|s| s.next_edge_cycle().is_some_and(|t| t <= c))
        {
            // The schedule is moved out and back to let the dispatch
            // borrow the components.
            let mut sched = self.faults.take().expect("peeked above");
            while let Some((fault, apply)) = sched.next_edge(c) {
                self.dispatch_fault(fault, apply);
            }
            self.faults = Some(sched);
        }

        // Kernel boundary (paper §5.3): the software coherence protocol
        // invalidates the write-through L1s, and the LLC is flushed
        // because this kernel's read-only data may be read-write in the
        // next one. Dirty lines become write-back traffic — the flush
        // overhead the paper models faithfully.
        if let Some(k) = self.cfg.kernel_boundary_cycles {
            if c > 0 && c.is_multiple_of(k) {
                for sm in &mut self.sms {
                    sm.flush_l1();
                }
                for slice in &mut self.slices {
                    slice.flush();
                }
            }
        }

        self.tick_mmu(c);
        if !self.issue_paused {
            self.issue_sms(c);
        }
        if self.cfg.arch.is_nuba() {
            self.tick_local_request_links(c);
        }
        self.drain_forwards(c);
        self.tick_gateways(c);
        self.req_noc.tick(c);
        self.deliver_noc_requests(c);
        for s in &mut self.slices {
            s.tick(c);
        }
        self.route_slice_replies(c);
        self.reply_noc.tick(c);
        self.deliver_noc_replies(c);
        if self.cfg.arch.is_nuba() {
            self.tick_local_reply_links(c);
        }
        self.tick_memory(c);

        if self.telemetry.tracing() {
            for s in &mut self.slices {
                if let Some((id, at)) = s.take_last_grant() {
                    self.telemetry.note_slice_grant(id, at);
                }
            }
        }
        if self.telemetry.window_due(c + 1) {
            self.flush_telemetry_window(c + 1);
        }

        self.detail_steps += 1;
        self.cycle += 1;
    }

    /// Snapshot the cumulative machine counters and high-water gauges,
    /// then hand them to the sampler to diff into a window. Reads and
    /// re-arms component peaks; allocates nothing.
    fn flush_telemetry_window(&mut self, end_cycle: u64) {
        let mut t = WindowTotals::default();
        for sm in &self.sms {
            t.issued_requests += sm.stats.issued_requests;
            t.retired_ops += sm.stats.completed_ops;
            t.read_replies += sm.stats.read_replies;
            t.l1_accesses += sm.stats.l1_accesses;
            t.l1_hits += sm.stats.l1_hits;
            t.stall_downstream += sm.stats.stall_downstream;
            t.stall_mshr += sm.stats.stall_mshr;
            t.stall_outstanding += sm.stats.stall_outstanding;
        }
        for s in &self.slices {
            t.llc_accesses += s.stats.accesses;
            t.llc_hits += s.stats.hits;
        }
        for m in &self.mcs {
            let st = m.mc.stats();
            t.dram_row_hits += st.row_hits;
            t.dram_row_accesses += st.row_accesses();
            t.dram_bus_busy += st.bus_busy_cycles;
        }
        t.noc_bytes = self.req_noc.stats().bytes + self.reply_noc.stats().bytes;
        if let Some(links) = &self.local_req {
            for l in links.iter() {
                t.local_link_bytes += l.bytes_transferred();
                t.local_link_busy += l.busy_cycles();
                t.local_link_rejects += l.rejects();
            }
        }
        if let Some(links) = &self.local_reply {
            for l in links.iter() {
                t.local_link_bytes += l.bytes_transferred();
                t.local_link_busy += l.busy_cycles();
                t.local_link_rejects += l.rejects();
            }
        }
        t.tlb_walks = self.mmu.stats().walks;

        let mut g = WindowGauges::default();
        for s in &mut self.slices {
            let (lmr, rmr) = s.queue_depths();
            g.lmr_queued += lmr as u64;
            g.rmr_queued += rmr as u64;
            g.slice_mshr_peak = g.slice_mshr_peak.max(s.take_mshr_high_water() as u64);
        }
        for sm in &mut self.sms {
            g.sm_mshr_peak = g.sm_mshr_peak.max(sm.take_l1_mshr_peak() as u64);
        }
        g.noc_peak_in_flight = self
            .req_noc
            .take_peak_in_flight()
            .max(self.reply_noc.take_peak_in_flight());
        g.tlb_peak_outstanding = self.mmu.take_peak_outstanding() as u64;

        self.telemetry.flush_window(end_cycle, t, g);
    }

    /// The telemetry sampler (windows and lifecycle trace records).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Apply (`apply = true`) or revert (`apply = false`) one fault.
    /// Sites absent on this architecture — local links on UBA, indices
    /// past the scaled-down component counts — are silently ignored so
    /// one plan can be replayed fairly across a comparison sweep.
    fn dispatch_fault(&mut self, fault: Fault, apply: bool) {
        match fault {
            Fault::LinkDerate { site, factor } => {
                let f = if apply { factor } else { 1.0 };
                match site {
                    LinkSite::LocalReq(i) => {
                        if let Some(l) = self.local_req.as_mut().and_then(|ls| ls.get_mut(i)) {
                            l.set_derate(f);
                        }
                    }
                    LinkSite::LocalReply(i) => {
                        if let Some(l) = self.local_reply.as_mut().and_then(|ls| ls.get_mut(i)) {
                            l.set_derate(f);
                        }
                    }
                    LinkSite::NocReqPort(p) => self.req_noc.set_port_derate(p, f),
                    LinkSite::NocReplyPort(p) => self.reply_noc.set_port_derate(p, f),
                }
            }
            Fault::DramStretch {
                channel,
                extra_cycles,
            } => {
                if let Some(m) = self.mcs.get_mut(channel) {
                    m.mc.set_fault_stretch(if apply { extra_cycles } else { 0 });
                }
            }
            Fault::SliceOffline { slice } => {
                if let Some(s) = self.slices.get_mut(slice) {
                    s.set_offline(apply);
                }
            }
            Fault::TlbWalkerStall => self.mmu.set_walker_stall(apply),
        }
    }

    fn tick_mmu(&mut self, c: u64) {
        self.mmu.tick(c, &mut self.tl_done);
        if self.tl_done.is_empty() {
            return;
        }
        // Drain via a temporary move so the buffer keeps its capacity.
        let mut done = std::mem::take(&mut self.tl_done);
        for d in done.drain(..) {
            // A merged walk reports the fault to every waiter; only the
            // first one allocates the page.
            if d.faulted && !self.driver.table().is_mapped(d.vpage) {
                let part = self.topo.partition_of_sm(d.sm);
                self.driver.handle_fault(d.vpage, part, d.sm);
            }
            self.sms[d.sm.0].complete_translation(d.vpage.0);
        }
        self.tl_done = done;
    }

    fn issue_sms(&mut self, c: u64) {
        let page_bytes = self.cfg.page_bytes;
        let n_parts = self.cfg.num_partitions();
        for i in 0..self.sms.len() {
            let sm_id = SmId(i);
            let part = self.topo.partition_of_sm(sm_id);
            self.sms[i].begin_cycle();
            for _ in 0..4 {
                // Up to issue_width memory commits per cycle; extra poll
                // iterations let L1 hits and stalls make way.
                let Some((warp, access)) = self.sms[i].poll(c) else {
                    break;
                };
                let vpage = access.vaddr.page(page_bytes);
                let mapped = self.driver.table().is_mapped(vpage);
                match self.mmu.request(sm_id, vpage, c, mapped) {
                    TranslationOutcome::Pending => {
                        self.sms[i].block_translation(warp, vpage.0);
                        continue;
                    }
                    TranslationOutcome::HitL1 => {}
                }
                let t = self
                    .driver
                    .translate(vpage, part)
                    .expect("TLB hit implies a mapped page");
                let paddr =
                    self.mapping
                        .compose(t.channel, t.frame, access.vaddr.page_offset(page_bytes));
                let d = self.mapping.decode(paddr);
                let line = paddr.line();

                let can_down = self.can_send_downstream(sm_id);
                match access.kind {
                    AccessKind::Load | AccessKind::LoadReadOnly => {
                        if !access.bypass_l1 && self.sms[i].l1_load_probe(warp, line, c) {
                            continue;
                        }
                        if self.sms[i].mshr_mergeable(line) {
                            self.sms[i].commit_load_miss(warp, line);
                            continue;
                        }
                        if self.sms[i].mshr_outstanding(line) {
                            // Fill in flight but its merge list is full.
                            self.sms[i].stall(warp, StallReason::Mshr);
                            continue;
                        }
                        if !can_down {
                            self.sms[i].stall(warp, StallReason::Downstream);
                            continue;
                        }
                        if !self.sms[i].can_issue_request() {
                            self.sms[i].stall(warp, StallReason::Outstanding);
                            continue;
                        }
                        if !self.sms[i].mshr_available() {
                            self.sms[i].stall(warp, StallReason::Mshr);
                            continue;
                        }
                        let req = self.make_request(sm_id, warp, access, paddr, c);
                        let primary = self.sms[i].commit_load_miss(warp, line);
                        nuba_types::invariant!("gpu_issued_miss_is_primary", primary);
                        self.send_request(req, &d, c);
                        self.note_access(vpage, sm_id, n_parts);
                    }
                    AccessKind::Store | AccessKind::Atomic => {
                        if !can_down {
                            self.sms[i].stall(warp, StallReason::Downstream);
                            continue;
                        }
                        if !self.sms[i].can_issue_request() {
                            self.sms[i].stall(warp, StallReason::Outstanding);
                            continue;
                        }
                        let req = self.make_request(sm_id, warp, access, paddr, c);
                        self.sms[i].commit_write(warp, access.kind);
                        self.send_request(req, &d, c);
                        self.note_access(vpage, sm_id, n_parts);
                    }
                }
            }
        }
    }

    fn note_access(&mut self, vpage: PageNum, sm: SmId, n_parts: usize) {
        let part = self.topo.partition_of_sm(sm);
        self.driver
            .table_mut()
            .record_access(vpage, sm, part, n_parts);
        if let Some(tracker) = &mut self.tracker {
            if tracker.note_access() {
                let tracker = tracker.clone();
                let events = match self.cfg.page_policy {
                    PagePolicyKind::Migration => tracker.run_migration_pass(&mut self.driver),
                    PagePolicyKind::PageReplication => {
                        tracker.run_replication_pass(&mut self.driver)
                    }
                    _ => Vec::new(),
                };
                // Each moved/copied page crosses the NoC, and its stale
                // translations are shot down page by page (Griffin-style
                // per-page invalidations, not a global flush).
                self.migration_bytes += events.len() as u64 * self.cfg.page_bytes;
                for ev in &events {
                    self.mmu.invalidate(ev.vpage);
                }
            }
        }
    }

    fn make_request(
        &mut self,
        sm: SmId,
        warp: nuba_types::WarpId,
        access: nuba_workloads::Access,
        paddr: nuba_types::PhysAddr,
        c: u64,
    ) -> MemRequest {
        self.next_req_id += 1;
        let req = MemRequest {
            id: ReqId(self.next_req_id),
            sm,
            warp,
            vaddr: access.vaddr,
            paddr,
            kind: access.kind,
            issue_cycle: c,
            wants_replica: false,
            bypass_l1: access.bypass_l1,
        };
        self.telemetry
            .maybe_sample(req.id, sm, warp, req.line(), req.kind, c);
        req
    }

    fn can_send_downstream(&self, sm: SmId) -> bool {
        match &self.local_req {
            Some(links) => links[sm.0].can_send(),
            None => {
                let port_ok = self.req_noc.can_send(sm.0);
                let gw_ok = if self.topo.num_modules() > 1 {
                    self.gw_req[self.topo.module_of_sm(sm).0].can_send()
                } else {
                    true
                };
                port_ok && gw_ok
            }
        }
    }

    fn send_request(&mut self, req: MemRequest, d: &nuba_types::DecodedAddr, c: u64) {
        match &mut self.local_req {
            Some(links) => {
                links[req.sm.0].try_send(req, c).expect("can_send checked");
            }
            None => {
                let dest = self.topo.first_hop_slice(req.sm, d);
                let src_mod = self.topo.module_of_sm(req.sm);
                if self.topo.num_modules() > 1 && self.topo.module_of_slice(dest) != src_mod {
                    self.gw_req[src_mod.0]
                        .try_send(
                            GwPkt {
                                src: req.sm.0,
                                dest: dest.0,
                                item: req,
                            },
                            c,
                        )
                        .expect("gateway capacity checked");
                } else {
                    self.req_noc
                        .try_send(req.sm.0, dest.0, req, c)
                        .expect("noc capacity checked");
                }
            }
        }
    }

    /// NUBA: requests arriving at the partition over the local links are
    /// routed by the slice-side address inspector (Fig. 5 ① / ②).
    fn tick_local_request_links(&mut self, c: u64) {
        let links = self.local_req.as_mut().expect("nuba links");
        for link in links.iter_mut() {
            if link.pending() == 0 {
                continue; // nothing queued or serializing: tick is a no-op
            }
            link.tick(c, &mut self.req_scratch);
            for req in self.req_scratch.drain(..) {
                let id = req.id;
                let d = self.mapping.decode(req.paddr);
                let slice = self.topo.local_slice(req.sm, &d);
                let local_home = self.topo.is_local(req.sm, &d);
                let s = &mut self.slices[slice.0];
                s.note_local_sm_request(req.line(), local_home, req.kind.is_read_only());
                if local_home {
                    s.ingress_local(req, Role::Home);
                    self.telemetry.note_slice_enqueue(id, c);
                } else if req.kind.is_read_only() && s.replicating() {
                    s.ingress_local(req, Role::Replica);
                    self.telemetry.note_slice_enqueue(id, c);
                } else {
                    // Forwarded to the home slice over the NoC; the
                    // enqueue is stamped on remote delivery instead.
                    s.forward_direct(req);
                }
            }
        }
    }

    /// Drain slice forward queues into the inter-partition NoC.
    fn drain_forwards(&mut self, c: u64) {
        for i in 0..self.slices.len() {
            while let Some(fwd) = self.slices[i].pop_forward() {
                let dest = self.mapping.decode(fwd.paddr).home_slice;
                let src_mod = self.topo.module_of_slice(SliceId(i));
                let cross =
                    self.topo.num_modules() > 1 && self.topo.module_of_slice(dest) != src_mod;
                let sent = if cross {
                    self.gw_req[src_mod.0]
                        .try_send(
                            GwPkt {
                                src: i,
                                dest: dest.0,
                                item: fwd,
                            },
                            c,
                        )
                        .is_ok()
                } else {
                    self.req_noc.try_send(i, dest.0, fwd, c).is_ok()
                };
                if !sent {
                    self.slices[i].unpop_forward(fwd);
                    break;
                }
            }
        }
    }

    fn tick_gateways(&mut self, c: u64) {
        if self.gw_req.is_empty() {
            return; // single-module: no gateways to tick
        }
        let mut req_out = std::mem::take(&mut self.gw_req_out);
        for gw in &mut self.gw_req {
            if gw.pending() > 0 {
                gw.tick(c, &mut req_out);
            }
        }
        for hold in self.gw_req_hold.iter_mut() {
            while let Some(p) = hold.pop_front() {
                if self.req_noc.try_send(p.src, p.dest, p.item, c).is_err() {
                    hold.push_front(p);
                    break;
                }
            }
        }
        for p in req_out.drain(..) {
            if self.req_noc.try_send(p.src, p.dest, p.item, c).is_err() {
                let m = if self.cfg.arch.is_nuba() {
                    self.topo.module_of_slice(SliceId(p.src)).0
                } else {
                    self.topo.module_of_sm(SmId(p.src)).0
                };
                self.gw_req_hold[m].push_back(p);
            }
        }
        self.gw_req_out = req_out;
        let mut rep_out = std::mem::take(&mut self.gw_reply_out);
        for gw in &mut self.gw_reply {
            if gw.pending() > 0 {
                gw.tick(c, &mut rep_out);
            }
        }
        for hold in self.gw_reply_hold.iter_mut() {
            while let Some(p) = hold.pop_front() {
                if self.reply_noc.try_send(p.src, p.dest, p.item, c).is_err() {
                    hold.push_front(p);
                    break;
                }
            }
        }
        for p in rep_out.drain(..) {
            if self.reply_noc.try_send(p.src, p.dest, p.item, c).is_err() {
                let m = self.topo.module_of_slice(SliceId(p.src)).0;
                self.gw_reply_hold[m].push_back(p);
            }
        }
        self.gw_reply_out = rep_out;
    }

    fn deliver_noc_requests(&mut self, c: u64) {
        let nuba = self.cfg.arch.is_nuba();
        for port in 0..self.req_noc.num_outputs() {
            while let Some(req) = self.req_noc.pop_delivered(port) {
                let id = req.id;
                let s = &mut self.slices[port];
                if nuba {
                    s.note_remote_home_request(req.line());
                    s.ingress_remote(req);
                } else {
                    s.ingress_local(req, Role::Home);
                }
                self.telemetry.note_slice_enqueue(id, c);
            }
        }
    }

    fn route_slice_replies(&mut self, c: u64) {
        let nuba = self.cfg.arch.is_nuba();
        for i in 0..self.slices.len() {
            while let Some(reply) = self.slices[i].pop_reply() {
                let routed = if nuba {
                    let dest_part = self.topo.partition_of_sm(reply.sm);
                    if dest_part == self.slices[i].partition() {
                        let links = self.local_reply.as_mut().expect("nuba links");
                        links[reply.sm.0].try_send(reply, c).is_ok()
                    } else {
                        let d = self.mapping.decode(reply.line.base());
                        let dest = self.topo.local_slice(reply.sm, &d);
                        self.try_reply_noc(i, dest.0, reply, c)
                    }
                } else {
                    self.try_reply_noc(i, reply.sm.0, reply, c)
                };
                if !routed {
                    self.slices[i].unpop_reply(reply);
                    break;
                }
            }
        }
    }

    fn try_reply_noc(&mut self, src_slice: usize, dest: usize, reply: MemReply, c: u64) -> bool {
        let src_mod = self.topo.module_of_slice(SliceId(src_slice));
        let dest_mod = if self.cfg.arch.is_nuba() {
            self.topo.module_of_slice(SliceId(dest))
        } else {
            self.topo.module_of_sm(SmId(dest))
        };
        if self.topo.num_modules() > 1 && src_mod != dest_mod {
            self.gw_reply[src_mod.0]
                .try_send(
                    GwPkt {
                        src: src_slice,
                        dest,
                        item: reply,
                    },
                    c,
                )
                .is_ok()
        } else {
            self.reply_noc.try_send(src_slice, dest, reply, c).is_ok()
        }
    }

    fn deliver_noc_replies(&mut self, c: u64) {
        let nuba = self.cfg.arch.is_nuba();
        for port in 0..self.reply_noc.num_outputs() {
            if nuba {
                // Drain the hold first (link back-pressure), then the NoC.
                loop {
                    let from_hold = self.inbound_reply_hold[port].pop_front();
                    let reply = match from_hold.or_else(|| self.reply_noc.pop_delivered(port)) {
                        Some(r) => r,
                        None => break,
                    };
                    if reply.replica_fill {
                        self.slices[port].fill_replica(reply, c);
                        continue;
                    }
                    let links = self.local_reply.as_mut().expect("nuba links");
                    if links[reply.sm.0].try_send(reply, c).is_err() {
                        self.inbound_reply_hold[port].push_front(reply);
                        break;
                    }
                }
            } else {
                while let Some(reply) = self.reply_noc.pop_delivered(port) {
                    let local = false; // every UBA reply crossed the NoC
                    self.telemetry.record_read_latency_of(&reply, local, c);
                    self.telemetry.note_reply(reply.id, c);
                    self.sms[port].handle_reply(reply, c, local);
                }
            }
        }
    }

    fn tick_local_reply_links(&mut self, c: u64) {
        let links = self.local_reply.as_mut().expect("nuba links");
        for link in links.iter_mut() {
            if link.pending() == 0 {
                continue; // nothing queued or serializing: tick is a no-op
            }
            link.tick(c, &mut self.reply_scratch);
            for reply in self.reply_scratch.drain(..) {
                let local = self.topo.partition_of_slice(reply.serviced_by)
                    == self.topo.partition_of_sm(reply.sm);
                self.telemetry.record_read_latency_of(&reply, local, c);
                self.telemetry.note_reply(reply.id, c);
                self.sms[reply.sm.0].handle_reply(reply, c, local);
            }
        }
    }

    fn tick_memory(&mut self, c: u64) {
        let sm_side = self.cfg.arch == ArchKind::SmSideUba;

        // Move slice DRAM tasks into controllers.
        for i in 0..self.slices.len() {
            while let Some(task) = self.slices[i].pop_mem_task() {
                let line = match task {
                    MemTask::Fetch(l) | MemTask::Writeback(l) => l,
                };
                let home_ch = self.mapping.decode(line.base()).channel;
                if sm_side && self.topo.crosses_half(SliceId(i), home_ch) {
                    let half = home_ch.0 / (self.cfg.num_channels / 2);
                    if self.half_links.as_mut().expect("sm-side")[half]
                        .try_send(HalfPkt::Task(SliceId(i), task), c)
                        .is_err()
                    {
                        self.slices[i].unpop_mem_task(task);
                        break;
                    }
                } else if !self.enqueue_dram(SliceId(i), task, c) {
                    self.slices[i].unpop_mem_task(task);
                    break;
                }
            }
        }

        // Cross-half traffic (SM-side UBA only).
        if let Some(links) = self.half_links.as_mut() {
            for l in links.iter_mut() {
                if l.pending() > 0 {
                    l.tick(c, &mut self.half_out);
                }
            }
            self.half_hold.append(&mut self.half_out);
            if !self.half_hold.is_empty() {
                // Ping-pong hold ↔ scratch so retries keep both buffers'
                // capacity across cycles.
                std::mem::swap(&mut self.half_hold, &mut self.half_out);
                for k in 0..self.half_out.len() {
                    match self.half_out[k] {
                        HalfPkt::Task(slice, task) => {
                            if !self.enqueue_dram(slice, task, c) {
                                self.half_hold.push(HalfPkt::Task(slice, task));
                            }
                        }
                        HalfPkt::Fill(slice, line) => {
                            self.slices[slice.0].fill_from_memory(line, c);
                        }
                    }
                }
                self.half_out.clear();
            }
        }

        // DRAM runs on the divided clock.
        if c.is_multiple_of(self.cfg.dram_clock_divider) {
            let mem_cycle = c / self.cfg.dram_clock_divider;
            for ch in 0..self.mcs.len() {
                self.mc_done.clear();
                self.mcs[ch].mc.tick(mem_cycle, &mut self.mc_done);
                for k in 0..self.mc_done.len() {
                    let (id, is_write) = self.mc_done[k];
                    self.dram_accesses += 1;
                    if is_write {
                        continue; // writeback completion needs no fill
                    }
                    if let Some((slice, line)) = self.mcs[ch].pending_fills.remove(&id) {
                        if sm_side && self.topo.crosses_half(slice, nuba_types::ChannelId(ch)) {
                            let half = slice.0 / (self.cfg.num_llc_slices / 2);
                            // Fills ride the cross-half link back; if it
                            // is saturated they queue in the hold.
                            if self.half_links.as_mut().expect("sm-side")[half]
                                .try_send(HalfPkt::Fill(slice, line), c)
                                .is_err()
                            {
                                self.half_hold.push(HalfPkt::Fill(slice, line));
                            }
                        } else {
                            self.slices[slice.0].fill_from_memory(line, c);
                        }
                    }
                }
            }
        }
    }

    fn enqueue_dram(&mut self, slice: SliceId, task: MemTask, c: u64) -> bool {
        let (line, is_write) = match task {
            MemTask::Fetch(l) => (l, false),
            MemTask::Writeback(l) => (l, true),
        };
        let d = self.mapping.decode(line.base());
        let ch = d.channel.0;
        let mc = &mut self.mcs[ch];
        if !mc.mc.can_accept() {
            return false;
        }
        mc.next_id += 1;
        let id = mc.next_id;
        let req = DramRequest {
            id,
            bank: d.bank,
            row: d.row,
            is_write,
        };
        let mem_cycle = c / self.cfg.dram_clock_divider;
        mc.mc
            .try_enqueue(req, mem_cycle)
            .expect("can_accept checked");
        if !is_write {
            mc.pending_fills.insert(id, (slice, line));
            self.telemetry.note_dram(line, c);
        }
        true
    }

    /// One-line occupancy snapshot for performance debugging.
    pub fn debug_state(&self) -> String {
        let outstanding: usize = self.sms.iter().map(Sm::outstanding).sum();
        let stall_down: u64 = self.sms.iter().map(|s| s.stats.stall_downstream).sum();
        let stall_mshr: u64 = self.sms.iter().map(|s| s.stats.stall_mshr).sum();
        let stall_out: u64 = self.sms.iter().map(|s| s.stats.stall_outstanding).sum();
        let slice_pending: usize = self.slices.iter().map(LlcSlice::pending_work).sum();
        let mc_pending: usize = self.mcs.iter().map(|m| m.mc.pending()).sum();
        let mut local_pend = 0usize;
        if let Some(links) = &self.local_req {
            local_pend += links.iter().map(BandwidthLink::pending).sum::<usize>();
        }
        if let Some(links) = &self.local_reply {
            local_pend += links.iter().map(BandwidthLink::pending).sum::<usize>();
        }
        format!(
            "outstanding={outstanding} stalls(down={stall_down} mshr={stall_mshr} out={stall_out}) \
             slice_pending={slice_pending} mc_pending={mc_pending} noc_inflight={}/{} local_pending={local_pend}",
            self.req_noc.in_flight(),
            self.reply_noc.in_flight(),
        )
    }

    /// Request conservation snapshot: (requests issued by SMs, replies
    /// delivered back to SMs, requests still outstanding). At any
    /// instant `issued == replied + outstanding` — the memory system
    /// neither drops nor duplicates requests.
    pub fn request_balance(&self) -> (u64, u64, u64) {
        let issued: u64 = self.sms.iter().map(|s| s.stats.issued_requests).sum();
        let replied: u64 = self
            .sms
            .iter()
            .map(|s| s.stats.local_replies + s.stats.remote_replies)
            .sum();
        let outstanding: u64 = self.sms.iter().map(|s| s.outstanding() as u64).sum();
        (issued, replied, outstanding)
    }

    /// Run the cross-component conservation checks against the named
    /// invariant registry (`nuba_types::invariant`): SM request balance,
    /// flit conservation in both NoCs, and per-slice/per-SM accounting
    /// sanity. Call at any cycle boundary; `simcheck` calls it
    /// periodically under every architecture configuration.
    pub fn check_conservation(&self) {
        let (issued, replied, outstanding) = self.request_balance();
        nuba_types::check_conserved!("gpu_requests_conserved", issued, replied + outstanding);
        self.req_noc.check_conservation();
        self.reply_noc.check_conservation();
        let (hits, accesses, replica_hits, _, _) = self.slice_totals();
        nuba_types::invariant!(
            "llc_hits_within_accesses",
            hits <= accesses,
            "{hits} hits > {accesses} accesses"
        );
        nuba_types::invariant!(
            "llc_replica_hits_within_hits",
            replica_hits <= hits,
            "{replica_hits} replica hits > {hits} hits"
        );
    }

    /// Aggregate slice-stat snapshot: (hits, accesses, replica_hits,
    /// replica_fills, forwarded).
    pub fn slice_totals(&self) -> (u64, u64, u64, u64, u64) {
        let mut t = (0, 0, 0, 0, 0);
        for s in &self.slices {
            t.0 += s.stats.hits;
            t.1 += s.stats.accesses;
            t.2 += s.stats.replica_hits;
            t.3 += s.stats.replica_fills;
            t.4 += s.stats.forwarded;
        }
        t
    }

    /// Per-resource utilization snapshot (fractions of capacity).
    pub fn utilization(&self) -> String {
        let cyc = self.cycle.max(1);
        let mem_cyc = (cyc / self.cfg.dram_clock_divider).max(1);
        let dram_busy: u64 = self.mcs.iter().map(|m| m.mc.stats().bus_busy_cycles).sum();
        let dram_util = dram_busy as f64 / (mem_cyc * self.mcs.len() as u64) as f64;
        let req_util =
            self.req_noc.stats().bytes as f64 / (self.cfg.noc_total_bytes_per_cycle * cyc as f64);
        let rep_util =
            self.reply_noc.stats().bytes as f64 / (self.cfg.noc_total_bytes_per_cycle * cyc as f64);
        let mut local_util = 0.0;
        if let Some(links) = &self.local_reply {
            let bytes: u64 = links.iter().map(BandwidthLink::bytes_transferred).sum();
            local_util = bytes as f64
                / (self.cfg.local_link_bytes_per_cycle as f64 * cyc as f64 * links.len() as f64);
        }
        let grants: u64 = self.slices.iter().map(|s| s.stats.accesses).sum();
        let grant_util = grants as f64 / (cyc * self.slices.len() as u64) as f64;
        format!(
            "dram={dram_util:.2} req_noc={req_util:.2} reply_noc={rep_util:.2} \
             local_reply={local_util:.2} slice_grants={grant_util:.2}"
        )
    }

    /// Build the report for everything simulated so far.
    pub fn report(&self) -> SimReport {
        let mut counters = EnergyCounters::default();
        let mut warp_ops = 0;
        let mut read_replies = 0;
        let mut local_misses = 0;
        let mut remote_misses = 0;
        let mut l1_hits = 0;
        let mut latency_sum = 0u64;
        let mut latency_max = 0u64;
        let mut stall_downstream = 0;
        let mut stall_mshr = 0;
        let mut stall_outstanding = 0;
        for sm in &self.sms {
            warp_ops += sm.stats.completed_ops;
            read_replies += sm.stats.read_replies;
            local_misses += sm.stats.local_replies;
            remote_misses += sm.stats.remote_replies;
            l1_hits += sm.stats.l1_hits;
            counters.l1_accesses += sm.stats.l1_accesses;
            latency_sum += sm.stats.reply_latency_sum;
            latency_max = latency_max.max(sm.stats.reply_latency_max);
            stall_downstream += sm.stats.stall_downstream;
            stall_mshr += sm.stats.stall_mshr;
            stall_outstanding += sm.stats.stall_outstanding;
        }
        let mut llc_hits = 0;
        let mut llc_accesses = 0;
        let mut replica_fills = 0;
        let mut mdr_rate = 0.0;
        for s in &self.slices {
            llc_hits += s.stats.hits;
            llc_accesses += s.stats.accesses;
            replica_fills += s.stats.replica_fills;
            mdr_rate += s.mdr_replication_rate();
        }
        mdr_rate /= self.slices.len() as f64;

        let mut noc_bytes = self.req_noc.stats().bytes + self.reply_noc.stats().bytes;
        for gw in self.gw_req.iter().map(BandwidthLink::bytes_transferred) {
            noc_bytes += gw;
        }
        for gw in self.gw_reply.iter().map(BandwidthLink::bytes_transferred) {
            noc_bytes += gw;
        }
        if let Some(links) = &self.half_links {
            noc_bytes += links.iter().map(|l| l.bytes_transferred()).sum::<u64>();
        }
        noc_bytes += self.migration_bytes;

        let mut local_link_bytes = 0;
        let mut local_link_busy_cycles = 0;
        if let Some(links) = &self.local_req {
            local_link_bytes += links.iter().map(|l| l.bytes_transferred()).sum::<u64>();
            local_link_busy_cycles += links.iter().map(|l| l.busy_cycles()).sum::<u64>();
        }
        if let Some(links) = &self.local_reply {
            local_link_bytes += links.iter().map(|l| l.bytes_transferred()).sum::<u64>();
            local_link_busy_cycles += links.iter().map(|l| l.busy_cycles()).sum::<u64>();
        }

        counters.warp_ops = warp_ops;
        counters.llc_accesses = llc_accesses;
        counters.dram_accesses = self.dram_accesses;
        counters.noc_bytes = noc_bytes;
        counters.local_link_bytes = local_link_bytes;

        let mut row_hits = 0.0;
        let mut max_load = 0u64;
        let mut total_load = 0u64;
        for m in &self.mcs {
            row_hits += m.mc.row_hit_rate();
            let load = m.mc.stats().completed;
            max_load = max_load.max(load);
            total_load += load;
        }
        row_hits /= self.mcs.len() as f64;
        let mean_load = total_load as f64 / self.mcs.len() as f64;
        let channel_imbalance = if mean_load > 0.0 {
            max_load as f64 / mean_load
        } else {
            1.0
        };

        // Bytes that crossed the crossbars proper (not gateways or
        // migration copies), expressed as serialization cycles at the
        // aggregate NoC bandwidth — commensurable with the other
        // bottleneck weights.
        let xbar_bytes = self.req_noc.stats().bytes + self.reply_noc.stats().bytes;
        let noc_serialization_cycles = if self.cfg.noc_total_bytes_per_cycle > 0.0 {
            xbar_bytes as f64 / self.cfg.noc_total_bytes_per_cycle
        } else {
            0.0
        };
        let dram_bus_busy_cycles: u64 = self.mcs.iter().map(|m| m.mc.stats().bus_busy_cycles).sum();

        let energy = energy_report(&self.energy_params, &counters, &self.noc_power, self.cycle);
        SimReport {
            cycles: self.cycle,
            warp_ops,
            read_replies,
            local_misses,
            remote_misses,
            l1_hits,
            llc_hits,
            llc_accesses,
            dram_accesses: self.dram_accesses,
            dram_row_hit_rate: row_hits,
            noc_bytes,
            local_link_bytes,
            replica_fills,
            mdr_replication_rate: mdr_rate,
            page_faults: self.mmu.stats().faults,
            final_npb: self.driver.npb(),
            channel_imbalance,
            avg_read_latency: latency_sum as f64 / read_replies.max(1) as f64,
            max_read_latency: latency_max,
            noc_watts: self.noc_power.average_watts(noc_bytes, self.cycle.max(1)),
            stall_downstream,
            stall_mshr,
            stall_outstanding,
            local_link_busy_cycles,
            noc_serialization_cycles,
            dram_bus_busy_cycles,
            energy,
            latency: crate::metrics::LatencyReport {
                tiers: *self.telemetry.tier_histograms(),
                stages: *self.telemetry.stage_histograms(),
            },
            sampled: None,
        }
    }
}

impl<T: StateValue> StateValue for GwPkt<T> {
    fn put(&self, w: &mut StateWriter) {
        self.src.put(w);
        self.dest.put(w);
        self.item.put(w);
    }

    fn get(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        Ok(GwPkt {
            src: usize::get(r)?,
            dest: usize::get(r)?,
            item: T::get(r)?,
        })
    }
}

impl StateValue for HalfPkt {
    fn put(&self, w: &mut StateWriter) {
        match self {
            HalfPkt::Task(slice, task) => {
                w.put_u8(0);
                slice.put(w);
                task.put(w);
            }
            HalfPkt::Fill(slice, line) => {
                w.put_u8(1);
                slice.put(w);
                line.put(w);
            }
        }
    }

    fn get(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        let tag = r.get_u8()?;
        match tag {
            0 => Ok(HalfPkt::Task(StateValue::get(r)?, StateValue::get(r)?)),
            1 => Ok(HalfPkt::Fill(StateValue::get(r)?, StateValue::get(r)?)),
            _ => Err(StateError::BadTag {
                what: "cross-half packet kind",
                tag,
            }),
        }
    }
}

impl SaveState for McState {
    fn save(&self, w: &mut StateWriter) {
        self.mc.save(w);
        save_map(w, &self.pending_fills);
        self.next_id.put(w);
    }

    fn restore(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.mc.restore(r)?;
        restore_map(r, &mut self.pending_fills)?;
        self.next_id = u64::get(r)?;
        Ok(())
    }
}

impl GpuSimulator {
    /// Serialize every piece of dynamic state into `w`.
    ///
    /// Configuration (`cfg`, topology, address mapping, power/energy
    /// models) and the per-cycle scratch buffers — which are drained
    /// within every [`step`](GpuSimulator::step) — are deliberately
    /// excluded: a restored simulator is rebuilt from the same
    /// configuration first and then overwritten field by field.
    pub(crate) fn save_state(&self, w: &mut StateWriter) {
        self.driver.save(w);
        self.mmu.save(w);
        save_items(w, &self.sms);
        save_items(w, &self.slices);
        save_items(w, &self.mcs);
        match &self.local_req {
            Some(links) => {
                w.put_u8(1);
                save_items(w, links);
            }
            None => w.put_u8(0),
        }
        match &self.local_reply {
            Some(links) => {
                w.put_u8(1);
                save_items(w, links);
            }
            None => w.put_u8(0),
        }
        self.inbound_reply_hold.len().put(w);
        for q in &self.inbound_reply_hold {
            q.put(w);
        }
        self.req_noc.save(w);
        self.reply_noc.save(w);
        match &self.half_links {
            Some(links) => {
                w.put_u8(1);
                links[0].save(w);
                links[1].save(w);
            }
            None => w.put_u8(0),
        }
        self.half_hold.put(w);
        save_items(w, &self.gw_req);
        save_items(w, &self.gw_reply);
        self.gw_req_hold.len().put(w);
        for q in &self.gw_req_hold {
            q.put(w);
        }
        self.gw_reply_hold.len().put(w);
        for q in &self.gw_reply_hold {
            q.put(w);
        }
        match &self.tracker {
            Some(t) => {
                w.put_u8(1);
                t.save(w);
            }
            None => w.put_u8(0),
        }
        self.faults.put(w);
        self.watchdog_budget.put(w);
        self.last_progress_cycle.put(w);
        self.last_progress_signal.put(w);
        self.cycle.put(w);
        self.next_req_id.put(w);
        self.dram_accesses.put(w);
        self.migration_bytes.put(w);
        self.telemetry.save(w);
    }

    /// Overwrite this simulator's dynamic state from `r`.
    ///
    /// `self` must have been built via [`try_new`](GpuSimulator::try_new)
    /// with the same configuration and workload the state was saved
    /// under; the session layer enforces this with config and workload
    /// hashes before calling here.
    pub(crate) fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.driver.restore(r)?;
        self.mmu.restore(r)?;
        restore_items(r, "SM array", &mut self.sms)?;
        restore_items(r, "LLC slice array", &mut self.slices)?;
        restore_items(r, "memory controller array", &mut self.mcs)?;
        match (self.local_req.as_mut(), r.get_u8()?) {
            (Some(links), 1) => restore_items(r, "local request links", links)?,
            (None, 0) => {}
            _ => return Err(StateError::Corrupt("local request link presence mismatch")),
        }
        match (self.local_reply.as_mut(), r.get_u8()?) {
            (Some(links), 1) => restore_items(r, "local reply links", links)?,
            (None, 0) => {}
            _ => return Err(StateError::Corrupt("local reply link presence mismatch")),
        }
        let holds = usize::get(r)?;
        if holds != self.inbound_reply_hold.len() {
            return Err(StateError::LengthMismatch {
                what: "inbound reply holds",
                expected: self.inbound_reply_hold.len(),
                found: holds,
            });
        }
        for q in &mut self.inbound_reply_hold {
            restore_deque(r, q)?;
        }
        self.req_noc.restore(r)?;
        self.reply_noc.restore(r)?;
        match (self.half_links.as_mut(), r.get_u8()?) {
            (Some(links), 1) => {
                links[0].restore(r)?;
                links[1].restore(r)?;
            }
            (None, 0) => {}
            _ => return Err(StateError::Corrupt("cross-half link presence mismatch")),
        }
        restore_vec(r, &mut self.half_hold)?;
        restore_items(r, "gateway request links", &mut self.gw_req)?;
        restore_items(r, "gateway reply links", &mut self.gw_reply)?;
        let holds = usize::get(r)?;
        if holds != self.gw_req_hold.len() {
            return Err(StateError::LengthMismatch {
                what: "gateway request holds",
                expected: self.gw_req_hold.len(),
                found: holds,
            });
        }
        for q in &mut self.gw_req_hold {
            restore_deque(r, q)?;
        }
        let holds = usize::get(r)?;
        if holds != self.gw_reply_hold.len() {
            return Err(StateError::LengthMismatch {
                what: "gateway reply holds",
                expected: self.gw_reply_hold.len(),
                found: holds,
            });
        }
        for q in &mut self.gw_reply_hold {
            restore_deque(r, q)?;
        }
        match (self.tracker.as_mut(), r.get_u8()?) {
            (Some(t), 1) => t.restore(r)?,
            (None, 0) => {}
            _ => return Err(StateError::Corrupt("page access tracker presence mismatch")),
        }
        self.faults = Option::get(r)?;
        self.watchdog_budget = Option::get(r)?;
        self.last_progress_cycle = u64::get(r)?;
        self.last_progress_signal = u64::get(r)?;
        self.cycle = u64::get(r)?;
        self.next_req_id = u64::get(r)?;
        self.dram_accesses = u64::get(r)?;
        self.migration_bytes = u64::get(r)?;
        self.telemetry.restore(r)?;
        // Scratch buffers are drained within every step; leave them as
        // try_new built them (empty, capacity pre-sized).
        Ok(())
    }
}

use nuba_types::state::{
    restore_deque, restore_items, restore_map, restore_vec, save_items, save_map, SaveState,
    StateError, StateReader, StateValue, StateWriter,
};
