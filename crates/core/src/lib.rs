#![warn(missing_docs)]

//! # nuba-core
//!
//! The NUBA GPU system-architecture simulator: the paper's primary
//! contribution (Non-Uniform Bandwidth Architecture with LAB page
//! allocation and Model-Driven Replication) together with the two
//! Uniform Bandwidth Architecture baselines and the MCM variants, all
//! assembled from the workspace's substrate crates.
//!
//! The central type is [`GpuSimulator`]: give it a [`GpuConfig`]
//! (architecture, resources, NoC bandwidth, page policy, replication
//! policy) and a [`Workload`], step it, and
//! read back a [`SimReport`] with the metrics every figure of the paper
//! is built from.
//!
//! ## Example
//!
//! ```
//! use nuba_core::GpuSimulator;
//! use nuba_types::{ArchKind, GpuConfig};
//! use nuba_workloads::{BenchmarkId, ScaleProfile, Workload};
//!
//! let mut cfg = GpuConfig::paper_baseline(ArchKind::Nuba);
//! cfg.num_sms = 8;
//! cfg.num_llc_slices = 8;
//! cfg.num_channels = 4;
//! cfg.warps_per_sm = 8;
//! cfg.page_fault_latency = 200; // keep the doc example short
//! let wl = Workload::build(BenchmarkId::Sgemm, ScaleProfile::fast(), 8, 1);
//! let mut gpu = GpuSimulator::new(cfg, &wl);
//! let report = gpu.run(5_000).expect("forward progress");
//! assert!(report.warp_ops > 0);
//! ```

pub mod arch;
pub mod energy;
pub mod error;
pub mod gpu;
pub mod llc;
pub mod mdr;
pub mod metrics;
pub mod sm;
pub mod telemetry;

pub use arch::Topology;
pub use energy::{energy_report, EnergyCounters, EnergyParams, EnergyReport};
pub use error::{DeadlockReport, SimError};
pub use gpu::GpuSimulator;
pub use llc::{LlcSlice, MemTask, Role, SliceParams, SliceStats};
pub use mdr::{evaluate as mdr_evaluate, MdrBandwidths, MdrController, MdrEstimate, MdrProfile};
pub use metrics::{BottleneckBreakdown, SimReport};
pub use sm::{Sm, SmParams, SmStats, StallReason};
pub use telemetry::{Telemetry, TelemetryWindow, TraceRecord, WindowGauges, WindowTotals};

// Re-exports for downstream convenience (bench harness, examples).
pub use nuba_types::{ArchKind, GpuConfig, PagePolicyKind, ReplicationKind};
pub use nuba_workloads::{BenchmarkId, ScaleProfile, Workload};
