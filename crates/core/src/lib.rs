#![warn(missing_docs)]

//! # nuba-core
//!
//! The NUBA GPU system-architecture simulator: the paper's primary
//! contribution (Non-Uniform Bandwidth Architecture with LAB page
//! allocation and Model-Driven Replication) together with the two
//! Uniform Bandwidth Architecture baselines and the MCM variants, all
//! assembled from the workspace's substrate crates.
//!
//! The documented entry point is [`SimSession`]: build it from a
//! [`GpuConfig`] (architecture, resources, NoC bandwidth, page policy,
//! replication policy) and a [`Workload`], warm it, run a timed
//! window, and read back a [`SimReport`] with the metrics every figure
//! of the paper is built from. Sessions also
//! [`checkpoint`](SimSession::checkpoint) and
//! [`resume`](SimSession::resume) —
//! see the [`session`] module for the snapshot format and guarantees.
//! [`GpuSimulator`] remains available underneath
//! ([`SimSession::gpu_mut`]) for single-stepping and fault injection.
//!
//! ## Example
//!
//! ```
//! use nuba_core::SimSession;
//! use nuba_types::{ArchKind, GpuConfig};
//! use nuba_workloads::{BenchmarkId, ScaleProfile, Workload};
//!
//! let cfg = GpuConfig::paper_baseline(ArchKind::Nuba)
//!     .with_geometry(8, 8, 4, 8)
//!     .with_page_fault_latency(200); // keep the doc example short
//! let wl = Workload::build(BenchmarkId::Sgemm, ScaleProfile::fast(), 8, 1);
//! let mut session = SimSession::builder(cfg, wl).build().expect("valid config");
//! let report = session.run_window(5_000).expect("forward progress");
//! assert!(report.warp_ops > 0);
//! ```

pub mod arch;
pub mod energy;
pub mod error;
pub mod gpu;
pub mod llc;
pub mod mdr;
pub mod metrics;
pub mod sampled;
pub mod session;
pub mod sm;
pub mod telemetry;

pub use arch::Topology;
pub use energy::{energy_report, EnergyCounters, EnergyParams, EnergyReport};
pub use error::{DeadlockReport, SimError};
pub use gpu::GpuSimulator;
pub use llc::{LlcSlice, MemTask, Role, SliceParams, SliceStats};
pub use mdr::{
    evaluate as mdr_evaluate, static_screen as mdr_static_screen, MdrBandwidths, MdrController,
    MdrEstimate, MdrProfile, ScreenBottleneck, ScreenVerdict,
};
pub use metrics::{BottleneckBreakdown, LatencyReport, SampledMeta, SimReport};
pub use sampled::{run_sampled, SamplePlan};
pub use session::{default_warm_accesses, Checkpoint, SessionBuilder, SimSession};
pub use sm::{Sm, SmParams, SmStats, StallReason};
pub use telemetry::{
    Telemetry, TelemetryWindow, TraceRecord, WindowGauges, WindowTotals, NUM_STAGES, NUM_TIERS,
    STAGE_NAMES, TIER_NAMES,
};

// Re-exports for downstream convenience (bench harness, examples).
pub use nuba_types::{ArchKind, ErrorBound, Fidelity, GpuConfig, PagePolicyKind, ReplicationKind};
pub use nuba_workloads::{BenchmarkId, ScaleProfile, Workload};
