//! The LLC slice microarchitecture (paper Fig. 5).
//!
//! Each slice owns Local and Remote Memory Request queues (LMR/RMR), a
//! round-robin arbiter granting one request per cycle to the tag+data
//! pipeline, an MSHR file, a 32 B/cycle data-streaming output gate, and
//! — under NUBA — the MDR controller with its shadow-tag set sampler.
//!
//! The slice is deliberately passive about routing: the owning
//! [`GpuSimulator`](crate::gpu::GpuSimulator) decides which queue a
//! request enters and where drained replies/forwards go, because routing
//! is what differs between the UBA and NUBA architectures.

use std::collections::VecDeque;

use nuba_cache::{CacheGeometry, MshrFile, MshrOutcome, SetSampler, TagArray};
use nuba_engine::{BandwidthLink, BoundedQueue, LatencyPipe, NextEvent, RoundRobinArbiter};
use nuba_types::{AccessKind, LineAddr, MemReply, MemRequest, PartitionId, SliceId};

use crate::mdr::{MdrBandwidths, MdrController};

/// How a request is treated by this slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// This slice is the line's home (or, for SM-side UBA, the caching
    /// authority in its half).
    Home,
    /// NUBA replica lookup: a local SM's read-only access to a remote
    /// line that MDR wants cached here.
    Replica,
}

#[derive(Debug, Clone, Copy)]
struct SliceReq {
    req: MemRequest,
    role: Role,
}

/// A DRAM task the slice wants its memory controller to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemTask {
    /// Fetch a line (fill on return).
    Fetch(LineAddr),
    /// Write back a dirty line (no reply needed).
    Writeback(LineAddr),
}

/// Slice sizing parameters.
#[derive(Debug, Clone, Copy)]
pub struct SliceParams {
    /// Tag/data geometry (48 sets × 16 ways in the baseline).
    pub geometry: CacheGeometry,
    /// MSHR entries.
    pub mshrs: usize,
    /// Tag+data pipeline latency in cycles.
    pub latency: u64,
    /// Data-array streaming bandwidth (bytes/cycle) for replies.
    pub out_bytes_per_cycle: u64,
    /// LMR/RMR queue capacity.
    pub queue_capacity: usize,
    /// Sampled sets for the MDR profiler.
    pub sample_sets: usize,
}

/// Slice statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct SliceStats {
    /// Tag-pipeline grants (energy: LLC accesses).
    pub accesses: u64,
    /// Tag hits (home + replica).
    pub hits: u64,
    /// Replica lines installed.
    pub replica_fills: u64,
    /// Replica lookup hits.
    pub replica_hits: u64,
    /// Requests forwarded into the NoC (NUBA remote traffic).
    pub forwarded: u64,
}

/// One LLC slice.
pub struct LlcSlice {
    id: SliceId,
    partition: PartitionId,
    tags: TagArray,
    mshr: MshrFile<SliceReq>,
    lmr: BoundedQueue<SliceReq>,
    rmr: BoundedQueue<SliceReq>,
    hold_local: VecDeque<SliceReq>,
    hold_remote: VecDeque<SliceReq>,
    retry: Option<SliceReq>,
    /// Most recent tag-pipe grant `(request id, cycle)`; harvested by
    /// the simulator's lifecycle tracer (at most one grant per cycle).
    last_grant: Option<(nuba_types::ReqId, u64)>,
    arb: RoundRobinArbiter,
    pipe: LatencyPipe<SliceReq>,
    latency: u64,
    out: BandwidthLink<MemReply>,
    /// Replies that finished the data array and await routing by the
    /// simulator.
    ready_replies: VecDeque<MemReply>,
    /// Fill replies waiting for the out gate.
    backlog: VecDeque<MemReply>,
    /// Requests to forward into the inter-partition NoC.
    forward: VecDeque<MemRequest>,
    /// DRAM work for the local memory controller.
    mem_tasks: VecDeque<MemTask>,
    mdr: Option<MdrController>,
    sampler: SetSampler,
    replicate_always: bool,
    /// Fault-injection flag: data/tag arrays offline. Probes miss and
    /// fills are not installed, but MSHRs and queues keep working, so
    /// every access degrades to a DRAM round trip instead of deadlocking.
    offline: bool,
    scratch: Vec<MemReply>,
    /// Statistics.
    pub stats: SliceStats,
}

impl LlcSlice {
    /// Build a slice. `mdr` enables Model-Driven Replication;
    /// `replicate_always` forces the Full-Rep policy (Fig. 12).
    pub fn new(
        id: SliceId,
        partition: PartitionId,
        params: SliceParams,
        mdr: Option<(MdrBandwidths, u64, u64)>,
        replicate_always: bool,
    ) -> LlcSlice {
        LlcSlice {
            id,
            partition,
            tags: TagArray::new(params.geometry),
            mshr: MshrFile::new(params.mshrs, 16),
            lmr: BoundedQueue::new(params.queue_capacity),
            rmr: BoundedQueue::new(params.queue_capacity),
            hold_local: VecDeque::with_capacity(params.queue_capacity),
            hold_remote: VecDeque::with_capacity(params.queue_capacity),
            retry: None,
            last_grant: None,
            arb: RoundRobinArbiter::new(2),
            pipe: LatencyPipe::new(),
            latency: params.latency,
            out: BandwidthLink::new(params.out_bytes_per_cycle as f64, 1, 8),
            // Pre-size the streaming queues past their steady-state peaks
            // so slice ticks never grow a ring buffer mid-simulation.
            ready_replies: VecDeque::with_capacity(256),
            backlog: VecDeque::with_capacity(32),
            forward: VecDeque::with_capacity(32),
            mem_tasks: VecDeque::with_capacity(256),
            mdr: mdr.map(|(bw, epoch, eval)| MdrController::new(bw, epoch, eval)),
            sampler: SetSampler::new(params.geometry, params.sample_sets),
            replicate_always,
            offline: false,
            scratch: Vec::new(),
            stats: SliceStats::default(),
        }
    }

    /// This slice's id.
    pub fn id(&self) -> SliceId {
        self.id
    }

    /// The partition that owns this slice.
    pub fn partition(&self) -> PartitionId {
        self.partition
    }

    /// Whether read-only remote lines are currently replicated here.
    pub fn replicating(&self) -> bool {
        self.replicate_always || self.mdr.as_ref().is_some_and(MdrController::replicating)
    }

    /// Fraction of MDR epochs that chose replication.
    pub fn mdr_replication_rate(&self) -> f64 {
        match &self.mdr {
            Some(c) if c.epochs_total > 0 => c.epochs_replicating as f64 / c.epochs_total as f64,
            _ => 0.0,
        }
    }

    /// Accept a request arriving from the SM side (local link / SM-side
    /// crossbar) to be handled with the given role.
    pub fn ingress_local(&mut self, req: MemRequest, role: Role) {
        self.hold_local.push_back(SliceReq { req, role });
    }

    /// Accept a home request arriving over the inter-partition NoC.
    pub fn ingress_remote(&mut self, req: MemRequest) {
        self.hold_remote.push_back(SliceReq {
            req,
            role: Role::Home,
        });
    }

    /// NUBA address-inspection path (Fig. 5 ②): a local SM's request for
    /// a remote line that is not being replicated is forwarded towards
    /// its home slice without a tag lookup here.
    pub fn forward_direct(&mut self, req: MemRequest) {
        self.forward.push_back(req);
        self.stats.forwarded += 1;
    }

    /// NUBA: note a local SM's request passing this slice, for the MDR
    /// profiler (frac local/remote + shadow samplers).
    pub fn note_local_sm_request(&mut self, line: LineAddr, local_home: bool, read_only: bool) {
        if let Some(mdr) = &mut self.mdr {
            mdr.note_request(local_home);
        }
        self.sampler
            .observe(line, local_home, !local_home && read_only);
    }

    /// Note a remote requester's home access (RMR arrivals) for the
    /// no-replication shadow.
    pub fn note_remote_home_request(&mut self, line: LineAddr) {
        self.sampler.observe(line, true, false);
    }

    /// Advance one cycle.
    pub fn tick(&mut self, now: u64) {
        // Idle fast-path: with every stage empty the whole tick is a
        // no-op (the arbiter only moves on a grant, and an empty out
        // link's credit is already zero). Slices with an MDR controller
        // always take the full path — their epoch clock must advance.
        if self.mdr.is_none()
            && self.retry.is_none()
            && self.hold_local.is_empty()
            && self.hold_remote.is_empty()
            && self.lmr.is_empty()
            && self.rmr.is_empty()
            && self.pipe.is_empty()
            && self.backlog.is_empty()
            && self.out.pending() == 0
        {
            return;
        }

        // Refill the bounded queues from the ingress holds.
        self.lmr.refill_from(&mut self.hold_local);
        self.rmr.refill_from(&mut self.hold_remote);

        // MDR evaluation stalls the pipeline (116-cycle charge).
        let mdr_busy = self.mdr.as_ref().is_some_and(|m| m.busy(now));

        // Grant one request per cycle to the tag pipeline (Fig. 5 ④).
        if !mdr_busy {
            let lmr_ready = !self.lmr.is_empty();
            let rmr_ready = !self.rmr.is_empty();
            if let Some(which) = self
                .arb
                .grant(|i| if i == 0 { lmr_ready } else { rmr_ready })
            {
                let granted = if which == 0 {
                    self.lmr.pop()
                } else {
                    self.rmr.pop()
                };
                // The grant predicate checked non-emptiness this cycle;
                // an empty pop here would be an arbiter bug — skip the
                // grant rather than crash the whole simulation.
                if let Some(r) = granted {
                    self.last_grant = Some((r.req.id, now));
                    self.pipe.push(r, now, self.latency);
                    self.stats.accesses += 1;
                }
            }
        }

        // Process pipeline completions while the reply path has room.
        loop {
            if self.backlog.len() >= 16 {
                break;
            }
            let r = match self.retry.take() {
                Some(r) => r,
                None => match self.pipe.pop_ready(now) {
                    Some(r) => r,
                    None => break,
                },
            };
            if !self.process(r, now) {
                break; // retried: resources exhausted this cycle
            }
        }

        // Stream replies through the data-array output gate.
        while self.out.can_send() {
            let Some(reply) = self.backlog.pop_front() else {
                break;
            };
            if let Err(nuba_engine::SendError(reply)) = self.out.try_send(reply, now) {
                // can_send raced false (cannot happen single-threaded,
                // but never drop a reply): put it back and stop.
                self.backlog.push_front(reply);
                break;
            }
        }
        if self.out.pending() > 0 {
            self.out.tick(now, &mut self.scratch);
            for r in self.scratch.drain(..) {
                self.ready_replies.push_back(r);
            }
        }

        // Epoch maintenance.
        if let Some(mdr) = &mut self.mdr {
            let est = self.sampler.estimate();
            let before = mdr.epochs_total;
            mdr.tick(now, est.hit_rate_no_rep, est.hit_rate_full_rep);
            if mdr.epochs_total != before {
                self.sampler.roll_epoch();
            }
        }
    }

    /// Earliest cycle `>= now` at which ticking this slice changes
    /// state (see [`nuba_engine::NextEvent`]). Anything queued at any
    /// stage — including egress buffers the GPU drains — pins the
    /// event to `now`; otherwise the tag pipeline's head, the output
    /// link's head delivery and the MDR epoch clock are the only timed
    /// events.
    pub fn next_event_cycle(&self, now: u64) -> Option<u64> {
        if self.retry.is_some()
            || !self.hold_local.is_empty()
            || !self.hold_remote.is_empty()
            || !self.lmr.is_empty()
            || !self.rmr.is_empty()
            || !self.backlog.is_empty()
            || !self.ready_replies.is_empty()
            || !self.forward.is_empty()
            || !self.mem_tasks.is_empty()
        {
            return Some(now);
        }
        let mut next = self.pipe.next_event_cycle(now);
        if self.out.pending() > 0 {
            next = nuba_engine::earliest(next, self.out.next_event_cycle(now));
        }
        if let Some(mdr) = &self.mdr {
            next = nuba_engine::earliest(next, Some(mdr.next_epoch().max(now)));
        }
        next
    }

    /// Handle one pipeline completion. Returns `false` if the request
    /// was parked for retry (MSHR full).
    fn process(&mut self, r: SliceReq, now: u64) -> bool {
        let line = r.req.line();
        match r.role {
            Role::Home => match r.req.kind {
                AccessKind::Store => {
                    if self.offline {
                        // Data array offline: write through straight to
                        // DRAM and ack; nothing to cache.
                        self.mem_tasks.push_back(MemTask::Writeback(line));
                        self.backlog.push_back(self.reply_for(&r.req, false));
                        return true;
                    }
                    if !self.tags.mark_dirty(line) {
                        // Write-allocate without fetch (write-through L1s
                        // send full sectors; fetching would double DRAM
                        // traffic).
                        if let Some(ev) = self.tags.insert(line, true, false, now) {
                            if ev.dirty {
                                self.mem_tasks.push_back(MemTask::Writeback(ev.line));
                            }
                        }
                    } else {
                        self.stats.hits += 1;
                    }
                    self.backlog.push_back(self.reply_for(&r.req, true));
                    true
                }
                AccessKind::Load | AccessKind::LoadReadOnly | AccessKind::Atomic => {
                    if !self.offline && self.tags.probe_and_touch(line, now) {
                        self.stats.hits += 1;
                        if r.req.kind == AccessKind::Atomic {
                            self.tags.mark_dirty(line);
                        }
                        self.backlog.push_back(self.reply_for(&r.req, true));
                        true
                    } else {
                        self.miss(r, line)
                    }
                }
            },
            Role::Replica => {
                nuba_types::invariant!(
                    "llc_replica_requests_read_only",
                    r.req.kind.is_read_only(),
                    "{:?}",
                    r.req.kind
                );
                if !self.offline && self.tags.probe_and_touch(line, now) {
                    self.stats.hits += 1;
                    self.stats.replica_hits += 1;
                    self.backlog.push_back(self.reply_for(&r.req, true));
                    true
                } else {
                    self.miss(r, line)
                }
            }
        }
    }

    /// Allocate an MSHR for a miss; primary misses generate a fetch
    /// (home) or a forward to the home slice (replica).
    fn miss(&mut self, r: SliceReq, line: LineAddr) -> bool {
        match self.mshr.allocate(line, r) {
            Ok(MshrOutcome::Primary) => {
                match r.role {
                    Role::Home => self.mem_tasks.push_back(MemTask::Fetch(line)),
                    Role::Replica => {
                        let mut fwd = r.req;
                        fwd.wants_replica = true;
                        self.forward.push_back(fwd);
                        self.stats.forwarded += 1;
                    }
                }
                true
            }
            Ok(MshrOutcome::Secondary) => true,
            Ok(MshrOutcome::NoEntry | MshrOutcome::MergeFull) => unreachable!(),
            Err((_, r)) => match r.role {
                // A home miss must eventually allocate: park and retry
                // (models a stalled fill pipeline).
                Role::Home => {
                    self.retry = Some(r);
                    false
                }
                // Replication is opportunistic: with the MSHRs full of
                // in-flight remote round trips, give up on caching this
                // line locally and send the request straight to its home
                // slice — never head-of-line-block the pipeline on a
                // replica fill.
                Role::Replica => {
                    self.forward_direct(r.req);
                    true
                }
            },
        }
    }

    fn reply_for(&self, req: &MemRequest, hit: bool) -> MemReply {
        MemReply {
            id: req.id,
            sm: req.sm,
            warp: req.warp,
            line: req.line(),
            kind: req.kind,
            serviced_by: self.id,
            llc_hit: hit,
            issue_cycle: req.issue_cycle,
            replica_fill: req.wants_replica,
            bypass_l1: req.bypass_l1,
        }
    }

    /// Functional warming: probe the tag array and install the line on
    /// a miss, with zero timing — no queues, MSHRs, replies, writeback
    /// traffic, or statistics. Returns whether the line was already
    /// resident. An offline slice stays cold, as it would detailed.
    pub fn warm_touch(&mut self, line: LineAddr, dirty: bool, replica: bool, now: u64) -> bool {
        if self.offline {
            return false;
        }
        if self.tags.probe_and_touch(line, now) {
            if dirty {
                self.tags.mark_dirty(line);
            }
            true
        } else {
            let _ = self.tags.insert(line, dirty, replica, now);
            false
        }
    }

    /// A DRAM fill returned for `line`: install it and wake waiters.
    /// While the slice is offline the install is skipped (sets reject
    /// fills) but waiters still complete — requests are never lost.
    pub fn fill_from_memory(&mut self, line: LineAddr, now: u64) {
        if !self.offline {
            if let Some(ev) = self.tags.insert(line, false, false, now) {
                if ev.dirty {
                    self.mem_tasks.push_back(MemTask::Writeback(ev.line));
                }
            }
        }
        let mut atomic_dirty = false;
        let mut waiters = self.mshr.complete(line);
        for waiter in waiters.drain(..) {
            if waiter.req.kind == AccessKind::Atomic {
                atomic_dirty = true;
            }
            self.backlog.push_back(self.reply_for(&waiter.req, false));
        }
        self.mshr.recycle(waiters);
        if atomic_dirty {
            self.tags.mark_dirty(line);
        }
    }

    /// NUBA: a remote reply with `replica_fill` arrived back at the
    /// requester's partition — install the replica and wake local
    /// waiters.
    pub fn fill_replica(&mut self, reply: MemReply, now: u64) {
        nuba_types::invariant!("llc_replica_fill_flagged", reply.replica_fill);
        if !self.offline {
            if let Some(ev) = self.tags.insert(reply.line, false, true, now) {
                if ev.dirty {
                    self.mem_tasks.push_back(MemTask::Writeback(ev.line));
                }
            }
            self.stats.replica_fills += 1;
        }
        let mut waiters = self.mshr.complete(reply.line);
        for waiter in waiters.drain(..) {
            let mut r = self.reply_for(&waiter.req, reply.llc_hit);
            // Keep the home slice as the servicer for latency truth, but
            // the data now streams from this slice's array.
            r.serviced_by = reply.serviced_by;
            r.replica_fill = false;
            self.backlog.push_back(r);
        }
        self.mshr.recycle(waiters);
    }

    /// Pop the next reply ready for routing.
    pub fn pop_reply(&mut self) -> Option<MemReply> {
        self.ready_replies.pop_front()
    }

    /// Re-queue a reply that could not be routed (head blocking).
    pub fn unpop_reply(&mut self, r: MemReply) {
        self.ready_replies.push_front(r);
    }

    /// Pop the next request to forward into the NoC.
    pub fn pop_forward(&mut self) -> Option<MemRequest> {
        self.forward.pop_front()
    }

    /// Re-queue an unroutable forward.
    pub fn unpop_forward(&mut self, r: MemRequest) {
        self.forward.push_front(r);
    }

    /// Pop the next DRAM task.
    pub fn pop_mem_task(&mut self) -> Option<MemTask> {
        self.mem_tasks.pop_front()
    }

    /// Re-queue a DRAM task the controller refused.
    pub fn unpop_mem_task(&mut self, t: MemTask) {
        self.mem_tasks.push_front(t);
    }

    /// Flush all lines; dirty ones become writebacks (kernel boundary,
    /// §5.3).
    pub fn flush(&mut self) {
        for line in self.tags.flush() {
            self.mem_tasks.push_back(MemTask::Writeback(line));
        }
    }

    /// Fault-injection hook: take the tag/data arrays offline (`true`)
    /// or bring them back (`false`). Offline, probes miss and fills are
    /// not installed, so every access is served from DRAM; MSHRs and
    /// queues keep working and no request is dropped. Lines cached
    /// before the fault are left in place and become visible again on
    /// revert (the arrays lost power to their sense amps, not their
    /// contents — a conservative model either way since staleness
    /// cannot arise in a write-through-to-home design).
    pub fn set_offline(&mut self, offline: bool) {
        self.offline = offline;
    }

    /// Whether a fault currently holds this slice's arrays offline.
    pub fn is_offline(&self) -> bool {
        self.offline
    }

    /// Requests currently resident in the MSHR file (deadlock reports).
    pub fn mshr_residents(&self) -> usize {
        self.mshr.occupancy()
    }

    /// Read the MSHR occupancy high-water mark and re-arm it at the
    /// current occupancy (telemetry samples per-window pressure).
    pub fn take_mshr_high_water(&mut self) -> usize {
        self.mshr.take_peak()
    }

    /// Requests waiting in the local (LMR) and remote (RMR) request
    /// queues, including their ingress holds: `(lmr, rmr)`.
    pub fn queue_depths(&self) -> (usize, usize) {
        (
            self.lmr.len() + self.hold_local.len(),
            self.rmr.len() + self.hold_remote.len(),
        )
    }

    /// Take the most recent tag-pipe grant `(request id, cycle)`, if
    /// one happened since the last call (lifecycle tracing hook).
    pub fn take_last_grant(&mut self) -> Option<(nuba_types::ReqId, u64)> {
        self.last_grant.take()
    }

    /// Current replica-line count (capacity-pressure diagnostics).
    pub fn replica_lines(&self) -> usize {
        self.tags.replica_count()
    }

    /// Work queued anywhere in the slice (for drain detection in tests).
    pub fn pending_work(&self) -> usize {
        self.hold_local.len()
            + self.hold_remote.len()
            + self.lmr.len()
            + self.rmr.len()
            + self.pipe.len()
            + self.backlog.len()
            + self.ready_replies.len()
            + self.forward.len()
            + self.mem_tasks.len()
            + self.mshr.occupancy()
            + usize::from(self.retry.is_some())
    }
}

impl StateValue for Role {
    fn put(&self, w: &mut StateWriter) {
        w.put_u8(match self {
            Role::Home => 0,
            Role::Replica => 1,
        });
    }

    fn get(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        Ok(match r.get_u8()? {
            0 => Role::Home,
            1 => Role::Replica,
            tag => return Err(StateError::BadTag { what: "Role", tag }),
        })
    }
}

impl StateValue for SliceReq {
    fn put(&self, w: &mut StateWriter) {
        self.req.put(w);
        self.role.put(w);
    }

    fn get(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        Ok(SliceReq {
            req: StateValue::get(r)?,
            role: StateValue::get(r)?,
        })
    }
}

impl StateValue for MemTask {
    fn put(&self, w: &mut StateWriter) {
        match self {
            MemTask::Fetch(l) => {
                w.put_u8(0);
                l.put(w);
            }
            MemTask::Writeback(l) => {
                w.put_u8(1);
                l.put(w);
            }
        }
    }

    fn get(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        Ok(match r.get_u8()? {
            0 => MemTask::Fetch(StateValue::get(r)?),
            1 => MemTask::Writeback(StateValue::get(r)?),
            tag => {
                return Err(StateError::BadTag {
                    what: "MemTask",
                    tag,
                })
            }
        })
    }
}

impl SaveState for LlcSlice {
    fn save(&self, w: &mut StateWriter) {
        // Geometry, latency, queue capacities and the replication policy
        // are configuration. Everything that moves — tags, MSHRs, the
        // arbiter pointer, every queue, the MDR epoch state and the
        // fault-injection offline flag — is dynamic state.
        self.tags.save(w);
        self.mshr.save(w);
        self.lmr.save(w);
        self.rmr.save(w);
        self.hold_local.put(w);
        self.hold_remote.put(w);
        self.retry.put(w);
        self.last_grant.put(w);
        self.arb.save(w);
        self.pipe.save(w);
        self.out.save(w);
        self.ready_replies.put(w);
        self.backlog.put(w);
        self.forward.put(w);
        self.mem_tasks.put(w);
        match &self.mdr {
            Some(m) => {
                w.put_u8(1);
                m.save(w);
            }
            None => w.put_u8(0),
        }
        self.sampler.save(w);
        self.offline.put(w);
        self.stats.accesses.put(w);
        self.stats.hits.put(w);
        self.stats.replica_fills.put(w);
        self.stats.replica_hits.put(w);
        self.stats.forwarded.put(w);
    }

    fn restore(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.tags.restore(r)?;
        self.mshr.restore(r)?;
        self.lmr.restore(r)?;
        self.rmr.restore(r)?;
        restore_deque(r, &mut self.hold_local)?;
        restore_deque(r, &mut self.hold_remote)?;
        self.retry = Option::get(r)?;
        self.last_grant = Option::get(r)?;
        self.arb.restore(r)?;
        self.pipe.restore(r)?;
        self.out.restore(r)?;
        restore_deque(r, &mut self.ready_replies)?;
        restore_deque(r, &mut self.backlog)?;
        restore_deque(r, &mut self.forward)?;
        restore_deque(r, &mut self.mem_tasks)?;
        let has_mdr = r.get_u8()?;
        match (&mut self.mdr, has_mdr) {
            (Some(m), 1) => m.restore(r)?,
            (None, 0) => {}
            _ => return Err(StateError::Corrupt("MDR controller presence mismatch")),
        }
        self.sampler.restore(r)?;
        self.offline = bool::get(r)?;
        self.stats.accesses = u64::get(r)?;
        self.stats.hits = u64::get(r)?;
        self.stats.replica_fills = u64::get(r)?;
        self.stats.replica_hits = u64::get(r)?;
        self.stats.forwarded = u64::get(r)?;
        Ok(())
    }
}

use nuba_types::state::{
    restore_deque, SaveState, StateError, StateReader, StateValue, StateWriter,
};

#[cfg(test)]
mod tests {
    use super::*;
    use nuba_types::{PhysAddr, ReqId, SmId, VirtAddr, WarpId};

    fn params() -> SliceParams {
        SliceParams {
            geometry: CacheGeometry::new(48, 16),
            mshrs: 8,
            latency: 4,
            out_bytes_per_cycle: 32,
            queue_capacity: 8,
            sample_sets: 8,
        }
    }

    fn slice() -> LlcSlice {
        LlcSlice::new(SliceId(0), PartitionId(0), params(), None, false)
    }

    fn req(id: u64, addr: u64, kind: AccessKind) -> MemRequest {
        MemRequest {
            id: ReqId(id),
            sm: SmId(1),
            warp: WarpId(2),
            vaddr: VirtAddr(addr),
            paddr: PhysAddr(addr),
            kind,
            issue_cycle: 0,
            wants_replica: false,
            bypass_l1: false,
        }
    }

    fn run(s: &mut LlcSlice, from: u64, to: u64) -> Vec<(u64, MemReply)> {
        let mut got = Vec::new();
        for c in from..=to {
            s.tick(c);
            while let Some(r) = s.pop_reply() {
                got.push((c, r));
            }
        }
        got
    }

    #[test]
    fn load_miss_fetches_then_hits() {
        let mut s = slice();
        s.ingress_local(req(1, 0x1000, AccessKind::Load), Role::Home);
        let got = run(&mut s, 0, 10);
        assert!(got.is_empty(), "miss produces no reply yet");
        assert_eq!(
            s.pop_mem_task(),
            Some(MemTask::Fetch(LineAddr::containing(0x1000)))
        );

        s.fill_from_memory(LineAddr::containing(0x1000), 11);
        let got = run(&mut s, 11, 30);
        assert_eq!(got.len(), 1);
        assert!(!got[0].1.llc_hit);

        // Second access: hit.
        s.ingress_local(req(2, 0x1000, AccessKind::Load), Role::Home);
        let got = run(&mut s, 31, 50);
        assert_eq!(got.len(), 1);
        assert!(got[0].1.llc_hit);
        assert_eq!(s.stats.hits, 1);
    }

    #[test]
    fn secondary_misses_merge() {
        let mut s = slice();
        s.ingress_local(req(1, 0x1000, AccessKind::Load), Role::Home);
        s.ingress_local(req(2, 0x1000, AccessKind::Load), Role::Home);
        let _ = run(&mut s, 0, 10);
        // Only one fetch for two requests.
        assert_eq!(
            s.pop_mem_task(),
            Some(MemTask::Fetch(LineAddr::containing(0x1000)))
        );
        assert_eq!(s.pop_mem_task(), None);
        s.fill_from_memory(LineAddr::containing(0x1000), 11);
        let got = run(&mut s, 11, 40);
        assert_eq!(got.len(), 2, "both waiters replied");
    }

    #[test]
    fn lmr_rmr_round_robin() {
        let mut s = slice();
        // Fill both queues with hits on a pre-warmed line.
        s.fill_from_memory(LineAddr::containing(0x80_000), 0);
        let _ = run(&mut s, 0, 2);
        for i in 0..4 {
            s.ingress_local(req(10 + i, 0x80_000, AccessKind::Load), Role::Home);
            s.ingress_remote(req(20 + i, 0x80_000, AccessKind::Load));
        }
        let got = run(&mut s, 3, 80);
        assert_eq!(got.len(), 8);
        // Grants alternate: ids interleave local/remote.
        let first_four: Vec<u64> = got.iter().take(4).map(|(_, r)| r.id.0).collect();
        let locals = first_four.iter().filter(|&&id| id < 20).count();
        assert_eq!(locals, 2, "round-robin must interleave, got {first_four:?}");
    }

    #[test]
    fn store_allocates_dirty_and_writes_back() {
        let mut s = slice();
        s.ingress_local(req(1, 0x2000, AccessKind::Store), Role::Home);
        let got = run(&mut s, 0, 20);
        assert_eq!(got.len(), 1, "store acked");
        assert_eq!(got[0].1.kind, AccessKind::Store);
        // Evict the dirty line by filling the set (48-set cache: lines
        // 0x2000 + k*48*128 collide).
        for k in 1..=16u64 {
            s.fill_from_memory(LineAddr::containing(0x2000 + k * 48 * 128), 20 + k);
        }
        let wb: Vec<MemTask> = std::iter::from_fn(|| s.pop_mem_task()).collect();
        assert!(
            wb.contains(&MemTask::Writeback(LineAddr::containing(0x2000))),
            "dirty line must write back: {wb:?}"
        );
    }

    #[test]
    fn atomic_marks_dirty() {
        let mut s = slice();
        s.ingress_local(req(1, 0x3000, AccessKind::Atomic), Role::Home);
        let _ = run(&mut s, 0, 10);
        s.fill_from_memory(LineAddr::containing(0x3000), 11);
        let got = run(&mut s, 11, 30);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1.kind, AccessKind::Atomic);
        // Dirty: flushing produces a writeback.
        while s.pop_mem_task().is_some() {}
        s.flush();
        assert_eq!(
            s.pop_mem_task(),
            Some(MemTask::Writeback(LineAddr::containing(0x3000)))
        );
    }

    #[test]
    fn replica_miss_forwards_with_flag() {
        let mut s = slice();
        s.ingress_local(req(1, 0x4000, AccessKind::LoadReadOnly), Role::Replica);
        let _ = run(&mut s, 0, 10);
        let fwd = s.pop_forward().expect("forwarded to home");
        assert!(fwd.wants_replica);
        assert_eq!(
            s.pop_mem_task(),
            None,
            "replica miss must not touch local DRAM"
        );
        // Home reply comes back: replica installed, waiter replied.
        let reply = MemReply {
            id: fwd.id,
            sm: fwd.sm,
            warp: fwd.warp,
            line: fwd.line(),
            kind: fwd.kind,
            serviced_by: SliceId(9),
            llc_hit: false,
            issue_cycle: 0,
            replica_fill: true,
            bypass_l1: false,
        };
        s.fill_replica(reply, 11);
        let got = run(&mut s, 11, 30);
        assert_eq!(got.len(), 1);
        assert!(!got[0].1.replica_fill, "SM-facing reply is plain");
        assert_eq!(s.stats.replica_fills, 1);
        assert_eq!(s.replica_lines(), 1);

        // Subsequent replica lookups hit locally.
        s.ingress_local(req(2, 0x4000, AccessKind::LoadReadOnly), Role::Replica);
        let got = run(&mut s, 31, 50);
        assert_eq!(got.len(), 1);
        assert!(got[0].1.llc_hit);
        assert_eq!(s.stats.replica_hits, 1);
    }

    #[test]
    fn out_gate_streams_at_32_bytes_per_cycle() {
        let mut s = slice();
        s.fill_from_memory(LineAddr::containing(0x5000), 0);
        let _ = run(&mut s, 0, 1);
        for i in 0..4 {
            s.ingress_local(req(i, 0x5000, AccessKind::Load), Role::Home);
        }
        let got = run(&mut s, 2, 80);
        assert_eq!(got.len(), 4);
        // Each 136 B reply needs ≥ ceil(136/32) = 5 gate cycles; four
        // replies span ≥ ~15 cycles even though tags grant 1/cycle.
        let span = got.last().unwrap().0 - got.first().unwrap().0;
        assert!(span >= 12, "data gate not limiting: span {span}");
    }

    #[test]
    fn mshr_exhaustion_parks_and_retries() {
        let mut s = slice();
        // 8 MSHRs; send 10 distinct misses.
        for i in 0..10u64 {
            s.ingress_local(req(i, 0x10_000 + i * 128, AccessKind::Load), Role::Home);
        }
        let _ = run(&mut s, 0, 30);
        let fetches: Vec<MemTask> = std::iter::from_fn(|| s.pop_mem_task()).collect();
        assert_eq!(fetches.len(), 8, "only 8 MSHRs worth of fetches");
        // Fill one: the parked request proceeds.
        s.fill_from_memory(LineAddr::containing(0x10_000), 31);
        let _ = run(&mut s, 31, 60);
        assert!(s.pop_mem_task().is_some(), "retried request fetched");
    }

    #[test]
    fn full_replication_flag() {
        let s = LlcSlice::new(SliceId(0), PartitionId(0), params(), None, true);
        assert!(s.replicating());
        let s2 = slice();
        assert!(!s2.replicating());
    }

    #[test]
    fn offline_slice_degrades_to_dram_without_losing_requests() {
        let mut s = slice();
        // Warm a line, then take the arrays offline.
        s.fill_from_memory(LineAddr::containing(0x6000), 0);
        let _ = run(&mut s, 0, 1);
        s.set_offline(true);
        assert!(s.is_offline());

        // A load that would hit now misses and goes to DRAM.
        s.ingress_local(req(1, 0x6000, AccessKind::Load), Role::Home);
        let _ = run(&mut s, 2, 12);
        assert_eq!(
            s.pop_mem_task(),
            Some(MemTask::Fetch(LineAddr::containing(0x6000))),
            "offline probe must miss"
        );
        // The fill is not installed but the waiter still completes.
        s.fill_from_memory(LineAddr::containing(0x6000), 13);
        let got = run(&mut s, 13, 40);
        assert_eq!(got.len(), 1, "request served despite offline arrays");
        assert!(!got[0].1.llc_hit);

        // Stores write through and ack.
        s.ingress_local(req(2, 0x6000, AccessKind::Store), Role::Home);
        let got = run(&mut s, 41, 60);
        assert_eq!(got.len(), 1);
        assert_eq!(
            s.pop_mem_task(),
            Some(MemTask::Writeback(LineAddr::containing(0x6000)))
        );

        // Revert: the pre-fault line is visible again.
        s.set_offline(false);
        s.ingress_local(req(3, 0x6000, AccessKind::Load), Role::Home);
        let got = run(&mut s, 61, 80);
        assert_eq!(got.len(), 1);
        assert!(got[0].1.llc_hit, "revert restores the arrays");
        assert_eq!(s.pending_work(), 0);
    }

    #[test]
    fn pending_work_drains_to_zero() {
        let mut s = slice();
        s.ingress_local(req(1, 0x7000, AccessKind::Load), Role::Home);
        assert!(s.pending_work() > 0);
        let _ = run(&mut s, 0, 10);
        s.fill_from_memory(LineAddr::containing(0x7000), 11);
        while s.pop_mem_task().is_some() {}
        let _ = run(&mut s, 11, 40);
        assert_eq!(s.pending_work(), 0);
    }
}
