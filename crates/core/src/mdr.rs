//! Model-Driven Replication: the §5.1 analytical bandwidth model and the
//! per-slice epoch controller.
//!
//! Every `mdr_epoch_cycles` (20 K) the controller evaluates two closed-
//! form estimates of the effective bandwidth its partition's SMs would
//! perceive — one assuming no replication, one assuming full replication
//! of read-only shared data — using profile inputs collected during the
//! previous epoch (fraction of local vs remote accesses, and the LLC
//! hit rates under both policies from the shadow-tag set sampler). The
//! higher estimate wins and sets the policy for the next epoch.
//!
//! The hardware evaluation cost is 116 cycles (4 divisions × 25 + 4
//! multiplications × 3 + 2 additions + 2 comparisons, per the paper's
//! footnote); the controller charges it by stalling the slice pipeline.

/// Microarchitectural bandwidth constants, in bytes per SM cycle,
/// expressed per LLC slice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MdrBandwidths {
    /// Raw LLC slice bandwidth (32 ≙ 2.8 TB/s over 64 slices).
    pub bw_llc: f64,
    /// DRAM bandwidth behind this slice (channel bandwidth divided by
    /// slices per channel).
    pub bw_mem: f64,
    /// NoC bandwidth per slice port.
    pub bw_noc: f64,
}

/// Workload profile inputs for one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MdrProfile {
    /// Fraction of this partition's L1 misses that target local memory.
    pub frac_local: f64,
    /// LLC hit rate estimated under no replication.
    pub hit_no_rep: f64,
    /// LLC hit rate estimated under full replication.
    pub hit_full_rep: f64,
}

/// The two §5.1 estimates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MdrEstimate {
    /// Effective bandwidth without replication.
    pub bw_no_rep: f64,
    /// Effective bandwidth with full replication.
    pub bw_full_rep: f64,
}

impl MdrEstimate {
    /// Whether the model chooses to replicate next epoch.
    pub fn replicate(&self) -> bool {
        self.bw_full_rep > self.bw_no_rep
    }
}

/// Evaluate the §5.1 equations.
///
/// **No replication** (local and remote traffic weighted):
/// ```text
/// BW_local  = hit·BW_LLC + min(miss·BW_LLC, BW_MEM)
/// BW_remote = min(BW_NoC, hit·BW_LLC + min(miss·BW_LLC, BW_MEM))
/// BW_NoRep  = f_local·BW_local + f_remote·BW_remote
/// ```
///
/// **Full replication** (all L1 misses access the local slice; misses
/// spill to local or remote memory):
/// ```text
/// BW_remote       = min(BW_NoC, BW_MEM)
/// BW_local/remote = f_local·BW_MEM + f_remote·BW_remote
/// BW_FullRep      = hit·BW_LLC + min(miss·BW_LLC, BW_local/remote)
/// ```
pub fn evaluate(bw: MdrBandwidths, p: MdrProfile) -> MdrEstimate {
    let frac_remote = 1.0 - p.frac_local;

    // No replication.
    let miss_no = 1.0 - p.hit_no_rep;
    let bw_llc_miss = (miss_no * bw.bw_llc).min(bw.bw_mem);
    let bw_local = p.hit_no_rep * bw.bw_llc + bw_llc_miss;
    let bw_remote = bw.bw_noc.min(p.hit_no_rep * bw.bw_llc + bw_llc_miss);
    let bw_no_rep = p.frac_local * bw_local + frac_remote * bw_remote;

    // Full replication.
    let miss_full = 1.0 - p.hit_full_rep;
    let bw_remote_mem = bw.bw_noc.min(bw.bw_mem);
    let bw_local_remote = p.frac_local * bw.bw_mem + frac_remote * bw_remote_mem;
    let bw_full_rep = p.hit_full_rep * bw.bw_llc + (miss_full * bw.bw_llc).min(bw_local_remote);

    MdrEstimate {
        bw_no_rep,
        bw_full_rep,
    }
}

/// Per-slice epoch controller.
#[derive(Debug, Clone)]
pub struct MdrController {
    bw: MdrBandwidths,
    epoch_cycles: u64,
    eval_cycles: u64,
    next_epoch: u64,
    /// Current policy: replicate read-only remote lines locally?
    replicating: bool,
    /// Pipeline stall deadline while the model evaluates.
    busy_until: u64,
    // Epoch counters, fed by the slice.
    local_requests: u64,
    remote_requests: u64,
    /// Epochs in which the controller chose replication.
    pub epochs_replicating: u64,
    /// Total epochs evaluated.
    pub epochs_total: u64,
}

impl MdrController {
    /// A controller starting in the no-replication state.
    pub fn new(bw: MdrBandwidths, epoch_cycles: u64, eval_cycles: u64) -> MdrController {
        assert!(epoch_cycles > 0);
        MdrController {
            bw,
            epoch_cycles,
            eval_cycles,
            next_epoch: epoch_cycles,
            replicating: false,
            busy_until: 0,
            local_requests: 0,
            remote_requests: 0,
            epochs_replicating: 0,
            epochs_total: 0,
        }
    }

    /// Whether the current epoch's policy replicates.
    pub fn replicating(&self) -> bool {
        self.replicating
    }

    /// Whether the slice pipeline is stalled by model evaluation.
    pub fn busy(&self, now: u64) -> bool {
        now < self.busy_until
    }

    /// Cycle of the next epoch evaluation — the controller's only
    /// self-timed event ([`tick`](MdrController::tick) is a pure no-op
    /// before it).
    pub fn next_epoch(&self) -> u64 {
        self.next_epoch
    }

    /// Record one local-SM request (local home or remote home).
    pub fn note_request(&mut self, local_home: bool) {
        if local_home {
            self.local_requests += 1;
        } else {
            self.remote_requests += 1;
        }
    }

    /// Advance time; at epoch boundaries, re-evaluate with the sampler's
    /// hit-rate estimates and reset the epoch counters.
    pub fn tick(&mut self, now: u64, hit_no_rep: f64, hit_full_rep: f64) {
        if now < self.next_epoch {
            return;
        }
        self.next_epoch = now + self.epoch_cycles;
        let total = self.local_requests + self.remote_requests;
        let frac_local = if total == 0 {
            1.0 // idle epoch: stay local-biased, do not replicate
        } else {
            self.local_requests as f64 / total as f64
        };
        let est = evaluate(
            self.bw,
            MdrProfile {
                frac_local,
                hit_no_rep,
                hit_full_rep,
            },
        );
        self.replicating = est.replicate();
        self.epochs_total += 1;
        if self.replicating {
            self.epochs_replicating += 1;
        }
        self.local_requests = 0;
        self.remote_requests = 0;
        self.busy_until = now + self.eval_cycles;
    }
}

impl SaveState for MdrController {
    fn save(&self, w: &mut StateWriter) {
        // Bandwidth constants and epoch/eval lengths are configuration;
        // the epoch clock, current policy and profile counters are state.
        self.next_epoch.put(w);
        self.replicating.put(w);
        self.busy_until.put(w);
        self.local_requests.put(w);
        self.remote_requests.put(w);
        self.epochs_replicating.put(w);
        self.epochs_total.put(w);
    }

    fn restore(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.next_epoch = u64::get(r)?;
        self.replicating = bool::get(r)?;
        self.busy_until = u64::get(r)?;
        self.local_requests = u64::get(r)?;
        self.remote_requests = u64::get(r)?;
        self.epochs_replicating = u64::get(r)?;
        self.epochs_total = u64::get(r)?;
        Ok(())
    }
}

use nuba_types::state::{SaveState, StateError, StateReader, StateValue, StateWriter};

/// The paper-baseline bandwidth constants per slice: 32 B/cycle LLC,
/// 8 B/cycle memory (16 B/cycle channel over 2 slices), and the NoC
/// port bandwidth implied by the configured aggregate.
pub fn paper_slice_bandwidths(noc_port_bytes_per_cycle: f64) -> MdrBandwidths {
    MdrBandwidths {
        bw_llc: 32.0,
        bw_mem: 8.0,
        bw_noc: noc_port_bytes_per_cycle,
    }
}

/// The coarse resource bound a [`static_screen`] predicts will limit a
/// kernel's effective bandwidth under the winning policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScreenBottleneck {
    /// LLC slice bandwidth binds (high hit rate, little spill).
    Llc,
    /// The memory channel behind the slice binds.
    Dram,
    /// The NoC port to remote slices binds.
    Noc,
}

impl ScreenBottleneck {
    /// Short stable label (used in correlation reports).
    pub fn label(&self) -> &'static str {
        match self {
            ScreenBottleneck::Llc => "LLC",
            ScreenBottleneck::Dram => "DRAM",
            ScreenBottleneck::Noc => "NoC",
        }
    }
}

/// The tier-0 analytical screen's verdict for one kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScreenVerdict {
    /// The two §5.1 estimates on the static inputs.
    pub estimate: MdrEstimate,
    /// Whether the model predicts MDR will choose replication.
    pub replicate: bool,
    /// Which resource bounds the winning policy.
    pub bottleneck: ScreenBottleneck,
}

/// Tier-0 analytical screen: evaluate the §5.1 equations on *statically*
/// derived profile inputs (from `nuba-workloads`' static kernel
/// profiler) instead of epoch counters — predicting, before a single
/// simulated cycle, whether MDR should replicate and which resource
/// bounds the kernel's bandwidth.
///
/// The bottleneck attribution replays which `min(..)` term binds in the
/// winning policy's equation: the NoC port when remote traffic
/// dominates and is port-limited, DRAM when the miss stream exceeds the
/// channel, the LLC slice otherwise. It is deliberately coarse — the
/// cycle-level simulator's `BottleneckBreakdown` is the ground truth it
/// is correlated against (`fig_correlation`).
pub fn static_screen(bw: MdrBandwidths, p: MdrProfile) -> ScreenVerdict {
    let estimate = evaluate(bw, p);
    let replicate = estimate.replicate();
    let frac_remote = 1.0 - p.frac_local;
    let bottleneck = if replicate {
        // Full replication: all misses funnel into the local slice.
        let miss = 1.0 - p.hit_full_rep;
        let bw_remote_mem = bw.bw_noc.min(bw.bw_mem);
        let bw_local_remote = p.frac_local * bw.bw_mem + frac_remote * bw_remote_mem;
        if miss * bw.bw_llc < bw_local_remote {
            ScreenBottleneck::Llc
        } else if frac_remote >= 0.5 && bw.bw_noc < bw.bw_mem {
            ScreenBottleneck::Noc
        } else {
            ScreenBottleneck::Dram
        }
    } else {
        let miss = 1.0 - p.hit_no_rep;
        let local_path = p.hit_no_rep * bw.bw_llc + (miss * bw.bw_llc).min(bw.bw_mem);
        if frac_remote >= 0.5 && bw.bw_noc < local_path {
            ScreenBottleneck::Noc
        } else if miss * bw.bw_llc >= bw.bw_mem {
            ScreenBottleneck::Dram
        } else {
            ScreenBottleneck::Llc
        }
    };
    ScreenVerdict {
        estimate,
        replicate,
        bottleneck,
    }
}

/// The compile-time half of MDR (§5.2) feeding the runtime model above:
/// the params the flow-sensitive replication-safety pass proves
/// read-only for `kernel`. Loads from these arrays are issued as
/// `ld.global.ro` and become the replication candidates the epoch
/// controller arbitrates over.
///
/// This uses [`nuba_compiler::analyze_kernel_flow`], so arrays whose
/// only stores sit in statically never-taken paths — which the
/// flow-insensitive [`nuba_compiler::analyze_kernel`] must conservatively
/// treat as read-write — still qualify (see `tests/mdr_compiler.rs`).
pub fn replication_candidate_params(
    kernel: &nuba_compiler::Kernel,
) -> std::collections::BTreeSet<String> {
    nuba_compiler::analyze_kernel_flow(kernel).summary.read_only
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bw() -> MdrBandwidths {
        paper_slice_bandwidths(15.6)
    }

    #[test]
    fn hand_computed_no_rep() {
        // frac_local=1, hit=0.5: BW = 0.5·32 + min(0.5·32, 8) = 16+8 = 24.
        let est = evaluate(
            bw(),
            MdrProfile {
                frac_local: 1.0,
                hit_no_rep: 0.5,
                hit_full_rep: 0.5,
            },
        );
        assert!((est.bw_no_rep - 24.0).abs() < 1e-12);
    }

    #[test]
    fn remote_traffic_is_noc_bound() {
        // All remote, perfect hit rate: remote bw = min(15.6, 32) = 15.6.
        let est = evaluate(
            bw(),
            MdrProfile {
                frac_local: 0.0,
                hit_no_rep: 1.0,
                hit_full_rep: 0.0,
            },
        );
        assert!((est.bw_no_rep - 15.6).abs() < 1e-12);
    }

    #[test]
    fn replication_wins_when_shared_data_cacheable() {
        // Mostly-remote read traffic whose working set fits locally:
        // full-rep hit rate stays high → replication is a clear win.
        let est = evaluate(
            bw(),
            MdrProfile {
                frac_local: 0.3,
                hit_no_rep: 0.8,
                hit_full_rep: 0.75,
            },
        );
        assert!(est.replicate(), "{est:?}");
        // Sanity: full-rep ≈ 0.75·32 + min(8, …) — far above the
        // NoC-bound no-rep path.
        assert!(est.bw_full_rep > est.bw_no_rep + 4.0);
    }

    #[test]
    fn replication_loses_when_it_thrashes() {
        // Replication collapses the hit rate (GRU/BT-style): the model
        // must keep no-replication.
        let est = evaluate(
            bw(),
            MdrProfile {
                frac_local: 0.6,
                hit_no_rep: 0.7,
                hit_full_rep: 0.15,
            },
        );
        assert!(!est.replicate(), "{est:?}");
    }

    #[test]
    fn all_local_traffic_never_prefers_replication() {
        // With everything local, replication can only lose (same hit
        // rate, same memory path).
        let est = evaluate(
            bw(),
            MdrProfile {
                frac_local: 1.0,
                hit_no_rep: 0.6,
                hit_full_rep: 0.6,
            },
        );
        assert!(est.bw_full_rep <= est.bw_no_rep + 1e-9);
    }

    #[test]
    fn controller_epochs() {
        let mut c = MdrController::new(bw(), 1000, 116);
        assert!(!c.replicating());
        for _ in 0..800 {
            c.note_request(false); // heavy remote traffic
        }
        c.tick(999, 0.8, 0.75);
        assert!(!c.replicating(), "epoch boundary not reached yet");
        c.tick(1000, 0.8, 0.75);
        assert!(
            c.replicating(),
            "remote-heavy epoch should enable replication"
        );
        assert!(c.busy(1100));
        assert!(!c.busy(1200));
        assert_eq!(c.epochs_total, 1);
        assert_eq!(c.epochs_replicating, 1);
    }

    #[test]
    fn controller_reverts_when_thrashing() {
        let mut c = MdrController::new(bw(), 1000, 116);
        for _ in 0..100 {
            c.note_request(false);
        }
        c.tick(1000, 0.8, 0.75);
        assert!(c.replicating());
        for _ in 0..100 {
            c.note_request(false);
        }
        // Sampler now reports replication would collapse the hit rate.
        c.tick(2000, 0.7, 0.1);
        assert!(!c.replicating());
        assert_eq!(c.epochs_total, 2);
        assert_eq!(c.epochs_replicating, 1);
    }

    #[test]
    fn screen_attributes_noc_bound_remote_traffic() {
        // Remote-heavy, replication thrashes: no-rep wins, NoC binds.
        let v = static_screen(
            bw(),
            MdrProfile {
                frac_local: 0.2,
                hit_no_rep: 0.3,
                hit_full_rep: 0.05,
            },
        );
        assert!(!v.replicate);
        assert_eq!(v.bottleneck, ScreenBottleneck::Noc);
    }

    #[test]
    fn screen_attributes_dram_bound_local_misses() {
        // Local streaming traffic, low hit rate: DRAM channel binds.
        let v = static_screen(
            bw(),
            MdrProfile {
                frac_local: 0.95,
                hit_no_rep: 0.1,
                hit_full_rep: 0.1,
            },
        );
        assert!(!v.replicate);
        assert_eq!(v.bottleneck, ScreenBottleneck::Dram);
    }

    #[test]
    fn screen_attributes_llc_bound_when_cacheable() {
        // Replication wins and almost everything hits: LLC slice binds.
        let v = static_screen(
            bw(),
            MdrProfile {
                frac_local: 0.3,
                hit_no_rep: 0.8,
                hit_full_rep: 0.9,
            },
        );
        assert!(v.replicate);
        assert_eq!(v.bottleneck, ScreenBottleneck::Llc);
        assert_eq!(v.bottleneck.label(), "LLC");
    }

    #[test]
    fn idle_epoch_defaults_to_no_replication() {
        // No requests were profiled: the sampler's cold fallback feeds
        // equal hit rates and frac_local defaults to 1.0, so the two
        // estimates tie and the strict comparison keeps no-replication.
        let mut c = MdrController::new(bw(), 1000, 116);
        c.tick(1000, 0.5, 0.5);
        assert!(!c.replicating());
    }
}
