//! Simulation reports: the metrics the paper's figures are built from.

use nuba_types::{ErrorBound, Fidelity, Histogram, LatencySummary, LINE_BYTES};

use crate::energy::EnergyReport;
use crate::telemetry::{NUM_STAGES, NUM_TIERS, STAGE_NAMES, TIER_NAMES};

/// Sampling metadata attached to a tier-1 ([`Fidelity::Sampled`])
/// report: what was measured, what it cost, and the error bounds the
/// extrapolation carries. Absent (`None`) on full-fidelity runs, which
/// keeps [`SimReport`] equality — and therefore every byte-identity
/// contract — unchanged for tier 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampledMeta {
    /// The fidelity the run executed at (always `Fidelity::Sampled`,
    /// with the resolved interval parameters).
    pub(crate) fidelity: Fidelity,
    /// Measurement intervals actually taken.
    pub(crate) intervals: u32,
    /// Cycles simulated in detail (measurement intervals plus drain
    /// phases) — the cost the fidelity ladder accounts.
    pub(crate) detail_cycles: u64,
    /// Cycles inside measurement intervals (the extrapolation basis).
    pub(crate) measured_cycles: u64,
    /// IPC (warp ops per cycle) with its confidence interval.
    pub(crate) ipc: ErrorBound,
    /// NUBA local-link bytes per cycle with its confidence interval.
    pub(crate) local_link_bpc: ErrorBound,
    /// NoC bytes per cycle with its confidence interval.
    pub(crate) noc_bpc: ErrorBound,
    /// DRAM bytes per cycle with its confidence interval.
    pub(crate) dram_bpc: ErrorBound,
}

/// Deterministic read-latency distributions carried by [`SimReport`]:
/// end-to-end latency split by bandwidth tier (always populated) and
/// per-stage queueing delay from sampled lifecycle traces (populated
/// when `TelemetryConfig::trace_sample_period > 0`).
///
/// Everything is integral ([`Histogram`] is `u64`-only), so the report
/// stays byte-deterministic across worker counts and skip modes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyReport {
    /// End-to-end read latency indexed by `telemetry::TIER_*`.
    pub tiers: [Histogram; NUM_TIERS],
    /// Per-stage delay indexed by `telemetry::STAGE_*`.
    pub stages: [Histogram; NUM_STAGES],
}

impl LatencyReport {
    /// `(tier name, summary)` for every bandwidth tier, in fixed order.
    pub fn tier_summaries(&self) -> [(&'static str, LatencySummary); NUM_TIERS] {
        let mut out = [("", LatencySummary::default()); NUM_TIERS];
        for (i, h) in self.tiers.iter().enumerate() {
            out[i] = (TIER_NAMES[i], LatencySummary::of(h));
        }
        out
    }

    /// `(stage name, summary)` for every lifecycle stage, in fixed order.
    pub fn stage_summaries(&self) -> [(&'static str, LatencySummary); NUM_STAGES] {
        let mut out = [("", LatencySummary::default()); NUM_STAGES];
        for (i, h) in self.stages.iter().enumerate() {
            out[i] = (STAGE_NAMES[i], LatencySummary::of(h));
        }
        out
    }

    /// All tiers merged into one end-to-end distribution.
    pub fn overall(&self) -> Histogram {
        let mut h = Histogram::new();
        for t in &self.tiers {
            h.merge(t);
        }
        h
    }

    /// JSON object (`{"overall":{...},"tiers":{...},"stages":{...}}`)
    /// with a [`LatencySummary`] per entry — all integers, so the text
    /// is identical across platforms, worker counts and skip modes.
    pub fn json(&self) -> String {
        let mut s = String::from("{\"overall\":");
        s.push_str(&LatencySummary::of(&self.overall()).json());
        s.push_str(",\"tiers\":{");
        for (i, (name, sum)) in self.tier_summaries().into_iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{}", name, sum.json()));
        }
        s.push_str("},\"stages\":{");
        for (i, (name, sum)) in self.stage_summaries().into_iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{}", name, sum.json()));
        }
        s.push_str("}}");
        s
    }
}

/// Aggregate result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Simulated cycles.
    pub cycles: u64,
    /// Warp operations completed (memory ops + compute blocks): the
    /// throughput proxy used for "performance" — streams are identical
    /// across architectures, so ops/cycle ratios are speedups.
    pub warp_ops: u64,
    /// Read replies delivered to SMs (Fig. 8's replies/cycle numerator).
    pub read_replies: u64,
    /// L1 misses serviced by the local partition (NUBA; always 0 for
    /// UBA — every UBA miss crosses the NoC). Fig. 9.
    pub local_misses: u64,
    /// L1 misses serviced remotely (over the NoC).
    pub remote_misses: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// LLC slice hits / accesses.
    pub llc_hits: u64,
    /// LLC accesses (tag grants).
    pub llc_accesses: u64,
    /// DRAM line transfers.
    pub dram_accesses: u64,
    /// DRAM row-hit fraction.
    pub dram_row_hit_rate: f64,
    /// Bytes moved through the inter-partition / SM-LLC NoC.
    pub noc_bytes: u64,
    /// Bytes moved through NUBA local links.
    pub local_link_bytes: u64,
    /// Replicated-line insertions (MDR activity).
    pub replica_fills: u64,
    /// Fraction of MDR epochs that chose replication (0 when MDR off).
    pub mdr_replication_rate: f64,
    /// First-touch page faults taken.
    pub page_faults: u64,
    /// Final Normalized Page Balance (Eq. 1).
    pub final_npb: f64,
    /// Max-over-mean DRAM load across channels (1.0 = perfectly
    /// balanced; large values are the first-touch hot-channel pathology
    /// LAB exists to fix).
    pub channel_imbalance: f64,
    /// Mean issue-to-reply latency of read requests, in cycles.
    pub avg_read_latency: f64,
    /// Worst observed issue-to-reply latency.
    pub max_read_latency: u64,
    /// Average NoC power in watts over the run.
    pub noc_watts: f64,
    /// Warp-issue slots lost to a full downstream link/NoC port.
    pub stall_downstream: u64,
    /// Warp-issue slots lost to L1 MSHR exhaustion.
    pub stall_mshr: u64,
    /// Warp-issue slots lost to the outstanding-request budget.
    pub stall_outstanding: u64,
    /// NUBA local-link busy cycles, both directions summed (0 on UBA).
    pub local_link_busy_cycles: u64,
    /// NoC bytes expressed as per-port serialization cycles — the
    /// NoC-side weight for the bottleneck attribution, commensurable
    /// with the other busy-cycle weights.
    pub noc_serialization_cycles: f64,
    /// DRAM data-bus busy cycles summed over channels.
    pub dram_bus_busy_cycles: u64,
    /// Energy breakdown.
    pub energy: EnergyReport,
    /// Read-latency distributions (per bandwidth tier and per stage).
    pub latency: LatencyReport,
    /// Sampling metadata (`Some` only on tier-1 extrapolated reports).
    /// Crate-private by design: read it through the accessors
    /// ([`sampled_meta`](SimReport::sampled_meta),
    /// [`ipc_bound`](SimReport::ipc_bound), …) so the field layout can
    /// evolve without breaking callers.
    pub(crate) sampled: Option<SampledMeta>,
}

/// Top-down cycle-accounting shares from `SimReport::bottleneck_breakdown`
/// (and per telemetry window via `TelemetryWindow::bottleneck_mix`).
///
/// The six shares always sum to 1.0 (± floating-point rounding): every
/// warp-issue slot either retired an op (`compute`) or stalled, and
/// each stall cycle is attributed to exactly one cause.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BottleneckBreakdown {
    /// Issue slots that retired an op.
    pub compute: f64,
    /// Stalls on L1 MSHR exhaustion (L1 can't track more misses).
    pub l1_bound: f64,
    /// Memory stalls attributed to the NUBA local links.
    pub local_link_bound: f64,
    /// Memory stalls attributed to NoC serialization.
    pub noc_bound: f64,
    /// Memory stalls attributed to LLC tag/queue service.
    pub llc_queue_bound: f64,
    /// Memory stalls attributed to DRAM bus occupancy.
    pub dram_bound: f64,
}

impl BottleneckBreakdown {
    /// Build the breakdown from raw counters.
    ///
    /// The accounted pool is every warp-issue slot outcome:
    /// `retired + stall_mshr + stall_downstream + stall_outstanding`.
    /// Retired slots are `compute`, MSHR stalls are `l1_bound`, and the
    /// memory-stall pool (downstream-full + outstanding-budget) is
    /// split across local links / NoC / LLC queues / DRAM in proportion
    /// to each component's busy-cycle weight over the same interval —
    /// the component that was occupied the most gets the blame. An
    /// all-idle downstream (zero weights) books the memory pool on the
    /// LLC queues, the first resource a request meets past the L1.
    #[allow(clippy::too_many_arguments)]
    pub fn from_counters(
        retired: u64,
        stall_mshr: u64,
        stall_downstream: u64,
        stall_outstanding: u64,
        local_link_busy: f64,
        noc_cycles: f64,
        llc_grants: f64,
        dram_busy: f64,
    ) -> BottleneckBreakdown {
        let pool = (retired + stall_mshr + stall_downstream + stall_outstanding) as f64;
        if pool == 0.0 {
            // An idle machine is by definition not memory-bound.
            return BottleneckBreakdown {
                compute: 1.0,
                l1_bound: 0.0,
                local_link_bound: 0.0,
                noc_bound: 0.0,
                llc_queue_bound: 0.0,
                dram_bound: 0.0,
            };
        }
        let compute = retired as f64 / pool;
        let l1_bound = stall_mshr as f64 / pool;
        let mem = (stall_downstream + stall_outstanding) as f64 / pool;
        let wsum = local_link_busy + noc_cycles + llc_grants + dram_busy;
        let (local_link_bound, noc_bound, llc_queue_bound, dram_bound) = if wsum > 0.0 {
            (
                mem * local_link_busy / wsum,
                mem * noc_cycles / wsum,
                mem * llc_grants / wsum,
                mem * dram_busy / wsum,
            )
        } else {
            (0.0, 0.0, mem, 0.0)
        };
        BottleneckBreakdown {
            compute,
            l1_bound,
            local_link_bound,
            noc_bound,
            llc_queue_bound,
            dram_bound,
        }
    }

    /// The shares as `(name, share)` pairs, in fixed display order.
    pub fn shares(&self) -> [(&'static str, f64); 6] {
        [
            ("compute", self.compute),
            ("L1-bound", self.l1_bound),
            ("local-link-bound", self.local_link_bound),
            ("NoC-bound", self.noc_bound),
            ("LLC-queue-bound", self.llc_queue_bound),
            ("DRAM-bound", self.dram_bound),
        ]
    }

    /// Sum of all shares (1.0 up to floating-point rounding).
    pub fn sum(&self) -> f64 {
        self.compute
            + self.l1_bound
            + self.local_link_bound
            + self.noc_bound
            + self.llc_queue_bound
            + self.dram_bound
    }

    /// `(name, share)` of the dominant category.
    pub fn dominant(&self) -> (&'static str, f64) {
        self.shares()
            .into_iter()
            .fold(("compute", f64::MIN), |best, cur| {
                if cur.1 > best.1 {
                    cur
                } else {
                    best
                }
            })
    }
}

impl SimReport {
    /// All-zero placeholder report, used for jobs that never produced a
    /// real run (panicked, deadlocked, or rejected by validation).
    /// Every derived rate evaluates to 0.0 on it.
    pub fn empty() -> SimReport {
        SimReport {
            cycles: 0,
            warp_ops: 0,
            read_replies: 0,
            local_misses: 0,
            remote_misses: 0,
            l1_hits: 0,
            llc_hits: 0,
            llc_accesses: 0,
            dram_accesses: 0,
            dram_row_hit_rate: 0.0,
            noc_bytes: 0,
            local_link_bytes: 0,
            replica_fills: 0,
            mdr_replication_rate: 0.0,
            page_faults: 0,
            final_npb: 0.0,
            channel_imbalance: 0.0,
            avg_read_latency: 0.0,
            max_read_latency: 0,
            noc_watts: 0.0,
            stall_downstream: 0,
            stall_mshr: 0,
            stall_outstanding: 0,
            local_link_busy_cycles: 0,
            noc_serialization_cycles: 0.0,
            dram_bus_busy_cycles: 0,
            energy: EnergyReport {
                noc_j: 0.0,
                rest_j: 0.0,
            },
            latency: LatencyReport::default(),
            sampled: None,
        }
    }

    /// Sampling metadata, present only on tier-1 extrapolated reports.
    pub fn sampled_meta(&self) -> Option<&SampledMeta> {
        self.sampled.as_ref()
    }

    /// Whether this report was extrapolated from sampled intervals
    /// (tier 1) rather than fully simulated.
    pub fn is_sampled(&self) -> bool {
        self.sampled.is_some()
    }

    /// The fidelity this report was produced at.
    pub fn fidelity(&self) -> Fidelity {
        self.sampled.map_or(Fidelity::Full, |s| s.fidelity)
    }

    /// IPC (warp ops per cycle) with its confidence interval: the
    /// declared [`ErrorBound`] on sampled reports, exact on full ones.
    pub fn ipc_bound(&self) -> ErrorBound {
        self.sampled
            .map_or_else(|| ErrorBound::exact(self.perf()), |s| s.ipc)
    }

    /// NUBA local-link bytes per cycle with its confidence interval.
    pub fn local_link_bandwidth_bound(&self) -> ErrorBound {
        self.sampled.map_or_else(
            || ErrorBound::exact(self.per_cycle(self.local_link_bytes)),
            |s| s.local_link_bpc,
        )
    }

    /// NoC bytes per cycle with its confidence interval.
    pub fn noc_bandwidth_bound(&self) -> ErrorBound {
        self.sampled.map_or_else(
            || ErrorBound::exact(self.per_cycle(self.noc_bytes)),
            |s| s.noc_bpc,
        )
    }

    /// DRAM bytes per cycle with its confidence interval.
    pub fn dram_bandwidth_bound(&self) -> ErrorBound {
        self.sampled.map_or_else(
            || ErrorBound::exact(self.per_cycle(self.dram_accesses * LINE_BYTES)),
            |s| s.dram_bpc,
        )
    }

    /// The bandwidth-tier bounds as `(name, bound)` pairs, in fixed
    /// display order (local link, NoC, DRAM).
    pub fn tier_bandwidth_bounds(&self) -> [(&'static str, ErrorBound); 3] {
        [
            ("local_link", self.local_link_bandwidth_bound()),
            ("noc", self.noc_bandwidth_bound()),
            ("dram", self.dram_bandwidth_bound()),
        ]
    }

    /// Cycles simulated in detail: `cycles` on full-fidelity runs
    /// (event-driven time skipping is exact, not a fidelity reduction),
    /// the measured detail cost on sampled runs. The numerator of the
    /// ladder's "detail work saved" accounting.
    pub fn detailed_cycles(&self) -> u64 {
        self.sampled.map_or(self.cycles, |s| s.detail_cycles)
    }

    /// Measurement intervals taken (0 on full-fidelity runs).
    pub fn sample_intervals(&self) -> u32 {
        self.sampled.map_or(0, |s| s.intervals)
    }

    fn per_cycle(&self, count: u64) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            count as f64 / self.cycles as f64
        }
    }

    /// Top-down cycle accounting for the whole run: where did the
    /// warp-issue slots go (see [`BottleneckBreakdown::from_counters`]
    /// for the attribution model).
    pub fn bottleneck_breakdown(&self) -> BottleneckBreakdown {
        BottleneckBreakdown::from_counters(
            self.warp_ops,
            self.stall_mshr,
            self.stall_downstream,
            self.stall_outstanding,
            self.local_link_busy_cycles as f64,
            self.noc_serialization_cycles,
            self.llc_accesses as f64,
            self.dram_bus_busy_cycles as f64,
        )
    }

    /// Performance proxy: warp operations per cycle.
    pub fn perf(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.warp_ops as f64 / self.cycles as f64
        }
    }

    /// Fig. 8 metric: read replies per cycle perceived by the SMs.
    pub fn replies_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.read_replies as f64 / self.cycles as f64
        }
    }

    /// Fraction of L1 misses serviced locally (Fig. 9).
    pub fn local_miss_fraction(&self) -> f64 {
        let total = self.local_misses + self.remote_misses;
        if total == 0 {
            0.0
        } else {
            self.local_misses as f64 / total as f64
        }
    }

    /// LLC hit rate.
    pub fn llc_hit_rate(&self) -> f64 {
        if self.llc_accesses == 0 {
            0.0
        } else {
            self.llc_hits as f64 / self.llc_accesses as f64
        }
    }

    /// L1 hit rate.
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.l1_hits + self.local_misses + self.remote_misses;
        if total == 0 {
            0.0
        } else {
            self.l1_hits as f64 / total as f64
        }
    }

    /// Speedup of `self` over `base` (ops/cycle ratio).
    pub fn speedup_over(&self, base: &SimReport) -> f64 {
        let b = base.perf();
        if b == 0.0 {
            0.0
        } else {
            self.perf() / b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::EnergyReport;

    fn report(cycles: u64, warp_ops: u64) -> SimReport {
        SimReport {
            cycles,
            warp_ops,
            read_replies: warp_ops / 2,
            local_misses: 30,
            remote_misses: 10,
            l1_hits: 60,
            llc_hits: 20,
            llc_accesses: 40,
            dram_accesses: 20,
            dram_row_hit_rate: 0.5,
            noc_bytes: 1000,
            local_link_bytes: 2000,
            replica_fills: 0,
            mdr_replication_rate: 0.0,
            page_faults: 5,
            final_npb: 0.95,
            channel_imbalance: 1.2,
            avg_read_latency: 250.0,
            max_read_latency: 900,
            noc_watts: 3.0,
            stall_downstream: 100,
            stall_mshr: 50,
            stall_outstanding: 150,
            local_link_busy_cycles: 400,
            noc_serialization_cycles: 300.0,
            dram_bus_busy_cycles: 200,
            energy: EnergyReport {
                noc_j: 1.0,
                rest_j: 9.0,
            },
            latency: LatencyReport::default(),
            sampled: None,
        }
    }

    #[test]
    fn derived_rates() {
        let r = report(1000, 500);
        assert_eq!(r.perf(), 0.5);
        assert_eq!(r.replies_per_cycle(), 0.25);
        assert_eq!(r.local_miss_fraction(), 0.75);
        assert_eq!(r.llc_hit_rate(), 0.5);
        assert_eq!(r.l1_hit_rate(), 0.6);
    }

    #[test]
    fn speedup_ratio() {
        let base = report(1000, 400);
        let fast = report(1000, 500);
        assert!((fast.speedup_over(&base) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_are_safe() {
        let r = report(0, 0);
        assert_eq!(r.perf(), 0.0);
        assert_eq!(r.replies_per_cycle(), 0.0);
    }

    #[test]
    fn bottleneck_shares_sum_to_one() {
        let r = report(1000, 500);
        let b = r.bottleneck_breakdown();
        assert!((b.sum() - 1.0).abs() < 1e-9, "shares sum to {}", b.sum());
        // pool = 500 + 50 + 100 + 150 = 800.
        assert!((b.compute - 500.0 / 800.0).abs() < 1e-12);
        assert!((b.l1_bound - 50.0 / 800.0).abs() < 1e-12);
        // Memory pool 250/800 split by weights 400:300:40:200 (llc
        // weight is llc_accesses = 40).
        let mem = 250.0 / 800.0;
        let wsum = 400.0 + 300.0 + 40.0 + 200.0;
        assert!((b.local_link_bound - mem * 400.0 / wsum).abs() < 1e-12);
        assert!((b.dram_bound - mem * 200.0 / wsum).abs() < 1e-12);
    }

    #[test]
    fn latency_report_json_is_integral_and_complete() {
        let mut lat = LatencyReport::default();
        lat.tiers[crate::telemetry::TIER_LOCAL].record(40);
        lat.tiers[crate::telemetry::TIER_DRAM].record(400);
        lat.stages[crate::telemetry::STAGE_LLC].record(8);
        let j = lat.json();
        for key in [
            "\"overall\":",
            "\"tiers\":",
            "\"stages\":",
            "\"local\":",
            "\"remote\":",
            "\"dram\":",
            "\"sm_to_slice\":",
            "\"slice_queue\":",
            "\"llc\":",
            "\"dram_reply\":",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        // Merged overall distribution covers both tiers.
        assert_eq!(lat.overall().count(), 2);
        assert_eq!(lat.overall().max(), 400);
        // No floats anywhere: every value is a bare integer.
        assert!(!j.contains('.'), "unexpected float in {j}");
    }

    #[test]
    fn bottleneck_edge_cases_stay_normalized() {
        // Idle machine: everything in compute by definition.
        let b = SimReport::empty().bottleneck_breakdown();
        assert_eq!(b.compute, 1.0);
        assert!((b.sum() - 1.0).abs() < 1e-9);
        // Stalls with an all-idle downstream land on the LLC queues.
        let b = BottleneckBreakdown::from_counters(10, 0, 30, 0, 0.0, 0.0, 0.0, 0.0);
        assert!((b.sum() - 1.0).abs() < 1e-9);
        assert!((b.llc_queue_bound - 0.75).abs() < 1e-12);
        assert_eq!(b.dominant().0, "LLC-queue-bound");
    }

    #[test]
    fn full_report_bounds_are_exact() {
        let r = report(1000, 500);
        assert!(!r.is_sampled());
        assert_eq!(r.fidelity(), Fidelity::Full);
        assert_eq!(r.detailed_cycles(), 1000);
        assert_eq!(r.sample_intervals(), 0);
        let ipc = r.ipc_bound();
        assert_eq!(ipc.half_width, 0.0);
        assert!((ipc.mean - 0.5).abs() < 1e-12);
        let [(_, local), (_, noc), (_, dram)] = r.tier_bandwidth_bounds();
        assert!((local.mean - 2.0).abs() < 1e-12);
        assert!((noc.mean - 1.0).abs() < 1e-12);
        assert!((dram.mean - 20.0 * 128.0 / 1000.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_report_exposes_declared_bounds() {
        let mut r = report(1000, 500);
        r.sampled = Some(SampledMeta {
            fidelity: Fidelity::Sampled {
                intervals: 4,
                detail_cycles: 50,
            },
            intervals: 4,
            detail_cycles: 260,
            measured_cycles: 200,
            ipc: ErrorBound::new(0.5, 0.05),
            local_link_bpc: ErrorBound::new(2.0, 0.4),
            noc_bpc: ErrorBound::new(1.0, 0.2),
            dram_bpc: ErrorBound::new(2.56, 0.5),
        });
        assert!(r.is_sampled());
        assert_eq!(r.fidelity().tier(), 1);
        assert_eq!(r.detailed_cycles(), 260);
        assert_eq!(r.sample_intervals(), 4);
        assert!(r.ipc_bound().contains(0.52));
        assert!(!r.ipc_bound().contains(0.6));
        assert_eq!(r.noc_bandwidth_bound().half_width, 0.2);
    }
}
