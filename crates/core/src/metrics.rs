//! Simulation reports: the metrics the paper's figures are built from.

use crate::energy::EnergyReport;

/// Aggregate result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Simulated cycles.
    pub cycles: u64,
    /// Warp operations completed (memory ops + compute blocks): the
    /// throughput proxy used for "performance" — streams are identical
    /// across architectures, so ops/cycle ratios are speedups.
    pub warp_ops: u64,
    /// Read replies delivered to SMs (Fig. 8's replies/cycle numerator).
    pub read_replies: u64,
    /// L1 misses serviced by the local partition (NUBA; always 0 for
    /// UBA — every UBA miss crosses the NoC). Fig. 9.
    pub local_misses: u64,
    /// L1 misses serviced remotely (over the NoC).
    pub remote_misses: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// LLC slice hits / accesses.
    pub llc_hits: u64,
    /// LLC accesses (tag grants).
    pub llc_accesses: u64,
    /// DRAM line transfers.
    pub dram_accesses: u64,
    /// DRAM row-hit fraction.
    pub dram_row_hit_rate: f64,
    /// Bytes moved through the inter-partition / SM-LLC NoC.
    pub noc_bytes: u64,
    /// Bytes moved through NUBA local links.
    pub local_link_bytes: u64,
    /// Replicated-line insertions (MDR activity).
    pub replica_fills: u64,
    /// Fraction of MDR epochs that chose replication (0 when MDR off).
    pub mdr_replication_rate: f64,
    /// First-touch page faults taken.
    pub page_faults: u64,
    /// Final Normalized Page Balance (Eq. 1).
    pub final_npb: f64,
    /// Max-over-mean DRAM load across channels (1.0 = perfectly
    /// balanced; large values are the first-touch hot-channel pathology
    /// LAB exists to fix).
    pub channel_imbalance: f64,
    /// Mean issue-to-reply latency of read requests, in cycles.
    pub avg_read_latency: f64,
    /// Worst observed issue-to-reply latency.
    pub max_read_latency: u64,
    /// Average NoC power in watts over the run.
    pub noc_watts: f64,
    /// Energy breakdown.
    pub energy: EnergyReport,
}

impl SimReport {
    /// All-zero placeholder report, used for jobs that never produced a
    /// real run (panicked, deadlocked, or rejected by validation).
    /// Every derived rate evaluates to 0.0 on it.
    pub fn empty() -> SimReport {
        SimReport {
            cycles: 0,
            warp_ops: 0,
            read_replies: 0,
            local_misses: 0,
            remote_misses: 0,
            l1_hits: 0,
            llc_hits: 0,
            llc_accesses: 0,
            dram_accesses: 0,
            dram_row_hit_rate: 0.0,
            noc_bytes: 0,
            local_link_bytes: 0,
            replica_fills: 0,
            mdr_replication_rate: 0.0,
            page_faults: 0,
            final_npb: 0.0,
            channel_imbalance: 0.0,
            avg_read_latency: 0.0,
            max_read_latency: 0,
            noc_watts: 0.0,
            energy: EnergyReport {
                noc_j: 0.0,
                rest_j: 0.0,
            },
        }
    }

    /// Performance proxy: warp operations per cycle.
    pub fn perf(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.warp_ops as f64 / self.cycles as f64
        }
    }

    /// Fig. 8 metric: read replies per cycle perceived by the SMs.
    pub fn replies_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.read_replies as f64 / self.cycles as f64
        }
    }

    /// Fraction of L1 misses serviced locally (Fig. 9).
    pub fn local_miss_fraction(&self) -> f64 {
        let total = self.local_misses + self.remote_misses;
        if total == 0 {
            0.0
        } else {
            self.local_misses as f64 / total as f64
        }
    }

    /// LLC hit rate.
    pub fn llc_hit_rate(&self) -> f64 {
        if self.llc_accesses == 0 {
            0.0
        } else {
            self.llc_hits as f64 / self.llc_accesses as f64
        }
    }

    /// L1 hit rate.
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.l1_hits + self.local_misses + self.remote_misses;
        if total == 0 {
            0.0
        } else {
            self.l1_hits as f64 / total as f64
        }
    }

    /// Speedup of `self` over `base` (ops/cycle ratio).
    pub fn speedup_over(&self, base: &SimReport) -> f64 {
        let b = base.perf();
        if b == 0.0 {
            0.0
        } else {
            self.perf() / b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::EnergyReport;

    fn report(cycles: u64, warp_ops: u64) -> SimReport {
        SimReport {
            cycles,
            warp_ops,
            read_replies: warp_ops / 2,
            local_misses: 30,
            remote_misses: 10,
            l1_hits: 60,
            llc_hits: 20,
            llc_accesses: 40,
            dram_accesses: 20,
            dram_row_hit_rate: 0.5,
            noc_bytes: 1000,
            local_link_bytes: 2000,
            replica_fills: 0,
            mdr_replication_rate: 0.0,
            page_faults: 5,
            final_npb: 0.95,
            channel_imbalance: 1.2,
            avg_read_latency: 250.0,
            max_read_latency: 900,
            noc_watts: 3.0,
            energy: EnergyReport {
                noc_j: 1.0,
                rest_j: 9.0,
            },
        }
    }

    #[test]
    fn derived_rates() {
        let r = report(1000, 500);
        assert_eq!(r.perf(), 0.5);
        assert_eq!(r.replies_per_cycle(), 0.25);
        assert_eq!(r.local_miss_fraction(), 0.75);
        assert_eq!(r.llc_hit_rate(), 0.5);
        assert_eq!(r.l1_hit_rate(), 0.6);
    }

    #[test]
    fn speedup_ratio() {
        let base = report(1000, 400);
        let fast = report(1000, 500);
        assert!((fast.speedup_over(&base) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_are_safe() {
        let r = report(0, 0);
        assert_eq!(r.perf(), 0.0);
        assert_eq!(r.replies_per_cycle(), 0.0);
    }
}
