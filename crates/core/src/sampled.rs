//! Tier 1 of the fidelity ladder: SMARTS-style sampled simulation.
//!
//! A sampled run spends cycle-accurate detail on a handful of short
//! *measurement intervals* spread evenly across the window and
//! fast-forwards the gaps between them. The fast-forward engine is the
//! machinery the simulator already has: SM instruction issue is
//! quiesced ([`GpuSimulator::set_issue_paused`]), in-flight requests
//! and page walks drain at full detail, and once the machine is
//! provably idle the event-driven skip loop jumps the remainder of the
//! gap in O(1). Each interval is preceded by a short *detailed warming*
//! prefix (issue resumed, nothing measured) so the pipeline refills
//! before statistics are taken — the SMARTS recipe with functional
//! warming replaced by the session's existing cache/TLB warm-up plus
//! the drain-preserving quiesce (caches and TLBs are never reset, so
//! long-lived state stays warm across gaps).
//!
//! Interval deltas are extrapolated to a full-window [`SimReport`]
//! with integer ratio-of-sums scaling (`u128` intermediate, so the
//! result is exactly reproducible across hosts and worker counts), and
//! the report carries a typed [`ErrorBound`] on IPC and on each
//! bandwidth tier: mean = ratio of sums, half-width = `3σ/√n` over the
//! per-interval rates plus a calibration floor that absorbs the
//! residual bias of short detailed intervals. `fig_fidelity` validates
//! the bounds against tier-2 truth; the CI gate requires the truth
//! inside the bound for every config at fast scale.
//!
//! Fields that are *observations* rather than rates — page faults, the
//! final page balance, latency histograms, energy — are taken from the
//! machine at window end rather than extrapolated: they are facts
//! about what the sampled run actually did, and the ladder declares
//! bounds only on IPC and tier bandwidth.

use nuba_types::{ErrorBound, Fidelity, DEFAULT_SAMPLE_INTERVALS, LINE_BYTES};

use crate::error::SimError;
use crate::gpu::GpuSimulator;
use crate::metrics::{SampledMeta, SimReport};

/// Minimum span (cycles) a measurement interval needs around it; the
/// interval count is clamped so spans never fall below this.
const MIN_SPAN: u64 = 256;

/// Default measurement length per sub-interval as a fraction of the
/// burst span (1/32), with absolute clamps. The lower clamp keeps an
/// interval longer than the memory round-trip so one miss's latency
/// cannot dominate a rate.
const DETAIL_MIN: u64 = 512;
const DETAIL_MAX: u64 = 8192;

/// Minimum detailed-warming prefix before each burst: the pipeline
/// refill after a drained gap takes at least a memory round-trip
/// (~500–700 cycles on the paper baseline); measuring earlier catches
/// the unpause burst (compute-heavy overshoots) or the cold-queue
/// stall (memory-bound undershoots).
const WARM_MIN: u64 = 768;

/// Maximum detailed bursts per window. Each burst pays one warm-up
/// prefix and one drain, so when the requested interval count exceeds
/// this the sub-intervals are grouped into bursts that amortize the
/// overhead — the dominant cost of sampling — while the bursts still
/// spread across the window (one per equal span, at the span head).
const BURSTS: u64 = 4;

/// Whether skipped gaps are walked by the functional-warming engine
/// ([`GpuSimulator::advance_functional`]) at the measured op rate.
/// Off by default: the quiesced drain already keeps caches and TLBs
/// warm across gaps (nothing is reset), and on the paper's workloads
/// the extra functional touches push cache-sensitive benchmarks to
/// their steady state while the tier-2 truth still averages over the
/// cold ramp, biasing the estimate high. The engine stays available
/// for workloads with footprints that churn the LLC between bursts.
const FUNCTIONAL_WARMING: bool = false;

/// Confidence multiplier on the standard error (3σ ≈ 99.7% under
/// normality — the SMARTS convention).
const Z: f64 = 3.0;

/// Relative calibration floor added to every half-width: short
/// detailed intervals carry residual warm-up bias that the interval
/// variance alone does not see. Calibrated against tier-2 truth by
/// `fig_fidelity` (mean |IPC error| stays well under this).
const REL_FLOOR: f64 = 0.12;

/// Absolute floor for near-zero means (e.g. an idle tier's bytes per
/// cycle), so a zero-variance zero-mean bound still contains a tiny
/// nonzero truth.
const ABS_FLOOR: f64 = 1e-3;

/// One measurement interval's counter deltas.
#[derive(Debug, Clone, Copy, Default)]
struct IntervalDelta {
    cycles: u64,
    warp_ops: u64,
    read_replies: u64,
    local_misses: u64,
    remote_misses: u64,
    l1_hits: u64,
    llc_hits: u64,
    llc_accesses: u64,
    dram_accesses: u64,
    noc_bytes: u64,
    local_link_bytes: u64,
    replica_fills: u64,
    stall_downstream: u64,
    stall_mshr: u64,
    stall_outstanding: u64,
    local_link_busy_cycles: u64,
    dram_bus_busy_cycles: u64,
}

impl IntervalDelta {
    fn between(a: &SimReport, b: &SimReport) -> IntervalDelta {
        IntervalDelta {
            cycles: b.cycles - a.cycles,
            warp_ops: b.warp_ops - a.warp_ops,
            read_replies: b.read_replies - a.read_replies,
            local_misses: b.local_misses - a.local_misses,
            remote_misses: b.remote_misses - a.remote_misses,
            l1_hits: b.l1_hits - a.l1_hits,
            llc_hits: b.llc_hits - a.llc_hits,
            llc_accesses: b.llc_accesses - a.llc_accesses,
            dram_accesses: b.dram_accesses - a.dram_accesses,
            noc_bytes: b.noc_bytes - a.noc_bytes,
            local_link_bytes: b.local_link_bytes - a.local_link_bytes,
            replica_fills: b.replica_fills - a.replica_fills,
            stall_downstream: b.stall_downstream - a.stall_downstream,
            stall_mshr: b.stall_mshr - a.stall_mshr,
            stall_outstanding: b.stall_outstanding - a.stall_outstanding,
            local_link_busy_cycles: b.local_link_busy_cycles - a.local_link_busy_cycles,
            dram_bus_busy_cycles: b.dram_bus_busy_cycles - a.dram_bus_busy_cycles,
        }
    }
}

/// Resolved sampling parameters for a window of `cycles` cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplePlan {
    /// Detailed bursts (each pays one warm-up and one drain).
    pub bursts: u32,
    /// Measured sub-intervals per burst; `bursts * per_burst` is the
    /// total measurement-interval count feeding the variance estimate.
    pub per_burst: u32,
    /// Measured (statistics-bearing) cycles per sub-interval.
    pub detail_cycles: u64,
    /// Detailed-warming cycles preceding each burst.
    pub warm_cycles: u64,
}

impl SamplePlan {
    /// Resolve a [`Fidelity::Sampled`] request (`0` fields mean
    /// engine defaults) against a window length. `intervals` is the
    /// total measurement-interval count; the plan groups them into
    /// `BURSTS` bursts so warm-up and drain amortize.
    #[must_use]
    pub fn resolve(intervals: u32, detail_cycles: u64, cycles: u64) -> SamplePlan {
        let want = if intervals > 0 {
            u64::from(intervals)
        } else {
            u64::from(DEFAULT_SAMPLE_INTERVALS)
        };
        let bursts = BURSTS.min(want).min((cycles / MIN_SPAN).max(1));
        let per_burst = want.div_ceil(bursts);
        let span = cycles / bursts;
        let detail = if detail_cycles > 0 {
            detail_cycles.min(span / per_burst.max(1))
        } else {
            (span / 8).clamp(DETAIL_MIN, DETAIL_MAX).min(span)
        };
        let warm = detail
            .max(WARM_MIN)
            .min(span.saturating_sub(detail * per_burst));
        SamplePlan {
            bursts: u32::try_from(bursts).unwrap_or(u32::MAX),
            per_burst: u32::try_from(per_burst).unwrap_or(u32::MAX),
            detail_cycles: detail,
            warm_cycles: warm,
        }
    }

    /// Total measurement intervals the plan takes.
    #[must_use]
    pub fn intervals(&self) -> u32 {
        self.bursts.saturating_mul(self.per_burst)
    }
}

/// Run `cycles` cycles at [`Fidelity::Sampled`] and return the
/// extrapolated report (see the module docs for the schedule and the
/// extrapolation model). The simulator ends at the same cycle a full
/// run would — the window is walked to its end, mostly by skipping —
/// with issue resumed, so the caller can keep using it.
///
/// # Errors
/// [`SimError::NoForwardProgress`] if the watchdog fires during a
/// detailed phase (the quiesced drain re-arms it like any idle span).
pub fn run_sampled(
    gpu: &mut GpuSimulator,
    cycles: u64,
    intervals: u32,
    detail_cycles: u64,
) -> Result<SimReport, SimError> {
    let plan = SamplePlan::resolve(intervals, detail_cycles, cycles);
    let base = gpu.cycle();
    let win_end = base + cycles;
    let detail_before = gpu.detail_steps();
    let b = u64::from(plan.bursts);

    let mut deltas: Vec<IntervalDelta> = Vec::with_capacity(plan.intervals() as usize);
    // Cumulative measured rate: it sets how many warp-ops the
    // functional fast-forward walks through each skipped gap.
    let (mut ops_sum, mut cyc_sum) = (0u64, 0u64);
    let mut last_pause = base;
    for i in 0..b {
        // Exact integer span edges: the last span ends exactly at the
        // window end, whatever the rounding of cycles / bursts.
        let span_start = base + (cycles as u128 * i as u128 / b as u128) as u64;
        // Bursts sit at span heads: the first burst then measures the
        // window's cold start, so the time average the intervals see
        // matches the full run's ramp-inclusive average.
        let target = span_start;

        // Fast-forward: quiesce issue, drain in-flight work at full
        // detail, then the skip engine jumps the idle remainder.
        if gpu.cycle() < target {
            gpu.set_issue_paused(true);
            gpu.advance(target - gpu.cycle())?;
        }
        // SMARTS functional warming through the gap: walk the warp
        // streams at the measured rate so caches, replicas, and the
        // page table reach the state the full run would have here.
        if FUNCTIONAL_WARMING && cyc_sum > 0 {
            let gap = gpu.cycle() - last_pause;
            let ff = (ops_sum as u128 * gap as u128 / cyc_sum as u128) as u64;
            gpu.advance_functional(ff);
        }

        gpu.set_issue_paused(false);
        let warm = plan.warm_cycles.min(win_end - gpu.cycle());
        if warm > 0 {
            gpu.advance(warm)?;
        }
        // Back-to-back measured sub-intervals share the burst's single
        // warm-up; consecutive deltas feed the variance estimate.
        for _ in 0..plan.per_burst {
            let measure = plan.detail_cycles.min(win_end - gpu.cycle());
            if measure == 0 {
                break;
            }
            let before = gpu.report();
            gpu.advance(measure)?;
            let after = gpu.report();
            let delta = IntervalDelta::between(&before, &after);
            ops_sum += delta.warp_ops;
            cyc_sum += delta.cycles;
            deltas.push(delta);
        }
        gpu.set_issue_paused(true);
        last_pause = gpu.cycle();
    }
    // Walk the tail to the window end (drain, then skip) and hand the
    // machine back with issue resumed.
    let rest = win_end - gpu.cycle();
    if rest > 0 {
        gpu.advance(rest)?;
    }
    gpu.set_issue_paused(false);

    let detail_cost = gpu.detail_steps() - detail_before;
    let observed = gpu.report();
    Ok(extrapolate(&observed, &deltas, cycles, plan, detail_cost))
}

/// Ratio-of-sums scaling for a u64 counter: `sum * total / measured`,
/// computed in `u128` so it is exact and deterministic.
fn scale(sum: u64, total: u64, measured: u64) -> u64 {
    if measured == 0 {
        return 0;
    }
    (sum as u128 * total as u128 / measured as u128) as u64
}

/// Bound on a per-cycle rate from per-interval observations: mean is
/// the ratio of sums, half-width is `Z·σ/√n` over the interval rates
/// plus the calibration floor.
fn rate_bound(counts: &[u64], cycles: &[u64]) -> ErrorBound {
    let total_count: u64 = counts.iter().sum();
    let total_cycles: u64 = cycles.iter().sum();
    if total_cycles == 0 {
        return ErrorBound::exact(0.0);
    }
    let mean = total_count as f64 / total_cycles as f64;
    let rates: Vec<f64> = counts
        .iter()
        .zip(cycles)
        .filter(|(_, &c)| c > 0)
        .map(|(&k, &c)| k as f64 / c as f64)
        .collect();
    let n = rates.len();
    let se = if n >= 2 {
        let m = rates.iter().sum::<f64>() / n as f64;
        let var = rates.iter().map(|r| (r - m) * (r - m)).sum::<f64>() / (n - 1) as f64;
        (var / n as f64).sqrt()
    } else {
        0.0
    };
    ErrorBound::new(mean, Z * se + REL_FLOOR * mean + ABS_FLOOR)
}

/// Build the extrapolated full-window report from the interval deltas
/// and the machine's end-of-window observation.
fn extrapolate(
    observed: &SimReport,
    deltas: &[IntervalDelta],
    window_cycles: u64,
    plan: SamplePlan,
    detail_cost: u64,
) -> SimReport {
    let measured: u64 = deltas.iter().map(|d| d.cycles).sum();
    if measured == 0 {
        // Degenerate window (too short to measure): the observation is
        // the whole story and the detail cost is the honest cost.
        let mut r = observed.clone();
        r.sampled = Some(SampledMeta {
            fidelity: Fidelity::Sampled {
                intervals: plan.intervals(),
                detail_cycles: plan.detail_cycles,
            },
            intervals: 0,
            detail_cycles: detail_cost,
            measured_cycles: 0,
            ipc: ErrorBound::exact(r.perf()),
            local_link_bpc: ErrorBound::exact(0.0),
            noc_bpc: ErrorBound::exact(0.0),
            dram_bpc: ErrorBound::exact(0.0),
        });
        return r;
    }

    let cy: Vec<u64> = deltas.iter().map(|d| d.cycles).collect();
    let sum = |f: fn(&IntervalDelta) -> u64| -> u64 { deltas.iter().map(f).sum() };
    let col = |f: fn(&IntervalDelta) -> u64| -> Vec<u64> { deltas.iter().map(f).collect() };

    let ipc = rate_bound(&col(|d| d.warp_ops), &cy);
    let local_link_bpc = rate_bound(&col(|d| d.local_link_bytes), &cy);
    let noc_bpc = rate_bound(&col(|d| d.noc_bytes), &cy);
    let dram_bytes: Vec<u64> = deltas
        .iter()
        .map(|d| d.dram_accesses * LINE_BYTES)
        .collect();
    let dram_bpc = rate_bound(&dram_bytes, &cy);

    let total = window_cycles;
    let s = |f: fn(&IntervalDelta) -> u64| scale(sum(f), total, measured);

    let mut r = observed.clone();
    r.warp_ops = s(|d| d.warp_ops);
    r.read_replies = s(|d| d.read_replies);
    r.local_misses = s(|d| d.local_misses);
    r.remote_misses = s(|d| d.remote_misses);
    r.l1_hits = s(|d| d.l1_hits);
    r.llc_hits = s(|d| d.llc_hits);
    r.llc_accesses = s(|d| d.llc_accesses);
    r.dram_accesses = s(|d| d.dram_accesses);
    r.noc_bytes = s(|d| d.noc_bytes);
    r.local_link_bytes = s(|d| d.local_link_bytes);
    r.replica_fills = s(|d| d.replica_fills);
    r.stall_downstream = s(|d| d.stall_downstream);
    r.stall_mshr = s(|d| d.stall_mshr);
    r.stall_outstanding = s(|d| d.stall_outstanding);
    r.local_link_busy_cycles = s(|d| d.local_link_busy_cycles);
    r.dram_bus_busy_cycles = s(|d| d.dram_bus_busy_cycles);
    // The serialization weight is derived from NoC bytes; rebuild it
    // from the extrapolated byte count at the observed ratio.
    if observed.noc_bytes > 0 {
        r.noc_serialization_cycles =
            observed.noc_serialization_cycles * (r.noc_bytes as f64 / observed.noc_bytes as f64);
    }

    r.sampled = Some(SampledMeta {
        fidelity: Fidelity::Sampled {
            intervals: plan.intervals(),
            detail_cycles: plan.detail_cycles,
        },
        intervals: u32::try_from(deltas.len()).unwrap_or(u32::MAX),
        detail_cycles: detail_cost,
        measured_cycles: measured,
        ipc,
        local_link_bpc,
        noc_bpc,
        dram_bpc,
    });
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use nuba_types::{ArchKind, GpuConfig};
    use nuba_workloads::{BenchmarkId, ScaleProfile, Workload};

    fn small_cfg() -> GpuConfig {
        GpuConfig::paper_baseline(ArchKind::Nuba)
            .with_geometry(8, 8, 4, 8)
            .with_page_fault_latency(200)
    }

    fn warmed(bench: BenchmarkId) -> GpuSimulator {
        let cfg = small_cfg();
        let wl = Workload::build(bench, ScaleProfile::fast(), 8, 1);
        let mut gpu = GpuSimulator::try_new(cfg, &wl).expect("valid config");
        let per_warp = crate::session::default_warm_accesses(gpu.config(), &wl);
        gpu.warm(&wl, per_warp);
        gpu
    }

    #[test]
    fn plan_respects_window_and_requests() {
        let p = SamplePlan::resolve(0, 0, 60_000);
        assert_eq!(p.intervals(), DEFAULT_SAMPLE_INTERVALS);
        assert_eq!(
            u64::from(p.bursts),
            BURSTS.min(u64::from(DEFAULT_SAMPLE_INTERVALS))
        );
        assert!(p.detail_cycles >= DETAIL_MIN);
        assert!(p.warm_cycles >= WARM_MIN);
        // Tiny window: the burst count degrades instead of underflowing
        // and the measurement is clamped to what the window holds.
        let p = SamplePlan::resolve(8, 0, 100);
        assert_eq!(p.bursts, 1);
        assert!(p.detail_cycles <= 100);
        // Explicit request is honored (clamped to the span).
        let p = SamplePlan::resolve(4, 500, 8_000);
        assert_eq!(p.intervals(), 4);
        assert_eq!(p.detail_cycles, 500);
    }

    #[test]
    fn sampled_run_costs_less_detail_and_bounds_truth() {
        let cycles = 20_000;
        let mut full = warmed(BenchmarkId::Sgemm);
        let truth = full.run(cycles).expect("full run");

        let mut gpu = warmed(BenchmarkId::Sgemm);
        let r = run_sampled(&mut gpu, cycles, 0, 0).expect("sampled run");
        let meta = r.sampled_meta().expect("sampled meta");
        assert_eq!(r.cycles, truth.cycles);
        assert!(
            meta.detail_cycles < cycles / 2,
            "detail {}",
            meta.detail_cycles
        );
        assert!(
            r.ipc_bound().contains(truth.perf()),
            "truth {} outside bound [{}, {}]",
            truth.perf(),
            r.ipc_bound().lo(),
            r.ipc_bound().hi()
        );
        assert!(!gpu.issue_paused());
    }

    #[test]
    fn sampled_run_is_deterministic() {
        let run = || {
            let mut gpu = warmed(BenchmarkId::Kmeans);
            run_sampled(&mut gpu, 12_000, 6, 256).expect("sampled run")
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn integer_scaling_is_exact() {
        assert_eq!(scale(10, 1000, 100), 100);
        assert_eq!(scale(0, 1000, 100), 0);
        assert_eq!(scale(7, 1000, 0), 0);
        // Exercises the u128 path: no overflow at u64-scale products.
        assert_eq!(scale(u64::MAX / 2, 2, 1), u64::MAX - 1);
    }
}
