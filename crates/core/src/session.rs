//! Checkpoint/restore sessions: versioned snapshots of a running
//! simulation and a builder-style front door for warm-state reuse.
//!
//! A [`Checkpoint`] captures every piece of dynamic simulator state —
//! warp contexts, cache tags and MSHR files, queue and link occupancy,
//! DRAM bank timing, TLB walks, driver page tables, RNG streams,
//! telemetry rings, and the invariant-registry counters — under a
//! format version and configuration/workload hashes. Restoring it into
//! a simulator rebuilt from the *same* configuration and workload
//! yields a continuation that is byte-identical to the uninterrupted
//! run: same [`SimReport`], same invariant counts,
//! same telemetry exports.
//!
//! [`SimSession`] wraps the common lifecycle (build → warm → fork or
//! run a timed window) so callers — the benchmark runner's warm-state
//! cache in particular — never have to sequence raw constructor calls:
//!
//! ```
//! use nuba_core::SimSession;
//! use nuba_types::{ArchKind, GpuConfig};
//! use nuba_workloads::{BenchmarkId, ScaleProfile, Workload};
//!
//! let cfg = GpuConfig::paper_baseline(ArchKind::Nuba)
//!     .with_geometry(8, 8, 4, 8)
//!     .with_page_fault_latency(200);
//! let wl = Workload::build(BenchmarkId::Sgemm, ScaleProfile::fast(), 8, 1);
//! let mut session = SimSession::builder(cfg, wl).build().unwrap();
//! session.warm();
//! let ckpt = session.checkpoint();
//! let a = session.run_window(2_000).unwrap();
//! let b = SimSession::resume(&ckpt, session.workload().clone())
//!     .unwrap()
//!     .run_window(2_000)
//!     .unwrap();
//! assert_eq!(a, b);
//! ```

use nuba_types::invariant::{self, SiteSeed};
use nuba_types::state::{
    fnv1a, restore_vec, SaveState, StateError, StateReader, StateValue, StateWriter,
    STATE_FORMAT_VERSION,
};
use nuba_types::{Fidelity, GpuConfig};
use nuba_workloads::Workload;

use crate::error::SimError;
use crate::gpu::GpuSimulator;
use crate::metrics::SimReport;

/// Magic number prefixing serialized checkpoints (`"NUBA"`).
const CHECKPOINT_MAGIC: u32 = 0x4E55_4241;

/// A versioned snapshot of a running simulation.
///
/// Produced by [`GpuSimulator::checkpoint`] /
/// [`SimSession::checkpoint`]; consumed by [`GpuSimulator::restore`] /
/// [`SimSession::resume`]. The snapshot records the configuration and
/// workload identity hashes it was taken under and refuses to restore
/// into anything else, so a stale cache entry fails loudly instead of
/// silently diverging.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    version: u32,
    config_hash: u64,
    workload_hash: u64,
    cycle: u64,
    config: GpuConfig,
    invariants: Vec<SiteSeed>,
    payload: Vec<u8>,
}

impl Checkpoint {
    /// Cycle count at which the snapshot was taken.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Hash of the configuration the snapshot was taken under.
    pub fn config_hash(&self) -> u64 {
        self.config_hash
    }

    /// Hash of the workload the snapshot was taken under.
    pub fn workload_hash(&self) -> u64 {
        self.workload_hash
    }

    /// The configuration the snapshot was taken under.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Invariant-registry counters captured at snapshot time.
    pub fn invariant_seeds(&self) -> &[SiteSeed] {
        &self.invariants
    }

    /// Re-seed the process-global invariant registry with the counters
    /// captured at snapshot time, so a resumed run's final invariant
    /// snapshot matches the uninterrupted run's.
    ///
    /// Like [`invariant::reset`], this touches process-global state and
    /// is only meaningful in single-simulation contexts (the simcheck
    /// gate, standalone resumed runs); concurrent matrix jobs share the
    /// registry and must not call it.
    pub fn seed_invariants(&self) {
        invariant::restore_counts(&self.invariants);
    }

    /// Serialize to a self-describing byte buffer (magic, format
    /// version, identity hashes, invariant seeds, state payload, and a
    /// trailing end-to-end [`fnv1a`](nuba_types::state::fnv1a()) checksum
    /// over everything before it).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.put_u32(CHECKPOINT_MAGIC);
        w.put_u32(self.version);
        w.put_u64(self.config_hash);
        w.put_u64(self.workload_hash);
        w.put_u64(self.cycle);
        self.config.save(&mut w);
        self.invariants.put(&mut w);
        self.payload.len().put(&mut w);
        w.put_bytes(&self.payload);
        let checksum = fnv1a(w.bytes());
        w.put_u64(checksum);
        w.into_bytes()
    }

    /// [`fnv1a`](nuba_types::state::fnv1a()) hash of the serialized form
    /// — the content address persistent stores key dedup on.
    pub fn content_hash(&self) -> u64 {
        fnv1a(&self.to_bytes())
    }

    /// Decode a buffer produced by [`to_bytes`](Checkpoint::to_bytes).
    ///
    /// Every failure mode is a typed [`StateError`] — adversarial
    /// bytes (truncations, bit flips, trailing garbage) must never
    /// panic and never decode into wrong state, a contract enforced by
    /// proptests over mutated valid checkpoints.
    ///
    /// # Errors
    /// [`StateError::Corrupt`] on a bad magic number or trailing bytes,
    /// [`StateError::VersionMismatch`] if the buffer was written by an
    /// incompatible format version, [`StateError::UnexpectedEof`] on
    /// truncation, [`StateError::ChecksumMismatch`] when the trailing
    /// content checksum does not cover the bytes present (torn write,
    /// bit flip).
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, StateError> {
        let mut r = StateReader::new(bytes);
        if r.get_u32()? != CHECKPOINT_MAGIC {
            return Err(StateError::Corrupt("not a NUBA checkpoint"));
        }
        let version = r.get_u32()?;
        if version != STATE_FORMAT_VERSION {
            return Err(StateError::VersionMismatch {
                found: version,
                expected: STATE_FORMAT_VERSION,
            });
        }
        // Verify the trailing end-to-end checksum before decoding any
        // structure: a damaged buffer is rejected up front with a
        // checksum error instead of whatever decode error its bytes
        // happen to produce (and payload bytes — opaque to the framing
        // — cannot be silently accepted).
        if bytes.len() < 16 {
            return Err(StateError::UnexpectedEof {
                needed: 16,
                remaining: bytes.len(),
            });
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let expected = u64::from_le_bytes(tail.try_into().expect("8-byte checksum tail"));
        let found = fnv1a(body);
        if expected != found {
            return Err(StateError::ChecksumMismatch { expected, found });
        }
        let mut r = StateReader::new(body);
        let _magic = r.get_u32()?;
        let _version = r.get_u32()?;
        let config_hash = r.get_u64()?;
        let workload_hash = r.get_u64()?;
        let cycle = r.get_u64()?;
        let config = GpuConfig::from_state(&mut r)?;
        let mut invariants = Vec::new();
        restore_vec(&mut r, &mut invariants)?;
        let payload_len = usize::get(&mut r)?;
        let payload = r.take(payload_len)?.to_vec();
        if !r.is_done() {
            return Err(StateError::Corrupt("trailing bytes after checkpoint"));
        }
        Ok(Checkpoint {
            version,
            config_hash,
            workload_hash,
            cycle,
            config,
            invariants,
            payload,
        })
    }
}

impl GpuSimulator {
    /// Snapshot all dynamic state into a versioned [`Checkpoint`].
    ///
    /// Call between cycles (never mid-[`step`](GpuSimulator::step));
    /// the per-cycle scratch buffers are empty then and are excluded
    /// from the format.
    pub fn checkpoint(&self, workload: &Workload) -> Checkpoint {
        let mut w = StateWriter::new();
        self.save_state(&mut w);
        Checkpoint {
            version: STATE_FORMAT_VERSION,
            config_hash: self.config().state_hash(),
            workload_hash: workload.state_hash(),
            cycle: self.cycle(),
            config: self.config().clone(),
            invariants: invariant::report()
                .into_iter()
                .map(|s| SiteSeed {
                    name: s.name.to_string(),
                    file: s.file.to_string(),
                    line: s.line,
                    checks: s.checks,
                    violations: s.violations,
                })
                .collect(),
            payload: w.into_bytes(),
        }
    }

    /// Rebuild a simulator from `cfg`/`workload` and overwrite its
    /// dynamic state from `ckpt`, producing a continuation
    /// byte-identical to the run the snapshot was taken from.
    ///
    /// Does **not** touch the process-global invariant registry; call
    /// [`Checkpoint::seed_invariants`] separately in single-simulation
    /// contexts that compare invariant snapshots.
    ///
    /// # Errors
    /// [`SimError::Checkpoint`] with [`StateError::HashMismatch`] if
    /// `cfg` or `workload` differ from what the snapshot was taken
    /// under, or with a decode error if the payload is corrupt;
    /// [`SimError::InvalidConfig`] if `cfg` itself fails validation.
    pub fn restore(
        cfg: GpuConfig,
        workload: &Workload,
        ckpt: &Checkpoint,
    ) -> Result<GpuSimulator, SimError> {
        if ckpt.version != STATE_FORMAT_VERSION {
            return Err(StateError::VersionMismatch {
                found: ckpt.version,
                expected: STATE_FORMAT_VERSION,
            }
            .into());
        }
        if ckpt.config_hash != cfg.state_hash() {
            return Err(StateError::HashMismatch {
                what: "configuration",
            }
            .into());
        }
        if ckpt.workload_hash != workload.state_hash() {
            return Err(StateError::HashMismatch { what: "workload" }.into());
        }
        let mut gpu = GpuSimulator::try_new(cfg, workload)?;
        let mut r = StateReader::new(&ckpt.payload);
        gpu.restore_state(&mut r)?;
        if !r.is_done() {
            return Err(StateError::Corrupt("trailing bytes in state payload").into());
        }
        Ok(gpu)
    }
}

/// Warm-up depth [`SimSession::warm`] uses when the builder did not
/// override it: enough accesses per warp to touch the workload's whole
/// scaled footprint a few times over, bounded for simulation cost. The
/// benchmark runner keys its warm-state cache on this value.
pub fn default_warm_accesses(cfg: &GpuConfig, workload: &Workload) -> usize {
    let streams = (cfg.num_sms * cfg.sim_active_warps.min(cfg.warps_per_sm).max(1)) as u64;
    let lines = workload.layout().total_pages * (cfg.page_bytes / 128);
    (4 * lines / streams.max(1)).clamp(64, 4096) as usize
}

/// Builder for a [`SimSession`]. Created by [`SimSession::builder`].
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    cfg: GpuConfig,
    workload: Workload,
    warm_accesses: Option<usize>,
    fidelity: Fidelity,
}

impl SessionBuilder {
    /// Override the per-warp warm-up depth (default:
    /// [`default_warm_accesses`]).
    pub fn warm_accesses(mut self, accesses_per_warp: usize) -> SessionBuilder {
        self.warm_accesses = Some(accesses_per_warp);
        self
    }

    /// Set the execution fidelity for [`SimSession::run_window`]
    /// (default [`Fidelity::Full`]). `Fidelity` is a property of how a
    /// run is executed, not of the simulated machine — it never
    /// touches `GpuConfig`, `state_hash`, or the checkpoint format.
    ///
    /// [`Fidelity::Analytical`] does not simulate at all; sessions
    /// clamp it to `Full` (producing an analytical prediction needs
    /// the benchmark's screen profile, which the harness owns).
    pub fn fidelity(mut self, fidelity: Fidelity) -> SessionBuilder {
        self.fidelity = fidelity;
        self
    }

    /// Validate the configuration and assemble the simulator.
    ///
    /// # Errors
    /// [`SimError::InvalidConfig`] if the configuration fails
    /// validation or is inconsistent with the workload.
    pub fn build(self) -> Result<SimSession, SimError> {
        let warm_accesses = self
            .warm_accesses
            .unwrap_or_else(|| default_warm_accesses(&self.cfg, &self.workload));
        let gpu = GpuSimulator::try_new(self.cfg, &self.workload)?;
        Ok(SimSession {
            workload: self.workload,
            warm_accesses,
            fidelity: self.fidelity,
            gpu,
        })
    }
}

/// A simulation lifecycle: configuration + workload + warm-up policy,
/// with checkpoint/restore built in.
///
/// The documented entry point for driving the simulator; see the
/// [module docs](crate::session) for the build → warm → fork pattern
/// the benchmark runner uses to amortize warm-up across a matrix.
pub struct SimSession {
    workload: Workload,
    warm_accesses: usize,
    fidelity: Fidelity,
    gpu: GpuSimulator,
}

impl SimSession {
    /// Start building a session for `cfg` running `workload`.
    pub fn builder(cfg: GpuConfig, workload: Workload) -> SessionBuilder {
        SessionBuilder {
            cfg,
            workload,
            warm_accesses: None,
            fidelity: Fidelity::Full,
        }
    }

    /// Rebuild a session directly from serialized checkpoint bytes —
    /// the resume-from-store path: a persistent checkpoint store hands
    /// back raw verified bytes and this decodes and restores in one
    /// step, with every corruption mode surfacing as a typed error.
    ///
    /// # Errors
    /// Any [`StateError`] from [`Checkpoint::from_bytes`] (wrapped in
    /// [`SimError::Checkpoint`]), or any error from
    /// [`resume`](SimSession::resume).
    pub fn resume_from_bytes(bytes: &[u8], workload: Workload) -> Result<SimSession, SimError> {
        let ckpt = Checkpoint::from_bytes(bytes).map_err(SimError::from)?;
        SimSession::resume(&ckpt, workload)
    }

    /// Rebuild a session from a [`Checkpoint`] taken under the same
    /// configuration and workload.
    ///
    /// # Errors
    /// See [`GpuSimulator::restore`].
    pub fn resume(ckpt: &Checkpoint, workload: Workload) -> Result<SimSession, SimError> {
        let cfg = ckpt.config().clone();
        let warm_accesses = default_warm_accesses(&cfg, &workload);
        let gpu = GpuSimulator::restore(cfg, &workload, ckpt)?;
        Ok(SimSession {
            workload,
            warm_accesses,
            fidelity: Fidelity::Full,
            gpu,
        })
    }

    /// Pre-touch caches, TLBs and page tables with the session's
    /// warm-up depth (untimed; does not advance the cycle counter).
    pub fn warm(&mut self) {
        self.gpu.warm(&self.workload, self.warm_accesses);
    }

    /// Run a timed window of `cycles` cycles at the session's fidelity
    /// and report. [`Fidelity::Full`] (the default) is the exact
    /// cycle-accurate run, byte-identical to a session with no
    /// fidelity set; [`Fidelity::Sampled`] runs the SMARTS-style
    /// sampled schedule (see [`crate::sampled`]) and returns an
    /// extrapolated report carrying error bounds.
    ///
    /// # Errors
    /// [`SimError::NoForwardProgress`] if the watchdog fires during the
    /// window (or during a sampled run's detailed phases).
    pub fn run_window(&mut self, cycles: u64) -> Result<SimReport, SimError> {
        match self.fidelity {
            Fidelity::Sampled {
                intervals,
                detail_cycles,
            } => crate::sampled::run_sampled(&mut self.gpu, cycles, intervals, detail_cycles),
            // Analytical never reaches a session (the harness screens
            // without building one); clamp to the exact run.
            Fidelity::Analytical | Fidelity::Full => self.gpu.run(cycles),
        }
    }

    /// The fidelity [`run_window`](Self::run_window) executes at.
    pub fn fidelity(&self) -> Fidelity {
        self.fidelity
    }

    /// Change the fidelity for subsequent windows (e.g. a runner
    /// escalating a resumed session from sampled to full).
    pub fn set_fidelity(&mut self, fidelity: Fidelity) {
        self.fidelity = fidelity;
    }

    /// Snapshot the current state (see [`GpuSimulator::checkpoint`]).
    pub fn checkpoint(&self) -> Checkpoint {
        self.gpu.checkpoint(&self.workload)
    }

    /// The workload this session runs.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Current simulated cycle.
    pub fn cycle(&self) -> u64 {
        self.gpu.cycle()
    }

    /// The underlying simulator, for metrics/telemetry accessors.
    pub fn gpu(&self) -> &GpuSimulator {
        &self.gpu
    }

    /// Mutable access to the underlying simulator (fault plans,
    /// watchdog budget, manual stepping).
    pub fn gpu_mut(&mut self) -> &mut GpuSimulator {
        &mut self.gpu
    }
}
