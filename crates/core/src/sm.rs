//! The Streaming Multiprocessor model.
//!
//! A throughput-oriented SM: up to `issue_width` warp operations issue
//! per cycle under greedy-then-oldest (GTO-flavoured) warp selection;
//! loads complete out of order; warps stall only on translation, MSHR /
//! outstanding-request limits, or their per-warp MLP cap. Latency that
//! can be hidden by warp switching is hidden — performance is governed
//! by memory bandwidth and queueing, which is exactly the GPU property
//! the paper builds NUBA on ("memory bandwidth in GPU systems is
//! (practically) independent of latency").
//!
//! The L1 (48 KB, write-through, write-no-allocate, 128 MSHRs) lives
//! here; everything below it belongs to the owning simulator.

use std::collections::HashMap;

use nuba_cache::{CacheGeometry, MshrFile, TagArray};
use nuba_types::{AccessKind, LineAddr, MemReply, SmId, WarpId};
use nuba_workloads::{Access, WarpOp, WarpStream};

/// SM sizing parameters.
#[derive(Debug, Clone, Copy)]
pub struct SmParams {
    /// Warp contexts.
    pub warps: usize,
    /// Maximum outstanding loads/atomics per warp before it stalls.
    pub warp_mlp: u32,
    /// Maximum outstanding requests for the whole SM.
    pub max_outstanding: usize,
    /// L1 geometry.
    pub l1_geometry: CacheGeometry,
    /// L1 MSHR entries.
    pub l1_mshrs: usize,
    /// Warp operations issued per cycle (2 schedulers in Table 1).
    pub issue_width: usize,
}

impl SmParams {
    /// Paper Table 1 parameters (48 KB 6-way L1, 64 warps, 2 schedulers).
    pub fn paper() -> SmParams {
        SmParams {
            warps: 64,
            warp_mlp: 2,
            max_outstanding: 64,
            l1_geometry: CacheGeometry::from_capacity(48 * 1024, 6),
            l1_mshrs: 128,
            issue_width: 2,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WarpState {
    Ready,
    /// Busy computing until the given cycle.
    Compute(u64),
    /// Waiting for the MMU.
    WaitTranslation,
    /// At the per-warp MLP limit.
    WaitMem,
}

struct WarpCtx {
    stream: WarpStream,
    state: WarpState,
    outstanding: u32,
    /// A fetched-but-unissued memory op (kept across stall cycles).
    pending: Option<Access>,
}

/// Why a candidate memory op could not issue this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallReason {
    /// Downstream link/NoC port full.
    Downstream,
    /// L1 MSHRs exhausted.
    Mshr,
    /// SM outstanding-request budget exhausted.
    Outstanding,
}

/// Issue statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct SmStats {
    /// Warp operations completed (memory + compute blocks).
    pub completed_ops: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// Memory requests sent downstream.
    pub issued_requests: u64,
    /// Read replies received.
    pub read_replies: u64,
    /// Replies serviced by the local partition.
    pub local_replies: u64,
    /// Replies serviced remotely.
    pub remote_replies: u64,
    /// Stall cycles by cause.
    pub stall_downstream: u64,
    /// Stalls on MSHR exhaustion.
    pub stall_mshr: u64,
    /// Stalls on the outstanding budget.
    pub stall_outstanding: u64,
    /// L1 accesses (for energy).
    pub l1_accesses: u64,
    /// Sum of issue-to-reply latencies over read replies (cycles).
    pub reply_latency_sum: u64,
    /// Maximum observed issue-to-reply latency.
    pub reply_latency_max: u64,
}

/// One SM instance.
pub struct Sm {
    id: SmId,
    params: SmParams,
    warps: Vec<WarpCtx>,
    l1: TagArray,
    l1_mshr: MshrFile<WarpId>,
    outstanding: usize,
    next_warp: usize,
    scanned: usize,
    translation_waiters: HashMap<u64, Vec<WarpId>>,
    /// Recycled waiter vectors for `translation_waiters` entries, so the
    /// translate-miss path stops allocating once warmed up.
    waiter_pool: Vec<Vec<WarpId>>,
    /// Statistics (public for the simulator's report).
    pub stats: SmStats,
}

impl Sm {
    /// Build an SM whose warps run the given streams.
    ///
    /// # Panics
    /// Panics if `streams` is empty or larger than `params.warps`.
    pub fn new(id: SmId, params: SmParams, streams: Vec<WarpStream>) -> Sm {
        assert!(!streams.is_empty() && streams.len() <= params.warps);
        Sm {
            id,
            params,
            warps: streams
                .into_iter()
                .map(|stream| WarpCtx {
                    stream,
                    state: WarpState::Ready,
                    outstanding: 0,
                    pending: None,
                })
                .collect(),
            l1: TagArray::new(params.l1_geometry),
            l1_mshr: MshrFile::new(params.l1_mshrs, 16),
            outstanding: 0,
            next_warp: 0,
            scanned: 0,
            translation_waiters: HashMap::new(),
            waiter_pool: Vec::new(),
            stats: SmStats::default(),
        }
    }

    /// This SM's id.
    pub fn id(&self) -> SmId {
        self.id
    }

    /// Requests currently in flight below the L1.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Reset the per-cycle scan budget; call once per cycle before
    /// [`Sm::poll`].
    pub fn begin_cycle(&mut self) {
        self.scanned = 0;
    }

    /// Pick the next issuable warp and its pending memory access.
    ///
    /// Compute blocks are committed internally (they need no resources);
    /// only memory ops are returned, for the simulator to translate,
    /// route and then commit or stall. Returns `None` when no warp can
    /// issue this cycle.
    pub fn poll(&mut self, now: u64) -> Option<(WarpId, Access)> {
        let n = self.warps.len();
        while self.scanned < n {
            let idx = (self.next_warp + self.scanned) % n;
            self.scanned += 1;
            let w = &mut self.warps[idx];
            // Lazy wake-ups.
            if let WarpState::Compute(until) = w.state {
                if until <= now {
                    w.state = WarpState::Ready;
                    self.stats.completed_ops += 1; // the compute block
                } else {
                    continue;
                }
            }
            if w.state != WarpState::Ready {
                continue;
            }
            let access = match w.pending {
                Some(a) => a,
                None => match w.stream.next_op() {
                    WarpOp::Compute(c) => {
                        w.state = WarpState::Compute(now + c as u64);
                        continue;
                    }
                    WarpOp::Mem(a) => {
                        w.pending = Some(a);
                        a
                    }
                },
            };
            // Greedy: keep the pointer on this warp (GTO flavour).
            self.next_warp = idx;
            // Mark as scanned so a stalled warp is not retried this cycle.
            return Some((WarpId(idx), access));
        }
        None
    }

    /// The warp's op could not issue; it retries next cycle. Advances
    /// warp selection past it.
    pub fn stall(&mut self, warp: WarpId, reason: StallReason) {
        match reason {
            StallReason::Downstream => self.stats.stall_downstream += 1,
            StallReason::Mshr => self.stats.stall_mshr += 1,
            StallReason::Outstanding => self.stats.stall_outstanding += 1,
        }
        self.next_warp = (warp.0 + 1) % self.warps.len();
    }

    /// Whether a new downstream request fits the SM outstanding budget.
    pub fn can_issue_request(&self) -> bool {
        self.outstanding < self.params.max_outstanding
    }

    /// Probe the L1 for a load; on a hit the op completes immediately.
    /// Returns `true` on hit.
    pub fn l1_load_probe(&mut self, warp: WarpId, line: LineAddr, now: u64) -> bool {
        self.stats.l1_accesses += 1;
        if self.l1.probe_and_touch(line, now) {
            self.warps[warp.0].pending = None;
            self.stats.completed_ops += 1;
            self.stats.l1_hits += 1;
            true
        } else {
            false
        }
    }

    /// Whether a load miss on `line` can merge into an existing L1 MSHR
    /// (outstanding fill with merge-list room).
    pub fn mshr_mergeable(&self, line: LineAddr) -> bool {
        self.l1_mshr.can_merge(line)
    }

    /// Whether a fill for `line` is already outstanding (merge-list may
    /// be full).
    pub fn mshr_outstanding(&self, line: LineAddr) -> bool {
        self.l1_mshr.contains(line)
    }

    /// Whether a fresh primary miss can allocate an MSHR.
    pub fn mshr_available(&self) -> bool {
        self.l1_mshr.has_free_entry()
    }

    /// Read the L1 MSHR occupancy high-water mark and re-arm it at the
    /// current occupancy (telemetry samples per-window pressure).
    pub fn take_l1_mshr_peak(&mut self) -> usize {
        self.l1_mshr.take_peak()
    }

    /// Functional warming: consume the warp's next stream op with zero
    /// timing. Compute blocks are consumed silently; memory accesses
    /// are returned for the owning simulator to touch the hierarchy. A
    /// stalled pending access is consumed first so the stream never
    /// skips it. Warp scheduling state, outstanding counts, and
    /// statistics are untouched.
    pub fn warm_pop(&mut self, warp: usize) -> Option<Access> {
        let w = self.warps.get_mut(warp)?;
        if let Some(a) = w.pending.take() {
            return Some(a);
        }
        match w.stream.next_op() {
            WarpOp::Compute(_) => None,
            WarpOp::Mem(a) => Some(a),
        }
    }

    /// Functional warming: probe the L1 and install the line on a miss,
    /// with zero timing and no statistics. Returns whether the line was
    /// already resident.
    pub fn warm_l1_touch(&mut self, line: LineAddr, now: u64) -> bool {
        if self.l1.probe_and_touch(line, now) {
            true
        } else {
            // Write-through, write-no-allocate L1: fills are never dirty.
            let _ = self.l1.insert(line, false, false, now);
            false
        }
    }

    /// Commit a load miss: allocate/merge the MSHR. Returns `true` if a
    /// downstream request must be sent (primary miss).
    ///
    /// # Panics
    /// Panics if the MSHR cannot accept (callers check first).
    pub fn commit_load_miss(&mut self, warp: WarpId, line: LineAddr) -> bool {
        let primary = match self.l1_mshr.allocate(line, warp) {
            Ok(nuba_cache::MshrOutcome::Primary) => true,
            Ok(nuba_cache::MshrOutcome::Secondary) => false,
            Ok(o) | Err((o, _)) => panic!("mshr refused after checks: {o:?}"),
        };
        let w = &mut self.warps[warp.0];
        w.pending = None;
        w.outstanding += 1;
        if w.outstanding >= self.params.warp_mlp {
            w.state = WarpState::WaitMem;
        }
        if primary {
            self.outstanding += 1;
            self.stats.issued_requests += 1;
        }
        primary
    }

    /// Commit a store or atomic going downstream.
    pub fn commit_write(&mut self, warp: WarpId, kind: AccessKind) {
        nuba_types::invariant!("sm_commit_write_is_write", kind.is_write(), "{kind:?}");
        let w = &mut self.warps[warp.0];
        w.pending = None;
        if kind == AccessKind::Atomic {
            w.outstanding += 1;
            if w.outstanding >= self.params.warp_mlp {
                w.state = WarpState::WaitMem;
            }
        }
        self.outstanding += 1;
        self.stats.issued_requests += 1;
        self.stats.l1_accesses += 1;
    }

    /// Block `warp` until the MMU resolves `vpage`.
    pub fn block_translation(&mut self, warp: WarpId, vpage: u64) {
        self.warps[warp.0].state = WarpState::WaitTranslation;
        self.translation_waiters
            .entry(vpage)
            .or_insert_with(|| self.waiter_pool.pop().unwrap_or_default())
            .push(warp);
        self.next_warp = (warp.0 + 1) % self.warps.len();
    }

    /// The MMU resolved `vpage`; wake its waiters (they retry issue).
    pub fn complete_translation(&mut self, vpage: u64) {
        if let Some(mut waiters) = self.translation_waiters.remove(&vpage) {
            for warp in waiters.drain(..) {
                let w = &mut self.warps[warp.0];
                if w.state == WarpState::WaitTranslation {
                    w.state = WarpState::Ready;
                }
            }
            self.waiter_pool.push(waiters);
        }
    }

    /// Deliver a memory reply; `local` says whether it was serviced in
    /// this SM's partition (Fig. 9 accounting).
    pub fn handle_reply(&mut self, reply: MemReply, now: u64, local: bool) {
        nuba_types::invariant!(
            "sm_reply_routed_home",
            reply.sm == self.id,
            "reply for {:?} delivered to {:?}",
            reply.sm,
            self.id
        );
        self.outstanding = self.outstanding.saturating_sub(1);
        if reply.kind.is_read() {
            self.stats.read_replies += 1;
            let lat = now.saturating_sub(reply.issue_cycle);
            self.stats.reply_latency_sum += lat;
            self.stats.reply_latency_max = self.stats.reply_latency_max.max(lat);
        }
        if local {
            self.stats.local_replies += 1;
        } else {
            self.stats.remote_replies += 1;
        }
        match reply.kind {
            AccessKind::Load | AccessKind::LoadReadOnly => {
                // Fill the L1 (write-through caches evict clean lines);
                // streaming loads bypass it.
                if !reply.bypass_l1 {
                    self.l1.insert(reply.line, false, false, now);
                }
                let mut waiters = self.l1_mshr.complete(reply.line);
                for warp in waiters.drain(..) {
                    self.finish_warp_access(warp);
                }
                self.l1_mshr.recycle(waiters);
            }
            AccessKind::Atomic => {
                self.finish_warp_access(reply.warp);
            }
            AccessKind::Store => {
                self.stats.completed_ops += 1;
            }
        }
    }

    fn finish_warp_access(&mut self, warp: WarpId) {
        self.stats.completed_ops += 1;
        let mlp = self.params.warp_mlp;
        let w = &mut self.warps[warp.0];
        w.outstanding = w.outstanding.saturating_sub(1);
        if w.state == WarpState::WaitMem && w.outstanding < mlp {
            w.state = WarpState::Ready;
        }
    }

    /// Drop all L1 contents (kernel boundary).
    pub fn flush_l1(&mut self) {
        let _ = self.l1.flush();
    }

    /// Earliest cycle `>= now` at which this SM does work (see
    /// [`nuba_engine::NextEvent`]): any `Ready` warp issues (or at
    /// least accrues stall accounting) every cycle; a computing warp
    /// wakes at its deadline; translation- and memory-blocked warps
    /// wait on events owned by the MMU and the reply path.
    pub fn next_event_cycle(&self, now: u64) -> Option<u64> {
        let mut next = None;
        for w in &self.warps {
            match w.state {
                WarpState::Ready => return Some(now),
                WarpState::Compute(until) => {
                    if until <= now {
                        return Some(now);
                    }
                    next = nuba_engine::earliest(next, Some(until));
                }
                WarpState::WaitTranslation | WarpState::WaitMem => {}
            }
        }
        next
    }

    /// Catch up the per-cycle scan budget after skipped idle cycles: a
    /// stepped idle cycle ends with every warp scanned and nothing
    /// issued, so `scanned` lands on `warps.len()` (and `next_warp`
    /// stays put). Keeps checkpoints taken after a jump byte-identical
    /// to per-cycle stepping.
    pub fn skip_idle(&mut self) {
        self.scanned = self.warps.len();
    }
}

impl StateValue for WarpState {
    fn put(&self, w: &mut StateWriter) {
        match self {
            WarpState::Ready => w.put_u8(0),
            WarpState::Compute(until) => {
                w.put_u8(1);
                until.put(w);
            }
            WarpState::WaitTranslation => w.put_u8(2),
            WarpState::WaitMem => w.put_u8(3),
        }
    }

    fn get(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        Ok(match r.get_u8()? {
            0 => WarpState::Ready,
            1 => WarpState::Compute(u64::get(r)?),
            2 => WarpState::WaitTranslation,
            3 => WarpState::WaitMem,
            tag => {
                return Err(StateError::BadTag {
                    what: "WarpState",
                    tag,
                })
            }
        })
    }
}

impl SaveState for WarpCtx {
    fn save(&self, w: &mut StateWriter) {
        self.stream.save(w);
        self.state.put(w);
        self.outstanding.put(w);
        self.pending.put(w);
    }

    fn restore(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.stream.restore(r)?;
        self.state = WarpState::get(r)?;
        self.outstanding = u32::get(r)?;
        self.pending = Option::get(r)?;
        Ok(())
    }
}

impl SaveState for Sm {
    fn save(&self, w: &mut StateWriter) {
        // Params and id are configuration; warp contexts, caches, scan
        // cursors and counters are the dynamic state.
        save_items(w, &self.warps);
        self.l1.save(w);
        self.l1_mshr.save(w);
        self.outstanding.put(w);
        self.next_warp.put(w);
        self.scanned.put(w);
        save_map(w, &self.translation_waiters);
        self.stats.completed_ops.put(w);
        self.stats.l1_hits.put(w);
        self.stats.issued_requests.put(w);
        self.stats.read_replies.put(w);
        self.stats.local_replies.put(w);
        self.stats.remote_replies.put(w);
        self.stats.stall_downstream.put(w);
        self.stats.stall_mshr.put(w);
        self.stats.stall_outstanding.put(w);
        self.stats.l1_accesses.put(w);
        self.stats.reply_latency_sum.put(w);
        self.stats.reply_latency_max.put(w);
    }

    fn restore(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        restore_items(r, "SM warp contexts", &mut self.warps)?;
        self.l1.restore(r)?;
        self.l1_mshr.restore(r)?;
        self.outstanding = usize::get(r)?;
        let next_warp = usize::get(r)?;
        if next_warp >= self.warps.len() {
            return Err(StateError::Corrupt("warp selection pointer out of range"));
        }
        self.next_warp = next_warp;
        self.scanned = usize::get(r)?;
        restore_map(r, &mut self.translation_waiters)?;
        // The recycled-vector pool is scratch: waiters popped from it are
        // interchangeable empty vectors, so start it empty.
        self.waiter_pool.clear();
        self.stats.completed_ops = u64::get(r)?;
        self.stats.l1_hits = u64::get(r)?;
        self.stats.issued_requests = u64::get(r)?;
        self.stats.read_replies = u64::get(r)?;
        self.stats.local_replies = u64::get(r)?;
        self.stats.remote_replies = u64::get(r)?;
        self.stats.stall_downstream = u64::get(r)?;
        self.stats.stall_mshr = u64::get(r)?;
        self.stats.stall_outstanding = u64::get(r)?;
        self.stats.l1_accesses = u64::get(r)?;
        self.stats.reply_latency_sum = u64::get(r)?;
        self.stats.reply_latency_max = u64::get(r)?;
        Ok(())
    }
}

use nuba_types::state::{
    restore_items, restore_map, save_items, save_map, SaveState, StateError, StateReader,
    StateValue, StateWriter,
};

#[cfg(test)]
mod tests {
    use super::*;
    use nuba_types::SliceId;
    use nuba_workloads::{BenchmarkId, ScaleProfile, Workload};

    fn sm_with_streams(n: usize) -> Sm {
        let wl = Workload::build(BenchmarkId::Lbm, ScaleProfile::fast(), 64, 9);
        let streams = (0..n).map(|w| wl.stream(SmId(0), WarpId(w))).collect();
        Sm::new(
            SmId(0),
            SmParams {
                warps: n,
                ..SmParams::paper()
            },
            streams,
        )
    }

    fn reply(id: u64, line: u64, kind: AccessKind, warp: usize) -> MemReply {
        MemReply {
            id: nuba_types::ReqId(id),
            sm: SmId(0),
            warp: WarpId(warp),
            line: LineAddr::containing(line),
            kind,
            serviced_by: SliceId(0),
            llc_hit: true,
            issue_cycle: 0,
            replica_fill: false,
            bypass_l1: false,
        }
    }

    #[test]
    fn poll_returns_memory_ops() {
        let mut sm = sm_with_streams(4);
        sm.begin_cycle();
        let got = sm.poll(0);
        assert!(got.is_some());
    }

    #[test]
    fn stalled_warp_not_repolled_same_cycle() {
        let mut sm = sm_with_streams(1);
        sm.begin_cycle();
        let (w, _) = sm.poll(0).expect("one warp");
        sm.stall(w, StallReason::Downstream);
        assert!(sm.poll(0).is_none(), "single stalled warp must not re-poll");
        sm.begin_cycle();
        assert!(sm.poll(1).is_some(), "retries next cycle");
        assert_eq!(sm.stats.stall_downstream, 1);
    }

    #[test]
    fn l1_hit_completes_immediately() {
        let mut sm = sm_with_streams(2);
        let line = LineAddr::containing(0x5000);
        // Warm the L1 via a reply fill.
        sm.commit_load_miss_warmup(line);
        sm.begin_cycle();
        let (w, _) = sm.poll(0).unwrap();
        assert!(sm.l1_load_probe(w, line, 0));
        assert_eq!(sm.stats.l1_hits, 1);
        assert_eq!(sm.stats.completed_ops, 1);
    }

    impl Sm {
        /// Test helper: make `line` resident in the L1.
        fn commit_load_miss_warmup(&mut self, line: LineAddr) {
            self.l1.insert(line, false, false, 0);
        }
    }

    #[test]
    fn mlp_limit_blocks_warp() {
        let mut sm = sm_with_streams(1);
        sm.begin_cycle();
        let (w, _) = sm.poll(0).unwrap();
        assert!(sm.commit_load_miss(w, LineAddr::containing(0x100)));
        // warp_mlp = 2: a second miss parks the warp.
        sm.begin_cycle();
        let polled = sm.poll(1);
        if let Some((w2, _)) = polled {
            sm.commit_load_miss(w2, LineAddr::containing(0x200));
            sm.begin_cycle();
            assert!(sm.poll(2).is_none(), "warp at MLP limit must wait");
        }
        // A reply frees a slot; poll late enough that any interleaved
        // compute block has finished.
        sm.handle_reply(reply(1, 0x100, AccessKind::Load, 0), 3, true);
        sm.begin_cycle();
        assert!(sm.poll(50).is_some());
    }

    #[test]
    fn secondary_miss_sends_nothing() {
        let mut sm = sm_with_streams(2);
        let line = LineAddr::containing(0x900);
        sm.begin_cycle();
        let (w0, _) = sm.poll(0).unwrap();
        assert!(sm.commit_load_miss(w0, line), "primary sends");
        let (w1, _) = sm.poll(0).expect("second warp");
        assert_ne!(w0, w1);
        assert!(!sm.commit_load_miss(w1, line), "secondary merges");
        assert_eq!(sm.outstanding(), 1);
        // One reply wakes both waiters.
        sm.handle_reply(reply(1, 0x900, AccessKind::Load, 0), 5, false);
        assert_eq!(sm.stats.completed_ops, 2);
        assert_eq!(sm.outstanding(), 0);
        assert_eq!(sm.stats.remote_replies, 1);
    }

    #[test]
    fn translation_blocking_and_wake() {
        let mut sm = sm_with_streams(1);
        sm.begin_cycle();
        let (w, a) = sm.poll(0).unwrap();
        let vpage = a.vaddr.0 / 4096;
        sm.block_translation(w, vpage);
        sm.begin_cycle();
        assert!(sm.poll(1).is_none());
        sm.complete_translation(vpage);
        sm.begin_cycle();
        let retried = sm.poll(2).expect("woken warp retries");
        assert_eq!(retried.1, a, "pending op preserved across translation");
    }

    #[test]
    fn store_counts_on_ack() {
        let mut sm = sm_with_streams(1);
        sm.begin_cycle();
        let (w, _) = sm.poll(0).unwrap();
        sm.commit_write(w, AccessKind::Store);
        assert_eq!(sm.outstanding(), 1);
        assert_eq!(sm.stats.completed_ops, 0);
        sm.handle_reply(reply(2, 0x40, AccessKind::Store, 0), 9, true);
        assert_eq!(sm.stats.completed_ops, 1);
        assert_eq!(sm.stats.local_replies, 1);
    }

    #[test]
    fn compute_blocks_complete_later() {
        // Conv3d has gap 12 → every other op is compute.
        let wl = Workload::build(BenchmarkId::Conv3d, ScaleProfile::fast(), 64, 9);
        let streams = vec![wl.stream(SmId(0), WarpId(0))];
        let mut sm = Sm::new(
            SmId(0),
            SmParams {
                warps: 1,
                ..SmParams::paper()
            },
            streams,
        );
        let mut mem_ops = 0;
        for c in 0..200 {
            sm.begin_cycle();
            while let Some((w, a)) = sm.poll(c) {
                // Complete everything as L1 hits for simplicity.
                sm.commit_load_miss_warmup(LineAddr::containing(a.vaddr.0));
                assert!(sm.l1_load_probe(w, LineAddr::containing(a.vaddr.0), c));
                mem_ops += 1;
            }
        }
        assert!(mem_ops > 0);
        // Compute blocks completed too.
        assert!(sm.stats.completed_ops > mem_ops);
    }

    #[test]
    fn outstanding_budget_enforced() {
        let mut sm_params_small = SmParams::paper();
        sm_params_small.max_outstanding = 2;
        let wl = Workload::build(BenchmarkId::Lbm, ScaleProfile::fast(), 64, 9);
        let streams = (0..8).map(|w| wl.stream(SmId(0), WarpId(w))).collect();
        let mut sm = Sm::new(
            SmId(0),
            SmParams {
                warps: 8,
                ..sm_params_small
            },
            streams,
        );
        sm.begin_cycle();
        let mut issued = 0;
        let mut lines = 0x1000u64;
        while let Some((w, a)) = sm.poll(0) {
            if !sm.can_issue_request() {
                sm.stall(w, StallReason::Outstanding);
                continue;
            }
            let _ = a;
            lines += 128;
            sm.commit_load_miss(w, LineAddr::containing(lines));
            issued += 1;
        }
        assert_eq!(issued, 2);
        assert!(!sm.can_issue_request());
    }
}
