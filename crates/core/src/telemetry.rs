//! Cycle-windowed telemetry and request-lifecycle tracing.
//!
//! Three pillars (DESIGN.md §11):
//!
//! 1. **Windowed time-series** — every `window_cycles` the simulator
//!    snapshots its components' cumulative counters and records the
//!    per-window *delta* as a [`TelemetryWindow`] in a pre-sized ring
//!    (the last `ring_windows` windows survive; older ones are
//!    overwritten). All fields are integral so the ring can be embedded
//!    in a `DeadlockReport` without losing its `Eq` derive, and the
//!    per-cycle path stays allocation-free (`steady_alloc` runs with
//!    telemetry enabled).
//! 2. **Stall attribution** — each window (and the whole run, via
//!    `SimReport::bottleneck_breakdown`) can be collapsed into a
//!    top-down cycle-accounting mix; see
//!    [`crate::metrics::BottleneckBreakdown`].
//! 3. **Lifecycle tracing** — one in `trace_sample_period` read
//!    requests (keyed on the monotonic request id, so the sample set is
//!    identical at any worker count) carries timestamps through
//!    issue → slice enqueue → slice grant → DRAM enqueue → reply,
//!    retained as [`TraceRecord`]s and exportable as Chrome
//!    `trace_event` JSON.
//!
//! Everything here is inert by default: with `window_cycles = None` and
//! `trace_sample_period = 0` (the [`TelemetryConfig`] default) no ring
//! is allocated, no sampling happens, and simulator output is
//! bit-identical to a build without this module.

use nuba_types::{AccessKind, Histogram, LineAddr, MemReply, ReqId, SmId, TelemetryConfig, WarpId};

use crate::metrics::BottleneckBreakdown;

/// Concurrently-tracked sampled requests. Sampling is 1-in-K over a
/// bounded outstanding-request population, so a small fixed table
/// suffices; overflow increments [`Telemetry::trace_dropped`] instead
/// of allocating.
const INFLIGHT_CAP: usize = 64;

/// Bandwidth-tier index: reply served by an LLC slice in the SM's own
/// NUBA partition (always false on UBA, whose replies cross the
/// crossbar).
pub const TIER_LOCAL: usize = 0;
/// Bandwidth-tier index: reply served by a remote LLC slice across the
/// NoC (every UBA LLC hit lands here).
pub const TIER_REMOTE: usize = 1;
/// Bandwidth-tier index: reply that missed the LLC and went to DRAM.
pub const TIER_DRAM: usize = 2;
/// Number of bandwidth tiers.
pub const NUM_TIERS: usize = 3;
/// Stable tier labels for reports and exports, indexed by `TIER_*`.
pub const TIER_NAMES: [&str; NUM_TIERS] = ["local", "remote", "dram"];

/// Stage index: SM issue → LLC slice enqueue (sampled requests only).
pub const STAGE_SM_TO_SLICE: usize = 0;
/// Stage index: slice enqueue → arbiter grant into the tag pipe.
pub const STAGE_SLICE_QUEUE: usize = 1;
/// Stage index: grant → DRAM enqueue on a miss, or grant → reply on a
/// hit (LLC service time).
pub const STAGE_LLC: usize = 2;
/// Stage index: DRAM enqueue → reply delivery (misses only).
pub const STAGE_DRAM_REPLY: usize = 3;
/// Number of lifecycle stages.
pub const NUM_STAGES: usize = 4;
/// Stable stage labels for reports and exports, indexed by `STAGE_*`.
pub const STAGE_NAMES: [&str; NUM_STAGES] = ["sm_to_slice", "slice_queue", "llc", "dram_reply"];

/// One flushed telemetry window: per-interval deltas of the machine's
/// cumulative counters plus a few instantaneous gauges and re-armed
/// high-water marks sampled at the flush edge.
///
/// All fields are integral (`u64`) so `DeadlockReport` keeps `Eq`;
/// rates are derived on demand ([`TelemetryWindow::llc_hit_rate`] and
/// friends).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TelemetryWindow {
    /// First cycle covered by this window (inclusive).
    pub start_cycle: u64,
    /// One past the last cycle covered (exclusive).
    pub end_cycle: u64,
    /// Memory requests issued by all SMs (delta).
    pub issued_requests: u64,
    /// Warp ops retired by all SMs (delta).
    pub retired_ops: u64,
    /// Read replies delivered to all SMs (delta).
    pub read_replies: u64,
    /// L1 accesses across all SMs (delta).
    pub l1_accesses: u64,
    /// L1 hits across all SMs (delta).
    pub l1_hits: u64,
    /// Warp-issue slots lost to a full downstream link/port (delta).
    pub stall_downstream: u64,
    /// Warp-issue slots lost to L1 MSHR exhaustion (delta).
    pub stall_mshr: u64,
    /// Warp-issue slots lost to the outstanding-request budget (delta).
    pub stall_outstanding: u64,
    /// LLC tag-pipe grants across all slices (delta).
    pub llc_accesses: u64,
    /// LLC hits across all slices (delta).
    pub llc_hits: u64,
    /// Requests queued in local-request (LMR) queues at the flush edge
    /// (instantaneous, summed over slices).
    pub lmr_queued: u64,
    /// Requests queued in remote-request (RMR) queues at the flush edge
    /// (instantaneous, summed over slices).
    pub rmr_queued: u64,
    /// Highest single-slice LLC MSHR occupancy within the window.
    pub slice_mshr_peak: u64,
    /// Highest single-SM L1 MSHR occupancy within the window.
    pub sm_mshr_peak: u64,
    /// DRAM row-buffer hits across all channels (delta).
    pub dram_row_hits: u64,
    /// DRAM row-buffer probes across all channels (delta).
    pub dram_row_accesses: u64,
    /// DRAM data-bus busy cycles across all channels (delta).
    pub dram_bus_busy: u64,
    /// Bytes delivered by the request + reply NoCs (delta).
    pub noc_bytes: u64,
    /// Highest packets-in-fabric count over both NoCs in the window.
    pub noc_peak_in_flight: u64,
    /// Bytes serialized over the NUBA local links (delta; zero on UBA).
    pub local_link_bytes: u64,
    /// Local-link busy cycles, both directions (delta; zero on UBA).
    pub local_link_busy: u64,
    /// Sends refused by full local-link queues (delta; zero on UBA).
    pub local_link_rejects: u64,
    /// Page-table walks started (delta).
    pub tlb_walks: u64,
    /// Highest concurrently-outstanding translation count in the window.
    pub tlb_peak_outstanding: u64,
    /// Median end-to-end read latency of replies completed within the
    /// window (0 unless `TelemetryConfig::window_latency` is on).
    pub lat_p50: u64,
    /// 95th-percentile read latency within the window.
    pub lat_p95: u64,
    /// 99th-percentile read latency within the window.
    pub lat_p99: u64,
    /// Largest read latency completed within the window.
    pub lat_max: u64,
}

impl TelemetryWindow {
    /// Cycles covered by this window.
    pub fn cycles(&self) -> u64 {
        self.end_cycle - self.start_cycle
    }

    /// Read replies per cycle within the window.
    pub fn replies_per_cycle(&self) -> f64 {
        if self.cycles() == 0 {
            0.0
        } else {
            self.read_replies as f64 / self.cycles() as f64
        }
    }

    /// LLC hit rate within the window (0 when idle).
    pub fn llc_hit_rate(&self) -> f64 {
        if self.llc_accesses == 0 {
            0.0
        } else {
            self.llc_hits as f64 / self.llc_accesses as f64
        }
    }

    /// DRAM row-buffer hit rate within the window (0 when idle).
    pub fn dram_row_hit_rate(&self) -> f64 {
        if self.dram_row_accesses == 0 {
            0.0
        } else {
            self.dram_row_hits as f64 / self.dram_row_accesses as f64
        }
    }

    /// Top-down cycle-accounting mix for this window, using the same
    /// attribution model as `SimReport::bottleneck_breakdown`.
    /// `noc_port_bytes_per_cycle` converts NoC bytes into serialization
    /// cycles so the memory-bound split weights are commensurable.
    pub fn bottleneck_mix(&self, noc_port_bytes_per_cycle: f64) -> BottleneckBreakdown {
        let noc_cycles = if noc_port_bytes_per_cycle > 0.0 {
            self.noc_bytes as f64 / noc_port_bytes_per_cycle
        } else {
            0.0
        };
        BottleneckBreakdown::from_counters(
            self.retired_ops,
            self.stall_mshr,
            self.stall_downstream,
            self.stall_outstanding,
            self.local_link_busy as f64,
            noc_cycles,
            self.llc_accesses as f64,
            self.dram_bus_busy as f64,
        )
    }

    /// One JSONL line for the `NUBA_TIMESERIES` export. Integral fields
    /// are emitted raw; the derived rates use fixed six-digit precision
    /// so output is byte-stable across platforms and worker counts.
    pub fn jsonl_line(&self, label: &str, job: usize, window: usize) -> String {
        format!(
            concat!(
                "{{\"job\":\"{}\",\"job_index\":{},\"window\":{},",
                "\"start\":{},\"end\":{},",
                "\"issued\":{},\"retired\":{},\"replies\":{},",
                "\"l1_accesses\":{},\"l1_hits\":{},",
                "\"stall_downstream\":{},\"stall_mshr\":{},\"stall_outstanding\":{},",
                "\"llc_accesses\":{},\"llc_hits\":{},",
                "\"lmr_queued\":{},\"rmr_queued\":{},",
                "\"slice_mshr_peak\":{},\"sm_mshr_peak\":{},",
                "\"dram_row_hits\":{},\"dram_row_accesses\":{},\"dram_bus_busy\":{},",
                "\"noc_bytes\":{},\"noc_peak_in_flight\":{},",
                "\"local_link_bytes\":{},\"local_link_busy\":{},\"local_link_rejects\":{},",
                "\"tlb_walks\":{},\"tlb_peak_outstanding\":{},",
                "\"lat_p50\":{},\"lat_p95\":{},\"lat_p99\":{},\"lat_max\":{},",
                "\"replies_per_cycle\":{:.6},\"llc_hit_rate\":{:.6},\"dram_row_hit_rate\":{:.6}}}"
            ),
            escape_json(label),
            job,
            window,
            self.start_cycle,
            self.end_cycle,
            self.issued_requests,
            self.retired_ops,
            self.read_replies,
            self.l1_accesses,
            self.l1_hits,
            self.stall_downstream,
            self.stall_mshr,
            self.stall_outstanding,
            self.llc_accesses,
            self.llc_hits,
            self.lmr_queued,
            self.rmr_queued,
            self.slice_mshr_peak,
            self.sm_mshr_peak,
            self.dram_row_hits,
            self.dram_row_accesses,
            self.dram_bus_busy,
            self.noc_bytes,
            self.noc_peak_in_flight,
            self.local_link_bytes,
            self.local_link_busy,
            self.local_link_rejects,
            self.tlb_walks,
            self.tlb_peak_outstanding,
            self.lat_p50,
            self.lat_p95,
            self.lat_p99,
            self.lat_max,
            self.replies_per_cycle(),
            self.llc_hit_rate(),
            self.dram_row_hit_rate(),
        )
    }
}

/// Cumulative machine counters snapshotted at a window flush; the
/// sampler diffs consecutive snapshots into [`TelemetryWindow`] deltas.
#[derive(Debug, Clone, Copy, Default)]
pub struct WindowTotals {
    /// Memory requests issued by all SMs.
    pub issued_requests: u64,
    /// Warp ops retired by all SMs.
    pub retired_ops: u64,
    /// Read replies delivered to all SMs.
    pub read_replies: u64,
    /// L1 accesses across all SMs.
    pub l1_accesses: u64,
    /// L1 hits across all SMs.
    pub l1_hits: u64,
    /// Downstream-full issue stalls across all SMs.
    pub stall_downstream: u64,
    /// L1-MSHR issue stalls across all SMs.
    pub stall_mshr: u64,
    /// Outstanding-budget issue stalls across all SMs.
    pub stall_outstanding: u64,
    /// LLC tag-pipe grants across all slices.
    pub llc_accesses: u64,
    /// LLC hits across all slices.
    pub llc_hits: u64,
    /// DRAM row-buffer hits across all channels.
    pub dram_row_hits: u64,
    /// DRAM row-buffer probes across all channels.
    pub dram_row_accesses: u64,
    /// DRAM data-bus busy cycles across all channels.
    pub dram_bus_busy: u64,
    /// Bytes delivered by the request + reply NoCs.
    pub noc_bytes: u64,
    /// Bytes serialized over the NUBA local links.
    pub local_link_bytes: u64,
    /// Local-link busy cycles, both directions.
    pub local_link_busy: u64,
    /// Sends refused by full local-link queues.
    pub local_link_rejects: u64,
    /// Page-table walks started.
    pub tlb_walks: u64,
}

/// Instantaneous gauges and re-armed high-water marks sampled at the
/// flush edge (recorded as-is, not diffed).
#[derive(Debug, Clone, Copy, Default)]
pub struct WindowGauges {
    /// Requests queued in LMR queues, summed over slices.
    pub lmr_queued: u64,
    /// Requests queued in RMR queues, summed over slices.
    pub rmr_queued: u64,
    /// Highest single-slice LLC MSHR occupancy since the last flush.
    pub slice_mshr_peak: u64,
    /// Highest single-SM L1 MSHR occupancy since the last flush.
    pub sm_mshr_peak: u64,
    /// Highest packets-in-fabric count over both NoCs since the last
    /// flush.
    pub noc_peak_in_flight: u64,
    /// Highest concurrently-outstanding translation count since the
    /// last flush.
    pub tlb_peak_outstanding: u64,
}

/// The lifecycle of one sampled read request, as simulation-cycle
/// timestamps. Stages a request never reached (e.g. DRAM on an LLC
/// hit) stay `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// The request id (monotonic issue order).
    pub id: u64,
    /// Issuing SM.
    pub sm: usize,
    /// Issuing warp.
    pub warp: usize,
    /// Line address accessed.
    pub line: u64,
    /// Cycle the SM issued the request (== the L1 miss cycle: requests
    /// are only created for accesses that missed the L1 this cycle).
    pub issue_cycle: u64,
    /// Cycle the request entered an LLC slice queue.
    pub slice_enqueue: Option<u64>,
    /// Cycle the slice arbiter granted the request into the tag pipe.
    pub slice_grant: Option<u64>,
    /// Cycle the miss was enqueued at a memory controller.
    pub dram_enqueue: Option<u64>,
    /// Cycle the reply reached the SM.
    pub reply_cycle: Option<u64>,
}

impl TraceRecord {
    /// Chrome `trace_event` objects for this (completed) record, one
    /// complete-event (`"ph":"X"`) per lifecycle span. Timestamps are
    /// simulation cycles reported in the `ts`/`dur` microsecond fields:
    /// one cycle renders as one microsecond in the viewer.
    pub fn trace_events(&self, pid: usize, label: &str) -> Vec<String> {
        let Some(reply) = self.reply_cycle else {
            return Vec::new();
        };
        let cat = escape_json(label);
        let mut events = Vec::new();
        let mut span = |name: &str, from: u64, to: u64| {
            events.push(format!(
                concat!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",",
                    "\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},",
                    "\"args\":{{\"req\":{},\"warp\":{},\"line\":\"0x{:x}\"}}}}"
                ),
                name,
                cat,
                from,
                to.saturating_sub(from),
                pid,
                self.sm,
                self.id,
                self.warp,
                self.line,
            ));
        };
        span("request", self.issue_cycle, reply);
        if let Some(enq) = self.slice_enqueue {
            span("sm-to-slice", self.issue_cycle, enq);
            let grant = self.slice_grant.unwrap_or(reply);
            span("slice-queue", enq, grant);
            if let Some(dram) = self.dram_enqueue {
                span("llc-miss", grant, dram);
                span("dram-and-reply", dram, reply);
            } else {
                span("llc-and-reply", grant, reply);
            }
        }
        events
    }
}

/// Escape a string for embedding in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The telemetry sampler: a ring of recent [`TelemetryWindow`]s plus
/// the sampled-request lifecycle tables. All storage is allocated at
/// construction; recording never allocates.
#[derive(Debug, Clone)]
pub struct Telemetry {
    /// Window length in cycles; `0` disables windowed sampling.
    window_cycles: u64,
    /// Pre-sized ring of the most recent windows.
    ring: Vec<TelemetryWindow>,
    ring_cap: usize,
    /// Next ring slot to (over)write.
    head: usize,
    /// Filled slots, saturating at `ring_cap`.
    len: usize,
    /// Cumulative counters at the previous flush.
    prev: WindowTotals,
    /// First cycle of the window currently accumulating.
    window_start: u64,
    /// 1-in-K sampling period; `0` disables tracing.
    sample_period: u64,
    /// Sampled requests still in flight (bounded scan table).
    inflight: Vec<TraceRecord>,
    /// Completed lifecycle records, capped at `trace_capacity`.
    done: Vec<TraceRecord>,
    done_cap: usize,
    /// Sampled requests not recorded because a table was full.
    dropped: u64,
    /// End-to-end read latency per bandwidth tier (every read reply,
    /// not just sampled ones). Always on: fixed-size, zero-alloc.
    tier_hist: [Histogram; NUM_TIERS],
    /// Per-stage queueing/service delay, fed from completed sampled
    /// lifecycle records (requires tracing to be populated).
    stage_hist: [Histogram; NUM_STAGES],
    /// Whether windows stamp per-window latency percentiles.
    window_lat: bool,
    /// Read latencies observed since the last window flush
    /// (reset at each flush; only recorded when `window_lat`).
    window_hist: Histogram,
}

impl Telemetry {
    /// Build a sampler for `cfg`, pre-sizing every table. With the
    /// default (inert) config this allocates nothing.
    pub fn new(cfg: &TelemetryConfig) -> Telemetry {
        let window_cycles = cfg.window_cycles.unwrap_or(0);
        let ring_cap = if window_cycles > 0 {
            cfg.ring_windows
        } else {
            0
        };
        let (inflight_cap, done_cap) = if cfg.trace_sample_period > 0 {
            (INFLIGHT_CAP, cfg.trace_capacity)
        } else {
            (0, 0)
        };
        Telemetry {
            window_cycles,
            ring: vec![TelemetryWindow::default(); ring_cap],
            ring_cap,
            head: 0,
            len: 0,
            prev: WindowTotals::default(),
            window_start: 0,
            sample_period: cfg.trace_sample_period,
            inflight: Vec::with_capacity(inflight_cap),
            done: Vec::with_capacity(done_cap),
            done_cap,
            dropped: 0,
            tier_hist: [Histogram::new(); NUM_TIERS],
            stage_hist: [Histogram::new(); NUM_STAGES],
            window_lat: cfg.window_latency,
            window_hist: Histogram::new(),
        }
    }

    /// Whether windowed sampling is enabled.
    pub fn windowing(&self) -> bool {
        self.window_cycles > 0 && self.ring_cap > 0
    }

    /// Whether lifecycle tracing is enabled.
    pub fn tracing(&self) -> bool {
        self.sample_period > 0
    }

    /// Whether a window flush is due once the simulator finishes the
    /// cycle ending at `cycle_after` (exclusive).
    pub fn window_due(&self, cycle_after: u64) -> bool {
        self.windowing() && cycle_after.is_multiple_of(self.window_cycles)
    }

    /// Window length in cycles when windowed sampling is enabled. The
    /// time-skipping run loop uses this to enumerate every boundary a
    /// jump crosses so each window is flushed exactly as it would be
    /// under per-cycle stepping.
    pub fn window_stride(&self) -> Option<u64> {
        self.windowing().then_some(self.window_cycles)
    }

    /// Record the window ending at `end_cycle` from the current
    /// cumulative `totals` (diffed against the previous flush) and the
    /// flush-edge `gauges`. Overwrites the oldest slot when the ring is
    /// full; never allocates.
    pub fn flush_window(&mut self, end_cycle: u64, totals: WindowTotals, gauges: WindowGauges) {
        debug_assert!(self.windowing());
        let lat = (self.window_lat && !self.window_hist.is_empty()).then(|| {
            (
                self.window_hist.quantile(1, 2),
                self.window_hist.quantile(19, 20),
                self.window_hist.quantile(99, 100),
                self.window_hist.max(),
            )
        });
        let (lat_p50, lat_p95, lat_p99, lat_max) = lat.unwrap_or((0, 0, 0, 0));
        self.window_hist.reset();
        let p = &self.prev;
        let w = TelemetryWindow {
            start_cycle: self.window_start,
            end_cycle,
            issued_requests: totals.issued_requests - p.issued_requests,
            retired_ops: totals.retired_ops - p.retired_ops,
            read_replies: totals.read_replies - p.read_replies,
            l1_accesses: totals.l1_accesses - p.l1_accesses,
            l1_hits: totals.l1_hits - p.l1_hits,
            stall_downstream: totals.stall_downstream - p.stall_downstream,
            stall_mshr: totals.stall_mshr - p.stall_mshr,
            stall_outstanding: totals.stall_outstanding - p.stall_outstanding,
            llc_accesses: totals.llc_accesses - p.llc_accesses,
            llc_hits: totals.llc_hits - p.llc_hits,
            lmr_queued: gauges.lmr_queued,
            rmr_queued: gauges.rmr_queued,
            slice_mshr_peak: gauges.slice_mshr_peak,
            sm_mshr_peak: gauges.sm_mshr_peak,
            dram_row_hits: totals.dram_row_hits - p.dram_row_hits,
            dram_row_accesses: totals.dram_row_accesses - p.dram_row_accesses,
            dram_bus_busy: totals.dram_bus_busy - p.dram_bus_busy,
            noc_bytes: totals.noc_bytes - p.noc_bytes,
            noc_peak_in_flight: gauges.noc_peak_in_flight,
            local_link_bytes: totals.local_link_bytes - p.local_link_bytes,
            local_link_busy: totals.local_link_busy - p.local_link_busy,
            local_link_rejects: totals.local_link_rejects - p.local_link_rejects,
            tlb_walks: totals.tlb_walks - p.tlb_walks,
            tlb_peak_outstanding: gauges.tlb_peak_outstanding,
            lat_p50,
            lat_p95,
            lat_p99,
            lat_max,
        };
        self.ring[self.head] = w;
        self.head = (self.head + 1) % self.ring_cap;
        self.len = (self.len + 1).min(self.ring_cap);
        self.prev = totals;
        self.window_start = end_cycle;
    }

    /// Retained windows in chronological order (oldest first).
    pub fn windows(&self) -> impl Iterator<Item = &TelemetryWindow> + '_ {
        let (older, newer) = if self.len < self.ring_cap {
            (&self.ring[0..self.len], &self.ring[0..0])
        } else {
            (&self.ring[self.head..], &self.ring[..self.head])
        };
        older.iter().chain(newer.iter())
    }

    /// Retained windows as an owned vector (error paths and exports;
    /// allocates, so never called from `step`).
    pub fn windows_vec(&self) -> Vec<TelemetryWindow> {
        self.windows().copied().collect()
    }

    /// Start tracking `id` if tracing is on, the access is a read, and
    /// the id lands on the deterministic 1-in-K sample grid.
    #[allow(clippy::too_many_arguments)]
    pub fn maybe_sample(
        &mut self,
        id: ReqId,
        sm: SmId,
        warp: WarpId,
        line: LineAddr,
        kind: AccessKind,
        now: u64,
    ) {
        if self.sample_period == 0 || !kind.is_read() || !id.0.is_multiple_of(self.sample_period) {
            return;
        }
        if self.inflight.len() == self.inflight.capacity() {
            self.dropped += 1;
            return;
        }
        self.inflight.push(TraceRecord {
            id: id.0,
            sm: sm.0,
            warp: warp.0,
            line: line.0,
            issue_cycle: now,
            slice_enqueue: None,
            slice_grant: None,
            dram_enqueue: None,
            reply_cycle: None,
        });
    }

    /// Mark `id` as entering an LLC slice queue (first enqueue wins:
    /// a replica-miss forward keeps its original enqueue timestamp).
    pub fn note_slice_enqueue(&mut self, id: ReqId, now: u64) {
        if let Some(r) = self.inflight.iter_mut().find(|r| r.id == id.0) {
            r.slice_enqueue.get_or_insert(now);
        }
    }

    /// Mark `id` as granted into a slice tag pipe.
    pub fn note_slice_grant(&mut self, id: ReqId, now: u64) {
        if let Some(r) = self.inflight.iter_mut().find(|r| r.id == id.0) {
            r.slice_grant.get_or_insert(now);
        }
    }

    /// Mark every sampled request waiting on `line` as reaching DRAM
    /// (the controller works on merged line fills, not request ids).
    pub fn note_dram(&mut self, line: LineAddr, now: u64) {
        for r in self
            .inflight
            .iter_mut()
            .filter(|r| r.line == line.0 && r.dram_enqueue.is_none())
        {
            r.dram_enqueue = Some(now);
        }
    }

    /// Complete the lifecycle of `id`: stamp the reply cycle and move
    /// the record to the retained set (or count it dropped when the
    /// retained set is full).
    pub fn note_reply(&mut self, id: ReqId, now: u64) {
        if self.sample_period == 0 {
            return;
        }
        let Some(pos) = self.inflight.iter().position(|r| r.id == id.0) else {
            return;
        };
        let mut rec = self.inflight.swap_remove(pos);
        rec.reply_cycle = Some(now);
        self.record_stages(&rec, now);
        if self.done.len() < self.done_cap {
            self.done.push(rec);
        } else {
            self.dropped += 1;
        }
    }

    /// Fold a completed sampled lifecycle into the per-stage delay
    /// histograms. Stages the request never reached contribute nothing.
    fn record_stages(&mut self, rec: &TraceRecord, reply: u64) {
        let Some(enq) = rec.slice_enqueue else {
            return;
        };
        self.stage_hist[STAGE_SM_TO_SLICE].record(enq.saturating_sub(rec.issue_cycle));
        let grant = rec.slice_grant.unwrap_or(reply);
        self.stage_hist[STAGE_SLICE_QUEUE].record(grant.saturating_sub(enq));
        if let Some(dram) = rec.dram_enqueue {
            self.stage_hist[STAGE_LLC].record(dram.saturating_sub(grant));
            self.stage_hist[STAGE_DRAM_REPLY].record(reply.saturating_sub(dram));
        } else {
            self.stage_hist[STAGE_LLC].record(reply.saturating_sub(grant));
        }
    }

    /// Record one end-to-end read latency against its bandwidth tier
    /// (and the current window's histogram when per-window percentiles
    /// are enabled). Called for every read reply; never allocates.
    #[inline]
    pub fn record_read_latency(&mut self, tier: usize, lat: u64) {
        self.tier_hist[tier].record(lat);
        if self.window_lat {
            self.window_hist.record(lat);
        }
    }

    /// Classify a delivered reply into its bandwidth tier — DRAM when
    /// the LLC missed, otherwise local vs remote by whether the serving
    /// slice sat in the SM's own partition — and record its end-to-end
    /// latency. Writes carry no SM-observed latency and are skipped.
    #[inline]
    pub fn record_read_latency_of(&mut self, reply: &MemReply, local: bool, now: u64) {
        if !reply.kind.is_read() {
            return;
        }
        let tier = if !reply.llc_hit {
            TIER_DRAM
        } else if local {
            TIER_LOCAL
        } else {
            TIER_REMOTE
        };
        self.record_read_latency(tier, now.saturating_sub(reply.issue_cycle));
    }

    /// End-to-end read-latency histograms indexed by `TIER_*`.
    pub fn tier_histograms(&self) -> &[Histogram; NUM_TIERS] {
        &self.tier_hist
    }

    /// Per-stage delay histograms indexed by `STAGE_*` (populated only
    /// when lifecycle tracing samples requests).
    pub fn stage_histograms(&self) -> &[Histogram; NUM_STAGES] {
        &self.stage_hist
    }

    /// Completed lifecycle records, in completion order.
    pub fn trace_records(&self) -> &[TraceRecord] {
        &self.done
    }

    /// Sampled requests that could not be recorded (full tables).
    pub fn trace_dropped(&self) -> u64 {
        self.dropped
    }
}

impl StateValue for TelemetryWindow {
    fn put(&self, w: &mut StateWriter) {
        for v in [
            self.start_cycle,
            self.end_cycle,
            self.issued_requests,
            self.retired_ops,
            self.read_replies,
            self.l1_accesses,
            self.l1_hits,
            self.stall_downstream,
            self.stall_mshr,
            self.stall_outstanding,
            self.llc_accesses,
            self.llc_hits,
            self.lmr_queued,
            self.rmr_queued,
            self.slice_mshr_peak,
            self.sm_mshr_peak,
            self.dram_row_hits,
            self.dram_row_accesses,
            self.dram_bus_busy,
            self.noc_bytes,
            self.noc_peak_in_flight,
            self.local_link_bytes,
            self.local_link_busy,
            self.local_link_rejects,
            self.tlb_walks,
            self.tlb_peak_outstanding,
            self.lat_p50,
            self.lat_p95,
            self.lat_p99,
            self.lat_max,
        ] {
            v.put(w);
        }
    }

    fn get(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        let mut v = [0u64; 30];
        for slot in &mut v {
            *slot = u64::get(r)?;
        }
        Ok(TelemetryWindow {
            start_cycle: v[0],
            end_cycle: v[1],
            issued_requests: v[2],
            retired_ops: v[3],
            read_replies: v[4],
            l1_accesses: v[5],
            l1_hits: v[6],
            stall_downstream: v[7],
            stall_mshr: v[8],
            stall_outstanding: v[9],
            llc_accesses: v[10],
            llc_hits: v[11],
            lmr_queued: v[12],
            rmr_queued: v[13],
            slice_mshr_peak: v[14],
            sm_mshr_peak: v[15],
            dram_row_hits: v[16],
            dram_row_accesses: v[17],
            dram_bus_busy: v[18],
            noc_bytes: v[19],
            noc_peak_in_flight: v[20],
            local_link_bytes: v[21],
            local_link_busy: v[22],
            local_link_rejects: v[23],
            tlb_walks: v[24],
            tlb_peak_outstanding: v[25],
            lat_p50: v[26],
            lat_p95: v[27],
            lat_p99: v[28],
            lat_max: v[29],
        })
    }
}

impl StateValue for WindowTotals {
    fn put(&self, w: &mut StateWriter) {
        for v in [
            self.issued_requests,
            self.retired_ops,
            self.read_replies,
            self.l1_accesses,
            self.l1_hits,
            self.stall_downstream,
            self.stall_mshr,
            self.stall_outstanding,
            self.llc_accesses,
            self.llc_hits,
            self.dram_row_hits,
            self.dram_row_accesses,
            self.dram_bus_busy,
            self.noc_bytes,
            self.local_link_bytes,
            self.local_link_busy,
            self.local_link_rejects,
            self.tlb_walks,
        ] {
            v.put(w);
        }
    }

    fn get(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        let mut v = [0u64; 18];
        for slot in &mut v {
            *slot = u64::get(r)?;
        }
        Ok(WindowTotals {
            issued_requests: v[0],
            retired_ops: v[1],
            read_replies: v[2],
            l1_accesses: v[3],
            l1_hits: v[4],
            stall_downstream: v[5],
            stall_mshr: v[6],
            stall_outstanding: v[7],
            llc_accesses: v[8],
            llc_hits: v[9],
            dram_row_hits: v[10],
            dram_row_accesses: v[11],
            dram_bus_busy: v[12],
            noc_bytes: v[13],
            local_link_bytes: v[14],
            local_link_busy: v[15],
            local_link_rejects: v[16],
            tlb_walks: v[17],
        })
    }
}

impl StateValue for TraceRecord {
    fn put(&self, w: &mut StateWriter) {
        self.id.put(w);
        self.sm.put(w);
        self.warp.put(w);
        self.line.put(w);
        self.issue_cycle.put(w);
        self.slice_enqueue.put(w);
        self.slice_grant.put(w);
        self.dram_enqueue.put(w);
        self.reply_cycle.put(w);
    }

    fn get(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        Ok(TraceRecord {
            id: StateValue::get(r)?,
            sm: StateValue::get(r)?,
            warp: StateValue::get(r)?,
            line: StateValue::get(r)?,
            issue_cycle: StateValue::get(r)?,
            slice_enqueue: StateValue::get(r)?,
            slice_grant: StateValue::get(r)?,
            dram_enqueue: StateValue::get(r)?,
            reply_cycle: StateValue::get(r)?,
        })
    }
}

impl SaveState for Telemetry {
    fn save(&self, w: &mut StateWriter) {
        // Window length, ring capacity, sample period and trace capacity
        // are configuration; the ring contents, cursors, previous-flush
        // snapshot and sampled-request tables are state.
        save_items(w, &self.ring);
        self.head.put(w);
        self.len.put(w);
        self.prev.put(w);
        self.window_start.put(w);
        self.inflight.put(w);
        self.done.put(w);
        self.dropped.put(w);
        for h in &self.tier_hist {
            h.put(w);
        }
        for h in &self.stage_hist {
            h.put(w);
        }
        self.window_hist.put(w);
    }

    fn restore(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        restore_items(r, "telemetry ring", &mut self.ring)?;
        let head = usize::get(r)?;
        if self.ring_cap > 0 && head >= self.ring_cap || self.ring_cap == 0 && head != 0 {
            return Err(StateError::Corrupt("telemetry ring head out of range"));
        }
        self.head = head;
        let len = usize::get(r)?;
        if len > self.ring_cap {
            return Err(StateError::LengthMismatch {
                what: "telemetry ring fill",
                expected: self.ring_cap,
                found: len,
            });
        }
        self.len = len;
        self.prev = WindowTotals::get(r)?;
        self.window_start = u64::get(r)?;
        restore_vec(r, &mut self.inflight)?;
        if self.inflight.len() > INFLIGHT_CAP {
            return Err(StateError::LengthMismatch {
                what: "telemetry in-flight trace table",
                expected: INFLIGHT_CAP,
                found: self.inflight.len(),
            });
        }
        restore_vec(r, &mut self.done)?;
        if self.done.len() > self.done_cap {
            return Err(StateError::LengthMismatch {
                what: "telemetry completed trace table",
                expected: self.done_cap,
                found: self.done.len(),
            });
        }
        self.dropped = u64::get(r)?;
        for h in &mut self.tier_hist {
            *h = Histogram::get(r)?;
        }
        for h in &mut self.stage_hist {
            *h = Histogram::get(r)?;
        }
        self.window_hist = Histogram::get(r)?;
        Ok(())
    }
}

use nuba_types::state::{
    restore_items, restore_vec, save_items, SaveState, StateError, StateReader, StateValue,
    StateWriter,
};

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(window: u64, ring: usize, period: u64) -> TelemetryConfig {
        TelemetryConfig {
            window_cycles: (window > 0).then_some(window),
            ring_windows: ring,
            trace_sample_period: period,
            trace_capacity: 8,
            window_latency: false,
        }
    }

    fn totals(retired: u64) -> WindowTotals {
        WindowTotals {
            retired_ops: retired,
            ..WindowTotals::default()
        }
    }

    #[test]
    fn inert_by_default() {
        let t = Telemetry::new(&TelemetryConfig::default());
        assert!(!t.windowing());
        assert!(!t.tracing());
        assert_eq!(t.windows().count(), 0);
        assert!(t.trace_records().is_empty());
    }

    #[test]
    fn ring_keeps_last_n_windows_in_order() {
        let mut t = Telemetry::new(&cfg(10, 3, 0));
        for i in 1..=5u64 {
            assert!(t.window_due(i * 10));
            t.flush_window(i * 10, totals(i * 100), WindowGauges::default());
        }
        let got: Vec<_> = t.windows().map(|w| (w.start_cycle, w.end_cycle)).collect();
        assert_eq!(got, vec![(20, 30), (30, 40), (40, 50)]);
        // Deltas, not cumulative values.
        for w in t.windows() {
            assert_eq!(w.retired_ops, 100);
        }
        assert_eq!(t.windows_vec().len(), 3);
    }

    #[test]
    fn window_due_only_on_boundaries() {
        let t = Telemetry::new(&cfg(128, 4, 0));
        assert!(!t.window_due(127));
        assert!(t.window_due(128));
        assert!(!t.window_due(129));
        assert!(t.window_due(256));
    }

    #[test]
    fn sampling_is_one_in_k_reads_only() {
        let mut t = Telemetry::new(&cfg(0, 0, 4));
        for i in 1..=16u64 {
            t.maybe_sample(
                ReqId(i),
                SmId(0),
                WarpId(0),
                LineAddr(i * 128),
                AccessKind::Load,
                i,
            );
        }
        // A store on the grid must not be sampled.
        t.maybe_sample(
            ReqId(20),
            SmId(0),
            WarpId(0),
            LineAddr(0),
            AccessKind::Store,
            20,
        );
        assert_eq!(t.inflight.len(), 4); // ids 4, 8, 12, 16
        for (i, id) in [4u64, 8, 12, 16].into_iter().enumerate() {
            assert_eq!(t.inflight[i].id, id);
        }
    }

    #[test]
    fn lifecycle_stamps_flow_into_completed_records() {
        let mut t = Telemetry::new(&cfg(0, 0, 1));
        t.maybe_sample(
            ReqId(1),
            SmId(3),
            WarpId(7),
            LineAddr(0x1000),
            AccessKind::Load,
            5,
        );
        t.note_slice_enqueue(ReqId(1), 9);
        t.note_slice_enqueue(ReqId(1), 11); // first wins
        t.note_slice_grant(ReqId(1), 12);
        t.note_dram(LineAddr(0x1000), 20);
        t.note_reply(ReqId(1), 80);
        let recs = t.trace_records();
        assert_eq!(recs.len(), 1);
        let r = recs[0];
        assert_eq!(r.slice_enqueue, Some(9));
        assert_eq!(r.slice_grant, Some(12));
        assert_eq!(r.dram_enqueue, Some(20));
        assert_eq!(r.reply_cycle, Some(80));
        // Five spans: request + four lifecycle stages.
        assert_eq!(r.trace_events(0, "job").len(), 5);
        // Unknown ids are ignored, not panics.
        t.note_reply(ReqId(99), 100);
    }

    #[test]
    fn full_tables_drop_instead_of_growing() {
        let mut t = Telemetry::new(&cfg(0, 0, 1));
        let cap = t.inflight.capacity();
        for i in 1..=(cap as u64 + 3) {
            t.maybe_sample(
                ReqId(i),
                SmId(0),
                WarpId(0),
                LineAddr(0),
                AccessKind::Load,
                i,
            );
        }
        assert_eq!(t.inflight.len(), cap);
        assert_eq!(t.trace_dropped(), 3);
    }

    #[test]
    fn tier_histograms_record_end_to_end_latency() {
        let mut t = Telemetry::new(&TelemetryConfig::default());
        t.record_read_latency(TIER_LOCAL, 40);
        t.record_read_latency(TIER_REMOTE, 90);
        t.record_read_latency(TIER_REMOTE, 100);
        t.record_read_latency(TIER_DRAM, 400);
        assert_eq!(t.tier_histograms()[TIER_LOCAL].count(), 1);
        assert_eq!(t.tier_histograms()[TIER_REMOTE].count(), 2);
        assert_eq!(t.tier_histograms()[TIER_REMOTE].max(), 100);
        assert_eq!(t.tier_histograms()[TIER_DRAM].sum(), 400);
    }

    #[test]
    fn stage_histograms_fed_from_completed_lifecycles() {
        let mut t = Telemetry::new(&cfg(0, 0, 1));
        // A miss: issue 5 → enqueue 9 → grant 12 → dram 20 → reply 80.
        t.maybe_sample(
            ReqId(1),
            SmId(0),
            WarpId(0),
            LineAddr(64),
            AccessKind::Load,
            5,
        );
        t.note_slice_enqueue(ReqId(1), 9);
        t.note_slice_grant(ReqId(1), 12);
        t.note_dram(LineAddr(64), 20);
        t.note_reply(ReqId(1), 80);
        // A hit: issue 10 → enqueue 13 → grant 15 → reply 30.
        t.maybe_sample(
            ReqId(2),
            SmId(0),
            WarpId(0),
            LineAddr(128),
            AccessKind::Load,
            10,
        );
        t.note_slice_enqueue(ReqId(2), 13);
        t.note_slice_grant(ReqId(2), 15);
        t.note_reply(ReqId(2), 30);
        let s = t.stage_histograms();
        assert_eq!(s[STAGE_SM_TO_SLICE].count(), 2);
        assert_eq!(s[STAGE_SM_TO_SLICE].sum(), 4 + 3);
        assert_eq!(s[STAGE_SLICE_QUEUE].sum(), 3 + 2);
        // Miss contributes grant→dram, hit contributes grant→reply.
        assert_eq!(s[STAGE_LLC].count(), 2);
        assert_eq!(s[STAGE_LLC].sum(), 8 + 15);
        // Only the miss reached DRAM.
        assert_eq!(s[STAGE_DRAM_REPLY].count(), 1);
        assert_eq!(s[STAGE_DRAM_REPLY].sum(), 60);
    }

    #[test]
    fn window_latency_percentiles_stamp_and_reset() {
        let mut t = Telemetry::new(&TelemetryConfig {
            window_latency: true,
            ..cfg(10, 4, 0)
        });
        for lat in [10u64, 20, 30, 1000] {
            t.record_read_latency(TIER_REMOTE, lat);
        }
        t.flush_window(10, totals(1), WindowGauges::default());
        // No samples in the second window: percentiles are zero.
        t.flush_window(20, totals(2), WindowGauges::default());
        let ws = t.windows_vec();
        // p50 is the upper bound of the log2 bucket holding the median
        // sample (20 → bucket [16, 31]).
        assert_eq!(ws[0].lat_p50, 31);
        assert_eq!(ws[0].lat_max, 1000);
        assert!(ws[0].lat_p99 <= 1000);
        assert_eq!((ws[1].lat_p50, ws[1].lat_max), (0, 0));
        // The cumulative tier histogram is unaffected by flushes.
        assert_eq!(t.tier_histograms()[TIER_REMOTE].count(), 4);
    }

    #[test]
    fn save_restore_roundtrips_histograms() {
        let mut t = Telemetry::new(&cfg(0, 0, 1));
        t.record_read_latency(TIER_DRAM, 250);
        t.maybe_sample(
            ReqId(1),
            SmId(0),
            WarpId(0),
            LineAddr(64),
            AccessKind::Load,
            5,
        );
        t.note_slice_enqueue(ReqId(1), 9);
        t.note_reply(ReqId(1), 40);
        let mut w = StateWriter::new();
        t.save(&mut w);
        let bytes = w.into_bytes();
        let mut fresh = Telemetry::new(&cfg(0, 0, 1));
        let mut r = StateReader::new(&bytes);
        fresh.restore(&mut r).expect("restore telemetry");
        assert_eq!(fresh.tier_histograms(), t.tier_histograms());
        assert_eq!(fresh.stage_histograms(), t.stage_histograms());
        assert_eq!(fresh.trace_records(), t.trace_records());
    }

    #[test]
    fn jsonl_line_is_valid_shape_and_escaped() {
        let w = TelemetryWindow {
            start_cycle: 0,
            end_cycle: 100,
            read_replies: 50,
            llc_accesses: 10,
            llc_hits: 5,
            ..TelemetryWindow::default()
        };
        let line = w.jsonl_line("a\"b", 2, 7);
        assert!(line.starts_with("{\"job\":\"a\\\"b\",\"job_index\":2,\"window\":7,"));
        assert!(line.contains("\"replies_per_cycle\":0.500000"));
        assert!(line.contains("\"llc_hit_rate\":0.500000"));
        assert!(line.ends_with('}'));
    }
}
