//! Boundary-condition conservation: drive an LLC slice's MSHR file and
//! reply path to capacity and prove nothing is dropped or duplicated —
//! requests beyond the MSHR/queue limits wait and retry instead of
//! disappearing.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use nuba_cache::CacheGeometry;
use nuba_core::{LlcSlice, MemTask, Role, SliceParams};
use nuba_types::{
    AccessKind, LineAddr, MemRequest, PartitionId, PhysAddr, ReqId, SliceId, SmId, VirtAddr, WarpId,
};

const MSHRS: usize = 4;
const QUEUE: usize = 4;

fn tiny_slice() -> LlcSlice {
    let params = SliceParams {
        geometry: CacheGeometry::new(48, 16),
        mshrs: MSHRS,
        latency: 4,
        out_bytes_per_cycle: 32,
        queue_capacity: QUEUE,
        sample_sets: 8,
    };
    LlcSlice::new(SliceId(0), PartitionId(0), params, None, false)
}

fn load(id: u64, addr: u64) -> MemRequest {
    MemRequest {
        id: ReqId(id),
        sm: SmId(0),
        warp: WarpId(0),
        vaddr: VirtAddr(addr),
        paddr: PhysAddr(addr),
        kind: AccessKind::Load,
        issue_cycle: 0,
        wants_replica: false,
        bypass_l1: false,
    }
}

/// Far more distinct-line misses than the slice has MSHRs: every grant
/// past the fourth sees a full MSHR file and must retry, and the DRAM
/// fill path is rate-limited so residency stays pinned at the limit.
/// Conservation at the boundary: all replies arrive, exactly once.
#[test]
fn mshr_file_at_capacity_conserves_every_request() {
    const N: u64 = 32;
    let mut s = tiny_slice();
    for i in 0..N {
        // Distinct lines, distinct sets: no merging, no conflicts.
        s.ingress_local(load(i, i * 0x1000), Role::Home);
    }

    let mut fills: BTreeMap<u64, Vec<LineAddr>> = BTreeMap::new();
    let mut fetched: BTreeSet<LineAddr> = BTreeSet::new();
    let mut replies = Vec::new();
    let mut peak_residents = 0usize;
    for now in 0..4000u64 {
        s.tick(now);
        peak_residents = peak_residents.max(s.mshr_residents());
        while let Some(t) = s.pop_mem_task() {
            if let MemTask::Fetch(line) = t {
                assert!(fetched.insert(line), "duplicate fetch for {line:?}");
                // Slow memory: 40-cycle fills keep the MSHRs saturated.
                fills.entry(now + 40).or_default().push(line);
            }
        }
        for line in fills.remove(&now).unwrap_or_default() {
            s.fill_from_memory(line, now);
        }
        while let Some(r) = s.pop_reply() {
            replies.push(r.id.0);
        }
        if replies.len() as u64 == N {
            break;
        }
    }

    assert_eq!(replies.len() as u64, N, "every request answered");
    let unique: BTreeSet<u64> = replies.iter().copied().collect();
    assert_eq!(unique.len() as u64, N, "no duplicated replies");
    assert_eq!(peak_residents, MSHRS, "the MSHR file really hit capacity");
    assert_eq!(s.pending_work(), 0, "nothing left stuck in the slice");
}

/// Hits on warmed lines with a consumer that stops draining: the reply
/// path (out-link queue + backlog) absorbs the burst at its boundary
/// and delivers everything once draining resumes.
#[test]
fn reply_backpressure_at_capacity_loses_nothing() {
    const N: u64 = 24;
    let mut s = tiny_slice();
    for i in 0..N {
        s.fill_from_memory(LineAddr::containing(i * 0x1000), 0);
    }
    // Absorb any startup work before the burst.
    for now in 1..10u64 {
        s.tick(now);
    }
    for i in 0..N {
        s.ingress_local(load(100 + i, i * 0x1000), Role::Home);
    }

    // Stall the consumer: tick far past the point where the out link's
    // bounded queue is full and replies pile into the backlog.
    for now in 10..300u64 {
        s.tick(now);
    }
    assert!(s.pending_work() > 0, "backpressure is holding replies");

    // Resume draining; everything must come out exactly once.
    let mut replies = Vec::new();
    for now in 300..600u64 {
        s.tick(now);
        while let Some(r) = s.pop_reply() {
            assert!(r.llc_hit, "warmed lines hit");
            replies.push(r.id.0);
        }
    }
    assert_eq!(
        replies.len() as u64,
        N,
        "every hit answered after the stall"
    );
    let unique: BTreeSet<u64> = replies.iter().copied().collect();
    assert_eq!(unique.len() as u64, N, "no duplicated replies");
    assert_eq!(s.pending_work(), 0);
}
