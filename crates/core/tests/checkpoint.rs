//! Checkpoint/restore contract: a run interrupted at cycle `n` and
//! resumed from its [`Checkpoint`] continues **byte-identical** to the
//! uninterrupted run — same [`SimReport`], same telemetry windows and
//! trace records, same invariant-registry snapshot — across the whole
//! simcheck architecture matrix. Mismatched configurations, workloads,
//! and format versions are rejected loudly.
//!
//! The invariant registry is process-global, so every test here
//! serializes on one lock; the file is its own test binary, keeping
//! other suites out of the process.

use std::sync::{Mutex, MutexGuard};

use nuba_core::{GpuSimulator, SimError, SimSession};
use nuba_types::state::StateError;
use nuba_types::{invariant, ArchKind, GpuConfig, PagePolicyKind, ReplicationKind};
use nuba_workloads::{BenchmarkId, ScaleProfile, Workload};

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The simcheck architecture matrix (both UBA baselines plus NUBA with
/// every replication × page-policy combination), with both telemetry
/// pillars enabled so the ring and the tracer round-trip too.
fn simcheck_configs() -> Vec<(String, GpuConfig)> {
    let mut out = vec![
        (
            "UBA-mem".to_string(),
            GpuConfig::paper_baseline(ArchKind::MemSideUba),
        ),
        (
            "UBA-sm".to_string(),
            GpuConfig::paper_baseline(ArchKind::SmSideUba),
        ),
    ];
    for (rep_name, rep) in [
        ("NoRep", ReplicationKind::None),
        ("FullRep", ReplicationKind::Full),
        ("MDR", ReplicationKind::Mdr),
    ] {
        for (pol_name, pol) in [
            ("FirstTouch", PagePolicyKind::FirstTouch),
            ("RoundRobin", PagePolicyKind::RoundRobin),
            ("LAB", PagePolicyKind::lab_default()),
        ] {
            let cfg = GpuConfig::paper_baseline(ArchKind::Nuba)
                .with_replication(rep)
                .with_policy(pol);
            out.push((format!("NUBA-{rep_name}-{pol_name}"), cfg));
        }
    }
    for (_, cfg) in &mut out {
        cfg.telemetry.window_cycles = Some(256);
        cfg.telemetry.trace_sample_period = 64;
    }
    out
}

fn workload_for(cfg: &GpuConfig) -> Workload {
    Workload::build(
        BenchmarkId::Kmeans,
        ScaleProfile::fast(),
        cfg.num_sms,
        cfg.seed,
    )
}

/// Everything a run exposes, for byte-for-byte comparison.
struct RunImage {
    report: nuba_core::SimReport,
    windows: Vec<nuba_core::TelemetryWindow>,
    traces: Vec<nuba_core::TraceRecord>,
    dropped: u64,
    invariants: Vec<invariant::SiteReport>,
}

fn image(gpu: &GpuSimulator) -> RunImage {
    RunImage {
        report: gpu.report(),
        windows: gpu.telemetry().windows_vec(),
        traces: gpu.telemetry().trace_records().to_vec(),
        dropped: gpu.telemetry().trace_dropped(),
        invariants: invariant::report(),
    }
}

fn assert_images_match(name: &str, a: &RunImage, b: &RunImage) {
    assert_eq!(a.report, b.report, "{name}: SimReport diverged");
    assert_eq!(a.windows, b.windows, "{name}: telemetry windows diverged");
    assert_eq!(a.traces, b.traces, "{name}: trace records diverged");
    assert_eq!(a.dropped, b.dropped, "{name}: trace drop count diverged");
    assert_eq!(
        a.invariants, b.invariants,
        "{name}: invariant snapshot diverged"
    );
}

#[test]
fn resumed_runs_are_byte_identical_across_the_simcheck_matrix() {
    let _guard = lock();
    const FIRST: u64 = 1_500;
    const SECOND: u64 = 1_500;

    for (name, cfg) in simcheck_configs() {
        let wl = workload_for(&cfg);

        // Uninterrupted reference: warm, then one combined window.
        invariant::reset();
        let mut gpu = GpuSimulator::try_new(cfg.clone(), &wl).expect("valid config");
        gpu.warm(&wl, 256);
        gpu.run(FIRST + SECOND)
            .unwrap_or_else(|e| panic!("{name}: reference run failed: {e}"));
        let reference = image(&gpu);

        // Interrupted run: same warm, run the first window, snapshot,
        // throw the simulator away, and resume in a "fresh process"
        // (registry reset + re-seeded from the checkpoint).
        invariant::reset();
        let mut gpu = GpuSimulator::try_new(cfg.clone(), &wl).expect("valid config");
        gpu.warm(&wl, 256);
        gpu.run(FIRST)
            .unwrap_or_else(|e| panic!("{name}: first window failed: {e}"));
        let ckpt = gpu.checkpoint(&wl);
        assert_eq!(ckpt.cycle(), gpu.cycle(), "{name}: checkpoint cycle");
        drop(gpu);

        invariant::reset();
        ckpt.seed_invariants();
        let mut resumed = GpuSimulator::restore(cfg.clone(), &wl, &ckpt)
            .unwrap_or_else(|e| panic!("{name}: restore failed: {e}"));
        assert_eq!(resumed.cycle(), FIRST, "{name}: resumed at wrong cycle");
        resumed
            .run(SECOND)
            .unwrap_or_else(|e| panic!("{name}: resumed window failed: {e}"));
        let continued = image(&resumed);

        assert_images_match(&name, &reference, &continued);
    }
}

/// `run(n + m)` == `restore(checkpoint(run(n))).run(m)` for asymmetric
/// interruption points — the checkpoint may land anywhere, including
/// mid-window (cycle 1), right after warm-up (cycle 0), and one cycle
/// before the end.
#[test]
fn restore_at_arbitrary_cycles_is_byte_identical() {
    let _guard = lock();
    const TOTAL: u64 = 3_000;
    let cfg = GpuConfig::paper_baseline(ArchKind::Nuba)
        .with_replication(ReplicationKind::Mdr)
        .with_policy(PagePolicyKind::lab_default());
    let wl = workload_for(&cfg);

    invariant::reset();
    let mut gpu = GpuSimulator::try_new(cfg.clone(), &wl).expect("valid config");
    gpu.warm(&wl, 256);
    gpu.run(TOTAL).expect("forward progress");
    let reference = image(&gpu);

    for first in [0u64, 1, 257, 1_024, TOTAL - 1] {
        invariant::reset();
        let mut gpu = GpuSimulator::try_new(cfg.clone(), &wl).expect("valid config");
        gpu.warm(&wl, 256);
        gpu.run(first).expect("forward progress");
        let ckpt = gpu.checkpoint(&wl);
        drop(gpu);

        invariant::reset();
        ckpt.seed_invariants();
        let mut resumed =
            GpuSimulator::restore(cfg.clone(), &wl, &ckpt).expect("checkpoint restores");
        resumed.run(TOTAL - first).expect("forward progress");
        let continued = image(&resumed);
        assert_images_match(&format!("split at {first}"), &reference, &continued);
    }
}

#[test]
fn checkpoint_bytes_roundtrip() {
    let _guard = lock();
    let cfg = GpuConfig::paper_baseline(ArchKind::Nuba)
        .with_geometry(8, 8, 4, 8)
        .with_page_fault_latency(200);
    let wl = workload_for(&cfg);
    let mut gpu = GpuSimulator::try_new(cfg, &wl).expect("valid config");
    gpu.warm(&wl, 64);
    gpu.run(1_000).expect("forward progress");

    let ckpt = gpu.checkpoint(&wl);
    let bytes = ckpt.to_bytes();
    let back = nuba_core::Checkpoint::from_bytes(&bytes).expect("decodes");
    assert_eq!(ckpt, back, "serialized checkpoint did not round-trip");
    assert_eq!(
        back.config().state_hash(),
        back.config_hash(),
        "embedded config inconsistent with its hash"
    );

    // The decoded checkpoint restores and continues identically too.
    let a = {
        let mut g = GpuSimulator::restore(ckpt.config().clone(), &wl, &ckpt).expect("restores");
        g.run(500).expect("forward progress");
        g.report()
    };
    let b = {
        let mut g = GpuSimulator::restore(back.config().clone(), &wl, &back).expect("restores");
        g.run(500).expect("forward progress");
        g.report()
    };
    assert_eq!(a, b);
}

#[test]
fn restore_rejects_mismatched_config_and_workload() {
    let _guard = lock();
    let cfg = GpuConfig::paper_baseline(ArchKind::Nuba)
        .with_geometry(8, 8, 4, 8)
        .with_page_fault_latency(200);
    let wl = workload_for(&cfg);
    let mut gpu = GpuSimulator::try_new(cfg.clone(), &wl).expect("valid config");
    gpu.warm(&wl, 64);
    gpu.run(500).expect("forward progress");
    let ckpt = gpu.checkpoint(&wl);

    let other_cfg = cfg.clone().with_seed(cfg.seed ^ 1);
    match GpuSimulator::restore(other_cfg, &wl, &ckpt).map(|_| ()) {
        Err(SimError::Checkpoint(StateError::HashMismatch {
            what: "configuration",
        })) => {}
        other => panic!("wrong rejection for config mismatch: {other:?}"),
    }

    let other_wl = Workload::build(BenchmarkId::Sgemm, ScaleProfile::fast(), 8, cfg.seed);
    match GpuSimulator::restore(cfg, &other_wl, &ckpt).map(|_| ()) {
        Err(SimError::Checkpoint(StateError::HashMismatch { what: "workload" })) => {}
        other => panic!("wrong rejection for workload mismatch: {other:?}"),
    }
}

#[test]
fn from_bytes_rejects_corruption_and_version_skew() {
    let _guard = lock();
    let cfg = GpuConfig::paper_baseline(ArchKind::Nuba)
        .with_geometry(8, 8, 4, 8)
        .with_page_fault_latency(200);
    let wl = workload_for(&cfg);
    let mut gpu = GpuSimulator::try_new(cfg, &wl).expect("valid config");
    gpu.warm(&wl, 64);
    let bytes = gpu.checkpoint(&wl).to_bytes();

    // Bad magic.
    let mut bad = bytes.clone();
    bad[0] ^= 0xff;
    assert!(matches!(
        nuba_core::Checkpoint::from_bytes(&bad),
        Err(StateError::Corrupt(_))
    ));

    // Future format version (bytes 4..8, little-endian).
    let mut bad = bytes.clone();
    bad[4..8].copy_from_slice(&99u32.to_le_bytes());
    assert!(matches!(
        nuba_core::Checkpoint::from_bytes(&bad),
        Err(StateError::VersionMismatch {
            found: 99,
            expected: _
        })
    ));

    // Truncation: the trailing content checksum no longer covers the
    // bytes present.
    assert!(matches!(
        nuba_core::Checkpoint::from_bytes(&bytes[..bytes.len() - 1]),
        Err(StateError::ChecksumMismatch { .. })
    ));

    // Truncation so deep even the header is gone.
    assert!(matches!(
        nuba_core::Checkpoint::from_bytes(&bytes[..6]),
        Err(StateError::UnexpectedEof { .. })
    ));

    // Trailing garbage shifts the checksum tail off its bytes.
    let mut bad = bytes.clone();
    bad.push(0);
    assert!(matches!(
        nuba_core::Checkpoint::from_bytes(&bad),
        Err(StateError::ChecksumMismatch { .. })
    ));

    // A flipped bit in the middle of the opaque state payload — the
    // case only the end-to-end checksum can catch.
    let mut bad = bytes.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x10;
    assert!(matches!(
        nuba_core::Checkpoint::from_bytes(&bad),
        Err(StateError::ChecksumMismatch { .. })
    ));
}

#[test]
fn sessions_fork_identical_continuations() {
    let _guard = lock();
    let cfg = GpuConfig::paper_baseline(ArchKind::Nuba)
        .with_geometry(8, 8, 4, 8)
        .with_page_fault_latency(200);
    let wl = workload_for(&cfg);

    let mut warm = SimSession::builder(cfg, wl.clone())
        .build()
        .expect("valid config");
    warm.warm();
    let ckpt = warm.checkpoint();

    // Two sessions forked from the same warm state run identically —
    // the warm parent keeps running without disturbing the forks.
    let a = SimSession::resume(&ckpt, wl.clone())
        .expect("restores")
        .run_window(2_000)
        .expect("forward progress");
    warm.run_window(123).expect("forward progress");
    let b = SimSession::resume(&ckpt, wl)
        .expect("restores")
        .run_window(2_000)
        .expect("forward progress");
    assert_eq!(a, b, "forked continuations diverged");
}

#[test]
fn session_builder_rejects_invalid_configs() {
    let _guard = lock();
    let mut cfg = GpuConfig::paper_baseline(ArchKind::Nuba);
    cfg.num_sms = 0;
    let wl = Workload::build(BenchmarkId::Sgemm, ScaleProfile::fast(), 8, 1);
    assert!(matches!(
        SimSession::builder(cfg, wl).build(),
        Err(SimError::InvalidConfig(_))
    ));
}
