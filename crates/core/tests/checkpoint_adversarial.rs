//! Adversarial checkpoint decoding: `Checkpoint::from_bytes` over
//! random truncations, single-byte corruptions, and trailing garbage
//! of a *valid* checkpoint must always yield a typed [`StateError`] —
//! never a panic, and never a silent wrong-data accept. The trailing
//! end-to-end checksum (state format v2) is what makes the
//! single-byte-corruption guarantee absolute.

use std::sync::OnceLock;

use proptest::prelude::*;

use nuba_core::{Checkpoint, GpuSimulator};
use nuba_types::state::StateError;
use nuba_types::{ArchKind, GpuConfig};
use nuba_workloads::{BenchmarkId, ScaleProfile, Workload};

/// One small but real checkpoint (geometry-reduced NUBA machine,
/// warmed and briefly run so every payload section is non-trivial),
/// serialized once and shared by every property.
fn valid_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let cfg = GpuConfig::paper_baseline(ArchKind::Nuba)
            .with_geometry(8, 8, 4, 8)
            .with_page_fault_latency(200);
        let wl = Workload::build(BenchmarkId::Kmeans, ScaleProfile::fast(), 8, cfg.seed);
        let mut gpu = GpuSimulator::try_new(cfg, &wl).expect("valid config");
        gpu.warm(&wl, 64);
        gpu.run(200).expect("forward progress");
        gpu.checkpoint(&wl).to_bytes()
    })
}

proptest! {
    #[test]
    fn truncation_at_any_point_is_a_typed_error(cut in 0usize..1_000_000) {
        let bytes = valid_bytes();
        // Any strict prefix — including the empty one — must be
        // rejected; the checksum no longer matches (or the header is
        // not even present).
        let cut = cut % bytes.len();
        match Checkpoint::from_bytes(&bytes[..cut]) {
            Ok(_) => prop_assert!(false, "accepted a truncated checkpoint at {cut}"),
            Err(
                StateError::UnexpectedEof { .. }
                | StateError::ChecksumMismatch { .. }
                | StateError::VersionMismatch { .. }
                | StateError::Corrupt(_),
            ) => {}
            Err(e) => prop_assert!(false, "untyped rejection at {cut}: {e}"),
        }
    }

    #[test]
    fn single_byte_corruption_never_accepted(
        at in 0usize..1_000_000,
        xor in 1u8..=255,
    ) {
        let mut bytes = valid_bytes().to_vec();
        let at = at % bytes.len();
        bytes[at] ^= xor;
        // A flipped byte anywhere — header, lengths, payload, or the
        // checksum itself — must surface as a typed error. It must
        // never decode to a different-but-accepted checkpoint.
        prop_assert!(
            Checkpoint::from_bytes(&bytes).is_err(),
            "accepted checkpoint with byte {at} xor {xor:#04x}"
        );
    }

    #[test]
    fn trailing_garbage_is_rejected(
        tail in collection::vec(any::<u8>(), 1..64),
    ) {
        let mut bytes = valid_bytes().to_vec();
        bytes.extend_from_slice(&tail);
        // Appended bytes shift the checksum tail, so the end-to-end
        // hash check fires before any length field is trusted.
        match Checkpoint::from_bytes(&bytes) {
            Ok(_) => prop_assert!(false, "accepted checkpoint with trailing garbage"),
            Err(StateError::ChecksumMismatch { .. } | StateError::Corrupt(_)) => {}
            Err(e) => prop_assert!(false, "unexpected rejection: {e}"),
        }
    }

    #[test]
    fn valid_bytes_always_roundtrip(_nonce in 0u8..8) {
        // Control arm: the unmodified bytes must keep decoding, and
        // re-serializing must be byte-identical.
        let ckpt = Checkpoint::from_bytes(valid_bytes()).expect("valid checkpoint decodes");
        let reserialized = ckpt.to_bytes();
        prop_assert_eq!(reserialized.as_slice(), valid_bytes());
    }
}
