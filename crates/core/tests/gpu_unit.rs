//! Targeted GPU-simulator unit tests on tiny machines: kernel-boundary
//! flushes, latency accounting, and report consistency.

use nuba_core::GpuSimulator;
use nuba_types::{ArchKind, GpuConfig, ReplicationKind};
use nuba_workloads::{BenchmarkId, ScaleProfile, Workload};

fn tiny(arch: ArchKind) -> GpuConfig {
    let mut cfg = GpuConfig::paper_baseline(arch);
    cfg.num_channels = 4;
    cfg.num_sms = 8;
    cfg.num_llc_slices = 8;
    cfg.llc_total_bytes = 8 * 96 * 1024;
    cfg.noc_total_bytes_per_cycle = 15.6 * 8.0;
    cfg.sim_active_warps = 8;
    cfg
}

fn run(cfg: GpuConfig, bench: BenchmarkId, cycles: u64) -> (GpuSimulator, nuba_core::SimReport) {
    let wl = Workload::build(bench, ScaleProfile::fast(), cfg.num_sms, 5);
    let mut gpu = GpuSimulator::try_new(cfg, &wl).expect("valid config");
    let r = gpu.warm_and_run(&wl, cycles).expect("forward progress");
    (gpu, r)
}

#[test]
fn kernel_boundaries_cost_performance() {
    let base = tiny(ArchKind::Nuba);
    let mut flushed = base.clone();
    flushed.kernel_boundary_cycles = Some(1_000);
    let (_, r_base) = run(base, BenchmarkId::Kmeans, 10_000);
    let (_, r_flush) = run(flushed, BenchmarkId::Kmeans, 10_000);
    assert!(
        r_flush.perf() < r_base.perf(),
        "frequent kernel boundaries must cost: {:.2} vs {:.2}",
        r_flush.perf(),
        r_base.perf()
    );
    // The flush produces cold misses: LLC hit rate drops.
    assert!(r_flush.llc_hit_rate() < r_base.llc_hit_rate());
}

#[test]
fn latency_metrics_are_sane() {
    let (_, r) = run(tiny(ArchKind::MemSideUba), BenchmarkId::Lbm, 10_000);
    assert!(
        r.avg_read_latency > 10.0,
        "avg latency {:.1} implausibly low",
        r.avg_read_latency
    );
    assert!(
        (r.max_read_latency as f64) >= r.avg_read_latency,
        "max {} < avg {:.1}",
        r.max_read_latency,
        r.avg_read_latency
    );
    assert!(
        r.max_read_latency < 10_000 + 5_000,
        "latency beyond the window"
    );
}

#[test]
fn latency_insensitivity_of_throughput() {
    // The paper's foundational claim: quadrupling LLC latency barely
    // moves a bandwidth-bound GPU — provided there are enough warps to
    // hide it (latency tolerance scales with thread count).
    let mut base = tiny(ArchKind::Nuba);
    base.sim_active_warps = 32;
    let mut slow = base.clone();
    slow.llc_latency = base.llc_latency * 4;
    let (_, r_base) = run(base, BenchmarkId::Lbm, 10_000);
    let (_, r_slow) = run(slow, BenchmarkId::Lbm, 10_000);
    let ratio = r_slow.perf() / r_base.perf();
    assert!(
        ratio > 0.85,
        "4x LLC latency should cost <15% on a bandwidth-bound GPU, got {ratio:.2}"
    );
    // But the *latency metric* must reflect the change.
    assert!(r_slow.avg_read_latency > r_base.avg_read_latency);
}

#[test]
fn slice_totals_match_report() {
    let (gpu, r) = run(tiny(ArchKind::Nuba), BenchmarkId::Sgemm, 8_000);
    let (hits, accesses, _rhits, rfills, _fwd) = gpu.slice_totals();
    assert_eq!(hits, r.llc_hits);
    assert_eq!(accesses, r.llc_accesses);
    assert_eq!(rfills, r.replica_fills);
}

#[test]
fn report_is_cumulative_and_monotonic() {
    let cfg = tiny(ArchKind::Nuba);
    let wl = Workload::build(BenchmarkId::Kmeans, ScaleProfile::fast(), cfg.num_sms, 5);
    let mut gpu = GpuSimulator::try_new(cfg, &wl).expect("valid config");
    gpu.warm(&wl, 64);
    let r1 = gpu.run(3_000).expect("forward progress");
    let r2 = gpu.run(3_000).expect("forward progress");
    assert_eq!(r2.cycles, 6_000);
    assert!(r2.warp_ops >= r1.warp_ops);
    assert!(r2.read_replies >= r1.read_replies);
    assert!(r2.dram_accesses >= r1.dram_accesses);
}

#[test]
fn full_replication_disabled_outside_nuba() {
    let mut cfg = tiny(ArchKind::MemSideUba);
    cfg.replication = ReplicationKind::Full;
    let (_, r) = run(cfg, BenchmarkId::SqueezeNet, 8_000);
    assert_eq!(r.replica_fills, 0, "UBA has no replication machinery");
}

#[test]
fn noc_bandwidth_knob_reaches_the_noc() {
    let narrow = tiny(ArchKind::MemSideUba).with_noc_tbs(0.2);
    let wide = tiny(ArchKind::MemSideUba).with_noc_tbs(2.0);
    let (_, r_n) = run(narrow, BenchmarkId::Lbm, 10_000);
    let (_, r_w) = run(wide, BenchmarkId::Lbm, 10_000);
    assert!(
        r_w.perf() > r_n.perf() * 1.3,
        "a 10x NoC difference must show on UBA: {:.2} vs {:.2}",
        r_w.perf(),
        r_n.perf()
    );
}
