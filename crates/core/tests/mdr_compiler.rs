//! Compile-time → runtime MDR integration: the flow-sensitive
//! replication-safety pass changes an actual slice-level replication
//! decision.
//!
//! The kernel's only store sits behind a guard a constant comparison
//! proves never taken. The flow-insensitive analysis must treat array
//! `A` as read-write, so its loads issue as plain `ld.global` —
//! `AccessKind::Load` — and a NUBA slice can never install a replica
//! for them. The flow-sensitive pass proves `A` read-only, the loads
//! issue as `AccessKind::LoadReadOnly`, and the same access sequence
//! installs and then hits a local replica.

use nuba_cache::CacheGeometry;
use nuba_compiler::{analyze_kernel, parse_module, Kernel};
use nuba_core::mdr::replication_candidate_params;
use nuba_core::{LlcSlice, MemTask, Role, SliceParams};
use nuba_types::{AccessKind, PartitionId, PhysAddr, ReqId, SliceId, SmId, VirtAddr, WarpId};

const DEAD_GUARD: &str = r#"
.visible .entry k(.param .u64 A, .param .u64 OUT)
{
    ld.param.u64 %rd1, [A];
    ld.param.u64 %rd2, [OUT];
    cvta.to.global.u64 %rd1, %rd1;
    cvta.to.global.u64 %rd2, %rd2;
    ld.global.f32 %f1, [%rd1];
    mov.u32 %r9, 0;
    setp.eq.u32 %p1, %r9, 1;
    @%p1 bra DO_STORE;
    bra END;
DO_STORE:
    st.global.f32 [%rd1], %f1;
END:
    ret;
}
"#;

fn kernel() -> Kernel {
    parse_module(DEAD_GUARD).unwrap().kernels.remove(0)
}

/// The access kind the toolchain issues for loads from `param`, given a
/// read-only candidate set.
fn kind_for(candidates: &std::collections::BTreeSet<String>, param: &str) -> AccessKind {
    if candidates.contains(param) {
        AccessKind::LoadReadOnly
    } else {
        AccessKind::Load
    }
}

fn params() -> SliceParams {
    SliceParams {
        geometry: CacheGeometry::new(48, 16),
        mshrs: 8,
        latency: 4,
        out_bytes_per_cycle: 32,
        queue_capacity: 8,
        sample_sets: 8,
    }
}

fn req(id: u64, addr: u64, kind: AccessKind) -> nuba_types::MemRequest {
    nuba_types::MemRequest {
        id: ReqId(id),
        sm: SmId(0),
        warp: WarpId(0),
        vaddr: VirtAddr(addr),
        paddr: PhysAddr(addr),
        kind,
        issue_cycle: 0,
        wants_replica: false,
        bypass_l1: false,
    }
}

/// Drive two accesses to one remote line through a local NUBA slice and
/// its home slice, applying the §5.2 routing rule: read-only accesses
/// take the replica path while replication is on; everything else is
/// forwarded straight to the home slice. Returns (replica_fills,
/// replica_hits, forwards_seen_by_home).
fn run_remote_access_pair(kind: AccessKind) -> (u64, u64, u64) {
    // Local slice replicates unconditionally (Full-Rep) so the decision
    // under test is purely the compiler-assigned access kind.
    let mut local = LlcSlice::new(SliceId(0), PartitionId(0), params(), None, true);
    let mut home = LlcSlice::new(SliceId(1), PartitionId(1), params(), None, false);
    let addr = 0x4_0000;
    let mut home_ingress = 0u64;

    for (turn, id) in [1u64, 2].into_iter().enumerate() {
        let request = req(id, addr, kind);
        if kind.is_read_only() && local.replicating() {
            local.ingress_local(request, Role::Replica);
        } else {
            local.forward_direct(request);
        }
        // Enough cycles for each hop; route traffic between the slices.
        let base = (turn as u64) * 200;
        for c in base..base + 200 {
            local.tick(c);
            home.tick(c);
            while let Some(fwd) = local.pop_forward() {
                home_ingress += 1;
                home.ingress_remote(fwd);
            }
            while let Some(MemTask::Fetch(line)) = home.pop_mem_task() {
                home.fill_from_memory(line, c + 1);
            }
            while let Some(reply) = home.pop_reply() {
                if reply.replica_fill {
                    local.fill_replica(reply, c + 1);
                } else {
                    // Final reply heading back to the SM: consumed here.
                }
            }
            let _ = local.pop_reply();
        }
    }
    (
        local.stats.replica_fills,
        local.stats.replica_hits,
        home_ingress,
    )
}

#[test]
fn flow_sensitive_pass_finds_candidate_the_baseline_misses() {
    let k = kernel();
    let flow = replication_candidate_params(&k);
    let insens = analyze_kernel(&k).read_only;
    assert!(flow.contains("A"), "{flow:?}");
    assert!(!insens.contains("A"), "{insens:?}");
    assert!(flow.is_superset(&insens));
}

#[test]
fn candidate_access_kind_enables_replica_path() {
    let k = kernel();
    let flow = replication_candidate_params(&k);
    let insens = analyze_kernel(&k).read_only;

    // Flow-insensitive toolchain: loads from A are plain Loads — both
    // accesses cross the NoC to the home slice, nothing is replicated.
    let (fills, hits, crossings) = run_remote_access_pair(kind_for(&insens, "A"));
    assert_eq!((fills, hits), (0, 0));
    assert_eq!(crossings, 2, "every access pays the remote round trip");

    // Flow-sensitive toolchain: loads from A are LoadReadOnly — the
    // first access installs a replica, the second hits it locally.
    let (fills, hits, crossings) = run_remote_access_pair(kind_for(&flow, "A"));
    assert_eq!(fills, 1, "first miss installs the replica");
    assert_eq!(hits, 1, "second access served from the local replica");
    assert_eq!(crossings, 1, "only the first access crosses the NoC");
}
