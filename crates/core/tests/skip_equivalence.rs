//! Event-driven time skipping is an *optimization*, not a model change:
//! [`GpuSimulator::run_skipping`] must be byte-identical to
//! [`GpuSimulator::run_stepping`] — same [`SimReport`], same telemetry
//! windows and trace records, same invariant-registry snapshot, and the
//! same checkpoint bytes — across the whole simcheck architecture
//! matrix, with and without fault injection, including checkpoints
//! taken at cycles a skipping run would normally jump straight over.
//!
//! The invariant registry is process-global, so every test here
//! serializes on one lock; the file is its own test binary, keeping
//! other suites out of the process.

use std::sync::{Mutex, MutexGuard};

use nuba_core::{GpuSimulator, SimSession};
use nuba_engine::FaultPlan;
use nuba_types::{invariant, ArchKind, GpuConfig, PagePolicyKind, ReplicationKind};
use nuba_workloads::{BenchmarkId, ScaleProfile, Workload};

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The simcheck architecture matrix (both UBA baselines plus NUBA with
/// every replication × page-policy combination), with both telemetry
/// pillars enabled so windows and traces are part of the comparison.
fn simcheck_configs() -> Vec<(String, GpuConfig)> {
    let mut out = vec![
        (
            "UBA-mem".to_string(),
            GpuConfig::paper_baseline(ArchKind::MemSideUba),
        ),
        (
            "UBA-sm".to_string(),
            GpuConfig::paper_baseline(ArchKind::SmSideUba),
        ),
    ];
    for (rep_name, rep) in [
        ("NoRep", ReplicationKind::None),
        ("FullRep", ReplicationKind::Full),
        ("MDR", ReplicationKind::Mdr),
    ] {
        for (pol_name, pol) in [
            ("FirstTouch", PagePolicyKind::FirstTouch),
            ("RoundRobin", PagePolicyKind::RoundRobin),
            ("LAB", PagePolicyKind::lab_default()),
        ] {
            let cfg = GpuConfig::paper_baseline(ArchKind::Nuba)
                .with_replication(rep)
                .with_policy(pol);
            out.push((format!("NUBA-{rep_name}-{pol_name}"), cfg));
        }
    }
    for (_, cfg) in &mut out {
        cfg.telemetry.window_cycles = Some(256);
        cfg.telemetry.trace_sample_period = 64;
    }
    out
}

fn workload_for(cfg: &GpuConfig) -> Workload {
    Workload::build(
        BenchmarkId::Kmeans,
        ScaleProfile::fast(),
        cfg.num_sms,
        cfg.seed,
    )
}

/// Everything a run exposes, for byte-for-byte comparison — including
/// the serialized checkpoint, which covers every component's saved
/// timing state, not just the aggregated report.
struct RunImage {
    report: nuba_core::SimReport,
    windows: Vec<nuba_core::TelemetryWindow>,
    traces: Vec<nuba_core::TraceRecord>,
    dropped: u64,
    invariants: Vec<invariant::SiteReport>,
    checkpoint: Vec<u8>,
}

fn image(gpu: &GpuSimulator, wl: &Workload) -> RunImage {
    RunImage {
        report: gpu.report(),
        windows: gpu.telemetry().windows_vec(),
        traces: gpu.telemetry().trace_records().to_vec(),
        dropped: gpu.telemetry().trace_dropped(),
        invariants: invariant::report(),
        checkpoint: gpu.checkpoint(wl).to_bytes(),
    }
}

fn assert_images_match(name: &str, stepped: &RunImage, skipped: &RunImage) {
    assert_eq!(
        stepped.report, skipped.report,
        "{name}: SimReport diverged between stepping and skipping"
    );
    assert_eq!(
        stepped.windows, skipped.windows,
        "{name}: telemetry windows diverged"
    );
    assert_eq!(
        stepped.traces, skipped.traces,
        "{name}: trace records diverged"
    );
    assert_eq!(
        stepped.dropped, skipped.dropped,
        "{name}: trace drop count diverged"
    );
    assert_eq!(
        stepped.invariants, skipped.invariants,
        "{name}: invariant snapshot diverged"
    );
    assert_eq!(
        stepped.checkpoint, skipped.checkpoint,
        "{name}: checkpoint bytes diverged"
    );
}

/// Run a config under one mode (`skip`), warm first, with an optional
/// fault plan installed before the timed window.
fn run_mode(
    cfg: &GpuConfig,
    wl: &Workload,
    plan: Option<&FaultPlan>,
    skip: bool,
    cycles: u64,
) -> RunImage {
    invariant::reset();
    let mut gpu = GpuSimulator::try_new(cfg.clone(), wl).expect("valid config");
    gpu.warm(wl, 256);
    if let Some(plan) = plan {
        gpu.set_fault_plan(plan);
    }
    if skip {
        gpu.run_skipping(cycles).expect("forward progress");
    } else {
        gpu.run_stepping(cycles).expect("forward progress");
    }
    image(&gpu, wl)
}

#[test]
fn skipping_is_byte_identical_across_the_simcheck_matrix() {
    let _guard = lock();
    const CYCLES: u64 = 1_200;

    for (name, cfg) in simcheck_configs() {
        let wl = workload_for(&cfg);
        let stepped = run_mode(&cfg, &wl, None, false, CYCLES);
        let skipped = run_mode(&cfg, &wl, None, true, CYCLES);
        assert_images_match(&name, &stepped, &skipped);
    }
}

#[test]
fn skipping_is_byte_identical_under_fault_injection() {
    let _guard = lock();
    const CYCLES: u64 = 1_200;

    for (name, cfg) in simcheck_configs() {
        let wl = workload_for(&cfg);
        // A seeded plan over the timed window: derates, DRAM stretches,
        // offline slices, and walker stalls — their edges land inside
        // spans the skipper would otherwise jump over.
        let plan = FaultPlan::random(
            11,
            CYCLES,
            12,
            cfg.num_sms,
            cfg.num_llc_slices,
            cfg.num_channels,
        );
        let stepped = run_mode(&cfg, &wl, Some(&plan), false, CYCLES);
        let skipped = run_mode(&cfg, &wl, Some(&plan), true, CYCLES);
        assert_images_match(&format!("{name}+faults"), &stepped, &skipped);
    }
}

/// The watchdog fires at the same cycle with the same
/// [`nuba_core::DeadlockReport`] whether the starved span was stepped
/// through or jumped over.
#[test]
fn watchdog_fires_identically_under_skipping() {
    let _guard = lock();
    let starved = |skip: bool| {
        invariant::reset();
        let cfg = GpuConfig::paper_baseline(ArchKind::Nuba);
        let wl = workload_for(&cfg);
        // Derate every link to zero: requests stop moving, the retire
        // stream starves, and the watchdog must fire.
        let plan =
            nuba_engine::FaultPlan::uniform_link_derate(0.0, cfg.num_sms, cfg.num_llc_slices);
        let mut gpu = GpuSimulator::try_new(cfg, &wl).expect("valid config");
        gpu.warm(&wl, 256);
        gpu.set_fault_plan(&plan);
        gpu.set_watchdog(Some(800));
        let err = if skip {
            gpu.run_skipping(10_000)
        } else {
            gpu.run_stepping(10_000)
        }
        .expect_err("starved machine must trip the watchdog");
        (gpu.cycle(), format!("{err:?}"))
    };
    let (stepped_cycle, stepped_err) = starved(false);
    let (skipped_cycle, skipped_err) = starved(true);
    assert_eq!(stepped_cycle, skipped_cycle, "firing cycle diverged");
    assert_eq!(stepped_err, skipped_err, "DeadlockReport diverged");
}

/// A checkpoint taken mid-run under skipping — at a cycle the skipper
/// may only reach as an artificial run-end cap, never a real event —
/// matches the stepped checkpoint at the same cycle byte for byte, and
/// resuming from it (under either mode) converges on the stepped
/// reference.
#[test]
fn mid_skip_checkpoints_resume_identically() {
    let _guard = lock();
    const FIRST: u64 = 700;
    const SECOND: u64 = 500;
    let cfg = {
        let mut cfg = GpuConfig::paper_baseline(ArchKind::Nuba)
            .with_replication(ReplicationKind::Mdr)
            .with_policy(PagePolicyKind::lab_default());
        cfg.telemetry.window_cycles = Some(256);
        cfg.telemetry.trace_sample_period = 64;
        cfg
    };
    let wl = workload_for(&cfg);

    // Stepped reference, uninterrupted.
    let reference = run_mode(&cfg, &wl, None, false, FIRST + SECOND);

    // Stepped checkpoint at the split point.
    invariant::reset();
    let mut gpu = GpuSimulator::try_new(cfg.clone(), &wl).expect("valid config");
    gpu.warm(&wl, 256);
    gpu.run_stepping(FIRST).expect("forward progress");
    let stepped_ckpt = gpu.checkpoint(&wl).to_bytes();
    drop(gpu);

    // Skipping run interrupted at the same cycle: identical checkpoint.
    invariant::reset();
    let mut gpu = GpuSimulator::try_new(cfg.clone(), &wl).expect("valid config");
    gpu.warm(&wl, 256);
    gpu.run_skipping(FIRST).expect("forward progress");
    let ckpt = gpu.checkpoint(&wl);
    assert_eq!(
        ckpt.to_bytes(),
        stepped_ckpt,
        "mid-skip checkpoint differs from the stepped checkpoint"
    );
    drop(gpu);

    // Resume through the session API (round-tripping the bytes) and
    // finish under skipping: byte-identical to the stepped reference.
    let ckpt = nuba_core::Checkpoint::from_bytes(&ckpt.to_bytes()).expect("round-trip");
    invariant::reset();
    ckpt.seed_invariants();
    let mut session = SimSession::resume(&ckpt, wl.clone()).expect("resume");
    assert_eq!(session.cycle(), FIRST, "resumed at wrong cycle");
    session.gpu_mut().set_skip(true);
    session.run_window(SECOND).expect("forward progress");
    let continued = image(session.gpu(), &wl);
    assert_images_match("mid-skip resume", &reference, &continued);
}
