//! Property tests for the LLC slice (Fig. 5): request/reply
//! conservation under arbitrary mixes of loads, stores, atomics and
//! replica traffic.

use proptest::prelude::*;

use nuba_cache::CacheGeometry;
use nuba_core::{LlcSlice, MemTask, Role, SliceParams};
use nuba_types::{
    AccessKind, LineAddr, MemReply, MemRequest, PartitionId, PhysAddr, ReqId, SliceId, SmId,
    VirtAddr, WarpId,
};

fn params() -> SliceParams {
    SliceParams {
        geometry: CacheGeometry::new(8, 4),
        mshrs: 8,
        latency: 3,
        out_bytes_per_cycle: 32,
        queue_capacity: 8,
        sample_sets: 4,
    }
}

fn req(id: u64, line_idx: u64, kind: AccessKind) -> MemRequest {
    MemRequest {
        id: ReqId(id),
        sm: SmId((id % 4) as usize),
        warp: WarpId((id % 8) as usize),
        vaddr: VirtAddr(line_idx * 128),
        paddr: PhysAddr(line_idx * 128),
        kind,
        issue_cycle: 0,
        wants_replica: false,
        bypass_l1: false,
    }
}

fn kind_of(tag: u8) -> AccessKind {
    match tag % 4 {
        0 => AccessKind::Load,
        1 => AccessKind::LoadReadOnly,
        2 => AccessKind::Store,
        _ => AccessKind::Atomic,
    }
}

proptest! {
    /// Every home request produces exactly one reply; fetches are only
    /// generated for misses; pending work drains to zero.
    #[test]
    fn home_requests_conserve_replies(
        traffic in proptest::collection::vec((0u64..24, 0u8..4), 1..80),
        remote_ratio in 0usize..3,
    ) {
        let mut slice = LlcSlice::new(SliceId(0), PartitionId(0), params(), None, false);
        let mut sent = 0u64;
        let mut replies: Vec<MemReply> = Vec::new();
        let mut queue: Vec<(u64, u8)> = traffic.clone();
        queue.reverse();
        let mut now = 0u64;
        let horizon = traffic.len() as u64 * 40 + 400;
        while now < horizon {
            if let Some(&(line, tag)) = queue.last() {
                let r = req(sent, line, kind_of(tag));
                if sent as usize % 3 < remote_ratio {
                    slice.ingress_remote(r);
                } else {
                    slice.ingress_local(r, Role::Home);
                }
                sent += 1;
                queue.pop();
            }
            slice.tick(now);
            // Service DRAM instantly: fetches fill next cycle.
            while let Some(task) = slice.pop_mem_task() {
                if let MemTask::Fetch(line) = task {
                    slice.fill_from_memory(line, now);
                }
            }
            while let Some(r) = slice.pop_reply() {
                replies.push(r);
            }
            now += 1;
        }
        prop_assert!(queue.is_empty());
        prop_assert_eq!(replies.len() as u64, sent, "one reply per request");
        // Ids are conserved (no duplication, no invention).
        let mut ids: Vec<u64> = replies.iter().map(|r| r.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len() as u64, sent);
        prop_assert_eq!(slice.pending_work(), 0, "slice must drain");
        // Every reply preserves its request's kind and line.
        for r in &replies {
            prop_assert_eq!(r.serviced_by, SliceId(0));
        }
    }

    /// Replica traffic: hits reply locally, misses forward exactly once
    /// and fill exactly once, after which the line hits.
    #[test]
    fn replica_path_conserves_requests(lines in proptest::collection::vec(0u64..12, 1..40)) {
        let mut slice = LlcSlice::new(SliceId(0), PartitionId(0), params(), None, true);
        let mut sent = 0u64;
        let mut replies = 0u64;
        let mut forwarded = Vec::new();
        let mut queue = lines.clone();
        queue.reverse();
        let mut now = 0u64;
        let horizon = lines.len() as u64 * 40 + 400;
        while now < horizon {
            if let Some(&line) = queue.last() {
                slice.ingress_local(req(sent, line, AccessKind::LoadReadOnly), Role::Replica);
                sent += 1;
                queue.pop();
            }
            slice.tick(now);
            while let Some(fwd) = slice.pop_forward() {
                prop_assert!(fwd.wants_replica);
                forwarded.push(fwd);
            }
            // The "home slice" replies after a beat; install replicas.
            if now.is_multiple_of(2) {
                for fwd in forwarded.drain(..) {
                    slice.fill_replica(
                        MemReply {
                            id: fwd.id,
                            sm: fwd.sm,
                            warp: fwd.warp,
                            line: fwd.line(),
                            kind: fwd.kind,
                            serviced_by: SliceId(9),
                            llc_hit: false,
                            issue_cycle: 0,
                            replica_fill: true,
                            bypass_l1: false,
                        },
                        now,
                    );
                }
            }
            while slice.pop_reply().is_some() {
                replies += 1;
            }
            prop_assert_eq!(slice.pop_mem_task(), None, "replica path never touches local DRAM");
            now += 1;
        }
        prop_assert_eq!(replies, sent, "every replica request is answered");
        prop_assert_eq!(slice.pending_work(), 0);
        // Replicas really are resident now.
        prop_assert!(slice.replica_lines() > 0 || lines.is_empty());
    }

    /// Dirty data is never lost: every line dirtied by a store either
    /// stays resident (flush reveals it) or was written back.
    #[test]
    fn dirty_lines_are_never_lost(stores in proptest::collection::vec(0u64..64, 1..60)) {
        let mut slice = LlcSlice::new(SliceId(0), PartitionId(0), params(), None, false);
        let mut dirtied = std::collections::HashSet::new();
        let mut written_back = std::collections::HashSet::new();
        let mut queue = stores.clone();
        queue.reverse();
        let mut sent = 0u64;
        let mut now = 0u64;
        while now < stores.len() as u64 * 40 + 400 {
            if let Some(&line) = queue.last() {
                slice.ingress_local(req(sent, line, AccessKind::Store), Role::Home);
                dirtied.insert(LineAddr::containing(line * 128));
                sent += 1;
                queue.pop();
            }
            slice.tick(now);
            while let Some(task) = slice.pop_mem_task() {
                match task {
                    MemTask::Writeback(l) => {
                        written_back.insert(l);
                    }
                    MemTask::Fetch(l) => slice.fill_from_memory(l, now),
                }
            }
            while slice.pop_reply().is_some() {}
            now += 1;
        }
        slice.flush();
        while let Some(task) = slice.pop_mem_task() {
            if let MemTask::Writeback(l) = task {
                written_back.insert(l);
            }
        }
        for line in &dirtied {
            prop_assert!(
                written_back.contains(line),
                "dirty line {line} lost (neither resident at flush nor written back)"
            );
        }
    }
}
