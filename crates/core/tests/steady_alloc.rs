//! Heap-allocation regression gate for the simulator hot path.
//!
//! A counting global allocator spot-checks that `GpuSimulator::step`
//! performs zero heap allocations once the simulation reaches steady
//! state: scratch vectors are hoisted and reused, MSHR waiter lists are
//! recycled through free pools, and per-tick collections keep their
//! capacity. Any `Vec::new()`/`collect()` reintroduced on the per-cycle
//! path shows up here as a nonzero count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use nuba_core::GpuSimulator;
use nuba_types::{ArchKind, GpuConfig};
use nuba_workloads::{BenchmarkId, ScaleProfile, Workload};

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static TRAP_ALLOC: AtomicBool = AtomicBool::new(false);
static TRAP_REALLOC: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            if TRAP_ALLOC.load(Ordering::Relaxed) {
                COUNTING.store(false, Ordering::SeqCst);
                panic!("alloc {}", layout.size());
            }
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            REALLOCS.fetch_add(1, Ordering::Relaxed);
            if TRAP_REALLOC.load(Ordering::Relaxed) {
                COUNTING.store(false, Ordering::SeqCst);
                panic!("realloc {} -> {}", layout.size(), new_size);
            }
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Run `steps` cycles with allocation counting enabled; returns
/// (allocations, reallocations) observed in the window. `skipping`
/// drives the event-driven time-skipping loop instead of raw stepping —
/// jump decisions and idle catch-ups must be allocation-free too.
fn count_window(gpu: &mut GpuSimulator, steps: u64, skipping: bool) -> (u64, u64) {
    // Env flags are latched outside the counting window: reading them
    // from inside the allocator would itself allocate and recurse.
    TRAP_ALLOC.store(std::env::var_os("TRAP_ALLOC").is_some(), Ordering::SeqCst);
    TRAP_REALLOC.store(std::env::var_os("TRAP_REALLOC").is_some(), Ordering::SeqCst);
    ALLOCS.store(0, Ordering::SeqCst);
    REALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    if skipping {
        gpu.set_skip(true);
        gpu.advance(steps).expect("forward progress");
    } else {
        for _ in 0..steps {
            gpu.step();
        }
    }
    COUNTING.store(false, Ordering::SeqCst);
    (
        ALLOCS.load(Ordering::SeqCst),
        REALLOCS.load(Ordering::SeqCst),
    )
}

fn steady_state_gpu(arch: ArchKind) -> GpuSimulator {
    let mut cfg = GpuConfig::paper_baseline(arch);
    // Telemetry stays ON here: the zero-allocation contract must hold
    // with the windowed sampler flushing into its pre-sized ring, the
    // lifecycle tracer recording into its pre-sized tables, and every
    // latency histogram (per-tier, per-stage, per-window) recording —
    // histograms are fixed-size bucket arrays, so observing a value is
    // a pair of array increments, never a heap touch.
    cfg.telemetry.window_cycles = Some(256);
    cfg.telemetry.trace_sample_period = 64;
    cfg.telemetry.window_latency = true;
    let wl = Workload::build(BenchmarkId::Sgemm, ScaleProfile::fast(), cfg.num_sms, 42);
    let mut gpu = GpuSimulator::try_new(cfg, &wl).expect("valid config");
    gpu.warm(&wl, 256);
    // Reach steady state: first touches fault every working-set page in
    // and every queue/pool/table grows to its stable capacity.
    for _ in 0..6_000 {
        gpu.step();
    }
    gpu
}

#[test]
fn step_is_allocation_free_in_steady_state() {
    // One test in this file: the counting window must not race with
    // allocations from sibling test threads.
    for arch in [ArchKind::MemSideUba, ArchKind::Nuba] {
        let mut gpu = steady_state_gpu(arch);
        let (allocs, reallocs) = count_window(&mut gpu, 2_000, false);
        assert_eq!(
            (allocs, reallocs),
            (0, 0),
            "{arch:?}: steady-state step path allocated \
             ({allocs} allocs, {reallocs} reallocs over 2000 cycles)"
        );
        // The time-skipping loop shares the zero-allocation contract:
        // event aggregation, watchdog emulation, window flushing and
        // idle catch-ups all run on pre-sized state. Count over the
        // *same* cycle range on a fresh simulator: skipping is
        // byte-identical to stepping, so the component capacity
        // trajectory matches the stepped window that just passed — any
        // allocation observed here comes from the jump machinery
        // itself.
        let mut gpu = steady_state_gpu(arch);
        let (allocs, reallocs) = count_window(&mut gpu, 2_000, true);
        assert_eq!(
            (allocs, reallocs),
            (0, 0),
            "{arch:?}: steady-state skipping path allocated \
             ({allocs} allocs, {reallocs} reallocs over 2000 cycles)"
        );
    }
}
