//! Forward-progress watchdog contract: it never fires on healthy
//! configurations, and it fires deterministically — with a populated
//! [`DeadlockReport`] — when a fault genuinely starves the machine.

use nuba_core::{GpuSimulator, SimError};
use nuba_engine::{Fault, FaultPlan};
use nuba_types::{ArchKind, GpuConfig, PagePolicyKind, ReplicationKind};
use nuba_workloads::{BenchmarkId, ScaleProfile, Workload};

/// The simcheck architecture matrix: both UBA baselines plus NUBA with
/// every replication × page-policy combination.
fn simcheck_configs() -> Vec<(String, GpuConfig)> {
    let mut out = vec![
        (
            "UBA-mem".into(),
            GpuConfig::paper_baseline(ArchKind::MemSideUba),
        ),
        (
            "UBA-sm".into(),
            GpuConfig::paper_baseline(ArchKind::SmSideUba),
        ),
    ];
    for (rep_name, rep) in [
        ("NoRep", ReplicationKind::None),
        ("FullRep", ReplicationKind::Full),
        ("MDR", ReplicationKind::Mdr),
    ] {
        for (pol_name, pol) in [
            ("FirstTouch", PagePolicyKind::FirstTouch),
            ("RoundRobin", PagePolicyKind::RoundRobin),
            ("LAB", PagePolicyKind::lab_default()),
        ] {
            let mut cfg = GpuConfig::paper_baseline(ArchKind::Nuba);
            cfg.replication = rep;
            cfg.page_policy = pol;
            out.push((format!("NUBA-{rep_name}-{pol_name}"), cfg));
        }
    }
    out
}

fn starved_run(budget: u64, cycles: u64) -> Result<nuba_core::SimReport, SimError> {
    let cfg = GpuConfig::paper_baseline(ArchKind::Nuba);
    let wl = Workload::build(
        BenchmarkId::Kmeans,
        ScaleProfile::fast(),
        cfg.num_sms,
        cfg.seed,
    );
    let plan = FaultPlan::uniform_link_derate(0.0, cfg.num_sms, cfg.num_llc_slices);
    let mut gpu = GpuSimulator::try_new(cfg, &wl).expect("valid config");
    gpu.set_fault_plan(&plan);
    gpu.set_watchdog(Some(budget));
    gpu.warm_and_run(&wl, cycles)
}

#[test]
fn healthy_configs_never_trip_the_watchdog() {
    // A budget well below the paper default (20k) but above the
    // cold-start latency to the first reply (~500 cycles): if any of
    // the simcheck configurations stalls its retire stream for 1500
    // consecutive cycles, something real broke.
    for (name, cfg) in simcheck_configs() {
        let wl = Workload::build(
            BenchmarkId::Kmeans,
            ScaleProfile::fast(),
            cfg.num_sms,
            cfg.seed,
        );
        let mut gpu = GpuSimulator::try_new(cfg, &wl).expect("valid config");
        gpu.set_watchdog(Some(1500));
        let r = gpu.warm_and_run(&wl, 4000);
        assert!(
            r.is_ok(),
            "{name}: watchdog fired on a healthy config: {:?}",
            r.err()
        );
    }
}

#[test]
fn starved_links_trip_with_a_populated_report() {
    let err = starved_run(800, 3000).expect_err("zero-bandwidth links must deadlock");
    let SimError::NoForwardProgress(report) = err else {
        panic!("wrong error kind: {err}");
    };
    assert_eq!(report.budget, 800);
    assert!(report.cycle >= 800, "cannot fire before the budget elapses");
    assert!(report.issued > 0, "SMs issued requests before starving");
    assert_eq!(report.replied, 0, "dead links deliver no replies");
    assert!(report.outstanding > 0, "the stuck requests are visible");
    assert!(
        report.local_link_pending > 0,
        "the report points at the starved links: {report}"
    );
    assert!(
        report.detail.contains("outstanding="),
        "debug detail attached"
    );
}

#[test]
fn starved_links_trip_deterministically() {
    let a = starved_run(800, 3000).expect_err("deadlocks");
    let b = starved_run(800, 3000).expect_err("deadlocks");
    assert_eq!(a, b, "same seed + same plan must fire identically");
}

#[test]
fn deadlock_report_embeds_a_bounded_flight_recorder() {
    // With windowed telemetry on, the report carries the last
    // `ring_windows` windows leading up to the fire — populated,
    // chronological, and bounded regardless of how long the machine
    // ran before starving.
    let run = |budget: u64, cycles: u64| {
        let mut cfg = GpuConfig::paper_baseline(ArchKind::Nuba);
        cfg.telemetry.window_cycles = Some(100);
        cfg.telemetry.ring_windows = 8;
        let wl = Workload::build(
            BenchmarkId::Kmeans,
            ScaleProfile::fast(),
            cfg.num_sms,
            cfg.seed,
        );
        let plan = FaultPlan::uniform_link_derate(0.0, cfg.num_sms, cfg.num_llc_slices);
        let mut gpu = GpuSimulator::try_new(cfg, &wl).expect("valid config");
        gpu.set_fault_plan(&plan);
        gpu.set_watchdog(Some(budget));
        let err = gpu
            .warm_and_run(&wl, cycles)
            .expect_err("zero-bandwidth links must deadlock");
        let SimError::NoForwardProgress(report) = err else {
            panic!("wrong error kind: {err}");
        };
        report
    };
    let short = run(900, 1500);
    let long = run(1800, 3000);
    assert_eq!(short.windows.len(), 8, "ring filled by the fire");
    assert_eq!(
        long.windows.len(),
        8,
        "flight recorder is bounded by the ring, not the run length"
    );
    for pair in long.windows.windows(2) {
        assert_eq!(
            pair[1].start_cycle, pair[0].end_cycle,
            "windows are chronological and contiguous"
        );
        assert_eq!(pair[1].cycles(), 100, "every window covers one period");
    }
    assert!(
        long.windows.last().unwrap().end_cycle > short.windows.last().unwrap().end_cycle,
        "a later fire retains later windows"
    );
    assert!(
        long.windows.iter().any(|w| w.stall_downstream > 0),
        "the starved machine's stalls are visible in the recorder: {:?}",
        long.windows
    );
}

#[test]
fn stalled_tlb_walkers_trip_the_watchdog() {
    let cfg = GpuConfig::paper_baseline(ArchKind::Nuba);
    let wl = Workload::build(
        BenchmarkId::Kmeans,
        ScaleProfile::fast(),
        cfg.num_sms,
        cfg.seed,
    );
    let plan = FaultPlan::new().with(Fault::TlbWalkerStall, 0, None);
    let mut gpu = GpuSimulator::try_new(cfg, &wl).expect("valid config");
    gpu.set_fault_plan(&plan);
    gpu.set_watchdog(Some(800));
    let err = gpu
        .warm_and_run(&wl, 3000)
        .expect_err("stalled walkers must deadlock");
    let SimError::NoForwardProgress(report) = err else {
        panic!("wrong error kind: {err}");
    };
    assert!(
        report.translations_outstanding > 0,
        "the report points at the stuck walks: {report}"
    );
}

#[test]
fn reverted_fault_lets_the_run_complete() {
    // The same starvation fault, but with a window that ends: the
    // watchdog must not fire as long as the budget outlasts the outage.
    let cfg = GpuConfig::paper_baseline(ArchKind::Nuba);
    let wl = Workload::build(
        BenchmarkId::Kmeans,
        ScaleProfile::fast(),
        cfg.num_sms,
        cfg.seed,
    );
    let mut plan = FaultPlan::new();
    for e in FaultPlan::uniform_link_derate(0.0, cfg.num_sms, cfg.num_llc_slices).events() {
        plan = plan.with(e.fault, 100, Some(600));
    }
    let mut gpu = GpuSimulator::try_new(cfg, &wl).expect("valid config");
    gpu.set_fault_plan(&plan);
    gpu.set_watchdog(Some(2000));
    let r = gpu
        .warm_and_run(&wl, 4000)
        .expect("outage shorter than budget");
    assert!(r.read_replies > 0, "replies flow once the links recover");
}
