//! Per-bank row-buffer state machine.

use crate::timing::HbmTiming;

/// The DRAM command a request needs given the bank's row-buffer state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// Target row already open: column access only.
    Hit,
    /// Bank precharged: ACT then column access.
    Closed,
    /// Different row open: PRE, ACT, then column access.
    Conflict,
}

/// One bank's state: the open row (if any) and the earliest cycles at
/// which the next commands may legally issue.
#[derive(Debug, Clone, Copy)]
pub struct BankState {
    open_row: Option<u64>,
    /// Earliest next ACT (tRC from the previous ACT, tRP after PRE).
    act_ready: u64,
    /// Earliest next column command (tRCD after ACT, tCCD after column).
    col_ready: u64,
    /// Earliest next PRE (tRAS after ACT, tRTP after RD, tWR after WR).
    pre_ready: u64,
}

impl BankState {
    /// A precharged, idle bank.
    pub fn new() -> BankState {
        BankState {
            open_row: None,
            act_ready: 0,
            col_ready: 0,
            pre_ready: 0,
        }
    }

    /// The currently open row.
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// Classify a request for `row` against the current row buffer.
    pub fn classify(&self, row: u64) -> RowOutcome {
        match self.open_row {
            Some(r) if r == row => RowOutcome::Hit,
            Some(_) => RowOutcome::Conflict,
            None => RowOutcome::Closed,
        }
    }

    /// Schedule the command sequence needed to perform a column access to
    /// `row` starting no earlier than `t`. Returns the cycle the column
    /// command (RD/WR) issues. `act_constraint` is the channel-level
    /// earliest-ACT bound (tRRD / tFAW).
    ///
    /// Updates the bank state (open row, next-command windows).
    pub fn schedule(
        &mut self,
        row: u64,
        t: u64,
        timing: &HbmTiming,
        act_constraint: u64,
        is_write: bool,
    ) -> ScheduledAccess {
        let mut act_at = None;
        let col_at = match self.classify(row) {
            RowOutcome::Hit => t.max(self.col_ready),
            RowOutcome::Closed => {
                let act = t.max(self.act_ready).max(act_constraint);
                act_at = Some(act);
                (act + timing.tRCD).max(self.col_ready)
            }
            RowOutcome::Conflict => {
                let pre = t.max(self.pre_ready);
                let act = (pre + timing.tRP).max(self.act_ready).max(act_constraint);
                act_at = Some(act);
                (act + timing.tRCD).max(self.col_ready)
            }
        };

        if let Some(act) = act_at {
            self.open_row = Some(row);
            self.act_ready = act + timing.tRC;
            self.pre_ready = act + timing.tRAS;
        }
        self.col_ready = col_at + timing.tCCDl;
        if is_write {
            // Write recovery delays the next precharge.
            self.pre_ready = self.pre_ready.max(col_at + timing.tWL + timing.tWR);
        } else {
            self.pre_ready = self.pre_ready.max(col_at + timing.tRTP);
        }

        ScheduledAccess { col_at, act_at }
    }
}

impl BankState {
    /// Close the row and forbid activation until `resume` (refresh).
    pub fn force_precharge(&mut self, resume: u64) {
        self.open_row = None;
        self.act_ready = self.act_ready.max(resume);
        self.col_ready = self.col_ready.max(resume);
        self.pre_ready = self.pre_ready.max(resume);
    }
}

impl Default for BankState {
    fn default() -> Self {
        BankState::new()
    }
}

/// The command times produced by [`BankState::schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledAccess {
    /// Cycle the RD/WR column command issues.
    pub col_at: u64,
    /// Cycle the ACT issued, if a row had to be opened.
    pub act_at: Option<u64>,
}

impl StateValue for BankState {
    fn put(&self, w: &mut StateWriter) {
        self.open_row.put(w);
        self.act_ready.put(w);
        self.col_ready.put(w);
        self.pre_ready.put(w);
    }

    fn get(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        Ok(BankState {
            open_row: Option::<u64>::get(r)?,
            act_ready: u64::get(r)?,
            col_ready: u64::get(r)?,
            pre_ready: u64::get(r)?,
        })
    }
}

use nuba_types::state::{StateError, StateReader, StateValue, StateWriter};

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> HbmTiming {
        HbmTiming::paper()
    }

    #[test]
    fn closed_bank_pays_act_plus_rcd() {
        let mut b = BankState::new();
        assert_eq!(b.classify(5), RowOutcome::Closed);
        let s = b.schedule(5, 10, &t(), 0, false);
        assert_eq!(s.act_at, Some(10));
        assert_eq!(s.col_at, 10 + 7);
        assert_eq!(b.open_row(), Some(5));
    }

    #[test]
    fn row_hit_streams_back_to_back() {
        let mut b = BankState::new();
        b.schedule(5, 0, &t(), 0, false);
        assert_eq!(b.classify(5), RowOutcome::Hit);
        let s1 = b.schedule(5, 8, &t(), 0, false);
        let s2 = b.schedule(5, 8, &t(), 0, false);
        assert_eq!(s1.act_at, None);
        // Consecutive column commands separated by tCCDl = 1.
        assert_eq!(s2.col_at, s1.col_at + 1);
    }

    #[test]
    fn conflict_pays_pre_act_rcd() {
        let mut b = BankState::new();
        b.schedule(1, 0, &t(), 0, false);
        assert_eq!(b.classify(2), RowOutcome::Conflict);
        // PRE cannot issue before tRAS from ACT@0 and tRTP from RD@7.
        let s = b.schedule(2, 8, &t(), 0, false);
        // pre_ready = max(0+17, 7+7) = 17; act = 17+7 = 24; col = 31.
        assert_eq!(s.act_at, Some(24));
        assert_eq!(s.col_at, 31);
    }

    #[test]
    fn trc_limits_act_to_act() {
        let mut b = BankState::new();
        b.schedule(1, 0, &t(), 0, false); // ACT@0
        let s = b.schedule(2, 0, &t(), 0, false); // conflict path
                                                  // tRC=24 from first ACT also bounds the second ACT.
        assert!(s.act_at.unwrap() >= 24);
    }

    #[test]
    fn act_constraint_from_channel_respected() {
        let mut b = BankState::new();
        let s = b.schedule(3, 0, &t(), 100, false);
        assert_eq!(s.act_at, Some(100));
        assert_eq!(s.col_at, 107);
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let mut b = BankState::new();
        b.schedule(1, 0, &t(), 0, true); // WR col@7
                                         // Next conflict's PRE must wait for tWL + tWR after the write.
        let s = b.schedule(2, 7, &t(), 0, false);
        // pre_ready = max(17, 7 + 2 + 8) = 17 → act 24, col 31.
        assert_eq!(s.col_at, 31);
    }
}
