//! FR-FCFS memory controller for one HBM channel.

use std::collections::VecDeque;

use nuba_engine::earliest;

use crate::bank::{BankState, RowOutcome};
use crate::timing::HbmTiming;

/// A line-granular DRAM request (the LLC always fetches whole 128 B
/// lines; the burst length is configured on the controller).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramRequest {
    /// Opaque id returned on completion.
    pub id: u64,
    /// Target bank within the channel.
    pub bank: usize,
    /// Target row within the bank.
    pub row: u64,
    /// Write (true) or read (false).
    pub is_write: bool,
}

/// Aggregate controller statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Requests serviced with the row already open.
    pub row_hits: u64,
    /// Requests to a precharged bank.
    pub row_closed: u64,
    /// Requests that had to close another row first.
    pub row_conflicts: u64,
    /// Total requests completed.
    pub completed: u64,
    /// Memory cycles the data bus was transferring.
    pub bus_busy_cycles: u64,
    /// Requests rejected because the queue was full.
    pub rejected: u64,
    /// All-bank refreshes performed.
    pub refreshes: u64,
}

impl DramStats {
    /// Total row-buffer probes (hits + closed-bank + conflicts): the
    /// denominator of the row-hit rate, used by windowed telemetry to
    /// form per-interval rates from integral deltas.
    pub fn row_accesses(&self) -> u64 {
        self.row_hits + self.row_closed + self.row_conflicts
    }
}

/// An FR-FCFS scheduler over one channel's banks with a bounded request
/// queue and a shared data bus.
///
/// All cycles are memory cycles. One column command is scheduled per
/// tick at most; the data bus serializes bursts (`burst_cycles` per
/// request, e.g. 2 cycles for a 128 B line at 64 B/cycle).
#[derive(Debug, Clone)]
pub struct MemoryController {
    timing: HbmTiming,
    banks: Vec<BankState>,
    queue: VecDeque<DramRequest>,
    queue_capacity: usize,
    burst_cycles: u64,
    /// Completion times of scheduled requests (unordered).
    inflight: Vec<(u64, DramRequest)>,
    /// Data-bus free time.
    bus_free_at: u64,
    /// Sliding window of the last four ACT times (tFAW).
    act_times: VecDeque<u64>,
    /// Last ACT time on any bank (tRRD); `None` before the first ACT.
    last_act: Option<u64>,
    /// End of the last write data burst (tWTR).
    last_write_end: u64,
    /// Cycle the next refresh is due (tREFI > 0 only).
    next_refresh: u64,
    /// Fault hook: extra memory cycles added to every data burst while a
    /// DRAM-stretch fault is active (0 when healthy).
    fault_stretch: u64,
    stats: DramStats,
}

impl MemoryController {
    /// A controller over `banks` banks with a `queue_capacity`-entry
    /// FR-FCFS queue; each access occupies the data bus for
    /// `burst_cycles`.
    ///
    /// # Panics
    /// Panics if any argument is zero or the timing set is invalid.
    pub fn new(
        timing: HbmTiming,
        banks: usize,
        queue_capacity: usize,
        burst_cycles: u64,
    ) -> MemoryController {
        timing.validate().expect("invalid HBM timing");
        assert!(banks > 0 && queue_capacity > 0 && burst_cycles > 0);
        MemoryController {
            timing,
            banks: vec![BankState::new(); banks],
            queue: VecDeque::with_capacity(queue_capacity),
            queue_capacity,
            burst_cycles,
            // Sized with the queue: in-flight bursts are fed from it, so
            // ticks never grow this buffer mid-simulation.
            inflight: Vec::with_capacity(2 * queue_capacity),
            bus_free_at: 0,
            act_times: VecDeque::with_capacity(4),
            last_act: None,
            last_write_end: 0,
            next_refresh: if timing.tREFI > 0 {
                timing.tREFI
            } else {
                u64::MAX
            },
            fault_stretch: 0,
            stats: DramStats::default(),
        }
    }

    /// Enqueue a request at memory-cycle `_now`.
    ///
    /// # Errors
    /// Returns the request back when the queue is full (back-pressure).
    pub fn try_enqueue(&mut self, req: DramRequest, _now: u64) -> Result<(), DramRequest> {
        if self.queue.len() >= self.queue_capacity {
            self.stats.rejected += 1;
            return Err(req);
        }
        self.queue.push_back(req);
        Ok(())
    }

    /// Whether the request queue has room.
    pub fn can_accept(&self) -> bool {
        self.queue.len() < self.queue_capacity
    }

    /// Queued plus in-service requests.
    pub fn pending(&self) -> usize {
        self.queue.len() + self.inflight.len()
    }

    /// Earliest cycle an ACT may issue under tRRD / tFAW.
    fn act_constraint(&self) -> u64 {
        let rrd = self.last_act.map_or(0, |t| t + self.timing.tRRDs);
        let faw = if self.act_times.len() == 4 {
            self.act_times[0] + self.timing.tFAW
        } else {
            0
        };
        rrd.max(faw)
    }

    /// FR-FCFS pick: index of the first row-hit request, else 0 (oldest).
    fn pick(&self) -> Option<usize> {
        if self.queue.is_empty() {
            return None;
        }
        self.queue
            .iter()
            .position(|r| self.banks[r.bank].classify(r.row) == RowOutcome::Hit)
            .or(Some(0))
    }

    /// Advance to memory-cycle `now`: issue at most one column command
    /// and push completions into `done` as `(id, is_write)` pairs.
    pub fn tick(&mut self, now: u64, done: &mut Vec<(u64, bool)>) {
        // Idle fast-path: nothing queued, nothing in flight, no refresh
        // due — every section below is a no-op.
        if self.inflight.is_empty() && self.queue.is_empty() && now < self.next_refresh {
            return;
        }

        // Retire completed transfers.
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i].0 <= now {
                let (_, req) = self.inflight.swap_remove(i);
                self.stats.completed += 1;
                done.push((req.id, req.is_write));
            } else {
                i += 1;
            }
        }

        // All-bank refresh: precharge everything and hold the channel
        // for tRFC (REFab semantics).
        if now >= self.next_refresh {
            self.next_refresh = now + self.timing.tREFI;
            self.stats.refreshes += 1;
            let resume = now + self.timing.tRFC;
            for b in self.banks.iter_mut() {
                b.force_precharge(resume);
            }
            self.bus_free_at = self.bus_free_at.max(resume);
        }

        // Stay reactive: bound the command pipeline at one scheduled
        // request per bank. Bank-level parallelism still overlaps fully,
        // but scheduled-not-served requests can no longer accumulate
        // unbounded data-bus queueing latency.
        if self.inflight.len() >= self.banks.len() {
            return;
        }
        // Schedule one request per cycle (command-bus limit).
        let Some(idx) = self.pick() else { return };
        let req = self.queue[idx];
        let outcome = self.banks[req.bank].classify(req.row);

        // Don't commit to a schedule that starts far in the future: only
        // issue when the bank could act soon (keeps FR-FCFS reactive).
        let act_constraint = self.act_constraint();
        let sched =
            self.banks[req.bank].schedule(req.row, now, &self.timing, act_constraint, req.is_write);

        // Data-bus and write-turnaround constraints on the data phase.
        let data_latency = if req.is_write {
            self.timing.tWL
        } else {
            self.timing.tCL
        };
        let mut data_start = sched.col_at + data_latency;
        if !req.is_write && self.last_write_end > 0 {
            data_start = data_start.max(self.last_write_end + self.timing.tWTRs);
        }
        data_start = data_start.max(self.bus_free_at);
        // A slow/marginal rank under fault injection: every burst holds
        // the data bus longer, so the slowdown compounds under load.
        let data_end = data_start + self.burst_cycles + self.fault_stretch;

        self.bus_free_at = data_end;
        self.stats.bus_busy_cycles += self.burst_cycles;
        if req.is_write {
            self.last_write_end = data_end;
        }
        if let Some(act) = sched.act_at {
            self.last_act = Some(act);
            if self.act_times.len() == 4 {
                self.act_times.pop_front();
            }
            self.act_times.push_back(act);
        }
        match outcome {
            RowOutcome::Hit => self.stats.row_hits += 1,
            RowOutcome::Closed => self.stats.row_closed += 1,
            RowOutcome::Conflict => self.stats.row_conflicts += 1,
        }

        self.queue.remove(idx);
        self.inflight.push((data_end, req));
    }

    /// Fault hook: stretch every subsequent data burst by `extra`
    /// memory cycles (0 restores nominal timing). Already-scheduled
    /// bursts keep their completion times, so reverting a fault is
    /// glitch-free.
    pub fn set_fault_stretch(&mut self, extra: u64) {
        self.fault_stretch = extra;
    }

    /// Earliest **memory** cycle `>= now` at which ticking changes
    /// state (see [`nuba_engine::NextEvent`]; the caller converts to
    /// its own clock domain). Events: a due or future refresh, a
    /// retirement, or a schedulable queued request — scheduling issues
    /// every cycle the queue is non-empty and a per-bank slot is free,
    /// so such spans are never skippable.
    pub fn next_event_cycle(&self, now: u64) -> Option<u64> {
        if now >= self.next_refresh {
            return Some(now);
        }
        if !self.queue.is_empty() && self.inflight.len() < self.banks.len() {
            return Some(now);
        }
        let mut next = (self.next_refresh != u64::MAX).then_some(self.next_refresh);
        for (completes, _) in &self.inflight {
            if *completes <= now {
                return Some(now);
            }
            next = earliest(next, Some(*completes));
        }
        next
    }

    /// Controller statistics so far.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Row-hit fraction of completed+scheduled requests.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.stats.row_hits + self.stats.row_closed + self.stats.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.stats.row_hits as f64 / total as f64
        }
    }
}

impl StateValue for DramRequest {
    fn put(&self, w: &mut StateWriter) {
        self.id.put(w);
        self.bank.put(w);
        self.row.put(w);
        self.is_write.put(w);
    }

    fn get(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        Ok(DramRequest {
            id: u64::get(r)?,
            bank: usize::get(r)?,
            row: u64::get(r)?,
            is_write: bool::get(r)?,
        })
    }
}

impl StateValue for DramStats {
    fn put(&self, w: &mut StateWriter) {
        self.row_hits.put(w);
        self.row_closed.put(w);
        self.row_conflicts.put(w);
        self.completed.put(w);
        self.bus_busy_cycles.put(w);
        self.rejected.put(w);
        self.refreshes.put(w);
    }

    fn get(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        Ok(DramStats {
            row_hits: u64::get(r)?,
            row_closed: u64::get(r)?,
            row_conflicts: u64::get(r)?,
            completed: u64::get(r)?,
            bus_busy_cycles: u64::get(r)?,
            rejected: u64::get(r)?,
            refreshes: u64::get(r)?,
        })
    }
}

impl SaveState for MemoryController {
    fn save(&self, w: &mut StateWriter) {
        save_items(w, &self.banks);
        self.queue.put(w);
        // In-flight completion order matters: retirement uses swap_remove,
        // so the vector's exact element order must round-trip.
        self.inflight.put(w);
        self.bus_free_at.put(w);
        self.act_times.put(w);
        self.last_act.put(w);
        self.last_write_end.put(w);
        self.next_refresh.put(w);
        self.fault_stretch.put(w);
        self.stats.put(w);
    }

    fn restore(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        restore_items(r, "DRAM banks", &mut self.banks)?;
        let n = usize::get(r)?;
        self.queue.clear();
        for _ in 0..n {
            self.queue.push_back(DramRequest::get(r)?);
        }
        let n = usize::get(r)?;
        self.inflight.clear();
        for _ in 0..n {
            self.inflight.push(<(u64, DramRequest)>::get(r)?);
        }
        self.bus_free_at = u64::get(r)?;
        let n = usize::get(r)?;
        self.act_times.clear();
        for _ in 0..n {
            self.act_times.push_back(u64::get(r)?);
        }
        self.last_act = Option::<u64>::get(r)?;
        self.last_write_end = u64::get(r)?;
        self.next_refresh = u64::get(r)?;
        self.fault_stretch = u64::get(r)?;
        self.stats = DramStats::get(r)?;
        Ok(())
    }
}

use nuba_types::state::{
    restore_items, save_items, SaveState, StateError, StateReader, StateValue, StateWriter,
};

#[cfg(test)]
mod tests {
    use super::*;

    fn mc() -> MemoryController {
        MemoryController::new(HbmTiming::paper(), 16, 64, 2)
    }

    fn run(mc: &mut MemoryController, from: u64, to: u64) -> Vec<(u64, u64)> {
        let mut got = Vec::new();
        let mut done = Vec::new();
        for t in from..=to {
            mc.tick(t, &mut done);
            for (id, _) in done.drain(..) {
                got.push((t, id));
            }
        }
        got
    }

    #[test]
    fn single_read_latency() {
        let mut m = mc();
        m.try_enqueue(
            DramRequest {
                id: 7,
                bank: 0,
                row: 1,
                is_write: false,
            },
            0,
        )
        .unwrap();
        let got = run(&mut m, 0, 40);
        // ACT@0 + tRCD(7) + tCL(7) + burst(2) = 16.
        assert_eq!(got, vec![(16, 7)]);
        assert_eq!(m.stats().row_closed, 1);
    }

    #[test]
    fn row_hits_stream_at_bus_rate() {
        let mut m = mc();
        for i in 0..8 {
            m.try_enqueue(
                DramRequest {
                    id: i,
                    bank: 0,
                    row: 1,
                    is_write: false,
                },
                0,
            )
            .unwrap();
        }
        let got = run(&mut m, 0, 100);
        assert_eq!(got.len(), 8);
        // After the first access, each subsequent one is a row hit
        // completing 2 cycles (one burst) apart.
        for w in got.windows(2).skip(1) {
            assert_eq!(w[1].0 - w[0].0, 2, "{got:?}");
        }
        assert_eq!(m.stats().row_hits, 7);
        // Sustained bandwidth: 8 lines × 128 B in ~30 cycles ≈ 34 B/cycle
        // at 64 B/burst-cycle — bus-limited, not timing-limited.
        assert!(got.last().unwrap().0 <= 32);
    }

    #[test]
    fn frfcfs_prefers_row_hits_over_older_conflicts() {
        let mut m = mc();
        // Open row 1 on bank 0.
        m.try_enqueue(
            DramRequest {
                id: 0,
                bank: 0,
                row: 1,
                is_write: false,
            },
            0,
        )
        .unwrap();
        let _ = run(&mut m, 0, 20);
        // Now: an older conflicting request and a younger row hit.
        m.try_enqueue(
            DramRequest {
                id: 1,
                bank: 0,
                row: 9,
                is_write: false,
            },
            21,
        )
        .unwrap();
        m.try_enqueue(
            DramRequest {
                id: 2,
                bank: 0,
                row: 1,
                is_write: false,
            },
            21,
        )
        .unwrap();
        let got = run(&mut m, 21, 120);
        let order: Vec<u64> = got.iter().map(|&(_, id)| id).collect();
        assert_eq!(order, vec![2, 1], "row hit must be served first");
        assert_eq!(m.stats().row_conflicts, 1);
    }

    #[test]
    fn bank_parallelism_beats_single_bank() {
        // Same number of row-miss requests: spread over banks completes
        // sooner than serialized on one bank (tRC-bound).
        let mut spread = mc();
        let mut single = mc();
        for i in 0..4 {
            spread
                .try_enqueue(
                    DramRequest {
                        id: i,
                        bank: i as usize,
                        row: 1,
                        is_write: false,
                    },
                    0,
                )
                .unwrap();
            single
                .try_enqueue(
                    DramRequest {
                        id: i,
                        bank: 0,
                        row: 1 + i * 100,
                        is_write: false,
                    },
                    0,
                )
                .unwrap();
        }
        let t_spread = run(&mut spread, 0, 400).last().unwrap().0;
        let t_single = run(&mut single, 0, 400).last().unwrap().0;
        assert!(
            t_spread < t_single,
            "banked {t_spread} should beat serialized {t_single}"
        );
    }

    #[test]
    fn tfaw_limits_activation_burst() {
        let mut m = mc();
        // 8 row-miss requests on 8 distinct banks: ACTs are tRRDs=4 apart,
        // and the 5th ACT must also respect tFAW=20 from the 1st.
        for i in 0..8 {
            m.try_enqueue(
                DramRequest {
                    id: i,
                    bank: i as usize,
                    row: 1,
                    is_write: false,
                },
                0,
            )
            .unwrap();
        }
        let got = run(&mut m, 0, 200);
        assert_eq!(got.len(), 8);
        // With tRRDs=4, ACT[4] would be at 16 without tFAW; tFAW pushes it
        // to ≥ 20, so completion of req 4 ≥ 20 + 7 + 7 + 2 = 36.
        assert!(got[4].0 >= 36, "tFAW not enforced: {got:?}");
    }

    #[test]
    fn queue_backpressure() {
        let mut m = MemoryController::new(HbmTiming::paper(), 16, 2, 2);
        m.try_enqueue(
            DramRequest {
                id: 0,
                bank: 0,
                row: 0,
                is_write: false,
            },
            0,
        )
        .unwrap();
        m.try_enqueue(
            DramRequest {
                id: 1,
                bank: 0,
                row: 0,
                is_write: false,
            },
            0,
        )
        .unwrap();
        assert!(!m.can_accept());
        let r = DramRequest {
            id: 2,
            bank: 0,
            row: 0,
            is_write: false,
        };
        assert_eq!(m.try_enqueue(r, 0), Err(r));
        assert_eq!(m.stats().rejected, 1);
    }

    #[test]
    fn write_then_read_pays_turnaround() {
        let mut m = mc();
        m.try_enqueue(
            DramRequest {
                id: 0,
                bank: 0,
                row: 1,
                is_write: true,
            },
            0,
        )
        .unwrap();
        m.try_enqueue(
            DramRequest {
                id: 1,
                bank: 0,
                row: 1,
                is_write: false,
            },
            0,
        )
        .unwrap();
        let got = run(&mut m, 0, 60);
        // WR col@7, data 9..11; read is a row hit col@8, data would be 15
        // but tWTRs pushes it to ≥ 11 + 2 = 13 → no effect here; ensure
        // ordering is write data then read data and both complete.
        assert_eq!(got.len(), 2);
        assert!(got[0].1 == 0 && got[1].1 == 1);
        assert!(got[1].0 > got[0].0);
    }

    #[test]
    fn refresh_steals_bandwidth_and_closes_rows() {
        let mut m = MemoryController::new(HbmTiming::with_refresh(), 16, 64, 2);
        let mut done = Vec::new();
        let mut completions = Vec::new();
        let mut id = 0u64;
        for t in 0..4096u64 {
            if m.can_accept() {
                id += 1;
                let _ = m.try_enqueue(
                    DramRequest {
                        id,
                        bank: 0,
                        row: 1,
                        is_write: false,
                    },
                    t,
                );
            }
            m.tick(t, &mut done);
            for (d, _) in done.drain(..) {
                completions.push((t, d));
            }
        }
        assert!(
            m.stats().refreshes >= 2,
            "tREFI=1365 → ≥2 refreshes in 4096 cycles"
        );
        // Rows are closed by refresh, so the same-row stream cannot be
        // all hits.
        assert!(m.stats().row_closed >= 3, "{:?}", m.stats());
        // Completions pause across each refresh window (tRFC = 120).
        let mut max_gap = 0;
        for w in completions.windows(2) {
            max_gap = max_gap.max(w[1].0 - w[0].0);
        }
        assert!(
            max_gap >= 100,
            "no refresh stall visible, max gap {max_gap}"
        );
    }

    #[test]
    fn refresh_disabled_by_default() {
        let m = mc();
        assert_eq!(m.stats().refreshes, 0);
        let mut t = HbmTiming::paper();
        t.tREFI = 100;
        t.tRFC = 120;
        assert!(t.validate().is_err(), "tRFC ≥ tREFI must be rejected");
    }

    #[test]
    fn fault_stretch_slows_bursts_and_reverts_cleanly() {
        let mut m = mc();
        m.set_fault_stretch(10);
        m.try_enqueue(
            DramRequest {
                id: 0,
                bank: 0,
                row: 1,
                is_write: false,
            },
            0,
        )
        .unwrap();
        let got = run(&mut m, 0, 60);
        // Healthy completion would be cycle 16; the stretch adds 10.
        assert_eq!(got, vec![(26, 0)]);
        m.set_fault_stretch(0);
        m.try_enqueue(
            DramRequest {
                id: 1,
                bank: 0,
                row: 1,
                is_write: false,
            },
            61,
        )
        .unwrap();
        let got = run(&mut m, 61, 120);
        assert_eq!(got.len(), 1, "controller recovered after revert");
    }

    #[test]
    fn row_hit_rate_reporting() {
        let mut m = mc();
        for i in 0..4 {
            m.try_enqueue(
                DramRequest {
                    id: i,
                    bank: 0,
                    row: 1,
                    is_write: false,
                },
                0,
            )
            .unwrap();
        }
        let _ = run(&mut m, 0, 60);
        assert!((m.row_hit_rate() - 0.75).abs() < 1e-12);
    }
}
