#![warn(missing_docs)]

//! # nuba-dram
//!
//! A bank-accurate HBM channel model in the spirit of Ramulator \[44\],
//! which the paper integrates into GPGPU-sim to model the memory
//! subsystem faithfully. Implements the paper's HBM timing table
//! (Table 1), per-bank row-buffer state machines, tFAW/tRRD activation
//! windows, data-bus occupancy and an FR-FCFS scheduler with a 64-entry
//! queue per channel.
//!
//! All times in this crate are **memory cycles** (350 MHz); the owning
//! simulator converts with the 4:1 SM-clock divider.
//!
//! ## Example
//!
//! ```
//! use nuba_dram::{HbmTiming, MemoryController, DramRequest};
//!
//! let mut mc = MemoryController::new(HbmTiming::paper(), 16, 64, 2);
//! mc.try_enqueue(DramRequest { id: 1, bank: 0, row: 5, is_write: false }, 0).unwrap();
//! let mut done = Vec::new();
//! for t in 0..64 {
//!     mc.tick(t, &mut done);
//! }
//! assert_eq!(done.len(), 1);
//! ```

pub mod bank;
pub mod controller;
pub mod timing;

pub use bank::BankState;
pub use controller::{DramRequest, DramStats, MemoryController};
pub use timing::HbmTiming;
